package muxwise

import (
	"sync"
	"testing"
)

// fleetChaosExperiment builds the end-to-end lifecycle stress: a fleet
// under the backlog autoscaler that loses a replica mid-run.
func fleetChaosExperiment() (*Experiment, *Trace) {
	dep := Deployment{
		Hardware: "A100", GPUs: 1, Model: "Llama-8B",
		SLO: SLO{TTFT: Second, TBT: 50 * Millisecond},
	}
	exp := NewExperiment(
		WithDeployment(dep),
		WithFleet(ReplicaSpec{Engine: "MuxWise", Count: 3}),
		WithRouter("adaptive-ttft"),
		WithAutoscaler("backlog"),
		WithColdStart(5*Second),
		WithScaleBounds(1, 6),
		WithEvents(FleetEvent{At: 40 * Second, Kind: "fail", Replica: 0}),
	)
	return exp, MixedBursty(31, 40, 2)
}

// TestExperimentFleetChaosNoGhostMetrics replays an autoscaled fleet
// through a mid-run replica failure and checks the books still balance:
// the failed replica's metrics freeze at the crash instant, its
// re-dispatched requests are recorded exactly once fleet-wide, and no
// ghost simulation work leaks into the merged rollup. (metrics.Merge
// panics on a duplicated request ID, so a clean run is itself evidence
// the re-dispatch withdrew the dead replica's records.)
//
// The CI race job runs this under -race together with
// TestExperimentFleetChaosConcurrentRuns, which exercises the same
// lifecycle from concurrent goroutines.
func TestExperimentFleetChaosNoGhostMetrics(t *testing.T) {
	exp, trace := fleetChaosExperiment()
	rep, err := exp.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	fleet := rep.Fleet
	if fleet == nil {
		t.Fatal("fleet experiment reported no fleet detail")
	}
	if fleet.Failures != 1 {
		t.Fatalf("failures = %d, want exactly the scheduled crash", fleet.Failures)
	}

	var failed *ClusterReplicaResult
	finishedSum := 0
	for i := range fleet.Replicas {
		r := &fleet.Replicas[i]
		finishedSum += r.Result.Summary.Finished
		if r.State.String() == "failed" {
			failed = r
		}
	}
	if failed == nil {
		t.Fatal("no replica reported the failed state")
	}
	if failed.DownAt != 40*Second {
		t.Fatalf("failed replica went down at %v, want the scheduled 40s", failed.DownAt)
	}
	// Frozen at the crash: the dead engine keeps simulating queued work,
	// but nothing after DownAt may appear in its summary.
	if got := failed.Result.Summary.Makespan; got != failed.DownAt {
		t.Fatalf("failed replica summary extends to %v after its %v crash (ghost metrics)", got, failed.DownAt)
	}
	// E2E latencies are bounded by the span the replica was alive.
	if q := failed.Result.Summary.E2E; q.N > 0 && Time(q.Max*float64(Second)) > failed.DownAt {
		t.Fatalf("failed replica reports an E2E sample of %.2fs, longer than its %v life", q.Max, failed.DownAt)
	}

	// Every arrival is recorded exactly once fleet-wide, and per-replica
	// completions sum to the merged view — nothing double-counted by the
	// re-dispatch, nothing lost by the freeze.
	if rep.Summary.Requests != trace.Len() {
		t.Fatalf("fleet recorded %d requests, trace offered %d", rep.Summary.Requests, trace.Len())
	}
	if finishedSum != rep.Summary.Finished {
		t.Fatalf("per-replica completions sum to %d, merged summary says %d", finishedSum, rep.Summary.Finished)
	}
	if fleet.Rec.Unfinished() != rep.Summary.Requests-rep.Summary.Finished {
		t.Fatal("merged recorder's unfinished count disagrees with the summary")
	}
	if within := fleet.Rec.WithinSLO(rep.SLO); within > rep.Summary.Finished {
		t.Fatalf("%d requests within SLO but only %d finished", within, rep.Summary.Finished)
	}
}

// TestExperimentFleetChaosConcurrentRuns fans the same chaos experiment
// across goroutines — the pattern Sweep and Goodput use — asserting the
// runs are independent and byte-deterministic. Under -race this covers
// concurrent fleet construction, autoscaler ticks, failure handling and
// recorder merges.
func TestExperimentFleetChaosConcurrentRuns(t *testing.T) {
	exp, _ := fleetChaosExperiment()
	const runs = 4
	reports := make([]*Report, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine generates its own trace: traces are mutable
			// and must not be shared across concurrent runs.
			reports[i], errs[i] = exp.Run(MixedBursty(31, 40, 2))
		}()
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
	}
	ref := reports[0]
	for i := 1; i < runs; i++ {
		got := reports[i]
		if got.Summary != ref.Summary {
			t.Fatalf("run %d summary diverged from run 0:\n%+v\n%+v", i, got.Summary, ref.Summary)
		}
		if got.Attainment != ref.Attainment {
			t.Fatalf("run %d attainment %v, run 0 %v", i, got.Attainment, ref.Attainment)
		}
		if got.Fleet.Failures != ref.Fleet.Failures || len(got.Fleet.Replicas) != len(ref.Fleet.Replicas) {
			t.Fatalf("run %d fleet shape diverged", i)
		}
	}
}
