// Cluster: serve the Fig. 13 bursty Conversation + Tool&Agent mix on a
// fleet of replicas and compare router policies — the instance-assignment
// layer above the paper's single-engine multiplexing. Session-affine
// routing keeps multi-turn KV on the replica that cached it, so its
// prefix-cache hit rate (and TTFT tail) beats load-blind round-robin.
//
//	go run ./examples/cluster
package main

import (
	"fmt"

	"muxwise"
)

func main() {
	// Mixed bursty traffic: both Fig. 13 profiles interleaved.
	mk := func() *muxwise.Trace {
		conv := muxwise.Conversation(21, 60).
			WithProfileArrivals(21, muxwise.ConversationProfile(0.25))
		tool := muxwise.ToolAgent(22, 60).
			WithProfileArrivals(22, muxwise.ToolAgentProfile(0.25))
		return muxwise.MixTraces("Conversation+Tool&Agent", conv, tool)
	}

	base := muxwise.Deployment{
		Hardware: "A100", GPUs: 1, Model: "Llama-8B",
		SLO: muxwise.SLO{TTFT: muxwise.Second, TBT: 50 * muxwise.Millisecond},
	}
	replicas := []muxwise.ReplicaSpec{
		{Engine: "MuxWise", Count: 6},
		{Engine: "SGLang-PD", Count: 2, GPUs: 2, Role: "prefill"},
	}

	fmt.Printf("fleet: 6×MuxWise + 2×SGLang-PD(prefill), %d requests of mixed bursty traffic\n\n", mk().Len())
	fmt.Printf("%-16s %9s %9s %8s %8s\n", "router", "p99TTFT", "p99TBT", "attain%", "cache%")

	hits := map[string]float64{}
	for _, router := range muxwise.RouterPolicies() {
		dep := muxwise.ClusterDeployment{Deployment: base, Replicas: replicas, Router: router}
		res, err := muxwise.ServeCluster(dep, mk())
		if err != nil {
			panic(err)
		}
		hits[router] = res.CacheHit
		fmt.Printf("%-16s %8.2fs %7.1fms %8.1f %8.1f\n",
			router,
			res.Summary.TTFT.P99,
			res.Summary.TBT.P99*1e3,
			res.Rec.TBTAttainment(base.SLO.TBT)*100,
			res.CacheHit*100)
	}

	fmt.Printf("\nsession affinity recovered %.1f%% prefix-cache hits vs %.1f%% under round-robin —\n",
		hits["prefix-affinity"]*100, hits["round-robin"]*100)
	fmt.Println("multi-turn sessions stay on the replica holding their KV (llm-d EPP-style scoring)")
}
