// Cluster: serve the Fig. 13 bursty Conversation + Tool&Agent mix on a
// fleet of replicas and compare router policies — the instance-assignment
// layer above the paper's single-engine multiplexing. Session-affine
// routing keeps multi-turn KV on the replica that cached it, so its
// prefix-cache hit rate (and TTFT tail) beats load-blind round-robin.
//
// The second half injects a replica failure mid-run: the fleet
// controller re-dispatches the in-flight requests, sticky sessions
// re-stick elsewhere, and the epoch after the failure pays the KV
// re-prefill penalty — visible as a cache-hit drop in the before/after
// comparison.
//
//	go run ./examples/cluster
package main

import (
	"fmt"

	"muxwise"
)

func main() {
	// Mixed bursty traffic: both Fig. 13 profiles interleaved.
	mk := func() *muxwise.Trace { return muxwise.MixedBursty(21, 60, 0.25) }

	// A config-only policy: the same filter → scorer → picker pipeline
	// the built-ins are made of, composed from a spec string and
	// registered under a short name — it shows up in RouterPolicies()
	// and the comparison below like any built-in.
	composed, err := muxwise.ComposedRouter("epp:scorers=prefix:2,least-tokens:1")
	if err != nil {
		panic(err)
	}
	if err := muxwise.RegisterRouter("prefix-weighted", composed); err != nil {
		panic(err)
	}

	base := muxwise.Deployment{
		Hardware: "A100", GPUs: 1, Model: "Llama-8B",
		SLO: muxwise.SLO{TTFT: muxwise.Second, TBT: 50 * muxwise.Millisecond},
	}
	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(base),
		muxwise.WithFleet(
			muxwise.ReplicaSpec{Engine: "MuxWise", Count: 6},
			muxwise.ReplicaSpec{Engine: "SGLang-PD", Count: 2, GPUs: 2, Role: "prefill"},
		),
	)

	fmt.Printf("fleet: 6×MuxWise + 2×SGLang-PD(prefill), %d requests of mixed bursty traffic\n\n", mk().Len())
	fmt.Printf("%-16s %9s %9s %8s %8s\n", "router", "p99TTFT", "p99TBT", "attain%", "cache%")

	hits := map[string]float64{}
	for _, router := range muxwise.RouterPolicies() {
		report, err := exp.With(muxwise.WithRouter(router)).Run(mk())
		if err != nil {
			panic(err)
		}
		res := report.Fleet
		hits[router] = res.CacheHit
		fmt.Printf("%-16s %8.2fs %7.1fms %8.1f %8.1f\n",
			router,
			res.Summary.TTFT.P99,
			res.Summary.TBT.P99*1e3,
			report.Attainment*100,
			res.CacheHit*100)
	}

	fmt.Printf("\nsession affinity recovered %.1f%% prefix-cache hits vs %.1f%% under round-robin —\n",
		hits["prefix-affinity"]*100, hits["round-robin"]*100)
	fmt.Println("multi-turn sessions stay on the replica holding their KV (llm-d EPP-style scoring)")

	// ---- failure injection: before/after goodput on the same trace ----

	// Crash replica 0 in the thick of the arrivals (the 55th-percentile
	// arrival instant lands inside a Fig. 13 burst), while sessions are
	// pinned to it. A healthy control run marks an epoch boundary at the
	// same instant, so the post-failure window compares like for like —
	// a plain before/after split would be confounded by session warm-up.
	trace := mk()
	mid := trace.Requests[len(trace.Requests)*55/100].Arrival

	run := func(events ...muxwise.FleetEvent) muxwise.ClusterResult {
		report, err := exp.With(
			muxwise.WithRouter("prefix-affinity"),
			muxwise.WithEvents(events...),
		).Run(mk())
		if err != nil {
			panic(err)
		}
		return *report.Fleet
	}
	healthy := run(muxwise.FleetEvent{At: mid, Kind: "mark"})
	failed := run(muxwise.FleetEvent{At: mid, Kind: "fail", Replica: 0})

	fmt.Printf("\nfailure injection: MuxWise-0 crashes at %v (prefix-affinity router)\n", mid)
	for _, ev := range failed.Events {
		fmt.Printf("  %v %s\n", ev.At, ev.Msg)
	}

	// afterEpoch returns the rollup of the window opened at mid.
	afterEpoch := func(res muxwise.ClusterResult) *muxwise.ClusterEpoch {
		for i := range res.Epochs {
			if res.Epochs[i].From >= mid {
				return &res.Epochs[i]
			}
		}
		return nil
	}
	h, f := afterEpoch(healthy), afterEpoch(failed)
	fmt.Printf("\ngoodput over the post-%v window, healthy fleet vs failed fleet:\n", mid)
	fmt.Printf("%-18s %8s %9s %9s %8s %8s\n",
		"fleet", "arrivals", "p99TTFT", "p99TBT", "attain%", "cache%")
	for _, row := range []struct {
		name string
		ep   *muxwise.ClusterEpoch
	}{{"8 replicas", h}, {"7 after crash", f}} {
		fmt.Printf("%-18s %8d %8.2fs %7.1fms %8.1f %8.1f\n",
			row.name, row.ep.Window.Arrivals, row.ep.Window.TTFT.P99,
			row.ep.Window.TBT.P99*1e3, row.ep.Attainment*100, row.ep.CacheHit*100)
	}
	fmt.Printf("\nthe crash costs %.1f points of cache hit in the epoch after it —\n",
		(h.CacheHit-f.CacheHit)*100)
	fmt.Println("every session pinned to the dead replica re-prefills its context wherever")
	fmt.Println("it re-sticks: the KV-migration penalty of losing an affinity replica")
}
