// Quickstart: serve a ShareGPT chatbot workload with MuxWise on a
// simulated 8×A100 server and print the latency summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"muxwise"
)

func main() {
	// Generate 500 chatbot requests arriving at 5 req/s (Poisson).
	trace := muxwise.ShareGPT(42, 500).WithPoissonArrivals(42, 5)

	dep := muxwise.Deployment{
		Hardware: "A100",
		GPUs:     8,
		Model:    "Llama-8B",
		SLO: muxwise.SLO{
			TTFT: 500 * muxwise.Millisecond,
			TBT:  50 * muxwise.Millisecond,
		},
	}

	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(dep),
		muxwise.WithEngine("MuxWise"),
	)
	report, err := exp.Run(trace)
	if err != nil {
		panic(err)
	}

	s := report.Summary
	fmt.Printf("served %d requests in %.1fs of simulated time\n", s.Finished, s.Makespan.Seconds())
	fmt.Printf("TTFT  %s\n", s.TTFT)
	fmt.Printf("TBT   %s\n", s.TBT)
	fmt.Printf("TPOT  %s\n", s.TPOT)
	fmt.Printf("E2E   %s\n", s.E2E)
	fmt.Printf("throughput %.0f tokens/s, TBT SLO attainment %.2f%%\n",
		s.TokensPerSecond, report.Attainment*100)
	fmt.Printf("partition reconfigurations: %d (%d distinct splits)\n",
		report.Engine.Timeline.Changes(), report.Engine.Timeline.DistinctConfigs())
}
