// Partitions: watch the SLO-aware dispatcher at work (the Fig. 18 view).
// Serves three workloads with opposite prefill/decode balances and prints
// the SM split MuxWise settles on for each.
//
//	go run ./examples/partitions
package main

import (
	"fmt"

	"muxwise"
)

func main() {
	dep := muxwise.Deployment{
		Hardware: "A100",
		GPUs:     8,
		Model:    "Llama-70B",
		SLO:      muxwise.SLO{TTFT: muxwise.Second, TBT: 100 * muxwise.Millisecond},
	}

	cases := []struct {
		name  string
		trace *muxwise.Trace
	}{
		// Ultra-long inputs, near-empty outputs: prefill-dominated.
		{"LooGLE", muxwise.LooGLE(21, 60).WithPoissonArrivals(21, 0.08)},
		// Moderate both ways.
		{"ShareGPT", muxwise.ShareGPT(22, 500).WithPoissonArrivals(22, 2.0)},
		// Short inputs, very long reasoning outputs: decode-dominated.
		{"OpenThoughts", muxwise.OpenThoughts(23, 80).WithPoissonArrivals(23, 0.25)},
	}

	fmt.Println("mean SM shares chosen by the dispatcher (Llama-70B, 8×A100):")
	fmt.Printf("%-14s %10s %10s %10s\n", "workload", "prefill%", "decode%", "splits")
	for _, c := range cases {
		res, err := muxwise.Serve("MuxWise", dep, c.trace)
		if err != nil {
			panic(err)
		}
		dec, pre := res.Timeline.MeanSharesActive(res.Summary.Makespan, 108)
		fmt.Printf("%-14s %9.1f%% %9.1f%% %10d\n",
			c.name, pre*100, dec*100, res.Timeline.DistinctConfigs())
	}
	fmt.Println("\npaper (Fig. 18): prefill share ranks LooGLE > ShareGPT > OpenThoughts;")
	fmt.Println("the same binary serves all three because partitions reconfigure at runtime.")
}
