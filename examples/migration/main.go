// Migration: roll a replica out of a fleet mid-run and compare the two
// ways its sessions' KV can move. The re-prefill baseline (PR 2
// semantics, still the default) lets every re-routed session recompute
// its whole context on the new replica; WithMigration streams the KV
// over the modeled interconnect instead — bytes = tokens × the model's
// per-token KV size, time = bytes / link bandwidth + a fixed handoff,
// NVLink inside a hardware shape, PCIe across shapes. The contrast is
// the transfer-vs-recompute tradeoff DistServe frames disaggregated
// serving around, measured as per-request SLO goodput.
//
//	go run ./examples/migration
package main

import (
	"fmt"

	"muxwise"
)

func main() {
	mk := func() *muxwise.Trace { return muxwise.MixedBursty(8, 60, 0.2) }

	dep := muxwise.Deployment{
		Hardware: "A100", GPUs: 1, Model: "Llama-8B",
		SLO: muxwise.SLO{TTFT: muxwise.Second, TBT: 50 * muxwise.Millisecond},
	}
	// A rolling restart: replacements spawn ahead (5 s cold start), then
	// the original replicas drain one by one — capacity never dips, so
	// the only difference between the two runs is how KV moves.
	base := muxwise.NewExperiment(
		muxwise.WithDeployment(dep),
		muxwise.WithFleet(muxwise.ReplicaSpec{Engine: "MuxWise", Count: 4}),
		muxwise.WithRouter("prefix-affinity"),
		muxwise.WithColdStart(5*muxwise.Second),
		muxwise.WithEvents(
			muxwise.FleetEvent{At: 35 * muxwise.Second, Kind: "spawn"},
			muxwise.FleetEvent{At: 40 * muxwise.Second, Kind: "drain", Replica: 0},
			muxwise.FleetEvent{At: 75 * muxwise.Second, Kind: "spawn"},
			muxwise.FleetEvent{At: 80 * muxwise.Second, Kind: "drain", Replica: 1},
			muxwise.FleetEvent{At: 115 * muxwise.Second, Kind: "spawn"},
			muxwise.FleetEvent{At: 120 * muxwise.Second, Kind: "drain", Replica: 2},
		),
	)

	fmt.Printf("rolling restart of a 4×MuxWise fleet, %d requests of mixed bursty traffic\n\n", mk().Len())
	fmt.Printf("%-12s %9s %9s %9s %8s %12s %10s\n",
		"kv on drain", "p99TTFT", "p99TBT", "withinSLO", "cache%", "migrated-tok", "stall")

	var goodput [2]int
	for i, migrate := range []bool{false, true} {
		exp := base
		label := "re-prefill"
		if migrate {
			exp = base.With(muxwise.WithMigration())
			label = "migrate"
		}
		report, err := exp.Run(mk())
		if err != nil {
			panic(err)
		}
		fleet := report.Fleet
		within := fleet.Rec.WithinSLO(report.SLO)
		goodput[i] = within
		fmt.Printf("%-12s %8.2fs %7.1fms %9d %8.1f %12d %10v\n",
			label,
			report.Summary.TTFT.P99,
			report.Summary.TBT.P99*1e3,
			within,
			fleet.CacheHit*100,
			fleet.Migration.MigratedTokens,
			fleet.Migration.Stall)
	}

	fmt.Printf("\nstreaming KV over NVLink served %d more requests within SLO than re-prefilling —\n",
		goodput[1]-goodput[0])
	fmt.Println("a drained replica's sessions find their context warm where their traffic re-routed")
}
