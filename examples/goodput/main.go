// Goodput: reproduce the paper's headline metric on a small scale — the
// highest request rate each system sustains with ≥99% of token gaps
// inside the TBT SLO (Tool&Agent workload, Llama-70B on 8×A100).
//
//	go run ./examples/goodput
package main

import (
	"errors"
	"fmt"

	"muxwise"
)

func main() {
	dep := muxwise.Deployment{
		Hardware: "A100",
		GPUs:     8,
		Model:    "Llama-70B",
		SLO:      muxwise.SLO{TTFT: muxwise.Second, TBT: 100 * muxwise.Millisecond},
	}
	base := muxwise.NewExperiment(
		muxwise.WithDeployment(dep),
		muxwise.WithWorkload(func(rate float64) *muxwise.Trace {
			return muxwise.ToolAgent(11, 300).WithPoissonArrivals(11+uint64(rate*1000), rate)
		}),
	)

	fmt.Println("searching goodput in [0.05, 0.8] req/s on Tool&Agent…")
	results := map[string]float64{}
	systems := []string{"MuxWise", "Chunked", "LoongServe", "SGLang-PD"}
	for _, engine := range systems {
		g, err := base.With(muxwise.WithEngine(engine)).Goodput(0.05, 0.8)
		if errors.Is(err, muxwise.ErrNoFeasibleRate) {
			g = 0 // distinguished from a real error: the range is just too fast
		} else if err != nil {
			panic(err)
		}
		results[engine] = g
		fmt.Printf("  %-11s %.3f req/s\n", engine, g)
	}
	fmt.Println()
	for _, engine := range systems[1:] {
		if results[engine] > 0 {
			fmt.Printf("MuxWise vs %-11s %.2f×\n", engine, results["MuxWise"]/results[engine])
		} else {
			fmt.Printf("MuxWise vs %-11s n/a (never met the SLO)\n", engine)
		}
	}
	fmt.Println("\npaper (Fig. 15, Llama-70B): 3.06× over chunked, 2.62× over LoongServe, 1.62× over SGLang-PD")
}
