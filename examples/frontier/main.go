// Frontier: the Fig. 13 goodput-per-GPU story in one sweep. An
// aggregated 2-GPU MuxWise fleet is compared against 4-GPU disaggregated
// and mixed P/D fleets on the bursty Conversation + Tool&Agent mix: at
// low burst scales the aggregated fleet wins per GPU (its devices stay
// busy), but as bursts grow it saturates and the larger P/D fleets
// overtake it — the crossover the paper's evaluation is built around.
//
// Every cell replays the same trace through muxwise.Experiment and
// reports DistServe-style SLO goodput (requests finishing with TTFT and
// every inter-token gap inside the SLO) per GPU-second provisioned.
//
//	go run ./examples/frontier
package main

import (
	"fmt"

	"muxwise"
)

// compositions under comparison: name, initial fleet, device total.
type composition struct {
	name string
	reps []muxwise.ReplicaSpec
	gpus int
}

func main() {
	dep := muxwise.Deployment{
		Hardware: "A100", GPUs: 1, Model: "Llama-8B",
		SLO: muxwise.SLO{TTFT: muxwise.Second, TBT: 50 * muxwise.Millisecond},
	}
	comps := []composition{
		{"aggregated", []muxwise.ReplicaSpec{
			{Engine: "MuxWise", Count: 2},
		}, 2},
		{"disaggregated", []muxwise.ReplicaSpec{
			{Engine: "SGLang-PD", Count: 2, Role: "prefill"},
			{Engine: "SGLang-PD", Count: 2, Role: "decode"},
		}, 4},
		{"mixed", []muxwise.ReplicaSpec{
			{Engine: "MuxWise", Count: 2},
			{Engine: "SGLang-PD", Count: 1, Role: "prefill"},
			{Engine: "SGLang-PD", Count: 1, Role: "decode"},
		}, 4},
	}
	scales := []float64{0.5, 2, 4}

	fmt.Println("goodput-per-GPU frontier, pd-split router, Fig. 13 burst scales")
	fmt.Printf("%-12s %14s %14s %14s  %s\n", "burst-scale", "aggregated", "disaggregated", "mixed", "leader")

	var crossover float64
	for _, scale := range scales {
		perGPU := map[string]float64{}
		leader := ""
		for _, c := range comps {
			trace := muxwise.MixedBursty(11, 60, scale)
			var span muxwise.Time
			for _, r := range trace.Requests {
				if r.Arrival > span {
					span = r.Arrival
				}
			}
			exp := muxwise.NewExperiment(
				muxwise.WithDeployment(dep),
				muxwise.WithFleet(c.reps...),
				muxwise.WithRouter("pd-split"),
			)
			report, err := exp.Run(trace)
			if err != nil {
				panic(err)
			}
			// Per-request SLO goodput over the arrival span, per device.
			within := report.Fleet.Rec.WithinSLO(report.SLO)
			perGPU[c.name] = float64(within) / span.Seconds() / float64(c.gpus)
			if leader == "" || perGPU[c.name] > perGPU[leader] {
				leader = c.name
			}
		}
		if crossover == 0 && leader != "aggregated" {
			crossover = scale
		}
		fmt.Printf("%-12g %14.4f %14.4f %14.4f  %s\n",
			scale, perGPU["aggregated"], perGPU["disaggregated"], perGPU["mixed"], leader)
	}

	fmt.Println()
	if crossover > 0 {
		fmt.Printf("crossover at burst scale %g: past it, provisioning disaggregated/mixed P/D capacity\n", crossover)
		fmt.Println("beats packing the same traffic onto the aggregated fleet — Fig. 13's headline shape.")
		fmt.Println("(muxbench -run frontier sweeps this under failures, autoscaling and more routers;")
		fmt.Println("go test ./internal/frontier pins it against committed goldens)")
	} else {
		fmt.Println("no crossover in this sweep: the aggregated fleet led at every burst scale")
	}
}
