// Multiturn: the paper's motivating scenario — multi-turn agent sessions
// whose context grows turn over turn. Compares MuxWise against
// chunked-prefill and static disaggregation on the same Tool&Agent trace
// with a 100 ms TBT SLO on Llama-70B. Demonstrates why KV-cache reuse
// across requests and dynamic compute partitioning together decide TTFT.
//
//	go run ./examples/multiturn
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"muxwise"
)

func main() {
	dep := muxwise.Deployment{
		Hardware: "A100",
		GPUs:     8,
		Model:    "Llama-70B",
		SLO: muxwise.SLO{
			TTFT: muxwise.Second,
			TBT:  100 * muxwise.Millisecond,
		},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tp99 TTFT(s)\tp99 TBT(ms)\tTBT attain%\tstate")
	for _, engine := range []string{"MuxWise", "Chunked", "SGLang-PD", "LoongServe"} {
		// 400 sessions, ~2.2 turns each, Poisson arrivals at 0.35 req/s.
		trace := muxwise.ToolAgent(7, 400).WithPoissonArrivals(7, 0.35)
		res, err := muxwise.Serve(engine, dep, trace)
		if err != nil {
			panic(err)
		}
		s := res.Summary
		state := "stable"
		if s.Unstable {
			state = "UNSTABLE"
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%.1f\t%s\n",
			engine, s.TTFT.P99, s.TBT.P99*1e3,
			res.Rec.TBTAttainment(dep.SLO.TBT)*100, state)
	}
	w.Flush()
	fmt.Println("\nMuxWise keeps one KV pool (multi-turn prefixes hit the radix cache)")
	fmt.Println("and gives decode just enough SMs to hold its SLO, so prefill gets the rest.")
}
