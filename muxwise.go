// Package muxwise is a discrete-event reproduction of "Towards
// High-Goodput LLM Serving with Prefill-decode Multiplexing" (ASPLOS
// 2026). It provides the MuxWise serving engine — intra-GPU
// prefill-decode multiplexing on SM partitions — together with the five
// baseline systems the paper compares against, the workload generators of
// its evaluation, and a benchmark harness that regenerates every table
// and figure.
//
// # Quick start
//
// Everything runs through one composable runner, the Experiment:
//
//	trace := muxwise.ShareGPT(1, 500).WithPoissonArrivals(1, 5)
//	dep := muxwise.Deployment{
//		Hardware: "A100", GPUs: 8, Model: "Llama-8B",
//		SLO: muxwise.SLO{TTFT: 500 * muxwise.Millisecond, TBT: 50 * muxwise.Millisecond},
//	}
//	exp := muxwise.NewExperiment(muxwise.WithDeployment(dep), muxwise.WithEngine("MuxWise"))
//	report, err := exp.Run(trace)
//	fmt.Println(report.Summary.TTFT, report.Summary.TBT)
//
// Engines are selected by name: "MuxWise", "Chunked", "NanoFlow",
// "LoongServe", "SGLang-PD", "WindServe", "Temporal". Everything runs on
// a deterministic simulator — no GPU required.
//
// # Clusters
//
// WithFleet scales the same simulation to a replica fleet behind an
// EPP-style request router (round-robin, least-tokens, prefix-affinity,
// pd-split, adaptive-ttft):
//
//	exp := muxwise.NewExperiment(
//		muxwise.WithDeployment(dep),
//		muxwise.WithFleet(
//			muxwise.ReplicaSpec{Engine: "MuxWise", Count: 6},
//			muxwise.ReplicaSpec{Engine: "SGLang-PD", Count: 2, Role: "prefill"},
//		),
//		muxwise.WithRouter("pd-split"),
//	)
//	report, err := exp.Run(trace)
//
// Routers and autoscalers are pluggable: implement Router or Autoscaler
// against the read-only FleetView/FleetSnapshot and register the policy
// by name (RegisterRouter, RegisterAutoscaler) to use it anywhere a
// built-in name works. The "adaptive-ttft" policy — per-replica EWMA of
// observed TTFT — is the reference learned router built on that seam.
//
// The pre-Experiment entry points (Serve, Goodput, Sweep, ServeCluster,
// ClusterGoodput, ClusterSweep) remain as thin deprecated wrappers.
package muxwise

import (
	"fmt"
	"time"

	"muxwise/internal/cluster"
	"muxwise/internal/experiments"
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Time is simulated time in nanoseconds (layout-compatible with
// time.Duration).
type Time = sim.Time

// Re-exported time units for SLO construction.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// FromDuration converts a wall-clock duration to simulated time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Core types re-exported from the internal packages.
type (
	// SLO holds the TTFT and TBT latency targets.
	SLO = metrics.SLO
	// Summary aggregates a run's latency statistics.
	Summary = metrics.Summary
	// Quantiles is a latency distribution summary.
	Quantiles = metrics.Quantiles
	// Trace is a generated request trace.
	Trace = workload.Trace
	// Request is a single trace entry.
	Request = workload.Request
	// Result couples a run's summary with engine accounting.
	Result = serve.Result
	// RatePoint is one sample of a load sweep.
	RatePoint = serve.RatePoint
	// Arch describes an LLM architecture.
	Arch = model.Arch
	// GPUSpec describes GPU hardware.
	GPUSpec = gpu.Spec
)

// Workload generators (Table 1 statistics).
var (
	// ShareGPT generates chatbot requests.
	ShareGPT = workload.ShareGPT
	// LooGLE generates long-context understanding requests.
	LooGLE = workload.LooGLE
	// OpenThoughts generates reasoning requests with a shared prompt.
	OpenThoughts = workload.OpenThoughts
	// Conversation generates multi-turn chatbot sessions.
	Conversation = workload.Conversation
	// ToolAgent generates multi-turn tool/agent sessions.
	ToolAgent = workload.ToolAgent
	// MixTraces interleaves traces by arrival time.
	MixTraces = workload.Mix
	// ConversationProfile is the bursty Fig. 13 Conversation rate shape.
	ConversationProfile = workload.ConversationProfile
	// ToolAgentProfile is the bursty Fig. 13 Tool&Agent rate shape.
	ToolAgentProfile = workload.ToolAgentProfile
	// ReadTraceJSONL loads a trace written by Trace.WriteJSONL.
	ReadTraceJSONL = workload.ReadJSONL
)

// MixedBursty builds the Fig. 13 bursty Conversation + Tool&Agent mix
// the cluster tooling replays: the given number of sessions of each
// workload, profile-paced at the given burst scale (Tool&Agent seeded
// at seed+1). muxcluster, tracegen and the cluster example all replay
// exactly this trace.
func MixedBursty(seed uint64, sessions int, scale float64) *Trace {
	conv := Conversation(seed, sessions).
		WithProfileArrivals(seed, ConversationProfile(scale))
	tool := ToolAgent(seed+1, sessions).
		WithProfileArrivals(seed+1, ToolAgentProfile(scale))
	return MixTraces("Conversation+Tool&Agent", conv, tool)
}

// Deployment describes the simulated serving hardware and model.
type Deployment struct {
	// Hardware names a GPU spec: "A100", "H100", "H200", or "B200".
	Hardware string
	// GPUs is the number of devices (tensor-parallel width for
	// aggregated engines).
	GPUs int
	// Model names an architecture: "Llama-8B", "Llama-70B",
	// "Qwen3-235B-A22B", or "CodeLlama-34B".
	Model string
	// SLO sets the latency targets; zero values use per-model defaults
	// (50 ms TBT for small models, 100 ms for large, per §4.1).
	SLO SLO
}

// config resolves the deployment into a serve.Config.
func (d Deployment) config() (serve.Config, error) {
	spec, ok := gpu.SpecByName(d.Hardware)
	if !ok {
		return serve.Config{}, fmt.Errorf("muxwise: unknown hardware %q", d.Hardware)
	}
	arch, ok := model.ByName(d.Model)
	if !ok {
		return serve.Config{}, fmt.Errorf("muxwise: unknown model %q", d.Model)
	}
	gpus := d.GPUs
	if gpus <= 0 {
		gpus = 8
	}
	slo := d.SLO
	if slo.TBT == 0 {
		slo.TBT = 100 * sim.Millisecond
		if arch.Params() < 30e9 {
			slo.TBT = 50 * sim.Millisecond
		}
	}
	if slo.TTFT == 0 {
		slo.TTFT = sim.Second
	}
	return serve.Config{Spec: spec, GPUs: gpus, Arch: arch, SLO: slo}, nil
}

// Engines lists the available engine names.
func Engines() []string {
	return []string{"MuxWise", "Chunked", "NanoFlow", "LoongServe", "SGLang-PD", "WindServe", "Temporal"}
}

// factory resolves an engine name.
func factory(engine string) (serve.Factory, error) {
	f, ok := experiments.Baselines()[engine]
	if !ok {
		return nil, fmt.Errorf("muxwise: unknown engine %q (have %v)", engine, Engines())
	}
	return f, nil
}

// Serve replays the trace against the named engine on the deployment and
// returns the run result. Runs are deterministic for a given input.
//
// Deprecated: use NewExperiment(WithDeployment(dep),
// WithEngine(engine)).Run(trace) and read Report.Engine.
func Serve(engine string, dep Deployment, trace *Trace) (Result, error) {
	rep, err := NewExperiment(WithDeployment(dep), WithEngine(engine)).Run(trace)
	if err != nil {
		return Result{}, err
	}
	return *rep.Engine, nil
}

// Goodput finds the highest request rate (req/s, within [lo, hi]) at
// which the engine sustains ≥99% TBT SLO attainment on traces built by
// mkTrace — the paper's headline metric. An invalid range is an error;
// a range whose floor rate already misses the criterion returns
// ErrNoFeasibleRate.
//
// Deprecated: use NewExperiment(WithDeployment(dep), WithEngine(engine),
// WithWorkload(mkTrace)).Goodput(lo, hi).
func Goodput(engine string, dep Deployment, mkTrace func(rate float64) *Trace, lo, hi float64) (float64, error) {
	return NewExperiment(
		WithDeployment(dep), WithEngine(engine), WithWorkload(mkTrace),
	).Goodput(lo, hi)
}

// Sweep probes each offered rate, stopping shortly after the engine
// first misses the SLO criterion. Probes run concurrently (results are
// identical to a sequential sweep), so mkTrace must be safe to call
// from multiple goroutines — return a fresh trace per call.
//
// Deprecated: use NewExperiment(WithDeployment(dep), WithEngine(engine),
// WithWorkload(mkTrace)).Sweep(rates...).
func Sweep(engine string, dep Deployment, mkTrace func(rate float64) *Trace, rates []float64) ([]RatePoint, error) {
	return NewExperiment(
		WithDeployment(dep), WithEngine(engine), WithWorkload(mkTrace),
	).Sweep(rates...)
}

// Cluster types re-exported from internal/cluster.
type (
	// ClusterResult aggregates a fleet run: the merged fleet summary,
	// per-replica rollups, and — for lifecycle-managed fleets — the
	// per-epoch rollups and the fleet event log.
	ClusterResult = cluster.Result
	// ClusterReplicaResult is one replica's rollup in a ClusterResult.
	ClusterReplicaResult = cluster.ReplicaResult
	// ClusterEpoch is one fleet epoch's rollup (the interval between
	// consecutive fleet mutations).
	ClusterEpoch = cluster.Epoch
	// FleetLogEntry is one timestamped fleet lifecycle message.
	FleetLogEntry = cluster.LogEntry
)

// ReplicaSpec describes one shape of replica in a ClusterDeployment.
type ReplicaSpec struct {
	// Engine names the serving engine, see Engines().
	Engine string
	// Count is how many replicas of this shape to run (default 1).
	Count int
	// GPUs overrides the deployment's per-replica device count.
	GPUs int
	// Hardware overrides the deployment's GPU spec for this shape
	// ("A100", "H100", "H200", "B200"); empty inherits the deployment. Mixing
	// shapes builds a heterogeneous fleet, each replica costed by its
	// own hardware model.
	Hardware string
	// Role is "", "general", "prefill", or "decode"; the pd-split
	// router steers long-prefill requests to prefill-role replicas.
	Role string
}

// spec resolves the public replica spec against the engine and hardware
// registries.
func (rs ReplicaSpec) spec() (cluster.ReplicaSpec, error) {
	f, err := factory(rs.Engine)
	if err != nil {
		return cluster.ReplicaSpec{}, err
	}
	role, err := cluster.ParseRole(rs.Role)
	if err != nil {
		return cluster.ReplicaSpec{}, err
	}
	out := cluster.ReplicaSpec{
		Engine: rs.Engine, Factory: f, Count: rs.Count, GPUs: rs.GPUs, Role: role,
	}
	if rs.Hardware != "" {
		spec, ok := gpu.SpecByName(rs.Hardware)
		if !ok {
			return cluster.ReplicaSpec{}, fmt.Errorf("muxwise: unknown hardware %q", rs.Hardware)
		}
		out.Hardware = spec
	}
	return out, nil
}

// FleetEvent schedules one fleet lifecycle transition inside a cluster
// run's deterministic event loop.
type FleetEvent struct {
	// At is when the event applies.
	At Time
	// Kind is "spawn", "drain", "fail", "retire", or "mark" (an epoch
	// boundary with no fleet change, for aligning reports across runs).
	Kind string
	// Replica targets drain/fail/retire by ID: replicas are numbered in
	// spawn order, the initial fleet first.
	Replica int
	// Spec is the shape a spawn adds; nil borrows the first configured
	// replica shape.
	Spec *ReplicaSpec
	// ColdStart overrides the fleet-wide spawn-to-ready delay for this
	// spawn (zero means the FleetOptions default).
	ColdStart Time
}

// FleetOptions attaches lifecycle events and autoscaling to a
// ClusterDeployment.
type FleetOptions struct {
	// Events are scheduled fleet transitions.
	Events []FleetEvent
	// Autoscaler is "", "backlog", or "ttft".
	Autoscaler string
	// TargetTTFT is the "ttft" autoscaler's P99 target (default 1 s).
	TargetTTFT Time
	// Cadence is the autoscaler observation interval (default 5 s).
	Cadence Time
	// ColdStart is the spawn-to-ready delay (default 15 s).
	ColdStart Time
	// Spawn is the shape the autoscaler adds; nil borrows the first
	// configured replica shape.
	Spawn *ReplicaSpec
	// MinReplicas and MaxReplicas bound the autoscaler (defaults 1, 64).
	MinReplicas, MaxReplicas int
	// Migration enables KV streaming on graceful takedowns (drain,
	// retire, autoscaler scale-down): instead of repaying a full
	// re-prefill, a leaving replica's in-flight sessions stream their KV
	// to the replica their traffic re-routes to, at the modeled
	// interconnect cost (NVLink within a hardware shape, PCIe across
	// shapes). Failures still lose their KV — including streams caught
	// mid-flight by the crash.
	Migration bool
	// MigrationHandoff overrides the fixed per-session stream setup
	// latency (default 8 ms).
	MigrationHandoff Time
}

// fleetConfig resolves the public fleet options.
func (fo *FleetOptions) fleetConfig() (*cluster.FleetConfig, error) {
	if fo == nil {
		return nil, nil
	}
	fc := &cluster.FleetConfig{
		Cadence:   fo.Cadence,
		ColdStart: fo.ColdStart,
		Min:       fo.MinReplicas,
		Max:       fo.MaxReplicas,
	}
	if fo.Autoscaler != "" {
		mk, ok := cluster.Scalers()[fo.Autoscaler]
		if !ok {
			return nil, fmt.Errorf("muxwise: unknown autoscaler %q (have %v)", fo.Autoscaler, AutoscalerPolicies())
		}
		sc := mk()
		// The TTFT target flows through the plugin seam: any scaler —
		// built-in or registered — that implements TTFTTargeted gets it.
		if tt, ok := sc.(cluster.TTFTTargeted); ok && fo.TargetTTFT > 0 {
			sc = tt.WithTarget(fo.TargetTTFT)
		}
		fc.Scaler = sc
	}
	if fo.Spawn != nil {
		spec, err := fo.Spawn.spec()
		if err != nil {
			return nil, err
		}
		fc.Spawn = spec
	}
	for _, ev := range fo.Events {
		out := cluster.FleetEvent{At: ev.At, Replica: ev.Replica, ColdStart: ev.ColdStart}
		switch ev.Kind {
		case "spawn":
			out.Kind = cluster.SpawnReplica
		case "drain":
			out.Kind = cluster.DrainReplica
		case "fail":
			out.Kind = cluster.FailReplica
		case "retire":
			out.Kind = cluster.RetireReplica
		case "mark":
			out.Kind = cluster.MarkEpoch
		default:
			return nil, fmt.Errorf("muxwise: unknown fleet event kind %q (want spawn, drain, fail, retire, mark)", ev.Kind)
		}
		if ev.Spec != nil {
			spec, err := ev.Spec.spec()
			if err != nil {
				return nil, err
			}
			out.Spec = spec
		}
		fc.Events = append(fc.Events, out)
	}
	return fc, nil
}

// ClusterDeployment describes a replica fleet behind a request router.
// The embedded Deployment supplies the per-replica hardware, model and
// SLO (its GPUs field is the per-replica default).
type ClusterDeployment struct {
	Deployment
	// Replicas lists the fleet shapes, e.g. 6× MuxWise + 2× SGLang-PD.
	Replicas []ReplicaSpec
	// Router names the policy, see RouterPolicies(). Empty selects
	// prefix-affinity (the EPP-style default).
	Router string
	// Fleet optionally scripts lifecycle events (spawn with cold start,
	// drain, fail, retire) and attaches an autoscaler. Nil keeps the
	// fleet fixed for the whole run.
	Fleet *FleetOptions
}

// experiment lowers the legacy deployment struct onto the Experiment
// runner the deprecated Cluster* wrappers delegate to.
func (d ClusterDeployment) experiment() *Experiment {
	opts := []Option{
		WithDeployment(d.Deployment),
		WithFleet(d.Replicas...),
		WithRouter(d.Router),
	}
	if d.Fleet != nil {
		opts = append(opts, WithFleetOptions(*d.Fleet))
	}
	return NewExperiment(opts...)
}

// config resolves the cluster deployment into a cluster.Config.
func (d ClusterDeployment) config() (cluster.Config, error) {
	base, err := d.Deployment.config()
	if err != nil {
		return cluster.Config{}, err
	}
	name := d.Router
	if name == "" {
		name = cluster.PrefixAffinityPolicy
	}
	policy, err := cluster.ResolvePolicy(name)
	if err != nil {
		return cluster.Config{}, fmt.Errorf("muxwise: %w", err)
	}
	cfg := cluster.Config{Base: base, Policy: policy}
	for _, rs := range d.Replicas {
		spec, err := rs.spec()
		if err != nil {
			return cluster.Config{}, err
		}
		cfg.Replicas = append(cfg.Replicas, spec)
	}
	cfg.Fleet, err = d.Fleet.fleetConfig()
	if err != nil {
		return cluster.Config{}, err
	}
	if d.Fleet != nil {
		cfg.Migration = cluster.MigrationConfig{
			Enabled: d.Fleet.Migration,
			Handoff: d.Fleet.MigrationHandoff,
		}
	}
	return cfg, nil
}

// ServeCluster replays the trace against a simulated replica fleet and
// returns fleet-wide plus per-replica results. Runs are deterministic.
//
// Deprecated: use NewExperiment(WithDeployment(dep.Deployment),
// WithFleet(dep.Replicas...), WithRouter(dep.Router)).Run(trace) and
// read Report.Fleet.
func ServeCluster(dep ClusterDeployment, trace *Trace) (ClusterResult, error) {
	rep, err := dep.experiment().Run(trace)
	if err != nil {
		return ClusterResult{}, err
	}
	return *rep.Fleet, nil
}

// ClusterGoodput finds the highest request rate (req/s, within [lo, hi])
// at which the fleet sustains the §4 goodput criterion on its merged
// metrics — the paper's headline metric lifted to the cluster level. An
// invalid range is an error; a range whose floor rate already misses
// the criterion returns ErrNoFeasibleRate.
//
// Deprecated: use an Experiment with WithFleet and WithWorkload, then
// Goodput(lo, hi).
func ClusterGoodput(dep ClusterDeployment, mkTrace func(rate float64) *Trace, lo, hi float64) (float64, error) {
	return dep.experiment().With(WithWorkload(mkTrace)).Goodput(lo, hi)
}

// ClusterSweep probes each offered rate against the fleet, with the
// same early-stop semantics as Sweep. Like Sweep, probes run
// concurrently and mkTrace must be goroutine-safe.
//
// Deprecated: use an Experiment with WithFleet and WithWorkload, then
// Sweep(rates...).
func ClusterSweep(dep ClusterDeployment, mkTrace func(rate float64) *Trace, rates []float64) ([]RatePoint, error) {
	return dep.experiment().With(WithWorkload(mkTrace)).Sweep(rates...)
}
