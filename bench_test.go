package muxwise_test

// One benchmark per reproduced table and figure. Each runs the
// corresponding experiment at quick scale so `go test -bench=.` exercises
// the full harness; `cmd/muxbench -run all` produces the paper-scale
// numbers recorded in EXPERIMENTS.md.

import (
	"testing"

	"muxwise/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tables := e.Run(experiments.Opts{Quick: true})
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
		for _, t := range tables {
			if t.ID != "fig18-burst" && len(t.Rows) == 0 {
				b.Fatalf("%s table %s has no rows", id, t.ID)
			}
		}
	}
}

func BenchmarkTable1(b *testing.B)      { benchExperiment(b, "tab1") }
func BenchmarkEstimator(b *testing.B)   { benchExperiment(b, "tab2") }
func BenchmarkFig3(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig5(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig11(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig13(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkTables34(b *testing.B)    { benchExperiment(b, "tab34") }
func BenchmarkFig15(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkTable5(b *testing.B)      { benchExperiment(b, "tab5") }
func BenchmarkFig16(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)       { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)       { benchExperiment(b, "fig19") }
func BenchmarkBubbles(b *testing.B)     { benchExperiment(b, "sec442") }
func BenchmarkFig20(b *testing.B)       { benchExperiment(b, "fig20") }
func BenchmarkSec431(b *testing.B)      { benchExperiment(b, "sec431") }
func BenchmarkOverheads(b *testing.B)   { benchExperiment(b, "sec45") }
func BenchmarkRelatedWork(b *testing.B) { benchExperiment(b, "sec6") }
