package muxwise

import (
	"io"

	"muxwise/internal/metrics"
	"muxwise/internal/obs"
)

// FlightRecorder is a deterministic, append-only trace of everything a
// run did: per-request lifecycle spans (arrival, queueing, prefill
// chunks, first token, decode iterations, finish or abort), KV-migration
// stream spans with byte counts and link class, fleet lifecycle events
// (spawn/ready/drain/fail), autoscaler decisions with the signal that
// triggered them, and per-candidate router pick records.
//
// Recording is purely observational: attaching a recorder never
// schedules an event or perturbs the simulation, so a run's Summary and
// FrontierReport are byte-identical with tracing on or off. A nil
// *FlightRecorder is valid everywhere and records nothing at zero cost.
//
// Export the buffer with WriteChromeTrace (load the file in Perfetto or
// chrome://tracing) or WriteJSONL (one event per line for ad-hoc
// analysis).
type FlightRecorder = obs.Tracer

// NewFlightRecorder returns an empty flight recorder ready to be
// attached to an Experiment with WithTrace.
func NewFlightRecorder() *FlightRecorder { return obs.New() }

// WithTrace attaches a flight recorder to the experiment. Only Run
// records into it; Sweep and Goodput probe many configurations
// concurrently and always run untraced. Passing nil is a no-op.
func WithTrace(fr *FlightRecorder) Option {
	return func(e *Experiment) { e.trace = fr }
}

// MissBreakdown attributes every SLO miss of a run to a cause. It is
// returned as Report.MissCauses and per frontier cell.
type MissBreakdown = metrics.MissBreakdown

// WriteChromeTrace writes fr as Chrome trace-event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, fr *FlightRecorder) error {
	return fr.WriteChromeTrace(w)
}

// WriteTraceJSONL writes fr as compact JSONL, one event per line.
func WriteTraceJSONL(w io.Writer, fr *FlightRecorder) error {
	return fr.WriteJSONL(w)
}
