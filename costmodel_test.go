package muxwise_test

import (
	"math"
	"testing"

	"muxwise"
)

// run serves the shared MixedBursty trace on one deployment under the
// named cost model and returns the report.
func runCostModel(t *testing.T, hw, mdl, cost string, gpus int) *muxwise.Report {
	t.Helper()
	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(muxwise.Deployment{Hardware: hw, GPUs: gpus, Model: mdl}),
		muxwise.WithEngine("MuxWise"),
		muxwise.WithCostModel(cost),
	)
	rep, err := exp.Run(muxwise.MixedBursty(41, 60, 0.5))
	if err != nil {
		t.Fatalf("%s/%s under %s: %v", hw, mdl, cost, err)
	}
	return rep
}

// TestRooflineFittedTraceAgreement is the tentpole's acceptance band:
// over the MixedBursty trace on the two profiled GPUs, swapping the
// fitted estimator for the analytical roofline model moves end-to-end
// TTFT and TBT by at most 15%. The cost model steers scheduling
// (partition choice, admission, SLO headroom), so this is a behavioural
// bound, not a per-kernel one — docs/roofline.md records the measured
// gaps.
func TestRooflineFittedTraceAgreement(t *testing.T) {
	const band = 0.15
	for _, tc := range []struct {
		hw, mdl string
		gpus    int
	}{
		{"A100", "Llama-8B", 8},
		{"H100", "Llama-8B", 8},
	} {
		t.Run(tc.hw, func(t *testing.T) {
			fitted := runCostModel(t, tc.hw, tc.mdl, muxwise.CostFitted, tc.gpus)
			roof := runCostModel(t, tc.hw, tc.mdl, muxwise.CostRoofline, tc.gpus)
			if fitted.Summary.Finished != fitted.Summary.Requests {
				t.Fatalf("fitted run left %d unfinished",
					fitted.Summary.Requests-fitted.Summary.Finished)
			}
			if roof.Summary.Finished != roof.Summary.Requests {
				t.Fatalf("roofline run left %d unfinished",
					roof.Summary.Requests-roof.Summary.Finished)
			}
			check := func(name string, got, want float64) {
				if want <= 0 {
					t.Fatalf("%s: fitted baseline %.6g not positive", name, want)
				}
				gap := math.Abs(got-want) / want
				t.Logf("%s: roofline %.4gs vs fitted %.4gs (%.1f%%)", name, got, want, gap*100)
				if gap > band {
					t.Errorf("%s diverges %.1f%% under the roofline cost model (band %.0f%%)",
						name, gap*100, band*100)
				}
			}
			check("TTFT avg", roof.Summary.TTFT.Avg, fitted.Summary.TTFT.Avg)
			check("TTFT p99", roof.Summary.TTFT.P99, fitted.Summary.TTFT.P99)
			check("TBT avg", roof.Summary.TBT.Avg, fitted.Summary.TBT.Avg)
			check("TBT p99", roof.Summary.TBT.P99, fitted.Summary.TBT.P99)
		})
	}
}

// TestCostModelValidation: the option rejects unknown names eagerly, at
// experiment construction, and the registry lists both models.
func TestCostModelValidation(t *testing.T) {
	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(muxwise.Deployment{Hardware: "A100", GPUs: 1, Model: "Llama-8B"}),
		muxwise.WithEngine("MuxWise"),
		muxwise.WithCostModel("datasheet"),
	)
	if _, err := exp.Run(muxwise.ShareGPT(1, 2).WithPoissonArrivals(1, 1)); err == nil {
		t.Fatal("unknown cost model accepted")
	}
	got := muxwise.CostModels()
	want := map[string]bool{muxwise.CostFitted: false, muxwise.CostRoofline: false}
	for _, name := range got {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("CostModels() = %v, missing %q", got, name)
		}
	}
}

// TestRooflineUnprofiledPair: the pair no fitted profile exists for —
// Llama-70B on B200 — must serve end-to-end under the roofline model and
// meet its large-model SLO at a moderate rate (the frontier golden pins
// the full sweep; this is the single-replica smoke check).
func TestRooflineUnprofiledPair(t *testing.T) {
	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(muxwise.Deployment{
			Hardware: "B200", GPUs: 2, Model: "Llama-70B",
			SLO: muxwise.SLO{TTFT: 2 * muxwise.Second, TBT: 100 * muxwise.Millisecond},
		}),
		muxwise.WithEngine("MuxWise"),
		muxwise.WithCostModel(muxwise.CostRoofline),
	)
	rep, err := exp.Run(muxwise.ToolAgent(7, 40).WithPoissonArrivals(7, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Finished != rep.Summary.Requests {
		t.Fatalf("finished %d/%d", rep.Summary.Finished, rep.Summary.Requests)
	}
	if rep.Attainment < 0.95 {
		t.Fatalf("Llama-70B on B200 attainment %.3f", rep.Attainment)
	}
}
