package muxwise_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"muxwise"
	"muxwise/internal/obs"
)

// drainMigrateExperiment builds the flight recorder's acceptance
// scenario: a two-replica fleet rolls replica 0 out behind a pre-spawned
// replacement with KV migration streaming — every span family (request
// lifecycle, fleet lifecycle, router picks, kv-migration streams) fires.
func drainMigrateExperiment(fr *muxwise.FlightRecorder) *muxwise.Experiment {
	opts := []muxwise.Option{
		muxwise.WithDeployment(muxwise.Deployment{Hardware: "A100", GPUs: 1, Model: "Llama-8B"}),
		muxwise.WithFleet(muxwise.ReplicaSpec{Engine: "MuxWise", Count: 2}),
		muxwise.WithRouter("prefix-affinity"),
		muxwise.WithColdStart(15 * muxwise.Second),
		muxwise.WithEvents(
			muxwise.FleetEvent{At: 28 * muxwise.Second, Kind: "spawn"},
			muxwise.FleetEvent{At: 45 * muxwise.Second, Kind: "drain", Replica: 0},
		),
		muxwise.WithMigration(),
	}
	if fr != nil {
		opts = append(opts, muxwise.WithTrace(fr))
	}
	return muxwise.NewExperiment(opts...)
}

// failureExperiment crashes a replica mid-run, so the trace carries
// abort-ended request spans and a fleet failure event.
func failureExperiment(fr *muxwise.FlightRecorder) *muxwise.Experiment {
	opts := []muxwise.Option{
		muxwise.WithDeployment(muxwise.Deployment{Hardware: "A100", GPUs: 1, Model: "Llama-8B"}),
		muxwise.WithFleet(muxwise.ReplicaSpec{Engine: "MuxWise", Count: 2}),
		muxwise.WithRouter("least-tokens"),
		muxwise.WithEvents(muxwise.FleetEvent{At: 30 * muxwise.Second, Kind: "fail", Replica: 0}),
	}
	if fr != nil {
		opts = append(opts, muxwise.WithTrace(fr))
	}
	return muxwise.NewExperiment(opts...)
}

// digest reduces a report to the bytes the determinism guard compares.
func digest(t *testing.T, rep *muxwise.Report) []byte {
	t.Helper()
	raw, err := json.Marshal(struct {
		Summary    muxwise.Summary
		Attainment float64
		MissCauses muxwise.MissBreakdown
	}{rep.Summary, rep.Attainment, rep.MissCauses})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestTraceDeterminism is the zero-perturbation guard: attaching a
// flight recorder must leave every simulation result byte-identical —
// recording is observation, never participation.
func TestTraceDeterminism(t *testing.T) {
	scenarios := []struct {
		name string
		mk   func(*muxwise.FlightRecorder) *muxwise.Experiment
	}{
		{"drain-migrate", drainMigrateExperiment},
		{"failure", failureExperiment},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			trace := muxwise.MixedBursty(1, 40, 0.2)
			plain, err := sc.mk(nil).Run(trace)
			if err != nil {
				t.Fatal(err)
			}
			fr := muxwise.NewFlightRecorder()
			trace2 := muxwise.MixedBursty(1, 40, 0.2)
			traced, err := sc.mk(fr).Run(trace2)
			if err != nil {
				t.Fatal(err)
			}
			if fr.Len() == 0 {
				t.Fatal("flight recorder captured nothing")
			}
			if got, want := digest(t, traced), digest(t, plain); !bytes.Equal(got, want) {
				t.Errorf("tracing perturbed the run:\n  traced: %s\n  plain:  %s", got, want)
			}
			// Recording twice must also be byte-stable with itself.
			fr2 := muxwise.NewFlightRecorder()
			if _, err := sc.mk(fr2).Run(muxwise.MixedBursty(1, 40, 0.2)); err != nil {
				t.Fatal(err)
			}
			var buf1, buf2 bytes.Buffer
			if err := muxwise.WriteChromeTrace(&buf1, fr); err != nil {
				t.Fatal(err)
			}
			if err := muxwise.WriteChromeTrace(&buf2, fr2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
				t.Error("two identical traced runs produced different trace files")
			}
		})
	}
}

// TestTraceChromeValid checks the exported Chrome trace-event JSON is
// structurally sound (the format Perfetto loads) and that the
// drain-migrate scenario's KV-migration stream spans carry their
// payload: byte counts and the interconnect link class.
func TestTraceChromeValid(t *testing.T) {
	fr := muxwise.NewFlightRecorder()
	if _, err := drainMigrateExperiment(fr).Run(muxwise.MixedBursty(1, 40, 0.2)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := muxwise.WriteChromeTrace(&buf, fr); err != nil {
		t.Fatal(err)
	}
	if issues := obs.ValidateChromeTrace(buf.Bytes()); len(issues) > 0 {
		t.Fatalf("invalid Chrome trace: %v", issues)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var streams, picks, autoscaleOrFleet int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Cat == "kv-migration" && ev.Ph == "b":
			streams++
			if b, ok := ev.Args["bytes"].(float64); !ok || b <= 0 {
				t.Errorf("kv-stream span without a positive bytes arg: %v", ev.Args)
			}
			if link, ok := ev.Args["link"].(string); !ok || link == "" {
				t.Errorf("kv-stream span without a link class: %v", ev.Args)
			}
		case ev.Name == "pick":
			picks++
		case ev.Name == "spawn" || ev.Name == "drain" || ev.Name == "ready":
			autoscaleOrFleet++
		}
	}
	if streams == 0 {
		t.Error("drain-migrate trace has no kv-migration stream spans")
	}
	if picks == 0 {
		t.Error("trace has no router pick records")
	}
	if autoscaleOrFleet == 0 {
		t.Error("trace has no fleet lifecycle events")
	}
}

// TestTraceJSONL checks the compact stream: every line is a standalone
// JSON object with the event envelope.
func TestTraceJSONL(t *testing.T) {
	fr := muxwise.NewFlightRecorder()
	if _, err := drainMigrateExperiment(fr).Run(muxwise.MixedBursty(1, 40, 0.2)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := muxwise.WriteTraceJSONL(&buf, fr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != fr.Len() {
		t.Fatalf("%d JSONL lines for %d events", len(lines), fr.Len())
	}
	for i, line := range lines {
		var ev struct {
			At    *int64 `json:"at"`
			Ph    string `json:"ph"`
			Track string `json:"track"`
			Name  string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v\n%s", i+1, err, line)
		}
		if ev.At == nil || ev.Ph == "" || ev.Track == "" || ev.Name == "" {
			t.Fatalf("line %d missing envelope fields: %s", i+1, line)
		}
	}
}

// TestTraceSingleEngine: the recorder also rides plain single-engine
// runs (no fleet), capturing prefill/decode spans from the core engine.
func TestTraceSingleEngine(t *testing.T) {
	fr := muxwise.NewFlightRecorder()
	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(muxwise.Deployment{Hardware: "A100", GPUs: 1, Model: "Llama-8B"}),
		muxwise.WithEngine("MuxWise"),
		muxwise.WithTrace(fr),
	)
	trace := muxwise.ShareGPT(1, 50).WithPoissonArrivals(1, 4)
	if _, err := exp.Run(trace); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := muxwise.WriteChromeTrace(&buf, fr); err != nil {
		t.Fatal(err)
	}
	if issues := obs.ValidateChromeTrace(buf.Bytes()); len(issues) > 0 {
		t.Fatalf("invalid Chrome trace: %v", issues)
	}
	out := buf.String()
	for _, want := range []string{`"prefill"`, `"decode-iter"`, `"first-token"`} {
		if !strings.Contains(out, want) {
			t.Errorf("single-engine trace missing %s spans", want)
		}
	}
}
