package muxwise

import (
	"muxwise/internal/cluster"
	"muxwise/internal/metrics"
)

// The plugin seam: the router and autoscaler interfaces the fleet
// simulation consults are public, so policies that learn from observed
// behavior — the kind DistServe and MuxServe frame goodput optimization
// around — can be built outside this module and registered by name.
type (
	// Router picks a replica for each arriving request. Pick is called
	// in deterministic arrival order with a read-only FleetView; key any
	// remembered state by FleetReplica.ID, never by slice position.
	Router = cluster.Router
	// RouterPolicy constructs a fresh Router; every simulation (each
	// sweep probe, each bisection step) gets its own.
	RouterPolicy = cluster.Policy
	// FleetView is the read-only context a Router sees at each arrival:
	// the routable candidates plus on-demand windowed metrics.
	FleetView = cluster.FleetView
	// FleetReplica is one replica as routers see it: identity, role and
	// load counters.
	FleetReplica = cluster.Replica
	// FleetObserver is implemented by routers that keep per-replica
	// state; ReplicaDown fires when a replica fails or retires.
	FleetObserver = cluster.FleetObserver
	// TTFTObserver is implemented by routers that learn from latency:
	// every first token is reported against the replica that served it.
	TTFTObserver = cluster.TTFTObserver
	// MigrationObserver is implemented by routers that track
	// session→replica affinity: SessionMigrated fires when a session's
	// KV finished streaming to a new holder, so the pin can follow the
	// KV instead of the next turn paying a cold re-prefill.
	MigrationObserver = cluster.MigrationObserver
	// MigrationStats aggregates a fleet run's KV-migration accounting
	// (ClusterResult.Migration).
	MigrationStats = cluster.MigrationStats
	// Autoscaler decides fleet scale from a FleetSnapshot on a cadence.
	Autoscaler = cluster.Autoscaler
	// TTFTTargeted is implemented by autoscalers that accept the
	// WithTargetTTFT / FleetOptions.TargetTTFT knob.
	TTFTTargeted = cluster.TTFTTargeted
	// FleetSnapshot is what an Autoscaler observes each tick.
	FleetSnapshot = cluster.FleetSnapshot
	// ReplicaRole tags what a FleetReplica is specialised for.
	ReplicaRole = cluster.Role
	// MetricsSnapshot is a windowed rollup of recent observations.
	MetricsSnapshot = metrics.Snapshot
	// MetricsWindow is one time-bounded rollup of a run's samples.
	MetricsWindow = metrics.Window
	// Recorder collects latency samples during a run (read-only for
	// callers; exposed through Result.Rec and ClusterResult.Rec).
	Recorder = metrics.Recorder
)

// Replica roles, for role-aware routers.
const (
	RoleGeneral = cluster.RoleGeneral
	RolePrefill = cluster.RolePrefill
	RoleDecode  = cluster.RoleDecode
)

// RegisterRouter adds a router policy to the registry under name,
// making it selectable everywhere built-in names are: WithRouter,
// ClusterDeployment.Router, and the muxcluster CLI. Registering an
// empty name, a nil constructor, or a name already taken fails loudly
// with an error.
func RegisterRouter(name string, p RouterPolicy) error {
	return cluster.RegisterPolicy(name, p)
}

// RegisterAutoscaler adds an autoscaler constructor to the registry
// under name, making it selectable everywhere built-in names are:
// WithAutoscaler, FleetOptions.Autoscaler, and the muxcluster CLI.
// Registering an empty name, a nil constructor, or a name already taken
// fails loudly with an error.
func RegisterAutoscaler(name string, mk func() Autoscaler) error {
	return cluster.RegisterScaler(name, mk)
}

// RouterPolicies lists every selectable router policy name — built-ins
// plus everything added through RegisterRouter — in sorted order.
// Anywhere one of these names is accepted, an inline "epp:" composition
// spec (see ComposedRouter) is too.
func RouterPolicies() []string { return cluster.PolicyNames() }

// ComposedRouter builds a router policy from an inline filter → scorer
// → picker composition spec — the same EPP-style pipeline the built-in
// policies are made of, assembled from config instead of code:
//
//	epp:scorers=prefix:2,least-tokens:1
//	epp:filters=role:prefill,divert-widen;scorers=least-tokens
//	epp:picker=round-robin
//
// Filters (comma-separated, in order): role:<name|name...>, sticky,
// divert, divert-widen. Scorers: name[:weight] pairs forming one
// weighted tier — prefix, session, least-tokens, least-requests,
// ttft-ewma — with remaining ties broken toward the lowest replica ID.
// Picker: max-score (default) or round-robin.
//
// The returned policy can be registered under a short name with
// RegisterRouter, and every router-name seam (WithRouter,
// ClusterDeployment.Router, the muxcluster -router flag) also accepts
// the spec string directly.
func ComposedRouter(spec string) (RouterPolicy, error) { return cluster.ParseComposition(spec) }

// AutoscalerPolicies lists every selectable autoscaler name — built-ins
// plus everything added through RegisterAutoscaler — in sorted order.
func AutoscalerPolicies() []string { return cluster.ScalerNames() }
