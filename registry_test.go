package muxwise_test

import (
	"slices"
	"sync"
	"testing"

	"muxwise"
)

// leastInFlight is a minimal custom router for registry tests.
type leastInFlight struct{}

func (leastInFlight) Name() string { return "test-least-in-flight" }

func (leastInFlight) Pick(r *muxwise.Request, view muxwise.FleetView) *muxwise.FleetReplica {
	best := view.Candidates[0]
	for _, rep := range view.Candidates[1:] {
		if rep.InFlight() < best.InFlight() {
			best = rep
		}
	}
	return best
}

// holdScaler is a minimal custom autoscaler for registry tests.
type holdScaler struct{}

func (holdScaler) Name() string                       { return "test-hold" }
func (holdScaler) Decide(s muxwise.FleetSnapshot) int { return 0 }

// registryTestSetup registers the test policies exactly once: the
// registry is process-global and rejects duplicates, so repeated
// in-process runs (go test -count=2) must not re-register.
var (
	registryTestSetup                  sync.Once
	testRouterRegErr, testScalerRegErr error
)

func registerTestPolicies() {
	registryTestSetup.Do(func() {
		testRouterRegErr = muxwise.RegisterRouter("test-least-in-flight",
			func() muxwise.Router { return leastInFlight{} })
		testScalerRegErr = muxwise.RegisterAutoscaler("test-hold",
			func() muxwise.Autoscaler { return holdScaler{} })
	})
}

// TestRegistriesMatchPolicies checks the advertised policy lists against
// what deployments actually accept — including names registered at
// runtime — in both directions.
func TestRegistriesMatchPolicies(t *testing.T) {
	registerTestPolicies()
	if testRouterRegErr != nil {
		t.Fatalf("RegisterRouter: %v", testRouterRegErr)
	}
	if testScalerRegErr != nil {
		t.Fatalf("RegisterAutoscaler: %v", testScalerRegErr)
	}

	routers := muxwise.RouterPolicies()
	if !slices.IsSorted(routers) {
		t.Errorf("RouterPolicies() not sorted: %v", routers)
	}
	for _, want := range []string{"adaptive-ttft", "least-tokens", "pd-split",
		"prefix-affinity", "round-robin", "test-least-in-flight"} {
		if !slices.Contains(routers, want) {
			t.Errorf("RouterPolicies() = %v, missing %q", routers, want)
		}
	}
	scalers := muxwise.AutoscalerPolicies()
	for _, want := range []string{"backlog", "ttft", "test-hold"} {
		if !slices.Contains(scalers, want) {
			t.Errorf("AutoscalerPolicies() = %v, missing %q", scalers, want)
		}
	}

	// Every advertised name must be accepted end to end, and nothing else.
	tr := muxwise.ShareGPT(1, 5).WithPoissonArrivals(1, 1)
	for _, name := range routers {
		dep := fleet(name)
		if _, err := muxwise.ServeCluster(dep, tr); err != nil {
			t.Errorf("advertised router %q rejected: %v", name, err)
		}
	}
	if _, err := muxwise.ServeCluster(fleet("not-a-router"), tr); err == nil {
		t.Error("unadvertised router accepted")
	}
	for _, name := range scalers {
		dep := fleet("round-robin")
		dep.Fleet = &muxwise.FleetOptions{Autoscaler: name}
		if _, err := muxwise.ServeCluster(dep, tr); err != nil {
			t.Errorf("advertised autoscaler %q rejected: %v", name, err)
		}
	}
	bad := fleet("round-robin")
	bad.Fleet = &muxwise.FleetOptions{Autoscaler: "not-a-scaler"}
	if _, err := muxwise.ServeCluster(bad, tr); err == nil {
		t.Error("unadvertised autoscaler accepted")
	}
}

// dupTestSetup seeds the duplicate-registration probes once per
// process (see registryTestSetup).
var (
	dupTestSetup               sync.Once
	dupRouterErr, dupScalerErr error
)

func TestRegisterRejectsDuplicatesAndNils(t *testing.T) {
	mkRouter := func() muxwise.Router { return leastInFlight{} }
	mkScaler := func() muxwise.Autoscaler { return holdScaler{} }
	dupTestSetup.Do(func() {
		dupRouterErr = muxwise.RegisterRouter("test-dup-router", mkRouter)
		dupScalerErr = muxwise.RegisterAutoscaler("test-dup-scaler", mkScaler)
	})

	if dupRouterErr != nil {
		t.Fatalf("first registration failed: %v", dupRouterErr)
	}
	if err := muxwise.RegisterRouter("test-dup-router", mkRouter); err == nil {
		t.Error("duplicate router registration should fail loudly")
	}
	if err := muxwise.RegisterRouter("least-tokens", mkRouter); err == nil {
		t.Error("shadowing a built-in router should fail loudly")
	}
	if err := muxwise.RegisterRouter("", mkRouter); err == nil {
		t.Error("empty router name should fail")
	}
	if err := muxwise.RegisterRouter("test-nil-router", nil); err == nil {
		t.Error("nil router constructor should fail")
	}

	if dupScalerErr != nil {
		t.Fatalf("first registration failed: %v", dupScalerErr)
	}
	if err := muxwise.RegisterAutoscaler("test-dup-scaler", mkScaler); err == nil {
		t.Error("duplicate autoscaler registration should fail loudly")
	}
	if err := muxwise.RegisterAutoscaler("backlog", mkScaler); err == nil {
		t.Error("shadowing a built-in autoscaler should fail loudly")
	}
	if err := muxwise.RegisterAutoscaler("", mkScaler); err == nil {
		t.Error("empty autoscaler name should fail")
	}
	if err := muxwise.RegisterAutoscaler("test-nil-scaler", nil); err == nil {
		t.Error("nil autoscaler constructor should fail")
	}
}
