package muxwise

import "testing"

// TestWithMigrationEndToEnd drives KV migration through the public
// Experiment surface: a rolling drain with WithMigration must deliver
// KV (ClusterResult.Migration, Summary counters), and the identical
// experiment without it must stay on the re-prefill-only path.
func TestWithMigrationEndToEnd(t *testing.T) {
	trace := func() *Trace { return MixedBursty(8, 30, 0.2) }
	base := NewExperiment(
		WithDeployment(Deployment{
			Hardware: "A100", GPUs: 1, Model: "Llama-8B",
			SLO: SLO{TTFT: Second, TBT: 50 * Millisecond},
		}),
		WithFleet(ReplicaSpec{Engine: "MuxWise", Count: 3}),
		WithRouter("prefix-affinity"),
		WithColdStart(5*Second),
		WithEvents(
			FleetEvent{At: 35 * Second, Kind: "spawn"},
			FleetEvent{At: 40 * Second, Kind: "drain", Replica: 0},
		),
	)

	plain, err := base.Run(trace())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fleet.Migration != (MigrationStats{}) {
		t.Fatalf("migration disabled but stats non-zero: %+v", plain.Fleet.Migration)
	}
	if plain.Summary.MigratedKVTokens != 0 {
		t.Fatalf("migration disabled but summary reports %d migrated tokens", plain.Summary.MigratedKVTokens)
	}

	rep, err := base.With(WithMigration()).Run(trace())
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Fleet.Migration
	if m.Streams == 0 || m.MigratedTokens == 0 {
		t.Fatalf("WithMigration drained fleet streamed nothing: %+v", m)
	}
	if rep.Summary.MigratedKVTokens != m.MigratedTokens {
		t.Fatalf("summary migrated tokens %d != stats %d", rep.Summary.MigratedKVTokens, m.MigratedTokens)
	}
	if rep.Summary.MigrationStallSeconds <= 0 {
		t.Fatal("summary migration stall not populated")
	}
	if got := m.MigratedTokens + m.CanceledTokens + m.RePrefillTokens + m.UndeliveredTokens; got != m.DrainKVTokens {
		t.Fatalf("public-API run breaks KV conservation: %d accounted, %d observed", got, m.DrainKVTokens)
	}
	var in int64
	for _, r := range rep.Fleet.Replicas {
		in += r.KVMigratedIn
	}
	if in != m.MigratedTokens {
		t.Fatalf("per-replica migrated-in sum %d != delivered total %d", in, m.MigratedTokens)
	}
}

// TestWithMigrationRequiresFleet: migration is a fleet lifecycle option.
func TestWithMigrationRequiresFleet(t *testing.T) {
	_, err := NewExperiment(
		WithDeployment(Deployment{Hardware: "A100", GPUs: 1, Model: "Llama-8B"}),
		WithEngine("MuxWise"),
		WithMigration(),
	).Run(MixedBursty(1, 4, 0.1))
	if err == nil {
		t.Fatal("WithMigration on a single-engine experiment did not error")
	}
}
