package muxwise_test

import (
	"testing"

	"muxwise"
)

func fleet(router string) muxwise.ClusterDeployment {
	return muxwise.ClusterDeployment{
		Deployment: muxwise.Deployment{Hardware: "A100", GPUs: 1, Model: "Llama-8B"},
		Replicas: []muxwise.ReplicaSpec{
			{Engine: "MuxWise", Count: 3},
			{Engine: "SGLang-PD", Count: 1, GPUs: 2, Role: "prefill"},
		},
		Router: router,
	}
}

func clusterTrace() *muxwise.Trace {
	conv := muxwise.Conversation(31, 20).WithProfileArrivals(31, muxwise.ConversationProfile(0.12))
	tool := muxwise.ToolAgent(32, 20).WithProfileArrivals(32, muxwise.ToolAgentProfile(0.12))
	return muxwise.MixTraces("mixed", conv, tool)
}

func TestServeClusterPolicies(t *testing.T) {
	tr := clusterTrace()
	for _, router := range muxwise.RouterPolicies() {
		res, err := muxwise.ServeCluster(fleet(router), tr)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		if res.Summary.Requests != tr.Len() {
			t.Fatalf("%s: fleet saw %d of %d requests", router, res.Summary.Requests, tr.Len())
		}
		if len(res.Replicas) != 4 {
			t.Fatalf("%s: %d replicas, want 4", router, len(res.Replicas))
		}
	}
}

func TestServeClusterErrors(t *testing.T) {
	tr := muxwise.ShareGPT(1, 5).WithPoissonArrivals(1, 1)
	bad := fleet("round-robin")
	bad.Router = "random"
	if _, err := muxwise.ServeCluster(bad, tr); err == nil {
		t.Error("unknown router should error")
	}
	bad = fleet("")
	bad.Replicas[0].Engine = "vLLM"
	if _, err := muxwise.ServeCluster(bad, tr); err == nil {
		t.Error("unknown engine should error")
	}
	bad = fleet("")
	bad.Replicas[0].Role = "embedding"
	if _, err := muxwise.ServeCluster(bad, tr); err == nil {
		t.Error("unknown role should error")
	}
}

func TestFleetLifecycleAPI(t *testing.T) {
	tr := clusterTrace()
	dep := fleet("prefix-affinity")
	dep.Fleet = &muxwise.FleetOptions{
		Events: []muxwise.FleetEvent{
			{At: 30 * muxwise.Second, Kind: "fail", Replica: 0},
			{At: 60 * muxwise.Second, Kind: "spawn",
				Spec: &muxwise.ReplicaSpec{Engine: "MuxWise", Hardware: "H100"}},
		},
		ColdStart: 10 * muxwise.Second,
	}
	res, err := muxwise.ServeCluster(dep, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures)
	}
	if len(res.Replicas) != 5 {
		t.Fatalf("%d replicas, want 5 (4 initial + 1 spawned)", len(res.Replicas))
	}
	if res.Replicas[0].State.String() != "failed" {
		t.Fatalf("replica 0 state %v, want failed", res.Replicas[0].State)
	}
	spawned := res.Replicas[4]
	if spawned.Hardware != "H100-80G" || spawned.ReadyAt != 70*muxwise.Second {
		t.Fatalf("spawned replica hw %q ready at %v, want H100-80G at 70s", spawned.Hardware, spawned.ReadyAt)
	}
	if len(res.Epochs) < 3 || len(res.Events) == 0 {
		t.Fatalf("epochs %d, events %d; want the lifecycle reported", len(res.Epochs), len(res.Events))
	}
	if res.Summary.Finished != tr.Len() {
		t.Fatalf("finished %d of %d", res.Summary.Finished, tr.Len())
	}
}

func TestFleetOptionsErrors(t *testing.T) {
	tr := muxwise.ShareGPT(1, 5).WithPoissonArrivals(1, 1)
	bad := fleet("round-robin")
	bad.Fleet = &muxwise.FleetOptions{Autoscaler: "magic"}
	if _, err := muxwise.ServeCluster(bad, tr); err == nil {
		t.Error("unknown autoscaler should error")
	}
	bad = fleet("round-robin")
	bad.Fleet = &muxwise.FleetOptions{Events: []muxwise.FleetEvent{{Kind: "explode"}}}
	if _, err := muxwise.ServeCluster(bad, tr); err == nil {
		t.Error("unknown event kind should error")
	}
	bad = fleet("round-robin")
	bad.Replicas[0].Hardware = "TPU"
	if _, err := muxwise.ServeCluster(bad, tr); err == nil {
		t.Error("unknown hardware should error")
	}
}

func TestClusterSweepAPI(t *testing.T) {
	mk := func(rate float64) *muxwise.Trace {
		return muxwise.ShareGPT(6, 60).WithPoissonArrivals(6, rate)
	}
	pts, err := muxwise.ClusterSweep(fleet("least-tokens"), mk, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty cluster sweep")
	}
	g, err := muxwise.ClusterGoodput(fleet("least-tokens"), mk, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 {
		t.Fatalf("fleet goodput %v, want > 0", g)
	}
}
