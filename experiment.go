package muxwise

import (
	"errors"
	"fmt"

	"muxwise/internal/cluster"
	"muxwise/internal/serve"
)

// ErrNoFeasibleRate is returned by goodput searches when no rate in the
// probed range meets the §4 goodput criterion (stable, ≥99% of TBT
// samples within the SLO). It describes the workload/deployment pair,
// not a failed run, and is distinguishable with errors.Is — unlike the
// old behavior of silently reporting a goodput of 0 req/s.
var ErrNoFeasibleRate = errors.New("muxwise: no rate in range meets the goodput criterion")

// Experiment is the composable runner behind every muxwise entry point:
// one deployment (a single engine or a routed replica fleet) plus the
// probing methods the paper's evaluation is built from. Configure it
// with functional options, then Run a trace, Sweep offered rates, or
// search Goodput:
//
//	exp := muxwise.NewExperiment(
//	    muxwise.WithDeployment(dep),
//	    muxwise.WithFleet(muxwise.ReplicaSpec{Engine: "MuxWise", Count: 4}),
//	    muxwise.WithRouter("adaptive-ttft"),
//	)
//	report, err := exp.Run(trace)
//
// A zero Experiment is not usable; construct with NewExperiment.
// Experiments are cheap descriptions — every Run/Sweep/Goodput builds
// fresh engines and routers, so one Experiment can probe repeatedly and
// deterministically.
type Experiment struct {
	dep      Deployment
	depSet   bool
	slo      *SLO // WithSLO override, applied over dep at resolve time
	engine   string
	fleetSet bool
	replicas []ReplicaSpec
	router   string
	fleet    FleetOptions
	epochs   Time
	mk       func(rate float64) *Trace
	trace    *FlightRecorder
	cost     string
	errs     []error
}

// Option configures an Experiment.
type Option func(*Experiment)

// NewExperiment builds an experiment from options. Option errors are
// deferred: they surface from the first Run, Sweep, or Goodput call.
func NewExperiment(opts ...Option) *Experiment {
	e := &Experiment{}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// With returns a copy of the experiment with further options applied —
// the base stays untouched, so one deployment can fan out into per-router
// or per-autoscaler variants.
func (e *Experiment) With(opts ...Option) *Experiment {
	c := *e
	c.replicas = append([]ReplicaSpec(nil), e.replicas...)
	c.fleet.Events = append([]FleetEvent(nil), e.fleet.Events...)
	c.errs = append([]error(nil), e.errs...)
	for _, opt := range opts {
		opt(&c)
	}
	return &c
}

// failf records a deferred option error.
func (e *Experiment) failf(format string, args ...any) {
	e.errs = append(e.errs, fmt.Errorf("muxwise: "+format, args...))
}

// WithDeployment sets the hardware, model, per-replica GPU count, and
// SLO baseline.
func WithDeployment(dep Deployment) Option {
	return func(e *Experiment) { e.dep, e.depSet = dep, true }
}

// WithSLO overrides the deployment's latency targets. The override
// survives a later WithDeployment, so option order cannot silently
// change which SLO a run is judged against.
func WithSLO(slo SLO) Option {
	return func(e *Experiment) { e.slo = &slo }
}

// WithEngine runs a single instance of the named engine (see Engines()).
// Mutually exclusive with WithFleet.
func WithEngine(name string) Option {
	return func(e *Experiment) {
		if name == "" {
			e.failf("WithEngine: empty engine name")
			return
		}
		e.engine = name
	}
}

// WithFleet runs a replica fleet of the given shapes behind a request
// router. Mutually exclusive with WithEngine.
func WithFleet(replicas ...ReplicaSpec) Option {
	return func(e *Experiment) {
		e.fleetSet = true
		e.replicas = append(e.replicas, replicas...)
	}
}

// WithRouter selects the fleet's routing policy by name — a built-in or
// anything added through RegisterRouter (see RouterPolicies()). Empty
// keeps the default, prefix-affinity.
func WithRouter(name string) Option {
	return func(e *Experiment) { e.router = name }
}

// WithCostModel selects the step-time estimator engines schedule
// against: "fitted" (default) is the paper's offline-profiled
// max-of-two-planes model with the co-run slowdown guard, available only
// for the hand-profiled (model, GPU) pairs; "roofline" is the analytical
// datasheet model (internal/roofline) that covers any model on any GPU —
// the only way to run B200-class hardware. See CostModels() for the
// recognised names and docs/roofline.md for the model and its validation.
func WithCostModel(name string) Option {
	return func(e *Experiment) {
		if !serve.ValidCostModel(name) {
			e.failf("WithCostModel: unknown cost model %q (have %v)", name, serve.CostModels())
			return
		}
		e.cost = name
	}
}

// CostModels returns the cost model names WithCostModel accepts.
func CostModels() []string { return serve.CostModels() }

// Cost model names accepted by WithCostModel.
const (
	// CostFitted is the paper's offline-profiled estimator (the default).
	CostFitted = serve.CostFitted
	// CostRoofline is the analytical datasheet model: any model on any
	// GPU, no profiling.
	CostRoofline = serve.CostRoofline
)

// WithAutoscaler attaches the named autoscaler to the fleet — a built-in
// or anything added through RegisterAutoscaler (see AutoscalerPolicies()).
func WithAutoscaler(name string) Option {
	return func(e *Experiment) {
		if name == "" {
			e.failf("WithAutoscaler: empty autoscaler name")
			return
		}
		e.fleet.Autoscaler = name
	}
}

// WithEvents schedules fleet lifecycle events (spawn, drain, fail,
// retire, mark) inside the run's deterministic loop.
func WithEvents(events ...FleetEvent) Option {
	return func(e *Experiment) { e.fleet.Events = append(e.fleet.Events, events...) }
}

// WithFleetOptions replaces the experiment's whole fleet lifecycle
// configuration (events, autoscaler and its knobs) at once. Prefer the
// targeted options; this exists for callers that already hold a
// FleetOptions, e.g. the deprecated ServeCluster path.
func WithFleetOptions(fo FleetOptions) Option {
	return func(e *Experiment) { e.fleet = fo }
}

// WithScaleBounds bounds the autoscaler's fleet size (defaults 1, 64).
func WithScaleBounds(minReplicas, maxReplicas int) Option {
	return func(e *Experiment) {
		e.fleet.MinReplicas, e.fleet.MaxReplicas = minReplicas, maxReplicas
	}
}

// WithColdStart sets the spawn-to-ready delay for spawned replicas
// (default 15 s).
func WithColdStart(d Time) Option {
	return func(e *Experiment) { e.fleet.ColdStart = d }
}

// WithTargetTTFT sets the "ttft" autoscaler's P99 target (default 1 s).
func WithTargetTTFT(d Time) Option {
	return func(e *Experiment) { e.fleet.TargetTTFT = d }
}

// WithMigration enables KV migration on graceful takedowns: drains,
// retires and autoscaler scale-downs stream each in-flight session's KV
// to the replica its traffic re-routes to — priced by the modeled
// interconnect (NVLink inside a hardware shape, PCIe across shapes) —
// instead of letting the session repay a full re-prefill there.
// Failures still lose their KV, including streams the crash catches
// mid-flight. Requires a fleet (WithFleet).
func WithMigration() Option {
	return func(e *Experiment) { e.fleet.Migration = true }
}

// WithCadence sets the autoscaler observation interval (default 5 s).
func WithCadence(d Time) Option {
	return func(e *Experiment) { e.fleet.Cadence = d }
}

// WithEpochs slices every Run into fixed-width reporting windows of the
// given width, rolled up in Report.Windows — per-interval arrivals, TTFT
// and TBT quantiles, and TBT SLO attainment.
func WithEpochs(width Time) Option {
	return func(e *Experiment) {
		if width <= 0 {
			e.failf("WithEpochs: width %v must be positive", width)
			return
		}
		e.epochs = width
	}
}

// WithWorkload sets the trace generator Sweep and Goodput probe with.
// Probes may run concurrently, so mk must be safe to call from multiple
// goroutines — return a fresh trace per call.
func WithWorkload(mk func(rate float64) *Trace) Option {
	return func(e *Experiment) {
		if mk == nil {
			e.failf("WithWorkload: nil trace generator")
			return
		}
		e.mk = mk
	}
}

// Report is the unified result of Experiment.Run.
type Report struct {
	// Summary is the run's headline latency rollup (fleet-merged for
	// fleet experiments).
	Summary Summary
	// SLO is the resolved latency target the run was judged against.
	SLO SLO
	// Attainment is the fraction of TBT samples within the SLO — the §4
	// goodput criterion's per-run ingredient.
	Attainment float64
	// Engine holds the single-engine detail; nil for fleet experiments.
	Engine *Result
	// Fleet holds the fleet detail (per-replica rollups, lifecycle
	// epochs, event log); nil for single-engine experiments.
	Fleet *ClusterResult
	// Windows holds the fixed-width rollups requested with WithEpochs.
	Windows []MetricsWindow
	// MissCauses attributes every SLO miss of the run to a cause
	// (queue-wait, slow prefill, TBT violation, migration stall, crash,
	// unfinished) — the decision-attributed goodput diagnostics.
	MissCauses MissBreakdown
}

// resolved is an experiment lowered onto the internal runners.
type resolved struct {
	factory serve.Factory  // single-engine mode
	cfg     serve.Config   // single-engine mode
	cluster cluster.Config // fleet mode
	isFleet bool
	slo     SLO
}

// fleetActive reports whether any lifecycle option was configured — a
// zero FleetOptions is equivalent to none at all, keeping plain fleets
// on the exact code path they always ran.
func (e *Experiment) fleetActive() bool {
	fo := &e.fleet
	return len(fo.Events) > 0 || fo.Autoscaler != "" || fo.Spawn != nil ||
		fo.MinReplicas != 0 || fo.MaxReplicas != 0 || fo.TargetTTFT != 0 ||
		fo.Cadence != 0 || fo.ColdStart != 0 || fo.Migration ||
		fo.MigrationHandoff != 0
}

// resolve validates the experiment and lowers it onto the internal
// configuration types without running anything.
func (e *Experiment) resolve() (resolved, error) {
	if len(e.errs) > 0 {
		return resolved{}, errors.Join(e.errs...)
	}
	if e.engine != "" && e.fleetSet {
		return resolved{}, fmt.Errorf("muxwise: WithEngine and WithFleet are mutually exclusive")
	}
	if e.engine == "" && !e.fleetSet {
		return resolved{}, fmt.Errorf("muxwise: configure an engine (WithEngine) or a fleet (WithFleet)")
	}
	if !e.depSet {
		return resolved{}, fmt.Errorf("muxwise: no deployment configured (WithDeployment)")
	}
	dep := e.dep
	if e.slo != nil {
		dep.SLO = *e.slo
	}
	if e.engine != "" {
		if e.router != "" {
			return resolved{}, fmt.Errorf("muxwise: WithRouter requires a fleet (WithFleet)")
		}
		if e.fleetActive() {
			return resolved{}, fmt.Errorf("muxwise: fleet lifecycle options require a fleet (WithFleet)")
		}
		f, err := factory(e.engine)
		if err != nil {
			return resolved{}, err
		}
		cfg, err := dep.config()
		if err != nil {
			return resolved{}, err
		}
		cfg.CostModel = e.cost
		return resolved{factory: f, cfg: cfg.WithDefaults(), slo: cfg.SLO}, nil
	}
	cd := ClusterDeployment{Deployment: dep, Replicas: e.replicas, Router: e.router}
	if e.fleetActive() {
		fo := e.fleet
		cd.Fleet = &fo
	}
	cfg, err := cd.config()
	if err != nil {
		return resolved{}, err
	}
	cfg.Base.CostModel = e.cost
	cfg.Base = cfg.Base.WithDefaults()
	return resolved{cluster: cfg, isFleet: true, slo: cfg.Base.SLO}, nil
}

// windows builds the fixed-width rollups requested with WithEpochs.
func (e *Experiment) windows(rec *Recorder, makespan Time, tbtSLO Time) []MetricsWindow {
	if e.epochs <= 0 || makespan <= 0 {
		return nil
	}
	bounds := []Time{0}
	for t := e.epochs; t < makespan; t += e.epochs {
		bounds = append(bounds, t)
	}
	bounds = append(bounds, makespan)
	return rec.RollupSLO(bounds, tbtSLO)
}

// Run replays the trace against a fresh instance of the experiment's
// deployment and reports the unified result. Runs are deterministic for
// a given configuration and trace.
func (e *Experiment) Run(trace *Trace) (*Report, error) {
	r, err := e.resolve()
	if err != nil {
		return nil, err
	}
	if trace == nil {
		return nil, fmt.Errorf("muxwise: Run: nil trace")
	}
	if r.isFleet {
		// The flight recorder rides only on Run: Sweep and Goodput
		// probe concurrently with a shared config, where a single
		// recorder would interleave unrelated runs.
		r.cluster.Base.Trace = e.trace
		res, err := cluster.Run(r.cluster, trace)
		if err != nil {
			return nil, err
		}
		return &Report{
			Summary:    res.Summary,
			SLO:        r.slo,
			Attainment: res.Rec.TBTAttainment(r.slo.TBT),
			Fleet:      &res,
			Windows:    e.windows(res.Rec, res.Summary.Makespan, r.slo.TBT),
			MissCauses: res.Diagnostics,
		}, nil
	}
	r.cfg.Trace = e.trace
	res := serve.Run(r.factory, r.cfg, trace)
	return &Report{
		Summary:    res.Summary,
		SLO:        r.slo,
		Attainment: res.Rec.TBTAttainment(r.slo.TBT),
		Engine:     &res,
		Windows:    e.windows(res.Rec, res.Summary.Makespan, r.slo.TBT),
		MissCauses: res.Diagnostics,
	}, nil
}

// workload returns the configured trace generator or an error.
func (e *Experiment) workload() (func(rate float64) *Trace, error) {
	if e.mk == nil {
		return nil, fmt.Errorf("muxwise: no workload configured (WithWorkload)")
	}
	return e.mk, nil
}

// Sweep probes each offered rate (req/s) with the configured workload,
// stopping shortly after the deployment first misses the §4 SLO
// criterion. Probes run concurrently but the points are identical to a
// sequential sweep.
func (e *Experiment) Sweep(rates ...float64) ([]RatePoint, error) {
	r, err := e.resolve()
	if err != nil {
		return nil, err
	}
	mk, err := e.workload()
	if err != nil {
		return nil, err
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("muxwise: Sweep: no rates given")
	}
	if r.isFleet {
		return cluster.Sweep(r.cluster, mk, rates)
	}
	return serve.Sweep(r.factory, r.cfg, mk, rates), nil
}

// Goodput finds the highest request rate (req/s, within [lo, hi]) at
// which the deployment sustains the §4 goodput criterion on the
// configured workload — the paper's headline metric. An invalid range
// (lo < 0, lo > hi, or NaN) is an error; a valid range in which even
// the floor rate misses the criterion returns ErrNoFeasibleRate.
func (e *Experiment) Goodput(lo, hi float64) (float64, error) {
	r, err := e.resolve()
	if err != nil {
		return 0, err
	}
	mk, err := e.workload()
	if err != nil {
		return 0, err
	}
	if !(lo >= 0 && hi >= lo) {
		return 0, fmt.Errorf("muxwise: Goodput: invalid rate range [%g, %g]: want 0 <= lo <= hi", lo, hi)
	}
	var g float64
	var feasible bool
	if r.isFleet {
		g, feasible, err = cluster.Goodput(r.cluster, mk, lo, hi)
		if err != nil {
			return 0, err
		}
	} else {
		g, feasible = serve.GoodputBy(func(rate float64) RatePoint {
			return serve.Probe(r.factory, r.cfg, mk, rate)
		}, lo, hi)
	}
	if !feasible {
		return 0, ErrNoFeasibleRate
	}
	return g, nil
}
