package muxwise_test

import (
	"errors"
	"testing"

	"muxwise"
)

// TestAdaptiveTTFTBeatsLeastTokensGoodput is the headline result of the
// plugin seam: on the Fig. 13 bursty Conversation profile, the learned
// adaptive-ttft router sustains a higher burst scale than static
// least-tokens on a heterogeneous A100+H100 fleet. Least-tokens balances
// outstanding work evenly — blind to both the sessions' KV locality and
// the H100's speed — while adaptive-ttft keeps sessions on their cache
// and shifts cold traffic toward the replica whose observed TTFT is
// lower, so it rides the bursts the static policy drowns in.
func TestAdaptiveTTFTBeatsLeastTokensGoodput(t *testing.T) {
	base := muxwise.NewExperiment(
		muxwise.WithDeployment(muxwise.Deployment{
			Hardware: "A100", GPUs: 1, Model: "Llama-8B",
			SLO: muxwise.SLO{TTFT: muxwise.Second, TBT: 50 * muxwise.Millisecond},
		}),
		muxwise.WithFleet(
			muxwise.ReplicaSpec{Engine: "MuxWise", Count: 1, Hardware: "A100"},
			muxwise.ReplicaSpec{Engine: "MuxWise", Count: 1, Hardware: "H100"},
		),
		muxwise.WithWorkload(func(scale float64) *muxwise.Trace {
			return muxwise.Conversation(17, 80).
				WithProfileArrivals(17, muxwise.ConversationProfile(scale))
		}),
	)
	adaptive, err := base.With(muxwise.WithRouter("adaptive-ttft")).Goodput(2, 16)
	if err != nil {
		t.Fatalf("adaptive-ttft goodput: %v", err)
	}
	static, err := base.With(muxwise.WithRouter("least-tokens")).Goodput(2, 16)
	if err != nil {
		t.Fatalf("least-tokens goodput: %v", err)
	}
	if adaptive <= static {
		t.Fatalf("adaptive-ttft goodput %.3f should beat least-tokens %.3f on the bursty Conversation profile",
			adaptive, static)
	}
	t.Logf("bursty Conversation goodput scale: adaptive-ttft %.2f vs least-tokens %.2f (%.2fx)",
		adaptive, static, adaptive/static)
}

func TestGoodputRangeValidation(t *testing.T) {
	mk := func(rate float64) *muxwise.Trace {
		return muxwise.ShareGPT(5, 30).WithPoissonArrivals(5, rate)
	}
	// Invalid ranges error out instead of silently returning 0.
	if _, err := muxwise.Goodput("MuxWise", dep8B(), mk, 2, 1); err == nil {
		t.Error("lo > hi should error")
	}
	if _, err := muxwise.Goodput("MuxWise", dep8B(), mk, -1, 1); err == nil {
		t.Error("negative lo should error")
	}
	if _, err := muxwise.ClusterGoodput(fleet("least-tokens"), mk, 3, 2); err == nil {
		t.Error("cluster lo > hi should error")
	}

	// A range that never meets the SLO is not an error-free zero: it is
	// ErrNoFeasibleRate, distinguishable with errors.Is.
	impossible := dep8B()
	impossible.SLO = muxwise.SLO{TTFT: muxwise.Second, TBT: muxwise.Time(1)}
	g, err := muxwise.Goodput("MuxWise", impossible, mk, 0.5, 2)
	if !errors.Is(err, muxwise.ErrNoFeasibleRate) {
		t.Errorf("infeasible range: got (%v, %v), want ErrNoFeasibleRate", g, err)
	}
	cdep := fleet("least-tokens")
	cdep.SLO = muxwise.SLO{TTFT: muxwise.Second, TBT: muxwise.Time(1)}
	g, err = muxwise.ClusterGoodput(cdep, mk, 0.5, 2)
	if !errors.Is(err, muxwise.ErrNoFeasibleRate) {
		t.Errorf("infeasible cluster range: got (%v, %v), want ErrNoFeasibleRate", g, err)
	}
}

func TestExperimentOptionErrors(t *testing.T) {
	dep := muxwise.WithDeployment(dep8B())
	shape := muxwise.ReplicaSpec{Engine: "MuxWise"}
	tr := muxwise.ShareGPT(1, 3).WithPoissonArrivals(1, 1)
	cases := []struct {
		name string
		exp  *muxwise.Experiment
	}{
		{"engine and fleet", muxwise.NewExperiment(dep, muxwise.WithEngine("MuxWise"), muxwise.WithFleet(shape))},
		{"neither engine nor fleet", muxwise.NewExperiment(dep)},
		{"no deployment", muxwise.NewExperiment(muxwise.WithEngine("MuxWise"))},
		{"router without fleet", muxwise.NewExperiment(dep, muxwise.WithEngine("MuxWise"), muxwise.WithRouter("round-robin"))},
		{"autoscaler without fleet", muxwise.NewExperiment(dep, muxwise.WithEngine("MuxWise"), muxwise.WithAutoscaler("backlog"))},
		{"empty engine", muxwise.NewExperiment(dep, muxwise.WithEngine(""))},
		{"bad epoch width", muxwise.NewExperiment(dep, muxwise.WithEngine("MuxWise"), muxwise.WithEpochs(0))},
		{"unknown router", muxwise.NewExperiment(dep, muxwise.WithFleet(shape), muxwise.WithRouter("nope"))},
	}
	for _, c := range cases {
		if _, err := c.exp.Run(tr); err == nil {
			t.Errorf("%s: Run should error", c.name)
		}
	}
	// Sweep and Goodput without a workload are errors too.
	ok := muxwise.NewExperiment(dep, muxwise.WithEngine("MuxWise"))
	if _, err := ok.Sweep(1); err == nil {
		t.Error("Sweep without WithWorkload should error")
	}
	if _, err := ok.Goodput(0.5, 1); err == nil {
		t.Error("Goodput without WithWorkload should error")
	}
}

// TestExperimentMatchesLegacyServe pins the deprecation contract: the
// legacy entry points are thin wrappers, so the Experiment must produce
// identical summaries for the same inputs.
func TestExperimentMatchesLegacyServe(t *testing.T) {
	trace := muxwise.ShareGPT(9, 60).WithPoissonArrivals(9, 3)
	legacy, err := muxwise.Serve("MuxWise", dep8B(), trace)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := muxwise.NewExperiment(
		muxwise.WithDeployment(dep8B()), muxwise.WithEngine("MuxWise"),
	).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine == nil || rep.Fleet != nil {
		t.Fatal("engine experiment should report Engine detail only")
	}
	if rep.Summary != legacy.Summary {
		t.Fatalf("Experiment summary diverged from legacy Serve:\n%+v\nvs\n%+v", rep.Summary, legacy.Summary)
	}

	ctrace := clusterTrace()
	clegacy, err := muxwise.ServeCluster(fleet("prefix-affinity"), ctrace)
	if err != nil {
		t.Fatal(err)
	}
	crep, err := muxwise.NewExperiment(
		muxwise.WithDeployment(fleet("").Deployment),
		muxwise.WithFleet(fleet("").Replicas...),
		muxwise.WithRouter("prefix-affinity"),
	).Run(ctrace)
	if err != nil {
		t.Fatal(err)
	}
	if crep.Fleet == nil || crep.Engine != nil {
		t.Fatal("fleet experiment should report Fleet detail only")
	}
	if crep.Summary != clegacy.Summary {
		t.Fatalf("Experiment summary diverged from legacy ServeCluster:\n%+v\nvs\n%+v", crep.Summary, clegacy.Summary)
	}
}

func TestExperimentEpochWindows(t *testing.T) {
	trace := muxwise.ShareGPT(4, 40).WithPoissonArrivals(4, 2)
	rep, err := muxwise.NewExperiment(
		muxwise.WithDeployment(dep8B()),
		muxwise.WithEngine("MuxWise"),
		muxwise.WithEpochs(5*muxwise.Second),
	).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) < 2 {
		t.Fatalf("expected multiple 5s windows over a ~20s run, got %d", len(rep.Windows))
	}
	arrivals := 0
	for i, w := range rep.Windows {
		arrivals += w.Arrivals
		if i > 0 && w.From != rep.Windows[i-1].To {
			t.Fatalf("window %d not contiguous: [%v, %v] after [%v, %v]",
				i, w.From, w.To, rep.Windows[i-1].From, rep.Windows[i-1].To)
		}
	}
	if arrivals != rep.Summary.Requests {
		t.Fatalf("windows cover %d arrivals of %d", arrivals, rep.Summary.Requests)
	}
	if last := rep.Windows[len(rep.Windows)-1].To; last != rep.Summary.Makespan {
		t.Fatalf("windows end at %v, makespan %v", last, rep.Summary.Makespan)
	}
}
