package muxwise_test

import (
	"bytes"
	"fmt"
	"sync"

	"muxwise"
)

// ExampleExperiment_Run serves a ShareGPT trace with the MuxWise engine
// on a simulated 8×A100 server.
func ExampleExperiment_Run() {
	trace := muxwise.ShareGPT(1, 80).WithPoissonArrivals(1, 2)
	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(muxwise.Deployment{Hardware: "A100", GPUs: 8, Model: "Llama-8B"}),
		muxwise.WithEngine("MuxWise"),
	)
	report, err := exp.Run(trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("finished %d/%d requests\n", report.Summary.Finished, report.Summary.Requests)
	fmt.Printf("meets the TBT SLO: %v\n", report.Attainment >= 0.99)
	// Output:
	// finished 80/80 requests
	// meets the TBT SLO: true
}

// ExampleExperiment_Sweep probes two offered rates with the workload
// generator configured on the experiment.
func ExampleExperiment_Sweep() {
	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(muxwise.Deployment{Hardware: "A100", GPUs: 8, Model: "Llama-8B"}),
		muxwise.WithEngine("MuxWise"),
		muxwise.WithWorkload(func(rate float64) *muxwise.Trace {
			return muxwise.ShareGPT(7, 60).WithPoissonArrivals(7, rate)
		}),
	)
	pts, err := exp.Sweep(0.5, 1)
	if err != nil {
		panic(err)
	}
	for _, p := range pts {
		fmt.Printf("%.1f req/s sustained: %v\n", p.Rate, !p.Unstable && p.Attainment >= 0.99)
	}
	// Output:
	// 0.5 req/s sustained: true
	// 1.0 req/s sustained: true
}

// sessionHash is a user-defined router: it spreads sessions across the
// fleet by session ID, keeping multi-turn requests together without any
// load awareness.
type sessionHash struct{}

func (sessionHash) Name() string { return "session-hash" }

func (sessionHash) Pick(r *muxwise.Request, view muxwise.FleetView) *muxwise.FleetReplica {
	return view.Candidates[r.Session%len(view.Candidates)]
}

// sessionHashOnce guards registration: the registry is process-global
// and rejects duplicates, so repeated in-process runs (go test -count=2)
// must register only once.
var sessionHashOnce sync.Once

// ExampleRegisterRouter registers a custom routing policy and drives a
// replica fleet with it, end to end.
func ExampleRegisterRouter() {
	sessionHashOnce.Do(func() {
		if err := muxwise.RegisterRouter("session-hash", func() muxwise.Router { return sessionHash{} }); err != nil {
			panic(err)
		}
	})
	trace := muxwise.Conversation(3, 30).WithPoissonArrivals(3, 2)
	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(muxwise.Deployment{Hardware: "A100", GPUs: 1, Model: "Llama-8B"}),
		muxwise.WithFleet(muxwise.ReplicaSpec{Engine: "MuxWise", Count: 3}),
		muxwise.WithRouter("session-hash"),
	)
	report, err := exp.Run(trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("routed the whole trace: %v\n", report.Summary.Requests == trace.Len())
	fmt.Printf("replicas used: %d\n", len(report.Fleet.Replicas))
	fmt.Printf("all finished: %v\n", report.Summary.Finished == report.Summary.Requests)
	// Output:
	// routed the whole trace: true
	// replicas used: 3
	// all finished: true
}

// ExampleWithCostModel serves a model/GPU pair no offline profile exists
// for — Llama-70B on B200 — by swapping the fitted step-time estimator
// for the analytical roofline model (docs/roofline.md): per-phase time
// computed from the architecture's FLOP/byte counts and the GPU
// datasheet, so any catalog pair (docs/hardware.md) serves immediately.
func ExampleWithCostModel() {
	trace := muxwise.ToolAgent(7, 30).WithPoissonArrivals(7, 0.8)
	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(muxwise.Deployment{
			Hardware: "B200", GPUs: 2, Model: "Llama-70B",
			SLO: muxwise.SLO{TTFT: 2 * muxwise.Second, TBT: 100 * muxwise.Millisecond},
		}),
		muxwise.WithEngine("MuxWise"),
		muxwise.WithCostModel(muxwise.CostRoofline),
	)
	report, err := exp.Run(trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost models: %v\n", muxwise.CostModels())
	fmt.Printf("finished %d/%d requests\n", report.Summary.Finished, report.Summary.Requests)
	fmt.Printf("meets the TBT SLO: %v\n", report.Attainment >= 0.99)
	// Output:
	// cost models: [fitted roofline]
	// finished 57/57 requests
	// meets the TBT SLO: true
}

// ExampleWithTrace attaches a flight recorder to a fleet run and exports
// the captured request, router and fleet activity as a Chrome trace
// (loadable in Perfetto) without perturbing the simulation.
func ExampleWithTrace() {
	trace := muxwise.Conversation(5, 20).WithPoissonArrivals(5, 0.5)
	fr := muxwise.NewFlightRecorder()
	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(muxwise.Deployment{Hardware: "A100", GPUs: 1, Model: "Llama-8B"}),
		muxwise.WithFleet(muxwise.ReplicaSpec{Engine: "MuxWise", Count: 2}),
		muxwise.WithRouter("least-tokens"),
		muxwise.WithTrace(fr),
	)
	report, err := exp.Run(trace)
	if err != nil {
		panic(err)
	}
	var chrome bytes.Buffer
	if err := muxwise.WriteChromeTrace(&chrome, fr); err != nil {
		panic(err)
	}
	fmt.Printf("captured events: %v\n", fr.Len() > 0)
	fmt.Printf("all requests served: %v\n", report.Summary.Finished == trace.Len())
	fmt.Printf("misses attributed: %q\n", report.MissCauses.String())
	// Output:
	// captured events: true
	// all requests served: true
	// misses attributed: "prefill:14"
}
