// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds and dispatches events
// in (time, insertion-sequence) order, so two runs with the same inputs
// produce byte-identical schedules. Everything in this repository —
// simulated GPUs, serving engines, workload arrivals — is driven by a
// single Sim instance.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration constants, mirroring time.Duration but in simulation units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds converts seconds to a simulation Time, rounding up so that
// an event scheduled at FromSeconds(d) never lands before the real-valued
// deadline. Saturates at MaxTime.
func FromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	ns := math.Ceil(s * 1e9)
	if ns >= float64(math.MaxInt64) {
		return MaxTime
	}
	return Time(ns)
}

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	at    Time
	seq   int64
	index int // heap index, -1 once removed
	fn    func()
}

// At returns the virtual time at which the event fires.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index < 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now        Time
	events     eventHeap
	seq        int64
	stopped    bool
	fired      int64
	canceled   int64
	maxPending int
}

// LoopStats snapshots the event loop's lifetime counters — the raw
// material for events/sec and ns/event perf tracking. Every schedule
// and cancel is a heap operation, so Scheduled+Canceled+Fired bounds
// the loop's heap work.
type LoopStats struct {
	// Fired counts events dispatched.
	Fired int64 `json:"fired"`
	// Scheduled counts events ever pushed (fired or not).
	Scheduled int64 `json:"scheduled"`
	// Canceled counts events removed before firing.
	Canceled int64 `json:"canceled"`
	// MaxPending is the high-water mark of the event heap.
	MaxPending int `json:"max_pending"`
}

// Stats returns the loop's counters so far.
func (s *Sim) Stats() LoopStats {
	return LoopStats{Fired: s.fired, Scheduled: s.seq, Canceled: s.canceled, MaxPending: s.maxPending}
}

// New returns a fresh simulator positioned at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events dispatched so far.
func (s *Sim) Fired() int64 { return s.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it always indicates a logic error in the caller.
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v which is before now %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	if len(s.events) > s.maxPending {
		s.maxPending = len(s.events)
	}
	return e
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero.
func (s *Sim) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling a fired or already
// cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.events, e.index)
	e.index = -1
	s.canceled++
}

// Stop makes the current Run invocation return after the in-flight event
// completes. Pending events stay queued.
func (s *Sim) Stop() { s.stopped = true }

// Run dispatches events until the queue is empty or Stop is called.
func (s *Sim) Run() { s.RunUntil(MaxTime) }

// RunUntil dispatches events with time ≤ limit. After it returns, Now is
// the time of the last dispatched event (or limit, if any events remain
// beyond it), and the simulator can be resumed by calling RunUntil again.
func (s *Sim) RunUntil(limit Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > limit {
			if s.now < limit {
				s.now = limit
			}
			return
		}
		heap.Pop(&s.events)
		s.now = next.at
		s.fired++
		next.fn()
	}
	if len(s.events) == 0 && s.now < limit && limit < MaxTime {
		s.now = limit
	}
}
