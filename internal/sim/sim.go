// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds and dispatches events
// in (time, insertion-sequence) order, so two runs with the same inputs
// produce byte-identical schedules. Everything in this repository —
// simulated GPUs, serving engines, workload arrivals — is driven by a
// single Sim instance.
//
// The event loop is the hottest path in the repository, so it avoids
// allocating per operation: fired and cancelled events return to a free
// list and are recycled by later schedules (callers hold generation-
// checked Handles, so a recycled slot cannot be cancelled by a stale
// holder), the priority queue is a hand-rolled 4-ary heap over *Event
// (no container/heap interface boxing), and the AtFunc/AfterFunc
// variants let callers schedule a pre-bound func(arg) without allocating
// a fresh closure per event.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration constants, mirroring time.Duration but in simulation units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds converts seconds to a simulation Time, rounding up so that
// an event scheduled at FromSeconds(d) never lands before the real-valued
// deadline. Saturates at MaxTime.
func FromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	ns := math.Ceil(s * 1e9)
	if ns >= float64(math.MaxInt64) {
		return MaxTime
	}
	return Time(ns)
}

// Event is one pooled scheduling slot. Callers never hold an *Event
// directly: the scheduling methods return a Handle that remembers the
// slot's generation, so a Handle to a fired or cancelled event — whose
// slot may since have been recycled for an unrelated schedule — can
// never affect the new occupant.
type Event struct {
	at    Time
	seq   int64
	index int32  // heap index, -1 while pooled
	gen   uint32 // bumped every time the slot is released

	fn  func()    // closure form
	afn func(any) // closure-free form: afn(arg)
	arg any
}

// Handle identifies one scheduled event. The zero Handle is valid and
// refers to no event (Cancel ignores it; Pending reports false).
type Handle struct {
	ev  *Event
	gen uint32
}

// Pending reports whether the event is still scheduled: it has neither
// fired nor been cancelled. The zero Handle is never pending.
func (h Handle) Pending() bool { return h.ev != nil && h.ev.gen == h.gen }

// At returns the virtual time at which the event fires, or 0 when the
// handle is no longer pending.
func (h Handle) At() Time {
	if !h.Pending() {
		return 0
	}
	return h.ev.at
}

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now        Time
	events     []*Event // 4-ary min-heap on (at, seq)
	free       []*Event // recycled slots
	seq        int64
	stopped    bool
	fired      int64
	canceled   int64
	maxPending int
}

// LoopStats snapshots the event loop's lifetime counters — the raw
// material for events/sec and ns/event perf tracking. Every schedule
// and cancel is a heap operation, so Scheduled+Canceled+Fired bounds
// the loop's heap work. Scheduled == Fired + Canceled + Pending holds
// at every instant.
type LoopStats struct {
	// Fired counts events dispatched.
	Fired int64 `json:"fired"`
	// Scheduled counts events ever pushed (fired or not).
	Scheduled int64 `json:"scheduled"`
	// Canceled counts events removed before firing.
	Canceled int64 `json:"canceled"`
	// MaxPending is the high-water mark of the event heap.
	MaxPending int `json:"max_pending"`
}

// Stats returns the loop's counters so far.
func (s *Sim) Stats() LoopStats {
	return LoopStats{Fired: s.fired, Scheduled: s.seq, Canceled: s.canceled, MaxPending: s.maxPending}
}

// New returns a fresh simulator positioned at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events dispatched so far.
func (s *Sim) Fired() int64 { return s.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (s *Sim) Pending() int { return len(s.events) }

// alloc takes a slot off the free list (or makes one) and keys it for
// scheduling at t.
func (s *Sim) alloc(t Time) *Event {
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v which is before now %v", t, s.now))
	}
	e.at = t
	e.seq = s.seq
	s.seq++
	return e
}

// push inserts the keyed slot into the heap.
func (s *Sim) push(e *Event) {
	e.index = int32(len(s.events))
	s.events = append(s.events, e)
	s.up(int(e.index))
	if len(s.events) > s.maxPending {
		s.maxPending = len(s.events)
	}
}

// release returns a removed slot to the free list, invalidating every
// Handle that points at it.
func (s *Sim) release(e *Event) {
	e.gen++
	e.index = -1
	e.fn = nil
	e.afn = nil
	e.arg = nil
	s.free = append(s.free, e)
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it always indicates a logic error in the caller.
func (s *Sim) At(t Time, fn func()) Handle {
	e := s.alloc(t)
	e.fn = fn
	s.push(e)
	return Handle{ev: e, gen: e.gen}
}

// AtFunc schedules fn(arg) to run at absolute time t. It is the
// closure-free variant of At: callers bind fn once (a package function
// or a field initialised at construction) and pass per-event state
// through arg, so scheduling allocates nothing. Engines use it for
// per-token and per-chunk events.
func (s *Sim) AtFunc(t Time, fn func(any), arg any) Handle {
	e := s.alloc(t)
	e.afn = fn
	e.arg = arg
	s.push(e)
	return Handle{ev: e, gen: e.gen}
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero.
func (s *Sim) After(d Time, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AfterFunc schedules fn(arg) to run d after the current time, clamping
// negative delays to zero — the closure-free After.
func (s *Sim) AfterFunc(d Time, fn func(any), arg any) Handle {
	if d < 0 {
		d = 0
	}
	return s.AtFunc(s.now+d, fn, arg)
}

// Cancel removes a scheduled event. Cancelling a fired or already
// cancelled event — including one whose pooled slot has since been
// recycled for a different schedule — is a no-op: the handle's
// generation no longer matches the slot's.
func (s *Sim) Cancel(h Handle) {
	if !h.Pending() {
		return
	}
	s.remove(int(h.ev.index))
	s.release(h.ev)
	s.canceled++
}

// Stop makes the current Run invocation return after the in-flight event
// completes. Pending events stay queued.
func (s *Sim) Stop() { s.stopped = true }

// Run dispatches events until the queue is empty or Stop is called.
func (s *Sim) Run() { s.RunUntil(MaxTime) }

// RunUntil dispatches events with time ≤ limit. After it returns, Now is
// the time of the last dispatched event (or limit, if any events remain
// beyond it), and the simulator can be resumed by calling RunUntil again.
func (s *Sim) RunUntil(limit Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > limit {
			if s.now < limit {
				s.now = limit
			}
			return
		}
		s.popMin()
		s.now = next.at
		s.fired++
		// Copy the callback out and recycle the slot before dispatching,
		// so events the callback schedules can reuse it immediately.
		fn, afn, arg := next.fn, next.afn, next.arg
		s.release(next)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
	}
	if len(s.events) == 0 && s.now < limit && limit < MaxTime {
		s.now = limit
	}
}

// The priority queue is a 4-ary indexed min-heap on (at, seq): same
// dispatch order as any binary heap over the same strict total order,
// with a shallower tree (fewer cache misses per push/pop) and no
// interface boxing.

// less orders events by (at, seq).
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// popMin removes the heap root.
func (s *Sim) popMin() {
	h := s.events
	n := len(h) - 1
	h[0] = h[n]
	h[0].index = 0
	h[n] = nil
	s.events = h[:n]
	if n > 0 {
		s.down(0)
	}
}

// remove deletes the event at heap index i.
func (s *Sim) remove(i int) {
	h := s.events
	n := len(h) - 1
	if i != n {
		h[i] = h[n]
		h[i].index = int32(i)
	}
	h[n] = nil
	s.events = h[:n]
	if i < n {
		s.down(i)
		s.up(i)
	}
}

// up restores the heap property from index i toward the root.
func (s *Sim) up(i int) {
	h := s.events
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = e
	e.index = int32(i)
}

// down restores the heap property from index i toward the leaves.
func (s *Sim) down(i int) {
	h := s.events
	n := len(h)
	e := h[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		// Smallest of up to four children.
		min := c
		for k := c + 1; k < c+4 && k < n; k++ {
			if less(h[k], h[min]) {
				min = k
			}
		}
		if !less(h[min], e) {
			break
		}
		h[i] = h[min]
		h[i].index = int32(i)
		i = min
	}
	h[i] = e
	e.index = int32(i)
}
