package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var s Sim
	ran := false
	s.At(5*Millisecond, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("event did not fire")
	}
	if s.Now() != 5*Millisecond {
		t.Fatalf("Now = %v, want 5ms", s.Now())
	}
}

func TestOrderingByTime(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestOrderingTieBreakBySequence(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie-break order = %v, want ascending insertion order", order)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(1*Second, func() {
		s.After(500*Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 1*Second+500*Millisecond {
		t.Fatalf("fired at %v, want 1.5s", at)
	}
}

func TestAfterNegativeClamped(t *testing.T) {
	s := New()
	fired := false
	s.At(10, func() {
		s.After(-5, func() { fired = true })
	})
	s.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic when scheduling in the past")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() {
		t.Fatal("event still pending after cancel")
	}
	// Double cancel and zero-handle cancel must be no-ops.
	s.Cancel(e)
	s.Cancel(Handle{})
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	var evs []Handle
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, s.At(Time(i*10), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		s.Cancel(evs[i])
	}
	s.Run()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("got %d events, want 13", len(got))
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if s.Now() != 25 {
		t.Fatalf("Now = %v, want clamp to 25", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(Time(i), func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (stopped)", count)
	}
	s.Run() // resume
	if count != 5 {
		t.Fatalf("count = %d after resume, want 5", count)
	}
}

func TestFiredAndPending(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Fired() != 2 || s.Pending() != 0 {
		t.Fatalf("Fired = %d Pending = %d, want 2, 0", s.Fired(), s.Pending())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{5 * Second, "5.000s"},
		{12 * Millisecond, "12.000ms"},
		{3 * Microsecond, "3.000µs"},
		{7, "7ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", got)
	}
	if got := FromSeconds(-1); got != 0 {
		t.Fatalf("FromSeconds(-1) = %v, want 0", got)
	}
	if got := FromSeconds(1e30); got != MaxTime {
		t.Fatalf("FromSeconds(huge) = %v, want MaxTime", got)
	}
}

// Property: for any set of event times, dispatch order is the sorted order.
func TestPropertyDispatchSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Now never decreases across an entire run with random nested
// scheduling.
func TestPropertyMonotonicClock(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	s := New()
	last := Time(-1)
	var schedule func(depth int)
	schedule = func(depth int) {
		if s.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", s.Now(), last)
		}
		last = s.Now()
		if depth <= 0 {
			return
		}
		n := rng.IntN(3)
		for i := 0; i < n; i++ {
			d := Time(rng.Int64N(int64(Second)))
			s.After(d, func() { schedule(depth - 1) })
		}
	}
	for i := 0; i < 50; i++ {
		d := Time(rng.Int64N(int64(Second)))
		s.After(d, func() { schedule(4) })
	}
	s.Run()
}

func BenchmarkScheduleAndRun(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	times := make([]Time, 10000)
	for i := range times {
		times[i] = Time(rng.Int64N(int64(Second)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, at := range times {
			s.At(at, func() {})
		}
		s.Run()
	}
}

// Stats must count every schedule, cancel and dispatch, and track the
// heap's high-water mark.
func TestLoopStats(t *testing.T) {
	s := New()
	var fired int
	e1 := s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.At(30, func() { fired++ })
	if st := s.Stats(); st.Scheduled != 3 || st.MaxPending != 3 || st.Fired != 0 {
		t.Fatalf("pre-run stats %+v", st)
	}
	s.Cancel(e1)
	s.Run()
	st := s.Stats()
	if st.Fired != 2 || int(st.Fired) != fired {
		t.Fatalf("fired %d (callbacks %d), want 2", st.Fired, fired)
	}
	if st.Canceled != 1 || st.Scheduled != 3 || st.MaxPending != 3 {
		t.Fatalf("stats %+v", st)
	}
	// Cancelling an already-fired event must not count.
	s.Cancel(e1)
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("double cancel counted: %+v", st)
	}
}

// Regression: a stale Handle whose pooled Event slot has been recycled
// for an unrelated schedule must not cancel the new occupant, and must
// not bump the cancel counter.
func TestCancelRecycledSlotNoOp(t *testing.T) {
	s := New()
	stale := s.At(10, func() {})
	s.Run() // fires; the slot returns to the free list
	if stale.Pending() {
		t.Fatal("fired event still pending")
	}

	// The next schedule reuses the slot stale points at.
	fired := false
	fresh := s.At(20, func() { fired = true })
	if fresh.ev != stale.ev {
		t.Fatalf("expected slot reuse: fresh=%p stale=%p", fresh.ev, stale.ev)
	}
	before := s.Stats()
	s.Cancel(stale) // must be a no-op against the recycled slot
	if !fresh.Pending() {
		t.Fatal("stale cancel killed the recycled slot's new event")
	}
	if st := s.Stats(); st.Canceled != before.Canceled {
		t.Fatalf("stale cancel counted: %+v", st)
	}
	s.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	if st := s.Stats(); st.Fired != 2 || st.Canceled != 0 {
		t.Fatalf("stats after stale cancel: %+v", st)
	}
}

// A cancelled slot that gets recycled is equally immune to its old handle.
func TestCancelTwiceAfterRecycle(t *testing.T) {
	s := New()
	h1 := s.At(10, func() {})
	s.Cancel(h1)
	h2 := s.At(10, func() {})
	if h2.ev != h1.ev {
		t.Fatalf("expected cancelled slot to be recycled")
	}
	s.Cancel(h1) // stale: must not cancel h2, must not count
	if !h2.Pending() {
		t.Fatal("stale cancel killed recycled event")
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1", st.Canceled)
	}
}

// Property: Scheduled == Fired + Canceled + Pending at every observation
// point, across random interleavings of schedules, cancels (valid, stale,
// and double), and partial runs over the pooled loop.
func TestPropertyLoopStatsConservation(t *testing.T) {
	check := func(s *Sim) {
		st := s.Stats()
		if st.Scheduled != st.Fired+st.Canceled+int64(s.Pending()) {
			t.Fatalf("conservation violated: %+v with %d pending", st, s.Pending())
		}
	}
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		s := New()
		var live []Handle
		for op := 0; op < 400; op++ {
			switch rng.IntN(4) {
			case 0, 1: // schedule (closure and closure-free forms)
				d := Time(rng.Int64N(int64(Millisecond)))
				if op%2 == 0 {
					live = append(live, s.After(d, func() {}))
				} else {
					live = append(live, s.AfterFunc(d, func(any) {}, nil))
				}
			case 2: // cancel a random handle — possibly stale or repeated
				if len(live) > 0 {
					s.Cancel(live[rng.IntN(len(live))])
				}
			case 3: // advance time, firing a random prefix
				s.RunUntil(s.Now() + Time(rng.Int64N(int64(Millisecond))))
			}
			check(s)
		}
		s.Run()
		check(s)
		if st := s.Stats(); s.Pending() != 0 && st.Fired == 0 {
			t.Fatalf("run left events pending: %+v", st)
		}
	}
}

// AtFunc must dispatch with its bound argument and order identically to At.
func TestAtFuncOrderingAndArg(t *testing.T) {
	s := New()
	var order []int
	record := func(arg any) { order = append(order, arg.(int)) }
	s.AtFunc(30, record, 3)
	s.At(10, func() { order = append(order, 1) })
	s.AtFunc(20, record, 2)
	s.AtFunc(20, record, 4) // same time: insertion order breaks the tie
	s.Run()
	want := []int{1, 2, 4, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
