// Package obs is the flight recorder: a deterministic, append-only
// event tracer threaded through the simulator, the serving engines and
// the cluster. It answers "why did this run behave that way" after the
// fact — per-request lifecycle spans, fleet lifecycle events, router
// pick records and KV-migration streams — without perturbing the run
// that produced them.
//
// Two properties are load-bearing:
//
//   - Zero overhead when disabled. Every emit method is safe on a nil
//     *Tracer and returns immediately, so call sites pass the tracer
//     through unconditionally; only sites that must build arguments
//     first guard with an explicit nil check.
//
//   - Pure observation. A Tracer only appends to its own buffers. It
//     never schedules simulation events, never mutates engine or fleet
//     state, and never influences iteration order — so a run traced and
//     a run untraced produce byte-identical summaries. The determinism
//     guard test in the root package pins this.
//
// Events use the Chrome trace-event vocabulary directly (duration
// B/E spans, instants, counters, async b/n/e spans correlated by
// category+ID) so the export to Perfetto / chrome://tracing in
// WriteChromeTrace is a straight serialization, and the compact JSONL
// stream in WriteJSONL carries the same records for scripted analysis.
package obs

import "muxwise/internal/sim"

// Event phases, a subset of the Chrome trace-event format's ph field.
const (
	PhaseBegin        byte = 'B' // duration span open (nests per track)
	PhaseEnd          byte = 'E' // duration span close
	PhaseInstant      byte = 'i' // point event
	PhaseCounter      byte = 'C' // numeric series sample
	PhaseAsyncBegin   byte = 'b' // async span open (correlated by Cat+ID)
	PhaseAsyncInstant byte = 'n' // async span milestone
	PhaseAsyncEnd     byte = 'e' // async span close
)

// Arg is one key/value annotation on an event. Values should be
// strings, bools, ints, int64s, sim.Times or float64s; anything else is
// rendered with %v at serialization time.
type Arg struct {
	Key string
	Val any
}

// Event is one recorded observation. At is simulation time; Track names
// the timeline the event renders on (a replica, "fleet", "router");
// Cat+ID correlate async begin/instant/end triples across tracks.
type Event struct {
	At    sim.Time
	Ph    byte
	Cat   string
	Name  string
	Track string
	ID    int64
	Args  []Arg
}

// Tracer accumulates events in emission order. One tracer serves one
// run: the simulator's event loop is single-goroutine, so there is no
// locking — do not share a tracer across concurrent runs (Sweep and
// Goodput probes deliberately run untraced for this reason).
//
// The zero value of *Tracer — nil — is the disabled recorder: every
// method is a no-op.
type Tracer struct {
	events    []Event
	trackSeen map[string]bool
	tracks    []string
}

// New returns an empty, enabled tracer.
func New() *Tracer { return &Tracer{trackSeen: map[string]bool{}} }

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in emission order. The slice is
// the tracer's own buffer; treat it as read-only.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Tracks returns the track names in first-use order — the order the
// Chrome export assigns thread IDs.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	return t.tracks
}

func (t *Tracer) emit(ev Event) {
	if !t.trackSeen[ev.Track] {
		t.trackSeen[ev.Track] = true
		t.tracks = append(t.tracks, ev.Track)
	}
	t.events = append(t.events, ev)
}

// Begin opens a duration span on track. Spans on one track must nest:
// close them with End in LIFO order.
func (t *Tracer) Begin(at sim.Time, track, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Ph: PhaseBegin, Name: name, Track: track, Args: args})
}

// End closes the innermost open duration span on track.
func (t *Tracer) End(at sim.Time, track, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Ph: PhaseEnd, Name: name, Track: track, Args: args})
}

// Instant records a point event on track.
func (t *Tracer) Instant(at sim.Time, track, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Ph: PhaseInstant, Name: name, Track: track, Args: args})
}

// Counter samples one or more numeric series under name on track. Arg
// values must be numeric; each key renders as its own series.
func (t *Tracer) Counter(at sim.Time, track, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Ph: PhaseCounter, Name: name, Track: track, Args: args})
}

// AsyncBegin opens an async span correlated by (cat, id). Async spans
// may cross tracks (a request hops replicas; the matching AsyncEnd can
// land elsewhere) and need not nest.
func (t *Tracer) AsyncBegin(at sim.Time, track, cat string, id int64, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Ph: PhaseAsyncBegin, Cat: cat, Name: name, Track: track, ID: id, Args: args})
}

// AsyncInstant records a milestone inside the open (cat, id) span.
func (t *Tracer) AsyncInstant(at sim.Time, track, cat string, id int64, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Ph: PhaseAsyncInstant, Cat: cat, Name: name, Track: track, ID: id, Args: args})
}

// AsyncEnd closes the open async span correlated by (cat, id).
func (t *Tracer) AsyncEnd(at sim.Time, track, cat string, id int64, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Ph: PhaseAsyncEnd, Cat: cat, Name: name, Track: track, ID: id, Args: args})
}
