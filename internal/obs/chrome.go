package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"muxwise/internal/sim"
)

// WriteChromeTrace serializes the recorded events as Chrome trace-event
// JSON (the "JSON object format"), loadable in Perfetto and
// chrome://tracing. The whole simulation is one process (pid 1); each
// track becomes a named thread, with thread IDs assigned in first-use
// order so the serialization is byte-deterministic for a deterministic
// run. A nil tracer writes a valid empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	put := func(b []byte) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.Write(b)
	}
	if t != nil {
		put([]byte(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"muxwise"}}`))
		tid := map[string]int{}
		for i, track := range t.tracks {
			tid[track] = i + 1
			var b []byte
			b = append(b, `{"name":"thread_name","ph":"M","pid":1,"tid":`...)
			b = strconv.AppendInt(b, int64(i+1), 10)
			b = append(b, `,"args":{"name":`...)
			b = appendJSONString(b, track)
			b = append(b, `}}`...)
			put(b)
			b = b[:0]
			b = append(b, `{"name":"thread_sort_index","ph":"M","pid":1,"tid":`...)
			b = strconv.AppendInt(b, int64(i+1), 10)
			b = append(b, `,"args":{"sort_index":`...)
			b = strconv.AppendInt(b, int64(i+1), 10)
			b = append(b, `}}`...)
			put(b)
		}
		var b []byte
		for _, ev := range t.events {
			b = appendChromeEvent(b[:0], ev, tid[ev.Track])
			put(b)
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

func appendChromeEvent(b []byte, ev Event, tid int) []byte {
	b = append(b, `{"name":`...)
	b = appendJSONString(b, ev.Name)
	if ev.Cat != "" {
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, ev.Cat)
	}
	b = append(b, `,"ph":"`...)
	b = append(b, ev.Ph)
	b = append(b, `","ts":`...)
	b = appendMicros(b, ev.At)
	b = append(b, `,"pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	switch ev.Ph {
	case PhaseAsyncBegin, PhaseAsyncInstant, PhaseAsyncEnd:
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, ev.ID, 10)
	}
	if len(ev.Args) > 0 {
		b = append(b, `,"args":{`...)
		for i, a := range ev.Args {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, a.Key)
			b = append(b, ':')
			b = appendArgVal(b, a.Val)
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

// appendMicros renders a simulation time (integer nanoseconds) as
// microseconds with exactly three decimals — lossless, and free of
// float formatting variance.
func appendMicros(b []byte, at sim.Time) []byte {
	us, ns := int64(at)/1000, int64(at)%1000
	b = strconv.AppendInt(b, us, 10)
	b = append(b, '.')
	b = append(b, byte('0'+ns/100), byte('0'+ns/10%10), byte('0'+ns%10))
	return b
}

func appendJSONString(b []byte, s string) []byte {
	q, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return append(b, `""`...)
	}
	return append(b, q...)
}

func appendArgVal(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendJSONString(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case sim.Time:
		return strconv.AppendInt(b, int64(x), 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	default:
		return appendJSONString(b, fmt.Sprintf("%v", x))
	}
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and checks
// the structural invariants Perfetto relies on: every event carries a
// known single-character ph plus numeric ts/pid/tid; duration B/E spans
// nest and close in LIFO order per (pid, tid) with non-decreasing
// timestamps; every async end matches an open (cat, id) span. Spans
// still open when the trace ends are allowed (a run's horizon can cut
// work mid-flight; viewers render these as extending to the end). It
// returns a list of human-readable problems, empty for a valid trace.
func ValidateChromeTrace(data []byte) []string {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{fmt.Sprintf("not a trace-event JSON object: %v", err)}
	}
	if doc.TraceEvents == nil {
		return []string{"missing traceEvents array"}
	}
	type span struct {
		name string
		ts   float64
	}
	var issues []string
	addf := func(format string, args ...any) {
		if len(issues) < 20 {
			issues = append(issues, fmt.Sprintf(format, args...))
		}
	}
	stacks := map[string][]span{}   // (pid,tid) -> open B spans
	lastTS := map[string]float64{}  // (pid,tid) -> last sync-event ts
	async := map[string][]float64{} // (cat,id) -> open b timestamps
	for i, raw := range doc.TraceEvents {
		var ev struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
			ID   *int64   `json:"id"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			addf("event %d: malformed: %v", i, err)
			continue
		}
		switch ev.Ph {
		case "B", "E", "i", "C", "b", "n", "e", "M":
		default:
			addf("event %d (%s): bad ph %q", i, ev.Name, ev.Ph)
			continue
		}
		if ev.PID == nil || ev.TID == nil {
			addf("event %d (%s): missing pid/tid", i, ev.Name)
			continue
		}
		if ev.Ph == "M" {
			continue
		}
		if ev.TS == nil {
			addf("event %d (%s): missing ts", i, ev.Name)
			continue
		}
		if *ev.TS < 0 {
			addf("event %d (%s): negative ts %v", i, ev.Name, *ev.TS)
		}
		track := fmt.Sprintf("%d/%d", *ev.PID, *ev.TID)
		switch ev.Ph {
		case "B", "E", "i", "C":
			if *ev.TS < lastTS[track] {
				addf("event %d (%s): ts %v goes backwards on track %s", i, ev.Name, *ev.TS, track)
			}
			lastTS[track] = *ev.TS
		}
		switch ev.Ph {
		case "B":
			stacks[track] = append(stacks[track], span{ev.Name, *ev.TS})
		case "E":
			st := stacks[track]
			if len(st) == 0 {
				addf("event %d (%s): E with no open B on track %s", i, ev.Name, track)
				continue
			}
			top := st[len(st)-1]
			if *ev.TS < top.ts {
				addf("event %d (%s): E at %v before its B at %v", i, ev.Name, *ev.TS, top.ts)
			}
			stacks[track] = st[:len(st)-1]
		case "b":
			if ev.ID == nil {
				addf("event %d (%s): async begin without id", i, ev.Name)
				continue
			}
			key := fmt.Sprintf("%s/%d", ev.Cat, *ev.ID)
			async[key] = append(async[key], *ev.TS)
		case "n", "e":
			if ev.ID == nil {
				addf("event %d (%s): async event without id", i, ev.Name)
				continue
			}
			key := fmt.Sprintf("%s/%d", ev.Cat, *ev.ID)
			open := async[key]
			if len(open) == 0 {
				addf("event %d (%s): async %s with no open begin for %s", i, ev.Name, ev.Ph, key)
				continue
			}
			if *ev.TS < open[len(open)-1] {
				addf("event %d (%s): async %s at %v before its begin at %v", i, ev.Name, ev.Ph, *ev.TS, open[len(open)-1])
			}
			if ev.Ph == "e" {
				async[key] = open[:len(open)-1]
			}
		}
	}
	return issues
}
