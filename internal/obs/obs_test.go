package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// A nil tracer must be a total no-op: every emit method returns, the
// accessors report empty, and both writers produce valid (empty) output.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Begin(1, "a", "x")
	tr.End(2, "a", "x")
	tr.Instant(3, "a", "y")
	tr.Counter(4, "a", "c", Arg{"v", 1})
	tr.AsyncBegin(5, "a", "req", 7, "r")
	tr.AsyncInstant(6, "a", "req", 7, "m")
	tr.AsyncEnd(7, "a", "req", 7, "r")
	if tr.Enabled() || tr.Len() != 0 || tr.Events() != nil || tr.Tracks() != nil {
		t.Fatalf("nil tracer not inert: len=%d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if issues := ValidateChromeTrace(buf.Bytes()); len(issues) != 0 {
		t.Fatalf("empty trace invalid: %v", issues)
	}
	buf.Reset()
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil JSONL wrote %d bytes, err %v", buf.Len(), err)
	}
}

func sample() *Tracer {
	tr := New()
	tr.AsyncBegin(0, "rep-0", "request", 1, "request", Arg{"in", 128})
	tr.Begin(1000, "rep-0", "prefill", Arg{"reqs", 1})
	tr.AsyncInstant(1500, "rep-0", "request", 1, "first-token", Arg{"ttft_ms", 1.5})
	tr.End(2000, "rep-0", "prefill")
	tr.Counter(2000, "fleet", "replicas", Arg{"ready", 2})
	tr.Instant(2500, "router", "pick", Arg{"picked", "rep-1"}, Arg{"ok", true})
	tr.AsyncEnd(3000, "rep-0", "request", 1, "request", Arg{"outcome", "finish"})
	return tr
}

// Identical emission sequences must serialize byte-identically — the
// property the determinism guard in the root package builds on.
func TestWritersDeterministic(t *testing.T) {
	var a, b, aj, bj bytes.Buffer
	if err := sample().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := sample().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome serialization not deterministic")
	}
	if err := sample().WriteJSONL(&aj); err != nil {
		t.Fatal(err)
	}
	if err := sample().WriteJSONL(&bj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
		t.Fatal("JSONL serialization not deterministic")
	}
}

func TestChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if issues := ValidateChromeTrace(buf.Bytes()); len(issues) != 0 {
		t.Fatalf("sample trace invalid: %v", issues)
	}
	// The document as a whole must be standard JSON, args included.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not standard JSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"thread_name"`) {
		t.Fatal("missing track metadata")
	}
}

func TestJSONLLinesParse(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != sample().Len() {
		t.Fatalf("got %d lines, want %d", len(lines), sample().Len())
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d not valid JSON: %s", i, line)
		}
	}
}

func TestValidatorCatchesBadTraces(t *testing.T) {
	cases := map[string]string{
		"not json":       `[]`,
		"bad ph":         `{"traceEvents":[{"name":"x","ph":"Q","ts":1,"pid":1,"tid":1}]}`,
		"missing tid":    `{"traceEvents":[{"name":"x","ph":"i","ts":1,"pid":1}]}`,
		"unopened E":     `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}`,
		"backwards ts":   `{"traceEvents":[{"name":"x","ph":"i","ts":5,"pid":1,"tid":1},{"name":"y","ph":"i","ts":1,"pid":1,"tid":1}]}`,
		"unopened async": `{"traceEvents":[{"name":"x","cat":"r","ph":"e","id":1,"ts":1,"pid":1,"tid":1}]}`,
		"E before B ts":  `{"traceEvents":[{"name":"x","ph":"B","ts":5,"pid":1,"tid":1},{"name":"x","ph":"E","ts":3,"pid":1,"tid":1}]}`,
	}
	for name, doc := range cases {
		if issues := ValidateChromeTrace([]byte(doc)); len(issues) == 0 {
			t.Errorf("%s: validator found no issues", name)
		}
	}
	// Unclosed spans at end-of-trace are tolerated (horizon cuts).
	open := `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},{"name":"r","cat":"req","ph":"b","id":1,"ts":1,"pid":1,"tid":1}]}`
	if issues := ValidateChromeTrace([]byte(open)); len(issues) != 0 {
		t.Errorf("open spans at end flagged: %v", issues)
	}
}

func TestTrackOrder(t *testing.T) {
	tr := sample()
	want := []string{"rep-0", "fleet", "router"}
	got := tr.Tracks()
	if len(got) != len(want) {
		t.Fatalf("tracks %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tracks %v, want %v", got, want)
		}
	}
}
