package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WriteJSONL serializes the recorded events as one compact JSON object
// per line, in emission order — the scripted-analysis counterpart of
// WriteChromeTrace. Each line carries at (integer nanoseconds), ph,
// track and name, plus cat/id for async events and args when present.
// A nil tracer writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var b []byte
	for _, ev := range t.events {
		b = b[:0]
		b = append(b, `{"at":`...)
		b = strconv.AppendInt(b, int64(ev.At), 10)
		b = append(b, `,"ph":"`...)
		b = append(b, ev.Ph)
		b = append(b, `","track":`...)
		b = appendJSONString(b, ev.Track)
		if ev.Cat != "" {
			b = append(b, `,"cat":`...)
			b = appendJSONString(b, ev.Cat)
		}
		switch ev.Ph {
		case PhaseAsyncBegin, PhaseAsyncInstant, PhaseAsyncEnd:
			b = append(b, `,"id":`...)
			b = strconv.AppendInt(b, ev.ID, 10)
		}
		b = append(b, `,"name":`...)
		b = appendJSONString(b, ev.Name)
		if len(ev.Args) > 0 {
			b = append(b, `,"args":{`...)
			for i, a := range ev.Args {
				if i > 0 {
					b = append(b, ',')
				}
				b = appendJSONString(b, a.Key)
				b = append(b, ':')
				b = appendArgVal(b, a.Val)
			}
			b = append(b, '}')
		}
		b = append(b, '}', '\n')
		bw.Write(b)
	}
	return bw.Flush()
}
