package frontier

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"muxwise"
)

// Schema versions the report layout; bump it when a field changes
// meaning so stale goldens fail loudly instead of silently comparing
// different physics.
const Schema = "muxwise/frontier/v1"

// precision is the fixed decimal precision every float in a canonical
// report is rounded to, so reports marshal byte-identically across runs
// and platforms.
const precision = 1e6

// round fixes a float to the report precision.
func round(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*precision) / precision
}

// roundAll fixes a slice of floats to the report precision.
func roundAll(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = round(v)
	}
	return out
}

// Grid echoes the swept axes so a report is self-describing and a golden
// diff against a changed matrix fails on the grid, not cell by cell.
type Grid struct {
	Compositions []string  `json:"compositions"`
	Baseline     string    `json:"baseline"`
	Conditions   []string  `json:"conditions"`
	Routers      []string  `json:"routers"`
	Scales       []float64 `json:"scales"`
	Sessions     int       `json:"sessions"`
	Seed         uint64    `json:"seed"`
	// CostModel names the step-time estimator the sweep ran under; empty
	// means the fitted default (omitted so pre-existing goldens stay
	// byte-identical).
	CostModel string `json:"cost_model,omitempty"`
}

// Cell is one point of the sweep: a composition serving the Fig. 13 mix
// at one burst scale under one condition and router.
type Cell struct {
	Condition   string  `json:"condition"`
	Router      string  `json:"router"`
	Composition string  `json:"composition"`
	Scale       float64 `json:"scale"`

	// GPUs is the initial fleet's device total; GPUSeconds integrates
	// the devices actually provisioned over the offered window (they
	// differ under failures and autoscaling).
	GPUs       int     `json:"gpus"`
	GPUSeconds float64 `json:"gpu_seconds"`

	// Offered counts trace requests; OfferedRate is over the arrival
	// span. WithinSLO counts requests that finished with TTFT and every
	// TBT inside the SLO — the goodput numerator.
	Offered     int     `json:"offered"`
	OfferedRate float64 `json:"offered_rate"`
	WithinSLO   int     `json:"within_slo"`

	// Goodput is within-SLO requests per second; GoodputPerGPU
	// normalises by GPU-seconds — the frontier's y-axis.
	Goodput       float64 `json:"goodput"`
	GoodputPerGPU float64 `json:"goodput_per_gpu"`

	// Attainment is the run's TBT-sample attainment (the §4 criterion's
	// ingredient); CacheHit the fleet prefix-cache hit rate.
	Attainment float64 `json:"attainment"`
	CacheHit   float64 `json:"cache_hit"`

	Unstable bool `json:"unstable"`
	Failures int  `json:"failures"`

	// MissCauses attributes every SLO miss of the cell to a cause
	// (queue-wait, slow prefill, TBT violation, migration stall, crash,
	// unfinished). Its Misses total always equals Offered − WithinSLO.
	MissCauses muxwise.MissBreakdown `json:"miss_causes"`
}

// key returns the cell's canonical identity.
func (c Cell) key() string {
	return fmt.Sprintf("%s/%s/%s@%g", c.Condition, c.Router, c.Composition, c.Scale)
}

// Leader is the composition with the highest goodput-per-GPU at one
// burst scale of a frontier.
type Leader struct {
	Scale         float64 `json:"scale"`
	Composition   string  `json:"composition"`
	GoodputPerGPU float64 `json:"goodput_per_gpu"`
}

// Frontier is the per-(condition, router) reduction of the sweep: the
// leading composition at every burst scale and the crossover point — the
// smallest scale at which a non-baseline composition's goodput-per-GPU
// reaches the baseline's (0 when the baseline is never overtaken).
type Frontier struct {
	Condition string   `json:"condition"`
	Router    string   `json:"router"`
	Leaders   []Leader `json:"leaders"`
	Crossover float64  `json:"crossover_scale"`
}

// Report is the canonical result of a frontier sweep: cells sorted by
// (condition, router, composition, scale), every float fixed to report
// precision, and the frontier reductions extracted — ready to diff
// against a committed golden.
type Report struct {
	Schema    string     `json:"schema"`
	Name      string     `json:"name"`
	Grid      Grid       `json:"grid"`
	Cells     []Cell     `json:"cells"`
	Frontiers []Frontier `json:"frontiers"`
}

// canonicalize sorts the cells into golden order.
func (r *Report) canonicalize() {
	sort.Slice(r.Cells, func(i, j int) bool {
		a, b := r.Cells[i], r.Cells[j]
		if a.Condition != b.Condition {
			return a.Condition < b.Condition
		}
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		if a.Composition != b.Composition {
			return a.Composition < b.Composition
		}
		return a.Scale < b.Scale
	})
}

// extractFrontiers reduces the cells to per-(condition, router) leader
// tracks and crossover points against the baseline composition.
func (r *Report) extractFrontiers(baseline string) {
	r.Frontiers = nil
	for _, cond := range r.Grid.Conditions {
		for _, router := range r.Grid.Routers {
			f := Frontier{Condition: cond, Router: router}
			for _, scale := range r.Grid.Scales {
				base, baseOK := r.cell(cond, router, baseline, scale)
				var lead *Cell
				var challenger *Cell
				for i := range r.Cells {
					c := &r.Cells[i]
					if c.Condition != cond || c.Router != router || c.Scale != scale {
						continue
					}
					if lead == nil || c.GoodputPerGPU > lead.GoodputPerGPU {
						lead = c
					}
					if c.Composition != baseline &&
						(challenger == nil || c.GoodputPerGPU > challenger.GoodputPerGPU) {
						challenger = c
					}
				}
				if lead == nil {
					continue
				}
				f.Leaders = append(f.Leaders, Leader{
					Scale:         scale,
					Composition:   lead.Composition,
					GoodputPerGPU: lead.GoodputPerGPU,
				})
				// A crossover needs the challenger to actually deliver:
				// a 0-vs-0 tie (nothing met the SLO anywhere) is not the
				// baseline being overtaken.
				if f.Crossover == 0 && baseOK && challenger != nil &&
					challenger.GoodputPerGPU > 0 &&
					challenger.GoodputPerGPU >= base.GoodputPerGPU {
					f.Crossover = scale
				}
			}
			r.Frontiers = append(r.Frontiers, f)
		}
	}
}

// cell looks up one cell by identity.
func (r *Report) cell(cond, router, comp string, scale float64) (*Cell, bool) {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Condition == cond && c.Router == router &&
			c.Composition == comp && c.Scale == scale {
			return c, true
		}
	}
	return nil, false
}

// frontier looks up one frontier by identity.
func (r *Report) frontier(cond, router string) (*Frontier, bool) {
	for i := range r.Frontiers {
		f := &r.Frontiers[i]
		if f.Condition == cond && f.Router == router {
			return f, true
		}
	}
	return nil, false
}

// Filter returns a copy of the report restricted to one condition (the
// per-condition golden granularity).
func (r *Report) Filter(condition string) *Report {
	out := &Report{Schema: r.Schema, Name: r.Name, Grid: r.Grid}
	out.Grid.Conditions = []string{condition}
	for _, c := range r.Cells {
		if c.Condition == condition {
			out.Cells = append(out.Cells, c)
		}
	}
	for _, f := range r.Frontiers {
		if f.Condition == condition {
			out.Frontiers = append(out.Frontiers, f)
		}
	}
	return out
}

// WriteJSON emits the canonical indented JSON encoding.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the canonical encoding to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a report written by WriteFile (a committed golden).
func ReadFile(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("frontier: %s: %w", path, err)
	}
	return &r, nil
}

// Tolerance bounds how far a report may drift from a golden before the
// comparison fails. Runs are deterministic, so the bands exist to absorb
// floating-point divergence across platforms and Go releases — not to
// hide regressions: identity fields (grid, leaders, crossover, stability)
// always compare exactly.
type Tolerance struct {
	// Rel bounds the relative error of rate/goodput floats (default 2%).
	Rel float64
	// CountRel bounds the relative error of sample counts such as
	// WithinSLO (default 3%, with an absolute slack of 2 requests).
	CountRel float64
	// AttainmentAbs bounds absolute drift of attainment and cache-hit
	// fractions (default 0.02).
	AttainmentAbs float64
}

// DefaultTolerance is the band the golden tests compare under.
func DefaultTolerance() Tolerance {
	return Tolerance{Rel: 0.02, CountRel: 0.03, AttainmentAbs: 0.02}
}

// withDefaults resolves zero-valued bands.
func (t Tolerance) withDefaults() Tolerance {
	d := DefaultTolerance()
	if t.Rel <= 0 {
		t.Rel = d.Rel
	}
	if t.CountRel <= 0 {
		t.CountRel = d.CountRel
	}
	if t.AttainmentAbs <= 0 {
		t.AttainmentAbs = d.AttainmentAbs
	}
	return t
}

// relOK reports whether got is within rel of want.
func relOK(got, want, rel float64) bool {
	diff := math.Abs(got - want)
	if diff == 0 {
		return true
	}
	scale := math.Max(math.Abs(got), math.Abs(want))
	return diff <= rel*scale
}

// countOK reports whether an integer count is within the band.
func countOK(got, want int, rel float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff <= 2 {
		return true
	}
	lim := int(math.Ceil(rel * math.Max(float64(got), float64(want))))
	return diff <= lim
}

// Compare diffs a report against a golden under the tolerance bands and
// returns human-readable mismatches (empty means the reports agree).
func Compare(got, want *Report, tol Tolerance) []string {
	tol = tol.withDefaults()
	var diffs []string
	addf := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if got.Schema != want.Schema {
		addf("schema: got %q, golden %q", got.Schema, want.Schema)
		return diffs
	}
	if got.Name != want.Name {
		addf("name: got %q, golden %q", got.Name, want.Name)
	}
	if gg, wg := fmt.Sprintf("%+v", got.Grid), fmt.Sprintf("%+v", want.Grid); gg != wg {
		addf("grid: got %s, golden %s", gg, wg)
		return diffs
	}

	wantCells := map[string]Cell{}
	for _, c := range want.Cells {
		wantCells[c.key()] = c
	}
	seen := map[string]bool{}
	for _, g := range got.Cells {
		k := g.key()
		seen[k] = true
		w, ok := wantCells[k]
		if !ok {
			addf("cell %s: not in golden", k)
			continue
		}
		if g.GPUs != w.GPUs {
			addf("cell %s: gpus got %d, golden %d", k, g.GPUs, w.GPUs)
		}
		if g.Offered != w.Offered {
			addf("cell %s: offered got %d, golden %d", k, g.Offered, w.Offered)
		}
		if !countOK(g.WithinSLO, w.WithinSLO, tol.CountRel) {
			addf("cell %s: within_slo got %d, golden %d (count tolerance %.0f%%)",
				k, g.WithinSLO, w.WithinSLO, tol.CountRel*100)
		}
		for _, f := range []struct {
			name      string
			got, want float64
		}{
			{"offered_rate", g.OfferedRate, w.OfferedRate},
			{"goodput", g.Goodput, w.Goodput},
			{"goodput_per_gpu", g.GoodputPerGPU, w.GoodputPerGPU},
			{"gpu_seconds", g.GPUSeconds, w.GPUSeconds},
		} {
			if !relOK(f.got, f.want, tol.Rel) {
				addf("cell %s: %s got %.6f, golden %.6f (tolerance %.0f%%)",
					k, f.name, f.got, f.want, tol.Rel*100)
			}
		}
		for _, f := range []struct {
			name      string
			got, want float64
		}{
			{"attainment", g.Attainment, w.Attainment},
			{"cache_hit", g.CacheHit, w.CacheHit},
		} {
			if math.Abs(f.got-f.want) > tol.AttainmentAbs {
				addf("cell %s: %s got %.4f, golden %.4f (tolerance ±%.2f)",
					k, f.name, f.got, f.want, tol.AttainmentAbs)
			}
		}
		if g.Unstable != w.Unstable {
			addf("cell %s: unstable got %v, golden %v", k, g.Unstable, w.Unstable)
		}
		if g.Failures != w.Failures {
			addf("cell %s: failures got %d, golden %d", k, g.Failures, w.Failures)
		}
		for _, f := range []struct {
			name      string
			got, want int
		}{
			{"miss_causes.misses", g.MissCauses.Misses, w.MissCauses.Misses},
			{"miss_causes.queued_too_long", g.MissCauses.QueuedTooLong, w.MissCauses.QueuedTooLong},
			{"miss_causes.slow_prefill", g.MissCauses.SlowPrefill, w.MissCauses.SlowPrefill},
			{"miss_causes.tbt_violation", g.MissCauses.TBTViolation, w.MissCauses.TBTViolation},
			{"miss_causes.migration_stall", g.MissCauses.MigrationStall, w.MissCauses.MigrationStall},
			{"miss_causes.crash", g.MissCauses.Crash, w.MissCauses.Crash},
			{"miss_causes.unfinished", g.MissCauses.Unfinished, w.MissCauses.Unfinished},
			{"miss_causes.other", g.MissCauses.Other, w.MissCauses.Other},
		} {
			if !countOK(f.got, f.want, tol.CountRel) {
				addf("cell %s: %s got %d, golden %d (count tolerance %.0f%%)",
					k, f.name, f.got, f.want, tol.CountRel*100)
			}
		}
	}
	missing := make([]string, 0, len(wantCells))
	for k := range wantCells {
		if !seen[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	for _, k := range missing {
		addf("cell %s: in golden but not produced", k)
	}

	for _, wf := range want.Frontiers {
		gf, ok := got.frontier(wf.Condition, wf.Router)
		if !ok {
			addf("frontier %s/%s: not produced", wf.Condition, wf.Router)
			continue
		}
		if gf.Crossover != wf.Crossover {
			addf("frontier %s/%s: crossover scale got %g, golden %g",
				wf.Condition, wf.Router, gf.Crossover, wf.Crossover)
		}
		if len(gf.Leaders) != len(wf.Leaders) {
			addf("frontier %s/%s: %d leaders, golden %d",
				wf.Condition, wf.Router, len(gf.Leaders), len(wf.Leaders))
			continue
		}
		for i, wl := range wf.Leaders {
			gl := gf.Leaders[i]
			if gl.Scale != wl.Scale || gl.Composition != wl.Composition {
				addf("frontier %s/%s@%g: leader got %s, golden %s",
					wf.Condition, wf.Router, wl.Scale, gl.Composition, wl.Composition)
			}
			if !relOK(gl.GoodputPerGPU, wl.GoodputPerGPU, tol.Rel) {
				addf("frontier %s/%s@%g: leader goodput/GPU got %.6f, golden %.6f",
					wf.Condition, wf.Router, wl.Scale, gl.GoodputPerGPU, wl.GoodputPerGPU)
			}
		}
	}
	for _, gf := range got.Frontiers {
		if _, ok := want.frontier(gf.Condition, gf.Router); !ok {
			addf("frontier %s/%s: not in golden", gf.Condition, gf.Router)
		}
	}
	return diffs
}
