package frontier

import (
	"fmt"
	"os"

	"muxwise/internal/experiments"
)

// Tables renders the report as muxbench-style ASCII tables: one
// goodput-per-GPU grid (scales × compositions) per condition and router,
// with the crossover scale in the notes.
func Tables(r *Report) []experiments.Table {
	var out []experiments.Table
	for _, cond := range r.Grid.Conditions {
		for _, router := range r.Grid.Routers {
			t := experiments.Table{
				ID:      "frontier",
				Title:   fmt.Sprintf("goodput-per-GPU (req/s/GPU), %s, router=%s", cond, router),
				Columns: []string{"burst-scale"},
			}
			for _, comp := range r.Grid.Compositions {
				t.Columns = append(t.Columns, comp)
			}
			t.Columns = append(t.Columns, "leader")
			for _, scale := range r.Grid.Scales {
				row := []string{fmt.Sprintf("%g", scale)}
				for _, comp := range r.Grid.Compositions {
					c, ok := r.cell(cond, router, comp, scale)
					if !ok {
						row = append(row, "n/a")
						continue
					}
					mark := ""
					if c.Unstable {
						mark = "*"
					}
					row = append(row, fmt.Sprintf("%.4f%s", c.GoodputPerGPU, mark))
				}
				leader := "n/a"
				if f, ok := r.frontier(cond, router); ok {
					for _, l := range f.Leaders {
						if l.Scale == scale {
							leader = l.Composition
						}
					}
				}
				row = append(row, leader)
				t.Add(row...)
			}
			if f, ok := r.frontier(cond, router); ok {
				if f.Crossover > 0 {
					t.Notes = append(t.Notes, fmt.Sprintf(
						"crossover at burst scale %g: %s overtaken on goodput/GPU", f.Crossover, r.Grid.Baseline))
				} else {
					t.Notes = append(t.Notes, fmt.Sprintf("no crossover: %s leads at every swept scale", r.Grid.Baseline))
				}
			}
			t.Notes = append(t.Notes, "* fleet unstable at that scale (backlog after arrivals stop)")
			out = append(out, t)
		}
	}
	return out
}

// BenchExperiment adapts the reference matrix to the muxbench registry.
// A non-empty reportPath additionally writes the canonical FrontierReport
// JSON there (the CI trajectory artifact). A sweep or report-write
// failure exits non-zero: muxbench's Run seam has no error channel, and
// a green CI step with no report would silently break the goodput
// trajectory this experiment exists to record.
func BenchExperiment(reportPath string) experiments.Experiment {
	return experiments.Experiment{
		ID:    "frontier",
		Paper: "Fig. 13 goodput-per-GPU frontier (aggregated vs disaggregated vs mixed, beyond the paper)",
		Run: func(o experiments.Opts) []experiments.Table {
			rep, err := Run(Default(o.Quick))
			if err != nil {
				fmt.Fprintf(os.Stderr, "frontier: %v\n", err)
				os.Exit(1)
			}
			if reportPath != "" {
				if err := rep.WriteFile(reportPath); err != nil {
					fmt.Fprintf(os.Stderr, "frontier: write report: %v\n", err)
					os.Exit(1)
				}
			}
			return Tables(rep)
		},
	}
}

// RooflineBenchExperiment sweeps the Roofline matrix: Llama-70B on B200,
// a hardware point that has no fitted profile and is reachable only
// through the analytical cost model (docs/roofline.md). Same exit
// discipline as BenchExperiment.
func RooflineBenchExperiment() experiments.Experiment {
	return experiments.Experiment{
		ID:    "roofline",
		Paper: "beyond the paper: analytical roofline frontier — Llama-70B on B200 with no fitted profile",
		Run: func(o experiments.Opts) []experiments.Table {
			rep, err := Run(Roofline(o.Quick))
			if err != nil {
				fmt.Fprintf(os.Stderr, "roofline: %v\n", err)
				os.Exit(1)
			}
			return Tables(rep)
		},
	}
}
