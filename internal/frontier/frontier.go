// Package frontier sweeps the goodput-per-GPU frontier of Fig. 13: the
// paper's headline claim that aggregated serving wins at low burst
// scales while disaggregated and mixed P/D fleets overtake it as bursts
// grow. It is a scenario-matrix engine — fleet composition × burst
// scale × operating condition × router policy — where every cell replays
// the same Fig. 13 bursty Conversation + Tool&Agent mix through one
// muxwise.Experiment and reports DistServe-style SLO goodput normalised
// by the GPU-seconds the fleet actually provisioned.
//
// The output is a canonical, deterministic Report (sorted cells,
// fixed-precision floats, crossover-point extraction) built for golden
// regression testing: committed testdata goldens pin every cell's
// goodput, the per-(condition, router) frontier leaders, and the
// crossover burst scale, so a change that silently shifts the
// reproduction's physics fails `go test ./internal/frontier`.
package frontier

import (
	"fmt"
	"sort"

	"muxwise"
	"muxwise/internal/cluster"
	"muxwise/internal/experiments"
	"muxwise/internal/par"
	"muxwise/internal/sim"
)

// Composition is one fleet shape under comparison. GPU totals are
// derived from the replica specs at run time (including autoscaled
// spawns), so compositions of different sizes compare fairly on the
// per-GPU axis.
type Composition struct {
	// Name keys the composition in cells and goldens ("aggregated",
	// "disaggregated", "mixed", ...).
	Name string
	// Replicas is the initial fleet.
	Replicas []muxwise.ReplicaSpec
}

// Condition names for Matrix.Conditions.
const (
	// Steady runs the fleet unchanged end to end.
	Steady = "steady"
	// Failure crashes replica 0 mid-run (at FailFrac of the arrival
	// span): in-flight work re-dispatches and its KV is re-prefilled
	// wherever sessions re-stick.
	Failure = "failure"
	// Autoscale attaches the backlog autoscaler with a cold-start delay,
	// letting the fleet grow by MaxSpawn replicas under burst pressure.
	Autoscale = "autoscale"
	// Drain rolls replica 0 out gracefully mid-run (a replacement
	// spawns first, so capacity holds): its sessions re-route and repay
	// a full KV re-prefill on their next turn — the re-prefill
	// baseline.
	Drain = "drain"
	// DrainMigrate is the same rolling drain with KV migration enabled:
	// the leaving replica streams its sessions' KV to the re-routed
	// target at the modeled interconnect cost. Contrast with Drain to
	// read the transfer-vs-recompute tradeoff off the frontier.
	DrainMigrate = "drain-migrate"
)

// Matrix describes one frontier sweep. The zero value is not runnable;
// start from Default.
type Matrix struct {
	// Name labels the sweep in the report.
	Name string
	// Deployment is the per-replica hardware/model/SLO base.
	Deployment muxwise.Deployment
	// Compositions are the fleet shapes under comparison. Baseline names
	// the aggregated reference the crossover is extracted against.
	Compositions []Composition
	Baseline     string
	// Routers, Conditions and Scales are the remaining sweep axes.
	Routers    []string
	Conditions []string
	Scales     []float64
	// Sessions sizes the Fig. 13 mixed trace (per workload).
	Sessions int
	// Seed drives trace generation.
	Seed uint64
	// FailFrac places the Failure condition's crash as a fraction of the
	// arrival span (default 0.4).
	FailFrac float64
	// DrainFrac places the Drain/DrainMigrate conditions' rolling drain
	// as a fraction of the arrival span (default 0.4); the replacement
	// spawns ColdStart earlier so it is ready at the drain instant.
	DrainFrac float64
	// ColdStart is the Autoscale condition's spawn-to-ready delay
	// (default 15 s).
	ColdStart muxwise.Time
	// MaxSpawn bounds how many replicas the autoscaler may add on top of
	// the initial fleet (default 2).
	MaxSpawn int
	// CostModel selects the step-time estimator for every cell: "" or
	// "fitted" for the paper's profiled planes, "roofline" for the
	// analytical datasheet model (required for shapes with no profile,
	// e.g. B200 or Llama-70B compositions).
	CostModel string
}

// Default returns the reference Fig. 13 frontier matrix: an aggregated
// 2-GPU MuxWise fleet against 4-GPU disaggregated and mixed P/D fleets,
// across burst scales, conditions and routers. quick shrinks the trace
// and the scale grid to the CI-sized sweep the committed goldens pin.
func Default(quick bool) Matrix {
	o := experiments.Opts{Quick: quick}
	scales := []float64{0.5, 1, 2, 4, 8}
	if quick {
		scales = []float64{0.5, 2, 4}
	}
	return Matrix{
		Name: "fig13-frontier",
		Deployment: muxwise.Deployment{
			Hardware: "A100", GPUs: 1, Model: "Llama-8B",
			SLO: muxwise.SLO{TTFT: muxwise.Second, TBT: 50 * muxwise.Millisecond},
		},
		Compositions: []Composition{
			{Name: "aggregated", Replicas: []muxwise.ReplicaSpec{
				{Engine: "MuxWise", Count: 2},
			}},
			{Name: "disaggregated", Replicas: []muxwise.ReplicaSpec{
				{Engine: "SGLang-PD", Count: 2, Role: "prefill"},
				{Engine: "SGLang-PD", Count: 2, Role: "decode"},
			}},
			{Name: "mixed", Replicas: []muxwise.ReplicaSpec{
				{Engine: "MuxWise", Count: 2},
				{Engine: "SGLang-PD", Count: 1, Role: "prefill"},
				{Engine: "SGLang-PD", Count: 1, Role: "decode"},
			}},
		},
		Baseline:   "aggregated",
		Routers:    []string{"least-tokens", "pd-split", "adaptive-ttft"},
		Conditions: []string{Steady, Failure, Autoscale, Drain, DrainMigrate},
		Scales:     scales,
		Sessions:   o.Size(150, 60),
		Seed:       11,
		FailFrac:   0.4,
		DrainFrac:  0.4,
		ColdStart:  15 * muxwise.Second,
		MaxSpawn:   2,
	}
}

// Roofline returns the frontier matrix the fitted estimator cannot
// sweep: Llama-70B on next-generation hardware, priced by the analytical
// roofline cost model (internal/roofline). An aggregated 2×B200 MuxWise
// fleet is compared against a disaggregated B200 P/D split and an
// H200-based aggregated fleet of the same replica count, answering the
// ROADMAP's H200/B200-composition and 70B-SLO questions on the same
// goodput-per-GPU axis as Default. quick shrinks the trace and scale grid
// to the CI-sized sweep the committed golden pins.
func Roofline(quick bool) Matrix {
	o := experiments.Opts{Quick: quick}
	scales := []float64{0.5, 1, 2, 4}
	if quick {
		scales = []float64{0.5, 2}
	}
	return Matrix{
		Name: "roofline-b200-70b",
		Deployment: muxwise.Deployment{
			Hardware: "B200", GPUs: 2, Model: "Llama-70B",
			SLO: muxwise.SLO{TTFT: 2 * muxwise.Second, TBT: 100 * muxwise.Millisecond},
		},
		Compositions: []Composition{
			{Name: "aggregated", Replicas: []muxwise.ReplicaSpec{
				{Engine: "MuxWise", Count: 2},
			}},
			{Name: "disaggregated", Replicas: []muxwise.ReplicaSpec{
				{Engine: "SGLang-PD", Count: 2, Role: "prefill"},
				{Engine: "SGLang-PD", Count: 2, Role: "decode"},
			}},
			{Name: "aggregated-h200", Replicas: []muxwise.ReplicaSpec{
				{Engine: "MuxWise", Count: 2, Hardware: "H200"},
			}},
		},
		Baseline:   "aggregated",
		Routers:    []string{"least-tokens"},
		Conditions: []string{Steady},
		Scales:     scales,
		Sessions:   o.Size(120, 40),
		Seed:       17,
		CostModel:  muxwise.CostRoofline,
	}
}

// withDefaults resolves zero-valued knobs and puts the scale grid in
// canonical ascending order — crossover extraction reads "smallest
// scale" off the grid's iteration order, so the order is semantics, not
// presentation.
func (m Matrix) withDefaults() Matrix {
	scales := append([]float64(nil), m.Scales...)
	sort.Float64s(scales)
	m.Scales = scales
	if m.Baseline == "" && len(m.Compositions) > 0 {
		m.Baseline = m.Compositions[0].Name
	}
	if m.FailFrac <= 0 {
		m.FailFrac = 0.4
	}
	if m.DrainFrac <= 0 {
		m.DrainFrac = 0.4
	}
	if m.ColdStart <= 0 {
		m.ColdStart = 15 * muxwise.Second
	}
	if m.MaxSpawn <= 0 {
		m.MaxSpawn = 2
	}
	return m
}

// validate rejects matrices that cannot be swept.
func (m Matrix) validate() error {
	if len(m.Compositions) == 0 || len(m.Routers) == 0 ||
		len(m.Conditions) == 0 || len(m.Scales) == 0 {
		return fmt.Errorf("frontier: matrix needs at least one composition, router, condition and scale")
	}
	if m.Sessions <= 0 {
		return fmt.Errorf("frontier: matrix needs a positive session count")
	}
	names := map[string]bool{}
	for _, c := range m.Compositions {
		if c.Name == "" || len(c.Replicas) == 0 {
			return fmt.Errorf("frontier: composition %q needs a name and replicas", c.Name)
		}
		if names[c.Name] {
			return fmt.Errorf("frontier: duplicate composition %q", c.Name)
		}
		names[c.Name] = true
	}
	if !names[m.Baseline] {
		return fmt.Errorf("frontier: baseline %q is not a configured composition", m.Baseline)
	}
	for _, cond := range m.Conditions {
		switch cond {
		case Steady, Failure, Autoscale, Drain, DrainMigrate:
		default:
			return fmt.Errorf("frontier: unknown condition %q (want %s, %s, %s, %s, %s)",
				cond, Steady, Failure, Autoscale, Drain, DrainMigrate)
		}
	}
	// validate runs after withDefaults, so the grid is already sorted
	// ascending and duplicates sit adjacent.
	for i, s := range m.Scales {
		if s <= 0 {
			return fmt.Errorf("frontier: burst scale %g must be positive", s)
		}
		if i > 0 && s == m.Scales[i-1] {
			return fmt.Errorf("frontier: duplicate burst scale %g", s)
		}
	}
	return nil
}

// initialCount returns how many replicas a composition starts with.
func initialCount(c Composition) int {
	n := 0
	for _, rs := range c.Replicas {
		cnt := rs.Count
		if cnt <= 0 {
			cnt = 1
		}
		n += cnt
	}
	return n
}

// cellKey orders a sweep's cells canonically.
type cellKey struct {
	cond, router, comp string
	scale              float64
}

// Run sweeps the whole matrix and assembles the canonical report. Every
// cell is an independent deterministic simulation, so cells fan out
// across CPUs without changing a single byte of the result.
func Run(m Matrix) (*Report, error) {
	m = m.withDefaults()
	if err := m.validate(); err != nil {
		return nil, err
	}

	var keys []cellKey
	for _, cond := range m.Conditions {
		for _, router := range m.Routers {
			for _, comp := range m.Compositions {
				for _, s := range m.Scales {
					keys = append(keys, cellKey{cond, router, comp.Name, s})
				}
			}
		}
	}
	comps := map[string]Composition{}
	for _, c := range m.Compositions {
		comps[c.Name] = c
	}

	type outcome struct {
		cell Cell
		err  error
	}
	results := par.RunIndexed(len(keys), func(i int) outcome {
		k := keys[i]
		cell, err := m.runCell(comps[k.comp], k.cond, k.router, k.scale)
		return outcome{cell: cell, err: err}
	})
	rep := &Report{
		Schema: Schema,
		Name:   m.Name,
		Grid: Grid{
			Compositions: compositionNames(m.Compositions),
			Baseline:     m.Baseline,
			Conditions:   append([]string(nil), m.Conditions...),
			Routers:      append([]string(nil), m.Routers...),
			Scales:       roundAll(m.Scales),
			Sessions:     m.Sessions,
			Seed:         m.Seed,
			CostModel:    m.CostModel,
		},
	}
	for _, o := range results {
		if o.err != nil {
			return nil, o.err
		}
		rep.Cells = append(rep.Cells, o.cell)
	}
	rep.canonicalize()
	rep.extractFrontiers(m.Baseline)
	return rep, nil
}

// compositionNames lists composition names in configuration order.
func compositionNames(comps []Composition) []string {
	out := make([]string, len(comps))
	for i, c := range comps {
		out[i] = c.Name
	}
	return out
}

// runCell replays one (composition, condition, router, scale) cell and
// reduces it to the report row.
func (m Matrix) runCell(comp Composition, cond, router string, scale float64) (Cell, error) {
	// Each cell regenerates its trace: traces carry mutable per-request
	// state (IDs, arrival bookkeeping), so concurrent cells must not
	// share one. Generation is seeded, so every cell at a scale replays
	// byte-identical arrivals over the identical offered window —
	// compositions and routers compare on the same span.
	trace := muxwise.MixedBursty(m.Seed, m.Sessions, scale)
	var span sim.Time
	for _, r := range trace.Requests {
		if r.Arrival > span {
			span = r.Arrival
		}
	}
	if span <= 0 {
		return Cell{}, fmt.Errorf("frontier: scale %g trace has no arrival span (sessions %d)", scale, m.Sessions)
	}
	opts := []muxwise.Option{
		muxwise.WithDeployment(m.Deployment),
		muxwise.WithFleet(comp.Replicas...),
		muxwise.WithRouter(router),
	}
	if m.CostModel != "" {
		opts = append(opts, muxwise.WithCostModel(m.CostModel))
	}
	switch cond {
	case Failure:
		failAt := muxwise.Time(float64(span) * m.FailFrac)
		opts = append(opts, muxwise.WithEvents(muxwise.FleetEvent{
			At: failAt, Kind: "fail", Replica: 0,
		}))
	case Autoscale:
		opts = append(opts,
			muxwise.WithAutoscaler("backlog"),
			muxwise.WithColdStart(m.ColdStart),
			muxwise.WithScaleBounds(1, initialCount(comp)+m.MaxSpawn),
		)
	case Drain, DrainMigrate:
		// A rolling drain of replica 0: the replacement (same shape)
		// spawns ColdStart plus a short lead ahead, so it is routable
		// when its predecessor leaves and capacity never dips — the two
		// conditions then differ only in how the drained replica's
		// session KV moves.
		drainAt := muxwise.Time(float64(span) * m.DrainFrac)
		spawnAt := drainAt - m.ColdStart - 2*muxwise.Second
		if spawnAt < 0 {
			spawnAt = 0
		}
		spec := comp.Replicas[0]
		spec.Count = 1
		opts = append(opts,
			muxwise.WithColdStart(m.ColdStart),
			muxwise.WithEvents(
				muxwise.FleetEvent{At: spawnAt, Kind: "spawn", Spec: &spec},
				muxwise.FleetEvent{At: drainAt, Kind: "drain", Replica: 0},
			),
		)
		if cond == DrainMigrate {
			opts = append(opts, muxwise.WithMigration())
		}
	}
	rep, err := muxwise.NewExperiment(opts...).Run(trace)
	if err != nil {
		return Cell{}, fmt.Errorf("frontier: %s/%s/%s@%g: %w", cond, router, comp.Name, scale, err)
	}
	fleet := rep.Fleet

	within := fleet.Rec.WithinSLO(rep.SLO)
	gpuSeconds := gpuSeconds(fleet.Replicas, span)
	spanSec := span.Seconds()
	goodput := float64(within) / spanSec
	perGPU := 0.0
	if gpuSeconds > 0 {
		perGPU = float64(within) / gpuSeconds
	}
	return Cell{
		Condition:     cond,
		Router:        router,
		Composition:   comp.Name,
		Scale:         round(scale),
		GPUs:          fleetGPUs(comp, m.Deployment),
		Offered:       trace.Len(),
		OfferedRate:   round(float64(trace.Len()) / spanSec),
		WithinSLO:     within,
		Goodput:       round(goodput),
		GoodputPerGPU: round(perGPU),
		Attainment:    round(rep.Attainment),
		CacheHit:      round(fleet.CacheHit),
		Unstable:      rep.Summary.Unstable,
		Failures:      fleet.Failures,
		GPUSeconds:    round(gpuSeconds),
		MissCauses:    rep.MissCauses,
	}, nil
}

// fleetGPUs totals the devices of a composition's initial fleet.
func fleetGPUs(c Composition, dep muxwise.Deployment) int {
	per := dep.GPUs
	if per <= 0 {
		per = 8
	}
	total := 0
	for _, rs := range c.Replicas {
		cnt := rs.Count
		if cnt <= 0 {
			cnt = 1
		}
		g := rs.GPUs
		if g <= 0 {
			g = per
		}
		total += cnt * g
	}
	return total
}

// gpuSeconds integrates provisioned devices over the offered window
// [0, span]: every replica charges its GPUs for the overlap of its
// serving interval with the window, so an autoscaled spawn charges from
// readiness and a failed replica stops charging at its crash. For a
// static fleet this reduces to totalGPUs × span.
func gpuSeconds(replicas []muxwise.ClusterReplicaResult, span sim.Time) float64 {
	var total float64
	for _, rep := range replicas {
		if rep.State == cluster.StateStarting {
			continue // spawned but never ready: served nothing
		}
		from := rep.ReadyAt
		to := span
		if rep.DownAt > 0 && rep.DownAt < to {
			to = rep.DownAt
		}
		if from >= to {
			continue
		}
		total += float64(rep.GPUs) * (to - from).Seconds()
	}
	return total
}
