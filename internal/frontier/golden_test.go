package frontier

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// -update rewrites the committed goldens from the current run:
//
//	go test ./internal/frontier -update
//
// Inspect the diff before committing — the goldens pin the
// reproduction's physics, so an unexplained shift is a regression, not
// noise.
var update = flag.Bool("update", false, "rewrite testdata/frontier goldens from this run")

// -frontier-report writes the run's full canonical report to a file —
// CI uploads it as the per-commit trajectory artifact without paying
// for a second sweep outside the test binary.
var reportOut = flag.String("frontier-report", "", "also write the canonical FrontierReport JSON here")

// The quick matrix runs once and is shared by every test in the package.
var (
	quickOnce sync.Once
	quickRep  *Report
	quickErr  error
)

func quickReport(t *testing.T) *Report {
	t.Helper()
	quickOnce.Do(func() {
		quickRep, quickErr = Run(Default(true))
	})
	if quickErr != nil {
		t.Fatalf("frontier quick matrix: %v", quickErr)
	}
	return quickRep
}

func goldenPath(condition string) string {
	return filepath.Join("testdata", "frontier", condition+".golden.json")
}

// The roofline matrix (Llama-70B on B200 — no fitted profile exists for
// either half of that pair) also runs once and is shared.
var (
	rooflineOnce sync.Once
	rooflineRep  *Report
	rooflineErr  error
)

func rooflineReport(t *testing.T) *Report {
	t.Helper()
	rooflineOnce.Do(func() {
		rooflineRep, rooflineErr = Run(Roofline(true))
	})
	if rooflineErr != nil {
		t.Fatalf("roofline quick matrix: %v", rooflineErr)
	}
	return rooflineRep
}

// TestRooflineGolden pins the analytical-cost-model frontier: every cell
// of the B200/Llama-70B sweep, a point in hardware×model space that is
// reachable only through -cost-model roofline. The golden guards both
// the roofline physics and the cost-model plumbing end to end
// (experiment options → serve.Config → every replica in the fleet).
func TestRooflineGolden(t *testing.T) {
	rep := rooflineReport(t)
	if rep.Grid.CostModel != "roofline" {
		t.Fatalf("grid cost model %q, want roofline", rep.Grid.CostModel)
	}
	if len(rep.Cells) == 0 {
		t.Fatal("roofline sweep produced no cells")
	}
	for _, c := range rep.Cells {
		if c.Offered == 0 {
			t.Errorf("%s: no requests offered", c.key())
		}
	}
	path := goldenPath("roofline")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cells)", path, len(rep.Cells))
		return
	}
	want, err := ReadFile(path)
	if err != nil {
		t.Fatalf("load golden (run with -update to regenerate): %v", err)
	}
	diffs := Compare(rep, want, DefaultTolerance())
	for _, d := range diffs {
		t.Errorf("%s", d)
	}
	if len(diffs) > 0 {
		t.Logf("%d mismatches against %s — if the shift is intentional, regenerate with -update", len(diffs), path)
	}
}

// TestGolden pins every cell, frontier leader and crossover point of the
// quick matrix against the committed per-condition goldens, within the
// default tolerance bands.
func TestGolden(t *testing.T) {
	rep := quickReport(t)
	if *reportOut != "" {
		if err := rep.WriteFile(*reportOut); err != nil {
			t.Fatalf("write -frontier-report: %v", err)
		}
	}
	for _, cond := range rep.Grid.Conditions {
		t.Run(cond, func(t *testing.T) {
			got := rep.Filter(cond)
			path := goldenPath(cond)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := got.WriteFile(path); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d cells)", path, len(got.Cells))
				return
			}
			want, err := ReadFile(path)
			if err != nil {
				t.Fatalf("load golden (run with -update to regenerate): %v", err)
			}
			diffs := Compare(got, want, DefaultTolerance())
			for _, d := range diffs {
				t.Errorf("%s", d)
			}
			if len(diffs) > 0 {
				t.Logf("%d mismatches against %s — if the shift is intentional, regenerate with -update", len(diffs), path)
			}
		})
	}
}

// TestGoldenRoundTrip checks the canonical encoding is stable: a report
// written and re-read compares clean against itself with zero tolerance
// slack in play.
func TestGoldenRoundTrip(t *testing.T) {
	rep := quickReport(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "roundtrip.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Compare(rep, back, Tolerance{Rel: 1e-12, CountRel: 1e-12, AttainmentAbs: 1e-12}); len(diffs) > 0 {
		t.Fatalf("round-trip drifted: %v", diffs)
	}
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("canonical JSON is not byte-stable across a write/read/write cycle")
	}
}

// TestPaperShape asserts the acceptance shape on the steady-state
// frontier, for every router: the aggregated baseline leads at the
// lowest burst scale, a disaggregated or mixed fleet leads at the
// highest, and the extracted crossover sits strictly inside the grid.
func TestPaperShape(t *testing.T) {
	rep := quickReport(t)
	scales := rep.Grid.Scales
	lo, hi := scales[0], scales[len(scales)-1]
	base := rep.Grid.Baseline
	for _, router := range rep.Grid.Routers {
		t.Run(router, func(t *testing.T) {
			f, ok := rep.frontier(Steady, router)
			if !ok {
				t.Fatalf("no steady frontier for router %s", router)
			}
			leaders := map[float64]string{}
			for _, l := range f.Leaders {
				leaders[l.Scale] = l.Composition
			}
			if got := leaders[lo]; got != base {
				t.Errorf("at burst scale %g the leader is %s, want the %s baseline", lo, got, base)
			}
			if got := leaders[hi]; got == base || got == "" {
				t.Errorf("at burst scale %g the leader is %q, want a disaggregated/mixed fleet to overtake %s", hi, got, base)
			}
			if f.Crossover <= lo || f.Crossover > hi {
				t.Errorf("crossover scale %g outside the swept grid (%g, %g]", f.Crossover, lo, hi)
			}
		})
	}
}

// TestMigrationFrontier pins the drain-vs-drain-migrate contrast the
// migration condition exists to expose: across the whole grid, and on
// the aggregated composition in particular (where a whole session's KV
// lives on one replica, so a drain strands the most), streaming KV at
// the modeled interconnect cost delivers strictly more within-SLO
// requests than repaying re-prefills. Individual cells may go either
// way — at saturation, routing perturbation is the same order as the
// re-prefill cost — which is exactly why the assertion is on the sums.
func TestMigrationFrontier(t *testing.T) {
	rep := quickReport(t)
	sum := func(cond, comp string) int {
		total := 0
		for _, c := range rep.Cells {
			if c.Condition == cond && (comp == "" || c.Composition == comp) {
				total += c.WithinSLO
			}
		}
		return total
	}
	for _, comp := range []string{"", "aggregated"} {
		label := comp
		if label == "" {
			label = "all compositions"
		}
		base, mig := sum(Drain, comp), sum(DrainMigrate, comp)
		t.Logf("%s: within-SLO drain %d vs drain-migrate %d", label, base, mig)
		if mig <= base {
			t.Errorf("%s: migration within-SLO total %d not strictly above the re-prefill drain total %d",
				label, mig, base)
		}
	}
	// The two drain conditions replay identical traces and fleets, so
	// the offered counts must agree cell for cell.
	for _, c := range rep.Cells {
		if c.Condition != Drain {
			continue
		}
		m, ok := rep.cell(DrainMigrate, c.Router, c.Composition, c.Scale)
		if !ok {
			t.Fatalf("no drain-migrate twin for %s", c.key())
		}
		if m.Offered != c.Offered || m.GPUs != c.GPUs {
			t.Errorf("%s: drain and drain-migrate disagree on offered/gpus (%d/%d vs %d/%d)",
				c.key(), c.Offered, c.GPUs, m.Offered, m.GPUs)
		}
	}
}

// TestMatrixValidate exercises the sweep-time configuration errors.
func TestMatrixValidate(t *testing.T) {
	base := Default(true)
	cases := []struct {
		name string
		mut  func(*Matrix)
	}{
		{"no compositions", func(m *Matrix) { m.Compositions = nil }},
		{"no routers", func(m *Matrix) { m.Routers = nil }},
		{"no conditions", func(m *Matrix) { m.Conditions = nil }},
		{"no scales", func(m *Matrix) { m.Scales = nil }},
		{"zero sessions", func(m *Matrix) { m.Sessions = 0 }},
		{"negative scale", func(m *Matrix) { m.Scales = []float64{-1} }},
		{"duplicate scale", func(m *Matrix) { m.Scales = []float64{2, 0.5, 2} }},
		{"unknown condition", func(m *Matrix) { m.Conditions = []string{"chaos"} }},
		{"duplicate composition", func(m *Matrix) {
			m.Compositions = append(m.Compositions, m.Compositions[0])
		}},
		{"baseline not configured", func(m *Matrix) { m.Baseline = "nope" }},
		{"unnamed composition", func(m *Matrix) { m.Compositions[0].Name = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base
			m.Compositions = append([]Composition(nil), base.Compositions...)
			tc.mut(&m)
			if _, err := Run(m); err == nil {
				t.Fatalf("Run accepted an invalid matrix (%s)", tc.name)
			}
		})
	}
}

// TestCompareTolerance exercises the comparator's bands on synthetic
// reports, so golden failures are trustworthy in both directions.
func TestCompareTolerance(t *testing.T) {
	mk := func() *Report {
		return &Report{
			Schema: Schema,
			Name:   "t",
			Grid: Grid{
				Compositions: []string{"a", "b"},
				Baseline:     "a",
				Conditions:   []string{Steady},
				Routers:      []string{"least-tokens"},
				Scales:       []float64{1, 2},
				Sessions:     10,
				Seed:         1,
			},
			Cells: []Cell{
				{Condition: Steady, Router: "least-tokens", Composition: "a", Scale: 1,
					GPUs: 2, GPUSeconds: 200, Offered: 100, OfferedRate: 1, WithinSLO: 90,
					Goodput: 0.9, GoodputPerGPU: 0.45, Attainment: 0.99, CacheHit: 0.5},
				{Condition: Steady, Router: "least-tokens", Composition: "b", Scale: 2,
					GPUs: 4, GPUSeconds: 100, Offered: 100, OfferedRate: 4, WithinSLO: 80,
					Goodput: 3.2, GoodputPerGPU: 0.8, Attainment: 0.97, CacheHit: 0.4},
			},
			Frontiers: []Frontier{{
				Condition: Steady, Router: "least-tokens",
				Leaders: []Leader{
					{Scale: 1, Composition: "a", GoodputPerGPU: 0.45},
					{Scale: 2, Composition: "b", GoodputPerGPU: 0.8},
				},
				Crossover: 2,
			}},
		}
	}
	if diffs := Compare(mk(), mk(), DefaultTolerance()); len(diffs) > 0 {
		t.Fatalf("identical reports diff: %v", diffs)
	}

	within := mk()
	within.Cells[0].Goodput *= 1.01     // inside the 2% band
	within.Cells[0].WithinSLO += 2      // inside the count slack
	within.Cells[1].Attainment -= 0.015 // inside the attainment band
	if diffs := Compare(within, mk(), DefaultTolerance()); len(diffs) > 0 {
		t.Fatalf("within-tolerance drift flagged: %v", diffs)
	}

	for name, mut := range map[string]func(*Report){
		"goodput shift":      func(r *Report) { r.Cells[0].Goodput *= 1.10 },
		"goodput/gpu shift":  func(r *Report) { r.Cells[1].GoodputPerGPU *= 0.5 },
		"count shift":        func(r *Report) { r.Cells[0].WithinSLO -= 20 },
		"attainment shift":   func(r *Report) { r.Cells[1].Attainment -= 0.1 },
		"stability flip":     func(r *Report) { r.Cells[0].Unstable = true },
		"crossover shift":    func(r *Report) { r.Frontiers[0].Crossover = 1 },
		"leader change":      func(r *Report) { r.Frontiers[0].Leaders[1].Composition = "a" },
		"missing cell":       func(r *Report) { r.Cells = r.Cells[:1] },
		"offered change":     func(r *Report) { r.Cells[0].Offered = 99 },
		"gpu budget change":  func(r *Report) { r.Cells[0].GPUs = 3 },
		"failure count":      func(r *Report) { r.Cells[0].Failures = 1 },
		"schema bump":        func(r *Report) { r.Schema = "muxwise/frontier/v0" },
		"grid scale change":  func(r *Report) { r.Grid.Scales = []float64{1, 3} },
		"extra cell":         func(r *Report) { c := r.Cells[0]; c.Scale = 7; r.Cells = append(r.Cells, c) },
		"frontier dropped":   func(r *Report) { r.Frontiers = nil },
		"cache regression":   func(r *Report) { r.Cells[0].CacheHit = 0.1 },
		"gpu-seconds change": func(r *Report) { r.Cells[0].GPUSeconds *= 2 },
		"miss-cause shift": func(r *Report) {
			r.Cells[0].MissCauses.Misses += 10
			r.Cells[0].MissCauses.QueuedTooLong += 10
		},
	} {
		got := mk()
		mut(got)
		if diffs := Compare(got, mk(), DefaultTolerance()); len(diffs) == 0 {
			t.Errorf("%s: comparator saw no difference", name)
		}
	}
}

// TestMissAttribution: in every cell the diagnostics account for the
// goodput gap exactly — Misses equals Offered − WithinSLO — and at
// least 95% of those misses land on a concrete cause (the Other bucket
// is the attribution residue).
func TestMissAttribution(t *testing.T) {
	rep := quickReport(t)
	for _, c := range rep.Cells {
		mc := c.MissCauses
		if want := c.Offered - c.WithinSLO; mc.Misses != want {
			t.Errorf("%s: miss_causes.misses %d, want offered−within_slo = %d",
				c.key(), mc.Misses, want)
		}
		if mc.Misses == 0 {
			continue
		}
		if rate := mc.AttributionRate(); rate < 0.95 {
			t.Errorf("%s: only %.1f%% of %d misses attributed (%s)",
				c.key(), rate*100, mc.Misses, mc.String())
		}
	}
}

// TestScalesCanonicalOrder: the grid is swept sorted ascending no
// matter how the matrix lists it — "smallest crossover scale" reads off
// grid order, so ordering is semantics.
func TestScalesCanonicalOrder(t *testing.T) {
	m := Default(true)
	m.Scales = []float64{4, 0.5, 2}
	got := m.withDefaults().Scales
	want := []float64{0.5, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("scales %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scales %v, want %v", got, want)
		}
	}
}

// TestCrossoverZeroTie: a scale where neither the baseline nor any
// challenger delivered a single within-SLO request is not a crossover —
// the challenger must actually produce goodput to overtake.
func TestCrossoverZeroTie(t *testing.T) {
	mkCell := func(comp string, scale, perGPU float64) Cell {
		return Cell{Condition: Steady, Router: "least-tokens", Composition: comp,
			Scale: scale, GoodputPerGPU: perGPU}
	}
	rep := &Report{
		Grid: Grid{
			Compositions: []string{"agg", "dis"},
			Baseline:     "agg",
			Conditions:   []string{Steady},
			Routers:      []string{"least-tokens"},
			Scales:       []float64{1, 2},
		},
		Cells: []Cell{
			mkCell("agg", 1, 0), mkCell("dis", 1, 0), // dead tie: no crossover
			mkCell("agg", 2, 0.1), mkCell("dis", 2, 0.4),
		},
	}
	rep.extractFrontiers("agg")
	f, ok := rep.frontier(Steady, "least-tokens")
	if !ok {
		t.Fatal("no frontier extracted")
	}
	if f.Crossover != 2 {
		t.Fatalf("crossover %g, want 2 (the 0-vs-0 tie at scale 1 must not count)", f.Crossover)
	}
}

// TestFilter checks the per-condition golden granularity keeps only its
// condition's cells and frontiers.
func TestFilter(t *testing.T) {
	rep := quickReport(t)
	for _, cond := range rep.Grid.Conditions {
		f := rep.Filter(cond)
		if len(f.Grid.Conditions) != 1 || f.Grid.Conditions[0] != cond {
			t.Fatalf("Filter(%q) grid conditions = %v", cond, f.Grid.Conditions)
		}
		if len(f.Cells) == 0 {
			t.Fatalf("Filter(%q) dropped every cell", cond)
		}
		for _, c := range f.Cells {
			if c.Condition != cond {
				t.Fatalf("Filter(%q) kept cell %s", cond, c.key())
			}
		}
		for _, fr := range f.Frontiers {
			if fr.Condition != cond {
				t.Fatalf("Filter(%q) kept frontier %s/%s", cond, fr.Condition, fr.Router)
			}
		}
	}
}
