package serve

import (
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// PoolReporter is implemented by engines that expose their KV cache
// pools, letting the runner and the cluster rollups report cache-hit
// rates without knowing engine internals.
type PoolReporter interface {
	CachePools() []*kvcache.Pool
}

// Instance is one engine embedded in a simulation it does not own. It
// bundles the engine with its private recorder and environment, so
// several instances (a replica fleet) can share a single deterministic
// event loop. Run is a thin wrapper over a single Instance.
type Instance struct {
	Label string
	Env   *Env
	Eng   Engine
	Rec   *metrics.Recorder

	halted bool
}

// NewInstance builds an engine inside the shared simulator s. The config
// is resolved with the same defaults Run applies.
func NewInstance(s *sim.Sim, f Factory, cfg Config, label string) *Instance {
	cfg = cfg.WithDefaults()
	rec := metrics.NewRecorder()
	env := &Env{
		Sim:         s,
		Spec:        cfg.Spec,
		GPUs:        cfg.GPUs,
		Arch:        cfg.Arch,
		SLO:         cfg.SLO,
		Rec:         rec,
		ReserveFrac: cfg.ReserveFrac,
		MaxBatch:    cfg.MaxBatch,
		CostModel:   cfg.CostModel,
		Trace:       cfg.Trace,
		Label:       label,
	}
	inst := &Instance{Label: label, Env: env, Eng: f(env), Rec: rec}
	if label == "" {
		inst.Label = inst.Eng.Name()
		env.Label = inst.Label
	}
	rec.SetTrace(cfg.Trace, inst.Label)
	return inst
}

// OnFinish registers a per-request completion callback, chaining with any
// callback already installed.
func (i *Instance) OnFinish(fn func(id int, at sim.Time)) {
	prev := i.Rec.OnFinish
	i.Rec.OnFinish = func(id int, at sim.Time) {
		if prev != nil {
			prev(id, at)
		}
		fn(id, at)
	}
}

// OnFirstToken registers a per-request first-token callback (invoked
// with the request's TTFT), chaining with any callback already installed.
func (i *Instance) OnFirstToken(fn func(id int, ttft sim.Time)) {
	prev := i.Rec.OnFirstToken
	i.Rec.OnFirstToken = func(id int, ttft sim.Time) {
		if prev != nil {
			prev(id, ttft)
		}
		fn(id, ttft)
	}
}

// Submit records the request's arrival and delivers it to the engine.
// It must be called from inside the simulation at the arrival time (or
// later, when a fleet controller re-dispatches a request off a failed
// replica: the recorder keeps the original arrival, so the failover
// latency shows up in TTFT).
func (i *Instance) Submit(r *workload.Request) {
	if i.halted {
		return
	}
	i.Rec.Arrive(r.ID, r.Arrival, r.InputTokens)
	i.Eng.Submit(r)
}

// Open returns the IDs of in-flight (arrived, unfinished) requests in
// arrival order — what a drain or failure must surface for re-dispatch.
func (i *Instance) Open() []int { return i.Rec.OpenIDs() }

// Halt freezes the instance at the current instant: the recorder stops
// accepting samples and Submit becomes a no-op. The engine's already
// scheduled simulation events still fire (there is no way to revoke a
// crashed replica's pending callbacks without every engine's
// cooperation), but none of that ghost work can reach the metrics. The
// caller snapshots Result and CacheStats at the halt instant; later
// reads of either would include ghost activity.
func (i *Instance) Halt() { i.halted = true; i.Rec.Halt() }

// Halted reports whether the instance has been halted.
func (i *Instance) Halted() bool { return i.halted }

// Abort withdraws one in-flight request from the instance's metrics so
// it can be re-dispatched to another replica under the same ID. The
// engine keeps simulating the request (its KV stays until completion
// publishes or eviction reclaims it), but tokens it emits after the
// abort are discarded by the recorder. Reports whether an in-flight
// record was removed.
func (i *Instance) Abort(id int) bool { return i.Rec.Abort(id) }

// PreloadKV publishes externally streamed KV pages into the pool the
// engine's admission matches against — the first reported cache pool,
// which is the prefix-lookup side for every engine here (the sole pool
// of aggregated engines, the prefill pool of disaggregated ones). The
// cluster's KV-migration path calls this at stream-arrival time so the
// migrated session's next turn admits as a cache hit instead of paying
// a re-prefill. Returns pages actually inserted (capacity may evict or
// truncate); a halted instance or a pool-less engine accepts nothing.
func (i *Instance) PreloadKV(pages []kvcache.PageID) int {
	if i.halted || len(pages) == 0 {
		return 0
	}
	pr, ok := i.Eng.(PoolReporter)
	if !ok {
		return 0
	}
	pools := pr.CachePools()
	if len(pools) == 0 {
		return 0
	}
	return pools[0].Insert(pages)
}

// PeekKV reports how many leading pages of the sequence the engine's
// matching pool still holds, and the pool's page granularity in tokens,
// without touching recency or statistics. KV migration uses it to clamp
// what a drain can stream to what the pool physically retains — evicted
// KV cannot be migrated.
func (i *Instance) PeekKV(pages []kvcache.PageID) (matched, pageTokens int) {
	pr, ok := i.Eng.(PoolReporter)
	if !ok {
		return 0, 0
	}
	pools := pr.CachePools()
	if len(pools) == 0 {
		return 0, 0
	}
	return pools[0].Peek(pages), pools[0].PageTokens()
}

// CacheStats aggregates cache statistics across the engine's pools; it
// returns zeros when the engine exposes none.
func (i *Instance) CacheStats() kvcache.Stats {
	var agg kvcache.Stats
	pr, ok := i.Eng.(PoolReporter)
	if !ok {
		return agg
	}
	for _, p := range pr.CachePools() {
		s := p.Stats()
		agg.Lookups += s.Lookups
		agg.HitTokens += s.HitTokens
		agg.MissTokens += s.MissTokens
		agg.Evictions += s.Evictions
		agg.Inserts += s.Inserts
	}
	return agg
}

// CacheHit returns the token-weighted prefix-cache hit rate across the
// engine's pools, or 0 when the engine exposes none.
func (i *Instance) CacheHit() float64 { return i.CacheStats().HitRate() }

// Result snapshots the instance's run result at simulation time now.
func (i *Instance) Result(now sim.Time) Result {
	res := Result{
		Summary:  i.Rec.Summarize(i.Label, now),
		Timeline: i.Eng.Timeline(),
		Rec:      i.Rec,
		CacheHit: i.CacheHit(),
	}
	for _, d := range i.Eng.Devices() {
		res.Devices = append(res.Devices, d.Stats())
	}
	return res
}
