package serve

import (
	"muxwise/internal/estimator"
	"muxwise/internal/model"
	"muxwise/internal/roofline"
	"muxwise/internal/sim"
)

// CostModel is the estimator seam every engine schedules against: solo
// step-time predictions for both phases, a worst-case decode bound under
// spatial multiplexing, and the online-refinement hook. The fitted
// estimator (internal/estimator, the paper's profiled planes) and the
// analytical roofline (internal/roofline, datasheet-only) both satisfy it,
// so a deployment picks its model by name without engines knowing which
// one they got.
type CostModel interface {
	// DecodeSolo predicts one decode iteration's solo latency for the
	// given total attended context, batch size and partition SMs.
	DecodeSolo(totalCtx, bs, sms int) sim.Time
	// PrefillPhase predicts a full layer-wise prefill phase's solo
	// latency for the batch on the given partition SMs.
	PrefillPhase(seqs []model.Seq, sms int) sim.Time
	// DecodeWorst bounds a decode iteration's latency under spatial
	// multiplexing with a prefill batch of the given shape.
	DecodeWorst(totalCtx, bs, sms, prefillNew, prefillReused int) sim.Time
	// ObserveSlowdown feeds a measured decode slowdown (actual over
	// predicted-solo) back into the model. Profiled models refine their
	// contention guard; analytical models ignore it.
	ObserveSlowdown(prefillNew, prefillReused, bs, totalCtx, sms int, slowdown float64)
}

// Cost model names accepted by Config.CostModel and Env.CostModel.
const (
	// CostFitted is the paper's offline-profiled max-of-two-planes
	// estimator with the co-run slowdown guard — the default.
	CostFitted = "fitted"
	// CostRoofline is the analytical datasheet model: it covers any
	// (model, GPU) pair without profiling.
	CostRoofline = "roofline"
)

// CostModels returns the recognised cost model names.
func CostModels() []string { return []string{CostFitted, CostRoofline} }

// ValidCostModel reports whether name selects a known cost model ("" is
// the fitted default).
func ValidCostModel(name string) bool {
	switch name {
	case "", CostFitted, CostRoofline:
		return true
	}
	return false
}

// Cost resolves the env's configured cost model. The fitted default is
// forked so each engine refines its own contention guard; the roofline is
// stateless and shared as-is.
func (e *Env) Cost() CostModel {
	switch e.CostModel {
	case "", CostFitted:
		return estimator.New(e.Spec, e.GPUs, e.Arch).Fork()
	case CostRoofline:
		return roofline.New(e.Spec, e.GPUs, e.Arch)
	}
	panic("serve: unknown cost model " + e.CostModel)
}
