package serve

import (
	"muxwise/internal/par"
	"muxwise/internal/workload"
)

// RatePoint is one sample of a load sweep.
type RatePoint struct {
	Rate       float64 // offered req/s
	Attainment float64 // fraction of TBT samples within SLO
	P99TTFT    float64 // seconds
	P99TBT     float64 // seconds
	Unstable   bool
	TokensPerS float64
	Util       float64
}

// meets reports whether the point satisfies the goodput criterion used
// throughout §4: stable and ≥99% of TBT samples within the SLO.
func (p RatePoint) meets() bool { return !p.Unstable && p.Attainment >= 0.99 }

// Probe runs one point of a load sweep.
func Probe(f Factory, cfg Config, mkTrace func(rate float64) *workload.Trace, rate float64) RatePoint {
	res := Run(f, cfg, mkTrace(rate))
	return RatePoint{
		Rate:       rate,
		Attainment: res.Rec.TBTAttainment(cfg.SLO.TBT),
		P99TTFT:    res.Summary.TTFT.P99,
		P99TBT:     res.Summary.TBT.P99,
		Unstable:   res.Summary.Unstable,
		TokensPerS: res.Summary.TokensPerSecond,
		Util:       res.MeanUtil(),
	}
}

// SweepBy probes each rate with the given probe function and keeps the
// points up to two past the first SLO miss (the paper stops testing once
// a system becomes unstable, §4.2.3).
//
// Probes run concurrently — each is an independent deterministic
// simulation — but the returned slice is identical to a sequential
// sweep: points stay in rate order and the early-stop truncation is
// applied to the ordered results. The probe function must therefore be
// safe to call from multiple goroutines. Probes launch in geometrically
// growing waves (2, 4, 8, ... capped by the worker pool) so a sweep
// that fails at the low rates does not pay for the saturated high-rate
// simulations past the cutoff — the slowest probes of the whole sweep —
// even on machines with more cores than rates.
func SweepBy(probe func(rate float64) RatePoint, rates []float64) []RatePoint {
	pts := make([]RatePoint, 0, len(rates))
	for wave := 2; len(pts) < len(rates); wave *= 2 {
		start := len(pts)
		end := min(start+min(wave, par.Workers(len(rates))), len(rates))
		pts = append(pts, par.RunIndexed(end-start, func(i int) RatePoint {
			return probe(rates[start+i])
		})...)
		// Replay the sequential early-stop rule on the ordered prefix.
		misses := 0
		for i, p := range pts {
			if !p.meets() {
				misses++
				if misses >= 2 {
					return pts[:i+1]
				}
			}
		}
	}
	return pts
}

// Sweep probes each offered rate in order, stopping two points after the
// engine first misses the SLO criterion. Probes run concurrently, so
// mkTrace (and the factory) must be safe to call from multiple
// goroutines — return a fresh trace per call instead of mutating a
// shared one.
func Sweep(f Factory, cfg Config, mkTrace func(rate float64) *workload.Trace, rates []float64) []RatePoint {
	return SweepBy(func(rate float64) RatePoint {
		return Probe(f, cfg, mkTrace, rate)
	}, rates)
}

// GoodputBy finds the highest offered rate (within [lo, hi]) whose probe
// meets the SLO criterion, by bisection to a 2% relative resolution.
// Bisection is inherently sequential: each probe decides the next rate.
// The second result distinguishes "the floor rate lo already misses the
// criterion" (false) from a feasible range (true): callers must not
// conflate an infeasible range with a goodput of 0 req/s.
func GoodputBy(probe func(rate float64) RatePoint, lo, hi float64) (float64, bool) {
	if !probe(lo).meets() {
		return 0, false
	}
	best := lo
	for i := 0; i < 7 && hi-lo > 0.02*hi; i++ {
		mid := (lo + hi) / 2
		if probe(mid).meets() {
			best, lo = mid, mid
		} else {
			hi = mid
		}
	}
	return best, true
}

// Goodput finds the highest offered rate (within [lo, hi]) at which the
// engine meets the SLO criterion — the paper's headline metric. An
// infeasible range reports 0; use GoodputBy to tell the cases apart.
func Goodput(f Factory, cfg Config, mkTrace func(rate float64) *workload.Trace, lo, hi float64) float64 {
	g, _ := GoodputBy(func(rate float64) RatePoint {
		return Probe(f, cfg, mkTrace, rate)
	}, lo, hi)
	return g
}
