package serve

import (
	"muxwise/internal/workload"
)

// RatePoint is one sample of a load sweep.
type RatePoint struct {
	Rate       float64 // offered req/s
	Attainment float64 // fraction of TBT samples within SLO
	P99TTFT    float64 // seconds
	P99TBT     float64 // seconds
	Unstable   bool
	TokensPerS float64
	Util       float64
}

// meets reports whether the point satisfies the goodput criterion used
// throughout §4: stable and ≥99% of TBT samples within the SLO.
func (p RatePoint) meets() bool { return !p.Unstable && p.Attainment >= 0.99 }

// Probe runs one point of a load sweep.
func Probe(f Factory, cfg Config, mkTrace func(rate float64) *workload.Trace, rate float64) RatePoint {
	res := Run(f, cfg, mkTrace(rate))
	return RatePoint{
		Rate:       rate,
		Attainment: res.Rec.TBTAttainment(cfg.SLO.TBT),
		P99TTFT:    res.Summary.TTFT.P99,
		P99TBT:     res.Summary.TBT.P99,
		Unstable:   res.Summary.Unstable,
		TokensPerS: res.Summary.TokensPerSecond,
		Util:       res.MeanUtil(),
	}
}

// Sweep probes each rate in order, stopping two points after the system
// first fails the SLO criterion (the paper stops testing once a system
// becomes unstable, §4.2.3).
func Sweep(f Factory, cfg Config, mkTrace func(rate float64) *workload.Trace, rates []float64) []RatePoint {
	var out []RatePoint
	misses := 0
	for _, r := range rates {
		p := Probe(f, cfg, mkTrace, r)
		out = append(out, p)
		if !p.meets() {
			misses++
			if misses >= 2 {
				break
			}
		}
	}
	return out
}

// Goodput finds the highest offered rate (within [lo, hi]) that meets the
// SLO criterion, by bisection to the given relative resolution.
func Goodput(f Factory, cfg Config, mkTrace func(rate float64) *workload.Trace, lo, hi float64) float64 {
	if !Probe(f, cfg, mkTrace, lo).meets() {
		return 0
	}
	best := lo
	for i := 0; i < 7 && hi-lo > 0.02*hi; i++ {
		mid := (lo + hi) / 2
		if Probe(f, cfg, mkTrace, mid).meets() {
			best, lo = mid, mid
		} else {
			hi = mid
		}
	}
	return best
}
