package serve

import (
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Config describes a serving deployment for a run.
type Config struct {
	Spec gpu.Spec
	GPUs int
	Arch model.Arch
	SLO  metrics.SLO

	// ReserveFrac of HBM withheld from KV pools (default 0.10).
	ReserveFrac float64
	// MaxBatch caps decode batch size (default 256).
	MaxBatch int
	// Horizon bounds the simulation beyond the last arrival (default
	// 30 simulated minutes). Runs hitting the horizon with unfinished
	// requests are summarised as unstable.
	Horizon sim.Time
}

func (c Config) withDefaults() Config {
	if c.ReserveFrac == 0 {
		c.ReserveFrac = 0.10
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.Horizon == 0 {
		c.Horizon = 30 * 60 * sim.Second
	}
	return c
}

// Result couples the metrics summary with engine-side accounting.
type Result struct {
	Summary  metrics.Summary
	Timeline *metrics.Timeline
	Devices  []gpu.Stats
	CacheHit float64
	Rec      *metrics.Recorder
}

// Run replays the trace against a fresh engine built by factory and
// returns the aggregated result. The run is fully deterministic.
func Run(factory Factory, cfg Config, trace *workload.Trace) Result {
	cfg = cfg.withDefaults()
	s := sim.New()
	rec := metrics.NewRecorder()
	env := &Env{
		Sim:         s,
		Spec:        cfg.Spec,
		GPUs:        cfg.GPUs,
		Arch:        cfg.Arch,
		SLO:         cfg.SLO,
		Rec:         rec,
		ReserveFrac: cfg.ReserveFrac,
		MaxBatch:    cfg.MaxBatch,
	}
	eng := factory(env)

	var lastArrival sim.Time
	for _, r := range trace.Requests {
		r := r
		rec.Arrive(r.ID, r.Arrival, r.InputTokens)
		s.At(r.Arrival, func() { eng.Submit(r) })
		if r.Arrival > lastArrival {
			lastArrival = r.Arrival
		}
	}
	// Stability probe: a keeping-up system holds only its in-flight
	// requests shortly after arrivals stop; a saturated one has a queue.
	backlog := 0
	s.At(lastArrival+30*sim.Second, func() { backlog = rec.Unfinished() })
	s.RunUntil(lastArrival + cfg.Horizon)

	res := Result{
		Summary:  rec.Summarize(eng.Name(), s.Now()),
		Timeline: eng.Timeline(),
		Rec:      rec,
	}
	res.Summary.Backlog = backlog
	if n := res.Summary.Requests; backlog > 10 && backlog*50 > n {
		res.Summary.Unstable = true
	}
	for _, d := range eng.Devices() {
		res.Devices = append(res.Devices, d.Stats())
	}
	return res
}

// MeanUtil averages the blended utilization across the engine's devices.
func (r Result) MeanUtil() float64 {
	if len(r.Devices) == 0 {
		return 0
	}
	var sum float64
	for _, d := range r.Devices {
		sum += d.Util
	}
	return sum / float64(len(r.Devices))
}
