package serve

import (
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/obs"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Config describes a serving deployment for a run.
type Config struct {
	Spec gpu.Spec
	GPUs int
	Arch model.Arch
	SLO  metrics.SLO

	// ReserveFrac of HBM withheld from KV pools (default 0.10).
	ReserveFrac float64
	// MaxBatch caps decode batch size (default 256).
	MaxBatch int
	// Horizon bounds the simulation beyond the last arrival (default
	// 30 simulated minutes). Runs hitting the horizon with unfinished
	// requests are summarised as unstable.
	Horizon sim.Time

	// CostModel selects the step-time estimator: "fitted" (default, the
	// paper's offline-profiled planes) or "roofline" (analytical, any
	// model on any GPU).
	CostModel string

	// Trace, when non-nil, records the run's flight-recorder events.
	// Tracing is purely observational: results are byte-identical with
	// it on or off.
	Trace *obs.Tracer
}

// WithDefaults resolves zero-valued knobs to their documented defaults.
func (c Config) WithDefaults() Config {
	if c.ReserveFrac == 0 {
		c.ReserveFrac = 0.10
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.Horizon == 0 {
		c.Horizon = 30 * 60 * sim.Second
	}
	return c
}

// Result couples the metrics summary with engine-side accounting.
type Result struct {
	Summary  metrics.Summary
	Timeline *metrics.Timeline
	Devices  []gpu.Stats
	CacheHit float64
	Rec      *metrics.Recorder

	// Diagnostics attributes every SLO miss to a cause (set by Run;
	// zero on bare Instance snapshots).
	Diagnostics metrics.MissBreakdown
	// Loop snapshots the event loop's perf counters for the run.
	Loop sim.LoopStats
}

// Run replays the trace against a fresh engine built by factory and
// returns the aggregated result. The run is fully deterministic.
func Run(factory Factory, cfg Config, trace *workload.Trace) Result {
	cfg = cfg.WithDefaults()
	s := sim.New()
	inst := NewInstance(s, factory, cfg, "")

	// One shared submit callback for every arrival: the request rides as
	// the event argument, so scheduling a million-request trace allocates
	// one closure, not a million.
	submit := func(arg any) { inst.Submit(arg.(*workload.Request)) }
	var lastArrival sim.Time
	for _, r := range trace.Requests {
		s.AtFunc(r.Arrival, submit, r)
		if r.Arrival > lastArrival {
			lastArrival = r.Arrival
		}
	}
	// Stability probe: a keeping-up system holds only its in-flight
	// requests shortly after arrivals stop; a saturated one has a queue.
	backlog := 0
	s.At(lastArrival+30*sim.Second, func() { backlog = inst.Rec.Unfinished() })
	s.RunUntil(lastArrival + cfg.Horizon)

	res := inst.Result(s.Now())
	ApplyBacklog(&res.Summary, backlog)
	res.Diagnostics = inst.Rec.Diagnose(cfg.SLO, metrics.DiagnoseAux{})
	res.Loop = s.Stats()
	return res
}

// ApplyBacklog records the stability-probe backlog on the summary and
// applies the shared instability verdict: a backlog that is both >10
// requests and >2% of all arrivals marks the run as not keeping up.
// The single-instance and cluster runners share this rule so their
// "UNSTABLE" verdicts always agree.
func ApplyBacklog(s *metrics.Summary, backlog int) {
	s.Backlog = backlog
	if backlog > 10 && backlog*50 > s.Requests {
		s.Unstable = true
	}
}

// MeanUtil averages the blended utilization across the engine's devices.
func (r Result) MeanUtil() float64 {
	if len(r.Devices) == 0 {
		return 0
	}
	var sum float64
	for _, d := range r.Devices {
		sum += d.Util
	}
	return sum / float64(len(r.Devices))
}
