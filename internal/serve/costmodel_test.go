package serve

import (
	"testing"

	"muxwise/internal/estimator"
	"muxwise/internal/gpu"
	"muxwise/internal/model"
	"muxwise/internal/roofline"
)

// TestCostSeamSelectsModel pins the seam's dispatch: the Env really hands
// engines a different estimator per cost-model name, and the default is
// the fitted one.
func TestCostSeamSelectsModel(t *testing.T) {
	env := &Env{Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B()}
	if _, ok := env.Cost().(*estimator.Estimator); !ok {
		t.Fatalf("empty cost model resolved to %T, want the fitted estimator", env.Cost())
	}
	env.CostModel = CostFitted
	if _, ok := env.Cost().(*estimator.Estimator); !ok {
		t.Fatalf("%q resolved to %T", CostFitted, env.Cost())
	}
	env.CostModel = CostRoofline
	rl, ok := env.Cost().(*roofline.Model)
	if !ok {
		t.Fatalf("%q resolved to %T, want *roofline.Model", CostRoofline, env.Cost())
	}
	if rl.Spec.Name != env.Spec.Name || rl.TP != env.GPUs || rl.Arch.Name != env.Arch.Name {
		t.Fatalf("roofline model built for %s/tp=%d/%s, want %s/tp=%d/%s",
			rl.Spec.Name, rl.TP, rl.Arch.Name, env.Spec.Name, env.GPUs, env.Arch.Name)
	}

	env.CostModel = "datasheet"
	defer func() {
		if recover() == nil {
			t.Fatal("unknown cost model did not panic (ValidCostModel should gate it upstream)")
		}
	}()
	env.Cost()
}

// TestValidCostModel covers the gate the config layers rely on.
func TestValidCostModel(t *testing.T) {
	for _, name := range []string{"", CostFitted, CostRoofline} {
		if !ValidCostModel(name) {
			t.Errorf("ValidCostModel(%q) = false", name)
		}
	}
	for _, name := range []string{"datasheet", "Fitted", "ROOFLINE", "none"} {
		if ValidCostModel(name) {
			t.Errorf("ValidCostModel(%q) = true", name)
		}
	}
	if got := CostModels(); len(got) != 2 || got[0] != CostFitted || got[1] != CostRoofline {
		t.Errorf("CostModels() = %v", got)
	}
}
