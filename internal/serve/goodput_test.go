package serve

import (
	"sync/atomic"
	"testing"

	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// countingTrace wraps smallTrace with a goroutine-safe probe counter.
func countingTrace(calls *atomic.Int64) func(rate float64) *workload.Trace {
	return func(rate float64) *workload.Trace {
		calls.Add(1)
		return smallTrace(20)
	}
}

func TestGoodputInfeasibleLo(t *testing.T) {
	var calls atomic.Int64
	g := Goodput(fakeFactory(10*sim.Millisecond, 200*sim.Millisecond), testCfg(),
		countingTrace(&calls), 0.5, 8)
	if g != 0 {
		t.Fatalf("goodput = %v, want 0 when the floor rate already fails", g)
	}
	if calls.Load() != 1 {
		t.Fatalf("infeasible lo should stop after one probe, ran %d", calls.Load())
	}
}

func TestGoodputFullyFeasibleHi(t *testing.T) {
	var calls atomic.Int64
	// 10ms gaps always meet the 50ms TBT SLO: every bisection step
	// passes, so the answer converges to the ceiling.
	g := Goodput(fakeFactory(10*sim.Millisecond, 10*sim.Millisecond), testCfg(),
		countingTrace(&calls), 1, 10)
	if g < 9.0 {
		t.Fatalf("goodput = %v, want ≈hi when every rate is feasible", g)
	}
	if calls.Load() > 8 {
		t.Fatalf("bisection ran %d probes, want ≤ 8 (1 floor + 7 steps)", calls.Load())
	}
}

func TestGoodputResolutionBound(t *testing.T) {
	// Engine passing exactly below rate 50 over [1, 100]: bisection must
	// land within the 2%-of-hi resolution of the true threshold.
	var current atomic.Int64 // rate × 1000
	f := func(env *Env) Engine {
		gap := 10 * sim.Millisecond
		if current.Load() >= 50_000 {
			gap = 200 * sim.Millisecond
		}
		return &fakeEngine{env: env, delay: 10 * sim.Millisecond, gap: gap}
	}
	mk := func(rate float64) *workload.Trace {
		current.Store(int64(rate * 1000))
		return smallTrace(20)
	}
	g := Goodput(f, testCfg(), mk, 1, 100)
	if g < 48 || g >= 50 {
		t.Fatalf("goodput = %v, want within [48, 50) (2%% of hi below the threshold)", g)
	}
}

func TestSweepParallelDeterministic(t *testing.T) {
	mk := func(rate float64) *workload.Trace { return smallTrace(20) }
	rates := []float64{1, 2, 3, 4, 5, 6}
	f := fakeFactory(10*sim.Millisecond, 10*sim.Millisecond)
	a := Sweep(f, testCfg(), mk, rates)
	b := Sweep(f, testCfg(), mk, rates)
	if len(a) != len(rates) || len(a) != len(b) {
		t.Fatalf("sweep lengths %d/%d, want %d", len(a), len(b), len(rates))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel sweep not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Rate != rates[i] {
			t.Fatalf("sweep order broken: point %d has rate %v", i, a[i].Rate)
		}
	}
}

func TestSweepEarlyStopMatchesSequentialRule(t *testing.T) {
	// Failing engine: the ordered results must truncate two points after
	// the first miss, exactly like the sequential sweep did.
	mk := func(rate float64) *workload.Trace { return smallTrace(20) }
	pts := Sweep(fakeFactory(10*sim.Millisecond, 80*sim.Millisecond), testCfg(), mk,
		[]float64{1, 2, 3, 4, 5})
	if len(pts) != 2 {
		t.Fatalf("sweep kept %d points, want 2 (stop at second miss)", len(pts))
	}
}
