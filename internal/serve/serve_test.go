package serve

import (
	"testing"

	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

func pages(stream uint64, n int) []kvcache.PageID {
	out := make([]kvcache.PageID, n)
	for i := range out {
		out[i] = kvcache.PageID(stream<<32 | uint64(i))
	}
	return out
}

func req(id int, input, output int) *workload.Request {
	p := pages(uint64(id), kvcache.PageCount(input, 16))
	all := pages(uint64(id), kvcache.PageCount(input+output, 16))
	return &workload.Request{
		ID: id, InputTokens: input, OutputTokens: output,
		Pages: p, AllPages: all,
	}
}

func TestAdmitReservesAndPins(t *testing.T) {
	pool := kvcache.New(10000, 16)
	r := req(1, 1000, 100)
	run := Admit(pool, r)
	if run == nil {
		t.Fatal("admission failed with ample pool")
	}
	if run.CachedTokens != 0 {
		t.Fatalf("cached = %d on cold pool", run.CachedTokens)
	}
	if pool.Reserved() != 1100 {
		t.Fatalf("reserved = %d, want 1100", pool.Reserved())
	}
	run.Complete(pool)
	if pool.Reserved() != 0 {
		t.Fatalf("reserved after complete = %d", pool.Reserved())
	}
	// Second identical request hits the published KV.
	run2 := Admit(pool, r)
	if run2 == nil {
		t.Fatal("second admission failed")
	}
	if run2.CachedTokens < 900 {
		t.Fatalf("cached = %d, want ≈1000 after publish", run2.CachedTokens)
	}
}

func TestAdmitFailsWhenFull(t *testing.T) {
	pool := kvcache.New(500, 16)
	if run := Admit(pool, req(1, 1000, 100)); run != nil {
		t.Fatal("admission should fail when KV cannot fit")
	}
}

func TestAbortReleasesWithoutPublishing(t *testing.T) {
	pool := kvcache.New(10000, 16)
	r := req(2, 800, 50)
	run := Admit(pool, r)
	run.Abort(pool)
	if pool.Reserved() != 0 {
		t.Fatalf("reserved after abort = %d", pool.Reserved())
	}
	if got := Admit(pool, r); got.CachedTokens != 0 {
		t.Fatalf("abort must not publish KV; cached = %d", got.CachedTokens)
	}
}

func TestRunningProgress(t *testing.T) {
	run := &Running{R: req(3, 100, 10), CachedTokens: 40}
	if got := run.PrefillRemaining(); got != 60 {
		t.Fatalf("PrefillRemaining = %d, want 60", got)
	}
	run.PrefilledTokens = 60
	if got := run.PrefillRemaining(); got != 0 {
		t.Fatalf("PrefillRemaining = %d, want 0", got)
	}
	if run.CtxTokens() != 100 {
		t.Fatalf("CtxTokens = %d", run.CtxTokens())
	}
	run.Generated = 10
	if !run.DecodeDone() {
		t.Fatal("DecodeDone should be true")
	}
}

func TestBatchStep(t *testing.T) {
	rec := metrics.NewRecorder()
	var b Batch
	a := &Running{R: req(1, 10, 2), Generated: 1}
	c := &Running{R: req(2, 10, 5), Generated: 1}
	rec.Arrive(1, 0, 10)
	rec.Arrive(2, 0, 10)
	b.Add(a)
	b.Add(c)
	fin := b.Step(sim.Second, rec)
	if len(fin) != 1 || fin[0] != a {
		t.Fatalf("finished = %v, want request 1", fin)
	}
	if b.Size() != 1 {
		t.Fatalf("batch size = %d, want 1", b.Size())
	}
	if got := b.TotalCtx(); got != 12 {
		t.Fatalf("TotalCtx = %d, want 12", got)
	}
}

// fakeEngine serves requests with fixed synthetic latencies so the runner
// and goodput helpers can be tested in isolation.
type fakeEngine struct {
	env   *Env
	delay sim.Time
	gap   sim.Time
}

func (f *fakeEngine) Name() string                { return "fake" }
func (f *fakeEngine) Timeline() *metrics.Timeline { return &metrics.Timeline{} }
func (f *fakeEngine) Devices() []*gpu.Device      { return nil }
func (f *fakeEngine) Submit(r *workload.Request) {
	at := f.env.Sim.Now() + f.delay
	for i := 0; i < r.OutputTokens; i++ {
		i := i
		f.env.Sim.At(at+sim.Time(i)*f.gap, func() {
			f.env.Rec.Token(r.ID, f.env.Sim.Now())
			if i == r.OutputTokens-1 {
				f.env.Rec.Finish(r.ID, f.env.Sim.Now())
			}
		})
	}
}

func fakeFactory(delay, gap sim.Time) Factory {
	return func(env *Env) Engine { return &fakeEngine{env: env, delay: delay, gap: gap} }
}

func testCfg() Config {
	return Config{
		Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond},
	}
}

func smallTrace(n int) *workload.Trace {
	tr := &workload.Trace{Name: "small"}
	for i := 0; i < n; i++ {
		r := req(i, 100, 5)
		r.Arrival = sim.Time(i) * 100 * sim.Millisecond
		tr.Requests = append(tr.Requests, r)
	}
	return tr
}

func TestRunnerBasics(t *testing.T) {
	res := Run(fakeFactory(20*sim.Millisecond, 10*sim.Millisecond), testCfg(), smallTrace(10))
	if res.Summary.Requests != 10 || res.Summary.Finished != 10 {
		t.Fatalf("requests/finished = %d/%d", res.Summary.Requests, res.Summary.Finished)
	}
	if got := res.Summary.TTFT.Avg; got < 0.019 || got > 0.021 {
		t.Fatalf("TTFT avg = %v, want 20ms", got)
	}
	if got := res.Summary.TBT.Avg; got < 0.009 || got > 0.011 {
		t.Fatalf("TBT avg = %v, want 10ms", got)
	}
}

func TestRunnerDeterministic(t *testing.T) {
	a := Run(fakeFactory(time20(), 10*sim.Millisecond), testCfg(), smallTrace(20)).Summary
	b := Run(fakeFactory(time20(), 10*sim.Millisecond), testCfg(), smallTrace(20)).Summary
	if a.TTFT != b.TTFT || a.TBT != b.TBT {
		t.Fatal("runner not deterministic")
	}
}

func time20() sim.Time { return 20 * sim.Millisecond }

func TestPoolTokensHelper(t *testing.T) {
	env := Env{Spec: gpu.A100(), Arch: model.Llama8B(), ReserveFrac: 0.1}
	one := env.PoolTokens(1)
	eight := env.PoolTokens(8)
	if one <= 0 || eight <= one*7 {
		t.Fatalf("pool tokens scaling wrong: 1 GPU %d, 8 GPUs %d", one, eight)
	}
}

func TestProbeAndSweep(t *testing.T) {
	mk := func(rate float64) *workload.Trace { return smallTrace(20) }
	// Fast engine: 10ms TBT < 50ms SLO → meets.
	p := Probe(fakeFactory(10*sim.Millisecond, 10*sim.Millisecond), testCfg(), mk, 1)
	if p.Attainment < 0.99 || p.Unstable {
		t.Fatalf("fast engine should meet SLO: %+v", p)
	}
	// Slow engine: 80ms gaps violate.
	p2 := Probe(fakeFactory(10*sim.Millisecond, 80*sim.Millisecond), testCfg(), mk, 1)
	if p2.Attainment > 0.01 {
		t.Fatalf("slow engine attainment = %v, want ≈0", p2.Attainment)
	}
	pts := Sweep(fakeFactory(10*sim.Millisecond, 80*sim.Millisecond), testCfg(), mk, []float64{1, 2, 3, 4, 5})
	if len(pts) > 3 {
		t.Fatalf("sweep should stop after repeated misses, got %d points", len(pts))
	}
}

func TestGoodputBisection(t *testing.T) {
	// Engine whose token gap grows with offered rate: passes below
	// rate≈2.5, fails above.
	mk := func(rate float64) *workload.Trace { return smallTrace(20) }
	factory := func(rate *float64) Factory {
		return func(env *Env) Engine {
			gap := sim.Time(float64(20*sim.Millisecond) * *rate)
			return &fakeEngine{env: env, delay: 10 * sim.Millisecond, gap: gap}
		}
	}
	var current float64
	f := func(env *Env) Engine { return factory(&current)(env) }
	mkTrack := func(rate float64) *workload.Trace {
		current = rate
		return mk(rate)
	}
	g := Goodput(f, testCfg(), mkTrack, 0.5, 8)
	if g < 1.5 || g > 3.0 {
		t.Fatalf("goodput = %v, want ≈2.5 (gap crosses 50ms there)", g)
	}
	// Engine failing even at the floor → 0.
	bad := Goodput(fakeFactory(10*sim.Millisecond, 200*sim.Millisecond), testCfg(), mk, 0.5, 8)
	if bad != 0 {
		t.Fatalf("failing engine goodput = %v, want 0", bad)
	}
}
