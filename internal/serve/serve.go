// Package serve defines the pieces every serving engine shares: the
// runtime view of a request, KV-cache admission, decode-batch
// bookkeeping, the engine interface, and the trace runner that couples a
// workload to an engine on a simulated cluster.
package serve

import (
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/obs"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Env is everything an engine needs to build itself.
type Env struct {
	Sim  *sim.Sim
	Spec gpu.Spec
	GPUs int // physical GPUs available to the engine
	Arch model.Arch
	SLO  metrics.SLO
	Rec  *metrics.Recorder

	// ReserveFrac of HBM is withheld from the KV pool for activations,
	// CUDA graphs and allocator slack.
	ReserveFrac float64

	// MaxBatch caps the decode batch size (SGLang default-style).
	MaxBatch int

	// CostModel names the step-time estimator engines resolve through
	// Cost(): "fitted" (default) or "roofline".
	CostModel string

	// Trace is the flight recorder, nil when tracing is off. Engines
	// emitting their own spans (scheduler phases, partition counters)
	// read it directly; request lifecycle events flow through Rec.
	Trace *obs.Tracer

	// Label names the instance's trace track (set by NewInstance).
	Label string
}

// Admitted records on the metrics recorder that the engine just
// accepted request id out of its arrival queue — every engine calls
// this at its serve.Admit (or equivalent) success path so SLO misses
// can be split into queue-wait vs prefill time.
func (e *Env) Admitted(id int) { e.Rec.Admitted(id, e.Sim.Now()) }

// PoolTokens returns the KV pool capacity for an instance spanning gpus
// devices, given the env's model and reserve fraction.
func (e *Env) PoolTokens(gpus int) int64 {
	return e.Arch.KVPoolTokens(int64(gpus)*e.Spec.HBMCapacity, e.ReserveFrac)
}

// Engine is a serving scheduler under test.
type Engine interface {
	Name() string
	// Submit delivers a request at its arrival time (called by the
	// runner from inside the simulation).
	Submit(r *workload.Request)
	// Timeline returns the engine's partition timeline if it keeps one.
	Timeline() *metrics.Timeline
	// Devices exposes the engine's logical devices for utilization
	// accounting.
	Devices() []*gpu.Device
}

// Factory builds an engine inside a prepared environment.
type Factory func(env *Env) Engine

// Running is a request in flight: admission state plus decode progress.
type Running struct {
	R *workload.Request

	// CachedTokens is the prefix-cache hit measured at admission.
	CachedTokens int
	// PinnedPages counts radix pages pinned for the request's lifetime.
	PinnedPages int
	// ReservedTokens is pool space reserved for new KV (input miss +
	// output).
	ReservedTokens int64

	// Generated counts decode tokens produced so far.
	Generated int
	// PrefilledTokens tracks chunked progress through the new context.
	PrefilledTokens int
}

// CtxTokens returns the current attended context length.
func (r *Running) CtxTokens() int { return r.R.InputTokens + r.Generated }

// DecodeDone reports whether all output tokens have been generated.
func (r *Running) DecodeDone() bool { return r.Generated >= r.R.OutputTokens }

// PrefillRemaining returns new-context tokens not yet prefilled.
func (r *Running) PrefillRemaining() int {
	rem := r.R.InputTokens - r.CachedTokens - r.PrefilledTokens
	if rem < 0 {
		return 0
	}
	return rem
}

// Admit performs cache lookup, pinning and pool reservation for a
// request. It returns nil when the pool cannot hold the request's KV (the
// caller should queue and retry after a completion frees space).
func Admit(pool *kvcache.Pool, r *workload.Request) *Running {
	hit := pool.MatchTokens(r.Pages, r.InputTokens)
	hitPages := hit / pool.PageTokens()
	need := int64(r.InputTokens - hit + r.OutputTokens)
	if !pool.Reserve(need) {
		// Roll back the optimistic statistics? No: lookup stats stand —
		// the lookup really happened; only the reservation failed.
		return nil
	}
	pool.Pin(r.Pages, hitPages)
	return &Running{
		R:              r,
		CachedTokens:   hit,
		PinnedPages:    hitPages,
		ReservedTokens: need,
	}
}

// Complete publishes the finished request's KV into the pool and releases
// its pins and reservation.
func (r *Running) Complete(pool *kvcache.Pool) {
	pool.Unpin(r.R.Pages, r.PinnedPages)
	pool.Release(r.ReservedTokens)
	pool.Insert(r.R.AllPages)
}

// Abort releases admission state without publishing KV (used by engines
// that drop work on reconfiguration, e.g. LoongServe scale-down).
func (r *Running) Abort(pool *kvcache.Pool) {
	pool.Unpin(r.R.Pages, r.PinnedPages)
	pool.Release(r.ReservedTokens)
}

// Batch is a decode batch.
type Batch struct {
	Reqs []*Running
}

// Size returns the batch size.
func (b *Batch) Size() int { return len(b.Reqs) }

// Ctxs returns per-request attended context lengths for the cost model.
func (b *Batch) Ctxs() []int {
	return b.CtxsInto(make([]int, 0, len(b.Reqs)))
}

// CtxsInto is the allocation-free Ctxs: it fills dst (reusing its
// capacity) and returns it. Engines keep one scratch slice and call this
// every decode iteration; the cost model reads the slice synchronously
// and never retains it.
func (b *Batch) CtxsInto(dst []int) []int {
	dst = dst[:0]
	for _, r := range b.Reqs {
		dst = append(dst, r.CtxTokens())
	}
	return dst
}

// TotalCtx returns the summed context length of the batch.
func (b *Batch) TotalCtx() int {
	t := 0
	for _, r := range b.Reqs {
		t += r.CtxTokens()
	}
	return t
}

// Add appends a request to the batch.
func (b *Batch) Add(r *Running) { b.Reqs = append(b.Reqs, r) }

// Step credits one generated token to every request at time now,
// removing and returning the requests that finished.
func (b *Batch) Step(now sim.Time, rec *metrics.Recorder) []*Running {
	return b.StepInto(now, rec, nil)
}

// StepInto is Step with a caller-owned result buffer: finished requests
// are appended to dst (reusing its capacity) so per-iteration stepping
// does not allocate.
func (b *Batch) StepInto(now sim.Time, rec *metrics.Recorder, dst []*Running) []*Running {
	finished := dst[:0]
	keep := b.Reqs[:0]
	for _, r := range b.Reqs {
		r.Generated++
		rec.Token(r.R.ID, now)
		if r.DecodeDone() {
			rec.Finish(r.R.ID, now)
			finished = append(finished, r)
		} else {
			keep = append(keep, r)
		}
	}
	b.Reqs = keep
	return finished
}
