package epp

import (
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// OverloadSlack (tokens) is the absolute slack in the overload guard,
// so near-idle fleets never trigger it.
const OverloadSlack = 8192

// Overloaded reports whether the endpoint carries more than twice the
// fleet-mean outstanding tokens (plus slack). Affinity compositions
// break stickiness past this point — the EPP's load-aware guard against
// hot-spotting a popular session.
func Overloaded[E Endpoint](e E, fleet []E) bool {
	var total int64
	for _, rep := range fleet {
		total += rep.OutstandingTokens()
	}
	mean := total / int64(len(fleet))
	return e.OutstandingTokens() > 2*mean+OverloadSlack
}

// ---- filters ----

// roleFilter keeps candidates whose role is in the keep set, falling
// back to the full set when no candidate qualifies — a pool that holds
// nothing routable is useless, so prefer off-role endpoints over
// dropping the request.
type roleFilter[E Endpoint] struct {
	keep [3]bool
	name string
}

// KeepRoles keeps candidates matching any of the given roles.
func KeepRoles[E Endpoint](roles ...Role) Filter[E] {
	f := &roleFilter[E]{name: "role"}
	for _, r := range roles {
		if r >= 0 && int(r) < len(f.keep) {
			f.keep[r] = true
			f.name += ":" + r.String()
		}
	}
	return f
}

func (f *roleFilter[E]) Name() string { return f.name }

func (f *roleFilter[E]) Filter(r *workload.Request, view View[E], cands []E, out []E) []E {
	for _, e := range cands {
		role := e.EndpointRole()
		if role >= 0 && int(role) < len(f.keep) && f.keep[role] {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		out = append(out, cands...)
	}
	return out
}

// stickyFilter narrows to the candidate holding the request's session
// KV; a request with no reachable holder passes through unchanged.
type stickyFilter[E Endpoint] struct{ aff *Affinity[E] }

// StickySession narrows to the session's KV holder when it is present
// in the candidate set.
func StickySession[E Endpoint](aff *Affinity[E]) Filter[E] {
	return &stickyFilter[E]{aff: aff}
}

func (f *stickyFilter[E]) Name() string { return "sticky-session" }

func (f *stickyFilter[E]) Filter(r *workload.Request, view View[E], cands []E, out []E) []E {
	if e, ok := f.aff.StickyIn(r, cands); ok {
		return append(out, e)
	}
	return append(out, cands...)
}

// divertFilter sheds a request off its session's holder: the candidate
// set minus the holder, so an overload guard can re-score the rest of
// the pool without the hot endpoint winning on its own cached pages.
// With widen set, an emptied pool retries against the full view
// (off-role endpoints beat re-pinning the hot one); either way an
// emptied result falls back to the incoming set, because a divert that
// cannot shed load is a no-op.
type divertFilter[E Endpoint] struct {
	aff   *Affinity[E]
	widen bool
}

// Divert drops the session's current holder from the candidates.
func Divert[E Endpoint](aff *Affinity[E], widen bool) Filter[E] {
	return &divertFilter[E]{aff: aff, widen: widen}
}

func (f *divertFilter[E]) Name() string { return "divert" }

func (f *divertFilter[E]) Filter(r *workload.Request, view View[E], cands []E, out []E) []E {
	id, ok := f.aff.Holder(r.Session)
	if !ok {
		return append(out, cands...)
	}
	base := len(out)
	for _, e := range cands {
		if e.EndpointID() != id {
			out = append(out, e)
		}
	}
	if len(out) > base {
		return out
	}
	if f.widen {
		for _, e := range view.Candidates {
			if e.EndpointID() != id {
				out = append(out, e)
			}
		}
		if len(out) > base {
			return out
		}
	}
	return append(out, cands...)
}

// ---- scorers ----

// leastTokensScorer prefers the smallest outstanding token load.
type leastTokensScorer[E Endpoint] struct{}

// LeastTokens scores by negated outstanding (input+output) tokens.
func LeastTokens[E Endpoint]() Scorer[E] { return leastTokensScorer[E]{} }

func (leastTokensScorer[E]) Name() string { return "least-tokens" }

func (leastTokensScorer[E]) Score(r *workload.Request, view View[E], cands []E, out []float64) {
	for i, e := range cands {
		out[i] = -float64(e.OutstandingTokens())
	}
}

// leastRequestsScorer prefers the fewest in-flight requests.
type leastRequestsScorer[E Endpoint] struct{}

// LeastRequests scores by negated in-flight request count.
func LeastRequests[E Endpoint]() Scorer[E] { return leastRequestsScorer[E]{} }

func (leastRequestsScorer[E]) Name() string { return "least-requests" }

func (leastRequestsScorer[E]) Score(r *workload.Request, view View[E], cands []E, out []float64) {
	for i, e := range cands {
		out[i] = -float64(e.InFlight())
	}
}

// prefixScorer scores by approximate prefix-cache match.
type prefixScorer[E Endpoint] struct{ aff *Affinity[E] }

// PrefixMatch scores each candidate by how many leading radix pages of
// the request its index advertises.
func PrefixMatch[E Endpoint](aff *Affinity[E]) Scorer[E] { return &prefixScorer[E]{aff: aff} }

func (s *prefixScorer[E]) Name() string { return "prefix-match" }

func (s *prefixScorer[E]) Score(r *workload.Request, view View[E], cands []E, out []float64) {
	for i, e := range cands {
		out[i] = float64(s.aff.Match(e.EndpointID(), r.Pages))
	}
}

// sessionScorer scores the session's holder 1, everyone else 0 — a soft
// stickiness for weighted blends (the hard form is StickySession).
type sessionScorer[E Endpoint] struct{ aff *Affinity[E] }

// SessionMatch scores the session's current KV holder above the rest.
func SessionMatch[E Endpoint](aff *Affinity[E]) Scorer[E] { return &sessionScorer[E]{aff: aff} }

func (s *sessionScorer[E]) Name() string { return "session-match" }

func (s *sessionScorer[E]) Score(r *workload.Request, view View[E], cands []E, out []float64) {
	id, ok := s.aff.Holder(r.Session)
	for i, e := range cands {
		if ok && e.EndpointID() == id {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
}

// TTFT EWMA scorer constants.
const (
	// ttftAlpha is the EWMA smoothing factor: ~the last dozen
	// observations dominate an endpoint's learned first-token latency,
	// fast enough to track a Fig. 13 burst and slow enough to ride out
	// one outlier.
	ttftAlpha = 0.2
	// TTFTFloor (seconds) keeps predictions positive and makes
	// never-observed endpoints maximally attractive, so compositions
	// explore every endpoint before trusting the learned ranking.
	TTFTFloor = 0.005
	// ttftLoadScale (tokens) converts outstanding work into a latency
	// multiplier: an endpoint carrying this many outstanding tokens is
	// expected to double its observed TTFT. It deliberately matches
	// OverloadSlack so the two mechanisms agree on what "loaded" means.
	ttftLoadScale = 8192
)

// TTFTScorer learns each endpoint's first-token latency as an EWMA fed
// through TTFTObserver, and scores by the negated load-inflated
// prediction — the learned half of the adaptive-ttft composition. It
// forgets a downed endpoint's EWMA (a respawned ID starts over).
type TTFTScorer[E Endpoint] struct {
	ewma map[int]float64 // endpoint ID -> learned TTFT, seconds
}

// NewTTFTScorer builds an empty learned-TTFT scorer.
func NewTTFTScorer[E Endpoint]() *TTFTScorer[E] {
	return &TTFTScorer[E]{ewma: map[int]float64{}}
}

func (s *TTFTScorer[E]) Name() string { return "ttft-ewma" }

// ObserveTTFT implements TTFTObserver.
func (s *TTFTScorer[E]) ObserveTTFT(replica int, ttft sim.Time) {
	v := ttft.Seconds()
	if old, ok := s.ewma[replica]; ok {
		v = old + ttftAlpha*(v-old)
	}
	s.ewma[replica] = v
}

// ReplicaDown implements DownObserver.
func (s *TTFTScorer[E]) ReplicaDown(id int) { delete(s.ewma, id) }

// Learned returns the endpoint's raw EWMA, if any observation seeded it.
func (s *TTFTScorer[E]) Learned(id int) (float64, bool) {
	v, ok := s.ewma[id]
	return v, ok
}

// Predict returns the TTFT a request routed to e would see: the learned
// EWMA (floored, so unseen endpoints win and get explored) scaled up by
// the endpoint's outstanding work.
func (s *TTFTScorer[E]) Predict(e E) float64 {
	base := TTFTFloor
	if v, ok := s.ewma[e.EndpointID()]; ok && v > base {
		base = v
	}
	return base * (1 + float64(e.OutstandingTokens())/ttftLoadScale)
}

func (s *TTFTScorer[E]) Score(r *workload.Request, view View[E], cands []E, out []float64) {
	for i, e := range cands {
		out[i] = -s.Predict(e)
	}
}

// ---- pickers ----

// maxScorePicker takes the lexicographically best score row, breaking
// full ties toward the first candidate (candidates arrive in ID order,
// so the lowest ID).
type maxScorePicker[E Endpoint] struct{}

// MaxScore returns the deterministic max-score picker.
func MaxScore[E Endpoint]() Picker[E] { return maxScorePicker[E]{} }

func (maxScorePicker[E]) Name() string { return "max-score" }

func (maxScorePicker[E]) Pick(r *workload.Request, cands []E, scores [][]float64) E {
	best := 0
	for i := 1; i < len(cands); i++ {
		for _, row := range scores {
			if row[i] > row[best] {
				best = i
				break
			}
			if row[i] < row[best] {
				break
			}
		}
	}
	return cands[best]
}

// roundRobinPicker cycles the candidate ring by stable endpoint ID: the
// next pick is the lowest ID above the last one served, wrapping to the
// lowest present. On a static fleet this is exactly index order; when
// the fleet resizes mid-run the ring stays fair — a positional cursor
// (next % len against a changing length) skews, repeating or starving
// endpoints across the resize.
type roundRobinPicker[E Endpoint] struct{ last int }

// RoundRobin returns a stateful ring-order picker. It ignores scores.
func RoundRobin[E Endpoint]() Picker[E] { return &roundRobinPicker[E]{last: -1} }

func (p *roundRobinPicker[E]) Name() string { return "round-robin" }

func (p *roundRobinPicker[E]) Pick(r *workload.Request, cands []E, scores [][]float64) E {
	for _, e := range cands {
		if e.EndpointID() > p.last {
			p.last = e.EndpointID()
			return e
		}
	}
	e := cands[0]
	p.last = e.EndpointID()
	return e
}

// ---- classifiers ----

// AffinityClassifier routes each request down one of three profiles:
// Sticky when the session's KV holder is reachable and healthy, Divert
// when the holder is reachable but overloaded, and Cold otherwise. It
// is the profile-selection half shared by the prefix-affinity and
// adaptive-ttft compositions.
type AffinityClassifier[E Endpoint] struct {
	aff                  *Affinity[E]
	sticky, divert, cold int
}

// NewAffinityClassifier builds the three-way sticky/divert/cold
// classifier over the given affinity state and profile indexes.
func NewAffinityClassifier[E Endpoint](aff *Affinity[E], sticky, divert, cold int) *AffinityClassifier[E] {
	return &AffinityClassifier[E]{aff: aff, sticky: sticky, divert: divert, cold: cold}
}

func (c *AffinityClassifier[E]) Name() string { return "affinity" }

func (c *AffinityClassifier[E]) Classify(r *workload.Request, view View[E]) int {
	e, ok := c.aff.StickyIn(r, view.Candidates)
	if !ok {
		return c.cold
	}
	if Overloaded(e, view.Candidates) {
		return c.divert
	}
	return c.sticky
}

// DefaultPDSplitTokens is the new-context length past which a request
// counts as long-prefill and takes the split path.
const DefaultPDSplitTokens = 4096

// PDClassifier is the paper's per-request aggregation-vs-disaggregation
// decision as a pre-request stage: sessions whose KV holder is healthy
// stay on it (the aggregated path, whatever the holder's role — the
// cache-hit estimate says serving anywhere else re-prefills the whole
// context), while cold or diverted requests are classified by the
// prefill work they will actually pay: prompts at or past the threshold
// take the Split profile (prefill-role pool), shorter ones the
// Aggregated profile.
type PDClassifier[E Endpoint] struct {
	aff                       *Affinity[E]
	threshold                 int
	sticky, split, aggregated int
}

// NewPDClassifier builds the P/D classifier; a threshold ≤ 0 selects
// DefaultPDSplitTokens.
func NewPDClassifier[E Endpoint](aff *Affinity[E], threshold, sticky, split, aggregated int) *PDClassifier[E] {
	if threshold <= 0 {
		threshold = DefaultPDSplitTokens
	}
	return &PDClassifier[E]{aff: aff, threshold: threshold,
		sticky: sticky, split: split, aggregated: aggregated}
}

func (c *PDClassifier[E]) Name() string { return "pd-split" }

func (c *PDClassifier[E]) Classify(r *workload.Request, view View[E]) int {
	if e, ok := c.aff.StickyIn(r, view.Candidates); ok && !Overloaded(e, view.Candidates) {
		return c.sticky
	}
	if r.InputTokens >= c.threshold {
		return c.split
	}
	return c.aggregated
}
