package epp

import (
	"muxwise/internal/kvcache"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Profile is one complete filter → scorer → picker chain. A pipeline
// holds one or more; the classifier chooses between them per request.
type Profile[E Endpoint] struct {
	// Name labels the profile in diagnostics ("sticky", "split", ...).
	Name string
	// Filters run in order over the candidate set.
	Filters []Filter[E]
	// Scorers holds the scorer tiers: within a tier weighted scores
	// sum, across tiers comparison is lexicographic.
	Scorers [][]Weighted[E]
	// Picker selects the endpoint; nil means MaxScore.
	Picker Picker[E]
}

// Pipeline is a composed router: an optional classifier over a set of
// profiles, plus the observer fan-out for every stateful stage wired
// into them. Pipelines keep per-run state (cursors, affinity maps,
// EWMAs) and scratch buffers, so every simulation needs its own.
type Pipeline[E Endpoint] struct {
	name       string
	classifier Classifier[E]
	profiles   []Profile[E]

	// Observer fan-out lists, deduplicated by identity: a stage shared
	// between profiles (or doubling as pipeline state) is notified once.
	down   []DownObserver
	ttft   []TTFTObserver
	mig    []MigrationObserver
	picked []PickObserver[E]

	// Per-pick scratch, reused across calls: two filter buffers
	// (alternated so a filter never appends into the slice it reads)
	// and one flat score arena carved into tier rows.
	filt   [2][]E
	rows   [][]float64
	rowBuf []float64
}

// New builds a pipeline from its stages. Every distinct stage object —
// classifier, filters, scorers, picker, plus any extra state passed
// through state (e.g. a shared Affinity) — that implements an observer
// interface is wired into the corresponding fan-out exactly once.
// A nil Picker in a profile defaults to MaxScore.
func New[E Endpoint](name string, classifier Classifier[E], profiles []Profile[E], state ...any) *Pipeline[E] {
	if name == "" {
		panic("epp: pipeline needs a name")
	}
	if len(profiles) == 0 {
		panic("epp: pipeline needs at least one profile")
	}
	p := &Pipeline[E]{name: name, classifier: classifier, profiles: profiles}
	seen := map[any]bool{}
	register := func(obj any) {
		if obj == nil || seen[obj] {
			return
		}
		seen[obj] = true
		if o, ok := obj.(DownObserver); ok {
			p.down = append(p.down, o)
		}
		if o, ok := obj.(TTFTObserver); ok {
			p.ttft = append(p.ttft, o)
		}
		if o, ok := obj.(MigrationObserver); ok {
			p.mig = append(p.mig, o)
		}
		if o, ok := obj.(PickObserver[E]); ok {
			p.picked = append(p.picked, o)
		}
	}
	if classifier != nil {
		register(classifier)
	}
	for i := range p.profiles {
		prof := &p.profiles[i]
		if prof.Picker == nil {
			prof.Picker = MaxScore[E]()
		}
		for _, f := range prof.Filters {
			register(f)
		}
		for _, tier := range prof.Scorers {
			for _, w := range tier {
				register(w.Scorer)
			}
		}
		register(prof.Picker)
	}
	for _, s := range state {
		register(s)
	}
	return p
}

// Name returns the pipeline's registered name.
func (p *Pipeline[E]) Name() string { return p.name }

// Pick routes one request: classify → filter → score → pick, then
// notifies PickObservers. An empty candidate view returns the zero E
// without consulting any stage — the cluster queues arrivals while
// nothing is routable, and the plugin seam does not promise callers a
// non-empty view — and records nothing.
func (p *Pipeline[E]) Pick(r *workload.Request, view View[E]) E {
	var zero E
	cands := view.Candidates
	if len(cands) == 0 {
		return zero
	}
	prof := &p.profiles[0]
	if p.classifier != nil {
		if i := p.classifier.Classify(r, view); i >= 0 && i < len(p.profiles) {
			prof = &p.profiles[i]
		}
	}
	// Filters alternate between the two scratch buffers; a filter whose
	// output would be empty is skipped (cands keeps the previous set),
	// which also guarantees the skipped filter's buffer is free for the
	// next stage.
	buf := 0
	for _, f := range prof.Filters {
		out := f.Filter(r, view, cands, p.filt[buf][:0])
		p.filt[buf] = out[:0]
		if len(out) > 0 {
			cands = out
			buf ^= 1
		}
	}
	var scores [][]float64
	if n := len(cands); len(prof.Scorers) > 0 && n > 1 {
		// One flat arena carved into len(tiers) rows plus a scratch row
		// for weighted accumulation.
		need := (len(prof.Scorers) + 1) * n
		if cap(p.rowBuf) < need {
			p.rowBuf = make([]float64, need)
		}
		arena := p.rowBuf[:need]
		tmp := arena[len(prof.Scorers)*n:]
		p.rows = p.rows[:0]
		for t, tier := range prof.Scorers {
			row := arena[t*n : (t+1)*n]
			if len(tier) == 1 && tier[0].Weight == 1 {
				// The common single-scorer tier scores straight into its
				// row — bit-exact with the legacy monolith comparisons.
				tier[0].Scorer.Score(r, view, cands, row)
			} else {
				for i := range row {
					row[i] = 0
				}
				for _, w := range tier {
					w.Scorer.Score(r, view, cands, tmp)
					for i := 0; i < n; i++ {
						row[i] += w.Weight * tmp[i]
					}
				}
			}
			p.rows = append(p.rows, row)
		}
		scores = p.rows
	}
	picked := prof.Picker.Pick(r, cands, scores)
	for _, o := range p.picked {
		o.Picked(r, picked)
	}
	return picked
}

// ReplicaDown fans the signal out to every stage keyed by endpoint ID.
func (p *Pipeline[E]) ReplicaDown(id int) {
	for _, o := range p.down {
		o.ReplicaDown(id)
	}
}

// ObserveTTFT fans the first-token latency out to every learning stage.
func (p *Pipeline[E]) ObserveTTFT(replica int, ttft sim.Time) {
	for _, o := range p.ttft {
		o.ObserveTTFT(replica, ttft)
	}
}

// SessionMigrated fans the KV hand-off out to every affinity stage.
func (p *Pipeline[E]) SessionMigrated(session, from, to int, pages []kvcache.PageID) {
	for _, o := range p.mig {
		o.SessionMigrated(session, from, to, pages)
	}
}
