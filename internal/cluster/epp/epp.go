// Package epp is the composable endpoint-picker pipeline behind the
// fleet routers: llm-d's EPP decomposition (filter → scorer → picker,
// with an optional pre-request classifier choosing between profiles)
// expressed over this repo's deterministic simulation.
//
// A routing decision flows through one Profile:
//
//   - Filters narrow the candidate set (role pools, session stickiness,
//     shedding an overloaded holder). A filter that would empty the set
//     is skipped, so a pipeline can always place a request somewhere.
//   - Scorers assign each surviving candidate a float score, higher is
//     better. Scorers are arranged in tiers: within a tier, weighted
//     scores sum; across tiers, comparison is lexicographic (a later
//     tier only breaks ties left by the earlier ones). Single-scorer
//     tiers reproduce the legacy monoliths' exact tie-break chains
//     without floating-point epsilon games.
//   - The Picker turns scores into one endpoint. MaxScore (the default)
//     takes the lexicographically best row and breaks remaining ties
//     toward the first candidate — candidates arrive in ID order, so
//     that is the lowest ID. RoundRobin ignores scores and cycles the
//     candidate ring by stable endpoint ID.
//
// The paper's per-request aggregation-vs-disaggregation choice is a
// Classifier: it inspects the request (prompt length, session
// cache-hit estimate) and selects which profile — aggregated pool or
// split pool — handles it.
//
// Pipelines are generic over the Endpoint they route across, so the
// package has no dependency on the cluster's replica type (the cluster
// instantiates it with *cluster.Replica). Everything here runs inside
// the deterministic event loop: no wall clock, no unseeded randomness,
// no map-order-dependent decisions.
package epp

import (
	"muxwise/internal/kvcache"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Role marks what an endpoint is specialised for. The pd-split
// composition steers long-prefill requests to RolePrefill endpoints;
// role-blind compositions ignore it. cluster.Role aliases this type so
// pipeline stages and fleet specs share one vocabulary.
type Role int

const (
	// RoleGeneral endpoints take any request.
	RoleGeneral Role = iota
	// RolePrefill endpoints are provisioned for prefill-heavy traffic
	// (e.g. disaggregated engines with a dedicated prefill instance).
	RolePrefill
	// RoleDecode endpoints are provisioned for decode-heavy traffic.
	RoleDecode
)

// String renders the role.
func (r Role) String() string {
	switch r {
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	default:
		return "general"
	}
}

// Endpoint is what a pipeline routes across: a stable identity plus the
// load counters the built-in scorers read. The cluster's *Replica
// implements it; unit tests use lightweight fakes.
type Endpoint interface {
	comparable
	// EndpointID is the stable identity state is keyed by — never key
	// by position in the candidate slice, which changes as the fleet
	// controller mutates the fleet.
	EndpointID() int
	// EndpointRole tags what the endpoint is specialised for.
	EndpointRole() Role
	// OutstandingTokens is the endpoint's in-flight input+output token
	// load.
	OutstandingTokens() int64
	// InFlight is the endpoint's in-flight request count.
	InFlight() int
}

// View is the read-only context a pipeline sees at each arrival.
type View[E Endpoint] struct {
	// Now is the simulation instant of the routing decision.
	Now sim.Time
	// Candidates are the routable endpoints in ID order. The slice is a
	// scratch buffer rebuilt per arrival; stages must not retain it.
	Candidates []E
}

// Filter narrows the candidate set. Implementations append survivors to
// out (which arrives empty with reusable capacity) and return it; a
// filter that keeps everything appends all of cands. Returning an empty
// slice rejects the filter: the pipeline keeps the pre-filter set, so a
// too-strict stage degrades to a no-op instead of stranding the
// request.
type Filter[E Endpoint] interface {
	Name() string
	Filter(r *workload.Request, view View[E], cands []E, out []E) []E
}

// Scorer assigns each candidate a score, higher is better. Score must
// write out[i] for every i < len(cands); out arrives unzeroed.
type Scorer[E Endpoint] interface {
	Name() string
	Score(r *workload.Request, view View[E], cands []E, out []float64)
}

// Weighted pairs a scorer with its weight inside a tier.
type Weighted[E Endpoint] struct {
	Scorer Scorer[E]
	Weight float64
}

// Picker selects one endpoint from the filtered candidates. scores
// holds one row per scorer tier (scores[t][i] is candidate i's tier-t
// score); it is nil when the profile has no scorers or only one
// candidate survived filtering. cands is never empty.
type Picker[E Endpoint] interface {
	Name() string
	Pick(r *workload.Request, cands []E, scores [][]float64) E
}

// Classifier is the pre-request stage: it inspects the arriving request
// and selects which profile routes it, by index into the pipeline's
// profile list. An out-of-range result falls back to profile 0.
type Classifier[E Endpoint] interface {
	Name() string
	Classify(r *workload.Request, view View[E]) int
}

// DownObserver is implemented by stages and state that key anything by
// endpoint ID: ReplicaDown fires when an endpoint fails or retires so
// the state can be forgotten (the KV held there is gone).
type DownObserver interface {
	ReplicaDown(id int)
}

// TTFTObserver is implemented by stages that learn from observed
// latency: each request's first-token latency is reported against the
// endpoint that served it, at the instant the token is emitted.
type TTFTObserver interface {
	ObserveTTFT(replica int, ttft sim.Time)
}

// MigrationObserver is implemented by stages that track session →
// endpoint affinity: SessionMigrated fires when a session's KV finished
// streaming to a new holder, so the pin can follow the KV.
type MigrationObserver interface {
	SessionMigrated(session, from, to int, pages []kvcache.PageID)
}

// PickObserver is implemented by state that records routing decisions —
// the shared Affinity pins sessions and indexes pages this way. Picked
// fires after every successful pick, including sticky re-picks.
type PickObserver[E Endpoint] interface {
	Picked(r *workload.Request, picked E)
}
