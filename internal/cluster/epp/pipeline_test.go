package epp

import (
	"testing"

	"muxwise/internal/kvcache"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// ep is a minimal Endpoint for pipeline unit tests.
type ep struct {
	id   int
	role Role
	out  int64
	reqs int
}

func (e *ep) EndpointID() int          { return e.id }
func (e *ep) EndpointRole() Role       { return e.role }
func (e *ep) OutstandingTokens() int64 { return e.out }
func (e *ep) InFlight() int            { return e.reqs }

func fleet(n int) []*ep {
	out := make([]*ep, n)
	for i := range out {
		out[i] = &ep{id: i}
	}
	return out
}

func vw(cands []*ep) View[*ep] { return View[*ep]{Candidates: cands} }

func req(id, session int) *workload.Request {
	return &workload.Request{ID: id, Session: session, InputTokens: 100, OutputTokens: 10}
}

func pages(ids ...uint64) []kvcache.PageID {
	out := make([]kvcache.PageID, len(ids))
	for i, id := range ids {
		out[i] = kvcache.PageID(id)
	}
	return out
}

func TestPipelineEmptyViewReturnsZero(t *testing.T) {
	p := New("t", nil, []Profile[*ep]{{Name: "all"}})
	if got := p.Pick(req(0, 0), vw(nil)); got != nil {
		t.Fatalf("empty view picked %v, want nil", got)
	}
}

// fixedScorer scores each candidate by a per-ID table (default 0).
type fixedScorer struct{ byID map[int]float64 }

func (s *fixedScorer) Name() string { return "fixed" }
func (s *fixedScorer) Score(r *workload.Request, view View[*ep], cands []*ep, out []float64) {
	for i, e := range cands {
		out[i] = s.byID[e.id]
	}
}

func TestScorerTiersAreLexicographic(t *testing.T) {
	// Tier 1 ties endpoints 1 and 2 above 0; tier 2 must break the tie
	// toward 2 without letting 0's huge tier-2 score matter.
	tier1 := &fixedScorer{byID: map[int]float64{0: 0, 1: 5, 2: 5}}
	tier2 := &fixedScorer{byID: map[int]float64{0: 1000, 1: 0, 2: 1}}
	p := New("t", nil, []Profile[*ep]{{
		Scorers: [][]Weighted[*ep]{
			{{Scorer: tier1, Weight: 1}},
			{{Scorer: tier2, Weight: 1}},
		},
	}})
	if got := p.Pick(req(0, 0), vw(fleet(3))); got.id != 2 {
		t.Fatalf("picked %d, want 2 (tier-2 tie-break, not tier-2 dominance)", got.id)
	}
}

func TestWeightedTierBlends(t *testing.T) {
	// One tier, two weighted scorers: 2*a + 1*b. Endpoint 0: 2*1+4=6;
	// endpoint 1: 2*2+1=5 — the blend must pick 0 even though b alone
	// prefers it and a alone prefers 1.
	a := &fixedScorer{byID: map[int]float64{0: 1, 1: 2}}
	b := &fixedScorer{byID: map[int]float64{0: 4, 1: 1}}
	p := New("t", nil, []Profile[*ep]{{
		Scorers: [][]Weighted[*ep]{{
			{Scorer: a, Weight: 2},
			{Scorer: b, Weight: 1},
		}},
	}})
	if got := p.Pick(req(0, 0), vw(fleet(2))); got.id != 0 {
		t.Fatalf("picked %d, want the weighted-sum winner 0", got.id)
	}
}

func TestMaxScoreTiesGoToLowestID(t *testing.T) {
	p := New("t", nil, []Profile[*ep]{{
		Scorers: [][]Weighted[*ep]{{{Scorer: &fixedScorer{}, Weight: 1}}},
	}})
	if got := p.Pick(req(0, 0), vw(fleet(4))); got.id != 0 {
		t.Fatalf("all-tied pick %d, want lowest ID 0", got.id)
	}
}

// dropAll is a filter that always empties the candidate set.
type dropAll struct{}

func (dropAll) Name() string { return "drop-all" }
func (dropAll) Filter(r *workload.Request, view View[*ep], cands []*ep, out []*ep) []*ep {
	return out
}

func TestEmptyFilterResultIsSkipped(t *testing.T) {
	// A filter that would strand the request degrades to a no-op; the
	// following role filter still sees the full set.
	p := New("t", nil, []Profile[*ep]{{
		Filters: []Filter[*ep]{dropAll{}, KeepRoles[*ep](RolePrefill)},
	}})
	reps := fleet(3)
	reps[2].role = RolePrefill
	if got := p.Pick(req(0, 0), vw(reps)); got.id != 2 {
		t.Fatalf("picked %d, want the prefill endpoint 2", got.id)
	}
}

func TestKeepRolesFallsBackWhenPoolEmpty(t *testing.T) {
	p := New("t", nil, []Profile[*ep]{{
		Filters: []Filter[*ep]{KeepRoles[*ep](RoleDecode)},
	}})
	// No decode endpoints: the pool falls back to everyone, lowest ID
	// wins.
	if got := p.Pick(req(0, 0), vw(fleet(2))); got.id != 0 {
		t.Fatalf("picked %d, want fallback to the full set", got.id)
	}
}

func TestRoundRobinPickerRingOrder(t *testing.T) {
	p := New("t", nil, []Profile[*ep]{{Picker: RoundRobin[*ep]()}})
	reps := fleet(3)
	want := []int{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := p.Pick(req(i, 0), vw(reps)); got.id != w {
			t.Fatalf("pick %d = %d, want %d", i, got.id, w)
		}
	}
	// Drop ID 1: the ring continues from the last-served ID.
	shrunk := []*ep{reps[0], reps[2]}
	for i, w := range []int{2, 0, 2} {
		if got := p.Pick(req(10+i, 0), vw(shrunk)); got.id != w {
			t.Fatalf("post-drain pick %d = %d, want %d", i, got.id, w)
		}
	}
}

func TestAffinityRecordsPicksAndForgets(t *testing.T) {
	aff := NewAffinity[*ep]()
	p := New("t", NewAffinityClassifier(aff, 0, 1, 2), []Profile[*ep]{
		{Name: "sticky", Filters: []Filter[*ep]{StickySession(aff)}},
		{Name: "divert", Filters: []Filter[*ep]{Divert(aff, false)},
			Scorers: [][]Weighted[*ep]{{{Scorer: LeastTokens[*ep](), Weight: 1}}}},
		{Name: "cold",
			Scorers: [][]Weighted[*ep]{{{Scorer: LeastTokens[*ep](), Weight: 1}}}},
	}, aff)
	reps := fleet(3)
	reps[0].out = 50 // cold pick must go to 1 (least loaded tie → lowest)

	turn := func(n int) *workload.Request {
		r := req(n, 7)
		r.AllPages = pages(1, 2, 3)
		return r
	}
	home := p.Pick(turn(0), vw(reps))
	if home.id != 1 {
		t.Fatalf("cold pick went to %d, want least-loaded 1", home.id)
	}
	if id, ok := aff.Holder(7); !ok || id != 1 {
		t.Fatalf("Holder(7) = %d,%v after pick, want 1", id, ok)
	}
	if p.Pick(turn(1), vw(reps)) != home {
		t.Fatal("healthy session must stay sticky")
	}
	// Overload the holder: the divert profile sheds the session.
	home.out = 1 << 20
	if got := p.Pick(turn(2), vw(reps)); got == home {
		t.Fatal("overloaded holder must shed the session")
	}
	// The dead holder's pins and index vanish together.
	aff.ReplicaDown(2)
	if id, ok := aff.Holder(7); ok && id == 2 {
		t.Fatal("ReplicaDown left the session pinned to the dead endpoint")
	}
	if aff.Match(2, pages(1, 2, 3)) != 0 {
		t.Fatal("ReplicaDown left the dead endpoint's prefix index advertising pages")
	}
}

func TestAffinityMigrationRehomesPin(t *testing.T) {
	aff := NewAffinity[*ep]()
	reps := fleet(2)
	r := req(0, 3)
	r.AllPages = pages(10, 11)
	aff.Picked(r, reps[0])
	aff.SessionMigrated(3, 0, 1, pages(10, 11))
	if id, _ := aff.Holder(3); id != 1 {
		t.Fatalf("pin did not follow the KV: holder %d, want 1", id)
	}
	if aff.Match(1, pages(10, 11)) != 2 {
		t.Fatal("destination index must advertise the migrated pages")
	}
	// A newer pin wins over a stale migration completion.
	aff.Picked(req(1, 3), reps[0])
	aff.SessionMigrated(3, 1, 0, nil) // from matches? no: current pin is 0 already
	aff.SessionMigrated(3, 1, 1, nil) // stale: pin is 0, from is 1 — must not move
	if id, _ := aff.Holder(3); id != 0 {
		t.Fatalf("stale migration moved the pin to %d, want 0", id)
	}
}

func TestTTFTScorerLearnsAndForgets(t *testing.T) {
	s := NewTTFTScorer[*ep]()
	e := &ep{id: 4}
	// Unseen: prediction is the floor.
	if got := s.Predict(e); got != TTFTFloor {
		t.Fatalf("cold prediction %v, want floor %v", got, TTFTFloor)
	}
	s.ObserveTTFT(4, 2*sim.Second)
	if v, ok := s.Learned(4); !ok || v <= 0 {
		t.Fatalf("Learned(4) = %v,%v after observation", v, ok)
	}
	if got := s.Predict(e); got <= TTFTFloor {
		t.Fatalf("slow endpoint prediction %v should exceed the floor", got)
	}
	// Load inflates the prediction.
	base := s.Predict(e)
	e.out = 1 << 20
	if got := s.Predict(e); got <= base {
		t.Fatalf("loaded prediction %v should exceed idle %v", got, base)
	}
	s.ReplicaDown(4)
	if _, ok := s.Learned(4); ok {
		t.Fatal("ReplicaDown should forget the EWMA")
	}
}

// TestPrefixIndexRingStaysBounded is the eviction-leak regression test:
// the historical FIFO (order = order[1:]) kept the backing array of
// every page ever appended alive; the ring buffer's capacity must stay
// at the limit through sustained eviction, while FIFO semantics
// (oldest out first) hold.
func TestPrefixIndexRingStaysBounded(t *testing.T) {
	const limit = 64
	ix := NewPrefixIndex(limit)
	for start := uint64(0); start < 100*limit; start += 8 {
		ix.Add(pages(start, start+1, start+2, start+3, start+4, start+5, start+6, start+7))
	}
	if ix.Len() != limit {
		t.Fatalf("index holds %d pages, want the limit %d", ix.Len(), limit)
	}
	if c := ix.RingCap(); c > limit {
		t.Fatalf("ring capacity %d grew past the limit %d: eviction is pinning memory again", c, limit)
	}
	// FIFO: the newest `limit` pages are present, everything older gone.
	last := uint64(100*limit - 1)
	if got := ix.Match(pages(last)); got != 1 {
		t.Fatal("newest page missing from the index")
	}
	if got := ix.Match(pages(0)); got != 0 {
		t.Fatal("oldest page should have been evicted")
	}
	for pg := last; pg > last-limit; pg-- {
		if ix.Match(pages(pg)) != 1 {
			t.Fatalf("page %d inside the window was evicted", pg)
		}
	}
}

// TestLegacyFIFOPinsBackingArray pins why the ring exists: the
// reslicing idiom cannot keep its backing store at the limit — each
// cycle the slice walks off the front of its array (pinning the evicted
// head entries) until append reallocates past the limit, churning a
// fresh over-sized array every `limit` insertions.
func TestLegacyFIFOPinsBackingArray(t *testing.T) {
	const limit = 64
	order := make([]kvcache.PageID, 0)
	seen := map[kvcache.PageID]struct{}{}
	grew := 0
	for pg := uint64(0); pg < 100*limit; pg++ {
		if len(order) >= limit {
			delete(seen, order[0])
			order = order[1:] // the leak: the backing array keeps its head
		}
		seen[kvcache.PageID(pg)] = struct{}{}
		order = append(order, kvcache.PageID(pg))
		grew = max(grew, cap(order))
	}
	if grew <= limit {
		t.Fatalf("expected the legacy FIFO's backing array to outgrow the limit %d, saw cap %d", limit, grew)
	}
}

func TestPDClassifierRoutesByThresholdAndStickiness(t *testing.T) {
	aff := NewAffinity[*ep]()
	c := NewPDClassifier(aff, 0, 0, 1, 2) // default threshold
	reps := fleet(3)
	long := req(0, 9)
	long.InputTokens = DefaultPDSplitTokens
	short := req(1, 9)
	short.InputTokens = DefaultPDSplitTokens - 1

	if got := c.Classify(long, vw(reps)); got != 1 {
		t.Fatalf("long cold prompt classified %d, want split (1)", got)
	}
	if got := c.Classify(short, vw(reps)); got != 2 {
		t.Fatalf("short cold prompt classified %d, want aggregated (2)", got)
	}
	aff.Picked(long, reps[0])
	if got := c.Classify(long, vw(reps)); got != 0 {
		t.Fatalf("healthy pinned session classified %d, want sticky (0)", got)
	}
	reps[0].out = 1 << 20 // overload the holder: back to the length rule
	if got := c.Classify(long, vw(reps)); got != 1 {
		t.Fatalf("overloaded holder classified %d, want split (1)", got)
	}
}

func TestPipelineObserverFanOutDedupes(t *testing.T) {
	// A TTFT scorer appearing in two profiles and as explicit state must
	// receive each observation exactly once.
	s := NewTTFTScorer[*ep]()
	tiers := [][]Weighted[*ep]{{{Scorer: s, Weight: 1}}}
	p := New("t", nil, []Profile[*ep]{
		{Name: "a", Scorers: tiers},
		{Name: "b", Scorers: tiers},
	}, s)
	p.ObserveTTFT(0, sim.Second)
	v, ok := s.Learned(0)
	if !ok {
		t.Fatal("observation did not reach the scorer")
	}
	if want := 1.0; v != want {
		t.Fatalf("EWMA %v after one observation, want %v (double delivery?)", v, want)
	}
}
