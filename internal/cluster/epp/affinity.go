package epp

import (
	"muxwise/internal/kvcache"
	"muxwise/internal/workload"
)

// DefaultIndexLimit bounds each endpoint's approximate view of cached
// radix pages, mirroring the EPP's bounded prefix-cache scorer rather
// than the replicas' real radix trees.
const DefaultIndexLimit = 1 << 18

// PrefixIndex approximates which leading pages an endpoint has cached,
// with FIFO eviction over a fixed-capacity ring. The ring never grows
// past the limit: sustained eviction on a 1M-request replay keeps the
// backing array bounded, where the old slice-reslicing FIFO
// (order = order[1:]) pinned every page ever appended.
type PrefixIndex struct {
	limit int
	pages map[kvcache.PageID]struct{}
	ring  []kvcache.PageID
	head  int // next eviction / overwrite slot once the ring is full
}

// NewPrefixIndex builds an index evicting FIFO past limit pages; a
// limit ≤ 0 selects DefaultIndexLimit.
func NewPrefixIndex(limit int) *PrefixIndex {
	if limit <= 0 {
		limit = DefaultIndexLimit
	}
	return &PrefixIndex{limit: limit, pages: map[kvcache.PageID]struct{}{}}
}

// Match counts how many leading pages of the sequence the index holds.
func (ix *PrefixIndex) Match(pages []kvcache.PageID) int {
	n := 0
	for _, pg := range pages {
		if _, ok := ix.pages[pg]; !ok {
			break
		}
		n++
	}
	return n
}

// Add records pages the endpoint will cache once the request finishes,
// evicting the oldest entries FIFO once the limit is reached.
func (ix *PrefixIndex) Add(pages []kvcache.PageID) {
	for _, pg := range pages {
		if _, ok := ix.pages[pg]; ok {
			continue
		}
		if len(ix.ring) < ix.limit {
			ix.ring = append(ix.ring, pg)
		} else {
			delete(ix.pages, ix.ring[ix.head])
			ix.ring[ix.head] = pg
			ix.head++
			if ix.head == len(ix.ring) {
				ix.head = 0
			}
		}
		ix.pages[pg] = struct{}{}
	}
}

// Len reports how many pages the index currently holds.
func (ix *PrefixIndex) Len() int { return len(ix.pages) }

// RingCap reports the eviction ring's backing capacity — bounded by the
// limit, pinned by tests.
func (ix *PrefixIndex) RingCap() int { return cap(ix.ring) }

// Affinity is the shared session-stickiness and prefix-index state the
// affine compositions (prefix-affinity, pd-split, adaptive-ttft) route
// over. It is pure state, not a stage: filters and scorers read it, and
// it implements PickObserver / DownObserver / MigrationObserver so the
// pipeline keeps it current. State is keyed by endpoint ID, never by
// candidate position.
type Affinity[E Endpoint] struct {
	sessions map[int]int // session -> endpoint ID
	index    map[int]*PrefixIndex
	limit    int
}

// NewAffinity builds empty affinity state with DefaultIndexLimit-sized
// prefix indexes.
func NewAffinity[E Endpoint]() *Affinity[E] {
	return &Affinity[E]{sessions: map[int]int{}, index: map[int]*PrefixIndex{}, limit: DefaultIndexLimit}
}

// Holder returns the endpoint ID pinned to the session, if any.
func (a *Affinity[E]) Holder(session int) (int, bool) {
	id, ok := a.sessions[session]
	return id, ok
}

// StickyIn returns the candidate currently owning the request's
// session; ok is false when the session is unknown or its holder is not
// in the candidate set (starting, draining, failed, or retired).
func (a *Affinity[E]) StickyIn(r *workload.Request, cands []E) (E, bool) {
	var zero E
	id, ok := a.sessions[r.Session]
	if !ok {
		return zero, false
	}
	for _, e := range cands {
		if e.EndpointID() == id {
			return e, true
		}
	}
	return zero, false
}

// Match counts how many leading pages of the sequence the endpoint's
// index advertises.
func (a *Affinity[E]) Match(id int, pages []kvcache.PageID) int {
	ix := a.index[id]
	if ix == nil {
		return 0
	}
	return ix.Match(pages)
}

// Picked implements PickObserver: pin the session to the chosen
// endpoint and index the pages its radix cache will publish.
func (a *Affinity[E]) Picked(r *workload.Request, picked E) {
	id := picked.EndpointID()
	a.sessions[r.Session] = id
	ix := a.index[id]
	if ix == nil {
		ix = NewPrefixIndex(a.limit)
		a.index[id] = ix
	}
	ix.Add(r.AllPages)
}

// ReplicaDown implements DownObserver: forget everything pinned to a
// dead endpoint — sessions re-stick on their next turn (paying the KV
// re-prefill there), and the prefix index stops advertising pages that
// no longer exist anywhere.
func (a *Affinity[E]) ReplicaDown(id int) {
	for session, rep := range a.sessions {
		if rep == id {
			delete(a.sessions, session)
		}
	}
	delete(a.index, id)
}

// SessionMigrated implements MigrationObserver: re-home a session whose
// KV streamed to a new holder. The pin follows the KV (unless a turn
// already re-routed the session elsewhere mid-stream — then the newer
// pin wins), and the destination's index advertises the migrated pages
// either way, because they really are cached there now.
func (a *Affinity[E]) SessionMigrated(session, from, to int, pages []kvcache.PageID) {
	if cur, ok := a.sessions[session]; !ok || cur == from {
		a.sessions[session] = to
	}
	ix := a.index[to]
	if ix == nil {
		ix = NewPrefixIndex(a.limit)
		a.index[to] = ix
	}
	ix.Add(pages)
}
