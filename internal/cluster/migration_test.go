package cluster

import (
	"testing"

	"muxwise/internal/core"
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// drainHeavyCfg is the migration suite's reference scenario: a rolling
// restart of a 4-replica MuxWise fleet. Each wave spawns a replacement
// (ready just as its predecessor leaves, so capacity never dips) and
// drains an original replica — exactly the shape where stranded session
// KV matters, because every drained replica's multi-turn sessions
// re-route and would otherwise repay a full re-prefill on their next
// turn. With capacity held constant, the only difference between the
// re-prefill baseline and the migration run is how that KV moves.
func drainHeavyCfg(policy Policy, migrate bool) Config {
	cfg := Config{
		Base: serve.Config{
			Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B(),
			SLO: metrics.SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond},
		},
		Replicas: []ReplicaSpec{{Engine: "MuxWise", Factory: core.New, Count: 4}},
		Policy:   policy,
		Fleet: &FleetConfig{
			ColdStart: 5 * sim.Second,
			Events: []FleetEvent{
				{At: 35 * sim.Second, Kind: SpawnReplica},
				{At: 40 * sim.Second, Kind: DrainReplica, Replica: 0},
				{At: 75 * sim.Second, Kind: SpawnReplica},
				{At: 80 * sim.Second, Kind: DrainReplica, Replica: 1},
				{At: 115 * sim.Second, Kind: SpawnReplica},
				{At: 120 * sim.Second, Kind: DrainReplica, Replica: 2},
			},
		},
	}
	if migrate {
		cfg.Migration = MigrationConfig{Enabled: true}
	}
	return cfg
}

// conservation checks the migration token invariant on a finished run.
func conservation(t *testing.T, res Result) {
	t.Helper()
	m := res.Migration
	got := m.MigratedTokens + m.CanceledTokens + m.RePrefillTokens + m.UndeliveredTokens
	if got != m.DrainKVTokens {
		t.Errorf("KV not conserved: migrated %d + canceled %d + re-prefill %d + undelivered %d = %d, want drain-time in-flight KV %d",
			m.MigratedTokens, m.CanceledTokens, m.RePrefillTokens, m.UndeliveredTokens, got, m.DrainKVTokens)
	}
}

// TestMigrationConservation: for every graceful takedown, the in-flight
// KV observed at the drain instant is fully accounted for — migrated,
// canceled (crash mid-stream), fallen back to re-prefill, or still on
// the wire — across seeds and routers. Run under -race in CI.
func TestMigrationConservation(t *testing.T) {
	for _, policy := range []Policy{PrefixAffinity, AdaptiveTTFT, LeastTokens} {
		name := policy().Name()
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				res, err := Run(drainHeavyCfg(policy, true), mixedTrace(seed, 40, 0.3))
				if err != nil {
					t.Fatal(err)
				}
				conservation(t, res)
				if res.Migration.Streams == 0 {
					t.Errorf("seed %d: drain-heavy run started no KV streams", seed)
				}
				if res.Migration.MigratedTokens == 0 {
					t.Errorf("seed %d: no KV delivered", seed)
				}
			}
		})
	}
}

// TestMigrationDisabledIsInert: the zero MigrationConfig keeps the
// re-prefill-only behavior — no streams, no counters, no held requests.
func TestMigrationDisabledIsInert(t *testing.T) {
	res, err := Run(drainHeavyCfg(PrefixAffinity, false), mixedTrace(1, 40, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Migration != (MigrationStats{}) {
		t.Fatalf("migration disabled but stats non-zero: %+v", res.Migration)
	}
}

// TestMigrationBeatsRePrefill: on the drain-heavy rolling-restart
// scenario, streaming KV at the modeled NVLink cost must strictly beat
// repaying re-prefills on per-request SLO goodput — the
// transfer-vs-recompute tradeoff landing on the transfer side when the
// link is fast. The claim is pinned on the prefix-affinity router (the
// EPP-style default, and the seam SessionMigrated re-pins through):
// per seed the migration run is never worse, and across seeds it is
// strictly better. Learned routers also benefit on net but their
// exploration noise is of the same order as the per-seed margin, so
// they are exercised by the conservation suite instead.
func TestMigrationBeatsRePrefill(t *testing.T) {
	for _, policy := range []Policy{PrefixAffinity} {
		name := policy().Name()
		t.Run(name, func(t *testing.T) {
			slo := metrics.SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond}
			var baseTotal, migTotal int
			for seed := uint64(5); seed <= 9; seed++ {
				trace := func() *workload.Trace { return mixedTrace(seed, 60, 0.2) }
				base, err := Run(drainHeavyCfg(policy, false), trace())
				if err != nil {
					t.Fatal(err)
				}
				mig, err := Run(drainHeavyCfg(policy, true), trace())
				if err != nil {
					t.Fatal(err)
				}
				baseGood := mustWithinSLO(t, base, slo)
				migGood := mustWithinSLO(t, mig, slo)
				baseTotal += baseGood
				migTotal += migGood
				t.Logf("seed %d: within-SLO re-prefill %d vs migration %d; cache hit %.3f vs %.3f; migrated %d tokens, stall %v",
					seed, baseGood, migGood, base.CacheHit, mig.CacheHit,
					mig.Migration.MigratedTokens, mig.Migration.Stall)
				if mig.Migration.MigratedTokens == 0 {
					t.Errorf("seed %d: migration run delivered no KV", seed)
				}
				if migGood < baseGood {
					t.Errorf("seed %d: migration within-SLO goodput %d regressed below re-prefill baseline %d",
						seed, migGood, baseGood)
				}
			}
			if migTotal <= baseTotal {
				t.Errorf("migration within-SLO goodput %d not strictly above re-prefill baseline %d across seeds",
					migTotal, baseTotal)
			}
		})
	}
}

// mustWithinSLO counts per-request SLO conformance on a run.
func mustWithinSLO(t *testing.T, res Result, slo metrics.SLO) int {
	t.Helper()
	return res.Rec.WithinSLO(slo)
}

// TestFailDuringMigrationRePrefills is the crash-consistency guard: a
// replica that fails while its drain streams are still on the wire
// loses that KV — the streams cancel, nothing lands at the
// destination, and the sessions are charged the full re-prefill. The
// scenario is built by hand so the crash instant provably sits inside
// the stream's handoff window.
func TestFailDuringMigrationRePrefills(t *testing.T) {
	s := sim.New()
	cfg := drainHeavyCfg(PrefixAffinity, true)
	cfg.Base = cfg.Base.WithDefaults()
	cfg.Fleet = nil
	cfg.Replicas[0].Count = 3
	c, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pages := make([]kvcache.PageID, 520)
	for i := range pages {
		pages[i] = kvcache.PageID(i + 1)
	}
	req := &workload.Request{
		ID: 1, Session: 9, Arrival: 0,
		InputTokens: 8000, OutputTokens: 320,
		Pages:    pages[:500],
		AllPages: pages,
	}
	s.At(0, func() { c.Replicas[0].submit(req) })
	// Drain while the request is in flight: the replica stays draining
	// (not retired) and one stream is on the wire. The crash lands 2 ms
	// later, inside the 8 ms handoff window.
	s.At(sim.Second, func() {
		c.Drain(c.Replicas[0])
		if got := c.migStats.Streams; got != 1 {
			t.Fatalf("drain started %d streams, want 1", got)
		}
		if c.Replicas[0].State != StateDraining {
			t.Fatalf("source state %v, want draining", c.Replicas[0].State)
		}
	})
	s.At(sim.Second+2*sim.Millisecond, func() { c.Fail(c.Replicas[0]) })
	s.RunUntil(600 * sim.Second)

	m := c.migStats
	m.UndeliveredTokens = c.undeliveredTokens()
	if m.Canceled != 1 {
		t.Errorf("crash canceled %d of 1 in-progress streams; half-migrated KV must not survive", m.Canceled)
	}
	if m.MigratedTokens != 0 {
		t.Errorf("%d KV tokens landed from a replica that crashed mid-stream", m.MigratedTokens)
	}
	if m.CanceledTokens != m.DrainKVTokens {
		t.Errorf("canceled %d tokens, want the full drain-time KV %d re-prefilled", m.CanceledTokens, m.DrainKVTokens)
	}
	if got := m.MigratedTokens + m.CanceledTokens + m.RePrefillTokens + m.UndeliveredTokens; got != m.DrainKVTokens {
		t.Errorf("KV not conserved after crash: %d accounted, %d observed", got, m.DrainKVTokens)
	}
	for _, rep := range c.Replicas {
		if rep.kvIn != 0 {
			t.Errorf("replica %s reports %d migrated-in tokens after the source crashed", rep.Name, rep.kvIn)
		}
		if rep.migTokens != 0 {
			t.Errorf("replica %s still carries %d in-transit tokens after the cancel", rep.Name, rep.migTokens)
		}
	}
}

// TestMigrationOccupancy: while a stream is on the wire the destination
// carries the in-transit KV in its token load, and it drops off on
// arrival — the router-visible occupancy the issue's accounting demands.
func TestMigrationOccupancy(t *testing.T) {
	s := sim.New()
	cfg := drainHeavyCfg(PrefixAffinity, true)
	cfg.Base = cfg.Base.WithDefaults()
	cfg.Fleet = nil
	c, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pages := make([]kvcache.PageID, 260)
	for i := range pages {
		pages[i] = kvcache.PageID(i + 1)
	}
	req := &workload.Request{
		ID: 1, Session: 9, Arrival: 0,
		InputTokens: 4096, OutputTokens: 64,
		Pages:    pages[:256],
		AllPages: pages,
	}
	var before, during, after int64
	s.At(0, func() { c.Replicas[0].submit(req) })
	s.At(sim.Second, func() {
		before = c.Replicas[1].OutstandingTokens() + c.Replicas[2].OutstandingTokens() + c.Replicas[3].OutstandingTokens()
		c.Drain(c.Replicas[0])
		during = c.Replicas[1].MigratingTokens() + c.Replicas[2].MigratingTokens() + c.Replicas[3].MigratingTokens()
	})
	s.At(sim.Second+sim.Millisecond, func() {
		after = c.Replicas[1].MigratingTokens() + c.Replicas[2].MigratingTokens() + c.Replicas[3].MigratingTokens()
	})
	s.RunUntil(600 * sim.Second)
	if before != 0 {
		t.Fatalf("idle destinations carried %d outstanding tokens before the drain", before)
	}
	want := int64(req.InputTokens + req.OutputTokens)
	if during != want {
		t.Errorf("in-transit KV %d not counted against the destination at stream start (want %d)", during, want)
	}
	if after != want {
		t.Errorf("in-transit KV %d during 8 ms handoff window, want %d", after, want)
	}
	if got := c.migStats.MigratedTokens; got != want {
		t.Errorf("delivered %d tokens, want %d", got, want)
	}
	var landed int64
	for _, rep := range c.Replicas[1:] {
		landed += rep.MigratingTokens()
	}
	if landed != 0 {
		t.Errorf("in-transit counter %d after arrival, want 0", landed)
	}
}
