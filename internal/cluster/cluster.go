// Package cluster simulates a fleet of serving-engine replicas behind a
// pluggable request router, inside one deterministic event loop.
//
// The paper's MuxWise engine multiplexes prefill and decode within a
// single GPU group; a production deployment runs many such groups behind
// an endpoint picker that decides, per request, which replica should
// take it. That instance-assignment decision — prompt length, prefix
// cache-hit probability, per-pod load, aggregated vs disaggregated path
// (llm-d's EPP lifecycle) — is what this package models: N replicas,
// homogeneous or mixed (e.g. 6× MuxWise + 2× SGLang-PD), each a full
// serve.Instance embedded in a shared sim, with the Router consulted at
// every arrival.
//
// The fleet is lifecycle-managed, not fixed at construction: a
// FleetController processes scheduled events (SpawnReplica with a
// cold-start delay, DrainReplica, FailReplica, RetireReplica) and
// optional autoscaler policies inside the same event loop. A failing
// replica surfaces its in-flight requests for re-dispatch; the sessions
// pinned to it lose their KV and pay a full re-prefill on whichever
// replica they re-stick to — the KV-migration penalty, charged through
// the ordinary cache-hit machinery.
//
// Fleet-wide metrics reuse the single-instance machinery: per-replica
// recorders are merged (metrics.Merge) into one Summary, and
// Probe/Sweep/Goodput apply the same §4 goodput criterion (stable, ≥99%
// of TBT samples within SLO) to the merged view. Runs with fleet events
// additionally report per-epoch rollups: one metrics.Window plus a
// cache-hit rate per interval between fleet mutations.
package cluster

import (
	"fmt"
	"sync"

	"muxwise/internal/cluster/epp"
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/obs"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Role marks what a replica is specialised for. The pd-split router
// steers long-prefill requests to RolePrefill replicas; the other
// policies ignore roles. It aliases the pipeline package's Role so epp
// stages and fleet specs share one vocabulary.
type Role = epp.Role

const (
	// RoleGeneral replicas take any request.
	RoleGeneral = epp.RoleGeneral
	// RolePrefill replicas are provisioned for prefill-heavy traffic
	// (e.g. disaggregated engines with a dedicated prefill instance).
	RolePrefill = epp.RolePrefill
	// RoleDecode replicas are provisioned for decode-heavy traffic.
	RoleDecode = epp.RoleDecode
)

// ParseRole parses a role name; the empty string is RoleGeneral.
func ParseRole(s string) (Role, error) {
	switch s {
	case "", "general":
		return RoleGeneral, nil
	case "prefill":
		return RolePrefill, nil
	case "decode":
		return RoleDecode, nil
	}
	return RoleGeneral, fmt.Errorf("cluster: unknown role %q", s)
}

// State is a replica's position in its lifecycle.
type State int

const (
	// StateStarting replicas are spawned but still cold-starting
	// (loading weights, warming graphs); they take no traffic.
	StateStarting State = iota
	// StateReady replicas are serving and routable.
	StateReady
	// StateDraining replicas finish their in-flight requests but take no
	// new ones; an emptied draining replica retires automatically.
	StateDraining
	// StateFailed replicas crashed: their in-flight requests were
	// re-dispatched and their KV (and metrics past the failure) is gone.
	StateFailed
	// StateRetired replicas were decommissioned gracefully.
	StateRetired
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	case StateFailed:
		return "failed"
	case StateRetired:
		return "retired"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ReplicaSpec describes one shape of replica in the fleet.
type ReplicaSpec struct {
	// Engine is the display name ("MuxWise", "SGLang-PD", ...).
	Engine string
	// Factory builds the engine.
	Factory serve.Factory
	// Count is how many replicas of this shape to run (default 1).
	Count int
	// GPUs overrides the per-replica device count (default Base.GPUs).
	GPUs int
	// Hardware overrides the per-replica GPU spec (zero Name means
	// Base.Spec) — heterogeneous fleets mix A100 and H100 shapes behind
	// one router, each replica costed by its own spec.
	Hardware gpu.Spec
	// Role tags the replica for role-aware routers.
	Role Role
}

// Config describes a cluster deployment.
type Config struct {
	// Base carries the per-replica hardware, model, SLO and runner
	// knobs; ReplicaSpec.GPUs/Hardware override Base per shape.
	Base serve.Config
	// Replicas lists the initial fleet shapes in deployment order.
	Replicas []ReplicaSpec
	// Policy constructs the router; each run gets a fresh one (routers
	// keep state such as session maps and round-robin cursors).
	Policy Policy
	// Fleet optionally scripts lifecycle events and attaches an
	// autoscaler. Nil runs the initial fleet unchanged, exactly as
	// before.
	Fleet *FleetConfig
	// Migration enables KV streaming on graceful takedowns (drain,
	// retire, autoscaler scale-down) at the modeled interconnect cost.
	// The zero value keeps the re-prefill-only behavior.
	Migration MigrationConfig
}

// Replica is one engine instance plus the load bookkeeping routers
// score on.
type Replica struct {
	ID   int
	Name string
	Role Role
	Spec ReplicaSpec
	Inst *serve.Instance

	// State is the lifecycle position; ReadyAt/DownAt bracket the span
	// the replica served traffic (DownAt is zero while up).
	State   State
	ReadyAt sim.Time
	DownAt  sim.Time

	inFlight  int
	outTokens int64
	assigned  int
	reqs      map[int]*workload.Request // in-flight, by request ID

	// migTokens is in-transit migrated KV counted in outTokens until it
	// lands; kvIn/kvOut total the KV tokens this replica received/sent
	// over its life.
	migTokens   int64
	kvIn, kvOut int64

	// sessions maps each session whose latest completed turn ran here to
	// the context KV this replica's pool holds for it — what a graceful
	// takedown streams out. Maintained only when migration is enabled.
	sessions map[int]sessionKV

	// frozen* snapshot the replica's result and cache stats at the
	// instant it went down, excluding any ghost simulation work after.
	frozenResult *serve.Result
	frozenCache  *kvcache.Stats
}

// EndpointID implements epp.Endpoint: the stable identity pipeline
// stages key their state by.
func (r *Replica) EndpointID() int { return r.ID }

// EndpointRole implements epp.Endpoint.
func (r *Replica) EndpointRole() Role { return r.Role }

// InFlight returns how many routed requests have not finished.
func (r *Replica) InFlight() int { return r.inFlight }

// OutstandingTokens returns the input+output tokens of in-flight
// requests plus any in-transit migrated KV — the
// least-outstanding-tokens load signal.
func (r *Replica) OutstandingTokens() int64 { return r.outTokens }

// MigratingTokens returns the in-transit migrated KV currently counted
// against this replica's token load.
func (r *Replica) MigratingTokens() int64 { return r.migTokens }

// Assigned returns how many requests the router sent here in total.
func (r *Replica) Assigned() int { return r.assigned }

// routable reports whether the router may pick this replica.
func (r *Replica) routable() bool { return r.State == StateReady }

// down reports whether the replica has left the fleet for good.
func (r *Replica) down() bool { return r.State == StateFailed || r.State == StateRetired }

// submit routes a request into the replica at (or after) its arrival.
func (r *Replica) submit(req *workload.Request) {
	r.assigned++
	r.inFlight++
	r.outTokens += int64(req.InputTokens + req.OutputTokens)
	r.reqs[req.ID] = req
	r.Inst.Submit(req)
}

// finish is the completion callback wired into the instance recorder.
func (r *Replica) finish(id int) {
	req, ok := r.reqs[id]
	if !ok {
		return
	}
	delete(r.reqs, id)
	r.inFlight--
	r.outTokens -= int64(req.InputTokens + req.OutputTokens)
}

// result snapshots the replica's serve result, preferring the frozen
// view captured at the instant it went down.
func (r *Replica) result(now sim.Time) serve.Result {
	if r.frozenResult != nil {
		return *r.frozenResult
	}
	return r.Inst.Result(now)
}

// cacheStats returns cache statistics, frozen at down-time for dead
// replicas so ghost work cannot leak into fleet rollups.
func (r *Replica) cacheStats() kvcache.Stats {
	if r.frozenCache != nil {
		return *r.frozenCache
	}
	return r.Inst.CacheStats()
}

// LogEntry is one timestamped fleet lifecycle message.
type LogEntry struct {
	At  sim.Time
	Msg string
}

// epochMark opens a fleet epoch: the instant, what changed, and
// snapshots of the fleet state needed for per-epoch deltas.
type epochMark struct {
	at       sim.Time
	label    string
	ready    int
	cache    kvcache.Stats
	migrated int64    // cumulative migrated KV tokens at the mark
	migStall sim.Time // cumulative migration stall at the mark
}

// Cluster is a replica fleet sharing one simulator. Replicas holds every
// replica ever created, in spawn order; IDs are stable indexes into it.
type Cluster struct {
	Sim      *sim.Sim
	Replicas []*Replica
	Router   Router

	base    serve.Config
	nameSeq map[string]int

	// pending holds requests that arrived while no replica was routable;
	// they flush, in order, as soon as one becomes ready.
	pending []*workload.Request

	// routableBuf is the scratch slice Routable rebuilds per arrival.
	routableBuf []*Replica

	// ttftScratch pools per-tick TTFT samples across replicas (TTFTTail).
	ttftScratch []float64

	log   []LogEntry
	marks []epochMark

	// failures counts FailReplica events applied.
	failures int

	// KV migration state: configuration, the derived per-token wire
	// size, every stream started, running totals, how many re-dispatched
	// requests are held on the wire right now, and which replica holds
	// each live session's KV (maintained only when migration is enabled).
	migCfg          MigrationConfig
	kvBytesPerToken float64
	migs            []*migration
	migStats        MigrationStats
	migHeld         int
	kvHolder        map[int]int

	// trace is the flight recorder (nil when tracing is off); fleet
	// lifecycle, router picks and migration streams are emitted here.
	// crashedReqs / heldReqs remember which requests were ever aborted
	// off a failed replica or held on a KV-migration stream — the
	// diagnostics rollup attributes their SLO misses to those causes.
	trace       *obs.Tracer
	crashedReqs map[int]bool
	heldReqs    map[int]bool
}

// validate checks the config without constructing any engine.
func validate(cfg Config) error {
	if len(cfg.Replicas) == 0 {
		return fmt.Errorf("cluster: no replicas configured")
	}
	if cfg.Policy == nil {
		return fmt.Errorf("cluster: no router policy configured")
	}
	for _, spec := range cfg.Replicas {
		if spec.Factory == nil {
			return fmt.Errorf("cluster: replica spec %q has no factory", spec.Engine)
		}
	}
	if cfg.Fleet != nil {
		initial := 0
		for _, spec := range cfg.Replicas {
			n := spec.Count
			if n <= 0 {
				n = 1
			}
			initial += n
		}
		if err := cfg.Fleet.validate(initial); err != nil {
			return err
		}
	}
	return nil
}

// New expands the config into a fleet inside the shared simulator s. The
// initial replicas are ready at time zero; cfg.Fleet events and
// autoscaling are attached by Run, which owns the whole lifecycle of a
// trace replay.
func New(s *sim.Sim, cfg Config) (*Cluster, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	c := &Cluster{
		Sim: s, Router: cfg.Policy(), base: cfg.Base,
		nameSeq: map[string]int{}, kvHolder: map[int]int{},
		trace:       cfg.Base.Trace,
		crashedReqs: map[int]bool{}, heldReqs: map[int]bool{},
	}
	c.migCfg = cfg.Migration
	if c.migCfg.Handoff <= 0 {
		c.migCfg.Handoff = kvcache.DefaultHandoff
	}
	c.kvBytesPerToken = cfg.Migration.BytesPerToken
	if c.kvBytesPerToken <= 0 {
		c.kvBytesPerToken = cfg.Base.Arch.KVBytesPerToken()
	}
	for _, spec := range cfg.Replicas {
		count := spec.Count
		if count <= 0 {
			count = 1
		}
		for i := 0; i < count; i++ {
			rep := c.addReplica(spec)
			rep.State = StateReady
		}
	}
	c.mark("start")
	if c.trace != nil {
		c.trace.Counter(0, "fleet", "replicas", obs.Arg{Key: "ready", Val: c.readyCount()})
	}
	return c, nil
}

// readyCount counts routable (ready) replicas — the series the fleet
// track's replica counter samples.
func (c *Cluster) readyCount() int {
	n := 0
	for _, rep := range c.Replicas {
		if rep.State == StateReady {
			n++
		}
	}
	return n
}

// traceFleet emits one fleet-track instant plus a fresh sample of the
// ready-replica counter. No-op when tracing is off.
func (c *Cluster) traceFleet(name string, args ...obs.Arg) {
	if c.trace == nil {
		return
	}
	now := c.Sim.Now()
	c.trace.Instant(now, "fleet", name, args...)
	c.trace.Counter(now, "fleet", "replicas", obs.Arg{Key: "ready", Val: c.readyCount()})
}

// addReplica constructs one replica (in StateStarting) and appends it to
// the fleet.
func (c *Cluster) addReplica(spec ReplicaSpec) *Replica {
	base := c.base
	if spec.GPUs > 0 {
		base.GPUs = spec.GPUs
	}
	if spec.Hardware.Name != "" {
		base.Spec = spec.Hardware
	}
	seq := c.nameSeq[spec.Engine]
	c.nameSeq[spec.Engine] = seq + 1
	rep := &Replica{
		ID:       len(c.Replicas),
		Name:     fmt.Sprintf("%s-%d", spec.Engine, seq),
		Role:     spec.Role,
		Spec:     spec,
		State:    StateStarting,
		reqs:     map[int]*workload.Request{},
		sessions: map[int]sessionKV{},
	}
	rep.Inst = serve.NewInstance(c.Sim, spec.Factory, base, rep.Name)
	rep.Inst.OnFinish(func(id int, at sim.Time) {
		req := rep.reqs[id]
		rep.finish(id)
		if req != nil {
			c.trackKV(rep, req)
		}
		if rep.State == StateDraining && rep.inFlight == 0 {
			c.retireDrained(rep)
		}
	})
	if obs, ok := c.Router.(TTFTObserver); ok {
		rep.Inst.OnFirstToken(func(id int, ttft sim.Time) {
			obs.ObserveTTFT(rep.ID, ttft)
		})
	}
	c.Replicas = append(c.Replicas, rep)
	return rep
}

// Replica returns the replica with the given ID, or nil.
func (c *Cluster) Replica(id int) *Replica {
	if id < 0 || id >= len(c.Replicas) {
		return nil
	}
	return c.Replicas[id]
}

// Routable returns the replicas the router may currently pick, in ID
// order. The slice is a scratch buffer valid until the next call — it
// is rebuilt on every arrival, so callers (routers) must not retain it.
func (c *Cluster) Routable() []*Replica {
	out := c.routableBuf[:0]
	for _, rep := range c.Replicas {
		if rep.routable() {
			out = append(out, rep)
		}
	}
	c.routableBuf = out
	return out
}

// countState returns how many replicas are in the given state.
func (c *Cluster) countState(s State) int {
	n := 0
	for _, rep := range c.Replicas {
		if rep.State == s {
			n++
		}
	}
	return n
}

// logf appends a timestamped entry to the fleet log.
func (c *Cluster) logf(format string, args ...any) {
	c.log = append(c.log, LogEntry{At: c.Sim.Now(), Msg: fmt.Sprintf(format, args...)})
}

// mark opens a new fleet epoch at the current instant.
func (c *Cluster) mark(label string) {
	c.marks = append(c.marks, epochMark{
		at:       c.Sim.Now(),
		label:    label,
		ready:    c.countState(StateReady),
		cache:    c.aggCache(),
		migrated: c.migStats.MigratedTokens,
		migStall: c.migStats.Stall,
	})
}

// aggCache sums cache statistics across the fleet, using down replicas'
// frozen snapshots.
func (c *Cluster) aggCache() kvcache.Stats {
	var agg kvcache.Stats
	for _, rep := range c.Replicas {
		cs := rep.cacheStats()
		agg.Lookups += cs.Lookups
		agg.HitTokens += cs.HitTokens
		agg.MissTokens += cs.MissTokens
		agg.Evictions += cs.Evictions
		agg.Inserts += cs.Inserts
	}
	return agg
}

// Submit routes one request to the replica the router picks. It must be
// called from inside the simulation, at the request's arrival time or
// later (re-dispatch). When no replica is routable the request queues
// and flushes as soon as one becomes ready; it returns nil in that case.
func (c *Cluster) Submit(r *workload.Request) *Replica {
	cands := c.Routable()
	if len(cands) == 0 {
		if c.trace != nil {
			c.trace.Instant(c.Sim.Now(), "router", "queued-unrouted",
				obs.Arg{Key: "req", Val: r.ID}, obs.Arg{Key: "session", Val: r.Session})
		}
		c.pending = append(c.pending, r)
		return nil
	}
	rep := c.Router.Pick(r, FleetView{Now: c.Sim.Now(), Candidates: cands, c: c})
	if rep == nil || !rep.routable() {
		rep = cands[0]
	}
	if c.trace != nil {
		// One pick record per placement, carrying each candidate's load
		// score at decision time so the choice is explainable post hoc.
		args := make([]obs.Arg, 0, len(cands)+3)
		args = append(args,
			obs.Arg{Key: "req", Val: r.ID},
			obs.Arg{Key: "input_tokens", Val: r.InputTokens},
			obs.Arg{Key: "picked", Val: rep.Name})
		for _, cand := range cands {
			args = append(args, obs.Arg{
				Key: cand.Name,
				Val: fmt.Sprintf("%dtok/%dreq", cand.outTokens, cand.inFlight),
			})
		}
		c.trace.Instant(c.Sim.Now(), "router", "pick", args...)
	}
	rep.submit(r)
	return rep
}

// flushPending re-submits queued requests once a replica becomes ready.
func (c *Cluster) flushPending() {
	if len(c.pending) == 0 {
		return
	}
	queued := c.pending
	c.pending = nil
	for _, r := range queued {
		c.Submit(r)
	}
}

// Spawn adds a replica of the given shape. With a positive coldStart the
// replica joins in StateStarting and becomes routable coldStart later
// (weight loading, graph capture); with zero it is ready immediately.
func (c *Cluster) Spawn(spec ReplicaSpec, coldStart sim.Time) *Replica {
	rep := c.addReplica(spec)
	if coldStart <= 0 {
		c.makeReady(rep)
		return rep
	}
	c.logf("spawn %s (cold start %v)", rep.Name, coldStart)
	c.traceFleet("spawn", obs.Arg{Key: "replica", Val: rep.Name},
		obs.Arg{Key: "cold_start_ms", Val: coldStart.Milliseconds()})
	c.Sim.After(coldStart, func() { c.makeReady(rep) })
	return rep
}

// makeReady promotes a starting replica into the routable set.
func (c *Cluster) makeReady(rep *Replica) {
	if rep.State != StateStarting {
		return // failed or retired while cold-starting
	}
	rep.State = StateReady
	rep.ReadyAt = c.Sim.Now()
	c.logf("ready %s", rep.Name)
	c.mark("ready " + rep.Name)
	c.traceFleet("ready", obs.Arg{Key: "replica", Val: rep.Name})
	c.flushPending()
}

// Drain stops routing new work to the replica; its in-flight requests
// run to completion, after which it retires automatically.
func (c *Cluster) Drain(rep *Replica) {
	if rep == nil || rep.down() || rep.State == StateDraining {
		return
	}
	if rep.State == StateStarting {
		// Never served: retire on the spot.
		c.takeDown(rep, StateRetired, "retire")
		return
	}
	rep.State = StateDraining
	c.logf("drain %s (%d in flight)", rep.Name, rep.inFlight)
	c.mark("drain " + rep.Name)
	c.traceFleet("drain", obs.Arg{Key: "replica", Val: rep.Name},
		obs.Arg{Key: "in_flight", Val: rep.inFlight})
	// The draining replica left the routable set, so its sessions
	// re-route from this instant on; stream their KV after it.
	c.drainMigrations(rep)
	if rep.inFlight == 0 {
		c.retireDrained(rep)
	}
}

// retireDrained completes a drain once the replica empties.
func (c *Cluster) retireDrained(rep *Replica) {
	c.takeDown(rep, StateRetired, "drained")
}

// Fail crashes the replica: its in-flight requests are re-dispatched to
// the rest of the fleet, every session pinned to it loses its KV (the
// re-prefill shows up as cache misses on the new holders), and its
// metrics freeze at the failure instant.
func (c *Cluster) Fail(rep *Replica) {
	if rep == nil || rep.down() {
		return
	}
	c.failures++
	c.takeDown(rep, StateFailed, "fail")
}

// Retire decommissions the replica immediately, re-dispatching any
// in-flight requests. (Use Drain for a graceful hand-off that lets them
// finish in place.)
func (c *Cluster) Retire(rep *Replica) {
	if rep == nil || rep.down() {
		return
	}
	c.takeDown(rep, StateRetired, "retire")
}

// Failures returns how many replicas failed during the run.
func (c *Cluster) Failures() int { return c.failures }

// takeDown removes a replica from the fleet: halt its instance, abort
// and collect its in-flight requests, notify the router, and re-dispatch
// the survivors. Everything happens at one simulation instant, so a run
// with the same seed replays byte-identically.
func (c *Cluster) takeDown(rep *Replica, state State, label string) {
	now := c.Sim.Now()
	rep.Inst.Halt()

	// Surface in-flight requests (arrival order) and withdraw them from
	// the dead recorder so they can re-arrive elsewhere under the same ID.
	var redispatch []*workload.Request
	outcome := "redispatch"
	if state == StateFailed {
		outcome = "crash"
	}
	for _, id := range rep.Inst.Open() {
		req, ok := rep.reqs[id]
		if !ok {
			continue
		}
		rep.Inst.Abort(id)
		// Close the aborted request's span here (the recorder has no
		// notion of "now"); re-dispatch opens a fresh span for the same
		// ID on the surviving replica's track.
		if c.trace != nil {
			c.trace.AsyncEnd(now, rep.Name, "request", int64(id), "request",
				obs.Arg{Key: "outcome", Val: outcome})
		}
		if state == StateFailed {
			c.crashedReqs[id] = true
		}
		redispatch = append(redispatch, req)
	}
	rep.inFlight = 0
	rep.outTokens = 0
	rep.reqs = map[int]*workload.Request{}

	// Freeze the replica's view after the aborts: its summary holds only
	// work it completed, and later ghost events cannot move it.
	res := rep.Inst.Result(now)
	cs := rep.Inst.CacheStats()
	rep.frozenResult, rep.frozenCache = &res, &cs
	rep.State = state
	rep.DownAt = now

	// The router must forget the replica before re-dispatch, or sticky
	// sessions would re-pin to the corpse.
	if obs, ok := c.Router.(FleetObserver); ok {
		obs.ReplicaDown(rep.ID)
	}
	// Streams through the dead replica die with it: a vanished
	// destination cannot accept, and a crashed source loses even the
	// KV it was mid-stream on — those sessions repay the re-prefill.
	c.cancelMigrations(rep, state == StateFailed)
	c.logf("%s %s (%d in-flight re-dispatched)", label, rep.Name, len(redispatch))
	c.mark(label + " " + rep.Name)
	c.traceFleet(label, obs.Arg{Key: "replica", Val: rep.Name},
		obs.Arg{Key: "redispatched", Val: len(redispatch)})
	graceful := c.migCfg.Enabled && state != StateFailed
	for _, req := range redispatch {
		// A graceful retire streams each re-dispatched request's input
		// KV to the target and holds the request until it lands; a
		// crash (or a fleet with nowhere to stream) re-dispatches
		// immediately and the request re-prefills where it re-sticks.
		if graceful {
			c.releaseKV(rep, req.Session)
			if c.migrateKV(rep, req.Session, int64(req.InputTokens), req.Pages, req) {
				continue
			}
		}
		c.Submit(req)
	}
	if graceful {
		// Idle sessions whose KV lives here stream out too — their next
		// turn re-routes and would otherwise pay the full re-prefill.
		c.sweepSessionKV(rep)
	}
	c.forgetKV(rep)
}

// Unfinished sums arrived-but-incomplete requests across the fleet,
// including requests queued for want of a routable replica and
// requests held mid-migration while their KV is on the wire.
func (c *Cluster) Unfinished() int {
	n := len(c.pending) + c.migHeld
	for _, rep := range c.Replicas {
		n += rep.Inst.Rec.Unfinished()
	}
	return n
}

// TTFTTail pools TTFT samples observed at or after from across the
// fleet and summarises them — the sliding-window tail signal the
// TTFT-target autoscaler watches.
func (c *Cluster) TTFTTail(from sim.Time) metrics.Quantiles {
	c.ttftScratch = c.ttftScratch[:0]
	for _, rep := range c.Replicas {
		c.ttftScratch = rep.Inst.Rec.AppendTTFTSince(c.ttftScratch, from)
	}
	return metrics.QuantilesInPlace(c.ttftScratch)
}

// Snapshot assembles the trailing-window metrics view routers and
// autoscalers observe: first-token latencies emitted inside the window
// plus the current fleet-wide backlog. A window of zero (or one reaching
// past the start) opens the window at time zero.
func (c *Cluster) Snapshot(window sim.Time) metrics.Snapshot {
	now := c.Sim.Now()
	from := now - window
	if window <= 0 || from < 0 {
		from = 0
	}
	return metrics.Snapshot{
		From:    from,
		To:      now,
		TTFT:    c.TTFTTail(from),
		Backlog: c.Unfinished(),
	}
}

// ReplicaResult is the per-replica rollup of a cluster run.
type ReplicaResult struct {
	Name     string
	Engine   string
	Hardware string
	GPUs     int // devices this replica occupied
	Role     Role
	State    State
	ReadyAt  sim.Time
	DownAt   sim.Time // zero if the replica was still up at the end
	Requests int      // requests routed to this replica
	CacheHit float64
	Result   serve.Result

	// KVMigratedIn/Out total the KV tokens this replica received and
	// sent through migration streams.
	KVMigratedIn, KVMigratedOut int64
}

// Epoch is the rollup of one fleet epoch: the interval between two
// consecutive fleet mutations (spawn-ready, drain, fail, retire).
type Epoch struct {
	From, To sim.Time
	// Label names the event that opened the epoch ("start",
	// "fail MuxWise-0", "ready MuxWise-4", ...).
	Label string
	// Ready is the routable replica count when the epoch opened.
	Ready int
	// Window carries the epoch's latency rollup (arrivals, TTFT/TBT
	// quantiles, completions).
	Window metrics.Window
	// Attainment is the epoch's TBT SLO attainment.
	Attainment float64
	// CacheHit is the fleet prefix-cache hit rate over lookups made
	// inside the epoch (not cumulative) — the KV re-prefill penalty of a
	// failure is visible as a dip here.
	CacheHit float64
	// MigratedTokens is KV delivered by migration streams inside the
	// epoch; MigrationStall the stream latency committed inside it.
	MigratedTokens int64
	MigrationStall sim.Time
}

// Result aggregates a cluster run: the fleet-wide summary over merged
// per-replica recorders, plus the per-replica rollups.
type Result struct {
	Router   string
	Summary  metrics.Summary
	Rec      *metrics.Recorder // merged fleet view (read-only)
	Replicas []ReplicaResult
	CacheHit float64 // fleet token-weighted prefix-cache hit rate

	// Epochs holds per-epoch rollups for lifecycle-managed runs (nil
	// when the fleet never changed).
	Epochs []Epoch
	// Events is the timestamped fleet lifecycle log.
	Events []LogEntry
	// Failures counts replicas that failed mid-run.
	Failures int
	// Unrouted counts requests that never found a routable replica.
	Unrouted int
	// Migration aggregates the run's KV-migration accounting (zero when
	// migration is disabled or the fleet never drained).
	Migration MigrationStats

	// Diagnostics attributes every SLO miss of the run to a cause:
	// queue-wait, slow prefill, TBT violation, migration stall, crash,
	// or unfinished work (including never-routed requests).
	Diagnostics metrics.MissBreakdown
	// Loop snapshots the event loop's perf counters for the run.
	Loop sim.LoopStats
}

// MeanUtil averages blended GPU utilization across all replica devices.
func (r Result) MeanUtil() float64 {
	var sum float64
	n := 0
	for _, rep := range r.Replicas {
		for _, d := range rep.Result.Devices {
			sum += d.Util
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// epochs assembles per-epoch rollups from the marks collected during the
// run. Static fleets (a single "start" mark) report none.
func (c *Cluster) epochs(rec *metrics.Recorder, end sim.Time, tbtSLO sim.Time) []Epoch {
	if len(c.marks) < 2 {
		return nil
	}
	// Coalesce marks sharing an instant (e.g. two replicas ready at the
	// same tick): the last one carries the settled fleet state.
	var marks []epochMark
	for _, m := range c.marks {
		if m.at > end {
			break
		}
		if n := len(marks); n > 0 && marks[n-1].at == m.at {
			m.label = marks[n-1].label + " + " + m.label
			marks[n-1] = m
			continue
		}
		marks = append(marks, m)
	}
	bounds := make([]sim.Time, 0, len(marks)+1)
	for _, m := range marks {
		bounds = append(bounds, m.at)
	}
	if last := bounds[len(bounds)-1]; last < end {
		bounds = append(bounds, end)
	} else if len(bounds) < 2 {
		return nil
	}
	wins := rec.RollupSLO(bounds, tbtSLO)
	final := c.aggCache()
	out := make([]Epoch, len(wins))
	for i := range wins {
		next := final
		if i+1 < len(marks) {
			next = marks[i+1].cache
		}
		prev := marks[i].cache
		delta := kvcache.Stats{
			HitTokens:  next.HitTokens - prev.HitTokens,
			MissTokens: next.MissTokens - prev.MissTokens,
		}
		nextMig, nextStall := c.migStats.MigratedTokens, c.migStats.Stall
		if i+1 < len(marks) {
			nextMig, nextStall = marks[i+1].migrated, marks[i+1].migStall
		}
		out[i] = Epoch{
			From:           wins[i].From,
			To:             wins[i].To,
			Label:          marks[i].label,
			Ready:          marks[i].ready,
			Window:         wins[i],
			Attainment:     wins[i].Attainment(),
			CacheHit:       delta.HitRate(),
			MigratedTokens: nextMig - marks[i].migrated,
			MigrationStall: nextStall - marks[i].migStall,
		}
	}
	return out
}

// Run replays the trace against a fresh fleet built from cfg. The run is
// fully deterministic: arrivals, routing decisions, fleet lifecycle
// events and every replica's engine all execute in one event loop keyed
// by (time, seq).
func Run(cfg Config, trace *workload.Trace) (Result, error) {
	cfg.Base = cfg.Base.WithDefaults()
	s := sim.New()
	c, err := New(s, cfg)
	if err != nil {
		return Result{}, err
	}

	var lastArrival sim.Time
	for _, r := range trace.Requests {
		if r.Arrival > lastArrival {
			lastArrival = r.Arrival
		}
	}
	if cfg.Fleet != nil {
		attachFleet(c, *cfg.Fleet, lastArrival)
	}
	// One shared submit callback; each arrival rides as the event
	// argument (no per-request closure).
	submit := func(arg any) { c.Submit(arg.(*workload.Request)) }
	for _, r := range trace.Requests {
		s.AtFunc(r.Arrival, submit, r)
	}
	// Fleet-level stability probe, mirroring serve.Run.
	backlog := 0
	s.At(lastArrival+30*sim.Second, func() { backlog = c.Unfinished() })
	s.RunUntil(lastArrival + cfg.Base.Horizon)

	res := Result{Router: c.Router.Name(), Failures: c.failures, Events: c.log, Unrouted: len(c.pending)}
	recs := make([]*metrics.Recorder, 0, len(c.Replicas))
	for _, rep := range c.Replicas {
		rr := rep.result(s.Now())
		hw := cfg.Base.Spec.Name
		if rep.Spec.Hardware.Name != "" {
			hw = rep.Spec.Hardware.Name
		}
		gpus := cfg.Base.GPUs
		if rep.Spec.GPUs > 0 {
			gpus = rep.Spec.GPUs
		}
		res.Replicas = append(res.Replicas, ReplicaResult{
			Name:          rep.Name,
			Engine:        rep.Spec.Engine,
			Hardware:      hw,
			GPUs:          gpus,
			Role:          rep.Role,
			State:         rep.State,
			ReadyAt:       rep.ReadyAt,
			DownAt:        rep.DownAt,
			Requests:      rep.Assigned(),
			CacheHit:      rr.CacheHit,
			Result:        rr,
			KVMigratedIn:  rep.kvIn,
			KVMigratedOut: rep.kvOut,
		})
		recs = append(recs, rep.Inst.Rec)
	}
	res.Rec = metrics.Merge(recs...)
	res.Summary = res.Rec.Summarize("cluster/"+c.Router.Name(), s.Now())
	serve.ApplyBacklog(&res.Summary, backlog)
	res.CacheHit = c.aggCache().HitRate()
	res.Epochs = c.epochs(res.Rec, s.Now(), cfg.Base.SLO.TBT)
	res.Migration = c.migStats
	res.Migration.UndeliveredTokens = c.undeliveredTokens()
	res.Summary.MigratedKVTokens = res.Migration.MigratedTokens
	res.Summary.MigrationStallSeconds = res.Migration.Stall.Seconds()
	res.Diagnostics = res.Rec.Diagnose(cfg.Base.SLO, metrics.DiagnoseAux{
		Crashed:    c.crashedReqs,
		Held:       c.heldReqs,
		Unrouted:   len(c.pending),
		InFlightKV: c.migHeld,
	})
	res.Loop = s.Stats()
	return res, nil
}

// Probe runs one point of a fleet load sweep.
func Probe(cfg Config, mkTrace func(rate float64) *workload.Trace, rate float64) (serve.RatePoint, error) {
	res, err := Run(cfg, mkTrace(rate))
	if err != nil {
		return serve.RatePoint{}, err
	}
	return serve.RatePoint{
		Rate:       rate,
		Attainment: res.Rec.TBTAttainment(cfg.Base.SLO.TBT),
		P99TTFT:    res.Summary.TTFT.P99,
		P99TBT:     res.Summary.TBT.P99,
		Unstable:   res.Summary.Unstable,
		TokensPerS: res.Summary.TokensPerSecond,
		Util:       res.MeanUtil(),
	}, nil
}

// probeFn adapts Probe to the serve sweep machinery, capturing the
// first error (probes may run concurrently) instead of letting a failed
// run masquerade as a zero-attainment point.
func probeFn(cfg Config, mkTrace func(rate float64) *workload.Trace) (func(rate float64) serve.RatePoint, func() error) {
	var mu sync.Mutex
	var firstErr error
	probe := func(rate float64) serve.RatePoint {
		p, err := Probe(cfg, mkTrace, rate)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		return p
	}
	return probe, func() error { return firstErr }
}

// Sweep probes each offered rate with the §4 early-stop semantics,
// reusing the serve sweep machinery over the fleet-wide criterion.
func Sweep(cfg Config, mkTrace func(rate float64) *workload.Trace, rates []float64) ([]serve.RatePoint, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	probe, errOf := probeFn(cfg, mkTrace)
	pts := serve.SweepBy(probe, rates)
	if err := errOf(); err != nil {
		return nil, err
	}
	return pts, nil
}

// Goodput finds the highest request rate within [lo, hi] at which the
// fleet sustains the §4 goodput criterion on the merged metrics. The
// second result reports feasibility: false means no rate in the range
// met the criterion (as opposed to a goodput of 0 req/s).
func Goodput(cfg Config, mkTrace func(rate float64) *workload.Trace, lo, hi float64) (float64, bool, error) {
	if err := validate(cfg); err != nil {
		return 0, false, err
	}
	probe, errOf := probeFn(cfg, mkTrace)
	g, ok := serve.GoodputBy(probe, lo, hi)
	if err := errOf(); err != nil {
		return 0, false, err
	}
	return g, ok, nil
}
