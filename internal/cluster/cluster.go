// Package cluster simulates a fleet of serving-engine replicas behind a
// pluggable request router, inside one deterministic event loop.
//
// The paper's MuxWise engine multiplexes prefill and decode within a
// single GPU group; a production deployment runs many such groups behind
// an endpoint picker that decides, per request, which replica should
// take it. That instance-assignment decision — prompt length, prefix
// cache-hit probability, per-pod load, aggregated vs disaggregated path
// (llm-d's EPP lifecycle) — is what this package models: N replicas,
// homogeneous or mixed (e.g. 6× MuxWise + 2× SGLang-PD), each a full
// serve.Instance embedded in a shared sim, with the Router consulted at
// every arrival.
//
// Fleet-wide metrics reuse the single-instance machinery: per-replica
// recorders are merged (metrics.Merge) into one Summary, and
// Probe/Sweep/Goodput apply the same §4 goodput criterion (stable, ≥99%
// of TBT samples within SLO) to the merged view.
package cluster

import (
	"fmt"
	"sync"

	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Role marks what a replica is specialised for. The pd-split router
// steers long-prefill requests to RolePrefill replicas; the other
// policies ignore roles.
type Role int

const (
	// RoleGeneral replicas take any request.
	RoleGeneral Role = iota
	// RolePrefill replicas are provisioned for prefill-heavy traffic
	// (e.g. disaggregated engines with a dedicated prefill instance).
	RolePrefill
	// RoleDecode replicas are provisioned for decode-heavy traffic.
	RoleDecode
)

// String renders the role.
func (r Role) String() string {
	switch r {
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	default:
		return "general"
	}
}

// ParseRole parses a role name; the empty string is RoleGeneral.
func ParseRole(s string) (Role, error) {
	switch s {
	case "", "general":
		return RoleGeneral, nil
	case "prefill":
		return RolePrefill, nil
	case "decode":
		return RoleDecode, nil
	}
	return RoleGeneral, fmt.Errorf("cluster: unknown role %q", s)
}

// ReplicaSpec describes one shape of replica in the fleet.
type ReplicaSpec struct {
	// Engine is the display name ("MuxWise", "SGLang-PD", ...).
	Engine string
	// Factory builds the engine.
	Factory serve.Factory
	// Count is how many replicas of this shape to run (default 1).
	Count int
	// GPUs overrides the per-replica device count (default Base.GPUs).
	GPUs int
	// Role tags the replica for role-aware routers.
	Role Role
}

// Config describes a cluster deployment.
type Config struct {
	// Base carries the per-replica hardware, model, SLO and runner
	// knobs; ReplicaSpec.GPUs overrides Base.GPUs per shape.
	Base serve.Config
	// Replicas lists the fleet shapes in deployment order.
	Replicas []ReplicaSpec
	// Policy constructs the router; each run gets a fresh one (routers
	// keep state such as session maps and round-robin cursors).
	Policy Policy
}

// Replica is one engine instance plus the load bookkeeping routers
// score on.
type Replica struct {
	ID   int
	Name string
	Role Role
	Spec ReplicaSpec
	Inst *serve.Instance

	inFlight  int
	outTokens int64
	assigned  int
	reqTokens map[int]int64
}

// InFlight returns how many routed requests have not finished.
func (r *Replica) InFlight() int { return r.inFlight }

// OutstandingTokens returns the input+output tokens of in-flight
// requests — the least-outstanding-tokens load signal.
func (r *Replica) OutstandingTokens() int64 { return r.outTokens }

// Assigned returns how many requests the router sent here in total.
func (r *Replica) Assigned() int { return r.assigned }

// submit routes a request into the replica at its arrival time.
func (r *Replica) submit(req *workload.Request) {
	t := int64(req.InputTokens + req.OutputTokens)
	r.assigned++
	r.inFlight++
	r.outTokens += t
	r.reqTokens[req.ID] = t
	r.Inst.Submit(req)
}

// finish is the completion callback wired into the instance recorder.
func (r *Replica) finish(id int) {
	t, ok := r.reqTokens[id]
	if !ok {
		return
	}
	delete(r.reqTokens, id)
	r.inFlight--
	r.outTokens -= t
}

// Cluster is a replica fleet sharing one simulator.
type Cluster struct {
	Sim      *sim.Sim
	Replicas []*Replica
	Router   Router
}

// validate checks the config without constructing any engine.
func validate(cfg Config) error {
	if len(cfg.Replicas) == 0 {
		return fmt.Errorf("cluster: no replicas configured")
	}
	if cfg.Policy == nil {
		return fmt.Errorf("cluster: no router policy configured")
	}
	for _, spec := range cfg.Replicas {
		if spec.Factory == nil {
			return fmt.Errorf("cluster: replica spec %q has no factory", spec.Engine)
		}
	}
	return nil
}

// New expands the config into a fleet inside the shared simulator s.
func New(s *sim.Sim, cfg Config) (*Cluster, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	c := &Cluster{Sim: s, Router: cfg.Policy()}
	for _, spec := range cfg.Replicas {
		count := spec.Count
		if count <= 0 {
			count = 1
		}
		base := cfg.Base
		if spec.GPUs > 0 {
			base.GPUs = spec.GPUs
		}
		for i := 0; i < count; i++ {
			rep := &Replica{
				ID:        len(c.Replicas),
				Name:      fmt.Sprintf("%s-%d", spec.Engine, i),
				Role:      spec.Role,
				Spec:      spec,
				reqTokens: map[int]int64{},
			}
			rep.Inst = serve.NewInstance(s, spec.Factory, base, rep.Name)
			rep.Inst.OnFinish(func(id int, at sim.Time) { rep.finish(id) })
			c.Replicas = append(c.Replicas, rep)
		}
	}
	return c, nil
}

// Submit routes one request to the replica the router picks. It must be
// called from inside the simulation at the request's arrival time.
func (c *Cluster) Submit(r *workload.Request) *Replica {
	rep := c.Router.Pick(r, c.Replicas)
	if rep == nil {
		rep = c.Replicas[0]
	}
	rep.submit(r)
	return rep
}

// Unfinished sums arrived-but-incomplete requests across the fleet.
func (c *Cluster) Unfinished() int {
	n := 0
	for _, rep := range c.Replicas {
		n += rep.Inst.Rec.Unfinished()
	}
	return n
}

// ReplicaResult is the per-replica rollup of a cluster run.
type ReplicaResult struct {
	Name     string
	Engine   string
	Role     Role
	Requests int // requests routed to this replica
	CacheHit float64
	Result   serve.Result
}

// Result aggregates a cluster run: the fleet-wide summary over merged
// per-replica recorders, plus the per-replica rollups.
type Result struct {
	Router   string
	Summary  metrics.Summary
	Rec      *metrics.Recorder // merged fleet view (read-only)
	Replicas []ReplicaResult
	CacheHit float64 // fleet token-weighted prefix-cache hit rate
}

// MeanUtil averages blended GPU utilization across all replica devices.
func (r Result) MeanUtil() float64 {
	var sum float64
	n := 0
	for _, rep := range r.Replicas {
		for _, d := range rep.Result.Devices {
			sum += d.Util
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Run replays the trace against a fresh fleet built from cfg. The run is
// fully deterministic: arrivals, routing decisions and every replica's
// engine all execute in one event loop keyed by (time, seq).
func Run(cfg Config, trace *workload.Trace) (Result, error) {
	cfg.Base = cfg.Base.WithDefaults()
	s := sim.New()
	c, err := New(s, cfg)
	if err != nil {
		return Result{}, err
	}

	var lastArrival sim.Time
	for _, r := range trace.Requests {
		r := r
		s.At(r.Arrival, func() { c.Submit(r) })
		if r.Arrival > lastArrival {
			lastArrival = r.Arrival
		}
	}
	// Fleet-level stability probe, mirroring serve.Run.
	backlog := 0
	s.At(lastArrival+30*sim.Second, func() { backlog = c.Unfinished() })
	s.RunUntil(lastArrival + cfg.Base.Horizon)

	res := Result{Router: c.Router.Name()}
	recs := make([]*metrics.Recorder, 0, len(c.Replicas))
	var cacheAgg kvcache.Stats
	for _, rep := range c.Replicas {
		rr := rep.Inst.Result(s.Now())
		cs := rep.Inst.CacheStats()
		cacheAgg.Lookups += cs.Lookups
		cacheAgg.HitTokens += cs.HitTokens
		cacheAgg.MissTokens += cs.MissTokens
		res.Replicas = append(res.Replicas, ReplicaResult{
			Name:     rep.Name,
			Engine:   rep.Spec.Engine,
			Role:     rep.Role,
			Requests: rep.Assigned(),
			CacheHit: rr.CacheHit,
			Result:   rr,
		})
		recs = append(recs, rep.Inst.Rec)
	}
	res.Rec = metrics.Merge(recs...)
	res.Summary = res.Rec.Summarize("cluster/"+c.Router.Name(), s.Now())
	serve.ApplyBacklog(&res.Summary, backlog)
	res.CacheHit = cacheAgg.HitRate()
	return res, nil
}

// Probe runs one point of a fleet load sweep.
func Probe(cfg Config, mkTrace func(rate float64) *workload.Trace, rate float64) (serve.RatePoint, error) {
	res, err := Run(cfg, mkTrace(rate))
	if err != nil {
		return serve.RatePoint{}, err
	}
	return serve.RatePoint{
		Rate:       rate,
		Attainment: res.Rec.TBTAttainment(cfg.Base.SLO.TBT),
		P99TTFT:    res.Summary.TTFT.P99,
		P99TBT:     res.Summary.TBT.P99,
		Unstable:   res.Summary.Unstable,
		TokensPerS: res.Summary.TokensPerSecond,
		Util:       res.MeanUtil(),
	}, nil
}

// probeFn adapts Probe to the serve sweep machinery, capturing the
// first error (probes may run concurrently) instead of letting a failed
// run masquerade as a zero-attainment point.
func probeFn(cfg Config, mkTrace func(rate float64) *workload.Trace) (func(rate float64) serve.RatePoint, func() error) {
	var mu sync.Mutex
	var firstErr error
	probe := func(rate float64) serve.RatePoint {
		p, err := Probe(cfg, mkTrace, rate)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		return p
	}
	return probe, func() error { return firstErr }
}

// Sweep probes each offered rate with the §4 early-stop semantics,
// reusing the serve sweep machinery over the fleet-wide criterion.
func Sweep(cfg Config, mkTrace func(rate float64) *workload.Trace, rates []float64) ([]serve.RatePoint, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	probe, errOf := probeFn(cfg, mkTrace)
	pts := serve.SweepBy(probe, rates)
	if err := errOf(); err != nil {
		return nil, err
	}
	return pts, nil
}

// Goodput finds the highest request rate within [lo, hi] at which the
// fleet sustains the §4 goodput criterion on the merged metrics.
func Goodput(cfg Config, mkTrace func(rate float64) *workload.Trace, lo, hi float64) (float64, error) {
	if err := validate(cfg); err != nil {
		return 0, err
	}
	probe, errOf := probeFn(cfg, mkTrace)
	g := serve.GoodputBy(probe, lo, hi)
	if err := errOf(); err != nil {
		return 0, err
	}
	return g, nil
}
