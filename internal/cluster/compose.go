package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"muxwise/internal/cluster/epp"
)

// CompositionPrefix marks an inline pipeline spec wherever a router
// name is accepted (WithRouter, ClusterDeployment.Router, muxcluster
// -router, sweep tables): new policies become config, not code.
const CompositionPrefix = "epp:"

// compositionPlan is a validated, buildable form of an "epp:" spec.
// Parsing happens once; each Policy invocation assembles a fresh
// pipeline (stages carry per-run state).
type compositionPlan struct {
	spec    string
	filters []string // "role:<r1|r2...>", "sticky", "divert", "divert-widen"
	scorers []struct {
		name   string
		weight float64
	}
	picker string // "max-score" (default) or "round-robin"
}

// ParseComposition parses an inline filter → scorer → picker spec into
// a router Policy. The grammar is semicolon-separated clauses after the
// "epp:" prefix:
//
//		epp:scorers=prefix:2,least-tokens:1
//		epp:filters=role:prefill,divert-widen;scorers=least-tokens
//		epp:picker=round-robin
//
//	  - filters — comma-separated, applied in order: role:<name|name...>
//	    (keep those roles, e.g. role:prefill or role:general|decode),
//	    sticky (narrow to the session's KV holder), divert (drop the
//	    holder), divert-widen (drop the holder, widening to the full
//	    view when the pool empties).
//	  - scorers — comma-separated name[:weight] pairs forming ONE
//	    weighted tier (weights default to 1; remaining ties fall to the
//	    lowest replica ID): prefix, session, least-tokens,
//	    least-requests, ttft-ewma.
//	  - picker — max-score (default) or round-robin.
//
// Any affinity-backed stage (prefix, session, sticky, divert) shares
// one affinity state, recorded on every pick; ttft-ewma wires itself
// into the TTFT observer fan-out. Unlike the built-in compositions
// there is no classifier: the single profile routes every request, so
// sticky here pins sessions unconditionally (no overload guard).
func ParseComposition(spec string) (Policy, error) {
	plan, err := parsePlan(spec)
	if err != nil {
		return nil, err
	}
	return plan.policy(), nil
}

func parsePlan(spec string) (*compositionPlan, error) {
	body, ok := strings.CutPrefix(spec, CompositionPrefix)
	if !ok {
		return nil, fmt.Errorf("cluster: composition spec %q must start with %q", spec, CompositionPrefix)
	}
	plan := &compositionPlan{spec: spec, picker: "max-score"}
	for _, clause := range strings.Split(body, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, found := strings.Cut(clause, "=")
		if !found {
			return nil, fmt.Errorf("cluster: composition clause %q wants key=value (in %q)", clause, spec)
		}
		switch key {
		case "filters":
			for _, f := range strings.Split(val, ",") {
				f = strings.TrimSpace(f)
				if err := validFilter(f); err != nil {
					return nil, fmt.Errorf("cluster: %v (in %q)", err, spec)
				}
				plan.filters = append(plan.filters, f)
			}
		case "scorers":
			for _, s := range strings.Split(val, ",") {
				name, weight, err := parseScorer(strings.TrimSpace(s))
				if err != nil {
					return nil, fmt.Errorf("cluster: %v (in %q)", err, spec)
				}
				plan.scorers = append(plan.scorers, struct {
					name   string
					weight float64
				}{name, weight})
			}
		case "picker":
			switch val {
			case "max-score", "round-robin":
				plan.picker = val
			default:
				return nil, fmt.Errorf("cluster: unknown picker %q (in %q)", val, spec)
			}
		default:
			return nil, fmt.Errorf("cluster: unknown composition clause %q (in %q)", key, spec)
		}
	}
	if len(plan.scorers) == 0 && len(plan.filters) == 0 && plan.picker == "max-score" {
		return nil, fmt.Errorf("cluster: empty composition %q: add filters=, scorers= or picker=", spec)
	}
	return plan, nil
}

func validFilter(f string) error {
	switch {
	case f == "sticky", f == "divert", f == "divert-widen":
		return nil
	case strings.HasPrefix(f, "role:"):
		for _, r := range strings.Split(strings.TrimPrefix(f, "role:"), "|") {
			if _, err := ParseRole(r); err != nil || r == "" {
				return fmt.Errorf("filter %q: unknown role %q", f, r)
			}
		}
		return nil
	}
	return fmt.Errorf("unknown filter %q (want role:<r>, sticky, divert, divert-widen)", f)
}

func parseScorer(s string) (string, float64, error) {
	name, w, hasWeight := strings.Cut(s, ":")
	weight := 1.0
	if hasWeight {
		v, err := strconv.ParseFloat(w, 64)
		if err != nil || v <= 0 {
			return "", 0, fmt.Errorf("scorer %q: weight %q must be a positive number", s, w)
		}
		weight = v
	}
	switch name {
	case "prefix", "session", "least-tokens", "least-requests", "ttft-ewma":
		return name, weight, nil
	}
	return "", 0, fmt.Errorf("unknown scorer %q (want prefix, session, least-tokens, least-requests, ttft-ewma)", name)
}

// policy assembles a fresh pipeline per invocation — stages carry
// per-run state (affinity maps, EWMAs, the round-robin cursor).
func (plan *compositionPlan) policy() Policy {
	return func() Router {
		aff := epp.NewAffinity[*Replica]()
		var filters []epp.Filter[*Replica]
		for _, f := range plan.filters {
			switch {
			case f == "sticky":
				filters = append(filters, epp.StickySession(aff))
			case f == "divert":
				filters = append(filters, epp.Divert(aff, false))
			case f == "divert-widen":
				filters = append(filters, epp.Divert(aff, true))
			default: // role:<r1|r2...>, validated at parse time
				var roles []Role
				for _, r := range strings.Split(strings.TrimPrefix(f, "role:"), "|") {
					role, _ := ParseRole(r)
					roles = append(roles, role)
				}
				filters = append(filters, epp.KeepRoles[*Replica](roles...))
			}
		}
		var t []epp.Weighted[*Replica]
		state := []any{aff}
		for _, s := range plan.scorers {
			var sc epp.Scorer[*Replica]
			switch s.name {
			case "prefix":
				sc = epp.PrefixMatch(aff)
			case "session":
				sc = epp.SessionMatch(aff)
			case "least-tokens":
				sc = epp.LeastTokens[*Replica]()
			case "least-requests":
				sc = epp.LeastRequests[*Replica]()
			case "ttft-ewma":
				learned := epp.NewTTFTScorer[*Replica]()
				state = append(state, learned)
				sc = learned
			}
			t = append(t, epp.Weighted[*Replica]{Scorer: sc, Weight: s.weight})
		}
		prof := PipelineProfile{Name: "composed", Filters: filters}
		if len(t) > 0 {
			prof.Scorers = [][]epp.Weighted[*Replica]{t}
		}
		if plan.picker == "round-robin" {
			prof.Picker = epp.RoundRobin[*Replica]()
		}
		return NewPipelineRouter(epp.New(plan.spec, nil, []PipelineProfile{prof}, state...))
	}
}

// ResolvePolicy resolves a router selector: a registered policy name
// (built-in or RegisterPolicy), or an inline "epp:" composition spec.
func ResolvePolicy(name string) (Policy, error) {
	if p, ok := Policies()[name]; ok {
		return p, nil
	}
	if strings.HasPrefix(name, CompositionPrefix) {
		return ParseComposition(name)
	}
	return nil, fmt.Errorf("cluster: unknown router %q (have %v, or an %q composition spec)",
		name, PolicyNames(), CompositionPrefix)
}
