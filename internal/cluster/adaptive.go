package cluster

import (
	"muxwise/internal/cluster/epp"
)

// AdaptiveTTFT is the reference learned policy shipped through the
// plugin seam: it keeps multi-turn sessions sticky to their KV holder
// (like prefix-affinity) but scores cold and diverted requests by an
// EWMA of each replica's observed TTFT, inflated by its outstanding
// load. The TTFT signal arrives through TTFTObserver as first tokens
// are emitted, so a replica that slows down — saturated, cold-started,
// or simply on weaker hardware — loses traffic within a dozen requests,
// and a fast replica earns a proportionally deeper queue.
//
// Composition: the same affinity classifier as prefix-affinity
// (sticky / divert / cold), with the scored profiles ranking by the
// learned TTFT prediction then least outstanding tokens. The TTFT
// scorer doubles as the pipeline's TTFTObserver/DownObserver state, so
// observations and replica deaths reach it through the ordinary
// observer fan-out.
func AdaptiveTTFT() Router {
	aff := epp.NewAffinity[*Replica]()
	learned := epp.NewTTFTScorer[*Replica]()
	ttftTiers := [][]epp.Weighted[*Replica]{
		tier(learned),
		tier(epp.LeastTokens[*Replica]()),
	}
	profiles := []PipelineProfile{
		{Name: "sticky", Filters: []epp.Filter[*Replica]{epp.StickySession(aff)}},
		{Name: "divert", Filters: []epp.Filter[*Replica]{epp.Divert(aff, false)}, Scorers: ttftTiers},
		{Name: "cold", Scorers: ttftTiers},
	}
	cl := epp.NewAffinityClassifier(aff, 0, 1, 2)
	return NewPipelineRouter(epp.New(AdaptiveTTFTPolicy, cl, profiles, aff, learned))
}
