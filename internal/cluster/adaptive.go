package cluster

import (
	"muxwise/internal/kvcache"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// adaptiveAlpha is the EWMA smoothing factor: ~the last dozen
// observations dominate a replica's learned first-token latency, fast
// enough to track a Fig. 13 burst and slow enough to ride out one
// outlier.
const adaptiveAlpha = 0.2

// adaptiveTTFTFloor (seconds) keeps scores positive and makes
// never-observed replicas maximally attractive, so the policy explores
// every replica before trusting its learned ranking.
const adaptiveTTFTFloor = 0.005

// adaptiveLoadScale (tokens) converts outstanding work into a latency
// multiplier: a replica carrying adaptiveLoadScale outstanding tokens is
// expected to double its observed TTFT. It deliberately matches the
// overload guard's slack so the two mechanisms agree on what "loaded"
// means.
const adaptiveLoadScale = 8192

// adaptiveTTFT is the reference learned policy shipped through the
// plugin seam: it keeps multi-turn sessions sticky to their KV holder
// (like prefix-affinity) but scores cold and diverted requests by an
// EWMA of each replica's observed TTFT, inflated by its outstanding
// load. The TTFT signal arrives through TTFTObserver as first tokens
// are emitted, so a replica that slows down — saturated, cold-started,
// or simply on weaker hardware — loses traffic within a dozen requests,
// and a fast replica earns a proportionally deeper queue.
type adaptiveTTFT struct {
	aff  *affinity
	ewma map[int]float64 // replica ID -> learned TTFT, seconds
}

// AdaptiveTTFT routes by learned per-replica TTFT with session affinity.
func AdaptiveTTFT() Router {
	return &adaptiveTTFT{aff: newAffinity(), ewma: map[int]float64{}}
}

func (p *adaptiveTTFT) Name() string { return AdaptiveTTFTPolicy }

// ObserveTTFT implements TTFTObserver.
func (p *adaptiveTTFT) ObserveTTFT(replica int, ttft sim.Time) {
	v := ttft.Seconds()
	if old, ok := p.ewma[replica]; ok {
		v = old + adaptiveAlpha*(v-old)
	}
	p.ewma[replica] = v
}

// ReplicaDown implements FleetObserver: the dead replica's sessions and
// learned latency are forgotten together — a respawned ID starts over.
func (p *adaptiveTTFT) ReplicaDown(id int) {
	p.aff.replicaDown(id)
	delete(p.ewma, id)
}

// SessionMigrated implements MigrationObserver: the pin follows the KV.
func (p *adaptiveTTFT) SessionMigrated(session, from, to int, pages []kvcache.PageID) {
	p.aff.migrated(session, from, to, pages)
}

// score predicts the TTFT a request routed to rep would see: the learned
// EWMA (floored, so unseen replicas win and get explored) scaled up by
// the replica's outstanding work.
func (p *adaptiveTTFT) score(rep *Replica) float64 {
	base := adaptiveTTFTFloor
	if v, ok := p.ewma[rep.ID]; ok && v > base {
		base = v
	}
	return base * (1 + float64(rep.outTokens)/adaptiveLoadScale)
}

// best returns the candidate with the lowest predicted TTFT (ties:
// fewest outstanding tokens, then lowest ID — the candidate order).
func (p *adaptiveTTFT) best(cands []*Replica) *Replica {
	var best *Replica
	var bestScore float64
	for _, rep := range cands {
		s := p.score(rep)
		if best == nil || s < bestScore ||
			(s == bestScore && rep.outTokens < best.outTokens) {
			best, bestScore = rep, s
		}
	}
	return best
}

func (p *adaptiveTTFT) Pick(r *workload.Request, view FleetView) *Replica {
	fleet := view.Candidates
	if len(fleet) == 0 {
		// The cluster queues arrivals while nothing is routable, but a
		// policy must also survive a direct Pick on an empty fleet (unit
		// harnesses, external callers of the plugin seam).
		return nil
	}
	rep := p.aff.sticky(r, fleet)
	switch {
	case rep == nil:
		rep = p.best(fleet)
	case overloaded(rep, fleet):
		// Shed the session off its hot holder, scored by predicted TTFT
		// rather than prefix match — the hot replica cannot win.
		if cands := without(fleet, rep); len(cands) > 0 {
			rep = p.best(cands)
		}
	}
	p.aff.record(r, rep)
	return rep
}
