package cluster

import (
	"fmt"
	"testing"

	"muxwise/internal/core"
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/pdsep"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// mixedTrace builds the Conversation+Tool&Agent bursty mix of Fig. 13 at
// a reduced scale.
func mixedTrace(seed uint64, sessions int, scale float64) *workload.Trace {
	conv := workload.Conversation(seed, sessions).
		WithProfileArrivals(seed, workload.ConversationProfile(scale))
	tool := workload.ToolAgent(seed+1, sessions).
		WithProfileArrivals(seed+1, workload.ToolAgentProfile(scale))
	return workload.Mix("Conversation+Tool&Agent", conv, tool)
}

func fleetCfg(policy Policy, replicas int) Config {
	return Config{
		Base: serve.Config{
			Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B(),
			SLO: metrics.SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond},
		},
		Replicas: []ReplicaSpec{{Engine: "MuxWise", Factory: core.New, Count: replicas}},
		Policy:   policy,
	}
}

// replicaOf maps every request ID to the replica that served it.
func replicaOf(res Result) map[int]string {
	out := map[int]string{}
	for _, rep := range res.Replicas {
		for _, id := range rep.Result.Rec.IDs() {
			out[id] = rep.Name
		}
	}
	return out
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{Policy: RoundRobin}, &workload.Trace{}); err == nil {
		t.Fatal("expected error for empty fleet")
	}
	cfg := fleetCfg(nil, 2)
	if _, err := Run(cfg, &workload.Trace{}); err == nil {
		t.Fatal("expected error for missing policy")
	}
	cfg = fleetCfg(RoundRobin, 1)
	cfg.Replicas[0].Factory = nil
	if _, err := Run(cfg, &workload.Trace{}); err == nil {
		t.Fatal("expected error for nil factory")
	}
}

func TestRoundRobinSpread(t *testing.T) {
	tr := mixedTrace(7, 20, 0.12)
	res, err := Run(fleetCfg(RoundRobin, 4), tr)
	if err != nil {
		t.Fatal(err)
	}
	total, minA, maxA := 0, tr.Len(), 0
	for _, rep := range res.Replicas {
		total += rep.Requests
		minA = min(minA, rep.Requests)
		maxA = max(maxA, rep.Requests)
	}
	if total != tr.Len() {
		t.Fatalf("routed %d of %d requests", total, tr.Len())
	}
	if maxA-minA > 1 {
		t.Fatalf("round-robin spread uneven: min %d max %d", minA, maxA)
	}
}

func TestLeastTokensBalancesLoad(t *testing.T) {
	tr := mixedTrace(11, 20, 0.12)
	res, err := Run(fleetCfg(LeastTokens, 4), tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Replicas {
		if rep.Requests == 0 {
			t.Fatalf("least-tokens left replica %s idle", rep.Name)
		}
	}
	if res.Summary.Finished != res.Summary.Requests {
		t.Fatalf("finished %d of %d", res.Summary.Finished, res.Summary.Requests)
	}
}

func TestRouterDeterminism(t *testing.T) {
	tr1 := mixedTrace(3, 15, 0.1)
	tr2 := mixedTrace(3, 15, 0.1)
	for name, policy := range Policies() {
		a, err := Run(fleetCfg(policy, 3), tr1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(fleetCfg(policy, 3), tr2)
		if err != nil {
			t.Fatal(err)
		}
		if a.Summary.TTFT != b.Summary.TTFT || a.Summary.TBT != b.Summary.TBT {
			t.Fatalf("%s: non-deterministic summary", name)
		}
		for i := range a.Replicas {
			if a.Replicas[i].Requests != b.Replicas[i].Requests {
				t.Fatalf("%s: non-deterministic routing on %s: %d vs %d",
					name, a.Replicas[i].Name, a.Replicas[i].Requests, b.Replicas[i].Requests)
			}
		}
	}
}

// TestAffinityBeatsRoundRobin is the headline fleet experiment: on the
// same mixed multi-turn trace, session affinity must produce a different
// deterministic outcome than round-robin and win on cache-hit rate.
func TestAffinityBeatsRoundRobin(t *testing.T) {
	mk := func() *workload.Trace { return mixedTrace(5, 25, 0.15) }
	rr, err := Run(fleetCfg(RoundRobin, 4), mk())
	if err != nil {
		t.Fatal(err)
	}
	aff, err := Run(fleetCfg(PrefixAffinity, 4), mk())
	if err != nil {
		t.Fatal(err)
	}
	if rr.CacheHit >= aff.CacheHit {
		t.Fatalf("prefix affinity cache hit %.3f should beat round-robin %.3f",
			aff.CacheHit, rr.CacheHit)
	}
	same := true
	for i := range rr.Replicas {
		if rr.Replicas[i].Requests != aff.Replicas[i].Requests {
			same = false
		}
	}
	if same && rr.Summary.TTFT == aff.Summary.TTFT {
		t.Fatal("policies produced identical routing and latency")
	}
}

func TestSessionStickiness(t *testing.T) {
	tr := mixedTrace(9, 25, 0.15)
	res, err := Run(fleetCfg(PrefixAffinity, 4), tr)
	if err != nil {
		t.Fatal(err)
	}
	where := replicaOf(res)
	perSession := map[int]map[string]bool{}
	for _, r := range tr.Requests {
		if perSession[r.Session] == nil {
			perSession[r.Session] = map[string]bool{}
		}
		perSession[r.Session][where[r.ID]] = true
	}
	sticky, multi := 0, 0
	for _, reps := range perSession {
		if len(reps) == 1 {
			sticky++
		} else {
			multi++
		}
	}
	if sticky < 4*(sticky+multi)/5 {
		t.Fatalf("only %d/%d sessions stayed on one replica", sticky, sticky+multi)
	}
}

// pdPages builds a page stream like the workload generator's.
func pdPages(stream uint64, tokens int) []kvcache.PageID {
	n := kvcache.PageCount(tokens, workload.PageTokens)
	out := make([]kvcache.PageID, n)
	for i := range out {
		out[i] = kvcache.PageID(stream<<20 | uint64(i))
	}
	return out
}

// pdTrace crafts cold long-prefill singletons plus short multi-turn
// sessions, with page streams like the workload generator's.
func pdTrace() *workload.Trace {
	tr := &workload.Trace{Name: "pd-synthetic"}
	id := 0
	mkPages := pdPages
	at := sim.Time(0)
	for s := 0; s < 8; s++ {
		// Long cold request: must take the split path.
		long := &workload.Request{
			ID: id, Session: s, Arrival: at,
			InputTokens: 9000, OutputTokens: 64,
			Pages:    mkPages(uint64(s), 9000),
			AllPages: mkPages(uint64(s), 9064),
		}
		id++
		at += 2 * sim.Second
		// Short session: two turns on the aggregated path.
		first := &workload.Request{
			ID: id, Session: 100 + s, Turn: 0, Arrival: at,
			InputTokens: 600, OutputTokens: 128,
			Pages:    mkPages(uint64(100+s), 600),
			AllPages: mkPages(uint64(100+s), 728),
		}
		id++
		at += 2 * sim.Second
		second := &workload.Request{
			ID: id, Session: 100 + s, Turn: 1, Arrival: at,
			InputTokens: 1000, ReusedTokens: 728, OutputTokens: 128,
			Pages:    mkPages(uint64(100+s), 1000),
			AllPages: mkPages(uint64(100+s), 1128),
		}
		id++
		at += 2 * sim.Second
		tr.Requests = append(tr.Requests, long, first, second)
	}
	return tr
}

func TestPDSplitRouting(t *testing.T) {
	cfg := Config{
		Base: serve.Config{
			Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B(),
			SLO: metrics.SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond},
		},
		Replicas: []ReplicaSpec{
			{Engine: "MuxWise", Factory: core.New, Count: 2},
			{Engine: "SGLang-PD", Factory: pdsep.New, Count: 1, GPUs: 2, Role: RolePrefill},
		},
		Policy: func() Router { return PDSplit(4096) },
	}
	tr := pdTrace()
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	prefillReps := map[string]bool{}
	for _, rep := range res.Replicas {
		if rep.Role == RolePrefill {
			prefillReps[rep.Name] = true
		}
	}
	where := replicaOf(res)
	for _, r := range tr.Requests {
		coldLong := r.Turn == 0 && r.InputTokens >= 4096
		if coldLong && !prefillReps[where[r.ID]] {
			t.Fatalf("long request %d landed on %s, want a prefill replica", r.ID, where[r.ID])
		}
		if !coldLong && prefillReps[where[r.ID]] {
			t.Fatalf("short request %d landed on prefill replica %s", r.ID, where[r.ID])
		}
	}
	// Follow-up turns stay sticky to the replica holding their session KV.
	for _, r := range tr.Requests {
		if r.Turn != 1 {
			continue
		}
		for _, first := range tr.Requests {
			if first.Session == r.Session && first.Turn == 0 {
				if where[r.ID] != where[first.ID] {
					t.Fatalf("session %d moved from %s to %s", r.Session, where[first.ID], where[r.ID])
				}
			}
		}
	}
}

// bareFleet builds replicas with no engines — router Pick only reads
// load counters, so policies can be unit-tested without simulation.
func bareFleet(roles ...Role) []*Replica {
	fleet := make([]*Replica, len(roles))
	for i, role := range roles {
		fleet[i] = &Replica{ID: i, Name: fmt.Sprintf("rep-%d", i), Role: role}
	}
	return fleet
}

// view wraps a bare fleet in the read-only context Pick receives.
func view(fleet []*Replica) FleetView { return FleetView{Candidates: fleet} }

func TestAffinityDivertsOffOverloadedReplica(t *testing.T) {
	fleet := bareFleet(RoleGeneral, RoleGeneral, RoleGeneral)
	router := PrefixAffinity()
	turn := func(n int) *workload.Request {
		return &workload.Request{ID: n, Session: 7, Turn: n,
			InputTokens: 1000, OutputTokens: 100,
			Pages: pdPages(42, 1000), AllPages: pdPages(42, 1100)}
	}
	home := router.Pick(turn(0), view(fleet))
	if router.Pick(turn(1), view(fleet)) != home {
		t.Fatal("session should stay sticky while the replica is healthy")
	}
	// Overload the home replica: the next turn must divert even though
	// only the home replica has the session's pages indexed.
	home.outTokens = 1 << 20
	if got := router.Pick(turn(2), view(fleet)); got == home {
		t.Fatal("overloaded sticky replica must not win on its own cached pages")
	}
}

func TestPDSplitSessionsFollowTheirKV(t *testing.T) {
	fleet := bareFleet(RoleGeneral, RoleGeneral, RolePrefill)
	router := PDSplit(4096)
	turn := func(n, input, reused int) *workload.Request {
		return &workload.Request{ID: n, Session: 3, Turn: n,
			InputTokens: input, ReusedTokens: reused, OutputTokens: 64,
			Pages: pdPages(9, input), AllPages: pdPages(9, input+64)}
	}
	home := router.Pick(turn(0, 9000, 0), view(fleet))
	if home.Role != RolePrefill {
		t.Fatalf("long cold prefill routed to %s, want the prefill replica", home.Name)
	}
	// The follow-up turn's KV lives on the prefill replica; a healthy
	// holder keeps its session (no KV migration in the fleet model).
	if got := router.Pick(turn(1, 9500, 9064), view(fleet)); got != home {
		t.Fatalf("healthy session moved off its KV holder to %s", got.Name)
	}
	// Once the holder is overloaded, a short diverted turn is a cold
	// short prefill: it must join the aggregated pool, not the holder.
	home.outTokens = 1 << 20
	got := router.Pick(turn(2, 1000, 0), view(fleet))
	if got == home || got.Role == RolePrefill {
		t.Fatalf("diverted short turn routed to %s, want an aggregated replica", got.Name)
	}
}

func TestPDSplitDivertWidensPastHotPool(t *testing.T) {
	// The aggregated pool is a single replica: once it overloads, the
	// divert must shed load to the idle prefill replicas rather than
	// re-pinning the session to the hot one.
	fleet := bareFleet(RoleGeneral, RolePrefill, RolePrefill)
	router := PDSplit(4096)
	turn := func(n int) *workload.Request {
		return &workload.Request{ID: n, Session: 5, Turn: n,
			InputTokens: 800, OutputTokens: 64,
			Pages: pdPages(5, 800), AllPages: pdPages(5, 864)}
	}
	home := router.Pick(turn(0), view(fleet))
	if home.Role != RoleGeneral {
		t.Fatalf("cold short request routed to %s, want the aggregated replica", home.Name)
	}
	home.outTokens = 1 << 20
	if got := router.Pick(turn(1), view(fleet)); got == home {
		t.Fatal("divert re-pinned the session to the overloaded replica")
	}
}

func TestClusterSweepAndGoodput(t *testing.T) {
	mk := func(rate float64) *workload.Trace {
		return workload.ShareGPT(21, 40).WithPoissonArrivals(21, rate)
	}
	cfg := fleetCfg(LeastTokens, 2)
	pts, err := Sweep(cfg, mk, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || pts[0].Rate != 0.5 {
		t.Fatalf("sweep points wrong: %+v", pts)
	}
	g, feasible, err := Goodput(cfg, mk, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !feasible || g <= 0 {
		t.Fatalf("two-replica fleet should sustain the floor rate, got %v (feasible=%v)", g, feasible)
	}
	g2, _, _ := Goodput(cfg, mk, 0.25, 1)
	if g != g2 {
		t.Fatalf("goodput not deterministic: %v vs %v", g, g2)
	}
}

func TestMergedSummaryCountsFleetWide(t *testing.T) {
	tr := mixedTrace(13, 10, 0.1)
	res, err := Run(fleetCfg(RoundRobin, 3), tr)
	if err != nil {
		t.Fatal(err)
	}
	perReplica := 0
	for _, rep := range res.Replicas {
		perReplica += rep.Result.Summary.Requests
	}
	if res.Summary.Requests != perReplica || res.Summary.Requests != tr.Len() {
		t.Fatalf("merged requests %d, per-replica sum %d, trace %d",
			res.Summary.Requests, perReplica, tr.Len())
	}
}
