package cluster

import (
	"fmt"

	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// FleetView is the read-only context a Router sees at every arrival:
// the routable candidates plus, on demand, a windowed rollup of the
// fleet's recent observations. User-supplied policies receive exactly
// this view — nothing in it lets them mutate the fleet.
type FleetView struct {
	// Now is the simulation instant of the routing decision.
	Now sim.Time
	// Candidates are the routable replicas in ID order. The slice is a
	// scratch buffer rebuilt per arrival; policies must not retain it
	// (key remembered state by Replica.ID instead).
	Candidates []*Replica

	c *Cluster
}

// Metrics summarises the trailing window of fleet-wide observations
// (first-token latencies by emission time, plus the current backlog).
// It walks the fleet's recorders, so policies that need it every pick
// should prefer event-driven state via TTFTObserver. A view built
// without a cluster (unit tests) reports an empty snapshot.
func (v FleetView) Metrics(window sim.Time) metrics.Snapshot {
	if v.c == nil {
		return metrics.Snapshot{From: v.Now, To: v.Now}
	}
	return v.c.Snapshot(window)
}

// Router picks a replica for each arriving request. Pick is called from
// inside the simulation in deterministic arrival order, so stateful
// policies (cursors, session maps, prefix indexes) stay reproducible.
//
// With a lifecycle-managed fleet the candidate set changes between
// calls: replicas spawn, drain and fail mid-run, so policies must key
// any internal state by Replica.ID (stable for the life of a run), never
// by position in the slice, and must tolerate a remembered replica being
// absent from the current candidates.
type Router interface {
	Name() string
	Pick(r *workload.Request, view FleetView) *Replica
}

// FleetObserver is implemented by routers that keep per-replica state.
// The cluster calls ReplicaDown when a replica fails or retires so the
// router can unpin its sessions and drop its prefix index — the KV held
// there is gone, and the next turn of every affected session pays a full
// re-prefill on whichever replica it re-sticks to.
type FleetObserver interface {
	ReplicaDown(id int)
}

// TTFTObserver is implemented by routers that learn from observed
// latency. The cluster reports each request's TTFT against the replica
// that served it, at the instant the first token is emitted — the signal
// the adaptive-ttft policy folds into its per-replica EWMA.
type TTFTObserver interface {
	ObserveTTFT(replica int, ttft sim.Time)
}

// Policy constructs a fresh router. Routers keep per-run state, so every
// simulation (each probe of a sweep, each bisection step) needs its own.
type Policy func() Router

// Policy names.
const (
	RoundRobinPolicy     = "round-robin"
	LeastTokensPolicy    = "least-tokens"
	PrefixAffinityPolicy = "prefix-affinity"
	PDSplitPolicy        = "pd-split"
	AdaptiveTTFTPolicy   = "adaptive-ttft"
)

// builtinPolicies returns the built-in router policies by name.
func builtinPolicies() map[string]Policy {
	return map[string]Policy{
		RoundRobinPolicy:     RoundRobin,
		LeastTokensPolicy:    LeastTokens,
		PrefixAffinityPolicy: PrefixAffinity,
		PDSplitPolicy:        func() Router { return PDSplit(0) },
		AdaptiveTTFTPolicy:   AdaptiveTTFT,
	}
}

var policyRegistry = newRegistry("router policy", builtinPolicies)

// RegisterPolicy adds a router policy to the registry under name, making
// it selectable wherever built-in names are (deployments, sweeps, CLIs).
// Registering an empty name, a nil constructor, or a name already taken
// (built-in or registered) is an error.
func RegisterPolicy(name string, p Policy) error {
	if p == nil {
		return fmt.Errorf("cluster: nil constructor for router policy %q", name)
	}
	return policyRegistry.add(name, p)
}

// Policies returns every available router policy by name: the built-ins
// plus everything added through RegisterPolicy. The map is a copy.
func Policies() map[string]Policy { return policyRegistry.all() }

// PolicyNames returns the available policy names in deterministic order.
func PolicyNames() []string { return policyRegistry.names() }

// leastLoaded returns the candidate with the fewest outstanding tokens
// (ties: fewest in-flight requests, then lowest ID).
func leastLoaded(cands []*Replica) *Replica {
	var best *Replica
	for _, rep := range cands {
		if best == nil ||
			rep.outTokens < best.outTokens ||
			(rep.outTokens == best.outTokens && rep.inFlight < best.inFlight) {
			best = rep
		}
	}
	return best
}

// overloaded reports whether the replica carries more than twice the
// fleet-mean outstanding tokens (plus slack so near-idle fleets never
// trigger). Affinity policies break stickiness past this point — the
// EPP's load-aware guard against hot-spotting a popular session.
func overloaded(rep *Replica, fleet []*Replica) bool {
	var total int64
	for _, r := range fleet {
		total += r.outTokens
	}
	mean := total / int64(len(fleet))
	const slack = 8192
	return rep.outTokens > 2*mean+slack
}

// ---- round-robin ----

type roundRobin struct{ next int }

// RoundRobin cycles through the fleet in replica order.
func RoundRobin() Router { return &roundRobin{} }

func (p *roundRobin) Name() string { return RoundRobinPolicy }

func (p *roundRobin) Pick(r *workload.Request, view FleetView) *Replica {
	rep := view.Candidates[p.next%len(view.Candidates)]
	p.next++
	return rep
}

// ---- least-outstanding-tokens ----

type leastTokens struct{}

// LeastTokens routes to the replica with the fewest outstanding
// (in-flight input+output) tokens.
func LeastTokens() Router { return leastTokens{} }

func (leastTokens) Name() string { return LeastTokensPolicy }

func (leastTokens) Pick(r *workload.Request, view FleetView) *Replica {
	return leastLoaded(view.Candidates)
}

// ---- prefix-cache / session affinity ----

// maxIndexedPages bounds the router's per-replica approximate view of
// cached radix pages (FIFO eviction), mirroring the EPP's bounded
// prefix-cache scorer rather than the replicas' real radix trees.
const maxIndexedPages = 1 << 18

// prefixIndex approximates which leading pages each replica has cached.
type prefixIndex struct {
	pages map[kvcache.PageID]struct{}
	order []kvcache.PageID
}

func newPrefixIndex() *prefixIndex {
	return &prefixIndex{pages: map[kvcache.PageID]struct{}{}}
}

// match counts how many leading pages of the sequence the index holds.
func (ix *prefixIndex) match(pages []kvcache.PageID) int {
	n := 0
	for _, pg := range pages {
		if _, ok := ix.pages[pg]; !ok {
			break
		}
		n++
	}
	return n
}

// add records pages the replica will cache once the request finishes.
func (ix *prefixIndex) add(pages []kvcache.PageID) {
	for _, pg := range pages {
		if _, ok := ix.pages[pg]; ok {
			continue
		}
		if len(ix.order) >= maxIndexedPages {
			old := ix.order[0]
			ix.order = ix.order[1:]
			delete(ix.pages, old)
		}
		ix.pages[pg] = struct{}{}
		ix.order = append(ix.order, pg)
	}
}

// affinity is the shared session-stickiness + prefix-scoring machinery
// used by the prefix-affinity and pd-split policies. State is keyed by
// replica ID, not slice position: the candidate set shrinks and grows as
// the fleet controller mutates the fleet.
type affinity struct {
	sessions map[int]int // session -> replica ID
	index    map[int]*prefixIndex
}

func newAffinity() *affinity {
	return &affinity{sessions: map[int]int{}, index: map[int]*prefixIndex{}}
}

// sticky returns the replica currently owning the request's session, or
// nil when the session is unknown or its holder is not in the candidate
// set (starting, draining, failed, or retired).
func (a *affinity) sticky(r *workload.Request, fleet []*Replica) *Replica {
	id, ok := a.sessions[r.Session]
	if !ok {
		return nil
	}
	for _, rep := range fleet {
		if rep.ID == id {
			return rep
		}
	}
	return nil
}

// replicaDown forgets everything pinned to a dead replica: sessions
// re-stick on their next turn (paying the KV re-prefill there), and the
// prefix index stops advertising pages that no longer exist anywhere.
func (a *affinity) replicaDown(id int) {
	for session, rep := range a.sessions {
		if rep == id {
			delete(a.sessions, session)
		}
	}
	delete(a.index, id)
}

// migrated re-homes a session whose KV streamed to a new holder: the
// pin follows the KV (unless a turn already re-routed the session
// elsewhere mid-stream — then the newer pin wins), and the destination's
// prefix index advertises the migrated pages either way, because they
// really are cached there now.
func (a *affinity) migrated(session, from, to int, pages []kvcache.PageID) {
	if cur, ok := a.sessions[session]; !ok || cur == from {
		a.sessions[session] = to
	}
	ix := a.index[to]
	if ix == nil {
		ix = newPrefixIndex()
		a.index[to] = ix
	}
	ix.add(pages)
}

// divert re-routes a request off its overloaded sticky replica: score
// the rest of the fleet so the hot replica cannot win on its own cached
// pages. A single-replica fleet has nowhere else to go.
func (a *affinity) divert(r *workload.Request, fleet []*Replica, hot *Replica) *Replica {
	cands := make([]*Replica, 0, len(fleet)-1)
	for _, rep := range fleet {
		if rep != hot {
			cands = append(cands, rep)
		}
	}
	if len(cands) == 0 {
		return hot
	}
	return a.score(r, cands)
}

// score ranks candidates by matched prefix pages (radix-page hashes of
// the trace), breaking ties toward the least-loaded replica.
func (a *affinity) score(r *workload.Request, cands []*Replica) *Replica {
	var best *Replica
	bestMatch := -1
	for _, rep := range cands {
		m := 0
		if ix := a.index[rep.ID]; ix != nil {
			m = ix.match(r.Pages)
		}
		switch {
		case m > bestMatch:
			best, bestMatch = rep, m
		case m == bestMatch && rep.outTokens < best.outTokens:
			best = rep
		}
	}
	return best
}

// record pins the session to the chosen replica and indexes the pages
// its radix cache will publish.
func (a *affinity) record(r *workload.Request, rep *Replica) {
	a.sessions[r.Session] = rep.ID
	ix := a.index[rep.ID]
	if ix == nil {
		ix = newPrefixIndex()
		a.index[rep.ID] = ix
	}
	ix.add(r.AllPages)
}

type prefixAffinity struct{ aff *affinity }

// PrefixAffinity keeps multi-turn sessions sticky to the replica holding
// their KV, scores cold requests by approximate prefix-cache match, and
// falls back to least-outstanding-tokens — the EPP prefix-cache scorer.
func PrefixAffinity() Router { return &prefixAffinity{aff: newAffinity()} }

func (p *prefixAffinity) Name() string { return PrefixAffinityPolicy }

// ReplicaDown implements FleetObserver.
func (p *prefixAffinity) ReplicaDown(id int) { p.aff.replicaDown(id) }

// SessionMigrated implements MigrationObserver.
func (p *prefixAffinity) SessionMigrated(session, from, to int, pages []kvcache.PageID) {
	p.aff.migrated(session, from, to, pages)
}

func (p *prefixAffinity) Pick(r *workload.Request, view FleetView) *Replica {
	fleet := view.Candidates
	rep := p.aff.sticky(r, fleet)
	switch {
	case rep == nil:
		rep = p.aff.score(r, fleet)
	case overloaded(rep, fleet):
		rep = p.aff.divert(r, fleet, rep)
	}
	p.aff.record(r, rep)
	return rep
}

// ---- P/D split ----

// defaultPDSplitTokens is the new-context length past which a request
// counts as long-prefill and is steered to a prefill-heavy replica.
const defaultPDSplitTokens = 4096

type pdSplit struct {
	aff       *affinity
	threshold int
}

// PDSplit implements the EPP P/D lifecycle decision: sessions stay on
// the replica holding their KV (the aggregated path, with an overload
// guard), while cold or diverted requests are classified by prompt
// length — long prefills take the split path to prefill-role replicas,
// short ones join the aggregated pool. A session opened by a long
// prefill therefore lives on its prefill-heavy replica, mirroring the
// per-request aggregation-vs-disaggregation choice of the unified P/D
// routing literature. A threshold ≤ 0 selects the default (4096
// prompt tokens).
func PDSplit(threshold int) Router {
	if threshold <= 0 {
		threshold = defaultPDSplitTokens
	}
	return &pdSplit{aff: newAffinity(), threshold: threshold}
}

func (p *pdSplit) Name() string { return PDSplitPolicy }

// ReplicaDown implements FleetObserver.
func (p *pdSplit) ReplicaDown(id int) { p.aff.replicaDown(id) }

// SessionMigrated implements MigrationObserver.
func (p *pdSplit) SessionMigrated(session, from, to int, pages []kvcache.PageID) {
	p.aff.migrated(session, from, to, pages)
}

// byRole filters the fleet; an empty result falls back to the fleet.
func byRole(fleet []*Replica, want func(Role) bool) []*Replica {
	var out []*Replica
	for _, rep := range fleet {
		if want(rep.Role) {
			out = append(out, rep)
		}
	}
	if len(out) == 0 {
		return fleet
	}
	return out
}

// without drops hot from the candidates, returning them unchanged when
// hot is nil or absent.
func without(cands []*Replica, hot *Replica) []*Replica {
	if hot == nil {
		return cands
	}
	out := make([]*Replica, 0, len(cands))
	for _, rep := range cands {
		if rep != hot {
			out = append(out, rep)
		}
	}
	return out
}

// divertPool returns the pool minus the overloaded replica, widening to
// the rest of the fleet when the pool holds nothing else — an overload
// guard that cannot shed load is a no-op, so prefer off-role replicas
// over re-pinning the hot one.
func divertPool(pool, fleet []*Replica, hot *Replica) []*Replica {
	if out := without(pool, hot); len(out) > 0 {
		return out
	}
	if out := without(fleet, hot); len(out) > 0 {
		return out
	}
	return pool
}

func (p *pdSplit) Pick(r *workload.Request, view FleetView) *Replica {
	fleet := view.Candidates
	// Cache-hit estimate: a session's reused context lives only on the
	// replica that served its previous turns. Serving anywhere else is
	// a cold prefill of the full input — the fleet model simulates no
	// KV migration — so the routing decision is: keep healthy sessions
	// on their KV holder (the aggregated path, whatever the holder's
	// role), and classify cold or diverted requests by the prefill work
	// they will actually pay, i.e. the whole prompt.
	sticky := p.aff.sticky(r, fleet)
	var rep *Replica
	switch {
	case sticky != nil && !overloaded(sticky, fleet):
		rep = sticky
	case r.InputTokens >= p.threshold:
		// Split path: long prefill goes to a prefill-heavy replica.
		// Reaching here with sticky set means it is overloaded, so the
		// divert must not hand the request straight back to it.
		pool := byRole(fleet, func(ro Role) bool { return ro == RolePrefill })
		rep = leastLoaded(divertPool(pool, fleet, sticky))
	default:
		pool := byRole(fleet, func(ro Role) bool { return ro != RolePrefill })
		rep = leastLoaded(divertPool(pool, fleet, sticky))
	}
	p.aff.record(r, rep)
	return rep
}
