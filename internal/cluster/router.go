package cluster

import (
	"fmt"

	"muxwise/internal/metrics"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// FleetView is the read-only context a Router sees at every arrival:
// the routable candidates plus, on demand, a windowed rollup of the
// fleet's recent observations. User-supplied policies receive exactly
// this view — nothing in it lets them mutate the fleet.
type FleetView struct {
	// Now is the simulation instant of the routing decision.
	Now sim.Time
	// Candidates are the routable replicas in ID order. The slice is a
	// scratch buffer rebuilt per arrival; policies must not retain it
	// (key remembered state by Replica.ID instead).
	Candidates []*Replica

	c *Cluster
}

// Metrics summarises the trailing window of fleet-wide observations
// (first-token latencies by emission time, plus the current backlog).
// It walks the fleet's recorders, so policies that need it every pick
// should prefer event-driven state via TTFTObserver. A view built
// without a cluster (unit tests) reports an empty snapshot.
func (v FleetView) Metrics(window sim.Time) metrics.Snapshot {
	if v.c == nil {
		return metrics.Snapshot{From: v.Now, To: v.Now}
	}
	return v.c.Snapshot(window)
}

// Router picks a replica for each arriving request. Pick is called from
// inside the simulation in deterministic arrival order, so stateful
// policies (cursors, session maps, prefix indexes) stay reproducible.
//
// With a lifecycle-managed fleet the candidate set changes between
// calls: replicas spawn, drain and fail mid-run, so policies must key
// any internal state by Replica.ID (stable for the life of a run), never
// by position in the slice, and must tolerate a remembered replica being
// absent from the current candidates.
//
// Pick must return nil (not panic) on an empty candidate view: the
// cluster queues arrivals while nothing is routable, and the plugin
// seam does not promise callers a non-empty view. The built-in policies
// are all epp.Pipeline compositions (see NewPipelineRouter), which
// guarantee this centrally.
type Router interface {
	Name() string
	Pick(r *workload.Request, view FleetView) *Replica
}

// FleetObserver is implemented by routers that keep per-replica state.
// The cluster calls ReplicaDown when a replica fails or retires so the
// router can unpin its sessions and drop its prefix index — the KV held
// there is gone, and the next turn of every affected session pays a full
// re-prefill on whichever replica it re-sticks to.
type FleetObserver interface {
	ReplicaDown(id int)
}

// TTFTObserver is implemented by routers that learn from observed
// latency. The cluster reports each request's TTFT against the replica
// that served it, at the instant the first token is emitted — the signal
// the adaptive-ttft policy folds into its per-replica EWMA.
type TTFTObserver interface {
	ObserveTTFT(replica int, ttft sim.Time)
}

// Policy constructs a fresh router. Routers keep per-run state, so every
// simulation (each probe of a sweep, each bisection step) needs its own.
type Policy func() Router

// Policy names.
const (
	RoundRobinPolicy     = "round-robin"
	LeastTokensPolicy    = "least-tokens"
	PrefixAffinityPolicy = "prefix-affinity"
	PDSplitPolicy        = "pd-split"
	AdaptiveTTFTPolicy   = "adaptive-ttft"
)

// builtinPolicies returns the built-in router policies by name. Every
// built-in is a filter → scorer → picker composition; see pipeline.go.
func builtinPolicies() map[string]Policy {
	return map[string]Policy{
		RoundRobinPolicy:     RoundRobin,
		LeastTokensPolicy:    LeastTokens,
		PrefixAffinityPolicy: PrefixAffinity,
		PDSplitPolicy:        func() Router { return PDSplit(0) },
		AdaptiveTTFTPolicy:   AdaptiveTTFT,
	}
}

var policyRegistry = newRegistry("router policy", builtinPolicies)

// RegisterPolicy adds a router policy to the registry under name, making
// it selectable wherever built-in names are (deployments, sweeps, CLIs).
// Registering an empty name, a nil constructor, or a name already taken
// (built-in or registered) is an error.
func RegisterPolicy(name string, p Policy) error {
	if p == nil {
		return fmt.Errorf("cluster: nil constructor for router policy %q", name)
	}
	return policyRegistry.add(name, p)
}

// Policies returns every available router policy by name: the built-ins
// plus everything added through RegisterPolicy. The map is a copy.
func Policies() map[string]Policy { return policyRegistry.all() }

// PolicyNames returns the available policy names in deterministic order.
func PolicyNames() []string { return policyRegistry.names() }

// leastLoaded returns the candidate with the fewest outstanding tokens
// (ties: fewest in-flight requests, then lowest ID). The routing
// policies express this as scorer tiers; the migration planner still
// calls it directly when choosing a takedown destination.
func leastLoaded(cands []*Replica) *Replica {
	var best *Replica
	for _, rep := range cands {
		if best == nil ||
			rep.outTokens < best.outTokens ||
			(rep.outTokens == best.outTokens && rep.inFlight < best.inFlight) {
			best = rep
		}
	}
	return best
}
