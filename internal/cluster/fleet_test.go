package cluster

import (
	"fmt"
	"strings"
	"testing"

	"muxwise/internal/core"
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// longTrace builds requests with long decodes arriving in a tight burst,
// so a failure injected shortly after the burst is guaranteed to catch
// requests in flight.
func longTrace(n int, gap sim.Time, output int) *workload.Trace {
	return burstTrace(n, gap, 800, output)
}

func burstTrace(n int, gap sim.Time, input, output int) *workload.Trace {
	tr := &workload.Trace{Name: "burst"}
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, &workload.Request{
			ID: i, Session: i, Arrival: sim.Time(i) * gap,
			InputTokens: input, OutputTokens: output,
			Pages:    pdPages(uint64(i), input),
			AllPages: pdPages(uint64(i), input+output),
		})
	}
	return tr
}

// sessionTrace builds multi-turn sessions: warm turns before splitAt,
// follow-up turns after, each turn's context the full session history.
func sessionTrace(sessions, warmTurns, tailTurns int, gap sim.Time) *workload.Trace {
	tr := &workload.Trace{Name: "sessions"}
	id := 0
	turns := warmTurns + tailTurns
	for s := 0; s < sessions; s++ {
		ctx := 0
		for turn := 0; turn < turns; turn++ {
			const newTok, out = 600, 64
			input := ctx + newTok
			at := sim.Time(turn)*sim.Time(sessions)*gap + sim.Time(s)*gap
			tr.Requests = append(tr.Requests, &workload.Request{
				ID: id, Session: s, Turn: turn, Arrival: at,
				InputTokens: input, ReusedTokens: ctx, OutputTokens: out,
				Pages:    pdPages(uint64(s), input),
				AllPages: pdPages(uint64(s), input+out),
			})
			id++
			ctx = input + out
		}
	}
	return tr
}

// fleetRun runs cfg with the given fleet script.
func fleetRun(t *testing.T, cfg Config, fc *FleetConfig, tr *workload.Trace) Result {
	t.Helper()
	cfg.Fleet = fc
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFailureRedispatchesInFlight(t *testing.T) {
	// 2k output tokens decode for minutes: failing at 20s catches every
	// request routed to replica 0 still in flight.
	tr := longTrace(8, sim.Second, 2000)
	failAt := 20 * sim.Second
	res := fleetRun(t, fleetCfg(RoundRobin, 2),
		&FleetConfig{Events: []FleetEvent{{At: failAt, Kind: FailReplica, Replica: 0}}}, tr)

	if res.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures)
	}
	failed := res.Replicas[0]
	if failed.State != StateFailed || failed.DownAt != failAt {
		t.Fatalf("replica 0 state %v down at %v, want failed at %v", failed.State, failed.DownAt, failAt)
	}
	// Every request finished despite the crash: the in-flight ones were
	// re-dispatched to replica 1.
	if res.Summary.Finished != tr.Len() {
		t.Fatalf("finished %d of %d after failure", res.Summary.Finished, tr.Len())
	}
	if res.Unrouted != 0 {
		t.Fatalf("unrouted = %d, want 0", res.Unrouted)
	}
	// The failed replica keeps only requests it completed before the
	// crash; every in-flight one moved to the survivor, with no request
	// lost or duplicated.
	kept := len(failed.Result.Rec.IDs())
	moved := failed.Requests - kept
	if moved <= 0 {
		t.Fatalf("no in-flight requests to re-dispatch (assigned %d, completed %d); failure tested nothing",
			failed.Requests, kept)
	}
	if failed.Result.Rec.Unfinished() != 0 {
		t.Fatalf("failed replica still holds %d unfinished requests", failed.Result.Rec.Unfinished())
	}
	if got := len(res.Replicas[1].Result.Rec.IDs()); got != tr.Len()-kept {
		t.Fatalf("survivor holds %d requests, want %d", got, tr.Len()-kept)
	}
	// The re-dispatch is visible in the fleet log.
	found := false
	for _, ev := range res.Events {
		if ev.At == failAt &&
			strings.Contains(ev.Msg, fmt.Sprintf("fail %s (%d in-flight re-dispatched)", failed.Name, moved)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("fleet log missing re-dispatch entry for %d moved requests: %+v", moved, res.Events)
	}
	// Re-dispatched requests keep their original arrival, so the
	// failover latency shows in TTFT of the merged view.
	if res.Summary.Requests != tr.Len() {
		t.Fatalf("merged requests %d, want %d (no duplicates, no losses)", res.Summary.Requests, tr.Len())
	}
}

func TestFailureReSticksSessionsAndChargesReprefill(t *testing.T) {
	// Warm 3 turns per session, crash one replica, then 3 more turns.
	tr := sessionTrace(8, 3, 3, 2*sim.Second)
	// Fail between warm and tail turns: after the 3rd round of turns.
	failAt := 3*8*2*sim.Second + sim.Second
	mk := func() Config { return fleetCfg(PrefixAffinity, 2) }

	healthy := fleetRun(t, mk(),
		&FleetConfig{Events: []FleetEvent{{At: failAt, Kind: MarkEpoch}}}, tr)
	failed := fleetRun(t, mk(),
		&FleetConfig{Events: []FleetEvent{{At: failAt, Kind: FailReplica, Replica: 0}}}, tr)

	// Every post-failure arrival must land off the dead replica.
	where := replicaOf(failed)
	deadName := failed.Replicas[0].Name
	for _, r := range tr.Requests {
		if r.Arrival >= failAt && where[r.ID] == deadName {
			t.Fatalf("request %d (arrival %v) routed to dead replica %s", r.ID, r.Arrival, deadName)
		}
	}
	// Sessions formerly pinned to the dead replica re-stick: each lives
	// on exactly one replica after the failure.
	perSession := map[int]map[string]bool{}
	for _, r := range tr.Requests {
		if r.Arrival < failAt {
			continue
		}
		if perSession[r.Session] == nil {
			perSession[r.Session] = map[string]bool{}
		}
		perSession[r.Session][where[r.ID]] = true
	}
	for s, reps := range perSession {
		if len(reps) != 1 {
			t.Fatalf("session %d spread over %d replicas after failure", s, len(reps))
		}
	}
	// The re-prefill penalty: in the aligned post-failure epoch, the
	// failed fleet's cache-hit rate must drop below the healthy fleet's
	// (the dead replica's sessions arrive cold wherever they re-stuck).
	epochAfter := func(res Result) Epoch {
		for _, ep := range res.Epochs {
			if ep.From >= failAt {
				return ep
			}
		}
		t.Fatalf("no epoch after %v in %+v", failAt, res.Epochs)
		return Epoch{}
	}
	h, f := epochAfter(healthy), epochAfter(failed)
	if f.CacheHit >= h.CacheHit {
		t.Fatalf("post-failure cache hit %.3f did not drop below healthy %.3f", f.CacheHit, h.CacheHit)
	}
	if h.CacheHit == 0 {
		t.Fatal("healthy post-epoch cache hit is zero; the warm-up phase is broken")
	}
	// Both runs still finish everything.
	if failed.Summary.Finished != tr.Len() {
		t.Fatalf("failure run finished %d of %d", failed.Summary.Finished, tr.Len())
	}
}

func TestFailureRunIsDeterministic(t *testing.T) {
	mkTrace := func() *workload.Trace { return mixedTrace(17, 15, 0.15) }
	failAt := 60 * sim.Second
	run := func() Result {
		return fleetRun(t, fleetCfg(PrefixAffinity, 3),
			&FleetConfig{Events: []FleetEvent{{At: failAt, Kind: FailReplica, Replica: 1}}}, mkTrace())
	}
	a, b := run(), run()
	// Byte-identical reports: summaries, per-replica routing, epochs and
	// the fleet log all render identically.
	if as, bs := fmt.Sprintf("%+v", a.Summary), fmt.Sprintf("%+v", b.Summary); as != bs {
		t.Fatalf("summaries differ:\n%s\n%s", as, bs)
	}
	if as, bs := fmt.Sprintf("%+v", a.Epochs), fmt.Sprintf("%+v", b.Epochs); as != bs {
		t.Fatalf("epochs differ:\n%s\n%s", as, bs)
	}
	if as, bs := fmt.Sprintf("%+v", a.Events), fmt.Sprintf("%+v", b.Events); as != bs {
		t.Fatalf("fleet logs differ:\n%s\n%s", as, bs)
	}
	for i := range a.Replicas {
		if a.Replicas[i].Requests != b.Replicas[i].Requests {
			t.Fatalf("replica %d routed %d vs %d", i, a.Replicas[i].Requests, b.Replicas[i].Requests)
		}
	}
}

func TestDrainFinishesInPlaceThenRetires(t *testing.T) {
	tr := longTrace(6, sim.Second, 2000)
	drainAt := 8 * sim.Second
	res := fleetRun(t, fleetCfg(RoundRobin, 2),
		&FleetConfig{Events: []FleetEvent{{At: drainAt, Kind: DrainReplica, Replica: 0}}}, tr)

	drained := res.Replicas[0]
	if drained.State != StateRetired {
		t.Fatalf("drained replica state %v, want retired", drained.State)
	}
	if drained.DownAt <= drainAt {
		t.Fatalf("drained replica retired at %v, want after the drain at %v (in-flight finished in place)",
			drained.DownAt, drainAt)
	}
	// Unlike a failure, a drain keeps its in-flight requests: everything
	// routed there before the drain completes there.
	if got := len(drained.Result.Rec.IDs()); got != drained.Requests {
		t.Fatalf("drained replica completed %d of its %d requests", got, drained.Requests)
	}
	if res.Summary.Finished != tr.Len() {
		t.Fatalf("finished %d of %d", res.Summary.Finished, tr.Len())
	}
	// Nothing arrives on a draining replica.
	where := replicaOf(res)
	for _, r := range tr.Requests {
		if r.Arrival >= drainAt && where[r.ID] == drained.Name {
			t.Fatalf("request %d arrived on draining replica", r.ID)
		}
	}
}

func TestSpawnColdStartAndPendingFlush(t *testing.T) {
	// A one-replica fleet fails at 5s; a replacement spawns at 10s with a
	// 5s cold start. Requests arriving in the gap queue and flush.
	tr := longTrace(10, 2*sim.Second, 64)
	res := fleetRun(t, fleetCfg(RoundRobin, 1), &FleetConfig{Events: []FleetEvent{
		{At: 5 * sim.Second, Kind: FailReplica, Replica: 0},
		{At: 10 * sim.Second, Kind: SpawnReplica, ColdStart: 5 * sim.Second},
	}}, tr)

	if len(res.Replicas) != 2 {
		t.Fatalf("%d replicas, want 2 (initial + spawned)", len(res.Replicas))
	}
	spawned := res.Replicas[1]
	if spawned.ReadyAt != 15*sim.Second {
		t.Fatalf("spawned replica ready at %v, want 15s (10s spawn + 5s cold start)", spawned.ReadyAt)
	}
	if res.Summary.Finished != tr.Len() || res.Unrouted != 0 {
		t.Fatalf("finished %d of %d, unrouted %d; pending flush broken",
			res.Summary.Finished, tr.Len(), res.Unrouted)
	}
	// Between them, the failed original and the replacement account for
	// the whole trace.
	kept := len(res.Replicas[0].Result.Rec.IDs())
	if got := len(spawned.Result.Rec.IDs()); got != tr.Len()-kept {
		t.Fatalf("spawned replica served %d, want %d (trace %d minus %d completed pre-crash)",
			got, tr.Len()-kept, tr.Len(), kept)
	}
	if spawned.Requests == 0 {
		t.Fatal("spawned replica took no traffic")
	}
}

func TestBacklogAutoscalerSpawnsUnderPressure(t *testing.T) {
	// One replica, sustained arrivals far beyond it: the scaler must
	// grow the fleet, and the replicas it adds must absorb the later
	// arrivals (requests route at arrival, so new capacity only helps
	// traffic still to come).
	tr := longTrace(60, 500*sim.Millisecond, 600)
	res := fleetRun(t, fleetCfg(LeastTokens, 1), &FleetConfig{
		Scaler:    BacklogScaler{},
		Cadence:   2 * sim.Second,
		ColdStart: 3 * sim.Second,
		Max:       6,
	}, tr)

	if len(res.Replicas) <= 1 {
		t.Fatal("autoscaler never spawned despite backlog")
	}
	if len(res.Replicas) > 6 {
		t.Fatalf("autoscaler spawned %d replicas, cap is 6", len(res.Replicas))
	}
	if res.Summary.Finished != tr.Len() {
		t.Fatalf("finished %d of %d", res.Summary.Finished, tr.Len())
	}
	tookTraffic := false
	for _, rep := range res.Replicas[1:] {
		if rep.Requests > 0 {
			tookTraffic = true
		}
	}
	if !tookTraffic {
		t.Fatal("no spawned replica took traffic")
	}
	// Determinism of the scaling trajectory.
	res2 := fleetRun(t, fleetCfg(LeastTokens, 1), &FleetConfig{
		Scaler:    BacklogScaler{},
		Cadence:   2 * sim.Second,
		ColdStart: 3 * sim.Second,
		Max:       6,
	}, longTrace(60, 500*sim.Millisecond, 600))
	if len(res2.Replicas) != len(res.Replicas) {
		t.Fatalf("autoscaler non-deterministic: %d vs %d replicas", len(res.Replicas), len(res2.Replicas))
	}
}

func TestTTFTAutoscalerReactsToTail(t *testing.T) {
	// Prefill-heavy burst: 16k-token prompts queue behind each other on
	// one replica, so the TTFT tail blows well past the 500 ms target.
	tr := burstTrace(20, 100*sim.Millisecond, 16000, 100)
	res := fleetRun(t, fleetCfg(LeastTokens, 1), &FleetConfig{
		Scaler:    TTFTScaler{Target: 500 * sim.Millisecond},
		Cadence:   2 * sim.Second,
		ColdStart: 3 * sim.Second,
		Max:       4,
	}, tr)
	if len(res.Replicas) <= 1 {
		t.Fatal("ttft autoscaler never spawned despite a blown TTFT tail")
	}
	if res.Summary.Finished != tr.Len() {
		t.Fatalf("finished %d of %d", res.Summary.Finished, tr.Len())
	}
}

func TestHeterogeneousFleetUsesPerShapeCosts(t *testing.T) {
	cfg := Config{
		Base: serve.Config{
			Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B(),
			SLO: metrics.SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond},
		},
		Replicas: []ReplicaSpec{
			{Engine: "MuxWise", Factory: core.New, Count: 1},
			{Engine: "MuxWise", Factory: core.New, Count: 1, Hardware: gpu.H100()},
		},
		Policy: RoundRobin,
	}
	tr := longTrace(12, sim.Second, 300)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Finished != tr.Len() {
		t.Fatalf("finished %d of %d", res.Summary.Finished, tr.Len())
	}
	a100, h100 := res.Replicas[0].Result, res.Replicas[1].Result
	if len(a100.Devices) == 0 || len(h100.Devices) == 0 {
		t.Fatal("missing device stats")
	}
	// Same engine, same per-replica request mix (round-robin), but the
	// H100 shape must run its share faster than the A100 shape.
	if h100.Summary.TBT.Avg >= a100.Summary.TBT.Avg {
		t.Fatalf("H100 avg TBT %.4fs not faster than A100 %.4fs — per-shape cost model not applied",
			h100.Summary.TBT.Avg, a100.Summary.TBT.Avg)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	base := fleetCfg(RoundRobin, 2)
	bad := func(fc FleetConfig) error {
		cfg := base
		cfg.Fleet = &fc
		_, err := Run(cfg, &workload.Trace{})
		return err
	}
	if err := bad(FleetConfig{Events: []FleetEvent{{At: 0, Kind: FailReplica, Replica: 7}}}); err == nil {
		t.Error("out-of-range event target should error")
	}
	if err := bad(FleetConfig{Events: []FleetEvent{{At: -sim.Second, Kind: MarkEpoch}}}); err == nil {
		t.Error("negative event time should error")
	}
	if err := bad(FleetConfig{Events: []FleetEvent{{At: 0, Kind: EventKind(99)}}}); err == nil {
		t.Error("unknown event kind should error")
	}
	if err := bad(FleetConfig{Min: 5, Max: 2}); err == nil {
		t.Error("min > max should error")
	}
	// A spawn raises the valid target range for later events.
	if err := bad(FleetConfig{Events: []FleetEvent{
		{At: sim.Second, Kind: SpawnReplica},
		{At: 2 * sim.Second, Kind: DrainReplica, Replica: 2},
	}}); err != nil {
		t.Errorf("drain of a spawned replica should validate: %v", err)
	}
	// Validation follows firing order, not list order: the fail below
	// fires before either spawn, when only replicas 0-1 exist.
	if err := bad(FleetConfig{Events: []FleetEvent{
		{At: 60 * sim.Second, Kind: SpawnReplica},
		{At: 30 * sim.Second, Kind: SpawnReplica},
		{At: 10 * sim.Second, Kind: FailReplica, Replica: 2},
	}}); err == nil {
		t.Error("fail firing before any spawn should error")
	}
	if err := bad(FleetConfig{Events: []FleetEvent{
		{At: 60 * sim.Second, Kind: SpawnReplica},
		{At: 30 * sim.Second, Kind: SpawnReplica},
		{At: 40 * sim.Second, Kind: FailReplica, Replica: 2},
	}}); err != nil {
		t.Errorf("fail of the 30s spawn at 40s should validate: %v", err)
	}
}

func TestParseRoleRoundTrips(t *testing.T) {
	for _, role := range []Role{RoleGeneral, RolePrefill, RoleDecode} {
		got, err := ParseRole(role.String())
		if err != nil {
			t.Fatalf("ParseRole(%q): %v", role.String(), err)
		}
		if got != role {
			t.Fatalf("ParseRole(%q) = %v, want %v", role.String(), got, role)
		}
	}
	if r, err := ParseRole(""); err != nil || r != RoleGeneral {
		t.Fatalf("ParseRole(\"\") = %v, %v; want general", r, err)
	}
	if _, err := ParseRole("embedding"); err == nil {
		t.Fatal("unknown role should error")
	}
}

// degenerate Pick inputs: a single-replica fleet leaves policies no
// choice, and an all-overloaded fleet must still pick someone.
func TestPickDegenerateFleets(t *testing.T) {
	req := func(n int) *workload.Request {
		return &workload.Request{ID: n, Session: 1, Turn: n,
			InputTokens: 9000, OutputTokens: 64,
			Pages: pdPages(3, 9000), AllPages: pdPages(3, 9064)}
	}
	for name, policy := range Policies() {
		single := bareFleet(RoleGeneral)
		r := policy()
		for i := 0; i < 3; i++ {
			if got := r.Pick(req(i), view(single)); got != single[0] {
				t.Fatalf("%s: single-replica fleet picked %v", name, got)
			}
		}
		// All replicas drowning: stickiness and role preferences aside,
		// Pick must return a live candidate, deterministically.
		hot := bareFleet(RoleGeneral, RolePrefill, RoleDecode)
		for _, rep := range hot {
			rep.outTokens = 1 << 30
			rep.inFlight = 99
		}
		r = policy()
		first := r.Pick(req(0), view(hot))
		if first == nil {
			t.Fatalf("%s: all-overloaded fleet returned nil", name)
		}
		r2 := policy()
		if again := r2.Pick(req(0), view(hot)); again != first {
			t.Fatalf("%s: all-overloaded pick not deterministic", name)
		}
	}
}
