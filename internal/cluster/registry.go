package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// registry is a named-constructor table with built-in entries and
// runtime registration — the one implementation behind both the router
// and autoscaler registries. Registration usually happens in init
// functions, but sweeps probe concurrently, so all access is guarded.
type registry[T any] struct {
	kind    string // "router policy", "autoscaler" — for error text
	builtin func() map[string]T

	mu    sync.RWMutex
	extra map[string]T
}

func newRegistry[T any](kind string, builtin func() map[string]T) *registry[T] {
	return &registry[T]{kind: kind, builtin: builtin, extra: map[string]T{}}
}

// add registers v under name, rejecting empty and duplicate names.
func (r *registry[T]) add(name string, v T) error {
	if name == "" {
		return fmt.Errorf("cluster: empty %s name", r.kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.builtin()[name]; dup {
		return fmt.Errorf("cluster: %s %q is already registered (built-in)", r.kind, name)
	}
	if _, dup := r.extra[name]; dup {
		return fmt.Errorf("cluster: %s %q is already registered", r.kind, name)
	}
	r.extra[name] = v
	return nil
}

// all returns every entry by name — built-ins plus registered — as a
// fresh copy.
func (r *registry[T]) all() map[string]T {
	out := r.builtin()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for k, v := range r.extra {
		out[k] = v
	}
	return out
}

// names returns the available names in deterministic (sorted) order.
func (r *registry[T]) names() []string {
	entries := r.all()
	names := make([]string, 0, len(entries))
	for k := range entries {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
