package cluster

import (
	"muxwise/internal/cluster/epp"
	"muxwise/internal/kvcache"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// The built-in router policies are epp compositions: each constructor
// below assembles filter → scorer → picker profiles over shared
// affinity / EWMA state instead of hand-rolling a Pick monolith. The
// placements are bit-identical to the historical monoliths on a static
// fleet (the pipeline-equivalence suite in legacy_test.go replays the
// MixedBursty trace against both), which is what keeps the frontier
// goldens and TestTraceDeterminism byte-stable across the refactor.

// Pipeline is a composed endpoint-picker routing *Replica — the
// instantiation of epp.Pipeline the fleet runs.
type Pipeline = epp.Pipeline[*Replica]

// PipelineProfile is one filter → scorer → picker chain over *Replica.
type PipelineProfile = epp.Profile[*Replica]

// pipelineRouter adapts an epp pipeline to the Router seam and fans the
// cluster's observer callbacks into it. It implements every observer
// interface unconditionally; pipelines whose stages keep no matching
// state just fan out to an empty list.
type pipelineRouter struct{ p *Pipeline }

// NewPipelineRouter wraps a composed pipeline as a fleet Router.
func NewPipelineRouter(p *Pipeline) Router { return pipelineRouter{p: p} }

func (pr pipelineRouter) Name() string { return pr.p.Name() }

func (pr pipelineRouter) Pick(r *workload.Request, view FleetView) *Replica {
	return pr.p.Pick(r, epp.View[*Replica]{Now: view.Now, Candidates: view.Candidates})
}

// ReplicaDown implements FleetObserver.
func (pr pipelineRouter) ReplicaDown(id int) { pr.p.ReplicaDown(id) }

// ObserveTTFT implements TTFTObserver.
func (pr pipelineRouter) ObserveTTFT(replica int, ttft sim.Time) {
	pr.p.ObserveTTFT(replica, ttft)
}

// SessionMigrated implements MigrationObserver.
func (pr pipelineRouter) SessionMigrated(session, from, to int, pages []kvcache.PageID) {
	pr.p.SessionMigrated(session, from, to, pages)
}

// tier wraps a single scorer as one weight-1 lexicographic tier.
func tier(s epp.Scorer[*Replica]) []epp.Weighted[*Replica] {
	return []epp.Weighted[*Replica]{{Scorer: s, Weight: 1}}
}

// loadTiers is least-outstanding-tokens with an in-flight tie-break —
// the scorer form of the leastLoaded helper (final ties fall to the
// picker's lowest-ID rule).
func loadTiers() [][]epp.Weighted[*Replica] {
	return [][]epp.Weighted[*Replica]{
		tier(epp.LeastTokens[*Replica]()),
		tier(epp.LeastRequests[*Replica]()),
	}
}

// RoundRobin cycles through the fleet in replica-ID ring order. Unlike
// the historical positional cursor (next % len against a changing
// length), the ring stays fair when the fleet resizes mid-run: a spawn
// or drain never repeats or starves a replica across the boundary.
func RoundRobin() Router {
	return NewPipelineRouter(epp.New(RoundRobinPolicy, nil,
		[]PipelineProfile{{Name: "all", Picker: epp.RoundRobin[*Replica]()}}))
}

// LeastTokens routes to the replica with the fewest outstanding
// (in-flight input+output) tokens, breaking ties by in-flight requests
// then lowest ID.
func LeastTokens() Router {
	return NewPipelineRouter(epp.New(LeastTokensPolicy, nil,
		[]PipelineProfile{{Name: "all", Scorers: loadTiers()}}))
}

// PrefixAffinity keeps multi-turn sessions sticky to the replica holding
// their KV, scores cold requests by approximate prefix-cache match, and
// falls back to least-outstanding-tokens — the EPP prefix-cache scorer.
// Composition: an affinity classifier picks sticky / divert / cold;
// sticky narrows to the holder, divert drops the overloaded holder, and
// both scored profiles rank by prefix match then load.
func PrefixAffinity() Router {
	aff := epp.NewAffinity[*Replica]()
	prefixTiers := [][]epp.Weighted[*Replica]{
		tier(epp.PrefixMatch(aff)),
		tier(epp.LeastTokens[*Replica]()),
	}
	profiles := []PipelineProfile{
		{Name: "sticky", Filters: []epp.Filter[*Replica]{epp.StickySession(aff)}},
		{Name: "divert", Filters: []epp.Filter[*Replica]{epp.Divert(aff, false)}, Scorers: prefixTiers},
		{Name: "cold", Scorers: prefixTiers},
	}
	cl := epp.NewAffinityClassifier(aff, 0, 1, 2)
	return NewPipelineRouter(epp.New(PrefixAffinityPolicy, cl, profiles, aff))
}

// PDSplit implements the EPP P/D lifecycle decision: sessions stay on
// the replica holding their KV (the aggregated path, with an overload
// guard), while cold or diverted requests are classified by prompt
// length — long prefills take the split path to prefill-role replicas,
// short ones join the aggregated pool. A session opened by a long
// prefill therefore lives on its prefill-heavy replica, mirroring the
// per-request aggregation-vs-disaggregation choice of the unified P/D
// routing literature. A threshold ≤ 0 selects the default (4096 prompt
// tokens). Composition: a P/D classifier in front of role-filtered,
// divert-widened, load-scored pools.
func PDSplit(threshold int) Router {
	aff := epp.NewAffinity[*Replica]()
	profiles := []PipelineProfile{
		{Name: "sticky", Filters: []epp.Filter[*Replica]{epp.StickySession(aff)}},
		{Name: "split", Filters: []epp.Filter[*Replica]{
			epp.KeepRoles[*Replica](RolePrefill),
			epp.Divert(aff, true),
		}, Scorers: loadTiers()},
		{Name: "aggregated", Filters: []epp.Filter[*Replica]{
			epp.KeepRoles[*Replica](RoleGeneral, RoleDecode),
			epp.Divert(aff, true),
		}, Scorers: loadTiers()},
	}
	cl := epp.NewPDClassifier(aff, threshold, 0, 1, 2)
	return NewPipelineRouter(epp.New(PDSplitPolicy, cl, profiles, aff))
}

// defaultPDSplitTokens re-exports the classifier default for the tests
// and docs that reference it by its historical name.
const defaultPDSplitTokens = epp.DefaultPDSplitTokens
