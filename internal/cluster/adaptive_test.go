package cluster

import (
	"testing"

	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// coldReq builds a cold single-turn request with a distinct session, so
// stickiness never masks the scoring decision under test.
func coldReq(n int) *workload.Request {
	return &workload.Request{ID: n, Session: 1000 + n,
		InputTokens: 800, OutputTokens: 64,
		Pages: pdPages(uint64(200+n), 800), AllPages: pdPages(uint64(200+n), 864)}
}

// observer extracts the TTFT-learning seam from a router; the adaptive
// composition exposes it through the pipeline's observer fan-out.
func observer(t *testing.T, r Router) TTFTObserver {
	t.Helper()
	obs, ok := r.(TTFTObserver)
	if !ok {
		t.Fatalf("%s does not implement TTFTObserver", r.Name())
	}
	return obs
}

func TestAdaptiveTTFTFollowsObservedLatency(t *testing.T) {
	fleet := bareFleet(RoleGeneral, RoleGeneral)
	r := AdaptiveTTFT()
	obs := observer(t, r)

	// Replica 0 has been slow, replica 1 fast: cold traffic must go to 1.
	for i := 0; i < 5; i++ {
		obs.ObserveTTFT(0, 2*sim.Second)
		obs.ObserveTTFT(1, 50*sim.Millisecond)
	}
	if got := r.Pick(coldReq(0), view(fleet)); got != fleet[1] {
		t.Fatalf("cold request routed to %s, want the learned-fast replica", got.Name)
	}

	// The fast replica's advantage shrinks as its queue grows: pile
	// enough outstanding work on it and the slow-but-idle replica wins.
	fleet[1].outTokens = 1 << 20
	if got := r.Pick(coldReq(1), view(fleet)); got != fleet[0] {
		t.Fatal("load inflation should overcome a stale fast EWMA")
	}
}

func TestAdaptiveTTFTExploresUnseenReplicas(t *testing.T) {
	fleet := bareFleet(RoleGeneral, RoleGeneral)
	r := AdaptiveTTFT()
	// Only replica 0 has ever been observed, and it was fast — but the
	// never-observed replica 1 scores at the floor and must be explored.
	observer(t, r).ObserveTTFT(0, 100*sim.Millisecond)
	if got := r.Pick(coldReq(0), view(fleet)); got != fleet[1] {
		t.Fatal("unseen replica should be explored before trusting the ranking")
	}
}

func TestAdaptiveTTFTEmptyFleet(t *testing.T) {
	r := AdaptiveTTFT()
	// A direct Pick on an empty candidate set must return nil, not panic
	// — the cluster queues arrivals in that state, but the plugin seam
	// does not promise callers a non-empty view.
	if got := r.Pick(coldReq(0), view(nil)); got != nil {
		t.Fatalf("empty fleet picked %v, want nil", got)
	}
	// The nil pick must not have pinned the session to anything: the
	// next pick with a live fleet routes normally.
	fleet := bareFleet(RoleGeneral)
	if got := r.Pick(coldReq(0), view(fleet)); got != fleet[0] {
		t.Fatal("pick after an empty-fleet miss should route to the live replica")
	}
}

func TestAdaptiveTTFTAllDrainingCandidates(t *testing.T) {
	// The cluster only offers StateReady candidates, but a policy must
	// tolerate any candidate set handed through the seam — e.g. a
	// harness replaying a drain storm. Every pick must land inside the
	// given set without panicking.
	fleet := bareFleet(RoleGeneral, RoleGeneral)
	for _, rep := range fleet {
		rep.State = StateDraining
	}
	r := AdaptiveTTFT()
	got := r.Pick(coldReq(0), view(fleet))
	if got != fleet[0] && got != fleet[1] {
		t.Fatalf("pick returned %v, want a candidate", got)
	}
}

func TestAdaptiveTTFTSingleColdReplica(t *testing.T) {
	// One never-observed replica: the EWMA state is empty, outstanding
	// load is zero, and the pick must still land — the floor keeps the
	// prediction positive and finite with no observations at all.
	fleet := bareFleet(RoleGeneral)
	r := AdaptiveTTFT()
	if got := r.Pick(coldReq(0), view(fleet)); got != fleet[0] {
		t.Fatal("single cold replica must win its own fleet")
	}
	// A zero-TTFT observation (first token at arrival) seeds the EWMA at
	// zero; the floor must keep the prediction positive and the pick
	// stable.
	observer(t, r).ObserveTTFT(0, 0)
	if got := r.Pick(coldReq(1), view(fleet)); got != fleet[0] {
		t.Fatal("zero-seeded EWMA must not unroute the only replica")
	}
}

func TestAdaptiveTTFTSticksAndObservesDown(t *testing.T) {
	fleet := bareFleet(RoleGeneral, RoleGeneral, RoleGeneral)
	r := AdaptiveTTFT()
	obs := observer(t, r)
	turn := func(n int) *workload.Request {
		return &workload.Request{ID: n, Session: 7, Turn: n,
			InputTokens: 1000, OutputTokens: 100,
			Pages: pdPages(42, 1000), AllPages: pdPages(42, 1100)}
	}
	home := r.Pick(turn(0), view(fleet))
	if r.Pick(turn(1), view(fleet)) != home {
		t.Fatal("session should stay sticky while the replica is healthy")
	}
	// Make the home replica's learned latency terrible: stickiness must
	// still hold — only overload breaks affinity, not a bad EWMA.
	obs.ObserveTTFT(home.ID, 30*sim.Second)
	if r.Pick(turn(2), view(fleet)) != home {
		t.Fatal("a slow EWMA alone must not move a healthy session")
	}
	// Overloading the holder diverts the session off it.
	home.outTokens = 1 << 20
	if got := r.Pick(turn(3), view(fleet)); got == home {
		t.Fatal("overloaded sticky replica must shed the session")
	}
	// ReplicaDown forgets both the sessions and the learned latency:
	// after the crash, a fresh cold request sees the (revived) ID as
	// never-observed again — the terrible EWMA must not linger.
	home.outTokens = 0
	r.(FleetObserver).ReplicaDown(home.ID)
	if got := r.Pick(coldReq(90), view(fleet)); got != fleet[0] {
		t.Fatalf("forgotten EWMA should leave all replicas at the floor (lowest ID wins), got %s", got.Name)
	}
}
