package cluster

// The pre-pipeline router monoliths, preserved verbatim (renamed) as
// the reference implementations for the pipeline-equivalence suite:
// each composition must replay the MixedBursty trace with placements
// identical to its monolith, so the frontier goldens and
// TestTraceDeterminism cannot drift across the refactor. round-robin is
// the one deliberate divergence — but only when the fleet resizes
// mid-run (the positional-cursor bug); on a static fleet it too must
// match.

import (
	"testing"

	"muxwise/internal/core"
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// ---- legacy round-robin (positional cursor) ----

type legacyRoundRobin struct{ next int }

func (p *legacyRoundRobin) Name() string { return RoundRobinPolicy }

func (p *legacyRoundRobin) Pick(r *workload.Request, view FleetView) *Replica {
	rep := view.Candidates[p.next%len(view.Candidates)]
	p.next++
	return rep
}

// ---- legacy least-tokens ----

type legacyLeastTokens struct{}

func (legacyLeastTokens) Name() string { return LeastTokensPolicy }

func (legacyLeastTokens) Pick(r *workload.Request, view FleetView) *Replica {
	return leastLoaded(view.Candidates)
}

// ---- legacy shared affinity machinery ----

const legacyMaxIndexedPages = 1 << 18

// legacyPrefixIndex is the slice-reslicing FIFO whose eviction pinned
// the backing array (order = order[1:]).
type legacyPrefixIndex struct {
	pages map[kvcache.PageID]struct{}
	order []kvcache.PageID
}

func newLegacyPrefixIndex() *legacyPrefixIndex {
	return &legacyPrefixIndex{pages: map[kvcache.PageID]struct{}{}}
}

func (ix *legacyPrefixIndex) match(pages []kvcache.PageID) int {
	n := 0
	for _, pg := range pages {
		if _, ok := ix.pages[pg]; !ok {
			break
		}
		n++
	}
	return n
}

func (ix *legacyPrefixIndex) add(pages []kvcache.PageID) {
	for _, pg := range pages {
		if _, ok := ix.pages[pg]; ok {
			continue
		}
		if len(ix.order) >= legacyMaxIndexedPages {
			old := ix.order[0]
			ix.order = ix.order[1:]
			delete(ix.pages, old)
		}
		ix.pages[pg] = struct{}{}
		ix.order = append(ix.order, pg)
	}
}

func legacyOverloaded(rep *Replica, fleet []*Replica) bool {
	var total int64
	for _, r := range fleet {
		total += r.outTokens
	}
	mean := total / int64(len(fleet))
	const slack = 8192
	return rep.outTokens > 2*mean+slack
}

type legacyAffinity struct {
	sessions map[int]int
	index    map[int]*legacyPrefixIndex
}

func newLegacyAffinity() *legacyAffinity {
	return &legacyAffinity{sessions: map[int]int{}, index: map[int]*legacyPrefixIndex{}}
}

func (a *legacyAffinity) sticky(r *workload.Request, fleet []*Replica) *Replica {
	id, ok := a.sessions[r.Session]
	if !ok {
		return nil
	}
	for _, rep := range fleet {
		if rep.ID == id {
			return rep
		}
	}
	return nil
}

func (a *legacyAffinity) replicaDown(id int) {
	for session, rep := range a.sessions {
		if rep == id {
			delete(a.sessions, session)
		}
	}
	delete(a.index, id)
}

func (a *legacyAffinity) migrated(session, from, to int, pages []kvcache.PageID) {
	if cur, ok := a.sessions[session]; !ok || cur == from {
		a.sessions[session] = to
	}
	ix := a.index[to]
	if ix == nil {
		ix = newLegacyPrefixIndex()
		a.index[to] = ix
	}
	ix.add(pages)
}

func (a *legacyAffinity) divert(r *workload.Request, fleet []*Replica, hot *Replica) *Replica {
	cands := make([]*Replica, 0, len(fleet)-1)
	for _, rep := range fleet {
		if rep != hot {
			cands = append(cands, rep)
		}
	}
	if len(cands) == 0 {
		return hot
	}
	return a.score(r, cands)
}

func (a *legacyAffinity) score(r *workload.Request, cands []*Replica) *Replica {
	var best *Replica
	bestMatch := -1
	for _, rep := range cands {
		m := 0
		if ix := a.index[rep.ID]; ix != nil {
			m = ix.match(r.Pages)
		}
		switch {
		case m > bestMatch:
			best, bestMatch = rep, m
		case m == bestMatch && rep.outTokens < best.outTokens:
			best = rep
		}
	}
	return best
}

func (a *legacyAffinity) record(r *workload.Request, rep *Replica) {
	a.sessions[r.Session] = rep.ID
	ix := a.index[rep.ID]
	if ix == nil {
		ix = newLegacyPrefixIndex()
		a.index[rep.ID] = ix
	}
	ix.add(r.AllPages)
}

// ---- legacy prefix-affinity ----

type legacyPrefixAffinity struct{ aff *legacyAffinity }

func (p *legacyPrefixAffinity) Name() string { return PrefixAffinityPolicy }

func (p *legacyPrefixAffinity) ReplicaDown(id int) { p.aff.replicaDown(id) }

func (p *legacyPrefixAffinity) SessionMigrated(session, from, to int, pages []kvcache.PageID) {
	p.aff.migrated(session, from, to, pages)
}

func (p *legacyPrefixAffinity) Pick(r *workload.Request, view FleetView) *Replica {
	fleet := view.Candidates
	rep := p.aff.sticky(r, fleet)
	switch {
	case rep == nil:
		rep = p.aff.score(r, fleet)
	case legacyOverloaded(rep, fleet):
		rep = p.aff.divert(r, fleet, rep)
	}
	p.aff.record(r, rep)
	return rep
}

// ---- legacy pd-split ----

type legacyPDSplit struct {
	aff       *legacyAffinity
	threshold int
}

func (p *legacyPDSplit) Name() string { return PDSplitPolicy }

func (p *legacyPDSplit) ReplicaDown(id int) { p.aff.replicaDown(id) }

func (p *legacyPDSplit) SessionMigrated(session, from, to int, pages []kvcache.PageID) {
	p.aff.migrated(session, from, to, pages)
}

func legacyByRole(fleet []*Replica, want func(Role) bool) []*Replica {
	var out []*Replica
	for _, rep := range fleet {
		if want(rep.Role) {
			out = append(out, rep)
		}
	}
	if len(out) == 0 {
		return fleet
	}
	return out
}

func legacyWithout(cands []*Replica, hot *Replica) []*Replica {
	if hot == nil {
		return cands
	}
	out := make([]*Replica, 0, len(cands))
	for _, rep := range cands {
		if rep != hot {
			out = append(out, rep)
		}
	}
	return out
}

func legacyDivertPool(pool, fleet []*Replica, hot *Replica) []*Replica {
	if out := legacyWithout(pool, hot); len(out) > 0 {
		return out
	}
	if out := legacyWithout(fleet, hot); len(out) > 0 {
		return out
	}
	return pool
}

func (p *legacyPDSplit) Pick(r *workload.Request, view FleetView) *Replica {
	fleet := view.Candidates
	sticky := p.aff.sticky(r, fleet)
	var rep *Replica
	switch {
	case sticky != nil && !legacyOverloaded(sticky, fleet):
		rep = sticky
	case r.InputTokens >= p.threshold:
		pool := legacyByRole(fleet, func(ro Role) bool { return ro == RolePrefill })
		rep = leastLoaded(legacyDivertPool(pool, fleet, sticky))
	default:
		pool := legacyByRole(fleet, func(ro Role) bool { return ro != RolePrefill })
		rep = leastLoaded(legacyDivertPool(pool, fleet, sticky))
	}
	p.aff.record(r, rep)
	return rep
}

// ---- legacy adaptive-ttft ----

const (
	legacyAdaptiveAlpha     = 0.2
	legacyAdaptiveTTFTFloor = 0.005
	legacyAdaptiveLoadScale = 8192
)

type legacyAdaptiveTTFT struct {
	aff  *legacyAffinity
	ewma map[int]float64
}

func (p *legacyAdaptiveTTFT) Name() string { return AdaptiveTTFTPolicy }

func (p *legacyAdaptiveTTFT) ObserveTTFT(replica int, ttft sim.Time) {
	v := ttft.Seconds()
	if old, ok := p.ewma[replica]; ok {
		v = old + legacyAdaptiveAlpha*(v-old)
	}
	p.ewma[replica] = v
}

func (p *legacyAdaptiveTTFT) ReplicaDown(id int) {
	p.aff.replicaDown(id)
	delete(p.ewma, id)
}

func (p *legacyAdaptiveTTFT) SessionMigrated(session, from, to int, pages []kvcache.PageID) {
	p.aff.migrated(session, from, to, pages)
}

func (p *legacyAdaptiveTTFT) score(rep *Replica) float64 {
	base := legacyAdaptiveTTFTFloor
	if v, ok := p.ewma[rep.ID]; ok && v > base {
		base = v
	}
	return base * (1 + float64(rep.outTokens)/legacyAdaptiveLoadScale)
}

func (p *legacyAdaptiveTTFT) best(cands []*Replica) *Replica {
	var best *Replica
	var bestScore float64
	for _, rep := range cands {
		s := p.score(rep)
		if best == nil || s < bestScore ||
			(s == bestScore && rep.outTokens < best.outTokens) {
			best, bestScore = rep, s
		}
	}
	return best
}

func (p *legacyAdaptiveTTFT) Pick(r *workload.Request, view FleetView) *Replica {
	fleet := view.Candidates
	if len(fleet) == 0 {
		return nil
	}
	rep := p.aff.sticky(r, fleet)
	switch {
	case rep == nil:
		rep = p.best(fleet)
	case legacyOverloaded(rep, fleet):
		if cands := legacyWithout(fleet, rep); len(cands) > 0 {
			rep = p.best(cands)
		}
	}
	p.aff.record(r, rep)
	return rep
}

// ---- the equivalence suite ----

// legacyPolicies pairs each built-in name with its monolith reference.
func legacyPolicies() map[string]Policy {
	return map[string]Policy{
		RoundRobinPolicy:  func() Router { return &legacyRoundRobin{} },
		LeastTokensPolicy: func() Router { return legacyLeastTokens{} },
		PrefixAffinityPolicy: func() Router {
			return &legacyPrefixAffinity{aff: newLegacyAffinity()}
		},
		PDSplitPolicy: func() Router {
			return &legacyPDSplit{aff: newLegacyAffinity(), threshold: defaultPDSplitTokens}
		},
		AdaptiveTTFTPolicy: func() Router {
			return &legacyAdaptiveTTFT{aff: newLegacyAffinity(), ewma: map[int]float64{}}
		},
	}
}

// roleCfg builds a mixed-role fleet so pd-split's pools are real: two
// general MuxWise replicas, one prefill-tagged, one decode-tagged.
func roleCfg(policy Policy) Config {
	cfg := fleetCfg(policy, 2)
	cfg.Replicas = append(cfg.Replicas,
		ReplicaSpec{Engine: "MuxWise", Factory: core.New, Count: 1, Role: RolePrefill},
		ReplicaSpec{Engine: "MuxWise", Factory: core.New, Count: 1, Role: RoleDecode, Hardware: gpu.H100()},
	)
	return cfg
}

// assertSameRun fails unless the two results placed every request on
// the same replica and rolled up to identical summaries.
func assertSameRun(t *testing.T, name string, legacy, composed Result) {
	t.Helper()
	if legacy.Summary != composed.Summary {
		t.Fatalf("%s: summary diverged\nlegacy:   %+v\ncomposed: %+v", name, legacy.Summary, composed.Summary)
	}
	lw, cw := replicaOf(legacy), replicaOf(composed)
	if len(lw) != len(cw) {
		t.Fatalf("%s: request counts diverged: %d vs %d", name, len(lw), len(cw))
	}
	diverged := 0
	for id, want := range lw {
		if cw[id] != want {
			diverged++
			if diverged <= 3 {
				t.Errorf("%s: request %d placed on %s, monolith placed it on %s", name, id, cw[id], want)
			}
		}
	}
	if diverged > 0 {
		t.Fatalf("%s: %d of %d placements diverged from the monolith", name, diverged, len(lw))
	}
}

// TestCompositionsMatchLegacyMonoliths replays the MixedBursty trace on
// a static mixed-role fleet: every built-in composition must place
// every request exactly where its pre-pipeline monolith did.
func TestCompositionsMatchLegacyMonoliths(t *testing.T) {
	legacies := legacyPolicies()
	for _, name := range PolicyNames() {
		legacy, ok := legacies[name]
		if !ok {
			continue // not a built-in (e.g. registered by another test)
		}
		composed := Policies()[name]
		tr := mixedTrace(29, 24, 0.14)
		lres, err := Run(roleCfg(legacy), tr)
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		cres, err := Run(roleCfg(composed), mixedTrace(29, 24, 0.14))
		if err != nil {
			t.Fatalf("%s composed: %v", name, err)
		}
		assertSameRun(t, name, lres, cres)
	}
}

// TestCompositionsMatchLegacyUnderFleetEvents repeats the equivalence
// replay with lifecycle churn — a mid-run spawn, a drain and a failure
// — exercising the observer fan-out (ReplicaDown, re-dispatch,
// re-stick). round-robin is excluded: its resize behaviour is the bug
// the ring-order picker fixes (see TestRoundRobinFairAcrossResize).
func TestCompositionsMatchLegacyUnderFleetEvents(t *testing.T) {
	legacies := legacyPolicies()
	events := &FleetConfig{Events: []FleetEvent{
		{At: 20 * sim.Second, Kind: SpawnReplica},
		{At: 45 * sim.Second, Kind: FailReplica, Replica: 1},
		{At: 70 * sim.Second, Kind: DrainReplica, Replica: 0},
	}}
	for _, name := range PolicyNames() {
		legacy, ok := legacies[name]
		if !ok || name == RoundRobinPolicy {
			continue
		}
		composed := Policies()[name]
		run := func(p Policy) Result {
			cfg := roleCfg(p)
			cfg.Fleet = events
			res, err := Run(cfg, mixedTrace(31, 24, 0.14))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res
		}
		assertSameRun(t, name, run(legacy), run(composed))
	}
}
