package cluster

// Regression tests for the three router bugs fixed by the pipeline
// refactor. Each fails against the pre-fix monoliths (preserved in
// legacy_test.go): roundRobin.Pick panicked with a mod-by-zero on an
// empty candidate view, prefixAffinity.Pick nil-dereferenced in
// aff.record when score saw no candidates, and the positional
// round-robin cursor skewed across fleet resizes.

import (
	"slices"
	"testing"

	"muxwise/internal/workload"
)

// TestPoliciesSurviveEmptyView is the satellite table test: every
// registered policy must return nil — not panic — on an empty candidate
// view, leave no state behind (the nil pick must not pin the session),
// and still route normally on the next live view. Single-candidate
// views must always pick that candidate. Parity with PR 4's
// adaptive-ttft empty-fleet guard, now guaranteed centrally by
// Pipeline.Pick.
func TestPoliciesSurviveEmptyView(t *testing.T) {
	req := func(n int) *workload.Request {
		return &workload.Request{ID: n, Session: 5, Turn: n,
			InputTokens: 6000, OutputTokens: 64,
			Pages: pdPages(9, 6000), AllPages: pdPages(9, 6064)}
	}
	for _, name := range PolicyNames() {
		r := Policies()[name]()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("%s: Pick panicked on empty view: %v", name, p)
				}
			}()
			if got := r.Pick(req(0), view(nil)); got != nil {
				t.Fatalf("%s: empty view picked %v, want nil", name, got)
			}
			if got := r.Pick(req(1), view([]*Replica{})); got != nil {
				t.Fatalf("%s: empty non-nil view picked %v, want nil", name, got)
			}
		}()
		// The empty-view miss must not have pinned session state: the
		// same session now routes onto the single live replica.
		single := bareFleet(RoleGeneral)
		for i := 2; i < 5; i++ {
			if got := r.Pick(req(i), view(single)); got != single[0] {
				t.Fatalf("%s: single-candidate view picked %v, want the only replica", name, got)
			}
		}
		// And the view can empty again mid-run (drain storm) without
		// upsetting the now-populated affinity/EWMA state.
		if got := r.Pick(req(5), view(nil)); got != nil {
			t.Fatalf("%s: empty view after live picks picked %v, want nil", name, got)
		}
		if got := r.Pick(req(6), view(single)); got != single[0] {
			t.Fatalf("%s: recovery pick after drain storm went to %v", name, got)
		}
	}
}

// TestLegacyMonolithsFailOnEmptyView documents why the table test above
// exists: the preserved pre-fix monoliths really do blow up on an empty
// candidate view (round-robin: integer mod by zero; prefix-affinity:
// nil-deref in record). If this test ever fails, the legacy copies no
// longer reproduce the bug the pipeline fixed and the equivalence
// baseline is suspect.
func TestLegacyMonolithsFailOnEmptyView(t *testing.T) {
	for _, name := range []string{RoundRobinPolicy, PrefixAffinityPolicy} {
		r := legacyPolicies()[name]()
		panicked := func() (p bool) {
			defer func() { p = recover() != nil }()
			r.Pick(coldReq(0), view(nil))
			return false
		}()
		if !panicked {
			t.Errorf("legacy %s survived an empty view; expected the historical panic", name)
		}
	}
}

// pickSeq routes n sequential single-turn requests and returns the
// replica IDs picked, in order.
func pickSeq(r Router, fleet []*Replica, from, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		rep := r.Pick(coldReq(from+i), view(fleet))
		out = append(out, rep.ID)
	}
	return out
}

// TestRoundRobinFairAcrossResize is the cursor-skew regression test:
// with the positional cursor (next % len against a changing length) a
// spawn shifts every later pick one slot back — serving the same
// replica twice in a row across the boundary — and a drain double-
// serves an early replica while the newest one starves. The ring-order
// picker keys the cursor to the stable replica ID instead.
func TestRoundRobinFairAcrossResize(t *testing.T) {
	r := RoundRobin()
	fleet := bareFleet(RoleGeneral, RoleGeneral, RoleGeneral)

	// Static prefix: identical to the historical sequence 0,1,2,0,1...
	if got := pickSeq(r, fleet, 0, 5); !slices.Equal(got, []int{0, 1, 2, 0, 1}) {
		t.Fatalf("static fleet sequence %v, want 0 1 2 0 1", got)
	}

	// Spawn replica 3 mid-cycle (the cursor just served ID 1). The
	// legacy cursor (next=5) would compute 5%4 and serve ID 1 again,
	// back to back; the ring continues to ID 2.
	grown := append(fleet, &Replica{ID: 3, Name: "rep-3", Role: RoleGeneral})
	got := pickSeq(r, grown, 10, 8)
	if got[0] == 1 {
		t.Fatalf("pick after spawn repeated replica 1 back to back (legacy cursor skew): %v", got)
	}
	if want := []int{2, 3, 0, 1, 2, 3, 0, 1}; !slices.Equal(got, want) {
		t.Fatalf("post-spawn ring sequence %v, want %v", got, want)
	}

	// Drain replica 1 mid-cycle: the ring just served ID 1, so the next
	// pick must be ID 2 — the legacy cursor lands back on an already-
	// served replica while ID 3's share shrinks.
	shrunk := []*Replica{grown[0], grown[2], grown[3]} // IDs 0, 2, 3
	got = pickSeq(r, shrunk, 20, 6)
	if want := []int{2, 3, 0, 2, 3, 0}; !slices.Equal(got, want) {
		t.Fatalf("post-drain ring sequence %v, want %v", got, want)
	}

	// Over any full post-resize window the spread stays perfectly even.
	counts := map[int]int{}
	for _, id := range got {
		counts[id]++
	}
	for _, rep := range shrunk {
		if counts[rep.ID] != 2 {
			t.Fatalf("post-drain spread uneven: %v", counts)
		}
	}
}

// TestLegacyRoundRobinSkewsAcrossResize pins the pre-fix behaviour the
// test above guards against: the positional cursor really does serve
// the same replica twice in a row when the fleet grows mid-cycle.
func TestLegacyRoundRobinSkewsAcrossResize(t *testing.T) {
	r := &legacyRoundRobin{}
	fleet := bareFleet(RoleGeneral, RoleGeneral, RoleGeneral)
	seq := pickSeq(r, fleet, 0, 5) // cursor now at 5, last served ID 1
	if !slices.Equal(seq, []int{0, 1, 2, 0, 1}) {
		t.Fatalf("legacy static sequence %v", seq)
	}
	grown := append(fleet, &Replica{ID: 3, Name: "rep-3", Role: RoleGeneral})
	if got := r.Pick(coldReq(10), view(grown)); got.ID != 1 {
		t.Fatalf("legacy cursor should repeat replica 1 after the spawn, got %d", got.ID)
	}
}
