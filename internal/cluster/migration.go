package cluster

import (
	"sort"

	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/obs"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// KV migration on graceful takedowns. Without it, every drain, retire
// and autoscaler scale-down strands the KV of the sessions pinned to
// the leaving replica: their next turn re-sticks elsewhere and repays a
// full re-prefill (the behavior PR 2 charged through the cache-hit
// machinery, and still the fallback). With migration enabled, the
// leaving replica streams each in-flight session's KV to the replica
// its traffic re-routes to, at the modeled interconnect cost
// (kvcache.TransferTime over the gpu.LinkBetween the two shapes): the
// destination's token load carries the in-transit KV until it lands,
// the pages then publish into the destination's prefix pool so the
// session's next turn admits as a cache hit, and affinity routers are
// told to re-pin the session to its new KV holder. A crash is not
// graceful: FailReplica never streams, and it kills any stream still in
// flight through the crashed replica — half-migrated KV does not
// survive, those sessions fall back to the re-prefill penalty.

// MigrationConfig enables and tunes KV streaming on graceful takedowns.
// The zero value disables migration, preserving the re-prefill-only
// fleet behavior byte for byte.
type MigrationConfig struct {
	// Enabled turns on KV streaming for drains, retires and autoscaler
	// scale-downs. Failures always lose their KV.
	Enabled bool
	// Handoff is the fixed per-session stream setup latency (default
	// kvcache.DefaultHandoff).
	Handoff sim.Time
	// BytesPerToken overrides the per-token KV wire size; zero derives
	// it from the deployment model (Arch.KVBytesPerToken).
	BytesPerToken float64
}

// MigrationStats aggregates a run's KV-migration accounting. Token
// conservation holds at every instant: DrainKVTokens (in-flight session
// KV observed at graceful takedowns) equals MigratedTokens (delivered)
// + CanceledTokens (lost to a crash mid-stream) + RePrefillTokens
// (never streamed: no routable target) + UndeliveredTokens (still on
// the wire when the run ended).
type MigrationStats struct {
	// Streams counts KV streams started; Completed/Canceled split their
	// outcomes. Fallbacks counts sessions that could not stream at all.
	Streams   int
	Completed int
	Canceled  int
	Fallbacks int

	// MigratedTokens is KV delivered to destinations; CanceledTokens
	// was lost mid-stream to a crash; RePrefillTokens never streamed
	// and repays a full re-prefill; UndeliveredTokens is still in
	// flight at the end of the run.
	MigratedTokens    int64
	CanceledTokens    int64
	RePrefillTokens   int64
	UndeliveredTokens int64

	// DrainKVTokens is the in-flight session KV observed at graceful
	// takedown instants — the conservation total.
	DrainKVTokens int64

	// Stall sums the stream latencies (handoff + transfer) of every
	// started stream — the time migrated sessions spent waiting on the
	// wire instead of recomputing prefill.
	Stall sim.Time
}

// sessionKV is the context KV a replica's pool holds for one session:
// the token span and pages of its latest completed turn.
type sessionKV struct {
	tokens int64
	pages  []kvcache.PageID
}

// trackKV records, at turn completion, that rep's pool now holds the
// session's context KV (Complete published AllPages there). The
// previous holder — if the session hopped replicas — is released: its
// copy is stale for routing purposes. Only ready replicas claim
// holdership: a draining replica's finishing turns were already
// streamed out at the drain instant, and their completions must not
// steal the session back from the stream's destination. No-op while
// migration is disabled, keeping the legacy fleet byte-identical.
func (c *Cluster) trackKV(rep *Replica, req *workload.Request) {
	if !c.migCfg.Enabled || rep.State != StateReady {
		return
	}
	if prev, ok := c.kvHolder[req.Session]; ok && prev != rep.ID {
		delete(c.Replicas[prev].sessions, req.Session)
	}
	c.kvHolder[req.Session] = rep.ID
	rep.sessions[req.Session] = sessionKV{
		tokens: int64(req.InputTokens + req.OutputTokens),
		pages:  req.AllPages,
	}
}

// releaseKV detaches one session from rep's holdings (ownership passes
// to a stream or dies with a crash).
func (c *Cluster) releaseKV(rep *Replica, session int) {
	delete(rep.sessions, session)
	if c.kvHolder[session] == rep.ID {
		delete(c.kvHolder, session)
	}
}

// forgetKV drops every session holding still attached to a replica that
// left the fleet — whatever was not streamed out is gone.
func (c *Cluster) forgetKV(rep *Replica) {
	for session := range rep.sessions {
		if c.kvHolder[session] == rep.ID {
			delete(c.kvHolder, session)
		}
	}
	rep.sessions = map[int]sessionKV{}
}

// migration is one in-flight KV stream.
type migration struct {
	id       int // stream index, correlates the flight-recorder span
	session  int
	src, dst int // replica IDs
	tokens   int64
	pages    []kvcache.PageID
	// req, when set, is a re-dispatched in-flight request held back
	// until its KV lands (an immediate retire); nil for drain streams
	// whose request finishes in place on the source.
	req *workload.Request

	done, canceled bool
}

// MigrationObserver is implemented by routers that track
// session→replica affinity. SessionMigrated fires when a session's KV
// finished streaming to a new holder: the router should re-pin the
// session (if it still points at the source) and advertise the pages on
// the destination, so the session's next turn follows its KV instead of
// re-prefilling somewhere cold.
type MigrationObserver interface {
	SessionMigrated(session, from, to int, pages []kvcache.PageID)
}

// hwOf resolves a replica's hardware shape (per-shape override or the
// deployment base).
func (c *Cluster) hwOf(rep *Replica) gpu.Spec {
	if rep.Spec.Hardware.Name != "" {
		return rep.Spec.Hardware
	}
	return c.base.Spec
}

// migrationTarget picks where a leaving replica's session KV streams:
// the least-loaded routable replica, preferring replicas of the
// source's role so the migrated pins do not fight role-aware routing
// (a drained prefill replica's sessions land on another prefill
// replica, not in the decode pool). Falls back to any routable replica
// when the role has no other member.
func (c *Cluster) migrationTarget(src *Replica) *Replica {
	cands := c.Routable()
	var sameRole []*Replica
	for _, rep := range cands {
		if rep.Role == src.Role {
			sameRole = append(sameRole, rep)
		}
	}
	if len(sameRole) > 0 {
		return leastLoaded(sameRole)
	}
	return leastLoaded(cands)
}

// migrateKV starts one KV stream from src. tokens/pages cover the
// session context being moved; req, when non-nil, is a re-dispatched
// request held until the stream lands. Returns false when no stream
// could start (no routable target): the caller falls back to the
// re-prefill path. Every call adds to the conservation total.
func (c *Cluster) migrateKV(src *Replica, session int, tokens int64, pages []kvcache.PageID, req *workload.Request) bool {
	c.migStats.DrainKVTokens += tokens
	dst := c.migrationTarget(src)
	if dst == nil {
		c.migStats.Fallbacks++
		c.migStats.RePrefillTokens += tokens
		return false
	}
	link := gpu.LinkBetween(c.hwOf(src), c.hwOf(dst))
	d := kvcache.TransferTime(tokens, c.kvBytesPerToken, link, c.migCfg.Handoff)
	m := &migration{id: len(c.migs), session: session, src: src.ID, dst: dst.ID, tokens: tokens, pages: pages, req: req}
	c.migs = append(c.migs, m)
	c.migStats.Streams++
	c.migStats.Stall += d
	if c.trace != nil {
		c.trace.AsyncBegin(c.Sim.Now(), "migration", "kv-migration", int64(m.id), "kv-stream",
			obs.Arg{Key: "session", Val: session},
			obs.Arg{Key: "src", Val: src.Name},
			obs.Arg{Key: "dst", Val: dst.Name},
			obs.Arg{Key: "tokens", Val: tokens},
			obs.Arg{Key: "bytes", Val: int64(float64(tokens) * c.kvBytesPerToken)},
			obs.Arg{Key: "link", Val: link.Class.String()},
			obs.Arg{Key: "eta_ms", Val: d.Milliseconds()},
			obs.Arg{Key: "holds_request", Val: req != nil})
	}
	if req != nil {
		c.heldReqs[req.ID] = true
	}

	// The in-transit KV counts against the destination's token load
	// from the moment the stream is committed, so routers see the
	// capacity it is about to occupy; on arrival it moves into the
	// destination's prefix pool (real capacity, eviction pressure).
	dst.outTokens += tokens
	dst.migTokens += tokens
	src.kvOut += tokens
	if req != nil {
		c.migHeld++
	}
	c.logf("kv-migrate session %d %s -> %s (%d tokens over %v, %v)",
		session, src.Name, dst.Name, tokens, link.Class, d)
	c.Sim.After(d, func() { c.finishMigration(m) })
	return true
}

// finishMigration lands one stream: the pages publish into the
// destination's prefix pool, the router re-pins the session, and a held
// re-dispatched request finally submits — to the KV holder when it is
// still routable, through the router otherwise.
func (c *Cluster) finishMigration(m *migration) {
	if m.canceled {
		return
	}
	m.done = true
	dst := c.Replicas[m.dst]
	dst.outTokens -= m.tokens
	dst.migTokens -= m.tokens
	dst.kvIn += m.tokens
	dst.Inst.PreloadKV(m.pages)
	c.migStats.Completed++
	c.migStats.MigratedTokens += m.tokens
	// The destination is the session's KV holder now — unless a turn
	// that arrived mid-stream already re-homed it elsewhere, in which
	// case the newer holder wins.
	if _, ok := c.kvHolder[m.session]; !ok && dst.State == StateReady {
		c.kvHolder[m.session] = dst.ID
		dst.sessions[m.session] = sessionKV{tokens: m.tokens, pages: m.pages}
	}
	if mo, ok := c.Router.(MigrationObserver); ok {
		mo.SessionMigrated(m.session, m.src, m.dst, m.pages)
	}
	c.logf("kv-arrived session %d at %s (%d tokens)", m.session, dst.Name, m.tokens)
	if c.trace != nil {
		c.trace.AsyncEnd(c.Sim.Now(), "migration", "kv-migration", int64(m.id), "kv-stream",
			obs.Arg{Key: "outcome", Val: "delivered"})
	}
	if m.req != nil {
		c.migHeld--
		if dst.routable() {
			dst.submit(m.req)
		} else {
			c.Submit(m.req)
		}
	}
}

// cancelMigrations kills the streams a takedown invalidates: every
// stream into the dead replica (the destination vanished), and — when
// the takedown is a crash — every stream out of it (half-migrated KV
// does not survive; the sessions repay the full re-prefill). A graceful
// retire of the source leaves its outbound streams running: the drain
// holds the instance up until its data has left.
func (c *Cluster) cancelMigrations(rep *Replica, srcCrashed bool) {
	for _, m := range c.migs {
		if m.done || m.canceled {
			continue
		}
		if m.dst != rep.ID && !(srcCrashed && m.src == rep.ID) {
			continue
		}
		m.canceled = true
		dst := c.Replicas[m.dst]
		if !dst.down() {
			// A downed destination already had its counters reset by its
			// own takedown; subtracting would leave them negative.
			dst.outTokens -= m.tokens
			dst.migTokens -= m.tokens
		}
		c.migStats.Canceled++
		c.migStats.CanceledTokens += m.tokens
		c.logf("kv-migration canceled session %d %s -> %s (%d tokens re-prefill)",
			m.session, c.Replicas[m.src].Name, dst.Name, m.tokens)
		if c.trace != nil {
			c.trace.AsyncEnd(c.Sim.Now(), "migration", "kv-migration", int64(m.id), "kv-stream",
				obs.Arg{Key: "outcome", Val: "canceled"})
		}
		if m.req != nil {
			// The held request lost its stream: re-dispatch it now; it
			// pays the re-prefill wherever the router places it.
			c.migHeld--
			c.Submit(m.req)
		}
	}
}

// drainMigrations streams the session KV of a replica entering drain:
// first the in-flight sessions (their requests finish in place; what
// streams is the full context KV, input plus the output the in-flight
// turn is producing, overlapping the tail of the decode), then every
// idle session whose latest turn completed here. Either way the
// session's next turn — which re-routes immediately, the draining
// replica being unroutable — finds its KV warm at the destination.
func (c *Cluster) drainMigrations(rep *Replica) {
	if !c.migCfg.Enabled {
		return
	}
	seen := map[int]bool{}
	for _, id := range rep.Inst.Open() {
		req, ok := rep.reqs[id]
		if !ok || seen[req.Session] {
			continue
		}
		seen[req.Session] = true
		c.releaseKV(rep, req.Session)
		c.migrateKV(rep, req.Session, int64(req.InputTokens+req.OutputTokens), req.AllPages, nil)
	}
	c.sweepSessionKV(rep)
	c.forgetKV(rep)
}

// sweepSessionKV streams every idle session holding off a replica, in
// session order for determinism. What streams is clamped to the prefix
// the pool still physically holds — evicted KV cannot be migrated, and
// a fully evicted session has nothing to stream (its next turn was
// going to re-prefill under the baseline too). Sessions that cannot
// stream for want of a routable target are charged as re-prefill
// fallbacks.
func (c *Cluster) sweepSessionKV(rep *Replica) {
	ids := make([]int, 0, len(rep.sessions))
	for session := range rep.sessions {
		ids = append(ids, session)
	}
	sort.Ints(ids)
	for _, session := range ids {
		kv := rep.sessions[session]
		c.releaseKV(rep, session)
		matched, pageTokens := rep.Inst.PeekKV(kv.pages)
		if matched <= 0 {
			continue
		}
		held := int64(matched * pageTokens)
		pages := kv.pages
		if held < kv.tokens {
			pages = pages[:matched]
		} else {
			held = kv.tokens
		}
		c.migrateKV(rep, session, held, pages, nil)
	}
}

// undeliveredTokens sums the KV still on the wire (streams neither
// landed nor canceled) — the conservation remainder at run end.
func (c *Cluster) undeliveredTokens() int64 {
	var n int64
	for _, m := range c.migs {
		if !m.done && !m.canceled {
			n += m.tokens
		}
	}
	return n
}
