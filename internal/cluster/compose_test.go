package cluster

import (
	"strings"
	"testing"

	"muxwise/internal/workload"
)

func TestParseCompositionRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"least-tokens",                      // missing prefix
		"epp:",                              // empty composition
		"epp:scorers",                       // clause without =
		"epp:profiles=two",                  // unknown clause
		"epp:filters=healthy",               // unknown filter
		"epp:filters=role:tpu",              // unknown role
		"epp:filters=role:",                 // empty role list
		"epp:scorers=goodput",               // unknown scorer
		"epp:scorers=prefix:0",              // weight must be positive
		"epp:scorers=prefix:-2",             // negative weight
		"epp:scorers=prefix:fast",           // non-numeric weight
		"epp:picker=random",                 // unknown picker
		"epp:scorers=least-tokens;picker=x", // valid clause then bad one
	} {
		if _, err := ParseComposition(spec); err == nil {
			t.Errorf("ParseComposition(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseCompositionAcceptsGrammar(t *testing.T) {
	for _, spec := range []string{
		"epp:scorers=least-tokens",
		"epp:scorers=prefix:2,least-tokens:1",
		"epp:scorers=prefix:2.5,session,ttft-ewma:0.25,least-requests",
		"epp:filters=role:prefill|decode,sticky,divert-widen;scorers=least-tokens",
		"epp:picker=round-robin",
		"epp: filters=sticky ; scorers= prefix , least-tokens ",
	} {
		p, err := ParseComposition(spec)
		if err != nil {
			t.Fatalf("ParseComposition(%q): %v", spec, err)
		}
		r := p()
		if r.Name() != spec {
			t.Fatalf("composed router named %q, want the spec %q", r.Name(), spec)
		}
		// Every composition honors the empty-view contract and lands on
		// the only candidate of a singleton view.
		if got := r.Pick(coldReq(0), view(nil)); got != nil {
			t.Fatalf("%q: empty view picked %v", spec, got)
		}
		single := bareFleet(RoleGeneral)
		if got := r.Pick(coldReq(1), view(single)); got != single[0] {
			t.Fatalf("%q: singleton view picked %v", spec, got)
		}
	}
}

func TestComposedPrefixWeightBeatsLoad(t *testing.T) {
	p, err := ParseComposition("epp:scorers=prefix:2,least-tokens:1")
	if err != nil {
		t.Fatal(err)
	}
	r := p()
	fleet := bareFleet(RoleGeneral, RoleGeneral)

	// Route a warm-up onto replica 1 (replica 0 is busy); the pick
	// records its pages in replica 1's prefix index.
	fleet[0].outTokens = 100
	warm := &workload.Request{ID: 0, Session: 50, InputTokens: 800, OutputTokens: 64,
		Pages: pdPages(9, 800), AllPages: pdPages(9, 864)}
	if got := r.Pick(warm, view(fleet)); got != fleet[1] {
		t.Fatalf("warm-up routed to %s, want the idle replica", got.Name)
	}

	// A different session sharing the prefix must ride the cache even
	// though replica 1 now carries slightly more load — the weighted
	// blend is 2*match - outstanding, not a lexicographic tie-break.
	fleet[0].outTokens = 5
	fleet[1].outTokens = 6
	probe := &workload.Request{ID: 1, Session: 51, InputTokens: 800, OutputTokens: 64,
		Pages: pdPages(9, 800), AllPages: pdPages(9, 864)}
	if got := r.Pick(probe, view(fleet)); got != fleet[1] {
		t.Fatal("weighted prefix score should outweigh a small load gap")
	}
}

func TestComposedRoundRobinPicker(t *testing.T) {
	p, err := ParseComposition("epp:picker=round-robin")
	if err != nil {
		t.Fatal(err)
	}
	r := p()
	fleet := bareFleet(RoleGeneral, RoleGeneral, RoleGeneral)
	for i, want := range []int{0, 1, 2, 0} {
		if got := r.Pick(coldReq(i), view(fleet)); got.ID != want {
			t.Fatalf("pick %d went to %d, want %d", i, got.ID, want)
		}
	}
}

func TestComposedRoleFilterNarrowsThePool(t *testing.T) {
	p, err := ParseComposition("epp:filters=role:prefill|decode;scorers=least-tokens")
	if err != nil {
		t.Fatal(err)
	}
	r := p()
	fleet := bareFleet(RoleGeneral, RolePrefill, RoleDecode)
	fleet[0].outTokens = 0 // idle, but filtered out by role
	fleet[1].outTokens = 10
	fleet[2].outTokens = 20
	if got := r.Pick(coldReq(0), view(fleet)); got != fleet[1] {
		t.Fatalf("picked %s, want the least-loaded prefill/decode replica", got.Name)
	}
}

func TestComposedStickyFilterPinsSessions(t *testing.T) {
	p, err := ParseComposition("epp:filters=sticky;scorers=least-tokens")
	if err != nil {
		t.Fatal(err)
	}
	r := p()
	fleet := bareFleet(RoleGeneral, RoleGeneral)
	turn := func(n int) *workload.Request {
		return &workload.Request{ID: n, Session: 7, Turn: n,
			InputTokens: 1000, OutputTokens: 100,
			Pages: pdPages(42, 1000), AllPages: pdPages(42, 1100)}
	}
	fleet[0].outTokens = 100
	home := r.Pick(turn(0), view(fleet))
	if home != fleet[1] {
		t.Fatalf("first turn routed to %s, want the idle replica", home.Name)
	}
	// Load shifts the other way, but the pin holds (the single-profile
	// composition has no overload classifier — stickiness is absolute).
	fleet[0].outTokens = 0
	fleet[1].outTokens = 100
	if r.Pick(turn(1), view(fleet)) != home {
		t.Fatal("sticky composition should hold the session on its home replica")
	}
}

func TestComposedPolicyBuildsFreshStatePerRouter(t *testing.T) {
	p, err := ParseComposition("epp:filters=sticky;scorers=least-tokens")
	if err != nil {
		t.Fatal(err)
	}
	fleet := bareFleet(RoleGeneral, RoleGeneral)
	turn := func(n int) *workload.Request {
		return &workload.Request{ID: n, Session: 3, Turn: n,
			InputTokens: 500, OutputTokens: 50,
			Pages: pdPages(8, 500), AllPages: pdPages(8, 550)}
	}
	fleet[0].outTokens = 100
	first := p()
	if got := first.Pick(turn(0), view(fleet)); got != fleet[1] {
		t.Fatalf("first router pinned session to %s, want rep-1", got.Name)
	}
	// A second router from the same policy must not inherit the pin:
	// with the load reversed, the same session routes to replica 0.
	fleet[0].outTokens = 0
	fleet[1].outTokens = 100
	second := p()
	if picked := second.Pick(turn(1), view(fleet)); picked != fleet[0] {
		t.Fatal("second router inherited session state from the first")
	}
}

func TestResolvePolicySelectsNamesAndSpecs(t *testing.T) {
	if _, err := ResolvePolicy(LeastTokensPolicy); err != nil {
		t.Fatalf("registered name failed to resolve: %v", err)
	}
	if _, err := ResolvePolicy("epp:scorers=prefix:2,least-tokens:1"); err != nil {
		t.Fatalf("inline spec failed to resolve: %v", err)
	}
	if _, err := ResolvePolicy("epp:scorers=goodput"); err == nil {
		t.Fatal("bad inline spec resolved without error")
	}
	_, err := ResolvePolicy("no-such-router")
	if err == nil {
		t.Fatal("unknown name resolved without error")
	}
	if !strings.Contains(err.Error(), CompositionPrefix) {
		t.Fatalf("unknown-name error should mention composition specs: %v", err)
	}
}

// TestComposedRouterRunsDeterministically replays the same trace twice
// through a full cluster run behind an inline spec: composed pipelines
// must be as replayable as the built-ins.
func TestComposedRouterRunsDeterministically(t *testing.T) {
	p, err := ParseComposition("epp:filters=sticky;scorers=prefix,least-tokens")
	if err != nil {
		t.Fatal(err)
	}
	cfg := roleCfg(p)
	a, err := Run(cfg, mixedTrace(37, 24, 0.14))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, mixedTrace(37, 24, 0.14))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, "composed", a, b)
}
