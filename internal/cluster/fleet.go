package cluster

import (
	"fmt"
	"sort"

	"muxwise/internal/metrics"
	"muxwise/internal/obs"
	"muxwise/internal/sim"
)

// EventKind names a scheduled fleet lifecycle transition.
type EventKind int

const (
	// SpawnReplica adds a replica of FleetEvent.Spec; it becomes
	// routable after its cold-start delay.
	SpawnReplica EventKind = iota
	// DrainReplica stops new traffic to the target; in-flight requests
	// finish in place, then it retires.
	DrainReplica
	// FailReplica crashes the target: in-flight requests re-dispatch and
	// its KV is lost (sessions pay a re-prefill wherever they re-stick).
	FailReplica
	// RetireReplica decommissions the target immediately, re-dispatching
	// its in-flight requests.
	RetireReplica
	// MarkEpoch opens a new reporting epoch without changing the fleet —
	// it aligns epoch boundaries across runs (e.g. a healthy baseline
	// against a failure run at the same instant).
	MarkEpoch
)

// String renders the event kind.
func (k EventKind) String() string {
	switch k {
	case SpawnReplica:
		return "spawn"
	case DrainReplica:
		return "drain"
	case FailReplica:
		return "fail"
	case RetireReplica:
		return "retire"
	case MarkEpoch:
		return "mark"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// FleetEvent is one scheduled lifecycle transition, processed inside the
// deterministic event loop at At.
type FleetEvent struct {
	At   sim.Time
	Kind EventKind
	// Replica targets drain/fail/retire by ID (its index in spawn
	// order: the initial fleet occupies 0..n-1).
	Replica int
	// Spec is the shape to spawn; a nil Factory borrows the first
	// configured replica shape. Spec.Count > 1 spawns that many
	// replicas at once, each with its own cold start.
	Spec ReplicaSpec
	// ColdStart overrides FleetConfig.ColdStart for this spawn
	// (zero means the config default).
	ColdStart sim.Time
}

// FleetSnapshot is what an autoscaler observes each cadence tick: the
// per-state replica counts plus the windowed metrics rollup routers see
// through FleetView.Metrics.
type FleetSnapshot struct {
	Now sim.Time
	// Ready/Starting/Draining count replicas per lifecycle state.
	Ready, Starting, Draining int
	// Metrics is the trailing-window rollup: TTFT quantiles over first
	// tokens observed inside the window, and the fleet-wide backlog
	// (arrived-but-unfinished requests, including any queued for want of
	// a routable replica) at the tick instant.
	Metrics metrics.Snapshot
}

// Backlog returns the fleet-wide backlog at the tick instant.
func (s FleetSnapshot) Backlog() int { return s.Metrics.Backlog }

// Autoscaler decides fleet scale from merged metrics on a cadence.
// Decide returns how many replicas to add (positive), drain (negative),
// or 0 to hold. The controller clamps decisions to [Min, Max].
type Autoscaler interface {
	Name() string
	Decide(s FleetSnapshot) int
}

// builtinScalers returns the built-in autoscaler constructors by name.
func builtinScalers() map[string]func() Autoscaler {
	return map[string]func() Autoscaler{
		"backlog": func() Autoscaler { return BacklogScaler{} },
		"ttft":    func() Autoscaler { return TTFTScaler{} },
	}
}

var scalerRegistry = newRegistry("autoscaler", builtinScalers)

// RegisterScaler adds an autoscaler constructor to the registry under
// name. Registering an empty name, a nil constructor, or a name already
// taken (built-in or registered) is an error.
func RegisterScaler(name string, mk func() Autoscaler) error {
	if mk == nil {
		return fmt.Errorf("cluster: nil constructor for autoscaler %q", name)
	}
	return scalerRegistry.add(name, mk)
}

// Scalers returns every available autoscaler constructor by name: the
// built-ins plus everything added through RegisterScaler. The map is a
// copy.
func Scalers() map[string]func() Autoscaler { return scalerRegistry.all() }

// ScalerNames returns the available autoscaler names in deterministic
// order.
func ScalerNames() []string { return scalerRegistry.names() }

// BacklogScaler scales on arrived-but-unfinished requests per routable
// replica: spawn above Hi, drain below Lo. The zero value uses Hi=8,
// Lo=1.
type BacklogScaler struct {
	Hi, Lo int
}

// Name implements Autoscaler.
func (b BacklogScaler) Name() string { return "backlog" }

// Decide implements Autoscaler.
func (b BacklogScaler) Decide(s FleetSnapshot) int {
	hi := b.Hi
	if hi <= 0 {
		hi = 8
	}
	lo := b.Lo
	if lo <= 0 {
		lo = 1
	}
	n := s.Ready + s.Starting
	if n == 0 {
		if s.Backlog() > 0 {
			return 1
		}
		return 0
	}
	switch per := s.Backlog() / n; {
	case per >= hi:
		return 1
	case per <= lo && s.Starting == 0 && s.Draining == 0:
		return -1
	}
	return 0
}

// TTFTTargeted is implemented by autoscalers that accept a TTFT target
// (the FleetOptions.TargetTTFT knob). WithTarget returns the scaler to
// use — typically a copy with the target applied — so value-typed
// scalers work without mutation.
type TTFTTargeted interface {
	WithTarget(target sim.Time) Autoscaler
}

// TTFTScaler scales on the trailing-window P99 TTFT: spawn above Target,
// drain when the tail sits below Target/4 with no backlog pressure. The
// zero value targets 1 s.
type TTFTScaler struct {
	Target sim.Time
}

// WithTarget implements TTFTTargeted.
func (t TTFTScaler) WithTarget(target sim.Time) Autoscaler {
	t.Target = target
	return t
}

// Name implements Autoscaler.
func (t TTFTScaler) Name() string { return "ttft" }

// Decide implements Autoscaler.
func (t TTFTScaler) Decide(s FleetSnapshot) int {
	target := t.Target
	if target <= 0 {
		target = sim.Second
	}
	switch tail, p99 := target.Seconds(), s.Metrics.TTFT.P99; {
	case p99 > tail:
		return 1
	case p99 < tail/4 && s.Starting == 0 && s.Draining == 0 &&
		s.Backlog() <= s.Ready:
		return -1
	}
	return 0
}

// FleetConfig scripts lifecycle events and attaches an autoscaler to a
// cluster run.
type FleetConfig struct {
	// Events are applied at their scheduled instants.
	Events []FleetEvent

	// Scaler, when set, observes the fleet every Cadence and emits
	// spawn/drain decisions.
	Scaler Autoscaler
	// Cadence is the autoscaler observation interval (default 5 s).
	Cadence sim.Time
	// Window is the trailing span of TTFT samples the snapshot
	// summarises (default 6×Cadence).
	Window sim.Time
	// ColdStart is the spawn-to-ready delay (default 15 s — weight
	// loading plus CUDA-graph capture).
	ColdStart sim.Time
	// Spawn is the shape the autoscaler adds; a nil Factory borrows the
	// first configured replica shape.
	Spawn ReplicaSpec
	// Min and Max bound the autoscaler's fleet size, counting ready +
	// starting replicas (defaults: 1 and 64). Scheduled events are not
	// clamped.
	Min, Max int
}

// withDefaults resolves zero-valued knobs.
func (fc FleetConfig) withDefaults() FleetConfig {
	if fc.Cadence <= 0 {
		fc.Cadence = 5 * sim.Second
	}
	if fc.Window <= 0 {
		fc.Window = 6 * fc.Cadence
	}
	if fc.ColdStart <= 0 {
		fc.ColdStart = 15 * sim.Second
	}
	if fc.Min <= 0 {
		fc.Min = 1
	}
	if fc.Max <= 0 {
		fc.Max = 64
	}
	return fc
}

// validate rejects configurations that cannot be scheduled. initial is
// the starting fleet size; event targets beyond it must have been
// spawned by an earlier event. Replica IDs are assigned in firing
// order, so events are checked sorted by (At, list position) — exactly
// the order the simulator dispatches them in.
func (fc FleetConfig) validate(initial int) error {
	if fc.Min > 0 && fc.Max > 0 && fc.Min > fc.Max {
		return fmt.Errorf("cluster: fleet min %d exceeds max %d", fc.Min, fc.Max)
	}
	order := make([]int, len(fc.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return fc.Events[order[a]].At < fc.Events[order[b]].At
	})
	spawned := initial
	for _, i := range order {
		ev := fc.Events[i]
		if ev.At < 0 {
			return fmt.Errorf("cluster: fleet event %d at negative time %v", i, ev.At)
		}
		switch ev.Kind {
		case SpawnReplica:
			n := ev.Spec.Count
			if n <= 0 {
				n = 1
			}
			spawned += n
		case DrainReplica, FailReplica, RetireReplica:
			if ev.Replica < 0 || ev.Replica >= spawned {
				return fmt.Errorf("cluster: fleet event %d (%v at %v) targets replica %d, but only %d exist by then",
					i, ev.Kind, ev.At, ev.Replica, spawned)
			}
		case MarkEpoch:
		default:
			return fmt.Errorf("cluster: fleet event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// FleetController applies scheduled fleet events and autoscaler
// decisions inside the cluster's event loop.
type FleetController struct {
	c           *Cluster
	cfg         FleetConfig
	lastArrival sim.Time
}

// attachFleet wires a controller into the cluster before the run starts.
// Controller events are scheduled before arrivals, so a fleet event and
// an arrival at the same instant apply the fleet change first.
func attachFleet(c *Cluster, cfg FleetConfig, lastArrival sim.Time) *FleetController {
	fc := &FleetController{c: c, cfg: cfg.withDefaults(), lastArrival: lastArrival}
	for _, ev := range fc.cfg.Events {
		ev := ev
		c.Sim.At(ev.At, func() { fc.apply(ev) })
	}
	if fc.cfg.Scaler != nil {
		c.Sim.AtFunc(fc.cfg.Cadence, fleetTick, fc)
	}
	return fc
}

// spawnSpec resolves the shape a spawn uses, preserving the requested
// count on the borrowed-shape fallback.
func (fc *FleetController) spawnSpec(spec ReplicaSpec) ReplicaSpec {
	if spec.Factory == nil {
		base := fc.cfg.Spawn
		if base.Factory == nil {
			base = fc.c.Replicas[0].Spec
		}
		base.Count = spec.Count
		return base
	}
	return spec
}

// apply executes one scheduled event.
func (fc *FleetController) apply(ev FleetEvent) {
	switch ev.Kind {
	case SpawnReplica:
		cold := ev.ColdStart
		if cold <= 0 {
			cold = fc.cfg.ColdStart
		}
		spec := fc.spawnSpec(ev.Spec)
		n := spec.Count
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			fc.c.Spawn(spec, cold)
		}
	case DrainReplica:
		fc.c.Drain(fc.c.Replica(ev.Replica))
	case FailReplica:
		fc.c.Fail(fc.c.Replica(ev.Replica))
	case RetireReplica:
		fc.c.Retire(fc.c.Replica(ev.Replica))
	case MarkEpoch:
		fc.c.mark("mark")
	}
}

// snapshot assembles the autoscaler's view of the fleet.
func (fc *FleetController) snapshot() FleetSnapshot {
	return FleetSnapshot{
		Now:      fc.c.Sim.Now(),
		Ready:    fc.c.countState(StateReady),
		Starting: fc.c.countState(StateStarting),
		Draining: fc.c.countState(StateDraining),
		Metrics:  fc.c.Snapshot(fc.cfg.Window),
	}
}

// drainCandidate picks the replica a scale-in drains: the least-loaded
// ready replica, preferring the newest on ties so scale-in mirrors
// scale-out.
func (fc *FleetController) drainCandidate() *Replica {
	var best *Replica
	for _, rep := range fc.c.Replicas {
		if rep.State != StateReady {
			continue
		}
		if best == nil || rep.outTokens < best.outTokens ||
			(rep.outTokens == best.outTokens && rep.ID > best.ID) {
			best = rep
		}
	}
	return best
}

// tick runs one autoscaler observation, then re-arms itself while the
// run still has arrivals or unfinished work (so an idle tail does not
// stretch the makespan by empty ticks).
func (fc *FleetController) tick() {
	c := fc.c
	snap := fc.snapshot()
	d := fc.cfg.Scaler.Decide(snap)
	if c.trace != nil {
		// Record the decision with the signal that triggered it, so a
		// scale-up seen in the trace is attributable to the backlog or
		// TTFT tail the scaler observed at this tick.
		c.trace.Instant(c.Sim.Now(), "fleet", "autoscale",
			obs.Arg{Key: "scaler", Val: fc.cfg.Scaler.Name()},
			obs.Arg{Key: "decision", Val: d},
			obs.Arg{Key: "backlog", Val: snap.Metrics.Backlog},
			obs.Arg{Key: "p99_ttft_ms", Val: snap.Metrics.TTFT.P99 * 1e3},
			obs.Arg{Key: "ready", Val: snap.Ready},
			obs.Arg{Key: "starting", Val: snap.Starting},
			obs.Arg{Key: "draining", Val: snap.Draining})
	}
	size := snap.Ready + snap.Starting
	for ; d > 0 && size < fc.cfg.Max; d-- {
		c.Spawn(fc.spawnSpec(ReplicaSpec{}), fc.cfg.ColdStart)
		size++
	}
	for ; d < 0 && size > fc.cfg.Min; d++ {
		rep := fc.drainCandidate()
		if rep == nil {
			break
		}
		c.Drain(rep)
		size--
	}
	if c.Sim.Now() < fc.lastArrival || c.Unfinished() > 0 {
		c.Sim.AfterFunc(fc.cfg.Cadence, fleetTick, fc)
	}
}

// fleetTick is the bound re-arm callback: the controller rides as the
// event argument, so a run's thousands of ticks share zero closures.
func fleetTick(arg any) { arg.(*FleetController).tick() }
