package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseJSONL drives ReadJSONL with arbitrary bytes: whatever the
// input, the parser must return a trace or an error — never panic, never
// allocate unboundedly — and every accepted trace must satisfy the
// invariants the simulators rely on (positive token counts, reuse inside
// the input, finite non-negative sorted arrivals, page sequences sized
// to the tokens).
func FuzzParseJSONL(f *testing.F) {
	f.Add(`{"id":0,"session":0,"input_tokens":10,"output_tokens":5,"arrival_s":1.5}`)
	f.Add(`{"id":1,"session":3,"turn":2,"input_tokens":64,"reused_tokens":32,"output_tokens":8,"arrival_s":0,"dataset":"x"}`)
	f.Add(`{not json}`)
	f.Add(`{"id":0,"session":0,"input_tokens":0,"output_tokens":5}`)
	f.Add(`{"id":0,"session":0,"input_tokens":-4,"output_tokens":-9}`)
	f.Add(`{"id":0,"session":0,"input_tokens":10,"reused_tokens":10,"output_tokens":5}`)
	f.Add(`{"id":0,"session":0,"input_tokens":10,"output_tokens":5,"arrival_s":NaN}`)
	f.Add(`{"id":0,"session":0,"input_tokens":10,"output_tokens":5,"arrival_s":-2}`)
	f.Add(`{"id":0,"session":0,"input_tokens":10,"output_tokens":5,"arrival_s":1e999}`)
	f.Add(`{"id":0,"session":0,"input_tokens":72057594037927936,"output_tokens":5}`)
	f.Add("\n\n")
	f.Add(`{"id":0,"session":0,"input_tokens":10,"output_tokens":5}` + "\n" + `{"id":0,"session":1,"input_tokens":10,"output_tokens":5}`)
	f.Add(`{"id":0,"session":0,"input_tokens":2097152,"output_tokens":2097152}`)
	f.Add(`{"id":0,"session":0,"input_tokens":10,"output_tokens":5}` + "\n" + `{"id":1,"session":0,"input_tokens":20,"reused_tokens":15,"output_tokens":5,"arrival_s":3}`)
	// A real serialized trace keeps the valid path in the corpus.
	var buf bytes.Buffer
	if err := Conversation(5, 3).WithPoissonArrivals(5, 1).WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSONL(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		if len(tr.Requests) > maxJSONLRequests {
			t.Fatalf("request-count bound not enforced (%d)", len(tr.Requests))
		}
		var prev *Request
		ids := map[int]bool{}
		var total int64
		for i, r := range tr.Requests {
			if ids[r.ID] {
				t.Fatalf("request %d: duplicate id %d accepted", i, r.ID)
			}
			ids[r.ID] = true
			total += int64(r.InputTokens) + int64(r.OutputTokens)
			if total > maxJSONLTotalTokens {
				t.Fatalf("request %d: trace token budget not enforced (%d)", i, total)
			}
			if r.InputTokens < 1 || r.OutputTokens < 1 {
				t.Fatalf("request %d: non-positive tokens accepted (in=%d out=%d)", i, r.InputTokens, r.OutputTokens)
			}
			if r.InputTokens > maxJSONLTokens || r.OutputTokens > maxJSONLTokens {
				t.Fatalf("request %d: token bound not enforced (in=%d out=%d)", i, r.InputTokens, r.OutputTokens)
			}
			if r.ReusedTokens < 0 || r.ReusedTokens >= r.InputTokens {
				t.Fatalf("request %d: reused %d outside [0,%d)", i, r.ReusedTokens, r.InputTokens)
			}
			if r.Arrival < 0 {
				t.Fatalf("request %d: negative arrival %v", i, r.Arrival)
			}
			if prev != nil && r.Arrival < prev.Arrival {
				t.Fatalf("request %d: arrivals not sorted (%v after %v)", i, r.Arrival, prev.Arrival)
			}
			if len(r.Pages) == 0 || len(r.AllPages) < len(r.Pages) {
				t.Fatalf("request %d: page sequences not reconstructed (%d input, %d total)", i, len(r.Pages), len(r.AllPages))
			}
			prev = r
		}
	})
}
