package workload

import (
	"math"
	"math/rand/v2"
	"sort"

	"muxwise/internal/sim"
)

// sessionSeconds approximates how long a multi-turn session stays live in
// a cluster trace (turns separated by user think time). It sizes the
// window of concurrently active sessions: concurrency ≈ rate × duration.
const sessionSeconds = 120

// assignArrivals distributes sorted timestamps over the trace's requests.
// Turn order is preserved per session, and only `window` sessions
// interleave at a time — real multi-turn traces have a bounded set of
// live conversations, which is what gives KV reuse its temporal locality
// (a turn's successor arrives while its context can still be cached).
func assignArrivals(t *Trace, times []sim.Time, window int) *Trace {
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	// Collect per-session turn queues in turn order.
	bySession := map[int][]*Request{}
	var order []int
	for _, r := range t.Requests {
		if _, ok := bySession[r.Session]; !ok {
			order = append(order, r.Session)
		}
		bySession[r.Session] = append(bySession[r.Session], r)
	}
	for _, q := range bySession {
		sort.Slice(q, func(i, j int) bool { return q[i].Turn < q[j].Turn })
	}

	if window < 1 {
		window = 1
	}
	active := make([]int, 0, window) // positions into order
	next := 0
	for len(active) < window && next < len(order) {
		active = append(active, next)
		next++
	}
	rr := 0
	for _, at := range times {
		for len(active) > 0 {
			pos := rr % len(active)
			s := order[active[pos]]
			q := bySession[s]
			if len(q) == 0 {
				// Session exhausted: admit a fresh one in its slot.
				if next < len(order) {
					active[pos] = next
					next++
				} else {
					active = append(active[:pos], active[pos+1:]...)
				}
				continue
			}
			q[0].Arrival = at
			bySession[s] = q[1:]
			rr++
			break
		}
	}
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].Arrival < t.Requests[j].Arrival
	})
	for i, r := range t.Requests {
		r.ID = i
	}
	return t
}

// sessionWindow sizes the live-session set for a given request rate.
func sessionWindow(reqPerSec float64) int {
	w := int(reqPerSec * sessionSeconds)
	if w < 4 {
		w = 4
	}
	return w
}

// WithPoissonArrivals assigns homogeneous Poisson arrivals at reqPerSec,
// following prior work's load-sweep methodology (§4.2.3).
func (t *Trace) WithPoissonArrivals(seed uint64, reqPerSec float64) *Trace {
	rng := rand.New(rand.NewPCG(seed, 0xA24BAED4963EE407))
	times := make([]sim.Time, len(t.Requests))
	at := 0.0
	for i := range times {
		at += rng.ExpFloat64() / reqPerSec
		times[i] = sim.FromSeconds(at)
	}
	return assignArrivals(t, times, sessionWindow(reqPerSec))
}

// RateProfile is a time-varying request rate in requests per second.
type RateProfile struct {
	Name     string
	Duration sim.Time
	Rate     func(at sim.Time) float64 // req/s at time at
	Peak     float64                   // upper bound of Rate for thinning
}

// RatePerMinute samples the profile at 1-minute resolution (the Fig. 13
// view of the traces).
func (p RateProfile) RatePerMinute() []float64 {
	mins := int(p.Duration / (60 * sim.Second))
	out := make([]float64, mins)
	for i := range out {
		out[i] = p.Rate(sim.Time(i)*60*sim.Second+30*sim.Second) * 60
	}
	return out
}

// spike describes one burst in a real-world trace profile.
type spike struct {
	at    float64 // seconds
	width float64
	mag   float64 // req/s added at the peak
}

// burstyProfile builds a 20-minute profile: a slow diurnal-ish wave plus
// sharp spikes, reproducing the up-to-13× one-minute surges of Fig. 13.
func burstyProfile(name string, base, wave float64, spikes []spike) RateProfile {
	peak := base + wave
	for _, s := range spikes {
		if base+wave+s.mag > peak {
			peak = base + wave + s.mag
		}
	}
	return RateProfile{
		Name:     name,
		Duration: 1200 * sim.Second,
		Peak:     peak,
		Rate: func(at sim.Time) float64 {
			ts := at.Seconds()
			r := base + wave*0.5*(1+math.Sin(ts/1200*2*math.Pi*1.5))
			for _, s := range spikes {
				d := (ts - s.at) / s.width
				r += s.mag * math.Exp(-d*d)
			}
			return r
		},
	}
}

// ConversationProfile returns the scaled Conversation trace shape of
// Fig. 13. scale multiplies the whole profile (the paper uses a higher
// scale for Llama-8B than for Llama-70B).
func ConversationProfile(scale float64) RateProfile {
	p := burstyProfile("Conversation", 0.5*scale, 0.8*scale, []spike{
		{at: 180, width: 25, mag: 1.6 * scale},
		{at: 430, width: 18, mag: 2.6 * scale},
		{at: 700, width: 30, mag: 1.2 * scale},
		{at: 1020, width: 20, mag: 2.1 * scale},
	})
	p.Name = "Conversation"
	return p
}

// ToolAgentProfile returns the scaled Tool&Agent trace shape of Fig. 13.
func ToolAgentProfile(scale float64) RateProfile {
	p := burstyProfile("Tool&Agent", 0.4*scale, 0.6*scale, []spike{
		{at: 120, width: 15, mag: 2.9 * scale},
		{at: 350, width: 22, mag: 1.4 * scale},
		{at: 620, width: 15, mag: 3.3 * scale},
		{at: 880, width: 28, mag: 1.1 * scale},
		{at: 1100, width: 16, mag: 2.4 * scale},
	})
	p.Name = "Tool&Agent"
	return p
}

// WithProfileArrivals assigns arrivals from a non-homogeneous Poisson
// process (thinning) over the profile and truncates the trace to the
// arrivals that fit in the profile window.
func (t *Trace) WithProfileArrivals(seed uint64, p RateProfile) *Trace {
	rng := rand.New(rand.NewPCG(seed, 0x2545F4914F6CDD1D))
	var times []sim.Time
	at := 0.0
	for len(times) < len(t.Requests) {
		at += rng.ExpFloat64() / p.Peak
		ts := sim.FromSeconds(at)
		if ts > p.Duration {
			break
		}
		if rng.Float64() < p.Rate(ts)/p.Peak {
			times = append(times, ts)
		}
	}
	if len(times) < len(t.Requests) {
		t.Requests = t.Requests[:len(times)]
	}
	mean := float64(len(times)) / p.Duration.Seconds()
	return assignArrivals(t, times, sessionWindow(mean))
}
