package workload

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"muxwise/internal/sim"
)

func TestJSONLRoundTrip(t *testing.T) {
	orig := ToolAgent(77, 30).WithPoissonArrivals(77, 1)
	var buf bytes.Buffer
	if err := orig.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf, "loaded")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len %d, want %d", got.Len(), orig.Len())
	}
	for i := range orig.Requests {
		a, b := orig.Requests[i], got.Requests[i]
		if a.InputTokens != b.InputTokens || a.OutputTokens != b.OutputTokens ||
			a.ReusedTokens != b.ReusedTokens ||
			a.Session != b.Session || a.Turn != b.Turn {
			t.Fatalf("request %d field mismatch", i)
		}
		// Arrival round-trips through float seconds: sub-µs drift allowed.
		if d := a.Arrival - b.Arrival; d > sim.Microsecond || d < -sim.Microsecond {
			t.Fatalf("request %d arrival drift %v", i, d)
		}
	}
}

// Intra-session prefix reuse must survive the round trip: a loaded
// trace's later turns still extend earlier turns' page sequences.
func TestJSONLPreservesSessionPrefixes(t *testing.T) {
	orig := Conversation(78, 20).WithPoissonArrivals(78, 1)
	var buf bytes.Buffer
	if err := orig.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf, "loaded")
	if err != nil {
		t.Fatal(err)
	}
	last := map[int][]uint64{}
	for _, r := range got.Requests {
		cur := make([]uint64, len(r.Pages))
		for i, p := range r.Pages {
			cur[i] = uint64(p)
		}
		if prev, ok := last[r.Session]; ok {
			if len(prev) > len(cur) {
				t.Fatalf("session %d context shrank after reload", r.Session)
			}
			for i := range prev {
				if prev[i] != cur[i] {
					t.Fatalf("session %d page %d diverged after reload", r.Session, i)
				}
			}
		}
		last[r.Session] = cur
	}
}

func TestReadJSONLValidation(t *testing.T) {
	cases := []string{
		`{"id":0,"session":0,"input_tokens":0,"output_tokens":5}`,
		`{"id":0,"session":0,"input_tokens":10,"output_tokens":0}`,
		`{"id":0,"session":0,"input_tokens":10,"reused_tokens":10,"output_tokens":5}`,
		`{not json}`,
		// Out-of-bounds numerics: oversized tokens, negative or absurd
		// arrivals. Each must error, not allocate or wrap.
		`{"id":0,"session":0,"input_tokens":2097153,"output_tokens":5}`,
		`{"id":0,"session":0,"input_tokens":10,"output_tokens":2097153}`,
		`{"id":0,"session":0,"input_tokens":10,"output_tokens":5,"arrival_s":-1}`,
		`{"id":0,"session":0,"input_tokens":10,"output_tokens":5,"arrival_s":2e8}`,
		// Duplicate request IDs would panic metrics.Merge in a fleet run.
		`{"id":7,"session":0,"input_tokens":10,"output_tokens":5}` + "\n" +
			`{"id":7,"session":1,"input_tokens":10,"output_tokens":5}`,
	}
	for _, c := range cases {
		if _, err := ReadJSONL(strings.NewReader(c), "bad"); err == nil {
			t.Errorf("ReadJSONL accepted invalid line %q", c)
		}
	}
	// Blank lines are tolerated.
	ok := `{"id":0,"session":0,"input_tokens":10,"output_tokens":5,"arrival_s":1.5}` + "\n\n"
	tr, err := ReadJSONL(strings.NewReader(ok), "ok")
	if err != nil || tr.Len() != 1 {
		t.Fatalf("ReadJSONL valid input: %v, len %d", err, tr.Len())
	}
}

func TestReadJSONLTotalTokenBudget(t *testing.T) {
	// Every line is inside the per-request cap, but stacked up they
	// cross the trace-wide budget — the loader must reject instead of
	// reconstructing page sequences without bound.
	var b strings.Builder
	perLine := 2 * maxJSONLTokens // input + output, both at the cap
	for i := 0; i <= maxJSONLTotalTokens/perLine; i++ {
		fmt.Fprintf(&b, `{"id":%d,"session":%d,"input_tokens":%d,"output_tokens":%d,"arrival_s":%d}`+"\n",
			i, i, maxJSONLTokens, maxJSONLTokens, i)
	}
	if _, err := ReadJSONL(strings.NewReader(b.String()), "budget"); err == nil {
		t.Fatal("ReadJSONL accepted a trace past the total token budget")
	}
}

func TestReadJSONLSortsByArrival(t *testing.T) {
	in := `{"id":1,"session":1,"input_tokens":10,"output_tokens":5,"arrival_s":2}
{"id":0,"session":0,"input_tokens":10,"output_tokens":5,"arrival_s":1}`
	tr, err := ReadJSONL(strings.NewReader(in), "sorted")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[0].Session != 0 {
		t.Fatal("requests not sorted by arrival")
	}
}
