// Package workload generates LLM serving traces matching the statistics
// of the paper's five evaluated workloads (Table 1): ShareGPT, LooGLE and
// OpenThoughts single-turn datasets and the Conversation and Tool&Agent
// multi-turn cluster traces, plus the Poisson and bursty arrival processes
// used in §4.
package workload

import (
	"math"
	"math/rand/v2"
)

// Dist is a lognormal distribution censored to [Min, Max], parameterised
// the way Table 1 reports workloads: by minimum, mean and maximum. Fit
// solves for the lognormal location so the censored mean matches Mean.
type Dist struct {
	Min, Mean, Max float64
	mu, sigma      float64
}

// NewDist fits a censored lognormal to the given min/mean/max. It panics
// on inconsistent parameters (mean outside (min, max) with min < max),
// which always indicates a typo in a workload definition.
func NewDist(min, mean, max float64) Dist {
	if min == max {
		return Dist{Min: min, Mean: mean, Max: max}
	}
	if !(min < mean && mean < max) || min < 0 {
		panic("workload: need min < mean < max with min ≥ 0")
	}
	d := Dist{Min: min, Mean: mean, Max: max}
	// Spread heuristic: wider ranges get heavier tails, bounded to keep
	// the censored-mean equation solvable.
	d.sigma = math.Log(max/math.Max(min, 1)) / 4.5
	d.sigma = math.Min(2.2, math.Max(0.35, d.sigma))
	// Bisection on mu: censored mean is strictly increasing in mu.
	lo, hi := math.Log(math.Max(min, 1e-3))-12, math.Log(max)+12
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if censoredMean(mid, d.sigma, min, max) < mean {
			lo = mid
		} else {
			hi = mid
		}
	}
	d.mu = (lo + hi) / 2
	return d
}

// normCDF is the standard normal CDF.
func normCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// censoredMean returns E[clamp(LogNormal(mu, sigma), lo, hi)].
func censoredMean(mu, sigma, lo, hi float64) float64 {
	la := math.Log(math.Max(lo, 1e-12))
	lb := math.Log(hi)
	alpha := (la - mu) / sigma
	beta := (lb - mu) / sigma
	mid := math.Exp(mu+sigma*sigma/2) *
		(normCDF(beta-sigma) - normCDF(alpha-sigma))
	return lo*normCDF(alpha) + hi*(1-normCDF(beta)) + mid
}

// Sample draws one value, clamped to [Min, Max].
func (d Dist) Sample(rng *rand.Rand) float64 {
	if d.Min == d.Max {
		return d.Min
	}
	x := math.Exp(d.mu + d.sigma*rng.NormFloat64())
	return math.Min(d.Max, math.Max(d.Min, x))
}

// SampleInt draws an integer value, at least 1 when Min ≥ 1.
func (d Dist) SampleInt(rng *rand.Rand) int {
	v := int(math.Round(d.Sample(rng)))
	if v < int(d.Min) {
		v = int(d.Min)
	}
	return v
}

// Const returns a degenerate distribution.
func Const(v float64) Dist { return Dist{Min: v, Mean: v, Max: v} }
