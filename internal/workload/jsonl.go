package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"muxwise/internal/kvcache"
	"muxwise/internal/sim"
)

// Sanity bounds on loaded traces. JSON numbers can carry values no
// generator would emit (a 2^60-token request, a year-long arrival gap),
// and page-sequence reconstruction allocates proportionally to the token
// counts — so a loader fed hostile or corrupt input must reject rather
// than arrive at an OOM or a simulation that never ends.
const (
	// maxJSONLTokens bounds a single request's input and output token
	// counts (~17× the largest model context simulated here).
	maxJSONLTokens = 1 << 21
	// maxJSONLTotalTokens budgets input+output tokens across the whole
	// trace, bounding page reconstruction to tens of MB no matter how
	// many near-cap lines the input stacks up (~4× the largest
	// paper-scale trace).
	maxJSONLTotalTokens = 1 << 26
	// maxJSONLArrivalSeconds bounds arrival timestamps (~3 simulated
	// years; real traces span minutes).
	maxJSONLArrivalSeconds = 1e8
	// maxJSONLRequests bounds the request count, so a flood of minimal
	// lines cannot build an unbounded trace under the token budget
	// (~250× the paper-scale bursty mix).
	maxJSONLRequests = 1 << 20
)

// jsonlRecord is the on-disk form of one request. KV page identities are
// not stored: Load rebuilds them from session identity and token
// positions, which preserves intra-session prefix reuse exactly.
// Cross-session sharing (e.g. OpenThoughts' common system prompt) is not
// representable in this format; a loaded trace treats such prefixes as
// per-session content.
type jsonlRecord struct {
	ID      int     `json:"id"`
	Session int     `json:"session"`
	Turn    int     `json:"turn"`
	Arrival float64 `json:"arrival_s"`
	Input   int     `json:"input_tokens"`
	Reused  int     `json:"reused_tokens"`
	Output  int     `json:"output_tokens"`
	Dataset string  `json:"dataset,omitempty"`
}

// WriteJSONL serializes the trace as one JSON object per line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.Requests {
		rec := jsonlRecord{
			ID: r.ID, Session: r.Session, Turn: r.Turn,
			Arrival: r.Arrival.Seconds(),
			Input:   r.InputTokens, Reused: r.ReusedTokens, Output: r.OutputTokens,
			Dataset: r.Dataset,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL (or any compatible
// JSONL), reconstructing KV page sequences from session identity so that
// multi-turn prefix reuse replays faithfully.
func ReadJSONL(r io.Reader, name string) (*Trace, error) {
	tr := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	seen := map[int]bool{}
	var totalTokens int64
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if rec.Input < 1 || rec.Output < 1 {
			return nil, fmt.Errorf("workload: line %d: input and output tokens must be ≥1", line)
		}
		if rec.Input > maxJSONLTokens || rec.Output > maxJSONLTokens {
			return nil, fmt.Errorf("workload: line %d: token count exceeds %d", line, maxJSONLTokens)
		}
		if rec.Reused < 0 || rec.Reused >= rec.Input {
			return nil, fmt.Errorf("workload: line %d: reused tokens %d outside [0,%d)", line, rec.Reused, rec.Input)
		}
		if math.IsNaN(rec.Arrival) || rec.Arrival < 0 || rec.Arrival > maxJSONLArrivalSeconds {
			return nil, fmt.Errorf("workload: line %d: arrival %v outside [0,%g] seconds", line, rec.Arrival, float64(maxJSONLArrivalSeconds))
		}
		// Request IDs must be unique: recorders key on them, and a fleet
		// run merging per-replica recorders panics on a duplicate — reject
		// at load time instead of crashing mid-simulation.
		if seen[rec.ID] {
			return nil, fmt.Errorf("workload: line %d: duplicate request id %d", line, rec.ID)
		}
		seen[rec.ID] = true
		if totalTokens += int64(rec.Input) + int64(rec.Output); totalTokens > maxJSONLTotalTokens {
			return nil, fmt.Errorf("workload: line %d: trace exceeds the %d-token budget", line, int64(maxJSONLTotalTokens))
		}
		if len(tr.Requests) >= maxJSONLRequests {
			return nil, fmt.Errorf("workload: line %d: trace exceeds %d requests", line, maxJSONLRequests)
		}
		stream := 0xFEED<<40 | uint64(rec.Session)
		tr.Requests = append(tr.Requests, &Request{
			ID: rec.ID, Session: rec.Session, Turn: rec.Turn,
			Arrival:      sim.FromSeconds(rec.Arrival),
			InputTokens:  rec.Input,
			ReusedTokens: rec.Reused,
			OutputTokens: rec.Output,
			Pages:        streamPages(stream, 0, kvcache.PageCount(rec.Input, PageTokens)),
			AllPages:     streamPages(stream, 0, kvcache.PageCount(rec.Input+rec.Output, PageTokens)),
			Dataset:      rec.Dataset,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(tr.Requests, func(i, j int) bool {
		return tr.Requests[i].Arrival < tr.Requests[j].Arrival
	})
	return tr, nil
}
