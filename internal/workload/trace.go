package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"

	"muxwise/internal/kvcache"
	"muxwise/internal/sim"
)

// Request is one LLM request as it appears in a trace. Token accounting
// follows Table 1: InputTokens includes both new and reused context.
type Request struct {
	ID      int
	Session int
	Turn    int
	Arrival sim.Time

	InputTokens  int // full context length presented to prefill
	ReusedTokens int // context produced by earlier turns / shared prompts
	OutputTokens int // tokens to generate

	// Pages covers the input context; AllPages additionally covers the
	// output, i.e. what a finished request publishes into the KV cache.
	Pages    []kvcache.PageID
	AllPages []kvcache.PageID

	Dataset string
}

// NewTokens returns the non-reused part of the input.
func (r *Request) NewTokens() int {
	n := r.InputTokens - r.ReusedTokens
	if n < 1 {
		n = 1
	}
	return n
}

// TotalTokens returns input plus output tokens.
func (r *Request) TotalTokens() int { return r.InputTokens + r.OutputTokens }

// Trace is an ordered set of requests.
type Trace struct {
	Name     string
	Requests []*Request
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// pageID derives a stable unique page identity from a content stream and
// a position within it.
func pageID(stream uint64, idx int) kvcache.PageID {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(stream >> (8 * i))
		buf[8+i] = byte(uint64(idx) >> (8 * i))
	}
	h.Write(buf[:])
	return kvcache.PageID(h.Sum64())
}

// streamPages returns pages [from, to) of a content stream.
func streamPages(stream uint64, from, to int) []kvcache.PageID {
	out := make([]kvcache.PageID, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, pageID(stream, i))
	}
	return out
}

// PageTokens is the page granularity all traces are generated with.
const PageTokens = kvcache.DefaultPageTokens

// singleTurn builds a trace of independent requests with optional shared
// system prompt (OpenThoughts-style constant reused prefix).
func singleTurn(name string, seed uint64, n int, in, out Dist, sysTokens int) *Trace {
	rng := rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15))
	tr := &Trace{Name: name}
	sysStream := uint64(0xC0FFEE)
	sysPages := kvcache.PageCount(sysTokens, PageTokens)
	for i := 0; i < n; i++ {
		input := in.SampleInt(rng)
		if input <= sysTokens {
			input = sysTokens + 1
		}
		output := out.SampleInt(rng)
		stream := seed<<20 | uint64(i)
		totalPages := kvcache.PageCount(input, PageTokens)
		pages := append(streamPages(sysStream, 0, sysPages),
			streamPages(stream, 0, totalPages-sysPages)...)
		allPages := append(append([]kvcache.PageID{}, pages...),
			streamPages(stream, totalPages-sysPages,
				kvcache.PageCount(input+output, PageTokens)-sysPages)...)
		tr.Requests = append(tr.Requests, &Request{
			ID: i, Session: i, Turn: 0,
			InputTokens: input, ReusedTokens: sysTokens, OutputTokens: output,
			Pages: pages, AllPages: allPages, Dataset: name,
		})
	}
	return tr
}

// ShareGPT generates n chatbot requests (input 4/226/1024, output
// 4/195/1838, no reuse).
func ShareGPT(seed uint64, n int) *Trace {
	return singleTurn("ShareGPT", seed, n,
		NewDist(4, 226, 1024), NewDist(4, 195, 1838), 0)
}

// LooGLE generates n long-context understanding requests (input
// 3380/30k/81k, output 2/15/326).
func LooGLE(seed uint64, n int) *Trace {
	return singleTurn("LooGLE", seed, n,
		NewDist(3380, 30000, 81000), NewDist(2, 15, 326), 0)
}

// OpenThoughts generates n reasoning requests (input 311/709/4633,
// output 684/8374/32k) sharing a 243-token system prompt.
func OpenThoughts(seed uint64, n int) *Trace {
	return singleTurn("OpenThoughts", seed, n,
		NewDist(311, 709, 4633), NewDist(684, 8374, 32000), 243)
}

// multiTurnParams tunes a session-structured workload.
type multiTurnParams struct {
	name       string
	turns      Dist // turns per session
	firstInput Dist // new tokens of the opening turn
	nextInput  Dist // new tokens of follow-up turns
	output     Dist
	maxContext int
}

// multiTurn builds session traces where each turn's context is the full
// history of the session (inputs + outputs), giving the growing reused
// lengths of the Conversation and Tool&Agent traces.
func multiTurn(p multiTurnParams, seed uint64, sessions int) *Trace {
	rng := rand.New(rand.NewPCG(seed, 0xD1B54A32D192ED03))
	tr := &Trace{Name: p.name}
	id := 0
	for s := 0; s < sessions; s++ {
		stream := seed<<22 | uint64(s)
		turns := p.turns.SampleInt(rng)
		ctx := 0 // tokens accumulated in the session so far
		for turn := 0; turn < turns; turn++ {
			in := p.firstInput
			if turn > 0 {
				in = p.nextInput
			}
			newTok := in.SampleInt(rng)
			output := p.output.SampleInt(rng)
			if ctx+newTok+output > p.maxContext {
				break
			}
			input := ctx + newTok
			inPages := kvcache.PageCount(input, PageTokens)
			allPages := kvcache.PageCount(input+output, PageTokens)
			tr.Requests = append(tr.Requests, &Request{
				ID: id, Session: s, Turn: turn,
				InputTokens: input, ReusedTokens: ctx, OutputTokens: output,
				Pages:    streamPages(stream, 0, inPages),
				AllPages: streamPages(stream, 0, allPages),
				Dataset:  p.name,
			})
			id++
			ctx = input + output
		}
	}
	return tr
}

// Conversation generates a multi-turn chatbot trace approximating the
// paper's Conversation workload (input 891/7538/123k, output 1/342/2000,
// reused 0/4496/120k).
func Conversation(seed uint64, sessions int) *Trace {
	return multiTurn(multiTurnParams{
		name:       "Conversation",
		turns:      NewDist(1, 2.25, 40),
		firstInput: NewDist(891, 3400, 24000),
		nextInput:  NewDist(64, 2500, 24000),
		output:     NewDist(1, 342, 2000),
		maxContext: 123000,
	}, seed, sessions)
}

// ToolAgent generates a multi-turn tool/agent trace approximating the
// paper's Tool&Agent workload (input 891/8596/123k, output 1/182/2000,
// reused 0/4905/120k).
func ToolAgent(seed uint64, sessions int) *Trace {
	return multiTurn(multiTurnParams{
		name:       "Tool&Agent",
		turns:      NewDist(1, 2.2, 40),
		firstInput: NewDist(891, 4300, 26000),
		nextInput:  NewDist(64, 2900, 26000),
		output:     NewDist(1, 182, 2000),
		maxContext: 123000,
	}, seed, sessions)
}

// Mix interleaves traces by arrival order and renumbers request IDs;
// session identities stay distinct via per-trace offsets.
func Mix(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	sessionBase := 0
	for _, t := range traces {
		maxSession := 0
		for _, r := range t.Requests {
			cp := *r
			cp.Session += sessionBase
			out.Requests = append(out.Requests, &cp)
			if r.Session > maxSession {
				maxSession = r.Session
			}
		}
		sessionBase += maxSession + 1
	}
	sort.SliceStable(out.Requests, func(i, j int) bool {
		return out.Requests[i].Arrival < out.Requests[j].Arrival
	})
	for i, r := range out.Requests {
		r.ID = i
	}
	return out
}

// Stats describes observed token statistics of a trace, mirroring Table 1.
type Stats struct {
	Count                         int
	InMin, InMean, InMax          int
	OutMin, OutMean, OutMax       int
	ReuseMin, ReuseMean, ReuseMax int
}

// Stats computes Table 1-style statistics for the trace.
func (t *Trace) Stats() Stats {
	s := Stats{InMin: math.MaxInt, OutMin: math.MaxInt, ReuseMin: math.MaxInt}
	var inSum, outSum, reuseSum int
	for _, r := range t.Requests {
		s.Count++
		inSum += r.InputTokens
		outSum += r.OutputTokens
		reuseSum += r.ReusedTokens
		s.InMin = min(s.InMin, r.InputTokens)
		s.InMax = max(s.InMax, r.InputTokens)
		s.OutMin = min(s.OutMin, r.OutputTokens)
		s.OutMax = max(s.OutMax, r.OutputTokens)
		s.ReuseMin = min(s.ReuseMin, r.ReusedTokens)
		s.ReuseMax = max(s.ReuseMax, r.ReusedTokens)
	}
	if s.Count > 0 {
		s.InMean = inSum / s.Count
		s.OutMean = outSum / s.Count
		s.ReuseMean = reuseSum / s.Count
	}
	return s
}

// String renders one Table 1 row.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d input %d/%d/%d output %d/%d/%d reused %d/%d/%d",
		s.Count, s.InMin, s.InMean, s.InMax,
		s.OutMin, s.OutMean, s.OutMax,
		s.ReuseMin, s.ReuseMean, s.ReuseMax)
}
