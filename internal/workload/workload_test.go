package workload

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"muxwise/internal/kvcache"
	"muxwise/internal/sim"
)

func TestDistFit(t *testing.T) {
	cases := []struct{ min, mean, max float64 }{
		{4, 226, 1024},
		{3380, 30000, 81000},
		{1, 342, 2000},
		{684, 8374, 32000},
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for _, c := range cases {
		d := NewDist(c.min, c.mean, c.max)
		var sum float64
		n := 40000
		for i := 0; i < n; i++ {
			v := d.Sample(rng)
			if v < c.min || v > c.max {
				t.Fatalf("sample %v outside [%v,%v]", v, c.min, c.max)
			}
			sum += v
		}
		got := sum / float64(n)
		if math.Abs(got-c.mean)/c.mean > 0.05 {
			t.Errorf("dist(%v,%v,%v): sample mean %.1f, want ≈%.0f", c.min, c.mean, c.max, got, c.mean)
		}
	}
}

func TestDistConst(t *testing.T) {
	d := Const(243)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 10; i++ {
		if got := d.Sample(rng); got != 243 {
			t.Fatalf("const sample = %v", got)
		}
	}
}

func TestDistBadParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for mean outside (min,max)")
		}
	}()
	NewDist(10, 5, 100)
}

// Table 1 reproduction: every generator must land near the published
// min/mean/max statistics.
func TestTable1Statistics(t *testing.T) {
	type row struct {
		name                       string
		tr                         *Trace
		inMean, outMean, reuseMean float64
		inMin, inMax               int
	}
	rows := []row{
		{"ShareGPT", ShareGPT(1, 8000), 226, 195, 0, 4, 1024},
		{"LooGLE", LooGLE(1, 4000), 30000, 15, 0, 3380, 81000},
		{"OpenThoughts", OpenThoughts(1, 4000), 709, 8374, 243, 311, 4633},
		{"Conversation", Conversation(1, 6000), 7538, 342, 4496, 891, 123000},
		{"Tool&Agent", ToolAgent(1, 6000), 8596, 182, 4905, 891, 123000},
	}
	for _, r := range rows {
		s := r.tr.Stats()
		check := func(metric string, got int, want float64, tol float64) {
			if want == 0 {
				if got != 0 {
					t.Errorf("%s %s = %d, want 0", r.name, metric, got)
				}
				return
			}
			if math.Abs(float64(got)-want)/want > tol {
				t.Errorf("%s %s = %d, want ≈%.0f (±%.0f%%)", r.name, metric, got, want, tol*100)
			}
		}
		check("input mean", s.InMean, r.inMean, 0.15)
		check("output mean", s.OutMean, r.outMean, 0.15)
		check("reuse mean", s.ReuseMean, r.reuseMean, 0.20)
		if s.InMin < r.inMin {
			t.Errorf("%s input min %d below bound %d", r.name, s.InMin, r.inMin)
		}
		if s.InMax > r.inMax {
			t.Errorf("%s input max %d above bound %d", r.name, s.InMax, r.inMax)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Conversation(42, 100)
	b := Conversation(42, 100)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Requests {
		x, y := a.Requests[i], b.Requests[i]
		if x.InputTokens != y.InputTokens || x.OutputTokens != y.OutputTokens ||
			x.ReusedTokens != y.ReusedTokens || len(x.Pages) != len(y.Pages) {
			t.Fatalf("request %d differs between identical seeds", i)
		}
	}
	c := Conversation(43, 100)
	same := true
	for i := range a.Requests {
		if i >= c.Len() || a.Requests[i].InputTokens != c.Requests[i].InputTokens {
			same = false
			break
		}
	}
	if same && a.Len() == c.Len() {
		t.Fatal("different seeds produced identical traces")
	}
}

// Multi-turn page sequences must be strict prefixes of later turns in the
// same session — that is what makes the radix cache effective.
func TestMultiTurnPrefixProperty(t *testing.T) {
	tr := ToolAgent(5, 200)
	lastPages := map[int][]uint64{}
	for _, r := range tr.Requests {
		pages := make([]uint64, len(r.Pages))
		for i, p := range r.Pages {
			pages[i] = uint64(p)
		}
		if prev, ok := lastPages[r.Session]; ok {
			if len(prev) > len(pages) {
				t.Fatalf("session %d turn %d: context shrank", r.Session, r.Turn)
			}
			for i := range prev {
				if prev[i] != pages[i] {
					t.Fatalf("session %d turn %d: page %d diverged from earlier turn", r.Session, r.Turn, i)
				}
			}
		}
		lastPages[r.Session] = pages
	}
}

// AllPages must extend Pages by the output coverage.
func TestAllPagesExtendInput(t *testing.T) {
	for _, tr := range []*Trace{ShareGPT(2, 50), Conversation(2, 20), OpenThoughts(2, 30)} {
		for _, r := range tr.Requests {
			if len(r.AllPages) < len(r.Pages) {
				t.Fatalf("%s req %d: AllPages shorter than Pages", tr.Name, r.ID)
			}
			for i := range r.Pages {
				if r.AllPages[i] != r.Pages[i] {
					t.Fatalf("%s req %d: AllPages not an extension of Pages", tr.Name, r.ID)
				}
			}
			wantAll := kvcache.PageCount(r.InputTokens+r.OutputTokens, PageTokens)
			if math.Abs(float64(len(r.AllPages)-wantAll)) > 1 {
				t.Fatalf("%s req %d: AllPages=%d, want ≈%d", tr.Name, r.ID, len(r.AllPages), wantAll)
			}
		}
	}
}

func TestOpenThoughtsSharedPrompt(t *testing.T) {
	tr := OpenThoughts(3, 10)
	first := tr.Requests[0].Pages
	for _, r := range tr.Requests[1:] {
		for i := 0; i < 15; i++ { // 243 tokens / 16 per page = 15.2 pages
			if r.Pages[i] != first[i] {
				t.Fatalf("request %d does not share the system prompt pages", r.ID)
			}
		}
		if r.ReusedTokens != 243 {
			t.Fatalf("request %d reused = %d, want 243", r.ID, r.ReusedTokens)
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	tr := ShareGPT(7, 2000).WithPoissonArrivals(7, 10)
	var last sim.Time
	for i, r := range tr.Requests {
		if r.Arrival < last {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		last = r.Arrival
	}
	makespan := tr.Requests[len(tr.Requests)-1].Arrival.Seconds()
	rate := float64(len(tr.Requests)) / makespan
	if math.Abs(rate-10)/10 > 0.1 {
		t.Fatalf("achieved rate %.2f req/s, want ≈10", rate)
	}
}

func TestArrivalsPreserveTurnOrder(t *testing.T) {
	tr := Conversation(9, 300).WithPoissonArrivals(9, 5)
	lastArrival := map[int]sim.Time{}
	lastTurn := map[int]int{}
	for _, r := range tr.Requests {
		if prev, ok := lastArrival[r.Session]; ok {
			if r.Arrival < prev {
				t.Fatalf("session %d: turn %d arrives before turn %d", r.Session, r.Turn, lastTurn[r.Session])
			}
			if r.Turn <= lastTurn[r.Session] {
				t.Fatalf("session %d: turn order violated (%d after %d)", r.Session, r.Turn, lastTurn[r.Session])
			}
		}
		lastArrival[r.Session] = r.Arrival
		lastTurn[r.Session] = r.Turn
	}
}

// Figure 13 reproduction: the bursty profiles must show large one-minute
// spikes (the paper reports up to 13× within a minute).
func TestBurstyProfileShape(t *testing.T) {
	for _, p := range []RateProfile{ConversationProfile(1), ToolAgentProfile(1)} {
		perMin := p.RatePerMinute()
		if len(perMin) != 20 {
			t.Fatalf("%s: %d minutes, want 20", p.Name, len(perMin))
		}
		lo, hi := math.Inf(1), 0.0
		for _, v := range perMin {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi/lo < 3 {
			t.Errorf("%s: peak/base = %.1f, want bursty (≥3×)", p.Name, hi/lo)
		}
		if p.Peak <= 0 {
			t.Errorf("%s: nonpositive peak", p.Name)
		}
	}
}

func TestProfileArrivalsWithinWindow(t *testing.T) {
	p := ToolAgentProfile(2)
	tr := ToolAgent(11, 3000).WithProfileArrivals(11, p)
	if tr.Len() == 0 {
		t.Fatal("no arrivals generated")
	}
	for _, r := range tr.Requests {
		if r.Arrival > p.Duration {
			t.Fatalf("arrival %v beyond profile window %v", r.Arrival, p.Duration)
		}
	}
	// Empirical spike: more arrivals near t=620s than in a quiet window.
	countIn := func(lo, hi float64) int {
		n := 0
		for _, r := range tr.Requests {
			if s := r.Arrival.Seconds(); s >= lo && s < hi {
				n++
			}
		}
		return n
	}
	if burst, quiet := countIn(590, 650), countIn(940, 1000); burst <= quiet {
		t.Errorf("burst window %d arrivals ≤ quiet window %d", burst, quiet)
	}
}

func TestMix(t *testing.T) {
	a := ShareGPT(1, 50).WithPoissonArrivals(1, 1)
	b := LooGLE(2, 50).WithPoissonArrivals(2, 1)
	m := Mix("mixed", a, b)
	if m.Len() != 100 {
		t.Fatalf("mixed len = %d, want 100", m.Len())
	}
	var last sim.Time
	for i, r := range m.Requests {
		if r.ID != i {
			t.Fatalf("IDs not renumbered at %d", i)
		}
		if r.Arrival < last {
			t.Fatalf("mixed trace not time-sorted")
		}
		last = r.Arrival
	}
	sessions := map[int]string{}
	for _, r := range m.Requests {
		if ds, ok := sessions[r.Session]; ok && ds != r.Dataset {
			t.Fatalf("session %d spans datasets %s and %s", r.Session, ds, r.Dataset)
		}
		sessions[r.Session] = r.Dataset
	}
}

func TestNewTokens(t *testing.T) {
	r := Request{InputTokens: 100, ReusedTokens: 40}
	if r.NewTokens() != 60 {
		t.Fatalf("NewTokens = %d, want 60", r.NewTokens())
	}
	r2 := Request{InputTokens: 10, ReusedTokens: 10}
	if r2.NewTokens() != 1 {
		t.Fatalf("degenerate NewTokens = %d, want 1", r2.NewTokens())
	}
}

// Property: censored-lognormal fit hits the requested mean for random
// well-formed parameter triples.
func TestPropertyDistMeanFit(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	f := func(a, b, c uint16) bool {
		vals := []float64{float64(a%5000) + 1, float64(b%5000) + 1, float64(c%5000) + 1}
		lo := math.Min(vals[0], math.Min(vals[1], vals[2]))
		hi := math.Max(vals[0], math.Max(vals[1], vals[2]))
		if hi-lo < 10 {
			return true
		}
		mean := lo + (hi-lo)*0.3
		d := NewDist(lo, mean, hi)
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += d.Sample(rng)
		}
		return math.Abs(sum/float64(n)-mean)/mean < 0.08
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConversationGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Conversation(uint64(i), 200)
	}
}
