// Package temporal implements the Tropical-style temporal-only
// multiplexing variant discussed in §6: prefill and decode share the full
// GPU in time. The engine is the enhanced variant the MuxWise authors
// prototyped — prefill is split into layers so it can slot into the slack
// between a decode iteration's completion and the TBT deadline. Because
// idle decode-phase resources can never be used *spatially*, the paper
// measures it at least 20% behind MuxWise.
package temporal

import (
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Engine interleaves decode iterations with prefill layer bursts on one
// full-device stream.
type Engine struct {
	env *serve.Env

	dev  *gpu.Device
	part *gpu.Partition
	pool *kvcache.Pool
	est  serve.CostModel

	decode  serve.Batch
	busy    bool
	active  *job
	queue   []*job
	pending []*workload.Request

	// burstN is the layer count of the prefill burst on the device (one
	// launch at a time, guarded by busy); the slices are reused scratch.
	burstN     int
	ctxScratch []int
	finScratch []*serve.Running
}

type job struct {
	run        *serve.Running
	seq        model.Seq
	layersDone int
}

// New builds a temporal-multiplexing engine.
func New(env *serve.Env) serve.Engine {
	dev := gpu.NewDevice(env.Sim, env.Spec, env.GPUs, "temporal")
	return &Engine{
		env:  env,
		dev:  dev,
		part: dev.Partition(env.Spec.SMs, "serial"),
		pool: kvcache.New(env.PoolTokens(env.GPUs), kvcache.DefaultPageTokens),
		est:  env.Cost(),
	}
}

// Name implements serve.Engine.
func (e *Engine) Name() string { return "Temporal" }

// Timeline implements serve.Engine.
func (e *Engine) Timeline() *metrics.Timeline { return &metrics.Timeline{} }

// Devices implements serve.Engine.
func (e *Engine) Devices() []*gpu.Device { return []*gpu.Device{e.dev} }

// CachePools implements serve.PoolReporter.
func (e *Engine) CachePools() []*kvcache.Pool { return []*kvcache.Pool{e.pool} }

// Submit implements serve.Engine.
func (e *Engine) Submit(r *workload.Request) {
	e.pending = append(e.pending, r)
	e.admit()
	e.step()
}

func (e *Engine) admit() {
	for len(e.pending) > 0 {
		if e.decode.Size()+len(e.queue) >= e.env.MaxBatch {
			return
		}
		run := serve.Admit(e.pool, e.pending[0])
		if run == nil {
			return
		}
		e.env.Admitted(run.R.ID)
		e.pending = e.pending[1:]
		newTok := run.R.InputTokens - run.CachedTokens
		if newTok < 1 {
			newTok = 1
		}
		e.queue = append(e.queue, &job{run: run, seq: model.Seq{New: newTok, Reused: run.CachedTokens}})
	}
}

// step alternates: one decode iteration, then as many prefill layers as
// fit in the remaining TBT slack, then the next decode iteration.
func (e *Engine) step() {
	if e.busy {
		return
	}
	if e.active == nil && len(e.queue) > 0 {
		e.active = e.queue[0]
		e.queue = e.queue[1:]
	}
	if e.decode.Size() > 0 {
		e.runDecodeThenLayers()
		return
	}
	if e.active != nil {
		// No decode pending: prefill runs layers back to back.
		e.runLayers(e.env.Arch.Layers - e.active.layersDone)
	}
}

// runDecodeThenLayers launches one decode iteration followed by a layer
// burst sized to the TBT slack.
func (e *Engine) runDecodeThenLayers() {
	e.ctxScratch = e.decode.CtxsInto(e.ctxScratch)
	cost := e.env.Arch.DecodeIter(e.ctxScratch, e.env.GPUs)
	e.busy = true
	e.part.LaunchFn(gpu.Kernel{
		Label: "decode", Kind: gpu.Decode,
		FLOPs: cost.FLOPs, Bytes: cost.Bytes, CommBytes: cost.CommBytes,
		Tokens: cost.Tokens, Launch: e.env.Spec.GraphLaunch,
	}, decodeDone, e)
}

// decodeDone / burstDone are the engine's bound completion callbacks:
// the engine rides as the event argument, so steady-state iterations
// allocate no closures.
func decodeDone(arg any) { arg.(*Engine).onDecodeDone() }

func burstDone(arg any) { arg.(*Engine).onBurstDone() }

func (e *Engine) onDecodeDone() {
	now := e.env.Sim.Now()
	e.busy = false
	e.finScratch = e.decode.StepInto(now, e.env.Rec, e.finScratch)
	for _, r := range e.finScratch {
		r.Complete(e.pool)
	}
	e.admit()
	// Slack for prefill layers before the next decode must start.
	if e.active != nil {
		sms := e.env.Spec.SMs
		dLat := e.est.DecodeSolo(e.decode.TotalCtx(), e.decode.Size(), sms)
		slack := e.env.SLO.TBT - dLat - e.env.Spec.GraphLaunch
		layer := e.est.PrefillPhase([]model.Seq{e.active.seq}, sms) / sim.Time(e.env.Arch.Layers)
		n := 0
		if layer > 0 && slack > 0 {
			n = int(slack / layer)
		}
		if e.decode.Size() == 0 {
			n = e.env.Arch.Layers - e.active.layersDone
		}
		if n > 0 {
			e.runLayers(n)
			return
		}
	}
	e.step()
}

func (e *Engine) runLayers(n int) {
	j := e.active
	if j == nil || n <= 0 {
		e.step()
		return
	}
	if n > e.env.Arch.Layers-j.layersDone {
		n = e.env.Arch.Layers - j.layersDone
	}
	layer := e.env.Arch.PrefillLayer([]model.Seq{j.seq}, e.env.GPUs, true)
	burst := layer.Scale(float64(n))
	e.busy = true
	e.burstN = n
	e.part.LaunchFn(gpu.Kernel{
		Label: "prefill-burst", Kind: gpu.Prefill,
		FLOPs: burst.FLOPs, Bytes: burst.Bytes, CommBytes: burst.CommBytes,
		Tokens: layer.Tokens,
		Launch: sim.Time(n) * e.env.Spec.LayerLaunch,
	}, burstDone, e)
}

func (e *Engine) onBurstDone() {
	e.busy = false
	j := e.active
	j.layersDone += e.burstN
	if j.layersDone >= e.env.Arch.Layers {
		e.finishPrefill(j)
	}
	e.step()
}

func (e *Engine) finishPrefill(j *job) {
	now := e.env.Sim.Now()
	e.active = nil
	e.env.Rec.PrefillDone(j.seq.New)
	e.env.Rec.Token(j.run.R.ID, now)
	j.run.Generated = 1
	if j.run.DecodeDone() {
		e.env.Rec.Finish(j.run.R.ID, now)
		j.run.Complete(e.pool)
		return
	}
	e.decode.Add(j.run)
}
