package temporal

import (
	"testing"

	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

func cfg8B() serve.Config {
	return serve.Config{
		Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: 500 * sim.Millisecond, TBT: 50 * sim.Millisecond},
	}
}

func TestServesTrace(t *testing.T) {
	tr := workload.ShareGPT(1, 150).WithPoissonArrivals(1, 2)
	res := serve.Run(New, cfg8B(), tr)
	if res.Summary.Finished != 150 {
		t.Fatalf("finished %d/150", res.Summary.Finished)
	}
}

// Temporal slicing keeps decode token gaps within the SLO: layer bursts
// are sized to the slack after each decode iteration.
func TestSlackSizedBursts(t *testing.T) {
	tr := workload.ShareGPT(2, 200).WithPoissonArrivals(2, 2)
	res := serve.Run(New, cfg8B(), tr)
	if att := res.Rec.TBTAttainment(50 * sim.Millisecond); att < 0.97 {
		t.Fatalf("TBT attainment %.3f — bursts not respecting the slack", att)
	}
}

// Temporal-only multiplexing cannot use spatial slack: under load, layer
// bursts squeezed between decode iterations stretch token gaps, so the
// TBT SLO criterion fails at rates spatial multiplexing sustains (the
// §6 ≥20% goodput gap). Lightly loaded, attainment is clean.
func TestSlackExhaustionUnderLoad(t *testing.T) {
	slo := 50 * sim.Millisecond
	light := serve.Run(New, cfg8B(), workload.ShareGPT(3, 60).WithPoissonArrivals(3, 0.5))
	heavy := serve.Run(New, cfg8B(), workload.ShareGPT(3, 500).WithPoissonArrivals(3, 6))
	la, ha := light.Rec.TBTAttainment(slo), heavy.Rec.TBTAttainment(slo)
	if la < 0.99 {
		t.Fatalf("light-load attainment %.3f, want ≥0.99", la)
	}
	if ha >= 0.99 {
		t.Fatalf("heavy-load attainment %.3f, want SLO misses above the temporal goodput", ha)
	}
}
