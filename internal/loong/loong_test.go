package loong

import (
	"testing"

	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

func cfg(arch model.Arch, tbt sim.Time) serve.Config {
	return serve.Config{
		Spec: gpu.A100(), GPUs: 8, Arch: arch,
		SLO: metrics.SLO{TTFT: sim.Second, TBT: tbt},
	}
}

func TestServesTrace(t *testing.T) {
	tr := workload.ShareGPT(1, 120).WithPoissonArrivals(1, 1)
	res := serve.Run(New, cfg(model.Llama70B(), 100*sim.Millisecond), tr)
	if res.Summary.Finished != 120 {
		t.Fatalf("finished %d/120", res.Summary.Finished)
	}
}

func TestBaseTPFollowsModelSize(t *testing.T) {
	env := &serve.Env{
		Sim: sim.New(), Spec: gpu.A100(), GPUs: 8, Arch: model.Llama70B(),
		Rec: metrics.NewRecorder(), ReserveFrac: 0.1, MaxBatch: 256,
	}
	if e := New(env).(*Engine); e.baseTP != 4 {
		t.Fatalf("70B baseTP = %d, want 4", e.baseTP)
	}
	env.Arch = model.Llama8B()
	if e := New(env).(*Engine); e.baseTP != 2 {
		t.Fatalf("8B baseTP = %d, want 2", e.baseTP)
	}
}

// The paper's core criticism: LoongServe releases KV on scale-down, so a
// follow-up turn recomputes the entire context. The recorder's prefill
// token count therefore equals the full input sum, unlike cache-reusing
// engines.
func TestMultiTurnRecompute(t *testing.T) {
	tr := workload.Conversation(2, 40).WithPoissonArrivals(2, 0.3)
	var wantPrefill int64
	for _, r := range tr.Requests {
		wantPrefill += int64(r.InputTokens)
	}
	res := serve.Run(New, cfg(model.Llama70B(), 100*sim.Millisecond), tr)
	if res.Summary.PrefillTokens != wantPrefill {
		t.Fatalf("prefill tokens = %d, want full recompute %d", res.Summary.PrefillTokens, wantPrefill)
	}
}

// Elastic scale-up: long-input requests grab multi-GPU prefill groups
// wider than the base TP when GPUs are free.
func TestElasticPrefillGroups(t *testing.T) {
	env := &serve.Env{
		Sim: sim.New(), Spec: gpu.A100(), GPUs: 8, Arch: model.Llama70B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 100 * sim.Millisecond},
		Rec: metrics.NewRecorder(), ReserveFrac: 0.1, MaxBatch: 256,
	}
	e := New(env).(*Engine)
	r := &workload.Request{ID: 0, InputTokens: 60000, OutputTokens: 4}
	env.Rec.Arrive(0, 0, r.InputTokens)
	env.Sim.At(0, func() { e.Submit(r) })
	env.Sim.Run()
	maxTP := 0
	for _, d := range e.devices {
		if d.TP > maxTP {
			maxTP = d.TP
		}
	}
	if maxTP <= e.baseTP {
		t.Fatalf("max group width %d never exceeded base TP %d for a 60K prefill", maxTP, e.baseTP)
	}
	sum := env.Rec.Summarize("loong", env.Sim.Now())
	if sum.Finished != 1 {
		t.Fatalf("finished %d/1", sum.Finished)
	}
}

func TestGPUAccountingInvariant(t *testing.T) {
	env := &serve.Env{
		Sim: sim.New(), Spec: gpu.A100(), GPUs: 8, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond},
		Rec: metrics.NewRecorder(), ReserveFrac: 0.1, MaxBatch: 256,
	}
	e := New(env).(*Engine)
	tr := workload.ToolAgent(5, 40).WithPoissonArrivals(5, 2)
	for _, r := range tr.Requests {
		r := r
		env.Rec.Arrive(r.ID, r.Arrival, r.InputTokens)
		env.Sim.At(r.Arrival, func() {
			e.Submit(r)
			if e.free < 0 || e.free+e.decodeGs > e.total {
				t.Fatalf("GPU accounting broken: free=%d decode=%d total=%d", e.free, e.decodeGs, e.total)
			}
		})
	}
	env.Sim.Run()
	sum := env.Rec.Summarize("loong", env.Sim.Now())
	if sum.Finished != sum.Requests {
		t.Fatalf("finished %d/%d", sum.Finished, sum.Requests)
	}
}
