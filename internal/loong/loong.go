// Package loong implements the LoongServe-style dynamic disaggregation
// baseline (§2.3.1, §4.1): elastic sequence parallelism scales the GPU
// group per request phase — prefill grabs as many free GPUs as its
// sequence length warrants, decode consolidates onto the fewest GPUs
// whose memory holds the active KV. The two structural properties the
// paper criticises are modelled faithfully: scale-down releases KV
// immediately, so *no* cross-request reuse survives (multi-turn context
// is recomputed from scratch), and sequence-parallel replication streams
// the model weights once per SP slice during decode.
package loong

import (
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// prefillTokensPerGPU sizes elastic prefill groups: one GPU per this many
// input tokens.
const prefillTokensPerGPU = 8192

// Engine is the dynamic-disaggregation baseline.
type Engine struct {
	env *serve.Env

	baseTP     int // tensor parallelism inside each SP slice
	total      int
	free       int
	decodeGs   int // GPUs currently in the decode group
	devices    []*gpu.Device
	decodeDev  map[int]*gpu.Device
	decodePart map[int]*gpu.Partition

	capTokensPerGPU int64
	reservedTokens  int64

	decode        serve.Batch
	decodeRunning bool
	reserved      map[*serve.Running]int64

	queue   []*pjob
	merging []*serve.Running
	pending []*workload.Request

	ctxScratch []int
	finScratch []*serve.Running
}

type pjob struct {
	eng  *Engine
	run  *serve.Running
	gpus int
}

// New builds a LoongServe-style engine. Model parallelism follows the
// paper's configuration: TP=4 per slice for large models, TP=2 for small.
func New(env *serve.Env) serve.Engine {
	baseTP := 2
	if env.Arch.Params() > 30e9 {
		baseTP = 4
	}
	if baseTP > env.GPUs {
		baseTP = env.GPUs
	}
	perGPU := float64(env.Spec.HBMCapacity)*(1-env.ReserveFrac) - env.Arch.WeightBytes()/float64(baseTP)
	capTok := int64(perGPU / env.Arch.KVBytesPerToken())
	if capTok < 0 {
		capTok = 0
	}
	e := &Engine{
		env:             env,
		baseTP:          baseTP,
		total:           env.GPUs,
		free:            env.GPUs,
		decodeDev:       map[int]*gpu.Device{},
		decodePart:      map[int]*gpu.Partition{},
		capTokensPerGPU: capTok,
		reserved:        map[*serve.Running]int64{},
	}
	return e
}

// Name implements serve.Engine.
func (e *Engine) Name() string { return "LoongServe" }

// Timeline implements serve.Engine.
func (e *Engine) Timeline() *metrics.Timeline { return &metrics.Timeline{} }

// Devices implements serve.Engine.
func (e *Engine) Devices() []*gpu.Device { return e.devices }

// Submit implements serve.Engine.
func (e *Engine) Submit(r *workload.Request) {
	e.pending = append(e.pending, r)
	e.admit()
	e.schedule()
}

// admit checks cluster-wide KV capacity; LoongServe has no prefix cache,
// so admission just reserves memory for the request's full context.
func (e *Engine) admit() {
	for len(e.pending) > 0 {
		if e.decode.Size()+len(e.queue)+len(e.merging) >= e.env.MaxBatch {
			return
		}
		r := e.pending[0]
		need := int64(r.InputTokens + r.OutputTokens)
		if e.reservedTokens+need > e.capTokensPerGPU*int64(e.total) {
			return
		}
		e.env.Admitted(r.ID)
		e.pending = e.pending[1:]
		e.reservedTokens += need
		run := &serve.Running{R: r} // CachedTokens stays 0: no reuse
		e.reserved[run] = need
		e.queue = append(e.queue, &pjob{eng: e, run: run})
	}
}

func (e *Engine) schedule() {
	// An idle decode group returns its GPUs to the elastic pool — the
	// scale-to-zero flexibility Fig. 4b illustrates.
	if e.decode.Size() == 0 && !e.decodeRunning && len(e.merging) == 0 && e.decodeGs > 0 {
		e.free += e.decodeGs
		e.decodeGs = 0
	}
	e.startPrefills()
	e.startDecode()
}

// roundUpTP rounds a GPU count up to a multiple of the TP slice width.
func (e *Engine) roundUpTP(g int) int {
	if g < e.baseTP {
		return e.baseTP
	}
	if rem := g % e.baseTP; rem != 0 {
		g += e.baseTP - rem
	}
	return g
}

// startPrefills elastically assigns free GPUs to queued prefill jobs.
func (e *Engine) startPrefills() {
	for len(e.queue) > 0 {
		job := e.queue[0]
		want := e.roundUpTP((job.run.R.InputTokens + prefillTokensPerGPU - 1) / prefillTokensPerGPU)
		g := want
		if g > e.free {
			g = e.roundUpTP(e.free) // roundUp may exceed free; check below
			if g > e.free {
				g -= e.baseTP
			}
		}
		if g < e.baseTP {
			return // no capacity; wait for a release
		}
		e.queue = e.queue[1:]
		e.free -= g
		job.gpus = g
		e.launchPrefill(job)
	}
}

// launchPrefill runs the job's whole prefill phase on a fresh elastic
// group of job.gpus GPUs. The full context is recomputed (Reused = 0).
func (e *Engine) launchPrefill(job *pjob) {
	dev := gpu.NewDevice(e.env.Sim, e.env.Spec, job.gpus, "loong-prefill")
	e.devices = append(e.devices, dev)
	part := dev.Partition(e.env.Spec.SMs, "prefill")
	phase := e.env.Arch.PrefillPhase([]model.Seq{{New: job.run.R.InputTokens}}, job.gpus)
	part.LaunchFn(gpu.Kernel{
		Label: "prefill-phase", Kind: gpu.Prefill,
		FLOPs: phase.FLOPs, Bytes: phase.Bytes, CommBytes: phase.CommBytes,
		Tokens: phase.Tokens,
		Launch: sim.Time(e.env.Arch.Layers) * e.env.Spec.LayerLaunch,
	}, prefillDone, job)
}

// prefillDone / mergeAfterMigrate / decodeDone are the engine's bound
// callbacks: the pjob or engine rides as the event argument, so steady-state
// scheduling allocates no closures.
func prefillDone(arg any) { j := arg.(*pjob); j.eng.onPrefillDone(j) }

func mergeAfterMigrate(arg any) { j := arg.(*pjob); j.eng.onMigrated(j.run) }

func decodeDone(arg any) { arg.(*Engine).onDecodeDone() }

// onPrefillDone releases the elastic group and migrates the KV into the
// decode group.
func (e *Engine) onPrefillDone(job *pjob) {
	e.free += job.gpus
	run := job.run
	e.env.Rec.PrefillDone(run.R.InputTokens)
	// Freed GPUs may unblock queued prefills or a starved decode group
	// before the KV migration completes.
	defer e.schedule()
	kvBytes := float64(run.R.InputTokens) * e.env.Arch.KVBytesPerToken()
	delay := sim.FromSeconds(kvBytes / (e.env.Spec.NVLinkBandwidth * float64(job.gpus)))
	e.env.Sim.AfterFunc(delay, mergeAfterMigrate, job)
}

// onMigrated lands a prefilled request in the decode group once its KV
// migration completes.
func (e *Engine) onMigrated(run *serve.Running) {
	e.env.Rec.Token(run.R.ID, e.env.Sim.Now())
	run.Generated = 1
	if run.DecodeDone() {
		e.finish(run)
	} else if e.decodeRunning {
		e.merging = append(e.merging, run)
	} else {
		e.decode.Add(run)
	}
	e.schedule()
}

func (e *Engine) finish(run *serve.Running) {
	e.env.Rec.Finish(run.R.ID, e.env.Sim.Now())
	e.reservedTokens -= e.reserved[run]
	delete(e.reserved, run)
	e.admit()
}

// resizeDecodeGroup consolidates the decode group to the fewest GPUs
// whose memory holds the active decode KV.
func (e *Engine) resizeDecodeGroup() {
	var kvTokens int64
	for _, r := range e.decode.Reqs {
		kvTokens += int64(r.CtxTokens())
	}
	need := e.baseTP
	if e.capTokensPerGPU > 0 {
		need = e.roundUpTP(int((kvTokens + e.capTokensPerGPU - 1) / e.capTokensPerGPU))
	}
	if need < e.baseTP {
		need = e.baseTP
	}
	if need > e.decodeGs {
		grow := need - e.decodeGs
		if grow > e.free {
			grow = (e.free / e.baseTP) * e.baseTP
		}
		e.decodeGs += grow
		e.free -= grow
	} else if need < e.decodeGs {
		e.free += e.decodeGs - need
		e.decodeGs = need
	}
}

// decodePartition returns the persistent full-SM stream of the decode
// device for the current group size.
func (e *Engine) decodePartition() *gpu.Partition {
	if p, ok := e.decodePart[e.decodeGs]; ok {
		return p
	}
	d := gpu.NewDevice(e.env.Sim, e.env.Spec, e.decodeGs, "loong-decode")
	e.decodeDev[e.decodeGs] = d
	p := d.Partition(e.env.Spec.SMs, "decode")
	e.decodePart[e.decodeGs] = p
	e.devices = append(e.devices, d)
	return p
}

// startDecode runs the next iteration on the elastic decode group.
func (e *Engine) startDecode() {
	if e.decodeRunning || e.decode.Size() == 0 {
		return
	}
	e.resizeDecodeGroup()
	if e.decodeGs < e.baseTP {
		return // every GPU is in a prefill group; retried on release
	}
	part := e.decodePartition()
	e.ctxScratch = e.decode.CtxsInto(e.ctxScratch)
	cost := e.env.Arch.DecodeIter(e.ctxScratch, e.decodeGs)
	// Sequence parallelism replicates weights across slices: each SP
	// slice streams the full (TP-sharded) weights.
	slices := e.decodeGs / e.baseTP
	if slices > 1 {
		cost.Bytes += float64(slices-1) * e.env.Arch.WeightBytes()
	}
	e.decodeRunning = true
	part.LaunchFn(gpu.Kernel{
		Label: "decode", Kind: gpu.Decode,
		FLOPs: cost.FLOPs, Bytes: cost.Bytes, CommBytes: cost.CommBytes,
		Tokens: cost.Tokens, Launch: e.env.Spec.GraphLaunch,
	}, decodeDone, e)
}

func (e *Engine) onDecodeDone() {
	now := e.env.Sim.Now()
	e.decodeRunning = false
	e.finScratch = e.decode.StepInto(now, e.env.Rec, e.finScratch)
	for _, r := range e.finScratch {
		e.finish(r)
	}
	for _, r := range e.merging {
		e.decode.Add(r)
	}
	e.merging = e.merging[:0]
	e.schedule()
}
