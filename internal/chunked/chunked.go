// Package chunked implements the SARATHI-Serve chunked-prefill baseline
// as shipped in SGLang (§2.3.2, §4.1): the prefill phase is split into
// chunks capped by a token budget and each chunk is fused with one decode
// iteration into a single kernel. To stay computationally equivalent,
// every chunk re-reads the KV cache of all previously processed tokens —
// the quadratic overhead behind Fig. 6b. The engine shares one KV pool
// across phases and requests (SGLang radix cache), so its weakness is
// purely the SLO-vs-utilization dilemma of the token budget.
package chunked

import (
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/workload"
)

// Engine is the chunked-prefill baseline.
type Engine struct {
	env    *serve.Env
	budget int

	// EngineName overrides Name (used by derived baselines).
	EngineName string
	// Transform rewrites an iteration's kernel cost before launch and may
	// override its MFU; NanoFlow uses it to model nano-batch weight
	// reloads and its compute/memory overlap bonus. chunkTokens is the
	// chunk's share of the iteration (0 for pure decode).
	Transform func(cost model.Cost, chunkTokens int) (model.Cost, float64)

	dev  *gpu.Device
	part *gpu.Partition
	pool *kvcache.Pool

	decode  serve.Batch
	queue   []*serve.Running // prefill in FIFO order, head is chunking
	pending []*workload.Request
	running bool

	// inFlight is the chunk progress of the iteration on the device (one
	// at a time, guarded by running); the rest is reused scratch.
	inFlight   []progress
	seqScratch []model.Seq
	ctxScratch []int
	finScratch []*serve.Running
}

// BudgetFor returns the paper's offline-tuned token budget for a TBT SLO:
// the largest power-of-two budget whose fused iteration stays within the
// target on the deployed model (§4.1 follows SARATHI-Serve's method; the
// evaluation lands on 256 for Llama-70B at 100 ms and SGLang-typical
// 2048/4096 only under loose SLOs).
func BudgetFor(env *serve.Env) int {
	est := newProbe(env)
	budget := 64
	for b := 64; b <= 8192; b *= 2 {
		// Representative fused iteration: decode bs=32 with 1K contexts.
		if est.fusedLatency(b, 32, 1024) <= env.SLO.TBT.Seconds() {
			budget = b
		}
	}
	return budget
}

// New builds a chunked-prefill engine with the budget tuned offline for
// the environment's TBT SLO.
func New(env *serve.Env) serve.Engine { return NewWithBudget(env, BudgetFor(env)) }

// NewWithBudget builds the engine with an explicit token budget (used by
// the Fig. 6 sweeps and the NanoFlow configuration).
func NewWithBudget(env *serve.Env, budget int) *Engine {
	dev := gpu.NewDevice(env.Sim, env.Spec, env.GPUs, "chunked")
	return &Engine{
		env:    env,
		budget: budget,
		dev:    dev,
		part:   dev.Partition(env.Spec.SMs, "fused"),
		pool:   kvcache.New(env.PoolTokens(env.GPUs), kvcache.DefaultPageTokens),
	}
}

// Name implements serve.Engine.
func (e *Engine) Name() string {
	if e.EngineName != "" {
		return e.EngineName
	}
	return "Chunked"
}

// Timeline implements serve.Engine (static full-device execution).
func (e *Engine) Timeline() *metrics.Timeline { return &metrics.Timeline{} }

// Devices implements serve.Engine.
func (e *Engine) Devices() []*gpu.Device { return []*gpu.Device{e.dev} }

// Pool exposes the KV pool.
func (e *Engine) Pool() *kvcache.Pool { return e.pool }

// CachePools implements serve.PoolReporter.
func (e *Engine) CachePools() []*kvcache.Pool { return []*kvcache.Pool{e.pool} }

// Partition exposes the single fused compute stream (bubble accounting).
func (e *Engine) Partition() *gpu.Partition { return e.part }

// Budget returns the tuned token budget.
func (e *Engine) Budget() int { return e.budget }

// Submit implements serve.Engine.
func (e *Engine) Submit(r *workload.Request) {
	e.pending = append(e.pending, r)
	e.admit()
	e.step()
}

func (e *Engine) admit() {
	for len(e.pending) > 0 {
		if e.decode.Size()+len(e.queue) >= e.env.MaxBatch {
			return
		}
		run := serve.Admit(e.pool, e.pending[0])
		if run == nil {
			return
		}
		e.env.Admitted(run.R.ID)
		e.pending = e.pending[1:]
		e.queue = append(e.queue, run)
	}
}

// step launches the next fused iteration: one decode step for the whole
// batch plus a prefill chunk from the queue head(s) filling the budget.
func (e *Engine) step() {
	if e.running {
		return
	}
	if e.decode.Size() == 0 && len(e.queue) == 0 {
		return
	}
	chunkBudget := e.budget - e.decode.Size()
	if chunkBudget < 0 {
		chunkBudget = 0
	}

	// Assemble the chunk: requests from the queue head, possibly several
	// if the head finishes its prefill inside the budget.
	chunkSeqs := e.seqScratch[:0]
	progressed := e.inFlight[:0]
	for _, run := range e.queue {
		if chunkBudget <= 0 {
			break
		}
		newTotal := run.R.InputTokens - run.CachedTokens
		rem := newTotal - run.PrefilledTokens
		if rem < 1 {
			rem = 1
		}
		take := rem
		if take > chunkBudget {
			take = chunkBudget
		}
		chunkSeqs = append(chunkSeqs, model.Seq{New: take, Prior: run.PrefilledTokens, Reused: run.CachedTokens})
		progressed = append(progressed, progress{run, take})
		chunkBudget -= take
	}
	e.seqScratch, e.inFlight = chunkSeqs, progressed

	e.ctxScratch = e.decode.CtxsInto(e.ctxScratch)
	var cost model.Cost
	if len(chunkSeqs) == 1 {
		cost = e.env.Arch.FusedChunkIter(chunkSeqs[0], e.ctxScratch, e.env.GPUs)
	} else {
		// Multiple chunk slices: accumulate each without re-paying
		// weights (the iteration streams them once).
		cost = e.env.Arch.FusedChunkIter(model.Seq{}, e.ctxScratch, e.env.GPUs)
		for _, sq := range chunkSeqs {
			layer := e.env.Arch.PrefillLayer([]model.Seq{sq}, e.env.GPUs, false)
			part := layer.Scale(float64(e.env.Arch.Layers))
			cost.Add(part)
			cost.Tokens += sq.New
		}
		if e.decode.Size() == 0 && len(chunkSeqs) > 0 {
			cost.Bytes += float64(e.env.Arch.Layers) * e.env.Arch.LayerWeightBytes()
		}
	}
	if cost.Tokens == 0 && e.decode.Size() == 0 {
		return
	}

	// Pure-decode iterations behave like decode graphs; iterations with
	// a chunk take the prefill efficiency curve over the fused tokens.
	kind := gpu.Prefill
	if len(chunkSeqs) == 0 {
		kind = gpu.Decode
	}
	chunkTokens := 0
	for _, sq := range chunkSeqs {
		chunkTokens += sq.New
	}
	mfu := 0.0
	if e.Transform != nil {
		cost, mfu = e.Transform(cost, chunkTokens)
	}
	e.running = true
	e.part.LaunchFn(gpu.Kernel{
		Label: "fused-iter", Kind: kind,
		FLOPs: cost.FLOPs, Bytes: cost.Bytes, CommBytes: cost.CommBytes,
		Tokens: cost.Tokens, Launch: e.env.Spec.GraphLaunch, MFU: mfu,
	}, iterDone, e)
}

// iterDone is the engine's bound completion callback: the engine rides
// as the event argument and reads the in-flight chunk progress from its
// own scratch, so steady-state iterations allocate no closures.
func iterDone(arg any) {
	e := arg.(*Engine)
	e.onIterDone(e.inFlight)
}

// progress records how many chunk tokens an iteration advanced a request.
type progress struct {
	run  *serve.Running
	take int
}

// onIterDone finishes one fused iteration: decode tokens for the batch,
// chunk progress for the head requests, and promotion of completed
// prefills into the decode batch.
func (e *Engine) onIterDone(chunks []progress) {
	now := e.env.Sim.Now()
	e.running = false

	e.finScratch = e.decode.StepInto(now, e.env.Rec, e.finScratch)
	for _, r := range e.finScratch {
		r.Complete(e.pool)
	}

	for _, c := range chunks {
		c.run.PrefilledTokens += c.take
		if c.run.PrefillRemaining() == 0 {
			// Prefill complete: first token now.
			e.queue = removeRun(e.queue, c.run)
			e.env.Rec.PrefillDone(c.run.R.InputTokens - c.run.CachedTokens)
			e.env.Rec.Token(c.run.R.ID, now)
			c.run.Generated = 1
			if c.run.DecodeDone() {
				e.env.Rec.Finish(c.run.R.ID, now)
				c.run.Complete(e.pool)
				continue
			}
			e.decode.Add(c.run)
		}
	}
	e.admit()
	e.step()
}

func removeRun(q []*serve.Running, r *serve.Running) []*serve.Running {
	for i, v := range q {
		if v == r {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// probe estimates fused-iteration latency analytically for budget tuning
// (the offline step SARATHI-Serve performs before deployment).
type probe struct {
	env *serve.Env
}

func newProbe(env *serve.Env) probe { return probe{env} }

func (p probe) fusedLatency(budget, bs, ctx int) float64 {
	ctxs := make([]int, bs)
	for i := range ctxs {
		ctxs[i] = ctx
	}
	chunk := model.Seq{New: budget - bs, Reused: 1024}
	if chunk.New < 0 {
		chunk.New = 0
	}
	cost := p.env.Arch.FusedChunkIter(chunk, ctxs, p.env.GPUs)

	// Closed-form kernel time on the full device.
	spec := p.env.Spec
	tp := float64(p.env.GPUs)
	tok := float64(cost.Tokens)
	eff := spec.MFUPrefill * tok / (tok + spec.SatTokensPerSM*float64(spec.SMs)*tp)
	compute := cost.FLOPs / (spec.TensorFLOPS * tp * eff)
	mem := cost.Bytes / (spec.HBMBandwidth * tp)
	comm := cost.CommBytes / spec.NVLinkBandwidth
	lat := compute
	if mem > lat {
		lat = mem
	}
	return lat + comm + spec.GraphLaunch.Seconds()
}
