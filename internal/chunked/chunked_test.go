package chunked

import (
	"testing"

	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

func env70B(tbt sim.Time) *serve.Env {
	return &serve.Env{
		Sim: sim.New(), Spec: gpu.A100(), GPUs: 8, Arch: model.Llama70B(),
		SLO:         metrics.SLO{TTFT: sim.Second, TBT: tbt},
		Rec:         metrics.NewRecorder(),
		ReserveFrac: 0.1, MaxBatch: 256,
	}
}

// The token budget tuned for a 100 ms TBT SLO on Llama-70B must land
// near 256 (§2.3.2 / Fig. 6a), and a loose SLO admits far larger budgets.
func TestBudgetTuning(t *testing.T) {
	strict := BudgetFor(env70B(100 * sim.Millisecond))
	if strict < 128 || strict > 512 {
		t.Fatalf("strict budget = %d, want ≈256", strict)
	}
	loose := BudgetFor(env70B(600 * sim.Millisecond))
	if loose < 4096 {
		t.Fatalf("loose budget = %d, want ≥4096", loose)
	}
	if loose <= strict {
		t.Fatal("looser SLO must admit a larger budget")
	}
}

func cfg70B() serve.Config {
	return serve.Config{
		Spec: gpu.A100(), GPUs: 8, Arch: model.Llama70B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 100 * sim.Millisecond},
	}
}

func TestServesTrace(t *testing.T) {
	tr := workload.ShareGPT(1, 100).WithPoissonArrivals(1, 1)
	res := serve.Run(New, cfg70B(), tr)
	if res.Summary.Finished != 100 {
		t.Fatalf("finished %d/100", res.Summary.Finished)
	}
	if res.Summary.TTFT.Avg <= 0 {
		t.Fatal("no TTFT recorded")
	}
}

// Chunking splits long prefills: TTFT for a long input spans several
// iterations, and every token gap stays ≈ one fused-iteration latency.
func TestChunkingBoundsTBT(t *testing.T) {
	tr := workload.LooGLE(2, 20).WithPoissonArrivals(2, 0.1)
	res := serve.Run(New, cfg70B(), tr)
	if res.Summary.Finished != 20 {
		t.Fatalf("finished %d/20", res.Summary.Finished)
	}
	// Without reuse pressure, short-context decode gaps obey the budget
	// target: they must sit well below an unchunked 30K prefill (~4s).
	if res.Summary.TBT.P99 > 0.5 {
		t.Fatalf("p99 TBT %.3fs — chunking is not bounding iteration time", res.Summary.TBT.P99)
	}
}

// The §2.3.2 failure mode: long *reused* context inflates every fused
// iteration (KV re-reads), so TBT attainment collapses versus a
// no-reuse workload at equal rate.
func TestReusedContextHurtsTBT(t *testing.T) {
	run := func(tr *workload.Trace) float64 {
		res := serve.Run(New, cfg70B(), tr)
		return res.Rec.TBTAttainment(100 * sim.Millisecond)
	}
	fresh := run(workload.ShareGPT(3, 150).WithPoissonArrivals(3, 1.5))
	multi := run(workload.ToolAgent(3, 120).WithPoissonArrivals(3, 0.6))
	if !(multi < fresh) {
		t.Fatalf("reused context should hurt attainment: fresh %.3f vs multi-turn %.3f", fresh, multi)
	}
}

func TestPrefixCacheAcrossTurns(t *testing.T) {
	cfg := cfg70B()
	s := sim.New()
	rec := metrics.NewRecorder()
	env := &serve.Env{
		Sim: s, Spec: cfg.Spec, GPUs: cfg.GPUs, Arch: cfg.Arch,
		SLO: cfg.SLO, Rec: rec, ReserveFrac: 0.1, MaxBatch: 256,
	}
	e := NewWithBudget(env, 512)
	tr := workload.Conversation(4, 40).WithPoissonArrivals(4, 0.5)
	for _, r := range tr.Requests {
		r := r
		rec.Arrive(r.ID, r.Arrival, r.InputTokens)
		s.At(r.Arrival, func() { e.Submit(r) })
	}
	s.Run()
	if hr := e.Pool().Stats().HitRate(); hr < 0.2 {
		t.Fatalf("radix hit rate %.3f, want ≥0.2 on multi-turn trace", hr)
	}
}

func TestNameAndOverride(t *testing.T) {
	e := NewWithBudget(env70B(100*sim.Millisecond), 256)
	if e.Name() != "Chunked" {
		t.Fatalf("Name = %q", e.Name())
	}
	e.EngineName = "Custom"
	if e.Name() != "Custom" {
		t.Fatalf("Name override = %q", e.Name())
	}
	if e.Budget() != 256 {
		t.Fatalf("Budget = %d", e.Budget())
	}
}
