package metrics

import (
	"math/rand/v2"
	"testing"

	"muxwise/internal/sim"
)

// randomRecorders builds a randomized fleet of per-replica recorders:
// requests with seeded arrivals, token emissions and (mostly) finishes
// spread over [0, span], IDs disjoint across recorders. Returns the
// recorders plus the run's end instant.
func randomRecorders(rng *rand.Rand, replicas int, span sim.Time) []*Recorder {
	recs := make([]*Recorder, replicas)
	id := 0
	for i := range recs {
		r := NewRecorder()
		n := 5 + rng.IntN(25)
		for q := 0; q < n; q++ {
			at := sim.Time(rng.Int64N(int64(span)))
			r.Arrive(id, at, 64+rng.IntN(4000))
			tokens := 1 + rng.IntN(12)
			t := at
			for k := 0; k < tokens; k++ {
				t += sim.Time(rng.Int64N(int64(200 * sim.Millisecond)))
				r.Token(id, t)
			}
			if rng.Float64() < 0.9 {
				r.Finish(id, t)
			}
			id++
		}
		recs[i] = r
	}
	return recs
}

// randomBounds returns an ascending partition of [0, end] with random
// interior cut points (possibly none).
func randomBounds(rng *rand.Rand, end sim.Time) []sim.Time {
	bounds := []sim.Time{0}
	cuts := rng.IntN(8)
	for i := 0; i < cuts; i++ {
		bounds = append(bounds, sim.Time(rng.Int64N(int64(end))))
	}
	bounds = append(bounds, end)
	for i := 1; i < len(bounds); i++ {
		for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
			bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
		}
	}
	// Collapse duplicate cuts: Rollup wants ascending half-open windows.
	out := bounds[:1]
	for _, b := range bounds[1:] {
		if b > out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}

// TestPropertyRollupMergeOrderInvariant: the windows of a merged fleet
// recorder are identical no matter what order the replicas merge in —
// quantiles, counts and attainment all pool samples before summarising.
func TestPropertyRollupMergeOrderInvariant(t *testing.T) {
	const span = 100 * sim.Second
	slo := 80 * sim.Millisecond
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xB0A11))
		recs := randomRecorders(rng, 2+rng.IntN(4), span)
		bounds := randomBounds(rng, span+sim.Second)

		forward := Merge(recs...).RollupSLO(bounds, slo)
		shuffled := append([]*Recorder(nil), recs...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		backward := Merge(shuffled...).RollupSLO(bounds, slo)

		if len(forward) != len(backward) {
			t.Fatalf("trial %d: window count %d vs %d", trial, len(forward), len(backward))
		}
		for i := range forward {
			f, b := forward[i], backward[i]
			if f != b {
				t.Fatalf("trial %d window %d: merge order changed the rollup:\n%+v\n%+v", trial, i, f, b)
			}
		}
	}
}

// TestPropertyRollupPartitionsSumToTrace: for any partition of the run
// into epochs, per-epoch counts and SLO-goodput sum exactly to the
// whole-trace totals — window membership is a partition of the samples,
// so no arrival, completion or TBT sample is dropped or double-counted,
// and epoch goodput re-aggregates to trace goodput.
func TestPropertyRollupPartitionsSumToTrace(t *testing.T) {
	const span = 100 * sim.Second
	slo := 80 * sim.Millisecond
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0x5EED))
		rec := Merge(randomRecorders(rng, 1+rng.IntN(4), span)...)
		// The final bound must cover every sample: tokens can land after
		// arrivals stop, so close the last window at the last emission.
		end := sim.Time(0)
		for _, s := range rec.tbt {
			if s.at > end {
				end = s.at
			}
		}
		for _, id := range rec.ids {
			r := rec.reqs[id]
			if r.lastToken > end {
				end = r.lastToken
			}
			if r.done && r.finished > end {
				end = r.finished
			}
		}
		end += sim.Second

		wantArrivals := len(rec.ids)
		wantStarted, wantFinished := 0, 0
		for _, id := range rec.ids {
			r := rec.reqs[id]
			if r.firstToken >= 0 {
				wantStarted++
			}
			if r.done {
				wantFinished++
			}
		}
		wantTBT := len(rec.tbt)
		wantOK := 0
		for _, s := range rec.tbt {
			if s.v <= slo.Seconds() {
				wantOK++
			}
		}

		for part := 0; part < 5; part++ {
			wins := rec.RollupSLO(randomBounds(rng, end), slo)
			arrivals, started, finished, tbtN, okN := 0, 0, 0, 0, 0
			for _, w := range wins {
				arrivals += w.Arrivals
				started += w.Started
				finished += w.Finished
				tbtN += w.TBT.N
				okN += w.tbtOK
			}
			if arrivals != wantArrivals || started != wantStarted || finished != wantFinished {
				t.Fatalf("trial %d partition %d: counts %d/%d/%d, want %d/%d/%d",
					trial, part, arrivals, started, finished, wantArrivals, wantStarted, wantFinished)
			}
			if tbtN != wantTBT {
				t.Fatalf("trial %d partition %d: %d TBT samples across epochs, want %d", trial, part, tbtN, wantTBT)
			}
			if okN != wantOK {
				t.Fatalf("trial %d partition %d: epoch goodput sums to %d within-SLO samples, trace has %d",
					trial, part, okN, wantOK)
			}
		}
	}
}
