package metrics

import (
	"testing"

	"muxwise/internal/sim"
)

func TestMergeCombinesRecorders(t *testing.T) {
	a := NewRecorder()
	a.Arrive(1, 0, 100)
	a.Token(1, 10*sim.Millisecond)
	a.Token(1, 30*sim.Millisecond)
	a.Finish(1, 30*sim.Millisecond)
	a.PrefillDone(100)

	b := NewRecorder()
	b.Arrive(2, 0, 50)
	b.Token(2, 20*sim.Millisecond)
	b.Token(2, 60*sim.Millisecond)
	b.Finish(2, 60*sim.Millisecond)
	b.PrefillDone(50)

	m := Merge(a, b)
	s := m.Summarize("fleet", sim.Second)
	if s.Requests != 2 || s.Finished != 2 {
		t.Fatalf("requests/finished = %d/%d, want 2/2", s.Requests, s.Finished)
	}
	if s.PrefillTokens != 150 || s.DecodeTokens != 4 {
		t.Fatalf("tokens = %d/%d, want 150/4", s.PrefillTokens, s.DecodeTokens)
	}
	if len(m.TBTSamples()) != 2 {
		t.Fatalf("merged TBT samples = %d, want 2", len(m.TBTSamples()))
	}
	// 20ms and 40ms gaps against a 30ms SLO → 50% attainment.
	if att := m.TBTAttainment(30 * sim.Millisecond); att != 0.5 {
		t.Fatalf("attainment = %v, want 0.5", att)
	}
}

func TestMergeSkipsNilAndRejectsDuplicates(t *testing.T) {
	a := NewRecorder()
	a.Arrive(1, 0, 10)
	if got := len(Merge(a, nil).IDs()); got != 1 {
		t.Fatalf("merged ids = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Merge must panic on overlapping request IDs")
		}
	}()
	Merge(a, a)
}

// driveRecorder replays a simple deterministic lifecycle for ids so the
// merge-order tests have non-trivial samples in every window.
func driveRecorder(ids []int) *Recorder {
	r := NewRecorder()
	for _, id := range ids {
		base := sim.Time(id) * 100 * sim.Millisecond
		r.Arrive(id, base, 50+10*id)
		r.PrefillDone(50 + 10*id)
		// First token 30ms after arrival, then tokens every (5+id)ms.
		at := base + 30*sim.Millisecond
		r.Token(id, at)
		for k := 0; k < 5; k++ {
			at += sim.Time(5+id) * sim.Millisecond
			r.Token(id, at)
		}
		r.Finish(id, at)
	}
	return r
}

// TestRollupMergeOrderInvariant is the determinism guard for windowed
// rollups: merged percentile summaries must not depend on the order the
// per-replica recorders were merged in.
func TestRollupMergeOrderInvariant(t *testing.T) {
	mk := func() []*Recorder {
		return []*Recorder{
			driveRecorder([]int{0, 3, 6}),
			driveRecorder([]int{1, 4, 7}),
			driveRecorder([]int{2, 5, 8}),
		}
	}
	bounds := []sim.Time{0, 250 * sim.Millisecond, 500 * sim.Millisecond, sim.Second}
	slo := 8 * sim.Millisecond

	a := mk()
	fwd := Merge(a[0], a[1], a[2])
	b := mk()
	rev := Merge(b[2], b[0], b[1])

	fw, rw := fwd.RollupSLO(bounds, slo), rev.RollupSLO(bounds, slo)
	if len(fw) != len(rw) {
		t.Fatalf("window counts differ: %d vs %d", len(fw), len(rw))
	}
	for i := range fw {
		if fw[i] != rw[i] {
			t.Fatalf("window %d differs by merge order:\n%+v\n%+v", i, fw[i], rw[i])
		}
	}
	fs, rs := fwd.Summarize("f", sim.Second), rev.Summarize("r", sim.Second)
	fs.Name, rs.Name = "", ""
	if fs != rs {
		t.Fatalf("summaries differ by merge order:\n%+v\n%+v", fs, rs)
	}
}

func TestRollupAssignsSamplesByObservationTime(t *testing.T) {
	r := NewRecorder()
	// Arrives in window 0, first token in window 1, finishes in window 2.
	r.Arrive(1, 50*sim.Millisecond, 100)
	r.Token(1, 150*sim.Millisecond)
	r.Token(1, 220*sim.Millisecond) // TBT 70ms, lands in window 2
	r.Finish(1, 220*sim.Millisecond)
	bounds := []sim.Time{0, 100 * sim.Millisecond, 200 * sim.Millisecond, 300 * sim.Millisecond}
	w := r.RollupSLO(bounds, 50*sim.Millisecond)
	if w[0].Arrivals != 1 || w[0].Started != 0 || w[0].Finished != 0 {
		t.Fatalf("window 0 = %+v, want arrival only", w[0])
	}
	if w[1].Started != 1 || w[1].TTFT.N != 1 || w[1].TTFT.Max != 0.1 {
		t.Fatalf("window 1 = %+v, want the first token (TTFT 100ms)", w[1])
	}
	if w[2].Finished != 1 || w[2].TBT.N != 1 || w[2].Attainment() != 0 {
		t.Fatalf("window 2 = %+v, want the finish and a 70ms TBT miss", w[2])
	}
	if w[1].Attainment() != 1 {
		t.Fatalf("window 1 attainment = %v, want 1 (no TBT samples)", w[1].Attainment())
	}
	// The final bound is inclusive: a sample landing exactly on it stays
	// in the last window.
	r2 := NewRecorder()
	r2.Arrive(1, 0, 10)
	r2.Token(1, 100*sim.Millisecond)
	r2.Token(1, 300*sim.Millisecond)
	r2.Finish(1, 300*sim.Millisecond)
	w2 := r2.Rollup([]sim.Time{0, 150 * sim.Millisecond, 300 * sim.Millisecond})
	if w2[1].Finished != 1 || w2[1].TBT.N != 1 {
		t.Fatalf("samples at the closing bound dropped: %+v", w2[1])
	}
	// A zero SLO keeps attainment at the no-samples convention.
	if w2[1].Attainment() != 1 {
		t.Fatalf("zero-SLO attainment = %v, want 1", w2[1].Attainment())
	}
}

func TestAbortAndHaltLifecycle(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0, 100)
	r.Token(1, 10*sim.Millisecond)
	r.Token(1, 30*sim.Millisecond)
	r.Arrive(2, 0, 100)
	r.Token(2, 15*sim.Millisecond)
	r.Token(2, 40*sim.Millisecond)
	r.Finish(2, 40*sim.Millisecond)

	if got := r.OpenIDs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("OpenIDs = %v, want [1]", got)
	}
	if !r.Abort(1) {
		t.Fatal("Abort(1) should remove the in-flight request")
	}
	if r.Abort(1) || r.Abort(2) || r.Abort(99) {
		t.Fatal("Abort must refuse repeated, finished and unknown ids")
	}
	s := r.Summarize("x", sim.Second)
	if s.Requests != 1 || s.Finished != 1 {
		t.Fatalf("after abort: %d/%d requests, want 1/1", s.Finished, s.Requests)
	}
	if len(r.TBTSamples()) != 1 {
		t.Fatalf("aborted request's TBT samples must be dropped, have %d", len(r.TBTSamples()))
	}
	if s.DecodeTokens != 2 {
		t.Fatalf("decode tokens = %d, want 2 (aborted request's rolled back)", s.DecodeTokens)
	}

	// The same ID can re-arrive (on another replica's recorder it would;
	// here, on the same one) and merge cleanly.
	r.Arrive(1, 0, 100)
	r.Token(1, 200*sim.Millisecond)
	r.Finish(1, 200*sim.Millisecond)
	if got := r.Summarize("x", sim.Second).Finished; got != 2 {
		t.Fatalf("re-arrived request not counted: finished %d, want 2", got)
	}

	// Halt freezes everything except Abort.
	r.Halt()
	if !r.Halted() {
		t.Fatal("Halted() should report true")
	}
	r.Arrive(3, 0, 10)
	r.Token(1, 300*sim.Millisecond)
	r.PrefillDone(100)
	r.Finish(1, 300*sim.Millisecond)
	s = r.Summarize("x", sim.Second)
	if s.Requests != 2 || s.PrefillTokens != 0 {
		t.Fatalf("halted recorder accepted samples: %+v", s)
	}
}

func TestOnFinishFiresOnce(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0, 10)
	fired := 0
	r.OnFinish = func(id int, at sim.Time) { fired++ }
	r.Finish(1, sim.Second)
	r.Finish(1, 2*sim.Second)
	if fired != 1 {
		t.Fatalf("OnFinish fired %d times, want 1", fired)
	}
}
