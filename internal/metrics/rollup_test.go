package metrics

import (
	"testing"

	"muxwise/internal/sim"
)

func TestMergeCombinesRecorders(t *testing.T) {
	a := NewRecorder()
	a.Arrive(1, 0, 100)
	a.Token(1, 10*sim.Millisecond)
	a.Token(1, 30*sim.Millisecond)
	a.Finish(1, 30*sim.Millisecond)
	a.PrefillDone(100)

	b := NewRecorder()
	b.Arrive(2, 0, 50)
	b.Token(2, 20*sim.Millisecond)
	b.Token(2, 60*sim.Millisecond)
	b.Finish(2, 60*sim.Millisecond)
	b.PrefillDone(50)

	m := Merge(a, b)
	s := m.Summarize("fleet", sim.Second)
	if s.Requests != 2 || s.Finished != 2 {
		t.Fatalf("requests/finished = %d/%d, want 2/2", s.Requests, s.Finished)
	}
	if s.PrefillTokens != 150 || s.DecodeTokens != 4 {
		t.Fatalf("tokens = %d/%d, want 150/4", s.PrefillTokens, s.DecodeTokens)
	}
	if len(m.TBTSamples()) != 2 {
		t.Fatalf("merged TBT samples = %d, want 2", len(m.TBTSamples()))
	}
	// 20ms and 40ms gaps against a 30ms SLO → 50% attainment.
	if att := m.TBTAttainment(30 * sim.Millisecond); att != 0.5 {
		t.Fatalf("attainment = %v, want 0.5", att)
	}
}

func TestMergeSkipsNilAndRejectsDuplicates(t *testing.T) {
	a := NewRecorder()
	a.Arrive(1, 0, 10)
	if got := len(Merge(a, nil).IDs()); got != 1 {
		t.Fatalf("merged ids = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Merge must panic on overlapping request IDs")
		}
	}()
	Merge(a, a)
}

func TestOnFinishFiresOnce(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0, 10)
	fired := 0
	r.OnFinish = func(id int, at sim.Time) { fired++ }
	r.Finish(1, sim.Second)
	r.Finish(1, 2*sim.Second)
	if fired != 1 {
		t.Fatalf("OnFinish fired %d times, want 1", fired)
	}
}
