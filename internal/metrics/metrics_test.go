package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"muxwise/internal/sim"
)

func ms(v float64) sim.Time { return sim.FromSeconds(v / 1e3) }

func TestTTFTAndTBT(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0, 100)
	r.Token(1, ms(250)) // TTFT 250ms
	r.Token(1, ms(300)) // TBT 50ms
	r.Token(1, ms(380)) // TBT 80ms
	r.Finish(1, ms(380))
	s := r.Summarize("t", ms(380))

	if !near(s.TTFT.Avg, 0.250) {
		t.Fatalf("TTFT avg = %v, want 0.25", s.TTFT.Avg)
	}
	if !near(s.TBT.Avg, 0.065) {
		t.Fatalf("TBT avg = %v, want 0.065", s.TBT.Avg)
	}
	if !near(s.TBT.Max, 0.080) {
		t.Fatalf("TBT max = %v, want 0.08", s.TBT.Max)
	}
	// TPOT = (380-250)/2 = 65ms.
	if !near(s.TPOT.Avg, 0.065) {
		t.Fatalf("TPOT avg = %v, want 0.065", s.TPOT.Avg)
	}
	if !near(s.E2E.Avg, 0.380) {
		t.Fatalf("E2E avg = %v, want 0.38", s.E2E.Avg)
	}
	if s.Finished != 1 || s.Requests != 1 {
		t.Fatalf("finished/requests = %d/%d", s.Finished, s.Requests)
	}
}

func near(got, want float64) bool {
	return math.Abs(got-want) < 1e-9 || math.Abs(got-want)/want < 1e-6
}

// TBT vs TPOT: an average can mask a slow token — TBT must not (§4.1).
func TestTBTStricterThanTPOT(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0, 10)
	at := sim.Time(0)
	r.Token(1, at)
	// 99 fast tokens, one 900ms stall.
	for i := 0; i < 99; i++ {
		at += ms(10)
		r.Token(1, at)
	}
	at += ms(900)
	r.Token(1, at)
	r.Finish(1, at)
	s := r.Summarize("t", at)
	if s.TBT.Max < 0.9 {
		t.Fatalf("TBT max %.3f should expose the stall", s.TBT.Max)
	}
	if s.TPOT.Avg > 0.02 {
		t.Fatalf("TPOT avg %.3f should mask the stall", s.TPOT.Avg)
	}
}

func TestAttainment(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0, 10)
	r.Token(1, ms(100))
	for i := 1; i <= 10; i++ {
		gap := 40.0
		if i%5 == 0 {
			gap = 200 // 2 of 10 violate a 100ms SLO
		}
		r.Token(1, ms(100+float64(i)*gap)) // approximate spacing
	}
	// Rebuild precisely: recorder above has uneven cumulative times; use
	// attainment on the recorded samples directly.
	att := r.TBTAttainment(ms(100))
	if att < 0.5 || att > 1 {
		t.Fatalf("attainment = %v out of range", att)
	}

	r2 := NewRecorder()
	r2.Arrive(7, 0, 10)
	r2.Token(7, ms(400))
	if got := r2.TTFTAttainment(ms(500)); got != 1 {
		t.Fatalf("TTFT attainment = %v, want 1", got)
	}
	if got := r2.TTFTAttainment(ms(300)); got != 0 {
		t.Fatalf("TTFT attainment = %v, want 0", got)
	}
}

func TestUnfinishedMarksUnstable(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Arrive(i, 0, 10)
	}
	for i := 0; i < 80; i++ {
		r.Token(i, ms(10))
		r.Finish(i, ms(20))
	}
	s := r.Summarize("t", ms(1000))
	if !s.Unstable {
		t.Fatal("80% finished should flag unstable")
	}
	r2 := NewRecorder()
	for i := 0; i < 100; i++ {
		r2.Arrive(i, 0, 10)
		r2.Token(i, ms(10))
		r2.Finish(i, ms(20))
	}
	if s2 := r2.Summarize("t", ms(1000)); s2.Unstable {
		t.Fatal("fully finished run flagged unstable")
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(s, 0.5); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := percentile(s, 0.99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
	if got := percentile(s, 0.01); got != 1 {
		t.Fatalf("p1 = %v, want 1", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
}

func TestThroughput(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0, 1000)
	r.PrefillDone(1000)
	r.Token(1, ms(100))
	r.Token(1, ms(200))
	r.Finish(1, ms(200))
	s := r.Summarize("t", sim.Second)
	if s.PrefillTokens != 1000 || s.DecodeTokens != 2 {
		t.Fatalf("token counts %d/%d", s.PrefillTokens, s.DecodeTokens)
	}
	if !near(s.TokensPerSecond, 1002) {
		t.Fatalf("throughput = %v, want 1002", s.TokensPerSecond)
	}
}

func TestTTFTPerToken(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0, 1000)
	r.Token(1, ms(500))
	r.Arrive(2, 0, 100)
	r.Token(2, ms(200))
	samples := r.TTFTPerTokenSamples()
	sort.Float64s(samples)
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	if !near(samples[0], 0.0005) || !near(samples[1], 0.002) {
		t.Fatalf("per-token = %v", samples)
	}
}

func TestDuplicateAndUnknownIDs(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0, 10)
	r.Arrive(1, ms(5), 20) // duplicate ignored
	r.Token(99, ms(10))    // unknown ignored
	r.Finish(99, ms(10))
	s := r.Summarize("t", ms(100))
	if s.Requests != 1 {
		t.Fatalf("requests = %d, want 1", s.Requests)
	}
}

func TestTimeline(t *testing.T) {
	var tl Timeline
	tl.Record(0, 44, 64)
	tl.Record(sim.Second, 44, 64) // duplicate collapsed
	tl.Record(2*sim.Second, 92, 16)
	if tl.Changes() != 2 {
		t.Fatalf("changes = %d, want 2", tl.Changes())
	}
	if tl.DistinctConfigs() != 2 {
		t.Fatalf("distinct = %d, want 2", tl.DistinctConfigs())
	}
	d, p := tl.MeanShares(4*sim.Second, 108)
	// 2s at 44/108 + 2s at 92/108 → decode mean 68/108.
	if !near(d, 68.0/108.0) {
		t.Fatalf("decode mean share = %v", d)
	}
	if !near(p, 40.0/108.0) {
		t.Fatalf("prefill mean share = %v", p)
	}
	if got := tl.ConfigsWithin(sim.Second, 3*sim.Second); got != 1 {
		t.Fatalf("configs within = %d, want 1", got)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var tl Timeline
	d, p := tl.MeanShares(sim.Second, 108)
	if d != 0 || p != 0 {
		t.Fatal("empty timeline shares should be zero")
	}
}

// Property: quantiles are ordered and bounded by the sample range.
func TestPropertyQuantilesOrdered(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			samples[i] = float64(v)
			lo = math.Min(lo, samples[i])
			hi = math.Max(hi, samples[i])
		}
		q := quantiles(samples)
		return q.P50 <= q.P90 && q.P90 <= q.P99 && q.P99 <= q.Max &&
			q.Max == hi && q.Avg >= lo-1e-9 && q.Avg <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: attainment is monotone in the SLO target.
func TestPropertyAttainmentMonotone(t *testing.T) {
	f := func(gaps []uint16, a, b uint16) bool {
		r := NewRecorder()
		r.Arrive(1, 0, 10)
		at := sim.Time(0)
		r.Token(1, at)
		for _, g := range gaps {
			at += sim.Time(g) * sim.Microsecond
			r.Token(1, at)
		}
		lo, hi := sim.Time(a)*sim.Microsecond, sim.Time(b)*sim.Microsecond
		if lo > hi {
			lo, hi = hi, lo
		}
		return r.TBTAttainment(lo) <= r.TBTAttainment(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Satellite regression: Abort removes a request's ids slot through the
// record's index (not an O(n) splice), and interleaved finish/abort must
// preserve arrival order for every survivor — including when enough
// aborts accumulate to trigger compaction and when an aborted ID
// re-arrives afterwards.
func TestAbortInterleavedOrderStability(t *testing.T) {
	r := NewRecorder()
	const n = 64
	for id := 0; id < n; id++ {
		r.Arrive(id, sim.Time(id)*ms(1), 10)
	}
	// Interleave: finish the multiples of 3, abort the multiples of 4
	// (that aren't finished), alternating so tombstones pile up between
	// live entries rather than at one end.
	aborted := map[int]bool{}
	for id := 0; id < n; id++ {
		switch {
		case id%3 == 0:
			r.Token(id, ms(100))
			r.Finish(id, ms(200))
		case id%4 == 0:
			if !r.Abort(id) {
				t.Fatalf("abort of open request %d failed", id)
			}
			aborted[id] = true
		}
	}
	var want []int
	for id := 0; id < n; id++ {
		if !aborted[id] {
			want = append(want, id)
		}
	}
	got := r.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %d, want %d (order broken)", i, got[i], want[i])
		}
	}
	// An aborted ID re-arrives (failover re-dispatch routed back): it must
	// take a fresh slot at the tail, not resurrect the old one.
	r.Arrive(4, ms(500), 10)
	ids := r.IDs()
	if ids[len(ids)-1] != 4 {
		t.Fatalf("re-arrived ID not at tail: %v", ids[len(ids)-1])
	}
	s := r.Summarize("x", ms(1000))
	if s.Requests != len(want)+1 {
		t.Fatalf("Requests = %d, want %d", s.Requests, len(want)+1)
	}
	if got := r.Unfinished(); got != s.Requests-s.Finished {
		t.Fatalf("Unfinished = %d, want %d", got, s.Requests-s.Finished)
	}
}

// Aborting mid-stream drops exactly the aborted request's TBT samples.
func TestAbortDropsOnlyOwnTBT(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0, 10)
	r.Arrive(2, 0, 10)
	for i := 0; i < 5; i++ {
		r.Token(1, ms(float64(10*i+10)))
		r.Token(2, ms(float64(10*i+15)))
	}
	if got := len(r.TBTSamples()); got != 8 {
		t.Fatalf("TBT samples = %d, want 8", got)
	}
	r.Abort(1)
	if got := len(r.TBTSamples()); got != 4 {
		t.Fatalf("TBT samples after abort = %d, want 4", got)
	}
}
