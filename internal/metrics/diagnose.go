package metrics

import (
	"fmt"
	"strings"
)

// MissBreakdown attributes every SLO miss of a run to a cause. The
// counts partition Misses: a request failing for several reasons lands
// in the first matching bucket of a fixed precedence (crash, migration
// stall, unfinished, TBT violation, then queue-wait vs prefill for TTFT
// misses), so Crash+MigrationStall+Unfinished+TBTViolation+
// QueuedTooLong+SlowPrefill+Other == Misses always holds.
type MissBreakdown struct {
	// Misses is offered minus within-SLO: every request that does not
	// count toward goodput, including never-routed and in-flight ones.
	Misses int `json:"misses"`
	// QueuedTooLong: first token beat the admitted request's serve time
	// but the arrival queue ate the TTFT budget.
	QueuedTooLong int `json:"queued_too_long"`
	// SlowPrefill: admission was prompt but prefill (admission to first
	// token) dominated the blown TTFT budget.
	SlowPrefill int `json:"slow_prefill"`
	// TBTViolation: at least one inter-token gap exceeded the target.
	TBTViolation int `json:"tbt_violation"`
	// MigrationStall: the request rode a KV-migration stream — held for
	// the transfer, or still in flight on one at run end.
	MigrationStall int `json:"migration_stall"`
	// Crash: the request was aborted off a failed replica.
	Crash int `json:"crash"`
	// Unfinished: incomplete at run end (backlog, horizon cut, or never
	// routed) without a more specific cause above.
	Unfinished int `json:"unfinished"`
	// Other: misses the decomposition could not attribute. Structurally
	// zero today; kept so a future cause cannot vanish silently.
	Other int `json:"other"`
}

// Attributed returns the misses assigned a specific cause.
func (b MissBreakdown) Attributed() int { return b.Misses - b.Other }

// AttributionRate returns the attributed fraction of misses (1 when
// there are none) — the frontier acceptance gate checks ≥0.95.
func (b MissBreakdown) AttributionRate() float64 {
	if b.Misses == 0 {
		return 1
	}
	return float64(b.Attributed()) / float64(b.Misses)
}

// Add returns the element-wise sum — for rolling cells up per condition.
func (b MissBreakdown) Add(o MissBreakdown) MissBreakdown {
	b.Misses += o.Misses
	b.QueuedTooLong += o.QueuedTooLong
	b.SlowPrefill += o.SlowPrefill
	b.TBTViolation += o.TBTViolation
	b.MigrationStall += o.MigrationStall
	b.Crash += o.Crash
	b.Unfinished += o.Unfinished
	b.Other += o.Other
	return b
}

// String renders the non-zero causes compactly, e.g.
// "tbt:12 queued:3 crash:1", or "none" when there are no misses.
func (b MissBreakdown) String() string {
	if b.Misses == 0 {
		return "none"
	}
	var parts []string
	for _, c := range []struct {
		label string
		n     int
	}{
		{"queued", b.QueuedTooLong},
		{"prefill", b.SlowPrefill},
		{"tbt", b.TBTViolation},
		{"stall", b.MigrationStall},
		{"crash", b.Crash},
		{"unfinished", b.Unfinished},
		{"other", b.Other},
	} {
		if c.n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", c.label, c.n))
		}
	}
	return strings.Join(parts, " ")
}

// DiagnoseAux is run-level context the recorder cannot see on its own:
// which requests a fleet crashed or held on migration streams, and how
// many never reached any recorder at all.
type DiagnoseAux struct {
	// Crashed marks requests ever aborted off a failed replica.
	Crashed map[int]bool
	// Held marks requests that waited on a KV-migration stream.
	Held map[int]bool
	// Unrouted counts requests still queued at the router at run end
	// (no routable replica ever appeared for them). They are misses on
	// top of the recorder's population, attributed as Unfinished.
	Unrouted int
	// InFlightKV counts requests still riding a migration stream at run
	// end — in no recorder, attributed as MigrationStall.
	InFlightKV int
}

// Diagnose classifies every SLO miss. The population is the recorder's
// requests plus aux's never-recorded ones, so Misses always equals
// offered minus WithinSLO(slo) for the same run.
func (r *Recorder) Diagnose(slo SLO, aux DiagnoseAux) MissBreakdown {
	var b MissBreakdown
	bad := map[int]bool{}
	if slo.TBT > 0 {
		target := slo.TBT.Seconds()
		for _, s := range r.tbt {
			if s.v > target {
				bad[s.id] = true
			}
		}
	}
	for _, id := range r.ids {
		rec := r.reqs[id]
		ttftMiss := slo.TTFT > 0 && rec.firstToken >= 0 && rec.firstToken-rec.arrival > slo.TTFT
		if rec.done && rec.firstToken >= 0 && !bad[id] && !ttftMiss {
			continue // within SLO, mirroring WithinSLO exactly
		}
		b.Misses++
		switch {
		case aux.Crashed[id]:
			b.Crash++
		case aux.Held[id]:
			b.MigrationStall++
		case !rec.done || rec.firstToken < 0:
			b.Unfinished++
		case bad[id]:
			b.TBTViolation++
		case ttftMiss:
			// Split the blown TTFT budget at the admission instant. A
			// request the engine never admitted (admitted < 0) spent its
			// whole life queued.
			if rec.admitted >= rec.arrival && rec.firstToken-rec.admitted > rec.admitted-rec.arrival {
				b.SlowPrefill++
			} else {
				b.QueuedTooLong++
			}
		default:
			b.Other++
		}
	}
	b.Misses += aux.Unrouted + aux.InFlightKV
	b.Unfinished += aux.Unrouted
	b.MigrationStall += aux.InFlightKV
	return b
}
