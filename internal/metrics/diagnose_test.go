package metrics

import (
	"testing"

	"muxwise/internal/sim"
)

func diagSLO() SLO { return SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond} }

// finishCleanly drives a request through a fully SLO-compliant life.
func finishCleanly(r *Recorder, id int, at sim.Time) {
	r.Arrive(id, at, 100)
	r.Admitted(id, at+10*sim.Millisecond)
	r.Token(id, at+100*sim.Millisecond)
	r.Token(id, at+120*sim.Millisecond)
	r.Finish(id, at+120*sim.Millisecond)
}

func TestDiagnoseCauses(t *testing.T) {
	r := NewRecorder()
	slo := diagSLO()

	finishCleanly(r, 1, 0)

	// 2: TTFT miss dominated by queue wait (admitted late, served fast).
	r.Arrive(2, 0, 100)
	r.Admitted(2, 1500*sim.Millisecond)
	r.Token(2, 1600*sim.Millisecond)
	r.Finish(2, 1600*sim.Millisecond)

	// 3: TTFT miss dominated by prefill (admitted at once, slow to first
	// token).
	r.Arrive(3, 0, 100)
	r.Admitted(3, 10*sim.Millisecond)
	r.Token(3, 1800*sim.Millisecond)
	r.Finish(3, 1800*sim.Millisecond)

	// 4: TBT violation (200ms inter-token gap).
	r.Arrive(4, 0, 100)
	r.Admitted(4, 10*sim.Millisecond)
	r.Token(4, 100*sim.Millisecond)
	r.Token(4, 300*sim.Millisecond)
	r.Finish(4, 300*sim.Millisecond)

	// 5: unfinished at run end.
	r.Arrive(5, 0, 100)
	r.Token(5, 100*sim.Millisecond)

	// 6: TTFT miss with no admission recorded — queued its whole life.
	r.Arrive(6, 0, 100)
	r.Token(6, 2*sim.Second)
	r.Finish(6, 2*sim.Second)

	// 7, 8: would be TTFT misses, but crashed / migration-held.
	r.Arrive(7, 0, 100)
	r.Token(7, 2*sim.Second)
	r.Finish(7, 2*sim.Second)
	r.Arrive(8, 0, 100)
	r.Token(8, 2*sim.Second)
	r.Finish(8, 2*sim.Second)

	aux := DiagnoseAux{
		Crashed:    map[int]bool{7: true},
		Held:       map[int]bool{8: true},
		Unrouted:   2,
		InFlightKV: 1,
	}
	b := r.Diagnose(slo, aux)

	want := MissBreakdown{
		Misses:         10,
		QueuedTooLong:  2, // 2 and 6
		SlowPrefill:    1, // 3
		TBTViolation:   1, // 4
		MigrationStall: 2, // 8 + InFlightKV
		Crash:          1, // 7
		Unfinished:     3, // 5 + Unrouted
	}
	if b != want {
		t.Fatalf("breakdown %+v, want %+v", b, want)
	}
	if got := r.WithinSLO(slo); len(r.IDs())+aux.Unrouted+aux.InFlightKV-got != b.Misses {
		t.Fatalf("identity broken: offered %d within %d misses %d",
			len(r.IDs())+aux.Unrouted+aux.InFlightKV, got, b.Misses)
	}
	if b.AttributionRate() != 1 {
		t.Fatalf("attribution rate %v, want 1 (Other=%d)", b.AttributionRate(), b.Other)
	}
}

// Misses must equal offered − WithinSLO for any mix, with zero targets
// disabling their half of the check exactly like WithinSLO does.
func TestDiagnoseMatchesWithinSLO(t *testing.T) {
	for _, slo := range []SLO{diagSLO(), {TTFT: sim.Second}, {TBT: 50 * sim.Millisecond}, {}} {
		r := NewRecorder()
		finishCleanly(r, 1, 0)
		r.Arrive(2, 0, 10)
		r.Token(2, 2*sim.Second)
		r.Finish(2, 2*sim.Second)
		r.Arrive(3, 0, 10)
		r.Token(3, 10*sim.Millisecond)
		r.Token(3, 500*sim.Millisecond)
		r.Finish(3, 500*sim.Millisecond)
		r.Arrive(4, 0, 10)

		b := r.Diagnose(slo, DiagnoseAux{})
		if got := len(r.IDs()) - r.WithinSLO(slo); b.Misses != got {
			t.Errorf("slo %+v: Misses %d, want %d", slo, b.Misses, got)
		}
		sum := b.QueuedTooLong + b.SlowPrefill + b.TBTViolation +
			b.MigrationStall + b.Crash + b.Unfinished + b.Other
		if sum != b.Misses {
			t.Errorf("slo %+v: buckets sum %d != Misses %d", slo, sum, b.Misses)
		}
	}
}

func TestMissBreakdownString(t *testing.T) {
	if got := (MissBreakdown{}).String(); got != "none" {
		t.Fatalf("empty breakdown %q", got)
	}
	b := MissBreakdown{Misses: 3, QueuedTooLong: 2, Crash: 1}
	if got := b.String(); got != "queued:2 crash:1" {
		t.Fatalf("breakdown string %q", got)
	}
	sum := (MissBreakdown{Misses: 1, Crash: 1}).Add(MissBreakdown{Misses: 2, TBTViolation: 2})
	if sum.Misses != 3 || sum.Crash != 1 || sum.TBTViolation != 2 {
		t.Fatalf("add %+v", sum)
	}
}

// Admitted is first-wins and halted-guarded, and must not disturb any
// existing aggregate.
func TestAdmittedSemantics(t *testing.T) {
	r := NewRecorder()
	r.Admitted(1, 5) // unknown: ignored
	r.Arrive(1, 0, 10)
	r.Admitted(1, 5)
	r.Admitted(1, 9) // second call ignored
	if rec := r.reqs[1]; rec.admitted != 5 {
		t.Fatalf("admitted %v, want 5", rec.admitted)
	}
	r.Halt()
	r.Arrive(2, 0, 10)
	r.Admitted(2, 5)
	if _, ok := r.reqs[2]; ok {
		t.Fatal("halted recorder accepted arrival")
	}
}
