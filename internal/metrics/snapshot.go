package metrics

import "muxwise/internal/sim"

// Snapshot is a read-only, windowed rollup of recent observations — the
// view pluggable routers and autoscalers receive so they can react to
// the tail the fleet is serving right now rather than to cumulative
// statistics diluted by the whole run.
type Snapshot struct {
	// From and To bracket the trailing observation window.
	From, To sim.Time
	// TTFT summarises the first-token latencies observed inside the
	// window (by first-token emission time).
	TTFT Quantiles
	// Backlog counts arrived-but-unfinished requests at To.
	Backlog int
}
