// Package metrics records per-request serving latencies and aggregates
// them into the statistics the paper reports: TTFT, TBT, TPOT, end-to-end
// latency (average/P50/P99), token throughput, SLO attainment, and the
// partition timeline of Fig. 18.
//
// The paper's metric choices are followed exactly: TBT is the gap between
// consecutive token emissions of a request (stricter than the TPOT
// average, §4.1), TTFT is first-token time minus arrival, and SLO
// attainment is the fraction of TBT samples within the target.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"muxwise/internal/obs"
	"muxwise/internal/sim"
)

// SLO holds the latency targets of a serving class.
type SLO struct {
	TTFT sim.Time
	TBT  sim.Time
}

// reqRec tracks one request's lifecycle.
type reqRec struct {
	arrival     sim.Time
	admitted    sim.Time // -1 until the engine admits it out of its queue
	firstToken  sim.Time
	lastToken   sim.Time
	finished    sim.Time
	tokens      int
	inputTokens int
	idx         int // position in Recorder.ids (the removal index map)
	tbtN        int // TBT samples this request contributed
	done        bool
}

// tombstoneID marks an aborted request's slot in the ids slice; iteration
// skips it and compaction reclaims it. Real request IDs never take this
// value.
const tombstoneID = math.MinInt

// tbtSample is one inter-token gap, tagged with the request that emitted
// it and the emission time so windowed rollups and aborts can attribute
// the sample.
type tbtSample struct {
	id int
	at sim.Time
	v  float64 // seconds
}

// Recorder collects latency samples during a simulation run.
type Recorder struct {
	reqs map[int]*reqRec
	// ids holds request IDs in insertion order for deterministic
	// iteration. Abort overwrites the request's slot (found through its
	// record's index, not a scan) with tombstoneID; compact reclaims the
	// slots once they outnumber the live entries.
	ids        []int
	tombstones int
	open       int // arrived-but-unfinished requests

	tbt []tbtSample // all requests pooled

	prefillTokens int64
	decodeTokens  int64

	// halted freezes the recorder: a failed replica's engine keeps
	// simulating its queued work (ghost events), but none of it may leak
	// into the metrics after the failure instant.
	halted bool

	// OnFinish, when set, is invoked exactly once per request as it
	// completes (cluster routers use it to track per-replica load).
	OnFinish func(id int, at sim.Time)

	// OnFirstToken, when set, is invoked once per request as its first
	// token is observed, with the request's TTFT (learned routers use it
	// to track per-replica first-token latency).
	OnFirstToken func(id int, ttft sim.Time)

	// trace, when set, receives request lifecycle events (arrival,
	// admission, first token, finish) on the named track. Emission is
	// purely observational; a nil trace costs nothing.
	trace *obs.Tracer
	track string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{reqs: map[int]*reqRec{}}
}

// SetTrace attaches a flight recorder; lifecycle events are emitted on
// track (the owning instance's label). A nil tracer detaches.
func (r *Recorder) SetTrace(tr *obs.Tracer, track string) {
	r.trace = tr
	r.track = track
}

// Arrive registers a request's arrival.
func (r *Recorder) Arrive(id int, at sim.Time, inputTokens int) {
	if r.halted {
		return
	}
	if _, ok := r.reqs[id]; ok {
		return
	}
	r.reqs[id] = &reqRec{arrival: at, admitted: -1, firstToken: -1, inputTokens: inputTokens, idx: len(r.ids)}
	r.ids = append(r.ids, id)
	r.open++
	if r.trace != nil {
		r.trace.AsyncBegin(at, r.track, "request", int64(id), "request",
			obs.Arg{Key: "input_tokens", Val: inputTokens})
	}
}

// Admitted records the instant the engine accepted the request out of
// its arrival queue into serving (KV reserved, prefill scheduled). The
// diagnostics rollup uses it to split a TTFT miss into queue-wait vs
// prefill time. First call wins; unknown requests and halted recorders
// are ignored.
func (r *Recorder) Admitted(id int, at sim.Time) {
	rec, ok := r.reqs[id]
	if !ok || r.halted || rec.admitted >= 0 {
		return
	}
	rec.admitted = at
	if r.trace != nil {
		r.trace.AsyncInstant(at, r.track, "request", int64(id), "admitted",
			obs.Arg{Key: "queue_ms", Val: (at - rec.arrival).Milliseconds()})
	}
}

// PrefillDone credits processed prefill tokens (throughput accounting).
func (r *Recorder) PrefillDone(tokens int) {
	if r.halted {
		return
	}
	r.prefillTokens += int64(tokens)
}

// Token records one generated token for the request. The first token
// defines TTFT; subsequent tokens contribute TBT samples.
func (r *Recorder) Token(id int, at sim.Time) {
	rec, ok := r.reqs[id]
	if !ok || r.halted {
		return
	}
	rec.tokens++
	r.decodeTokens++
	if rec.firstToken < 0 {
		rec.firstToken = at
		if r.OnFirstToken != nil {
			r.OnFirstToken(id, at-rec.arrival)
		}
		if r.trace != nil {
			r.trace.AsyncInstant(at, r.track, "request", int64(id), "first-token",
				obs.Arg{Key: "ttft_ms", Val: (at - rec.arrival).Milliseconds()})
		}
	} else {
		r.tbt = append(r.tbt, tbtSample{id: id, at: at, v: (at - rec.lastToken).Seconds()})
		rec.tbtN++
	}
	rec.lastToken = at
}

// Finish marks the request complete.
func (r *Recorder) Finish(id int, at sim.Time) {
	if r.halted {
		return
	}
	if rec, ok := r.reqs[id]; ok && !rec.done {
		rec.finished = at
		rec.done = true
		r.open--
		if r.OnFinish != nil {
			r.OnFinish(id, at)
		}
		if r.trace != nil {
			r.trace.AsyncEnd(at, r.track, "request", int64(id), "request",
				obs.Arg{Key: "outcome", Val: "finish"},
				obs.Arg{Key: "tokens", Val: rec.tokens})
		}
	}
}

// Halt freezes the recorder at the current instant. Later Arrive, Token,
// PrefillDone and Finish calls are ignored: a failed replica's engine
// keeps dispatching its already-scheduled simulation events, and that
// ghost work must not count. Abort still works on a halted recorder so
// the fleet controller can surface in-flight requests for re-dispatch.
func (r *Recorder) Halt() { r.halted = true }

// Halted reports whether the recorder has been frozen.
func (r *Recorder) Halted() bool { return r.halted }

// Abort removes an unfinished request from the recorder as if it had
// never arrived here, dropping its TBT samples, so the same request ID
// can re-arrive on another replica's recorder (metrics.Merge requires
// disjoint IDs). The re-prefill the request pays on its new replica is
// charged through the cache-hit machinery, not here. Aborting a finished
// or unknown request is a no-op; it reports whether a record was removed.
func (r *Recorder) Abort(id int) bool {
	rec, ok := r.reqs[id]
	if !ok || rec.done {
		return false
	}
	// Roll back the aborted request's decode tokens: its latency samples
	// are withdrawn and the full output is re-credited wherever it
	// re-dispatches. Prefill tokens stay — they are batch-level credits
	// with no per-request attribution, and that work really ran here; the
	// re-prefill on the new replica is counted again on purpose, as the
	// failure's cost in fleet throughput.
	r.decodeTokens -= int64(rec.tokens)
	delete(r.reqs, id)
	r.open--
	// O(1) slot removal through the record's index; the order-preserving
	// compaction runs only when tombstones outnumber live entries, so a
	// drain aborting k of n requests costs O(k + n) total, not O(k·n).
	r.ids[rec.idx] = tombstoneID
	r.tombstones++
	if r.tombstones > len(r.ids)-r.tombstones {
		r.compact()
	}
	if rec.tbtN > 0 {
		kept := r.tbt[:0]
		for _, s := range r.tbt {
			if s.id != id {
				kept = append(kept, s)
			}
		}
		r.tbt = kept
	}
	return true
}

// compact rewrites ids without tombstones, preserving insertion order and
// refreshing every record's index.
func (r *Recorder) compact() {
	kept := r.ids[:0]
	for _, id := range r.ids {
		if id == tombstoneID {
			continue
		}
		r.reqs[id].idx = len(kept)
		kept = append(kept, id)
	}
	r.ids = kept
	r.tombstones = 0
}

// OpenIDs returns the IDs of arrived-but-unfinished requests in arrival
// order — the in-flight set a drain or failure must surface for
// re-dispatch.
func (r *Recorder) OpenIDs() []int {
	var out []int
	for _, id := range r.ids {
		if id == tombstoneID {
			continue
		}
		if !r.reqs[id].done {
			out = append(out, id)
		}
	}
	return out
}

// Quantiles summarises a latency sample set in seconds.
type Quantiles struct {
	Avg, P50, P90, P99, Max float64
	N                       int
}

// quantiles summarises a sample set, sorting it IN PLACE — internal
// callers own their slices; the exported QuantilesOf copies first.
func quantiles(samples []float64) Quantiles {
	q := Quantiles{N: len(samples)}
	if len(samples) == 0 {
		return q
	}
	s := samples
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	q.Avg = sum / float64(len(s))
	q.P50 = percentile(s, 0.50)
	q.P90 = percentile(s, 0.90)
	q.P99 = percentile(s, 0.99)
	q.Max = s[len(s)-1]
	return q
}

// percentile returns the p-quantile of a sorted sample via the
// nearest-rank method the serving literature uses for tail latencies.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String formats the headline quantiles in milliseconds.
func (q Quantiles) String() string {
	return fmt.Sprintf("avg=%.1fms p50=%.1fms p99=%.1fms", q.Avg*1e3, q.P50*1e3, q.P99*1e3)
}

// Summary aggregates a completed run.
type Summary struct {
	Name     string
	Requests int
	Finished int

	TTFT Quantiles
	TBT  Quantiles
	TPOT Quantiles
	E2E  Quantiles

	// TTFTPerToken normalises TTFT by input length (§4.4.3 / Fig. 20).
	TTFTPerToken Quantiles

	// TokensPerSecond counts prefill+decode tokens over the active span.
	TokensPerSecond float64
	DecodeTokens    int64
	PrefillTokens   int64

	Makespan sim.Time

	// Backlog is the number of requests still unfinished shortly after
	// the last arrival (set by the runner's stability probe).
	Backlog int

	// MigratedKVTokens counts KV tokens delivered by cluster KV
	// migration (graceful drains streaming session KV to the re-routed
	// replica); MigrationStallSeconds sums the stream latencies those
	// sessions waited out. Both are zero for single-instance runs and
	// migration-disabled fleets — the cluster runner sets them, the way
	// the stability probe sets Backlog.
	MigratedKVTokens      int64
	MigrationStallSeconds float64

	// Unstable marks runs where the system could not keep up — a large
	// backlog after arrivals stop, or unfinished work at the horizon —
	// mirroring the paper's "unstable" baseline states in Fig. 14/15.
	Unstable bool
}

// TBTAttainment returns the fraction of TBT samples within the SLO.
func (r *Recorder) TBTAttainment(slo sim.Time) float64 {
	if len(r.tbt) == 0 {
		return 1
	}
	target := slo.Seconds()
	ok := 0
	for _, s := range r.tbt {
		if s.v <= target {
			ok++
		}
	}
	return float64(ok) / float64(len(r.tbt))
}

// WithinSLO returns how many requests met the SLO end to end: finished,
// first token within slo.TTFT, and every inter-token gap within slo.TBT.
// It is the per-request conformance count behind DistServe-style goodput
// (requests per second that meet their SLO); dividing by the offered
// span turns it into the frontier's goodput numerator. A zero TTFT or
// TBT target disables that half of the check.
func (r *Recorder) WithinSLO(slo SLO) int {
	bad := map[int]bool{}
	if slo.TBT > 0 {
		target := slo.TBT.Seconds()
		for _, s := range r.tbt {
			if s.v > target {
				bad[s.id] = true
			}
		}
	}
	n := 0
	for _, id := range r.ids {
		if id == tombstoneID {
			continue
		}
		rec := r.reqs[id]
		if !rec.done || rec.firstToken < 0 || bad[id] {
			continue
		}
		if slo.TTFT > 0 && rec.firstToken-rec.arrival > slo.TTFT {
			continue
		}
		n++
	}
	return n
}

// TTFTAttainment returns the fraction of first tokens within the SLO.
func (r *Recorder) TTFTAttainment(slo sim.Time) float64 {
	total, ok := 0, 0
	for _, id := range r.ids {
		if id == tombstoneID {
			continue
		}
		rec := r.reqs[id]
		if rec.firstToken < 0 {
			continue
		}
		total++
		if rec.firstToken-rec.arrival <= slo {
			ok++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// Summarize builds the run summary. now is the simulation end time, used
// for makespan and stability accounting.
func (r *Recorder) Summarize(name string, now sim.Time) Summary {
	s := Summary{Name: name, Makespan: now}
	var ttft, tpot, e2e, perTok []float64
	for _, id := range r.ids {
		if id == tombstoneID {
			continue
		}
		rec := r.reqs[id]
		s.Requests++
		if rec.firstToken >= 0 {
			t := (rec.firstToken - rec.arrival).Seconds()
			ttft = append(ttft, t)
			if rec.inputTokens > 0 {
				perTok = append(perTok, t/float64(rec.inputTokens))
			}
		}
		if !rec.done {
			continue
		}
		s.Finished++
		e2e = append(e2e, (rec.finished - rec.arrival).Seconds())
		if rec.tokens > 1 {
			tpot = append(tpot, (rec.lastToken-rec.firstToken).Seconds()/float64(rec.tokens-1))
		}
	}
	s.TTFT = quantiles(ttft)
	s.TBT = quantiles(r.TBTSamples())
	s.TPOT = quantiles(tpot)
	s.E2E = quantiles(e2e)
	s.TTFTPerToken = quantiles(perTok)
	s.DecodeTokens = r.decodeTokens
	s.PrefillTokens = r.prefillTokens
	if sec := now.Seconds(); sec > 0 {
		s.TokensPerSecond = float64(r.prefillTokens+r.decodeTokens) / sec
	}
	s.Unstable = s.Finished < s.Requests*95/100
	return s
}

// IDs returns the recorded request IDs in arrival-insertion order
// (cluster tests map them back to trace sessions).
func (r *Recorder) IDs() []int {
	if r.tombstones > 0 {
		r.compact()
	}
	return r.ids
}

// Unfinished returns how many arrived requests have not completed.
func (r *Recorder) Unfinished() int { return r.open }

// TBTSamples exposes raw TBT samples in seconds (CDF plotting).
func (r *Recorder) TBTSamples() []float64 {
	out := make([]float64, len(r.tbt))
	for i, s := range r.tbt {
		out[i] = s.v
	}
	return out
}

// TTFTPerTokenSamples returns TTFT/input-length for every started request.
func (r *Recorder) TTFTPerTokenSamples() []float64 {
	var out []float64
	for _, id := range r.ids {
		if id == tombstoneID {
			continue
		}
		rec := r.reqs[id]
		if rec.firstToken >= 0 && rec.inputTokens > 0 {
			out = append(out, (rec.firstToken-rec.arrival).Seconds()/float64(rec.inputTokens))
		}
	}
	return out
}

// Timeline records a step function of the compute partition over time
// (Fig. 18: SM share of prefill vs decode).
type Timeline struct {
	times      []sim.Time
	decodeSMs  []int
	prefillSMs []int
}

// Record appends a partition change.
func (tl *Timeline) Record(at sim.Time, decodeSMs, prefillSMs int) {
	n := len(tl.times)
	if n > 0 && tl.decodeSMs[n-1] == decodeSMs && tl.prefillSMs[n-1] == prefillSMs {
		return
	}
	tl.times = append(tl.times, at)
	tl.decodeSMs = append(tl.decodeSMs, decodeSMs)
	tl.prefillSMs = append(tl.prefillSMs, prefillSMs)
}

// Changes returns the number of distinct partition configurations seen.
func (tl *Timeline) Changes() int { return len(tl.times) }

// DistinctConfigs returns how many distinct (decode, prefill) pairs occur.
func (tl *Timeline) DistinctConfigs() int {
	set := map[[2]int]bool{}
	for i := range tl.times {
		set[[2]int{tl.decodeSMs[i], tl.prefillSMs[i]}] = true
	}
	return len(set)
}

// MeanShares returns the time-weighted mean SM share of decode and
// prefill over [0, end].
func (tl *Timeline) MeanShares(end sim.Time, totalSMs int) (decode, prefill float64) {
	if len(tl.times) == 0 || totalSMs == 0 {
		return 0, 0
	}
	var dInt, pInt float64
	for i := range tl.times {
		until := end
		if i+1 < len(tl.times) {
			until = tl.times[i+1]
		}
		if until > end {
			until = end
		}
		dt := (until - tl.times[i]).Seconds()
		if dt < 0 {
			dt = 0
		}
		dInt += float64(tl.decodeSMs[i]) * dt
		pInt += float64(tl.prefillSMs[i]) * dt
	}
	span := (end - tl.times[0]).Seconds()
	if span <= 0 {
		return 0, 0
	}
	return dInt / span / float64(totalSMs), pInt / span / float64(totalSMs)
}

// MeanSharesActive is MeanShares restricted to intervals where the
// prefill partition holds SMs — the co-running periods Fig. 18 plots.
// It returns zeros when the phases never multiplexed.
func (tl *Timeline) MeanSharesActive(end sim.Time, totalSMs int) (decode, prefill float64) {
	if len(tl.times) == 0 || totalSMs == 0 {
		return 0, 0
	}
	var dInt, pInt, span float64
	for i := range tl.times {
		if tl.prefillSMs[i] == 0 {
			continue
		}
		until := end
		if i+1 < len(tl.times) {
			until = tl.times[i+1]
		}
		if until > end {
			until = end
		}
		dt := (until - tl.times[i]).Seconds()
		if dt < 0 {
			dt = 0
		}
		dInt += float64(tl.decodeSMs[i]) * dt
		pInt += float64(tl.prefillSMs[i]) * dt
		span += dt
	}
	if span <= 0 {
		return 0, 0
	}
	return dInt / span / float64(totalSMs), pInt / span / float64(totalSMs)
}

// ConfigsWithin counts distinct configurations active inside [from, to]
// (used for the §4.4.1 observation that bursty intervals activate all six
// partition configurations within 30 s).
func (tl *Timeline) ConfigsWithin(from, to sim.Time) int {
	set := map[[2]int]bool{}
	for i := range tl.times {
		if tl.times[i] >= from && tl.times[i] <= to {
			set[[2]int{tl.decodeSMs[i], tl.prefillSMs[i]}] = true
		}
	}
	return len(set)
}
