package metrics

import (
	"fmt"
	"sort"

	"muxwise/internal/sim"
)

// Merge combines per-replica recorders into one fleet-wide view, so the
// cluster runner can report the same Summary / attainment statistics over
// a whole deployment that a single-instance run reports for one engine.
//
// Request IDs must be disjoint across the inputs (a cluster routes each
// request to exactly one replica, so per-replica recorders never share
// an ID); a duplicate panics rather than producing a silently
// half-merged summary. The merged recorder shares the per-request
// records of its inputs and must be treated as read-only.
func Merge(recs ...*Recorder) *Recorder {
	m := NewRecorder()
	for _, r := range recs {
		if r == nil {
			continue
		}
		for _, id := range r.ids {
			if id == tombstoneID {
				continue
			}
			if _, dup := m.reqs[id]; dup {
				panic(fmt.Sprintf("metrics: Merge saw request ID %d twice; inputs must be disjoint", id))
			}
			rec := r.reqs[id]
			m.reqs[id] = rec
			m.ids = append(m.ids, id)
			if !rec.done {
				m.open++
			}
		}
		m.tbt = append(m.tbt, r.tbt...)
		m.prefillTokens += r.prefillTokens
		m.decodeTokens += r.decodeTokens
	}
	return m
}

// Window is a time-bounded rollup of recorder samples — one fleet epoch
// or one fixed-width slice of a run. Sample assignment follows the time
// the observation was made: arrivals by arrival time, TTFT by
// first-token time, TBT by token-emission time, completions by finish
// time. A request spanning a boundary therefore contributes to every
// window it was active in, which is exactly what per-epoch goodput needs.
type Window struct {
	From, To sim.Time

	Arrivals int // requests that arrived inside the window
	Started  int // requests whose first token landed inside the window
	Finished int // requests that completed inside the window

	TTFT Quantiles
	TBT  Quantiles

	// tbtOK/tbtN count the window's TBT samples inside the SLO given to
	// RollupSLO; Attainment reads them.
	tbtOK, tbtN int
}

// Attainment returns the window's TBT SLO attainment (1 when the window
// holds no samples, matching TBTAttainment's convention). It is only
// meaningful on windows produced by RollupSLO.
func (w Window) Attainment() float64 {
	if w.tbtN == 0 {
		return 1
	}
	return float64(w.tbtOK) / float64(w.tbtN)
}

// Rollup slices the recorder's samples into the half-open windows
// [bounds[i], bounds[i+1]). Bounds must be ascending; the last window is
// closed at bounds[len-1]. The result is independent of the order
// requests were recorded (samples are pooled and quantiles sorted), so
// merged fleet recorders roll up identically regardless of replica merge
// order.
func (r *Recorder) Rollup(bounds []sim.Time) []Window {
	return r.RollupSLO(bounds, 0)
}

// RollupSLO is Rollup with per-window TBT attainment against tbtSLO
// (a zero SLO leaves attainment at its no-samples convention).
func (r *Recorder) RollupSLO(bounds []sim.Time, tbtSLO sim.Time) []Window {
	if len(bounds) < 2 {
		return nil
	}
	n := len(bounds) - 1
	wins := make([]Window, n)
	ttft := make([][]float64, n)
	tbt := make([][]float64, n)
	for i := range wins {
		wins[i].From, wins[i].To = bounds[i], bounds[i+1]
	}
	// locate returns the window index containing t, or -1. The final
	// bound is inclusive: the last window is closed, so a sample landing
	// exactly on the run's end instant is not dropped.
	locate := func(t sim.Time) int {
		i := sort.Search(len(bounds), func(i int) bool { return bounds[i] > t }) - 1
		if i == n && t == bounds[n] {
			return n - 1
		}
		if i < 0 || i >= n {
			return -1
		}
		return i
	}
	for _, id := range r.ids {
		if id == tombstoneID {
			continue
		}
		rec := r.reqs[id]
		if i := locate(rec.arrival); i >= 0 {
			wins[i].Arrivals++
		}
		if rec.firstToken >= 0 {
			if i := locate(rec.firstToken); i >= 0 {
				wins[i].Started++
				ttft[i] = append(ttft[i], (rec.firstToken - rec.arrival).Seconds())
			}
		}
		if rec.done {
			if i := locate(rec.finished); i >= 0 {
				wins[i].Finished++
			}
		}
	}
	target := tbtSLO.Seconds()
	for _, s := range r.tbt {
		i := locate(s.at)
		if i < 0 {
			continue
		}
		tbt[i] = append(tbt[i], s.v)
		if tbtSLO > 0 {
			wins[i].tbtN++
			if s.v <= target {
				wins[i].tbtOK++
			}
		}
	}
	for i := range wins {
		wins[i].TTFT = quantiles(ttft[i])
		wins[i].TBT = quantiles(tbt[i])
	}
	return wins
}

// TTFTSamplesSince returns the TTFT samples (seconds) of requests whose
// first token was observed at or after from, in arrival order. Fleet
// autoscalers pool these across replicas before summarising.
func (r *Recorder) TTFTSamplesSince(from sim.Time) []float64 {
	return r.AppendTTFTSince(nil, from)
}

// AppendTTFTSince is TTFTSamplesSince with a caller-owned buffer: samples
// are appended to dst (reusing its capacity), so per-tick autoscaler
// snapshots do not allocate once the buffer has grown.
func (r *Recorder) AppendTTFTSince(dst []float64, from sim.Time) []float64 {
	for _, id := range r.ids {
		if id == tombstoneID {
			continue
		}
		rec := r.reqs[id]
		if rec.firstToken >= from {
			dst = append(dst, (rec.firstToken - rec.arrival).Seconds())
		}
	}
	return dst
}

// QuantilesOf summarises an arbitrary sample set (seconds) with the same
// statistics the recorder reports, for callers that pool samples across
// recorders themselves. The input is not modified.
func QuantilesOf(samples []float64) Quantiles {
	return quantiles(append([]float64(nil), samples...))
}

// QuantilesInPlace is QuantilesOf for callers that own the sample slice:
// it sorts samples in place, skipping the defensive copy. Per-tick
// consumers (fleet autoscalers) pair it with AppendTTFTSince over a
// reused scratch buffer.
func QuantilesInPlace(samples []float64) Quantiles { return quantiles(samples) }
