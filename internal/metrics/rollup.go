package metrics

import "fmt"

// Merge combines per-replica recorders into one fleet-wide view, so the
// cluster runner can report the same Summary / attainment statistics over
// a whole deployment that a single-instance run reports for one engine.
//
// Request IDs must be disjoint across the inputs (a cluster routes each
// request to exactly one replica, so per-replica recorders never share
// an ID); a duplicate panics rather than producing a silently
// half-merged summary. The merged recorder shares the per-request
// records of its inputs and must be treated as read-only.
func Merge(recs ...*Recorder) *Recorder {
	m := NewRecorder()
	for _, r := range recs {
		if r == nil {
			continue
		}
		for _, id := range r.ids {
			if _, dup := m.reqs[id]; dup {
				panic(fmt.Sprintf("metrics: Merge saw request ID %d twice; inputs must be disjoint", id))
			}
			m.reqs[id] = r.reqs[id]
			m.ids = append(m.ids, id)
		}
		m.tbt = append(m.tbt, r.tbt...)
		m.prefillTokens += r.prefillTokens
		m.decodeTokens += r.decodeTokens
	}
	return m
}
