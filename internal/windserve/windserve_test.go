package windserve

import (
	"testing"

	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

func cfg8B() serve.Config {
	return serve.Config{
		Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: 500 * sim.Millisecond, TBT: 50 * sim.Millisecond},
	}
}

func TestServesTrace(t *testing.T) {
	tr := workload.ShareGPT(1, 150).WithPoissonArrivals(1, 2)
	res := serve.Run(New, cfg8B(), tr)
	if res.Summary.Finished != 150 {
		t.Fatalf("finished %d/150", res.Summary.Finished)
	}
}

// Unmanaged streams: a decode iteration co-running with a whole-phase
// prefill kernel starves on SM occupancy, so tail TBT degrades sharply
// under load — the §6 "uncontrollable contention".
func TestUnmanagedContentionHurtsTailTBT(t *testing.T) {
	tr := workload.ShareGPT(2, 400).WithPoissonArrivals(2, 6)
	res := serve.Run(New, cfg8B(), tr)
	if res.Summary.TBT.P99 < res.Summary.TBT.P50*3 {
		t.Fatalf("p99 TBT %.1fms vs p50 %.1fms — expected a heavy contention tail",
			res.Summary.TBT.P99*1e3, res.Summary.TBT.P50*1e3)
	}
}

func TestDeterminism(t *testing.T) {
	a := serve.Run(New, cfg8B(), workload.ShareGPT(3, 80).WithPoissonArrivals(3, 2)).Summary
	b := serve.Run(New, cfg8B(), workload.ShareGPT(3, 80).WithPoissonArrivals(3, 2)).Summary
	if a.TBT != b.TBT || a.TTFT != b.TTFT {
		t.Fatal("windserve runs not deterministic")
	}
}
