// Package windserve implements the WindServe-style baseline discussed in
// §6: prefill and decode multiplex on ordinary CUDA streams with no SM
// partitioning. Both streams contend for the whole GPU — compute
// time-slices and memory bandwidth is unmanaged — and neither launch
// bubbles nor merge stalls are addressed (whole-phase prefill launches
// block the host). The paper's prototype of this design loses 1.61× on
// ShareGPT goodput against MuxWise on an A100 with Llama-8B.
package windserve

import (
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Engine multiplexes on unpartitioned streams.
type Engine struct {
	env *serve.Env

	dev      *gpu.Device
	decodeS  *gpu.Partition // "stream", full SMs
	prefillS *gpu.Partition // "stream", full SMs
	pool     *kvcache.Pool

	decode        serve.Batch
	decodeRunning bool
	prefillBusy   bool
	queue         []*serve.Running
	merging       []*serve.Running
	pending       []*workload.Request

	// pInFlight is the prefill on the device (one at a time, guarded by
	// prefillBusy); the slices are reused scratch.
	pInFlight  *serve.Running
	ctxScratch []int
	finScratch []*serve.Running
}

// New builds a WindServe-style engine.
func New(env *serve.Env) serve.Engine {
	dev := gpu.NewDevice(env.Sim, env.Spec, env.GPUs, "windserve")
	return &Engine{
		env:      env,
		dev:      dev,
		decodeS:  dev.Partition(env.Spec.SMs, "decode-stream"),
		prefillS: dev.Partition(env.Spec.SMs, "prefill-stream"),
		pool:     kvcache.New(env.PoolTokens(env.GPUs), kvcache.DefaultPageTokens),
	}
}

// Name implements serve.Engine.
func (e *Engine) Name() string { return "WindServe" }

// Timeline implements serve.Engine (no partitioning to record).
func (e *Engine) Timeline() *metrics.Timeline { return &metrics.Timeline{} }

// Devices implements serve.Engine.
func (e *Engine) Devices() []*gpu.Device { return []*gpu.Device{e.dev} }

// CachePools implements serve.PoolReporter.
func (e *Engine) CachePools() []*kvcache.Pool { return []*kvcache.Pool{e.pool} }

// Submit implements serve.Engine.
func (e *Engine) Submit(r *workload.Request) {
	e.pending = append(e.pending, r)
	e.admit()
	e.schedule()
}

func (e *Engine) admit() {
	for len(e.pending) > 0 {
		if e.decode.Size()+len(e.queue)+len(e.merging) >= e.env.MaxBatch {
			return
		}
		run := serve.Admit(e.pool, e.pending[0])
		if run == nil {
			return
		}
		e.env.Admitted(run.R.ID)
		e.pending = e.pending[1:]
		e.queue = append(e.queue, run)
	}
}

func (e *Engine) schedule() {
	e.startDecode()
	e.startPrefill()
}

func (e *Engine) startDecode() {
	if e.decodeRunning || e.decode.Size() == 0 {
		return
	}
	e.ctxScratch = e.decode.CtxsInto(e.ctxScratch)
	cost := e.env.Arch.DecodeIter(e.ctxScratch, e.env.GPUs)
	e.decodeRunning = true
	e.decodeS.LaunchFn(gpu.Kernel{
		Label: "decode", Kind: gpu.Decode,
		FLOPs: cost.FLOPs, Bytes: cost.Bytes, CommBytes: cost.CommBytes,
		Tokens: cost.Tokens, Launch: e.env.Spec.GraphLaunch,
	}, decodeDone, e)
}

// decodeDone / prefillDone are the engine's bound completion callbacks:
// the engine rides as the event argument, so steady-state iterations
// allocate no closures.
func decodeDone(arg any) { arg.(*Engine).onDecodeDone() }

func prefillDone(arg any) {
	e := arg.(*Engine)
	run := e.pInFlight
	e.pInFlight = nil
	e.prefillBusy = false
	if e.decodeRunning {
		e.merging = append(e.merging, run)
	} else {
		e.mergeOne(run)
	}
	e.schedule()
}

func (e *Engine) onDecodeDone() {
	now := e.env.Sim.Now()
	e.decodeRunning = false
	e.finScratch = e.decode.StepInto(now, e.env.Rec, e.finScratch)
	for _, r := range e.finScratch {
		r.Complete(e.pool)
	}
	for _, r := range e.merging {
		e.mergeOne(r)
	}
	e.merging = e.merging[:0]
	e.admit()
	e.schedule()
}

func (e *Engine) mergeOne(r *serve.Running) {
	now := e.env.Sim.Now()
	e.env.Rec.PrefillDone(r.R.InputTokens - r.CachedTokens)
	e.env.Rec.Token(r.R.ID, now)
	r.Generated = 1
	if r.DecodeDone() {
		e.env.Rec.Finish(r.R.ID, now)
		r.Complete(e.pool)
		return
	}
	e.decode.Add(r)
}

// startPrefill launches the queue head as one whole-phase kernel on the
// unpartitioned prefill stream.
func (e *Engine) startPrefill() {
	if e.prefillBusy || len(e.queue) == 0 {
		return
	}
	run := e.queue[0]
	e.queue = e.queue[1:]
	newTok := run.R.InputTokens - run.CachedTokens
	if newTok < 1 {
		newTok = 1
	}
	phase := e.env.Arch.PrefillPhase([]model.Seq{{New: newTok, Reused: run.CachedTokens}}, e.env.GPUs)
	e.prefillBusy = true
	e.pInFlight = run
	e.prefillS.LaunchFn(gpu.Kernel{
		Label: "prefill-phase", Kind: gpu.Prefill,
		FLOPs: phase.FLOPs, Bytes: phase.Bytes, CommBytes: phase.CommBytes,
		Tokens: phase.Tokens,
		Launch: sim.Time(e.env.Arch.Layers) * e.env.Spec.LayerLaunch,
	}, prefillDone, e)
}
