package roofline_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"muxwise/internal/gpu"
	"muxwise/internal/model"
	"muxwise/internal/roofline"
)

// -update-hardware-doc regenerates docs/hardware.md from the live
// catalogs:
//
//	go test ./internal/roofline -run TestHardwareDocUpToDate -update-hardware-doc
var updateHardwareDoc = flag.Bool("update-hardware-doc", false, "rewrite docs/hardware.md from gpu.Catalog/model.Catalog")

// hardwareDocPath locates docs/hardware.md relative to this package.
const hardwareDocPath = "../../docs/hardware.md"

// TestHardwareDocUpToDate pins docs/hardware.md to the code: the
// committed file must be byte-identical to what the generator renders
// from gpu.Catalog(), model.Catalog() and the roofline model today.
// Adding a spec or arch preset fails this test until the doc is
// regenerated, so the catalog can never silently drift.
func TestHardwareDocUpToDate(t *testing.T) {
	want := hardwareDoc()
	if *updateHardwareDoc {
		if err := os.MkdirAll(filepath.Dir(hardwareDocPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(hardwareDocPath, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", hardwareDocPath, len(want))
		return
	}
	got, err := os.ReadFile(hardwareDocPath)
	if err != nil {
		t.Fatalf("read %s (regenerate with -update-hardware-doc): %v", hardwareDocPath, err)
	}
	if string(got) != want {
		t.Fatalf("%s is stale: the catalogs or the roofline model changed — regenerate with\n\n\tgo test ./internal/roofline -run TestHardwareDocUpToDate -update-hardware-doc", hardwareDocPath)
	}
	// Spot-check the generated content actually covers the catalogs.
	for _, s := range gpu.Catalog() {
		if !strings.Contains(want, s.Name) {
			t.Errorf("generated doc is missing GPU %s", s.Name)
		}
	}
	for _, a := range model.Catalog() {
		if !strings.Contains(want, a.Name) {
			t.Errorf("generated doc is missing model %s", a.Name)
		}
	}
}

// hardwareDoc renders the full docs/hardware.md. It lives in a test file
// on purpose: the doc is regenerated through this test, and the
// Sprintf-heavy rendering stays out of the simulation-critical package
// body that muxvet's hot-path analyzers police.
func hardwareDoc() string {
	var b strings.Builder
	gpus := gpu.Catalog()
	archs := model.Catalog()

	b.WriteString(`# Hardware and model catalog

> Generated from code — do not edit by hand. After changing
> ` + "`gpu.Catalog()` or `model.Catalog()`" + `, regenerate with
>
>     go test ./internal/roofline -run TestHardwareDocUpToDate -update-hardware-doc

Every GPU and model the simulator knows about, with the datasheet numbers
the [roofline cost model](roofline.md) runs on. The fitted cost model
(the default) additionally needs an offline profiling pass per
(model, GPU) pair; the roofline model serves any pair below analytically.

## GPUs (` + "`internal/gpu.Catalog`" + `)

`)
	b.WriteString("| Spec | SMs | Tensor | HBM BW | HBM | NVLink | PCIe | BW sat | MFU pre/dec | Sat tok/SM | Graph launch | Layer launch |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, s := range gpus {
		fmt.Fprintf(&b, "| %s | %d | %s | %s | %d GiB | %s | %s | %.2f | %.2f / %.2f | %.2f | %g µs | %g µs |\n",
			s.Name, s.SMs, rate(s.TensorFLOPS, "FLOP/s"), rate(s.HBMBandwidth, "B/s"),
			s.HBMCapacity>>30, rate(s.NVLinkBandwidth, "B/s"), rate(s.PCIeBandwidth, "B/s"),
			s.BWSaturationFrac, s.MFUPrefill, s.MFUDecode, s.SatTokensPerSM,
			s.GraphLaunch.Seconds()*1e6, s.LayerLaunch.Seconds()*1e6)
	}

	b.WriteString("\nDecode partition menus (SMs per GPU, stepping by the partition\ngranularity; the complement runs prefill):\n\n")
	for _, s := range gpus {
		sizes := s.PartitionSizes()
		parts := make([]string, len(sizes))
		for i, sm := range sizes {
			parts[i] = fmt.Sprint(sm)
		}
		fmt.Fprintf(&b, "- **%s**: %s (+ whole device at %d)\n",
			s.Name, strings.Join(parts, ", "), s.SMs)
	}

	b.WriteString(`
## Models (` + "`internal/model.Catalog`" + `)

`)
	b.WriteString("| Arch | Layers | Hidden | Heads (KV) | Head dim | FFN | Experts (active) | Vocab | Params | Weights | KV bytes/token |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, a := range archs {
		ffn := fmt.Sprint(a.FFN)
		experts := "—"
		if a.MoE() {
			ffn = fmt.Sprintf("%d/expert", a.ExpertFFN)
			experts = fmt.Sprintf("%d (%d)", a.Experts, a.ActiveExperts)
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d (%d) | %d | %s | %s | %d | %.1fB | %.0f GiB | %.0f KiB |\n",
			a.Name, a.Layers, a.Hidden, a.Heads, a.KVHeads, a.HeadDim, ffn, experts,
			a.Vocab, a.Params()/1e9, a.WeightBytes()/(1<<30), a.KVBytesPerToken()/(1<<10))
	}

	b.WriteString(`
## Roofline cross table — any model on any GPU

Analytical solo step times from ` + "`internal/roofline`" + `, one GPU (TP=1), the
full device: decode is one iteration of a 32-request batch at 4096 tokens
of context each; prefill is a full layer-pipelined phase over one
4096-token prompt. Latency only — weight/KV capacity feasibility is not
implied (the big models need a TP group in practice).

`)
	b.WriteString("| decode / prefill |")
	for _, s := range gpus {
		fmt.Fprintf(&b, " %s |", s.Name)
	}
	b.WriteString("\n|---|")
	for range gpus {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, a := range archs {
		fmt.Fprintf(&b, "| %s |", a.Name)
		for _, s := range gpus {
			m := roofline.New(s, 1, a)
			dec := m.DecodeSolo(32*4096, 32, s.SMs).Seconds() * 1e3
			pre := m.PrefillPhase([]model.Seq{{New: 4096}}, s.SMs).Seconds() * 1e3
			fmt.Fprintf(&b, " %.1f / %.0f ms |", dec, pre)
		}
		b.WriteString("\n")
	}

	b.WriteString(`
## Adding a new GPU or model

A new GPU is one datasheet away:

1. Add a constructor in ` + "`internal/gpu/spec.go`" + ` filling every ` + "`Spec`" + ` field
   (peak dense bf16 FLOP/s, HBM bandwidth/capacity, NVLink/PCIe rates,
   and the partition fields — granularity 16 and a 16-SM minimum on
   Hopper-class and newer parts). The MFU, saturation and launch terms
   are the only judgement calls; start from the closest existing
   generation and see [roofline.md](roofline.md) for what each one does.
2. List it in ` + "`gpu.Catalog()`" + ` and add a ` + "`SpecByName`" + ` case (that name is
   what ` + "`Deployment.Hardware`" + `, ` + "`ReplicaSpec.Hardware`" + ` and muxcluster's
   ` + "`-hw`" + ` flag accept).
3. Regenerate this file (command at the top). TestHardwareDocUpToDate
   fails until you do.

A new model is the same shape: a constructor in
` + "`internal/model/arch.go`" + ` (set the MoE fields only for MoE parts), a
` + "`model.Catalog()`" + ` entry, a ` + "`ByName`" + ` case, and a regenerate.

Under ` + "`muxwise.WithCostModel(\"roofline\")`" + ` the new pair serves
immediately — no profiling pass. The default fitted estimator will also
run it (it profiles on first use against the simulated device), but its
regression planes have only been validated on A100/H100; the roofline
model is the supported path for hardware the fitted planes never saw.
`)
	return b.String()
}

// rate formats a bytes/s or FLOP/s figure in engineering units.
func rate(v float64, unit string) string {
	switch {
	case v >= 1e15:
		return fmt.Sprintf("%g P%s", v/1e15, unit)
	case v >= 1e12:
		return fmt.Sprintf("%g T%s", v/1e12, unit)
	case v >= 1e9:
		return fmt.Sprintf("%g G%s", v/1e9, unit)
	default:
		return fmt.Sprintf("%g %s", v, unit)
	}
}
