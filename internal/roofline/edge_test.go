package roofline_test

import (
	"math"
	"testing"

	"muxwise/internal/estimator"
	"muxwise/internal/gpu"
	"muxwise/internal/model"
	"muxwise/internal/roofline"
	"muxwise/internal/sim"
)

// TestMoEArch: the MoE byte/FLOP accounting (router + active experts,
// batch-dependent expert coverage) must flow through the roofline exactly
// as it does through the simulated device — Qwen-235B is the catalog's
// only MoE entry and the shape most likely to break a closed form.
func TestMoEArch(t *testing.T) {
	spec := gpu.H200()
	arch := model.Qwen235B()
	for _, tp := range []int{1, 8} {
		m := roofline.New(spec, tp, arch)
		for _, bs := range []int{1, 32, 256} {
			got := m.DecodeSolo(bs*4096, bs, spec.SMs).Seconds()
			want := estimator.MeasureDecodeSolo(spec, tp, arch, spec.SMs, bs, 4096)
			if e := relErr(got, want); e > simBand {
				t.Errorf("tp=%d bs=%d: MoE decode roofline %.6gs vs simulator %.6gs (rel %.2e)",
					tp, bs, got, want, e)
			}
		}
		seqs := []model.Seq{{New: 4096}}
		got := m.PrefillPhase(seqs, spec.SMs).Seconds()
		want := estimator.MeasurePrefillSolo(spec, tp, arch, spec.SMs, seqs)
		if e := relErr(got, want); e > simBand {
			t.Errorf("tp=%d: MoE prefill roofline %.6gs vs simulator %.6gs (rel %.2e)", tp, got, want, e)
		}
	}
	// A tiny decode batch streams only its activated experts; a huge one
	// covers every expert. The roofline must preserve that gap.
	m := roofline.New(spec, 1, arch)
	smallPerTok := m.DecodeSolo(4096, 1, spec.SMs).Seconds()
	bigPerTok := m.DecodeSolo(512*4096, 512, spec.SMs).Seconds() / 512
	if bigPerTok >= smallPerTok {
		t.Errorf("MoE batching gains lost: %.6gs/token at bs=512 vs %.6gs/token at bs=1",
			bigPerTok, smallPerTok)
	}
}

// TestTPCollectiveBytes: tensor parallelism adds ring all-reduce traffic
// that the interconnect stream must carry — and a TP group must never be
// predicted faster than the interconnect allows.
func TestTPCollectiveBytes(t *testing.T) {
	spec := gpu.A100()
	arch := model.Llama70B()
	for _, tp := range []int{2, 4, 8} {
		c := arch.DecodeIterTotals(64*8192, 64, tp)
		if c.CommBytes <= 0 {
			t.Fatalf("tp=%d: no collective bytes in the decode iteration", tp)
		}
		m := roofline.New(spec, tp, arch)
		floor := spec.GraphLaunch + sim.FromSeconds(c.CommBytes/spec.NVLinkBandwidth)
		if got := m.DecodeSolo(64*8192, 64, spec.SMs); got < floor {
			t.Errorf("tp=%d: DecodeSolo %v below the interconnect floor %v", tp, got, floor)
		}
		got := m.DecodeSolo(64*8192, 64, spec.SMs).Seconds()
		want := estimator.MeasureDecodeSolo(spec, tp, arch, spec.SMs, 64, 8192)
		if e := relErr(got, want); e > simBand {
			t.Errorf("tp=%d: decode roofline %.6gs vs simulator %.6gs (rel %.2e)", tp, got, want, e)
		}
	}
	if c := arch.DecodeIterTotals(8192, 1, 1); c.CommBytes != 0 {
		t.Errorf("tp=1 decode carries %g collective bytes, want 0", c.CommBytes)
	}
}

// TestDegeneratePartitions: partition sizes outside [1, SMs] — including
// the 0- and 1-SM corners a scheduler bug could request — must clamp, stay
// finite, and preserve "fewer SMs is never faster".
func TestDegeneratePartitions(t *testing.T) {
	spec := gpu.A100()
	arch := model.Llama8B()
	m := roofline.New(spec, 1, arch)
	seqs := []model.Seq{{New: 2048}}
	for _, sms := range []int{-5, 0, 1, spec.SMs, spec.SMs + 100} {
		d := m.DecodeSolo(8*2048, 8, sms)
		p := m.PrefillPhase(seqs, sms)
		for _, v := range []sim.Time{d, p} {
			if v <= 0 || math.IsInf(v.Seconds(), 0) || math.IsNaN(v.Seconds()) {
				t.Fatalf("sms=%d: degenerate time %v", sms, v)
			}
		}
	}
	if m.DecodeSolo(8*2048, 8, 0) != m.DecodeSolo(8*2048, 8, 1) {
		t.Error("sms=0 does not clamp to the 1-SM partition")
	}
	if m.DecodeSolo(8*2048, 8, spec.SMs+100) != m.DecodeSolo(8*2048, 8, spec.SMs) {
		t.Error("sms>SMs does not clamp to the full device")
	}
	one := m.PrefillPhase(seqs, 1)
	full := m.PrefillPhase(seqs, spec.SMs)
	if one < full {
		t.Errorf("1-SM prefill %v faster than full-device %v", one, full)
	}
	// Degenerate batch shapes: empty work must not go negative or NaN.
	if got := m.DecodeSolo(0, 0, spec.SMs); got != spec.GraphLaunch {
		t.Errorf("empty decode batch = %v, want bare graph launch %v", got, spec.GraphLaunch)
	}
	if got := m.PrefillPhase(nil, spec.SMs); got < 0 {
		t.Errorf("empty prefill phase = %v", got)
	}
	if got := (&roofline.Model{Spec: spec}).PrefillPhase(seqs, spec.SMs); got != 0 {
		t.Errorf("zero-layer arch prefill = %v, want 0", got)
	}
}

// TestMonotoneInTokens is the property check: predicted time is
// non-decreasing in batch tokens, for decode batch size, decode context,
// prefill chunk size and fused chunk size alike.
func TestMonotoneInTokens(t *testing.T) {
	for _, spec := range []gpu.Spec{gpu.A100(), gpu.B200()} {
		for _, arch := range []model.Arch{model.Llama8B(), model.Qwen235B()} {
			m := roofline.New(spec, 1, arch)
			for _, sms := range []int{m.Configs()[0], spec.SMs} {
				prev := sim.Time(0)
				for bs := 1; bs <= 512; bs *= 2 {
					cur := m.DecodeSolo(bs*2048, bs, sms)
					if cur < prev {
						t.Errorf("%s/%s sms=%d: decode time shrank at bs=%d (%v < %v)",
							spec.Name, arch.Name, sms, bs, cur, prev)
					}
					prev = cur
				}
				prev = 0
				for ctx := 256; ctx <= 262144; ctx *= 4 {
					cur := m.DecodeSolo(ctx*16, 16, sms)
					if cur < prev {
						t.Errorf("%s/%s sms=%d: decode time shrank at ctx=%d", spec.Name, arch.Name, sms, ctx)
					}
					prev = cur
				}
				prev = 0
				for n := 64; n <= 65536; n *= 4 {
					cur := m.PrefillPhase([]model.Seq{{New: n}}, sms)
					if cur < prev {
						t.Errorf("%s/%s sms=%d: prefill time shrank at n=%d", spec.Name, arch.Name, sms, n)
					}
					prev = cur
				}
				prev = 0
				for n := 64; n <= 16384; n *= 4 {
					cur := m.FusedStep(model.Seq{New: n}, []int{1024, 2048}, sms)
					if cur < prev {
						t.Errorf("%s/%s sms=%d: fused time shrank at chunk=%d", spec.Name, arch.Name, sms, n)
					}
					prev = cur
				}
			}
		}
	}
}

// TestNeverBelowComputeBound: no prediction may beat the ideal tensor-core
// bound FLOPs/(TensorFLOPS·TP) — MFU ≤ 1 and smFraction ≤ 1 by
// construction, so breaking this floor means the rate math is wrong.
func TestNeverBelowComputeBound(t *testing.T) {
	for _, spec := range []gpu.Spec{gpu.A100(), gpu.H100(), gpu.H200(), gpu.B200()} {
		for _, arch := range []model.Arch{model.Llama8B(), model.Llama70B(), model.Qwen235B()} {
			for _, tp := range []int{1, 4} {
				m := roofline.New(spec, tp, arch)
				peak := spec.TensorFLOPS * float64(tp)
				for _, sms := range []int{1, m.Configs()[0], spec.SMs} {
					for _, bs := range []int{1, 64} {
						c := arch.DecodeIterTotals(bs*4096, bs, tp)
						got := m.DecodeSolo(bs*4096, bs, sms)
						if floor := spec.GraphLaunch + sim.FromSeconds(c.FLOPs/peak); got < floor {
							t.Errorf("%s/%s tp=%d sms=%d bs=%d: decode %v below compute floor %v",
								spec.Name, arch.Name, tp, sms, bs, got, floor)
						}
					}
					seqs := []model.Seq{{New: 8192}}
					layer := arch.PrefillLayer(seqs, tp, true)
					got := m.PrefillPhase(seqs, sms)
					floor := sim.FromSeconds(float64(arch.Layers) * layer.FLOPs / peak)
					if got < floor {
						t.Errorf("%s/%s tp=%d sms=%d: prefill %v below compute floor %v",
							spec.Name, arch.Name, tp, sms, got, floor)
					}
				}
			}
		}
	}
}

// TestObserveSlowdownIsInert: the analytic contention model has no runtime
// state; feeding it observations must not change any prediction.
func TestObserveSlowdownIsInert(t *testing.T) {
	spec := gpu.A100()
	m := roofline.New(spec, 1, model.Llama8B())
	before := m.DecodeWorst(64*2048, 64, 52, 9000, 1000)
	m.ObserveSlowdown(9000, 1000, 64, 64*2048, 52, 3.7)
	if after := m.DecodeWorst(64*2048, 64, 52, 9000, 1000); after != before {
		t.Fatalf("ObserveSlowdown mutated the model: %v -> %v", before, after)
	}
}
