package roofline_test

import (
	"math"
	"testing"

	"muxwise/internal/estimator"
	"muxwise/internal/gpu"
	"muxwise/internal/model"
	"muxwise/internal/roofline"
)

// relErr returns |got−want|/want (want > 0).
func relErr(got, want float64) float64 {
	return math.Abs(got-want) / want
}

// The roofline closed forms are derived from the simulated device's fluid
// model, so against a solo run on a fresh device they should be exact up
// to event-time quantization. This band is the tentpole's ground-truth
// check: the analytical model reproduces the simulator it replaces the
// profiler of.
const simBand = 1e-3

// TestDecodeSoloMatchesSimulator compares the analytical decode iteration
// time against a measured solo run on the simulated device, across
// hardware, tensor parallelism, partition sizes, batch sizes and context
// lengths — the same axes the fitted estimator profiles.
func TestDecodeSoloMatchesSimulator(t *testing.T) {
	specs := []gpu.Spec{gpu.A100(), gpu.H100(), gpu.B200()}
	arch := model.Llama8B()
	for _, spec := range specs {
		for _, tp := range []int{1, 2} {
			m := roofline.New(spec, tp, arch)
			cfgs := m.Configs()
			for _, sms := range []int{cfgs[0], spec.SMs} {
				for _, bs := range []int{1, 12, 160} {
					for _, ctx := range []int{1024, 65536} {
						got := m.DecodeSolo(bs*ctx, bs, sms).Seconds()
						want := estimator.MeasureDecodeSolo(spec, tp, arch, sms, bs, ctx)
						if e := relErr(got, want); e > simBand {
							t.Errorf("%s tp=%d sms=%d bs=%d ctx=%d: roofline %.6gs vs simulator %.6gs (rel %.2e)",
								spec.Name, tp, sms, bs, ctx, got, want, e)
						}
					}
				}
			}
		}
	}
}

// TestPrefillPhaseMatchesSimulator compares the analytical layer-pipeline
// prefill time against a measured solo phase on the simulated device.
func TestPrefillPhaseMatchesSimulator(t *testing.T) {
	specs := []gpu.Spec{gpu.A100(), gpu.H100(), gpu.B200()}
	arch := model.Llama8B()
	for _, spec := range specs {
		for _, tp := range []int{1, 2} {
			m := roofline.New(spec, tp, arch)
			cfgs := m.Configs()
			for _, sms := range []int{spec.SMs - cfgs[0], spec.SMs} {
				for _, n := range []int{384, 3000, 12000} {
					for _, r := range []int{0, 60000} {
						seqs := []model.Seq{{New: n, Reused: r}}
						got := m.PrefillPhase(seqs, sms).Seconds()
						want := estimator.MeasurePrefillSolo(spec, tp, arch, sms, seqs)
						if e := relErr(got, want); e > simBand {
							t.Errorf("%s tp=%d sms=%d n=%d r=%d: roofline %.6gs vs simulator %.6gs (rel %.2e)",
								spec.Name, tp, sms, n, r, got, want, e)
						}
					}
				}
			}
		}
	}
}

// TestFusedStepMatchesDirectCost pins the chunked-prefill fusion: one
// kernel carrying both phases' work, timed by the max of its streams.
func TestFusedStepMatchesDirectCost(t *testing.T) {
	spec := gpu.A100()
	arch := model.Llama8B()
	m := roofline.New(spec, 1, arch)
	chunk := model.Seq{New: 512, Prior: 1024, Reused: 2048}
	ctxs := []int{1000, 4000, 9000}
	c := arch.FusedChunkIter(chunk, ctxs, 1)
	want := spec.GraphLaunch + m.KernelTime(c, gpu.Prefill, spec.SMs)
	if got := m.FusedStep(chunk, ctxs, spec.SMs); got != want {
		t.Fatalf("FusedStep %v != GraphLaunch + KernelTime %v", got, want)
	}
	// A pure-decode "chunk" (New=0) must time with the flat decode MFU.
	cd := arch.FusedChunkIter(model.Seq{}, ctxs, 1)
	wantD := spec.GraphLaunch + m.KernelTime(cd, gpu.Decode, spec.SMs)
	if got := m.FusedStep(model.Seq{}, ctxs, spec.SMs); got != wantD {
		t.Fatalf("decode-only FusedStep %v != %v", got, wantD)
	}
}

// fittedBand is the documented tolerance for roofline-vs-fitted agreement
// on the profiled A100/H100 grid (docs/roofline.md "Validation"). The
// fitted planes are a max-of-two-planes regression over simulator-measured
// samples; the roofline matches those samples near-exactly, so this band
// is effectively the fitted model's own fit residual.
const fittedBand = 0.15

// TestFittedAgreementDecode sweeps the fitted estimator's validation grid
// on the two profiled GPUs and checks the roofline's decode predictions
// stay inside the documented band.
func TestFittedAgreementDecode(t *testing.T) {
	for _, spec := range []gpu.Spec{gpu.A100(), gpu.H100()} {
		arch := model.Llama8B()
		fitted := estimator.New(spec, 1, arch)
		m := roofline.New(spec, 1, arch)
		worst := 0.0
		for _, sms := range []int{m.Configs()[0], spec.SMs} {
			for _, bs := range []int{3, 12, 48, 160} {
				for _, ctx := range []int{1024, 12288, 65536} {
					got := m.DecodeSolo(bs*ctx, bs, sms).Seconds()
					want := fitted.DecodeSolo(bs*ctx, bs, sms).Seconds()
					e := relErr(got, want)
					if e > worst {
						worst = e
					}
					if e > fittedBand {
						t.Errorf("%s sms=%d bs=%d ctx=%d: roofline %.6gs vs fitted %.6gs (rel %.1f%%)",
							spec.Name, sms, bs, ctx, got, want, e*100)
					}
				}
			}
		}
		t.Logf("%s decode: worst roofline-vs-fitted deviation %.1f%%", spec.Name, worst*100)
	}
}

// TestFittedAgreementPrefill is the prefill half of the validation grid.
func TestFittedAgreementPrefill(t *testing.T) {
	for _, spec := range []gpu.Spec{gpu.A100(), gpu.H100()} {
		arch := model.Llama8B()
		fitted := estimator.New(spec, 1, arch)
		m := roofline.New(spec, 1, arch)
		worst := 0.0
		for _, sms := range []int{spec.SMs - m.Configs()[0], spec.SMs} {
			for _, n := range []int{384, 3000, 12000} {
				for _, r := range []int{0, 5000, 60000} {
					seqs := []model.Seq{{New: n, Reused: r}}
					got := m.PrefillPhase(seqs, sms).Seconds()
					want := fitted.PrefillPhase(seqs, sms).Seconds()
					e := relErr(got, want)
					if e > worst {
						worst = e
					}
					if e > fittedBand {
						t.Errorf("%s sms=%d n=%d r=%d: roofline %.6gs vs fitted %.6gs (rel %.1f%%)",
							spec.Name, sms, n, r, got, want, e*100)
					}
				}
			}
		}
		t.Logf("%s prefill: worst roofline-vs-fitted deviation %.1f%%", spec.Name, worst*100)
	}
}

// TestDecodeWorstBounds: contention can only slow decode down, and the
// analytic waterfill can at most halve the decode partition's bandwidth,
// which bounds the slowdown by the guard's own physics (×2 on the memory
// term plus one extra layer launch).
func TestDecodeWorstBounds(t *testing.T) {
	spec := gpu.A100()
	m := roofline.New(spec, 1, model.Llama8B())
	for _, sms := range m.Configs() {
		for _, bs := range []int{4, 64} {
			solo := m.DecodeSolo(bs*4096, bs, sms)
			worst := m.DecodeWorst(bs*4096, bs, sms, 8000, 0)
			if worst < solo {
				t.Errorf("sms=%d bs=%d: DecodeWorst %v below DecodeSolo %v", sms, bs, worst, solo)
			}
			ceiling := 2*(solo-spec.GraphLaunch) + spec.GraphLaunch + spec.LayerLaunch
			if worst > ceiling {
				t.Errorf("sms=%d bs=%d: DecodeWorst %v above the 2× memory ceiling %v", sms, bs, worst, ceiling)
			}
		}
	}
	// With no prefill running (or the full device held by decode) the
	// worst case collapses to solo.
	if got, want := m.DecodeWorst(4096, 4, spec.SMs, 8000, 0), m.DecodeSolo(4096, 4, spec.SMs); got != want {
		t.Errorf("full-device DecodeWorst %v != DecodeSolo %v", got, want)
	}
	if got, want := m.DecodeWorst(4096, 4, 36, 0, 0), m.DecodeSolo(4096, 4, 36); got != want {
		t.Errorf("idle-prefill DecodeWorst %v != DecodeSolo %v", got, want)
	}
}

// TestRegimeOf pins the regime labels on canonical shapes: small-batch
// decode streams weights (memory-bound), a large prefill chunk on a full
// device is compute-bound, and a synthetic all-comm kernel labels Comm.
func TestRegimeOf(t *testing.T) {
	spec := gpu.A100()
	arch := model.Llama8B()
	m := roofline.New(spec, 1, arch)
	dec := arch.DecodeIterTotals(4*2048, 4, 1)
	if r := m.RegimeOf(dec, gpu.Decode, spec.SMs); r != roofline.Memory {
		t.Errorf("small-batch decode regime = %v, want memory", r)
	}
	pre := arch.PrefillLayer([]model.Seq{{New: 8192}}, 1, true)
	if r := m.RegimeOf(pre, gpu.Prefill, spec.SMs); r != roofline.Compute {
		t.Errorf("8k prefill chunk regime = %v, want compute", r)
	}
	comm := model.Cost{FLOPs: 1, Bytes: 1, CommBytes: 1e12, Tokens: 1}
	if r := m.RegimeOf(comm, gpu.Decode, spec.SMs); r != roofline.Comm {
		t.Errorf("all-comm kernel regime = %v, want comm", r)
	}
	for i, want := range map[roofline.Regime]string{
		roofline.Compute: "compute", roofline.Memory: "memory", roofline.Comm: "comm",
	} {
		if got := i.String(); got != want {
			t.Errorf("Regime(%d).String() = %q, want %q", int(i), got, want)
		}
	}
}

// TestConfigsMirrorsEstimator: both cost models must offer the engine the
// same partition menu, or a cost-model switch would change scheduling
// decisions for reasons other than predicted time.
func TestConfigsMirrorsEstimator(t *testing.T) {
	spec := gpu.H100()
	arch := model.Llama8B()
	rl := roofline.New(spec, 1, arch).Configs()
	fit := estimator.New(spec, 1, arch).Configs()
	if len(rl) != len(fit) {
		t.Fatalf("config menus differ: roofline %v vs fitted %v", rl, fit)
	}
	for i := range rl {
		if rl[i] != fit[i] {
			t.Fatalf("config menus differ: roofline %v vs fitted %v", rl, fit)
		}
	}
}
