// Package roofline implements an analytical step-time estimator for any
// model.Arch × gpu.Spec pair: no offline profiling, just the architecture's
// exact FLOP/byte counts (internal/model) and the GPU's datasheet rates
// (gpu.Spec). Each kernel's time is the classic roofline maximum
//
//	max( FLOPs / (TensorFLOPS·TP·MFU·smFraction),
//	     bytes / effectiveBandwidth,
//	     commBytes / NVLinkBandwidth )
//
// with the same partition semantics the simulated device applies: compute
// scales with the SM fraction, bandwidth is capped at
// smFraction/BWSaturationFrac of peak (a kernel on few SMs cannot absorb
// full HBM bandwidth), and prefill efficiency follows the SatTokensPerSM
// saturation curve so small chunks stay launch/efficiency-bound and the
// paper's knees survive. A full prefill phase is the host-launch pipeline
// of per-layer kernels: Layers·max(exec, LayerLaunch) + min(exec,
// LayerLaunch). Mixed prefill/decode (chunked, SARATHI-style) iterations
// combine both phases' work in a single kernel whose streams again drain
// by max — see FusedStep.
//
// The regime-labelling difference from internal/estimator: the fitted
// estimator uses the roofline only to *label* each profiled sample as
// memory- or compute-bound, then fits a max-of-two-planes regression per
// regime and answers queries from the planes; the roofline model *is* the
// bound — it computes both sides directly from first principles and
// returns the max, so it needs no profiling grid and extrapolates to any
// (model, GPU) pair, at the price of trusting the datasheet MFU terms
// instead of measured latencies. Contention is analytic too: DecodeWorst
// water-fills HBM bandwidth between the decode partition and the
// complementary prefill partition instead of consulting a profiled
// slowdown grid (estimator.Guard), so ObserveSlowdown is a no-op here.
package roofline

import (
	"math"

	"muxwise/internal/gpu"
	"muxwise/internal/model"
	"muxwise/internal/sim"
)

// Model is the analytical roofline estimator for one (LLM, machine) pair.
// It is stateless and read-only after construction: the same instance may
// be shared across engines and goroutines.
type Model struct {
	Spec gpu.Spec
	TP   int
	Arch model.Arch
}

// New returns the roofline model for the given deployment. Unlike
// estimator.New there is no offline profiling to run or cache: the model
// is ready immediately for any spec and architecture.
func New(spec gpu.Spec, tp int, arch model.Arch) *Model {
	if tp < 1 {
		tp = 1
	}
	return &Model{Spec: spec, TP: tp, Arch: arch}
}

// Configs returns the candidate decode partition sizes plus the full
// device, mirroring estimator.Configs.
func (m *Model) Configs() []int {
	return append(m.Spec.PartitionSizes(), m.Spec.SMs)
}

// clampSMs keeps a partition size inside [1, SMs]: a degenerate 0-SM
// request is treated as the smallest schedulable partition rather than a
// division by zero.
func (m *Model) clampSMs(sms int) int {
	if sms < 1 {
		return 1
	}
	if sms > m.Spec.SMs {
		return m.Spec.SMs
	}
	return sms
}

// rates returns the solo compute (FLOP/s) and memory (bytes/s) service
// rates of a kernel of the given kind and new-token count on sms SMs per
// GPU — the exact rates the simulated device grants a lone kernel.
func (m *Model) rates(kind gpu.Kind, tokens, sms int) (crate, brate float64) {
	frac := float64(sms) / float64(m.Spec.SMs)
	mfu := m.Spec.MFUDecode
	if kind == gpu.Prefill {
		smsTotal := frac * float64(m.Spec.SMs) * float64(m.TP)
		tok := math.Max(1, float64(tokens))
		mfu = m.Spec.MFUPrefill * tok / (tok + m.Spec.SatTokensPerSM*smsTotal)
	}
	crate = frac * m.Spec.TensorFLOPS * float64(m.TP) * mfu
	bw := m.Spec.HBMBandwidth * float64(m.TP)
	brate = math.Min(bw, frac/m.Spec.BWSaturationFrac*bw)
	return crate, brate
}

// execSeconds is the roofline max over the three sub-streams (compute,
// HBM, interconnect) for one kernel running solo on sms SMs.
func (m *Model) execSeconds(c model.Cost, kind gpu.Kind, sms int) float64 {
	crate, brate := m.rates(kind, c.Tokens, m.clampSMs(sms))
	t := 0.0
	if c.FLOPs > 0 {
		t = c.FLOPs / crate
	}
	if c.Bytes > 0 {
		if bt := c.Bytes / brate; bt > t {
			t = bt
		}
	}
	if c.CommBytes > 0 {
		if ct := c.CommBytes / m.Spec.NVLinkBandwidth; ct > t {
			t = ct
		}
	}
	return t
}

// KernelTime returns the solo execution time of one kernel of the given
// cost and kind on sms SMs per GPU, excluding host launch latency.
func (m *Model) KernelTime(c model.Cost, kind gpu.Kind, sms int) sim.Time {
	return sim.FromSeconds(m.execSeconds(c, kind, sms))
}

// DecodeSolo predicts the solo-run latency of one decode iteration with
// the given total attended context, batch size and decode partition size,
// including the CUDA-graph launch.
func (m *Model) DecodeSolo(totalCtx, bs, sms int) sim.Time {
	c := m.Arch.DecodeIterTotals(totalCtx, bs, m.TP)
	return m.Spec.GraphLaunch + sim.FromSeconds(m.execSeconds(c, gpu.Decode, sms))
}

// PrefillPhase predicts the solo-run latency of a full layer-wise prefill
// phase for the batch on the given prefill partition size. Per-layer
// kernels pipeline against the serialized host launcher: with per-layer
// execution time E and launch latency L, layer i finishes at
// max((i+1)·L, finish(i−1)) + E, which telescopes to
// Layers·max(E, L) + min(E, L).
func (m *Model) PrefillPhase(seqs []model.Seq, sms int) sim.Time {
	if m.Arch.Layers <= 0 {
		return 0
	}
	layer := m.Arch.PrefillLayer(seqs, m.TP, true)
	e := m.execSeconds(layer, gpu.Prefill, sms)
	l := m.Spec.LayerLaunch.Seconds()
	n := float64(m.Arch.Layers)
	return sim.FromSeconds(n*math.Max(e, l) + math.Min(e, l))
}

// DecodeWorst returns the worst-case decode latency under spatial
// multiplexing with a prefill batch of the given shape. Contention is
// analytic, not profiled: the decode partition's bandwidth demand
// water-fills the group's HBM bandwidth against the complementary prefill
// partition's demand (max-min fair, each capped by its own SM-limited
// absorption), and the decode launch budgets one worst-case wait behind an
// in-flight prefill layer launch on the serialized host thread.
func (m *Model) DecodeWorst(totalCtx, bs, sms, prefillNew, prefillReused int) sim.Time {
	sms = m.clampSMs(sms)
	c := m.Arch.DecodeIterTotals(totalCtx, bs, m.TP)
	crate, brate := m.rates(gpu.Decode, c.Tokens, sms)
	launch := m.Spec.GraphLaunch
	preSM := m.Spec.SMs - sms
	if preSM > 0 && prefillNew+prefillReused > 0 {
		launch += m.Spec.LayerLaunch
		bw := m.Spec.HBMBandwidth * float64(m.TP)
		fracP := float64(preSM) / float64(m.Spec.SMs)
		capP := math.Min(bw, fracP/m.Spec.BWSaturationFrac*bw)
		if brate+capP > bw {
			// Oversubscribed HBM: max-min fair shares, each side still
			// capped by its own absorption limit.
			fair := bw / 2
			switch {
			case capP <= fair:
				brate = bw - capP
			case brate <= fair:
				// Decode's own cap is below the fair share: no slowdown.
			default:
				brate = fair
			}
		}
	}
	t := 0.0
	if c.FLOPs > 0 {
		t = c.FLOPs / crate
	}
	if c.Bytes > 0 {
		if bt := c.Bytes / brate; bt > t {
			t = bt
		}
	}
	if c.CommBytes > 0 {
		if ct := c.CommBytes / m.Spec.NVLinkBandwidth; ct > t {
			t = ct
		}
	}
	return launch + sim.FromSeconds(t)
}

// FusedStep predicts one chunked-prefill iteration that fuses a prefill
// chunk with a decode batch (SARATHI-style): both phases' FLOPs and bytes
// land in a single kernel whose compute, memory and interconnect streams
// drain concurrently, so the mixed batch costs the max of its rooflines
// rather than their sum — the chunked-prefill overlap the paper measures.
func (m *Model) FusedStep(chunk model.Seq, decodeCtxs []int, sms int) sim.Time {
	c := m.Arch.FusedChunkIter(chunk, decodeCtxs, m.TP)
	kind := gpu.Decode
	if chunk.New > 0 {
		kind = gpu.Prefill
	}
	return m.Spec.GraphLaunch + sim.FromSeconds(m.execSeconds(c, kind, sms))
}

// ObserveSlowdown is a no-op: the roofline's contention model is analytic
// (see DecodeWorst), so there is no guard grid to refine at runtime.
func (m *Model) ObserveSlowdown(prefillNew, prefillReused, bs, totalCtx, sms int, slowdown float64) {
}

// Regime identifies which roofline term bounds a kernel.
type Regime int

const (
	// Compute: the tensor-core stream drains last.
	Compute Regime = iota
	// Memory: the HBM stream drains last.
	Memory
	// Comm: the TP-collective interconnect stream drains last.
	Comm
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case Compute:
		return "compute"
	case Memory:
		return "memory"
	default:
		return "comm"
	}
}

// RegimeOf reports which sub-stream bounds a kernel of the given cost and
// kind on sms SMs — the label the fitted estimator derives to pick a
// regression plane, computed here as the model's direct output.
func (m *Model) RegimeOf(c model.Cost, kind gpu.Kind, sms int) Regime {
	crate, brate := m.rates(kind, c.Tokens, m.clampSMs(sms))
	ct := c.FLOPs / crate
	mt := c.Bytes / brate
	xt := 0.0
	if c.CommBytes > 0 {
		xt = c.CommBytes / m.Spec.NVLinkBandwidth
	}
	if mt >= ct && mt >= xt {
		return Memory
	}
	if ct >= xt {
		return Compute
	}
	return Comm
}
