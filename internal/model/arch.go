// Package model describes transformer architectures and their exact
// resource costs for the prefill and decode phases.
//
// The cost functions realise Table 2 of the paper: prefill attention is
// O(n·d² + L·n·d) with KV reuse, the FFN is O(n·d²), and decode is
// O(d² + (r+1)·d) per request per layer — except here the constants are
// carried exactly (QKV/O projections, causal attention, SwiGLU FFN, GQA
// KV sizing, MoE activated experts) so that the simulator's rooflines
// reproduce the paper's saturation knees and phase asymmetry.
package model

import "fmt"

// Arch describes one LLM architecture. Dense models leave the MoE fields
// zero; MoE models set Experts/ActiveExperts/ExpertFFN and leave FFN zero.
type Arch struct {
	Name   string
	Layers int
	Hidden int

	Heads   int // query heads
	KVHeads int // key/value heads (GQA)
	HeadDim int

	FFN   int // dense FFN intermediate size (SwiGLU)
	Vocab int

	// MoE configuration (Qwen3-style).
	Experts       int
	ActiveExperts int
	ExpertFFN     int

	// BytesPerParam is the serving precision (2 for bf16/fp16).
	BytesPerParam int
}

// MoE reports whether the architecture is a mixture-of-experts model.
func (a Arch) MoE() bool { return a.Experts > 0 }

// qkvoParams returns attention projection parameters per layer.
func (a Arch) qkvoParams() float64 {
	h := float64(a.Hidden)
	q := h * float64(a.Heads*a.HeadDim)
	kv := 2 * h * float64(a.KVHeads*a.HeadDim)
	o := float64(a.Heads*a.HeadDim) * h
	return q + kv + o
}

// ffnParamsActive returns FFN parameters touched per token per layer
// (all of a dense FFN; only active experts for MoE).
func (a Arch) ffnParamsActive() float64 {
	h := float64(a.Hidden)
	if a.MoE() {
		router := h * float64(a.Experts)
		return router + 3*h*float64(a.ExpertFFN)*float64(a.ActiveExperts)
	}
	return 3 * h * float64(a.FFN)
}

// ffnParamsTotal returns all FFN parameters stored per layer.
func (a Arch) ffnParamsTotal() float64 {
	h := float64(a.Hidden)
	if a.MoE() {
		router := h * float64(a.Experts)
		return router + 3*h*float64(a.ExpertFFN)*float64(a.Experts)
	}
	return 3 * h * float64(a.FFN)
}

// Params returns the total parameter count.
func (a Arch) Params() float64 {
	perLayer := a.qkvoParams() + a.ffnParamsTotal()
	embed := 2 * float64(a.Vocab) * float64(a.Hidden) // embedding + LM head
	return float64(a.Layers)*perLayer + embed
}

// ActiveParams returns parameters touched per token (MoE-aware).
func (a Arch) ActiveParams() float64 {
	perLayer := a.qkvoParams() + a.ffnParamsActive()
	embed := 2 * float64(a.Vocab) * float64(a.Hidden)
	return float64(a.Layers)*perLayer + embed
}

// WeightBytes returns total model weight bytes.
func (a Arch) WeightBytes() float64 { return a.Params() * float64(a.BytesPerParam) }

// LayerWeightBytes returns stored weight bytes for one layer.
func (a Arch) LayerWeightBytes() float64 {
	return (a.qkvoParams() + a.ffnParamsTotal()) * float64(a.BytesPerParam)
}

// ActiveLayerWeightBytes returns the weight bytes one token's forward
// pass must stream per layer (active experts only for MoE). For decode,
// a batched iteration streams at least these bytes and at most
// LayerWeightBytes, depending on expert coverage; see decodeWeightBytes.
func (a Arch) ActiveLayerWeightBytes() float64 {
	return (a.qkvoParams() + a.ffnParamsActive()) * float64(a.BytesPerParam)
}

// KVBytesPerTokenLayer returns KV cache bytes per token per layer.
func (a Arch) KVBytesPerTokenLayer() float64 {
	return 2 * float64(a.KVHeads*a.HeadDim) * float64(a.BytesPerParam)
}

// KVBytesPerToken returns KV cache bytes per token across all layers.
func (a Arch) KVBytesPerToken() float64 {
	return float64(a.Layers) * a.KVBytesPerTokenLayer()
}

// String implements fmt.Stringer.
func (a Arch) String() string {
	return fmt.Sprintf("%s(%dL, d=%d, %.1fB params)", a.Name, a.Layers, a.Hidden, a.Params()/1e9)
}

// Registry of evaluated models.

// Llama8B returns Llama-3-8B (32 layers, d=4096, GQA 8 KV heads).
func Llama8B() Arch {
	return Arch{
		Name: "Llama-8B", Layers: 32, Hidden: 4096,
		Heads: 32, KVHeads: 8, HeadDim: 128,
		FFN: 14336, Vocab: 128256, BytesPerParam: 2,
	}
}

// Llama70B returns Llama-3-70B (80 layers, d=8192, GQA 8 KV heads).
func Llama70B() Arch {
	return Arch{
		Name: "Llama-70B", Layers: 80, Hidden: 8192,
		Heads: 64, KVHeads: 8, HeadDim: 128,
		FFN: 28672, Vocab: 128256, BytesPerParam: 2,
	}
}

// Qwen235B returns Qwen3-235B-A22B (94 layers MoE, 128 experts, 8 active).
func Qwen235B() Arch {
	return Arch{
		Name: "Qwen3-235B-A22B", Layers: 94, Hidden: 4096,
		Heads: 64, KVHeads: 4, HeadDim: 128,
		Vocab: 151936, BytesPerParam: 2,
		Experts: 128, ActiveExperts: 8, ExpertFFN: 1536,
	}
}

// CodeLlama34B returns CodeLlama-34B-Instruct, the artifact-appendix model.
func CodeLlama34B() Arch {
	return Arch{
		Name: "CodeLlama-34B", Layers: 48, Hidden: 8192,
		Heads: 64, KVHeads: 8, HeadDim: 128,
		FFN: 22016, Vocab: 32016, BytesPerParam: 2,
	}
}

// Catalog returns every registry model in size order. docs/hardware.md is
// generated from this list; adding a preset here (plus a ByName case) is
// the whole recipe for new models under the roofline cost model.
func Catalog() []Arch {
	return []Arch{Llama8B(), CodeLlama34B(), Llama70B(), Qwen235B()}
}

// ByName looks up a registry model.
func ByName(name string) (Arch, bool) {
	switch name {
	case "Llama-8B", "llama-8b", "8b", "llama8b":
		return Llama8B(), true
	case "Llama-70B", "llama-70b", "70b", "llama70b":
		return Llama70B(), true
	case "Qwen3-235B-A22B", "qwen-235b", "qwen235b", "235b":
		return Qwen235B(), true
	case "CodeLlama-34B", "codellama-34b", "34b":
		return CodeLlama34B(), true
	}
	return Arch{}, false
}
