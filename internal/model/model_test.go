package model

import (
	"math"
	"testing"
	"testing/quick"
)

func near(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) < tol
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}

func TestParamCounts(t *testing.T) {
	cases := []struct {
		arch Arch
		want float64 // nominal parameter count
		tol  float64
	}{
		{Llama8B(), 8.0e9, 0.05},
		{Llama70B(), 70.6e9, 0.05},
		{CodeLlama34B(), 33.7e9, 0.06},
		{Qwen235B(), 235e9, 0.06},
	}
	for _, c := range cases {
		if got := c.arch.Params(); !near(got, c.want, c.tol) {
			t.Errorf("%s Params = %.2fB, want ≈%.1fB", c.arch.Name, got/1e9, c.want/1e9)
		}
	}
}

func TestQwenActiveParams(t *testing.T) {
	q := Qwen235B()
	if got := q.ActiveParams(); !near(got, 22e9, 0.15) {
		t.Errorf("Qwen active params = %.2fB, want ≈22B", got/1e9)
	}
	if !q.MoE() {
		t.Error("Qwen should be MoE")
	}
	if Llama8B().MoE() {
		t.Error("Llama-8B should not be MoE")
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// Llama-70B: 80 layers × 2 × 8 heads × 128 dim × 2 bytes = 320 KiB.
	if got := Llama70B().KVBytesPerToken(); got != 80*4096 {
		t.Errorf("Llama-70B KV/token = %.0f, want %d", got, 80*4096)
	}
	// Llama-8B: 32 × 4096 = 128 KiB.
	if got := Llama8B().KVBytesPerToken(); got != 32*4096 {
		t.Errorf("Llama-8B KV/token = %.0f, want %d", got, 32*4096)
	}
	// Qwen: 4 KV heads → 94 × 2048.
	if got := Qwen235B().KVBytesPerToken(); got != 94*2048 {
		t.Errorf("Qwen KV/token = %.0f, want %d", got, 94*2048)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"Llama-8B", "llama-70b", "qwen-235b", "34b"} {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) missing", n)
		}
	}
	if _, ok := ByName("gpt-5"); ok {
		t.Error("ByName(gpt-5) unexpectedly found")
	}
}

// Table 2, prefill: FLOPs grow ~n² for the attention term and ~n·r in
// the cross term.
func TestPrefillScaling(t *testing.T) {
	a := Llama70B()
	base := a.PrefillLayer([]Seq{{New: 1024}}, 8, true)
	dbl := a.PrefillLayer([]Seq{{New: 2048}}, 8, true)
	// Projection-dominated regime: between linear and quadratic.
	if dbl.FLOPs < base.FLOPs*2 || dbl.FLOPs > base.FLOPs*4.2 {
		t.Errorf("prefill FLOPs 2× tokens: %.3g → %.3g, outside [2×, 4.2×]", base.FLOPs, dbl.FLOPs)
	}

	// Reuse adds the L·n·d cross term only.
	reuse := a.PrefillLayer([]Seq{{New: 1024, Reused: 65536}}, 8, true)
	extra := reuse.FLOPs - base.FLOPs
	want := 4 * float64(a.Heads*a.HeadDim) * 1024 * 65536
	if !near(extra, want, 0.01) {
		t.Errorf("reused-context FLOPs delta = %.3g, want %.3g", extra, want)
	}
	// Reuse also adds KV streaming bytes.
	if reuse.Bytes <= base.Bytes {
		t.Error("reused context should add KV read bytes")
	}
}

// Table 2, decode: FLOPs are O(d²+(r+1)d) per request; bytes dominated by
// weights at small batch and by KV at long context.
func TestDecodeScaling(t *testing.T) {
	a := Llama70B()
	short := a.DecodeIter(ctxs(32, 1024), 8)
	long := a.DecodeIter(ctxs(32, 65536), 8)
	if long.FLOPs <= short.FLOPs {
		t.Error("decode FLOPs must grow with context")
	}
	// KV bytes delta = 64× more context.
	dB := long.Bytes - short.Bytes
	wantB := float64(65536-1024) * 32 * a.KVBytesPerTokenLayer() * float64(a.Layers)
	if !near(dB, wantB, 0.01) {
		t.Errorf("decode KV bytes delta = %.3g, want %.3g", dB, wantB)
	}
	// At bs=1, ctx=1K the iteration is weight-dominated.
	one := a.DecodeIter(ctxs(1, 1024), 8)
	if one.Bytes < a.WeightBytes()*0.9 {
		t.Errorf("decode bytes %.3g should be ≥ ~weights %.3g", one.Bytes, a.WeightBytes())
	}
}

func ctxs(bs, ctx int) []int {
	out := make([]int, bs)
	for i := range out {
		out[i] = ctx
	}
	return out
}

func TestDecodeEmptyBatch(t *testing.T) {
	c := Llama8B().DecodeIter(nil, 8)
	if c.FLOPs != 0 || c.Bytes != 0 {
		t.Errorf("empty decode iter = %+v, want zero", c)
	}
}

// Fused iteration streams weights once: cheaper than chunk + decode
// paying weights separately.
func TestFusedChunkSavesWeights(t *testing.T) {
	a := Llama70B()
	dec := ctxs(32, 1024)
	fused := a.FusedChunkIter(Seq{New: 480, Reused: 1024}, dec, 8)
	separate := a.DecodeIter(dec, 8)
	chunkAlone := a.PrefillLayer([]Seq{{New: 480, Reused: 1024}}, 8, true).Scale(float64(a.Layers))
	if fused.Bytes >= separate.Bytes+chunkAlone.Bytes {
		t.Errorf("fused bytes %.3g not cheaper than separate %.3g",
			fused.Bytes, separate.Bytes+chunkAlone.Bytes)
	}
	if fused.Tokens != 480+32 {
		t.Errorf("fused tokens = %d, want 512", fused.Tokens)
	}
}

// Chunked prefill re-reads prior KV: later chunks cost more bytes.
func TestChunkKVReRead(t *testing.T) {
	a := Llama70B()
	first := a.FusedChunkIter(Seq{New: 512, Prior: 0}, nil, 8)
	later := a.FusedChunkIter(Seq{New: 512, Prior: 16384}, nil, 8)
	delta := later.Bytes - first.Bytes
	want := 16384 * a.KVBytesPerTokenLayer() * float64(a.Layers)
	if !near(delta, want, 0.01) {
		t.Errorf("chunk re-read bytes delta = %.3g, want %.3g", delta, want)
	}
}

func TestPrefillPhaseVsLayer(t *testing.T) {
	a := Llama8B()
	seqs := []Seq{{New: 1000}, {New: 500, Reused: 2000}}
	layer := a.PrefillLayer(seqs, 4, true)
	phase := a.PrefillPhase(seqs, 4)
	if phase.FLOPs < layer.FLOPs*float64(a.Layers) {
		t.Error("phase FLOPs must cover all layers plus LM head")
	}
	if phase.Tokens != 1500 {
		t.Errorf("phase tokens = %d, want 1500", phase.Tokens)
	}
}

func TestCommBytes(t *testing.T) {
	a := Llama70B()
	solo := a.DecodeIter(ctxs(8, 1024), 1)
	if solo.CommBytes != 0 {
		t.Errorf("TP=1 comm bytes = %.3g, want 0", solo.CommBytes)
	}
	tp8 := a.DecodeIter(ctxs(8, 1024), 8)
	if tp8.CommBytes <= 0 {
		t.Error("TP=8 must have collective traffic")
	}
}

func TestKVPoolTokens(t *testing.T) {
	a := Llama70B()
	total := int64(8) * (80 << 30) // 8×A100
	got := a.KVPoolTokens(total, 0.10)
	// (640GiB×0.9 − ~141GB) / 320KiB ≈ 1.3M tokens.
	if got < 1_000_000 || got > 1_800_000 {
		t.Errorf("70B pool tokens on 8×A100 = %d, want ~1.3M", got)
	}
	// Model bigger than memory → zero.
	if got := a.KVPoolTokens(100<<30, 0.1); got != 0 {
		t.Errorf("pool tokens with insufficient memory = %d, want 0", got)
	}
}

func TestMoEWeightTrafficSaturates(t *testing.T) {
	q := Qwen235B()
	few := q.moeWeightBytes(1)
	many := q.moeWeightBytes(100000)
	if few >= many {
		t.Error("MoE weight traffic should grow with tokens")
	}
	if many > q.LayerWeightBytes()*1.001 {
		t.Errorf("MoE traffic %.3g exceeds stored layer weights %.3g", many, q.LayerWeightBytes())
	}
	// One token touches at least its active experts.
	h := float64(q.Hidden)
	minBytes := (q.qkvoParams() + 3*h*float64(q.ExpertFFN)*float64(q.ActiveExperts)) * 2
	if few < minBytes*0.5 {
		t.Errorf("single-token MoE traffic %.3g too small (min ≈ %.3g)", few, minBytes)
	}
}

// Property: costs are monotone in every workload dimension.
func TestPropertyCostMonotone(t *testing.T) {
	a := Llama8B()
	f := func(n1, n2, r1, r2 uint16) bool {
		lo := Seq{New: int(n1%4096) + 1, Reused: int(r1) % 65536}
		hi := Seq{New: lo.New + int(n2%4096), Reused: lo.Reused + int(r2)%65536}
		cl := a.PrefillLayer([]Seq{lo}, 8, true)
		ch := a.PrefillLayer([]Seq{hi}, 8, true)
		return ch.FLOPs >= cl.FLOPs && ch.Bytes >= cl.Bytes && ch.CommBytes >= cl.CommBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a decode iteration's cost equals the sum of its per-request
// marginal contributions plus the shared weight traffic (additivity).
func TestPropertyDecodeAdditive(t *testing.T) {
	a := Llama8B()
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		batch := make([]int, len(raw))
		for i, v := range raw {
			batch[i] = int(v % 32768)
		}
		whole := a.DecodeIter(batch, 8)
		// Rebuild: shared weights once + per-request KV/proj terms.
		kvTok := a.KVBytesPerTokenLayer() * float64(a.Layers)
		var kv float64
		for _, r := range batch {
			kv += float64(r+2) * kvTok // stream r+1, write 1
		}
		wantBytes := a.LayerWeightBytes()*float64(a.Layers) + kv +
			float64(len(batch))*a.activationBytesPerToken()*float64(a.Layers) +
			float64(a.Vocab)*float64(a.Hidden)*2
		return near(whole.Bytes, wantBytes, 0.001)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecodeIterCost(b *testing.B) {
	a := Llama70B()
	batch := ctxs(64, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.DecodeIter(batch, 8)
	}
}
