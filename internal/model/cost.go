package model

import "math"

// Seq describes one sequence's position in the prefill pipeline.
type Seq struct {
	// New is the number of tokens this kernel computes for the sequence.
	New int
	// Prior is the number of new-context tokens already processed by
	// earlier chunks/layers of the same request (nonzero only under
	// chunked prefill).
	Prior int
	// Reused is the cached-context length (KV hits from earlier turns).
	Reused int
}

// Cost is a kernel resource footprint across the whole TP group.
type Cost struct {
	FLOPs     float64
	Bytes     float64
	CommBytes float64
	Tokens    int
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.FLOPs += o.FLOPs
	c.Bytes += o.Bytes
	c.CommBytes += o.CommBytes
	c.Tokens += o.Tokens
}

// Scale multiplies all components (used for layer ↔ phase conversion).
func (c Cost) Scale(f float64) Cost {
	return Cost{
		FLOPs:     c.FLOPs * f,
		Bytes:     c.Bytes * f,
		CommBytes: c.CommBytes * f,
		Tokens:    c.Tokens,
	}
}

// activationBytesPerToken approximates intermediate activation traffic
// per token per layer (reads+writes of hidden states around the matmuls).
func (a Arch) activationBytesPerToken() float64 {
	return 12 * float64(a.Hidden) * float64(a.BytesPerParam)
}

// ringFactor is the per-GPU ring-allreduce traffic multiplier for a
// message of m bytes: each GPU moves 2·m·(tp−1)/tp bytes.
func ringFactor(tp int) float64 {
	if tp <= 1 {
		return 0
	}
	return 2 * float64(tp-1) / float64(tp)
}

// attnFLOPs returns attention score+value FLOPs for n new query tokens
// attending causally over a context that starts at ctx tokens (reused +
// prior) and grows with each new token.
func (a Arch) attnFLOPs(n, ctx int) float64 {
	if n <= 0 {
		return 0
	}
	nf, cf := float64(n), float64(ctx)
	perHeadDim := float64(a.Heads * a.HeadDim)
	// QK^T and PV each cost 2 FLOPs per (query, key) pair per head-dim.
	pairs := nf*cf + nf*(nf+1)/2
	return 4 * perHeadDim * pairs
}

// PrefillLayer returns the cost of running one transformer layer of
// prefill over the batch, with tensor parallel degree tp. withWeights
// controls whether layer weights are streamed (false when the layer is
// fused into an iteration that already pays for them).
func (a Arch) PrefillLayer(seqs []Seq, tp int, withWeights bool) Cost {
	var c Cost
	kvTok := a.KVBytesPerTokenLayer()
	for _, s := range seqs {
		if s.New <= 0 {
			continue
		}
		n := float64(s.New)
		ctx := s.Reused + s.Prior
		// Projections + FFN: 2 FLOPs per parameter touched per token.
		c.FLOPs += 2 * n * (a.qkvoParams() + a.ffnParamsActive())
		c.FLOPs += a.attnFLOPs(s.New, ctx)
		// KV: write the new tokens, stream the full attended context.
		c.Bytes += n*kvTok + float64(ctx+s.New)*kvTok
		c.Bytes += n * a.activationBytesPerToken()
		c.Tokens += s.New
		// Two allreduces per layer over the token activations.
		c.CommBytes += ringFactor(tp) * 2 * n * float64(a.Hidden) * float64(a.BytesPerParam)
	}
	if withWeights && len(seqs) > 0 && c.Tokens > 0 {
		if a.MoE() {
			c.Bytes += a.moeWeightBytes(c.Tokens)
		} else {
			c.Bytes += a.LayerWeightBytes()
		}
	}
	return c
}

// PrefillPhase returns the cost of the whole prefill phase (all layers
// plus the LM head for the first generated token of each sequence).
func (a Arch) PrefillPhase(seqs []Seq, tp int) Cost {
	layer := a.PrefillLayer(seqs, tp, true)
	c := layer.Scale(float64(a.Layers))
	c.Tokens = layer.Tokens
	// LM head: logits for one position per sequence.
	head := 2 * float64(a.Hidden) * float64(a.Vocab)
	c.FLOPs += head * float64(len(seqs))
	c.Bytes += float64(a.Vocab) * float64(a.Hidden) * float64(a.BytesPerParam)
	return c
}

// moeWeightBytes estimates expert weight traffic for a kernel processing
// tok tokens: with random routing, the expected number of distinct
// experts activated saturates at the full expert pool.
func (a Arch) moeWeightBytes(tok int) float64 {
	if !a.MoE() {
		return a.LayerWeightBytes()
	}
	draws := float64(tok * a.ActiveExperts)
	e := float64(a.Experts)
	distinct := e * (1 - math.Exp(-draws/e))
	h := float64(a.Hidden)
	expert := 3 * h * float64(a.ExpertFFN) * float64(a.BytesPerParam)
	router := h * e * float64(a.BytesPerParam)
	attn := a.qkvoParams() * float64(a.BytesPerParam)
	return attn + router + distinct*expert
}

// DecodeIter returns the cost of one decode iteration (all layers, one
// token per request) over a batch whose per-request attended context
// lengths are given in ctxs.
func (a Arch) DecodeIter(ctxs []int, tp int) Cost {
	var c Cost
	bs := float64(len(ctxs))
	if bs == 0 {
		return c
	}
	kvTok := a.KVBytesPerTokenLayer()
	var totalCtx float64
	for _, r := range ctxs {
		totalCtx += float64(r)
	}
	perLayerFLOPs := 2*bs*(a.qkvoParams()+a.ffnParamsActive()) +
		4*float64(a.Heads*a.HeadDim)*(totalCtx+bs)
	var weights float64
	if a.MoE() {
		weights = a.moeWeightBytes(len(ctxs))
	} else {
		weights = a.LayerWeightBytes()
	}
	perLayerBytes := weights +
		(totalCtx+bs)*kvTok + // stream cached KV + the new token's
		bs*kvTok + // write new KV
		bs*a.activationBytesPerToken()
	perLayerComm := ringFactor(tp) * 2 * bs * float64(a.Hidden) * float64(a.BytesPerParam)

	c.FLOPs = float64(a.Layers) * perLayerFLOPs
	c.Bytes = float64(a.Layers) * perLayerBytes
	c.CommBytes = float64(a.Layers) * perLayerComm
	c.Tokens = len(ctxs)
	// LM head for every request in the batch.
	c.FLOPs += 2 * bs * float64(a.Hidden) * float64(a.Vocab)
	c.Bytes += float64(a.Vocab) * float64(a.Hidden) * float64(a.BytesPerParam)
	return c
}

// DecodeIterTotals returns the same cost as DecodeIter for a batch of bs
// requests whose attended context lengths sum to totalCtx. DecodeIter's
// formulas depend only on those two totals, so callers that already carry
// aggregates (the estimators' hot paths) can avoid materialising a ctxs
// slice.
func (a Arch) DecodeIterTotals(totalCtx, bs, tp int) Cost {
	var c Cost
	if bs <= 0 {
		return c
	}
	bsf := float64(bs)
	ctxf := float64(totalCtx)
	kvTok := a.KVBytesPerTokenLayer()
	perLayerFLOPs := 2*bsf*(a.qkvoParams()+a.ffnParamsActive()) +
		4*float64(a.Heads*a.HeadDim)*(ctxf+bsf)
	var weights float64
	if a.MoE() {
		weights = a.moeWeightBytes(bs)
	} else {
		weights = a.LayerWeightBytes()
	}
	perLayerBytes := weights +
		(ctxf+bsf)*kvTok +
		bsf*kvTok +
		bsf*a.activationBytesPerToken()
	perLayerComm := ringFactor(tp) * 2 * bsf * float64(a.Hidden) * float64(a.BytesPerParam)

	c.FLOPs = float64(a.Layers) * perLayerFLOPs
	c.Bytes = float64(a.Layers) * perLayerBytes
	c.CommBytes = float64(a.Layers) * perLayerComm
	c.Tokens = bs
	c.FLOPs += 2 * bsf * float64(a.Hidden) * float64(a.Vocab)
	c.Bytes += float64(a.Vocab) * float64(a.Hidden) * float64(a.BytesPerParam)
	return c
}

// FusedChunkIter returns the cost of a chunked-prefill iteration that
// fuses a prefill chunk with a decode step (SARATHI-style). Weights are
// streamed once; the chunk re-reads the KV of all previously processed
// tokens, which is the quadratic overhead the paper highlights.
func (a Arch) FusedChunkIter(chunk Seq, decodeCtxs []int, tp int) Cost {
	c := a.DecodeIter(decodeCtxs, tp)
	if chunk.New > 0 {
		// Chunk layers without double-counting weights.
		cl := a.PrefillLayer([]Seq{chunk}, tp, false)
		pc := cl.Scale(float64(a.Layers))
		pc.Tokens = cl.Tokens
		if len(decodeCtxs) == 0 {
			// Nothing fused: the chunk pays for weights itself.
			if a.MoE() {
				pc.Bytes += float64(a.Layers) * a.moeWeightBytes(chunk.New)
			} else {
				pc.Bytes += float64(a.Layers) * a.LayerWeightBytes()
			}
		}
		c.Add(pc)
		c.Tokens = chunk.New + len(decodeCtxs)
	}
	return c
}

// KVPoolTokens returns how many KV tokens fit in a serving instance's
// pool: aggregate HBM minus weights minus a runtime reserve fraction
// (activations, CUDA graphs, allocator slack).
func (a Arch) KVPoolTokens(totalMemBytes int64, reserveFrac float64) int64 {
	avail := float64(totalMemBytes)*(1-reserveFrac) - a.WeightBytes()
	if avail <= 0 {
		return 0
	}
	return int64(avail / a.KVBytesPerToken())
}
