package par

import (
	"sync"
	"testing"
)

func TestRunIndexedOrder(t *testing.T) {
	out := RunIndexed(100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestRunArenaWorkerPrivate checks the arena contract: every task sees
// an arena no other goroutine is touching concurrently, results come
// back in index order, and arenas are actually reused (far fewer arenas
// than tasks when the wave is wide).
func TestRunArenaWorkerPrivate(t *testing.T) {
	type arena struct {
		mu    sync.Mutex // would be contended if shared across workers
		tasks int
	}
	var mu sync.Mutex
	var arenas []*arena
	out := RunArena(200,
		func() *arena {
			a := &arena{}
			mu.Lock()
			arenas = append(arenas, a)
			mu.Unlock()
			return a
		},
		func(i int, a *arena) int {
			if !a.mu.TryLock() {
				t.Error("arena shared between concurrent tasks")
				return -1
			}
			a.tasks++
			a.mu.Unlock()
			return i
		})
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i)
		}
	}
	if len(arenas) == 0 || len(arenas) > Workers(200) {
		t.Fatalf("built %d arenas, want 1..%d", len(arenas), Workers(200))
	}
	total := 0
	for _, a := range arenas {
		total += a.tasks
	}
	if total != 200 {
		t.Fatalf("arenas saw %d tasks, want 200", total)
	}
}
