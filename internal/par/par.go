// Package par provides the one worker-pool primitive the sweep and
// experiment harnesses share for fanning independent deterministic
// simulations across CPUs.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// slots bounds the extra worker goroutines alive across ALL RunIndexed
// calls, so nested fan-outs (an experiment pool over systems whose
// probes each call the sweep pool) cannot multiply into |outer|×|inner|
// concurrent simulations.
var slots = make(chan struct{}, runtime.GOMAXPROCS(0))

// Workers returns the pool size RunIndexed would use for n tasks with
// every slot free, so callers that batch work into waves can size them
// to the available parallelism.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunIndexed evaluates fn(i) for i in [0, n) and returns the results in
// index order. The calling goroutine always works through the tasks
// itself while up to Workers(n)-1 helpers join if global slots are
// free — so nested calls degrade toward sequential execution instead of
// oversubscribing or deadlocking. Concurrency changes wall-clock time
// only: callers consume the ordered results, so output stays
// byte-identical to a sequential loop. fn must be safe to call from
// multiple goroutines.
func RunIndexed[T any](n int, fn func(i int) T) []T {
	return RunArena(n, func() struct{} { return struct{}{} },
		func(i int, _ struct{}) T { return fn(i) })
}

// RunArena is RunIndexed for workers that carry reusable per-worker
// state: every goroutine that joins the wave builds one arena with
// newArena and threads it through each task it executes, so expensive
// per-task scratch (trace buffers, engines, recorders) is allocated
// once per worker instead of once per task. The arena is worker-private
// — fn never sees the same arena concurrently, but must leave it in a
// state the worker's next task can start from. Results are returned in
// index order, so output stays byte-identical to a sequential loop as
// long as fn(i) is deterministic given a fresh-or-reset arena.
func RunArena[A, T any](n int, newArena func() A, fn func(i int, arena A) T) []T {
	out := make([]T, n)
	if n <= 1 {
		if n == 1 {
			out[0] = fn(0, newArena())
		}
		return out
	}
	var idx atomic.Int64
	work := func() {
		arena := newArena()
		for {
			i := int(idx.Add(1)) - 1
			if i >= n {
				return
			}
			out[i] = fn(i, arena)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < Workers(n)-1; w++ {
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				work()
			}()
		default: // no slot free: the caller's own loop picks up the work
		}
	}
	work()
	wg.Wait()
	return out
}
