package kvcache

import (
	"testing"

	"muxwise/internal/gpu"
	"muxwise/internal/sim"
)

func TestTransferBytes(t *testing.T) {
	if got := TransferBytes(1000, 131072); got != 1000*131072 {
		t.Fatalf("TransferBytes = %g", got)
	}
	if got := TransferBytes(0, 131072); got != 0 {
		t.Fatalf("zero tokens: %g", got)
	}
	if got := TransferBytes(1000, 0); got != 0 {
		t.Fatalf("zero bytes/token: %g", got)
	}
}

func TestTransferTime(t *testing.T) {
	link := gpu.Link{Class: gpu.LinkNVLink, Bandwidth: 600e9}
	// 4096 tokens of Llama-8B-sized KV (131072 B/token) over 600 GB/s
	// ≈ 0.895 ms on the wire plus the 8 ms default handoff.
	got := TransferTime(4096, 131072, link, 0)
	wire := sim.FromSeconds(4096 * 131072 / 600e9)
	want := DefaultHandoff + wire
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	// An explicit handoff replaces the default.
	if got := TransferTime(4096, 131072, link, 2*sim.Millisecond); got != 2*sim.Millisecond+wire {
		t.Fatalf("explicit handoff: %v", got)
	}
	// A slower link takes proportionally longer.
	pcie := gpu.Link{Class: gpu.LinkPCIe, Bandwidth: 32e9}
	if TransferTime(4096, 131072, pcie, 0) <= got {
		t.Fatal("PCIe stream not slower than NVLink")
	}
	// No bandwidth degenerates to the handoff alone.
	if got := TransferTime(4096, 131072, gpu.Link{}, 0); got != DefaultHandoff {
		t.Fatalf("zero-bandwidth link: %v, want bare handoff", got)
	}
}

func TestPoolPeekReadOnly(t *testing.T) {
	p := New(1<<20, DefaultPageTokens)
	pages := []PageID{1, 2, 3, 4}
	p.Insert(pages)
	before := p.Stats()
	if got := p.Peek(pages); got != 4 {
		t.Fatalf("Peek = %d, want 4", got)
	}
	if got := p.Peek([]PageID{1, 2, 9}); got != 2 {
		t.Fatalf("partial Peek = %d, want 2", got)
	}
	if got := p.Peek([]PageID{9}); got != 0 {
		t.Fatalf("miss Peek = %d, want 0", got)
	}
	if p.Stats() != before {
		t.Fatalf("Peek recorded statistics: %+v -> %+v", before, p.Stats())
	}
}
