package kvcache

import (
	"muxwise/internal/gpu"
	"muxwise/internal/sim"
)

// KV migration cost model. A drained or retired replica streams the KV
// of its in-flight sessions to the replica their traffic re-routes to,
// instead of letting the sessions repay a full re-prefill there. The
// stream is paced by the interconnect between the two replicas: bytes =
// tokens × per-token KV size (from the model architecture), time =
// bytes / link bandwidth + a fixed per-session handoff latency
// (connection setup, block-table exchange, first-layer warmup). This is
// the transfer-vs-recompute tradeoff DistServe's placement algorithm
// optimises around; modeling it honestly is what lets a fleet frontier
// compare migration-enabled drains against the re-prefill baseline.

// DefaultHandoff is the fixed per-session handoff latency charged on
// every KV stream when the caller does not override it. Connection
// setup plus exchanging the paged block table sits in the
// few-millisecond range on NCCL/NIXL-style transports.
const DefaultHandoff = 8 * sim.Millisecond

// TransferBytes returns the wire size of a KV stream covering tokens of
// context at bytesPerToken (model.Arch.KVBytesPerToken for the serving
// architecture).
func TransferBytes(tokens int64, bytesPerToken float64) float64 {
	if tokens <= 0 || bytesPerToken <= 0 {
		return 0
	}
	return float64(tokens) * bytesPerToken
}

// TransferTime models streaming tokens of KV across the link: handoff
// latency plus bytes over bandwidth. A zero handoff selects
// DefaultHandoff; a link without bandwidth cannot stream (the caller
// should have fallen back to re-prefill), so it degenerates to the
// handoff alone.
func TransferTime(tokens int64, bytesPerToken float64, link gpu.Link, handoff sim.Time) sim.Time {
	if handoff <= 0 {
		handoff = DefaultHandoff
	}
	bytes := TransferBytes(tokens, bytesPerToken)
	if bytes <= 0 || link.Bandwidth <= 0 {
		return handoff
	}
	return handoff + sim.FromSeconds(bytes/link.Bandwidth)
}
