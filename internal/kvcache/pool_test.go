package kvcache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func seq(ids ...uint64) []PageID {
	out := make([]PageID, len(ids))
	for i, v := range ids {
		out[i] = PageID(v)
	}
	return out
}

func TestPageCount(t *testing.T) {
	cases := []struct{ tokens, page, want int }{
		{0, 16, 0}, {1, 16, 1}, {16, 16, 1}, {17, 16, 2}, {-5, 16, 0}, {1024, 16, 64},
	}
	for _, c := range cases {
		if got := PageCount(c.tokens, c.page); got != c.want {
			t.Errorf("PageCount(%d,%d) = %d, want %d", c.tokens, c.page, got, c.want)
		}
	}
}

func TestMatchEmptyPool(t *testing.T) {
	p := New(1000, 16)
	if got := p.Match(seq(1, 2, 3)); got != 0 {
		t.Fatalf("Match on empty pool = %d, want 0", got)
	}
}

func TestInsertThenMatch(t *testing.T) {
	p := New(1000, 16)
	added := p.Insert(seq(1, 2, 3))
	if added != 3 {
		t.Fatalf("Insert added %d, want 3", added)
	}
	if got := p.Match(seq(1, 2, 3, 4)); got != 3 {
		t.Fatalf("Match = %d, want 3", got)
	}
	if got := p.Match(seq(1, 9)); got != 1 {
		t.Fatalf("partial Match = %d, want 1", got)
	}
	if got := p.Match(seq(9)); got != 0 {
		t.Fatalf("mismatch Match = %d, want 0", got)
	}
	if p.Used() != 3*16 {
		t.Fatalf("Used = %d, want 48", p.Used())
	}
}

func TestInsertDeduplicates(t *testing.T) {
	p := New(1000, 16)
	p.Insert(seq(1, 2, 3))
	if added := p.Insert(seq(1, 2, 3, 4)); added != 1 {
		t.Fatalf("second Insert added %d, want 1 (dedup)", added)
	}
	if p.Used() != 4*16 {
		t.Fatalf("Used = %d, want 64", p.Used())
	}
}

func TestBranchingPrefixes(t *testing.T) {
	p := New(1000, 16)
	p.Insert(seq(1, 2, 3))
	p.Insert(seq(1, 2, 7, 8))
	if got := p.Match(seq(1, 2, 3)); got != 3 {
		t.Fatalf("branch A match = %d, want 3", got)
	}
	if got := p.Match(seq(1, 2, 7, 8)); got != 4 {
		t.Fatalf("branch B match = %d, want 4", got)
	}
	if p.Used() != 5*16 {
		t.Fatalf("Used = %d, want 80 (shared prefix stored once)", p.Used())
	}
}

func TestMatchTokensStats(t *testing.T) {
	p := New(1000, 16)
	p.Insert(seq(1, 2))
	hit := p.MatchTokens(seq(1, 2, 3), 40)
	if hit != 32 {
		t.Fatalf("MatchTokens = %d, want 32", hit)
	}
	st := p.Stats()
	if st.HitTokens != 32 || st.MissTokens != 8 || st.Lookups != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if r := st.HitRate(); r != 0.8 {
		t.Fatalf("HitRate = %.2f, want 0.8", r)
	}
	// Hit capped at totalTokens.
	if hit := p.MatchTokens(seq(1, 2), 20); hit != 20 {
		t.Fatalf("capped MatchTokens = %d, want 20", hit)
	}
}

func TestLRUEviction(t *testing.T) {
	p := New(4*16, 16) // 4 pages
	p.Insert(seq(1, 2))
	p.Insert(seq(10, 20))
	// Refresh branch {1,2}; then overflow should evict from {10,20} first.
	p.Match(seq(1, 2))
	p.Insert(seq(100, 200)) // needs 2 pages → evicts 20 then 10
	if got := p.Match(seq(1, 2)); got != 2 {
		t.Fatalf("recently used branch evicted; match = %d, want 2", got)
	}
	if got := p.Match(seq(10, 20)); got != 0 {
		t.Fatalf("LRU branch survived; match = %d, want 0", got)
	}
	if p.Stats().Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2", p.Stats().Evictions)
	}
}

func TestEvictionLeafFirst(t *testing.T) {
	p := New(3*16, 16)
	p.Insert(seq(1, 2, 3))
	// Inserting one new page evicts the deepest (leaf) page of the chain.
	p.Insert(seq(9))
	if got := p.Match(seq(1, 2, 3)); got != 2 {
		t.Fatalf("after leaf eviction match = %d, want 2 (prefix intact)", got)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	p := New(2*16, 16)
	p.Insert(seq(1, 2))
	p.Pin(seq(1, 2), 2)
	if added := p.Insert(seq(9)); added != 0 {
		t.Fatalf("Insert with fully pinned pool added %d, want 0", added)
	}
	p.Unpin(seq(1, 2), 2)
	if added := p.Insert(seq(9)); added != 1 {
		t.Fatalf("Insert after unpin added %d, want 1", added)
	}
}

func TestPinMissingPagesIgnored(t *testing.T) {
	p := New(1000, 16)
	p.Insert(seq(1))
	p.Pin(seq(1, 2, 3), 3) // pages 2,3 absent
	p.Unpin(seq(1, 2, 3), 3)
	if got := p.Match(seq(1)); got != 1 {
		t.Fatal("pool corrupted by pinning missing pages")
	}
}

func TestReserveRelease(t *testing.T) {
	p := New(100, 16)
	if !p.Reserve(60) {
		t.Fatal("Reserve(60) failed on empty pool")
	}
	if p.Free() != 40 {
		t.Fatalf("Free = %d, want 40", p.Free())
	}
	if p.Reserve(50) {
		t.Fatal("Reserve(50) should fail with 40 free")
	}
	p.Release(60)
	if p.Free() != 100 {
		t.Fatalf("Free after release = %d, want 100", p.Free())
	}
	// Over-release clamps.
	p.Release(1000)
	if p.Reserved() != 0 {
		t.Fatalf("Reserved = %d, want 0", p.Reserved())
	}
}

func TestReserveEvicts(t *testing.T) {
	p := New(4*16, 16)
	p.Insert(seq(1, 2, 3, 4))
	if !p.Reserve(32) {
		t.Fatal("Reserve should evict cached pages to make room")
	}
	if p.Used() != 2*16 {
		t.Fatalf("Used after evicting reserve = %d, want 32", p.Used())
	}
}

func TestReservePinnedBlocks(t *testing.T) {
	p := New(2*16, 16)
	p.Insert(seq(1, 2))
	p.Pin(seq(1, 2), 2)
	if p.Reserve(16) {
		t.Fatal("Reserve should fail when all pages pinned")
	}
}

func TestClear(t *testing.T) {
	p := New(1000, 16)
	p.Insert(seq(1, 2, 3))
	p.Reserve(100)
	p.Clear()
	if p.Used() != 0 || p.Reserved() != 0 {
		t.Fatalf("after Clear: used=%d reserved=%d", p.Used(), p.Reserved())
	}
	if got := p.Match(seq(1)); got != 0 {
		t.Fatal("Clear left cached pages")
	}
}

func TestZeroAndNegativeReserve(t *testing.T) {
	p := New(10, 16)
	if !p.Reserve(0) || !p.Reserve(-5) {
		t.Fatal("non-positive reserve should trivially succeed")
	}
}

// Property: Used+Reserved never exceeds Capacity under random operations.
func TestPropertyCapacityInvariant(t *testing.T) {
	f := func(ops []uint32, capRaw uint16) bool {
		capacity := int64(capRaw%64+1) * 16
		p := New(capacity, 16)
		var reserved []int64
		for _, op := range ops {
			switch op % 4 {
			case 0:
				n := int(op>>2)%8 + 1
				pages := make([]PageID, n)
				for i := range pages {
					pages[i] = PageID((op >> 2) + uint32(i))
				}
				p.Insert(pages)
			case 1:
				tok := int64(op>>2)%capacity + 1
				if p.Reserve(tok) {
					reserved = append(reserved, tok)
				}
			case 2:
				if len(reserved) > 0 {
					p.Release(reserved[len(reserved)-1])
					reserved = reserved[:len(reserved)-1]
				}
			case 3:
				p.Match(seq(uint64(op>>2), uint64(op>>3)))
			}
			if p.Used()+p.Reserved() > p.Capacity() {
				return false
			}
			if p.Free() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Match never reports more pages than were inserted along that
// exact path, and insert-then-match roundtrips.
func TestPropertyInsertMatchRoundtrip(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 40 {
			raw = raw[:40]
		}
		pages := make([]PageID, len(raw))
		for i, v := range raw {
			pages[i] = PageID(uint64(i)<<8 | uint64(v)) // position-unique
		}
		p := New(int64(len(pages)+1)*16, 16)
		p.Insert(pages)
		return p.Match(pages) == len(pages)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A miniature of the paper's Figure 5: larger pools give monotonically
// better hit rates on a multi-turn trace.
func TestHitRateMonotoneInCapacity(t *testing.T) {
	makeTrace := func() [][]PageID {
		rng := rand.New(rand.NewPCG(7, 7))
		var trace [][]PageID
		// 50 sessions, multi-turn with growing shared context.
		for s := 0; s < 50; s++ {
			turns := rng.IntN(5) + 2
			ctx := []PageID{}
			for turn := 0; turn < turns; turn++ {
				for i := 0; i < rng.IntN(20)+5; i++ {
					ctx = append(ctx, PageID(uint64(s)<<32|uint64(len(ctx))))
				}
				cp := make([]PageID, len(ctx))
				copy(cp, ctx)
				trace = append(trace, cp)
			}
		}
		// Interleave sessions for realistic access patterns.
		rng.Shuffle(len(trace), func(i, j int) { trace[i], trace[j] = trace[j], trace[i] })
		return trace
	}
	trace := makeTrace()
	var last float64 = -1
	for _, capacity := range []int64{50 * 16, 500 * 16, 5000 * 16, 500000 * 16} {
		p := New(capacity, 16)
		for _, pages := range trace {
			p.MatchTokens(pages, len(pages)*16)
			p.Insert(pages)
		}
		hr := p.Stats().HitRate()
		if hr < last-0.02 {
			t.Fatalf("hit rate decreased with capacity: %.3f after %.3f", hr, last)
		}
		last = hr
	}
	if last < 0.3 {
		t.Fatalf("large-pool hit rate = %.3f, want ≥0.3 on multi-turn trace", last)
	}
}

func BenchmarkMatchInsert(b *testing.B) {
	p := New(1<<30, 16)
	rng := rand.New(rand.NewPCG(1, 1))
	traces := make([][]PageID, 256)
	for i := range traces {
		n := rng.IntN(200) + 10
		pages := make([]PageID, n)
		for j := range pages {
			pages[j] = PageID(uint64(i%32)<<32 | uint64(j))
		}
		traces[i] = pages
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := traces[i%len(traces)]
		p.MatchTokens(tr, len(tr)*16)
		p.Insert(tr)
	}
}
