// Package kvcache implements a paged KV cache pool with a radix prefix
// tree, the SGLang-style substrate the paper's aggregated serving relies
// on: one pool shared by the prefill and decode phases, cross-request
// prefix reuse, LRU eviction, and pinning for in-flight requests.
//
// Token content is abstracted as a sequence of PageIDs: two requests that
// share a context prefix present the same leading page IDs (the workload
// generator derives IDs from session identity and position), so prefix
// matching behaves exactly like hash-based radix caching over real tokens.
package kvcache

// PageID identifies the content of one KV page (a hash over the tokens it
// covers in a real system).
type PageID uint64

// DefaultPageTokens is the paged-attention block size used throughout the
// reproduction.
const DefaultPageTokens = 16

// PageCount returns how many pages cover n tokens.
func PageCount(tokens, pageTokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + pageTokens - 1) / pageTokens
}

// node is one cached page in the radix tree. Most nodes sit on a linear
// chain (one child), so the single child is held inline and the children
// map is only allocated when a node actually branches. Evicted nodes are
// recycled through the pool's free list: a recycled slot's fresh
// lastAccess (the clock is strictly monotonic) makes every stale LRU
// entry pointing at it mismatch and drop.
type node struct {
	page       PageID
	parent     *node
	only       *node            // the single child while children == nil
	children   map[PageID]*node // allocated on the second distinct child
	nchild     int
	pins       int
	lastAccess int64
	dead       bool
}

// child returns the child holding page pg, or nil.
func (n *node) child(pg PageID) *node {
	if n.children != nil {
		return n.children[pg]
	}
	if n.only != nil && n.only.page == pg {
		return n.only
	}
	return nil
}

// addChild links c under n.
func (n *node) addChild(c *node) {
	switch {
	case n.children != nil:
		n.children[c.page] = c
	case n.only == nil:
		n.only = c
	default:
		n.children = map[PageID]*node{n.only.page: n.only, c.page: c}
		n.only = nil
	}
	n.nchild++
}

// removeChild unlinks c from n. The branch map, once allocated, is kept
// (branch points tend to branch again).
func (n *node) removeChild(c *node) {
	if n.children != nil {
		delete(n.children, c.page)
	} else if n.only == c {
		n.only = nil
	}
	n.nchild--
}

// evictable reports whether the node could be evicted right now.
func (n *node) evictable() bool { return !n.dead && n.nchild == 0 && n.pins == 0 }

// evEntry is a lazy LRU heap entry; it is stale once the node's
// lastAccess moved past the recorded access or the node died.
type evEntry struct {
	n      *node
	access int64
}

// evHeap is a hand-rolled min-heap on access — container/heap would box
// every Push/Pop through any, allocating on the pool's hottest path.
type evHeap []evEntry

func (h *evHeap) push(e evEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].access <= s[i].access {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *evHeap) pop() evEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = evEntry{}
	s = s[:n]
	*h = s
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s[c+1].access < s[c].access {
			c++
		}
		if s[i].access <= s[c].access {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// Stats summarises cache effectiveness.
type Stats struct {
	Lookups    int64
	HitTokens  int64
	MissTokens int64
	Evictions  int64
	Inserts    int64
}

// HitRate returns token-weighted hit rate, 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	total := s.HitTokens + s.MissTokens
	if total == 0 {
		return 0
	}
	return float64(s.HitTokens) / float64(total)
}

// Pool is a KV cache pool measured in tokens. It combines a radix prefix
// tree of cached pages with a reservation counter for the KV of running
// requests that has not yet been published into the tree.
type Pool struct {
	capacity   int64
	pageTokens int

	root      *node
	usedPages int64
	reserved  int64
	lru       evHeap
	clock     int64
	stats     Stats
	free      []*node // recycled evicted nodes
}

// New creates a pool holding capacityTokens of KV, paged by pageTokens.
func New(capacityTokens int64, pageTokens int) *Pool {
	if pageTokens <= 0 {
		pageTokens = DefaultPageTokens
	}
	return &Pool{
		capacity:   capacityTokens,
		pageTokens: pageTokens,
		root:       &node{},
	}
}

// allocNode takes a node off the free list (or makes one) keyed for page
// pg under parent.
func (p *Pool) allocNode(pg PageID, parent *node) *node {
	var n *node
	if l := len(p.free); l > 0 {
		n = p.free[l-1]
		p.free[l-1] = nil
		p.free = p.free[:l-1]
		m := n.children
		*n = node{children: m} // keep the (empty) branch map for reuse
	} else {
		n = &node{}
	}
	n.page = pg
	n.parent = parent
	n.lastAccess = p.tick()
	return n
}

// Capacity returns pool capacity in tokens.
func (p *Pool) Capacity() int64 { return p.capacity }

// PageTokens returns tokens per page.
func (p *Pool) PageTokens() int { return p.pageTokens }

// Used returns tokens held by the prefix tree.
func (p *Pool) Used() int64 { return p.usedPages * int64(p.pageTokens) }

// Reserved returns tokens reserved for in-flight request state.
func (p *Pool) Reserved() int64 { return p.reserved }

// Free returns tokens neither cached nor reserved.
func (p *Pool) Free() int64 { return p.capacity - p.Used() - p.reserved }

// Stats returns a snapshot of cache statistics.
func (p *Pool) Stats() Stats { return p.stats }

func (p *Pool) tick() int64 {
	p.clock++
	return p.clock
}

// touch refreshes a node's recency and re-lists it if evictable.
func (p *Pool) touch(n *node) {
	n.lastAccess = p.tick()
	if n.evictable() {
		p.lru.push(evEntry{n, n.lastAccess})
	}
}

// listIfEvictable registers the node in the eviction heap when eligible,
// keeping its own recency (a parent that becomes a leaf after a child
// eviction must not jump to most-recently-used).
func (p *Pool) listIfEvictable(n *node) {
	if n != p.root && n.evictable() {
		p.lru.push(evEntry{n, n.lastAccess})
	}
}

// Peek returns how many leading pages of the sequence are cached,
// without refreshing recency or recording statistics — a read-only
// probe for callers (KV migration) that ask "what does this pool still
// hold?" rather than performing an admission lookup.
func (p *Pool) Peek(pages []PageID) int {
	n := p.root
	matched := 0
	for _, pg := range pages {
		child := n.child(pg)
		if child == nil {
			break
		}
		n = child
		matched++
	}
	return matched
}

// Match walks the tree and returns how many leading pages of the sequence
// are cached, refreshing their recency.
func (p *Pool) Match(pages []PageID) int {
	n := p.root
	matched := 0
	for _, pg := range pages {
		child := n.child(pg)
		if child == nil {
			break
		}
		p.touch(child)
		n = child
		matched++
	}
	return matched
}

// MatchTokens performs Match and converts the result to tokens, capped at
// totalTokens, recording hit/miss statistics.
func (p *Pool) MatchTokens(pages []PageID, totalTokens int) int {
	hitPages := p.Match(pages)
	hit := hitPages * p.pageTokens
	if hit > totalTokens {
		hit = totalTokens
	}
	p.stats.Lookups++
	p.stats.HitTokens += int64(hit)
	p.stats.MissTokens += int64(totalTokens - hit)
	return hit
}

// evictOne removes the least recently used unpinned leaf. It returns
// false when nothing is evictable.
func (p *Pool) evictOne() bool {
	for len(p.lru) > 0 {
		e := p.lru.pop()
		n := e.n
		if n.dead || !n.evictable() || n.lastAccess != e.access {
			continue // stale entry
		}
		n.dead = true
		n.parent.removeChild(n)
		p.usedPages--
		p.stats.Evictions++
		p.listIfEvictable(n.parent)
		p.free = append(p.free, n)
		return true
	}
	return false
}

// freeTokens evicts until at least want tokens are free (or nothing more
// can be evicted). It reports whether the target was reached.
func (p *Pool) freeTokens(want int64) bool {
	for p.Free() < want {
		if !p.evictOne() {
			return false
		}
	}
	return true
}

// Reserve claims tokens for in-flight KV (growing decode state or KV
// being computed by prefill), evicting cached pages if needed. It fails
// without side effects beyond evictions when capacity cannot be found.
func (p *Pool) Reserve(tokens int64) bool {
	if tokens <= 0 {
		return true
	}
	if !p.freeTokens(tokens) {
		return false
	}
	p.reserved += tokens
	return true
}

// Release returns previously reserved tokens.
func (p *Pool) Release(tokens int64) {
	p.reserved -= tokens
	if p.reserved < 0 {
		p.reserved = 0
	}
}

// Insert publishes a page sequence into the tree (typically a finished
// request's full context). Pages already present are deduplicated. If
// space runs out mid-insert, the remaining suffix is dropped — matching
// radix caches that keep whatever prefix fits. Returns pages added.
func (p *Pool) Insert(pages []PageID) int {
	n := p.root
	added := 0
	for _, pg := range pages {
		if child := n.child(pg); child != nil {
			p.touch(child)
			n = child
			continue
		}
		if !p.freeTokens(int64(p.pageTokens)) {
			break
		}
		child := p.allocNode(pg, n)
		n.addChild(child)
		p.usedPages++
		p.stats.Inserts++
		p.listIfEvictable(child)
		n = child
		added++
	}
	return added
}

// Pin protects the first count pages of the sequence (walking from the
// root) from eviction. Pages not present are ignored. Unpin must mirror
// each Pin with the same arguments.
func (p *Pool) Pin(pages []PageID, count int) {
	p.adjustPins(pages, count, +1)
}

// Unpin releases a prior Pin.
func (p *Pool) Unpin(pages []PageID, count int) {
	p.adjustPins(pages, count, -1)
}

func (p *Pool) adjustPins(pages []PageID, count, delta int) {
	n := p.root
	for i := 0; i < count && i < len(pages); i++ {
		child := n.child(pages[i])
		if child == nil {
			return
		}
		child.pins += delta
		if child.pins < 0 {
			child.pins = 0
		}
		p.listIfEvictable(child)
		n = child
	}
}

// Clear drops all cached pages (used by disaggregated engines when an
// instance releases its pool) and resets reservations.
func (p *Pool) Clear() {
	p.root = &node{}
	p.usedPages = 0
	p.reserved = 0
	p.lru = p.lru[:0]
	p.free = p.free[:0] // dropped tree nodes must not be resurrected
}
