package gpu

import "testing"

func TestLinkBetweenSameShape(t *testing.T) {
	l := LinkBetween(A100(), A100())
	if l.Class != LinkNVLink {
		t.Fatalf("A100↔A100 link class %v, want nvlink", l.Class)
	}
	if l.Bandwidth != A100().NVLinkBandwidth {
		t.Fatalf("A100↔A100 bandwidth %g, want %g", l.Bandwidth, A100().NVLinkBandwidth)
	}
}

func TestLinkBetweenCrossShape(t *testing.T) {
	l := LinkBetween(A100(), H100())
	if l.Class != LinkPCIe {
		t.Fatalf("A100↔H100 link class %v, want pcie", l.Class)
	}
	// The slower endpoint paces the stream: A100 is PCIe gen4.
	if l.Bandwidth != A100().PCIeBandwidth {
		t.Fatalf("A100↔H100 bandwidth %g, want the A100 PCIe rate %g", l.Bandwidth, A100().PCIeBandwidth)
	}
}

func TestLinkBetweenDefaultsPCIe(t *testing.T) {
	// Specs that predate the PCIe field still classify and stream.
	bare := Spec{Name: "custom"}
	l := LinkBetween(bare, A100())
	if l.Class != LinkPCIe {
		t.Fatalf("custom↔A100 link class %v, want pcie", l.Class)
	}
	if l.Bandwidth != defaultPCIeBandwidth {
		t.Fatalf("defaulted PCIe bandwidth %g, want %g", l.Bandwidth, defaultPCIeBandwidth)
	}
	// Same name but no NVLink rate also degrades to PCIe rather than an
	// infinitely fast zero-bandwidth NVLink.
	l = LinkBetween(bare, bare)
	if l.Class != LinkPCIe {
		t.Fatalf("custom↔custom without NVLink: class %v, want pcie", l.Class)
	}
}

func TestLinkClassString(t *testing.T) {
	if LinkNVLink.String() != "nvlink" || LinkPCIe.String() != "pcie" {
		t.Fatalf("link class names: %q, %q", LinkNVLink.String(), LinkPCIe.String())
	}
}
