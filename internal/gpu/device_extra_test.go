package gpu

import (
	"math"
	"testing"

	"muxwise/internal/sim"
)

// The prefill efficiency curve is the physical basis of the Fig. 6a
// saturation knee: doubling tokens at fixed SMs must raise achieved
// FLOP/s, saturating towards MFUPrefill.
func TestEfficiencySaturation(t *testing.T) {
	throughput := func(tokens int) float64 {
		s := sim.New()
		d := NewDevice(s, A100(), 8, "eff")
		p := d.Partition(108, "x")
		flops := float64(tokens) * 1e10
		var done sim.Time
		p.Launch(Kernel{Kind: Prefill, FLOPs: flops, Tokens: tokens}, func() { done = s.Now() })
		s.Run()
		return flops / done.Seconds()
	}
	t256 := throughput(256)
	t1k := throughput(1024)
	t8k := throughput(8192)
	if !(t256 < t1k && t1k < t8k) {
		t.Fatalf("throughput not saturating: %.3g, %.3g, %.3g", t256, t1k, t8k)
	}
	peak := 8 * 312e12 * 0.5
	if t8k > peak {
		t.Fatalf("throughput %.3g exceeds MFU-capped peak %.3g", t8k, peak)
	}
	if t8k < peak*0.55 {
		t.Fatalf("8K tokens should approach saturation: %.3g vs peak %.3g", t8k, peak)
	}
}

func TestHostBacklog(t *testing.T) {
	s := sim.New()
	d := NewDevice(s, A100(), 1, "host")
	p := d.Partition(108, "x")
	if d.HostBacklog() != 0 {
		t.Fatal("fresh device has backlog")
	}
	for i := 0; i < 5; i++ {
		p.Launch(Kernel{Kind: Decode, Bytes: 1e9, Launch: 2 * sim.Millisecond}, nil)
	}
	if got := d.HostBacklog(); got != 10*sim.Millisecond {
		t.Fatalf("backlog = %v, want 10ms", got)
	}
	s.Run()
	if d.HostBacklog() != 0 {
		t.Fatal("backlog should drain")
	}
}

func TestLaunchSecondsAccounting(t *testing.T) {
	s := sim.New()
	d := NewDevice(s, A100(), 1, "acct")
	p := d.Partition(108, "x")
	p.Launch(Kernel{Kind: Decode, Bytes: 1e9, Launch: 3 * sim.Millisecond}, nil)
	p.Launch(Kernel{Kind: Decode, Bytes: 1e9, Launch: 2 * sim.Millisecond}, nil)
	s.Run()
	st := d.Stats()
	if math.Abs(st.LaunchSeconds-0.005) > 1e-9 {
		t.Fatalf("LaunchSeconds = %v, want 0.005", st.LaunchSeconds)
	}
	if st.Kernels != 2 {
		t.Fatalf("Kernels = %d", st.Kernels)
	}
}

func TestPartitionBusyAccounting(t *testing.T) {
	s := sim.New()
	d := NewDevice(s, A100(), 1, "busy")
	p := d.Partition(108, "x")
	p.Launch(Kernel{Kind: Decode, Bytes: 2.039e12 * 0.1}, nil) // 100ms
	s.Run()
	if got := p.Busy(); math.Abs(got-0.1) > 0.002 {
		t.Fatalf("Busy = %v, want ≈0.1s", got)
	}
}

// Zero-work kernels must complete immediately without wedging the device.
func TestZeroWorkKernel(t *testing.T) {
	s := sim.New()
	d := NewDevice(s, A100(), 1, "zero")
	p := d.Partition(108, "x")
	done := false
	p.Launch(Kernel{Kind: Aux}, func() { done = true })
	p.Launch(Kernel{Kind: Decode, Bytes: 1e9}, nil)
	s.Run()
	if !done {
		t.Fatal("zero-work kernel never completed")
	}
	if !p.Idle() {
		t.Fatal("device wedged after zero-work kernel")
	}
}

// A three-way co-run: bandwidth allocation respects every kernel's SM cap
// and the total never exceeds device bandwidth.
func TestThreeWayContention(t *testing.T) {
	s := sim.New()
	d := NewDevice(s, A100(), 1, "three")
	sizes := []int{12, 44, 52}
	var finish [3]sim.Time
	for i, sm := range sizes {
		i := i
		p := d.Partition(sm, "p")
		p.Launch(Kernel{Kind: Decode, Bytes: 2.039e12 * 0.05}, func() { finish[i] = s.Now() })
	}
	s.Run()
	// The smallest partition has the lowest bandwidth cap → finishes last.
	if !(finish[0] > finish[1] && finish[0] > finish[2]) {
		t.Fatalf("SM-starved kernel should finish last: %v", finish)
	}
}

func TestKindString(t *testing.T) {
	if Prefill.String() != "prefill" || Decode.String() != "decode" || Aux.String() != "aux" {
		t.Fatal("Kind strings wrong")
	}
}

func TestNewDevicePanicsOnBadTP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for tp=0")
		}
	}()
	NewDevice(sim.New(), A100(), 0, "bad")
}

func TestPartitionPanicsOutOfRange(t *testing.T) {
	s := sim.New()
	d := NewDevice(s, A100(), 1, "bad")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for oversize partition")
		}
	}()
	d.Partition(109, "too-big")
}
