package gpu

// LinkClass names the interconnect a KV stream travels over. Replicas in
// the same hardware shape are assumed to sit in one NVLink domain (an
// NVSwitch-connected node or rail-optimised pod); crossing shapes — an
// A100 replica handing KV to an H100 replica — falls back to the PCIe /
// host path, the way DistServe's placement model distinguishes
// intra-node NVLink transfers from cross-node ones.
type LinkClass int

const (
	// LinkNVLink is the intra-domain fast path (NVLink/NVSwitch).
	LinkNVLink LinkClass = iota
	// LinkPCIe is the cross-domain fallback path (PCIe + host memory).
	LinkPCIe
)

// String renders the link class.
func (c LinkClass) String() string {
	switch c {
	case LinkNVLink:
		return "nvlink"
	case LinkPCIe:
		return "pcie"
	}
	return "link(?)"
}

// Link is one interconnect path between two replicas: its class and the
// effective bandwidth in bytes/s a KV stream can sustain on it.
type Link struct {
	Class     LinkClass
	Bandwidth float64
}

// defaultPCIeBandwidth stands in for specs that predate the PCIe field
// (PCIe 3.0 x16, the conservative floor).
const defaultPCIeBandwidth = 16e9

// pcie returns the spec's PCIe bandwidth, defaulted.
func (s Spec) pcie() float64 {
	if s.PCIeBandwidth > 0 {
		return s.PCIeBandwidth
	}
	return defaultPCIeBandwidth
}

// LinkBetween classifies the interconnect between two replica hardware
// shapes and returns the stream bandwidth: same shape rides NVLink at
// the shape's per-GPU NVLink rate, mixed shapes fall back to PCIe at
// the slower endpoint's rate. A transfer is paced by its narrowest hop,
// so both classes take the min of the two endpoints.
func LinkBetween(a, b Spec) Link {
	if a.Name == b.Name && a.NVLinkBandwidth > 0 && b.NVLinkBandwidth > 0 {
		bw := a.NVLinkBandwidth
		if b.NVLinkBandwidth < bw {
			bw = b.NVLinkBandwidth
		}
		return Link{Class: LinkNVLink, Bandwidth: bw}
	}
	bw := a.pcie()
	if b.pcie() < bw {
		bw = b.pcie()
	}
	return Link{Class: LinkPCIe, Bandwidth: bw}
}
