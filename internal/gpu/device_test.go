package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"muxwise/internal/sim"
)

func newTestDevice(t *testing.T, tp int) (*sim.Sim, *Device) {
	t.Helper()
	s := sim.New()
	return s, NewDevice(s, A100(), tp, "test")
}

func TestPartitionSizes(t *testing.T) {
	a := A100().PartitionSizes()
	wantA := []int{12, 28, 44, 60, 76, 92}
	if len(a) != len(wantA) {
		t.Fatalf("A100 partition sizes = %v, want %v", a, wantA)
	}
	for i := range a {
		if a[i] != wantA[i] {
			t.Fatalf("A100 partition sizes = %v, want %v", a, wantA)
		}
	}
	h := H100().PartitionSizes()
	wantH := []int{20, 36, 52, 68, 84, 100, 116}
	if len(h) != len(wantH) {
		t.Fatalf("H100 partition sizes = %v (%d configs), want %v (7 configs)", h, len(h), wantH)
	}
	for i := range h {
		if h[i] != wantH[i] {
			t.Fatalf("H100 partition sizes = %v, want %v", h, wantH)
		}
	}
	if got := H200().PartitionSizes(); len(got) != 7 {
		t.Fatalf("H200 should have 7 configs, got %v", got)
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"A100", "H100", "H200", "a100"} {
		if _, ok := SpecByName(name); !ok {
			t.Errorf("SpecByName(%q) not found", name)
		}
	}
	if _, ok := SpecByName("TPU"); ok {
		t.Error("SpecByName(TPU) unexpectedly found")
	}
}

// A compute-only kernel on the full device should take FLOPs/(peak·mfu·eff).
func TestComputeBoundDuration(t *testing.T) {
	s, d := newTestDevice(t, 1)
	p := d.Partition(108, "full")
	// Large token count so the efficiency saturation factor ≈ 1.
	k := Kernel{Kind: Prefill, FLOPs: 312e12 * 0.5, Tokens: 1 << 20}
	var doneAt sim.Time
	p.Launch(k, func() { doneAt = s.Now() })
	s.Run()
	eff := 0.5 * float64(1<<20) / (float64(1<<20) + 0.6*108)
	want := (312e12 * 0.5) / (312e12 * eff)
	got := doneAt.Seconds()
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("compute-bound duration = %.4fs, want %.4fs", got, want)
	}
}

// A memory-only kernel on the full device takes Bytes/BW.
func TestMemoryBoundDuration(t *testing.T) {
	s, d := newTestDevice(t, 1)
	p := d.Partition(108, "full")
	k := Kernel{Kind: Decode, Bytes: 2.039e12 / 2} // half a second of traffic
	var doneAt sim.Time
	p.Launch(k, func() { doneAt = s.Now() })
	s.Run()
	if got := doneAt.Seconds(); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("memory-bound duration = %.4fs, want 0.5s", got)
	}
}

// An SM-starved memory-bound kernel cannot absorb full bandwidth: with
// 12/108 SMs and saturation fraction 0.45, achievable bandwidth is
// (12/108)/0.45 ≈ 24.7% of peak.
func TestSMLimitedBandwidth(t *testing.T) {
	s, d := newTestDevice(t, 1)
	p := d.Partition(12, "small")
	bytes := 2.039e12 * 0.1 // 100ms at full bandwidth
	var doneAt sim.Time
	p.Launch(Kernel{Kind: Decode, Bytes: bytes}, func() { doneAt = s.Now() })
	s.Run()
	frac := (12.0 / 108.0) / 0.45
	want := 0.1 / frac
	if got := doneAt.Seconds(); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("starved bandwidth duration = %.4fs, want %.4fs", got, want)
	}
}

// Duration is the max of the compute and memory streams, not the sum.
func TestComputeMemoryOverlap(t *testing.T) {
	s, d := newTestDevice(t, 1)
	p := d.Partition(108, "full")
	k := Kernel{
		Kind:   Prefill,
		FLOPs:  312e12 * 0.5 * 0.2, // ~0.2s compute at eff≈0.5
		Bytes:  2.039e12 * 0.05,    // 0.05s memory
		Tokens: 1 << 20,
	}
	var doneAt sim.Time
	p.Launch(k, func() { doneAt = s.Now() })
	s.Run()
	if got := doneAt.Seconds(); math.Abs(got-0.2)/0.2 > 0.02 {
		t.Fatalf("overlapped duration = %.4fs, want ≈0.2s (max, not 0.25 sum)", got)
	}
}

// Two memory-hungry kernels on disjoint partitions share bandwidth and
// each slows down; the slowdown must be bounded by the demand ratio.
func TestBandwidthContention(t *testing.T) {
	s, d := newTestDevice(t, 1)
	a := d.Partition(54, "a")
	b := d.Partition(54, "b")
	bytes := 2.039e12 * 0.1
	var aAt, bAt sim.Time
	a.Launch(Kernel{Kind: Decode, Bytes: bytes}, func() { aAt = s.Now() })
	b.Launch(Kernel{Kind: Decode, Bytes: bytes}, func() { bAt = s.Now() })
	s.Run()
	// Each can absorb min(1, (0.5/0.45)) = full BW; contended share = half.
	// So each takes ≈0.2s instead of 0.1s.
	for _, at := range []sim.Time{aAt, bAt} {
		if got := at.Seconds(); math.Abs(got-0.2)/0.2 > 0.02 {
			t.Fatalf("contended durations a=%.4f b=%.4f, want ≈0.2s", aAt.Seconds(), bAt.Seconds())
		}
	}
}

// A compute-bound co-runner should barely slow a memory-bound kernel.
func TestComputeCoRunnerLowInterference(t *testing.T) {
	// Solo run.
	s1, d1 := newTestDevice(t, 1)
	p1 := d1.Partition(54, "dec")
	bytes := 2.039e12 * 0.05
	var solo sim.Time
	p1.Launch(Kernel{Kind: Decode, Bytes: bytes}, func() { solo = s1.Now() })
	s1.Run()

	// Co-run with a pure-compute kernel.
	s2, d2 := newTestDevice(t, 1)
	dec := d2.Partition(54, "dec")
	pre := d2.Partition(54, "pre")
	var co sim.Time
	dec.Launch(Kernel{Kind: Decode, Bytes: bytes}, func() { co = s2.Now() })
	pre.Launch(Kernel{Kind: Prefill, FLOPs: 1e12, Tokens: 4096}, nil)
	s2.Run()

	if co < solo {
		t.Fatalf("co-run %.4fs faster than solo %.4fs", co.Seconds(), solo.Seconds())
	}
	if slow := co.Seconds()/solo.Seconds() - 1; slow > 0.02 {
		t.Fatalf("pure-compute co-runner slowed decode by %.1f%%, want ≈0", slow*100)
	}
}

// FIFO order within one partition's stream.
func TestStreamFIFO(t *testing.T) {
	s, d := newTestDevice(t, 1)
	p := d.Partition(108, "full")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		p.Launch(Kernel{Kind: Decode, Bytes: 1e9}, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v, want FIFO", order)
		}
	}
}

// Host launches serialize: a long launch ahead of a short kernel delays it.
func TestHostLaunchSerialization(t *testing.T) {
	s, d := newTestDevice(t, 1)
	a := d.Partition(54, "a")
	b := d.Partition(54, "b")
	var bStart sim.Time
	// Kernel on a with a 10ms launch; kernel on b launched right after
	// with 0.5ms launch must wait for the host thread.
	a.Launch(Kernel{Kind: Prefill, FLOPs: 1e9, Tokens: 100, Launch: 10 * sim.Millisecond}, nil)
	b.Launch(Kernel{Kind: Decode, Bytes: 1e6, Launch: 500 * sim.Microsecond}, func() { bStart = s.Now() })
	s.Run()
	if bStart < 10500*sim.Microsecond {
		t.Fatalf("kernel b done at %v, want ≥ 10.5ms (serialized launches)", bStart)
	}
}

// Oversubscribed partitions (WindServe-style plain streams) occupy SMs
// non-preemptively: the resident kernel keeps its SMs and runs at solo
// speed while the late arrival squeezes into the occupancy floor until
// the SMs free up — so the pair finishes in ~2× solo time overall, with
// the second kernel bearing nearly all the delay.
func TestOversubscriptionSerializes(t *testing.T) {
	s, d := newTestDevice(t, 1)
	a := d.Partition(108, "a")
	b := d.Partition(108, "b")
	flops := 312e12 * 0.5 * 0.1 // ~0.1s solo at eff≈0.5
	var aAt, bAt sim.Time
	a.Launch(Kernel{Kind: Prefill, FLOPs: flops, Tokens: 1 << 20}, func() { aAt = s.Now() })
	b.Launch(Kernel{Kind: Prefill, FLOPs: flops, Tokens: 1 << 20}, func() { bAt = s.Now() })
	s.Run()
	if got := aAt.Seconds(); math.Abs(got-0.1)/0.1 > 0.05 {
		t.Fatalf("resident kernel took %.4fs, want ≈ solo 0.1s", got)
	}
	if got := bAt.Seconds(); math.Abs(got-0.2)/0.2 > 0.08 {
		t.Fatalf("late kernel finished at %.4fs, want ≈0.2s (serialized)", got)
	}
}

// TP groups aggregate compute and bandwidth and pay a collective cost.
func TestTensorParallelAggregation(t *testing.T) {
	s := sim.New()
	d := NewDevice(s, A100(), 8, "tp8")
	p := d.Partition(108, "full")
	k := Kernel{Kind: Decode, Bytes: 8 * 2.039e12 * 0.01} // 10ms at aggregate BW
	var at sim.Time
	p.Launch(k, func() { at = s.Now() })
	s.Run()
	if got := at.Seconds(); math.Abs(got-0.01)/0.01 > 0.02 {
		t.Fatalf("TP8 memory duration = %.4fs, want 0.01s", got)
	}

	// Comm-only kernel: bytes over NVLink at 600GB/s.
	s2 := sim.New()
	d2 := NewDevice(s2, A100(), 8, "tp8")
	p2 := d2.Partition(108, "full")
	var at2 sim.Time
	p2.Launch(Kernel{Kind: Decode, CommBytes: 600e9 * 0.02}, func() { at2 = s2.Now() })
	s2.Run()
	if got := at2.Seconds(); math.Abs(got-0.02)/0.02 > 0.02 {
		t.Fatalf("comm duration = %.4fs, want 0.02s", got)
	}
}

func TestSetSMsAffectsNextKernel(t *testing.T) {
	s, d := newTestDevice(t, 1)
	p := d.Partition(108, "p")
	bytes := 2.039e12 * 0.05
	var first, second sim.Time
	p.Launch(Kernel{Kind: Decode, Bytes: bytes}, func() {
		first = s.Now()
		p.SetSMs(12)
		p.Launch(Kernel{Kind: Decode, Bytes: bytes}, func() { second = s.Now() })
	})
	s.Run()
	d1 := first.Seconds()
	d2 := (second - first).Seconds()
	if d2 < d1*3 {
		t.Fatalf("resized kernel took %.4fs vs %.4fs, want ≥3× slower on 12 SMs", d2, d1)
	}
	if p.Reconfigs() != 1 {
		t.Fatalf("Reconfigs = %d, want 1", p.Reconfigs())
	}
}

func TestDeviceStats(t *testing.T) {
	s, d := newTestDevice(t, 1)
	p := d.Partition(108, "full")
	p.Launch(Kernel{Kind: Decode, Bytes: 2.039e12 * 0.1}, nil)
	s.Run()
	st := d.Stats()
	if st.Kernels != 1 {
		t.Fatalf("Kernels = %d, want 1", st.Kernels)
	}
	if st.BWUtil < 0.95 {
		t.Fatalf("BWUtil = %.3f for a purely memory-bound run, want ≈1", st.BWUtil)
	}
	if st.SMUtil < 0.95 {
		t.Fatalf("SMUtil = %.3f, want ≈1", st.SMUtil)
	}
	if st.Util < 0.9 {
		t.Fatalf("Util = %.3f, want high", st.Util)
	}
}

func TestPartitionQueueAccounting(t *testing.T) {
	s, d := newTestDevice(t, 1)
	p := d.Partition(108, "p")
	if !p.Idle() {
		t.Fatal("fresh partition not idle")
	}
	p.Launch(Kernel{Kind: Decode, Bytes: 1e9}, nil)
	p.Launch(Kernel{Kind: Decode, Bytes: 1e9}, nil)
	if p.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", p.QueueLen())
	}
	s.Run()
	if !p.Idle() || p.QueueLen() != 0 {
		t.Fatal("partition should drain to idle")
	}
}

func TestWaterfill(t *testing.T) {
	cases := []struct {
		demands []float64
		cap     float64
		want    []float64
	}{
		{[]float64{10, 10}, 30, []float64{10, 10}},         // under capacity
		{[]float64{30, 30}, 30, []float64{15, 15}},         // equal split
		{[]float64{5, 100}, 30, []float64{5, 25}},          // small demand satisfied first
		{[]float64{0, 50}, 30, []float64{0, 30}},           // zero demand ignored
		{[]float64{}, 30, []float64{}},                     // empty
		{[]float64{10, 20, 70}, 60, []float64{10, 20, 30}}, // cascade
	}
	for i, c := range cases {
		got := waterfill(c.demands, c.cap)
		for j := range c.want {
			if math.Abs(got[j]-c.want[j]) > 1e-9 {
				t.Errorf("case %d: waterfill = %v, want %v", i, got, c.want)
				break
			}
		}
	}
}

// Property: water-filling never exceeds capacity, never exceeds demand,
// and fully uses capacity when total demand ≥ capacity.
func TestPropertyWaterfill(t *testing.T) {
	f := func(raw []uint8, capRaw uint16) bool {
		demands := make([]float64, len(raw))
		var total float64
		for i, v := range raw {
			demands[i] = float64(v)
			total += float64(v)
		}
		capacity := float64(capRaw%1000) + 1
		alloc := waterfill(demands, capacity)
		var sum float64
		for i := range alloc {
			if alloc[i] < -1e-9 || alloc[i] > demands[i]+1e-9 {
				return false
			}
			sum += alloc[i]
		}
		if sum > capacity+1e-6 {
			return false
		}
		if total >= capacity && sum < capacity-1e-6 {
			return false
		}
		if total < capacity && math.Abs(sum-total) > 1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: co-running never speeds a kernel up, and contention slowdown
// stays bounded (the Fig. 11 premise: bounded worst case).
func TestPropertyContentionBounded(t *testing.T) {
	f := func(decSMraw, bytesRaw uint8) bool {
		sizes := A100().PartitionSizes()
		decSM := sizes[int(decSMraw)%len(sizes)]
		bytes := (float64(bytesRaw) + 1) * 1e8

		solo := runDecode(decSM, bytes, false)
		co := runDecode(decSM, bytes, true)
		if co < solo-1e-9 {
			return false
		}
		// Worst case bounded: co-runner can at most halve bandwidth when
		// demands tie; with the SM cap the slowdown stays below ~4×.
		return co <= solo*4+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func runDecode(decSM int, bytes float64, withPrefill bool) float64 {
	s := sim.New()
	d := NewDevice(s, A100(), 1, "d")
	dec := d.Partition(decSM, "dec")
	var doneAt sim.Time
	dec.Launch(Kernel{Kind: Decode, Bytes: bytes}, func() { doneAt = s.Now() })
	if withPrefill {
		pre := d.Partition(108-decSM, "pre")
		// A long prefill with both compute and memory traffic.
		pre.Launch(Kernel{Kind: Prefill, FLOPs: 1e13, Bytes: 5e10, Tokens: 8192}, nil)
	}
	s.Run()
	return doneAt.Seconds()
}

func BenchmarkDeviceContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		d := NewDevice(s, A100(), 8, "bench")
		dec := d.Partition(44, "dec")
		pre := d.Partition(64, "pre")
		for j := 0; j < 100; j++ {
			dec.Launch(Kernel{Kind: Decode, Bytes: 1e11, Launch: 500 * sim.Microsecond}, nil)
			pre.Launch(Kernel{Kind: Prefill, FLOPs: 1e13, Bytes: 1e10, Tokens: 4096, Launch: 130 * sim.Microsecond}, nil)
		}
		s.Run()
	}
}
