package gpu

import (
	"fmt"
	"math"

	"muxwise/internal/sim"
)

// Kind classifies a kernel for efficiency modelling.
type Kind int

const (
	// Prefill kernels are large matmuls whose efficiency saturates with
	// the number of new tokens per allocated SM.
	Prefill Kind = iota
	// Decode kernels are batched GEMV/attention: memory-throughput bound
	// with a flat, lower compute efficiency.
	Decode
	// Aux kernels (sampling, KV migration staging) use decode treatment.
	Aux
)

func (k Kind) String() string {
	switch k {
	case Prefill:
		return "prefill"
	case Decode:
		return "decode"
	default:
		return "aux"
	}
}

// Kernel is one unit of GPU work: a fused phase, one prefill layer, or a
// whole decode iteration, characterised by its resource footprint.
type Kernel struct {
	Label string
	Kind  Kind

	// FLOPs is total floating-point work across the TP group.
	FLOPs float64
	// Bytes is total HBM traffic across the TP group.
	Bytes float64
	// CommBytes is total interconnect traffic for TP collectives,
	// already adjusted for the ring-allreduce factor.
	CommBytes float64
	// Tokens is the number of new tokens the kernel processes, used by
	// the prefill efficiency curve.
	Tokens int
	// Launch is host-side launch latency; launches serialize on the
	// device's single launcher thread.
	Launch sim.Time
	// MFU overrides the spec's default for this kind when nonzero.
	MFU float64
}

// Device is a logical tensor-parallel group of TP identical GPUs.
type Device struct {
	Spec Spec
	TP   int
	Name string

	sim        *sim.Sim
	hostFreeAt sim.Time
	partitions []*Partition
	running    []*run
	next       sim.Handle
	lastAt     sim.Time

	// Pool and scratch buffers: reallocate runs on every kernel start and
	// every sub-stream completion, so its working set is reused rather
	// than reallocated.
	runFree  []*run
	occ      []float64
	order    []int
	caps     []float64
	alloc    []float64
	unsat    []int
	finished []*run

	// Accounting integrals (seconds-weighted).
	smInt      float64 // ∫ Σ smFraction dt
	computeInt float64 // ∫ achievedFLOPs/peakFLOPs dt
	bwInt      float64 // ∫ usedBW/peakBW dt
	firstWork  sim.Time
	lastWork   sim.Time
	kernels    int64
	launchInt  float64 // total host launch seconds
}

// NewDevice creates a logical device over a TP-wide group of spec GPUs.
func NewDevice(s *sim.Sim, spec Spec, tp int, name string) *Device {
	if tp < 1 {
		panic("gpu: tensor parallel degree must be ≥ 1")
	}
	return &Device{Spec: spec, TP: tp, Name: name, sim: s, firstWork: -1}
}

// TotalFLOPS is peak aggregate compute of the group.
func (d *Device) TotalFLOPS() float64 { return d.Spec.TensorFLOPS * float64(d.TP) }

// TotalBandwidth is aggregate HBM bandwidth of the group.
func (d *Device) TotalBandwidth() float64 { return d.Spec.HBMBandwidth * float64(d.TP) }

// TotalMemory is aggregate HBM capacity of the group in bytes.
func (d *Device) TotalMemory() int64 { return d.Spec.HBMCapacity * int64(d.TP) }

// Partition binds a new stream to sms SMs per GPU. Partitions may coexist;
// the caller decides whether their SM counts are disjoint (green contexts)
// or oversubscribed (plain CUDA streams, as in WindServe).
func (d *Device) Partition(sms int, label string) *Partition {
	if sms < 0 || sms > d.Spec.SMs {
		panic(fmt.Sprintf("gpu: partition of %d SMs outside [0,%d]", sms, d.Spec.SMs))
	}
	p := &Partition{dev: d, sms: sms, label: label}
	d.partitions = append(d.partitions, p)
	return p
}

// Partition is a stream bound to an SM subset — the Green Context analog.
// Kernels launched on a partition execute in FIFO order.
type Partition struct {
	dev   *Device
	sms   int
	label string

	queue   []*run // FIFO; the live window is queue[qhead:]
	qhead   int
	current *run

	busy      float64 // seconds the stream had a kernel executing
	reconfigs int
}

// SMs returns the partition's current size in SMs per GPU.
func (p *Partition) SMs() int { return p.sms }

// Label returns the partition's diagnostic name.
func (p *Partition) Label() string { return p.label }

// Busy returns total seconds this partition spent executing kernels.
func (p *Partition) Busy() float64 { return p.busy }

// Reconfigs returns how many times the partition was resized.
func (p *Partition) Reconfigs() int { return p.reconfigs }

// QueueLen returns the number of kernels launched but not yet completed.
func (p *Partition) QueueLen() int {
	n := len(p.queue) - p.qhead
	if p.current != nil {
		n++
	}
	return n
}

// Idle reports whether nothing is queued or executing.
func (p *Partition) Idle() bool { return p.current == nil && p.qhead == len(p.queue) }

// SetSMs resizes the partition (a green-context reconfiguration). The new
// size applies to kernels that begin executing afterwards; the resize
// costs one stream synchronization on the host thread.
func (p *Partition) SetSMs(sms int) {
	if sms == p.sms {
		return
	}
	if sms < 0 || sms > p.dev.Spec.SMs {
		panic(fmt.Sprintf("gpu: partition resize to %d SMs outside [0,%d]", sms, p.dev.Spec.SMs))
	}
	p.sms = sms
	p.reconfigs++
	d := p.dev
	if d.hostFreeAt < d.sim.Now() {
		d.hostFreeAt = d.sim.Now()
	}
	d.hostFreeAt += d.Spec.ReconfigSync
}

// run is one kernel in flight: queued, then executing under the fluid
// progress model.
type run struct {
	part *Partition
	k    Kernel
	done func()    // closure completion callback
	dfn  func(any) // closure-free completion callback: dfn(darg)
	darg any

	ready   bool // host launch finished
	readyAt sim.Time

	frac     float64 // SM fraction captured at execution start
	startSeq int64   // execution start order (SM occupancy priority)
	remC     float64 // remaining FLOPs
	remB     float64 // remaining HBM bytes
	remComm  float64 // remaining interconnect bytes

	crate, brate, commRate float64 // current rates (per second)
}

// Launch submits a kernel to the partition. done, if non-nil, runs at the
// simulated completion time. The host launch overhead serializes with all
// other launches on the device.
func (p *Partition) Launch(k Kernel, done func()) {
	r := p.submit(k)
	r.done = done
}

// LaunchFn is the closure-free Launch: done(arg) runs at the simulated
// completion time. Engines bind done once (a package function or a field
// set at construction) and pass per-kernel state through arg, so a launch
// allocates nothing on the steady-state path.
func (p *Partition) LaunchFn(k Kernel, done func(any), arg any) {
	r := p.submit(k)
	r.dfn = done
	r.darg = arg
}

// submit queues a pooled run for k and schedules its host-launch-ready
// event.
func (p *Partition) submit(k Kernel) *run {
	d := p.dev
	now := d.sim.Now()
	if d.hostFreeAt < now {
		d.hostFreeAt = now
	}
	start := d.hostFreeAt
	d.hostFreeAt = start + k.Launch
	d.launchInt += sim.Time(k.Launch).Seconds()

	r := d.allocRun()
	r.part = p
	r.k = k
	r.readyAt = d.hostFreeAt
	if p.qhead > 0 && p.qhead == len(p.queue) {
		p.queue = p.queue[:0]
		p.qhead = 0
	}
	p.queue = append(p.queue, r)
	d.sim.AtFunc(r.readyAt, runReady, r)
	return r
}

// runReady is the bound callback for a run's host-launch completion.
func runReady(arg any) {
	r := arg.(*run)
	r.ready = true
	r.part.tryStart()
}

// allocRun takes a run off the device's free list, or makes one.
func (d *Device) allocRun() *run {
	if n := len(d.runFree); n > 0 {
		r := d.runFree[n-1]
		d.runFree[n-1] = nil
		d.runFree = d.runFree[:n-1]
		return r
	}
	return &run{}
}

// releaseRun recycles a retired run. Callers must ensure nothing still
// references it: it has left the queue, d.running, and its ready event
// has fired.
func (d *Device) releaseRun(r *run) {
	*r = run{}
	d.runFree = append(d.runFree, r)
}

// tryStart begins executing the queue head if the stream is idle and the
// head's host launch has completed.
func (p *Partition) tryStart() {
	if p.current != nil || p.qhead == len(p.queue) || !p.queue[p.qhead].ready {
		return
	}
	r := p.queue[p.qhead]
	p.queue[p.qhead] = nil
	p.qhead++
	if p.qhead == len(p.queue) {
		p.queue = p.queue[:0]
		p.qhead = 0
	}
	p.current = r
	p.dev.startRun(r)
}

func (d *Device) startRun(r *run) {
	d.progress()
	r.frac = float64(r.part.sms) / float64(d.Spec.SMs)
	r.startSeq = d.kernels
	r.remC = r.k.FLOPs
	r.remB = r.k.Bytes
	r.remComm = r.k.CommBytes
	d.running = append(d.running, r)
	d.kernels++
	if d.firstWork < 0 {
		d.firstWork = d.sim.Now()
	}
	d.reallocate()
}

// progress advances all running kernels' remaining work to the current
// time at their last-computed rates and accumulates accounting integrals.
func (d *Device) progress() {
	now := d.sim.Now()
	dt := (now - d.lastAt).Seconds()
	d.lastAt = now
	if dt <= 0 || len(d.running) == 0 {
		return
	}
	var smSum, flopsUsed, bwUsed float64
	for _, r := range d.running {
		r.remC = math.Max(0, r.remC-r.crate*dt)
		r.remB = math.Max(0, r.remB-r.brate*dt)
		r.remComm = math.Max(0, r.remComm-r.commRate*dt)
		r.part.busy += dt
		smSum += r.frac
		flopsUsed += r.crate
		bwUsed += r.brate
	}
	d.smInt += math.Min(1, smSum) * dt
	d.computeInt += flopsUsed / d.TotalFLOPS() * dt
	d.bwInt += bwUsed / d.TotalBandwidth() * dt
	d.lastWork = now
}

// efficiency returns the fraction of peak FLOPS a kernel achieves given
// its kind, token count, and SM allocation.
func (d *Device) efficiency(k Kernel, frac float64) float64 {
	mfu := k.MFU
	if mfu == 0 {
		if k.Kind == Prefill {
			mfu = d.Spec.MFUPrefill
		} else {
			mfu = d.Spec.MFUDecode
		}
	}
	if k.Kind != Prefill {
		return mfu
	}
	sms := frac * float64(d.Spec.SMs) * float64(d.TP)
	tok := float64(k.Tokens)
	if tok <= 0 {
		tok = 1
	}
	return mfu * tok / (tok + d.Spec.SatTokensPerSM*sms)
}

// reallocate recomputes every running kernel's rates (water-filling the
// bandwidth) and schedules the next sub-stream completion event.
func (d *Device) reallocate() {
	d.sim.Cancel(d.next)
	d.next = sim.Handle{}
	if len(d.running) == 0 {
		return
	}

	// SM occupancy: green-context partitions are disjoint, so each
	// kernel keeps its fraction. When streams oversubscribe the SMs
	// (plain CUDA streams, or a reconfiguration racing an in-flight
	// kernel), occupancy is non-preemptive: kernels resident earlier
	// keep their SMs and later arrivals squeeze into what remains, with
	// a small floor for the blocks that do sneak in.
	const occupancyFloor = 0.02
	n := len(d.running)
	occ := growFloats(&d.occ, n)
	order := growInts(&d.order, n)
	for i := range d.running {
		order[i] = i
	}
	// Insertion sort on startSeq: a handful of streams at most, and no
	// reflect.Swapper allocation per call.
	for i := 1; i < n; i++ {
		v := order[i]
		seq := d.running[v].startSeq
		j := i
		for j > 0 && d.running[order[j-1]].startSeq > seq {
			order[j] = order[j-1]
			j--
		}
		order[j] = v
	}
	remaining := 1.0
	for _, i := range order {
		r := d.running[i]
		g := math.Min(r.frac, remaining)
		if g < occupancyFloor {
			g = math.Min(occupancyFloor, r.frac)
		}
		occ[i] = g
		remaining -= g
		if remaining < 0 {
			remaining = 0
		}
	}

	// Bandwidth demands, capped by each kernel's SM-limited absorption.
	bw := d.TotalBandwidth()
	caps := growFloats(&d.caps, n)
	for i, r := range d.running {
		if r.remB <= 0 {
			caps[i] = 0
			continue
		}
		c := occ[i] / d.Spec.BWSaturationFrac * bw
		caps[i] = math.Min(bw, c)
	}
	alloc := growFloats(&d.alloc, n)
	d.unsat = waterfillInto(alloc, caps, bw, d.unsat)

	soonest := sim.MaxTime
	now := d.sim.Now()
	for i, r := range d.running {
		eff := d.efficiency(r.k, r.frac)
		r.crate = occ[i] * d.TotalFLOPS() * eff
		r.brate = alloc[i]
		r.commRate = d.Spec.NVLinkBandwidth
		// A zero rate means starved this round; a future reallocate
		// unblocks it.
		if t := subStreamDeadline(now, r.remC, r.crate); t < soonest {
			soonest = t
		}
		if t := subStreamDeadline(now, r.remB, r.brate); t < soonest {
			soonest = t
		}
		if t := subStreamDeadline(now, r.remComm, r.commRate); t < soonest {
			soonest = t
		}
	}
	if soonest == sim.MaxTime {
		// Nothing has pending work: everything finishes now.
		soonest = now + 1
	}
	d.next = d.sim.AtFunc(soonest, deviceProgress, d)
}

// subStreamDeadline returns when rem units drain at rate units/second, or
// MaxTime when the sub-stream has no pending work or is starved.
func subStreamDeadline(now sim.Time, rem, rate float64) sim.Time {
	if rem <= 0 || rate <= 0 {
		return sim.MaxTime
	}
	t := now + sim.FromSeconds(rem/rate)
	if t <= now {
		t = now + 1
	}
	return t
}

// deviceProgress is the bound callback for the next-completion event.
func deviceProgress(arg any) { arg.(*Device).onProgress() }

// onProgress fires at the earliest sub-stream completion: it advances
// work, retires finished kernels, and reallocates.
func (d *Device) onProgress() {
	d.next = sim.Handle{}
	d.progress()
	finished := d.finished[:0]
	remaining := d.running[:0]
	for _, r := range d.running {
		if r.remC <= workEps && r.remB <= workEps && r.remComm <= workEps {
			finished = append(finished, r)
		} else {
			remaining = append(remaining, r)
		}
	}
	d.running = remaining
	for _, r := range finished {
		r.part.current = nil
	}
	d.reallocate()
	for i, r := range finished {
		if r.dfn != nil {
			r.dfn(r.darg)
		} else if r.done != nil {
			r.done()
		}
		r.part.tryStart()
		finished[i] = nil
		d.releaseRun(r)
	}
	d.finished = finished[:0]
}

// workEps tolerates float residue when deciding a sub-stream is done: one
// FLOP or byte out of any realistic kernel is far below timing relevance.
const workEps = 1e3

// Stats is a snapshot of device accounting.
type Stats struct {
	Kernels       int64
	SMUtil        float64 // time-avg fraction of SMs occupied over the active window
	ComputeUtil   float64 // time-avg achieved FLOPs / peak
	BWUtil        float64 // time-avg used bandwidth / peak
	Util          float64 // blended "Nsight-style" utilization
	ActiveSeconds float64
	LaunchSeconds float64
}

// Stats returns accounting over the device's active window (first kernel
// start to last activity).
func (d *Device) Stats() Stats {
	d.progress()
	var window float64
	if d.firstWork >= 0 && d.lastWork > d.firstWork {
		window = (d.lastWork - d.firstWork).Seconds()
	}
	st := Stats{Kernels: d.kernels, ActiveSeconds: window, LaunchSeconds: d.launchInt}
	if window > 0 {
		st.SMUtil = d.smInt / window
		st.ComputeUtil = d.computeInt / window
		st.BWUtil = d.bwInt / window
		// Nsight's metric reflects active SMs and intra-SM activity: a
		// memory-bound kernel keeps its SMs "active" while streaming.
		st.Util = math.Min(1, math.Max(st.ComputeUtil/d.Spec.MFUPrefill, st.BWUtil))
	}
	return st
}

// HostBacklog returns how far ahead of the simulated clock the launcher
// thread is committed (queued launch work).
func (d *Device) HostBacklog() sim.Time {
	if d.hostFreeAt <= d.sim.Now() {
		return 0
	}
	return d.hostFreeAt - d.sim.Now()
}

// waterfill distributes capacity across demands with max-min fairness:
// every demand gets min(demand, fair share), and leftover capacity is
// redistributed among unsatisfied demands.
func waterfill(demands []float64, capacity float64) []float64 {
	alloc := make([]float64, len(demands))
	waterfillInto(alloc, demands, capacity, nil)
	return alloc
}

// waterfillInto is the allocation-free waterfill: it fills alloc (which
// must have len(demands)) in place, using and returning the unsat scratch
// slice so callers can reuse its capacity.
func waterfillInto(alloc, demands []float64, capacity float64, unsat []int) []int {
	for i := range alloc {
		alloc[i] = 0
	}
	var total float64
	active := 0
	for _, v := range demands {
		if v > 0 {
			total += v
			active++
		}
	}
	if active == 0 {
		return unsat
	}
	if total <= capacity {
		copy(alloc, demands)
		return unsat
	}
	remaining := capacity
	unsat = unsat[:0]
	for i, v := range demands {
		if v > 0 {
			unsat = append(unsat, i)
		}
	}
	scratch := unsat
	for len(unsat) > 0 {
		fair := remaining / float64(len(unsat))
		progressed := false
		next := unsat[:0]
		for _, i := range unsat {
			if demands[i] <= fair {
				alloc[i] = demands[i]
				remaining -= demands[i]
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		unsat = next
		if !progressed {
			fair = remaining / float64(len(unsat))
			for _, i := range unsat {
				alloc[i] = fair
			}
			break
		}
	}
	return scratch
}

// growFloats resizes *s to n elements, reusing capacity. Contents are
// unspecified; callers overwrite every element.
func growFloats(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// growInts resizes *s to n elements, reusing capacity.
func growInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}
