// Package gpu models GPU hardware for LLM serving simulation.
//
// A Device is a logical tensor-parallel group of identical physical GPUs
// executing in lock-step (the way a TP group behaves in SGLang/vLLM).
// Compute is spatially divisible into Partitions — the analogue of CUDA
// Green Contexts: a stream bound to a subset of SMs on every GPU in the
// group. Partitions execute kernels concurrently and contend for the
// group's HBM bandwidth, which the device arbitrates with a max-min
// water-filling allocator. Host-side kernel launches serialize on a
// single launcher thread, reproducing the launch-latency bubbles the
// paper's bubble-less engine exists to remove.
package gpu

import "muxwise/internal/sim"

// Spec describes one physical GPU model. All rates are per GPU.
type Spec struct {
	Name string

	// SMs is the number of streaming multiprocessors. Partition sizes
	// are expressed in SMs per GPU.
	SMs int

	// TensorFLOPS is peak dense bf16 throughput in FLOP/s.
	TensorFLOPS float64

	// HBMBandwidth is peak memory bandwidth in bytes/s.
	HBMBandwidth float64

	// HBMCapacity is device memory in bytes.
	HBMCapacity int64

	// NVLinkBandwidth is the per-GPU interconnect bandwidth in bytes/s
	// used for tensor-parallel collectives and KV migration.
	NVLinkBandwidth float64

	// PCIeBandwidth is the per-GPU host-path bandwidth in bytes/s, the
	// fallback link class for KV streams that cross hardware shapes
	// (no shared NVLink domain). Zero selects a PCIe 3.0 x16 floor.
	PCIeBandwidth float64

	// BWSaturationFrac is the fraction of SMs a kernel needs before it
	// can absorb the full HBM bandwidth. A kernel on fewer SMs is capped
	// at smFraction/BWSaturationFrac of peak bandwidth. Real GPUs need
	// roughly 40–50% of SMs issuing loads to saturate HBM.
	BWSaturationFrac float64

	// MFUPrefill and MFUDecode are the peak model FLOPs utilization for
	// large-matmul (prefill) and batched-GEMV (decode) kernels.
	MFUPrefill float64
	MFUDecode  float64

	// SatTokensPerSM controls how many new tokens per allocated SM a
	// prefill-style kernel needs before its efficiency reaches half of
	// MFUPrefill: eff = tokens / (tokens + SatTokensPerSM·sms).
	SatTokensPerSM float64

	// GraphLaunch is the host latency of launching a captured CUDA
	// graph (a decode iteration, or one prefill layer graph piece).
	GraphLaunch sim.Time

	// LayerLaunch is the host latency of launching one prefill layer as
	// a piecewise CUDA graph. A full-phase launch costs Layers·LayerLaunch
	// on the host, matching the paper's ~10 ms for Llama-70B (80 layers).
	LayerLaunch sim.Time

	// ReconfigSync is the cost of re-binding a partition to a different
	// SM set (a green-context stream synchronization, order of µs).
	ReconfigSync sim.Time

	// PartitionGranularity is the SM allocation step (16 on Hopper due
	// to thread block clusters; the paper uses 16 everywhere).
	PartitionGranularity int

	// MinPartition is the smallest legal partition in SMs. Kernels on
	// H100 and newer need at least 16 SMs (thread block clusters).
	MinPartition int
}

// A100 returns the spec of an NVIDIA A100-SXM4-80GB.
func A100() Spec {
	return Spec{
		Name:                 "A100-80G",
		SMs:                  108,
		TensorFLOPS:          312e12,
		HBMBandwidth:         2.039e12,
		HBMCapacity:          80 << 30,
		NVLinkBandwidth:      600e9,
		PCIeBandwidth:        32e9,
		BWSaturationFrac:     0.45,
		MFUPrefill:           0.50,
		MFUDecode:            0.30,
		SatTokensPerSM:       0.60,
		GraphLaunch:          500 * sim.Microsecond,
		LayerLaunch:          130 * sim.Microsecond,
		ReconfigSync:         10 * sim.Microsecond,
		PartitionGranularity: 16,
		MinPartition:         1,
	}
}

// H100 returns the spec of an NVIDIA H100-SXM5-80GB.
func H100() Spec {
	return Spec{
		Name:                 "H100-80G",
		SMs:                  132,
		TensorFLOPS:          989e12,
		HBMBandwidth:         3.35e12,
		HBMCapacity:          80 << 30,
		NVLinkBandwidth:      900e9,
		PCIeBandwidth:        64e9,
		BWSaturationFrac:     0.45,
		MFUPrefill:           0.48,
		MFUDecode:            0.28,
		SatTokensPerSM:       0.85,
		GraphLaunch:          450 * sim.Microsecond,
		LayerLaunch:          120 * sim.Microsecond,
		ReconfigSync:         10 * sim.Microsecond,
		PartitionGranularity: 16,
		MinPartition:         16,
	}
}

// H200 returns the spec of an NVIDIA H200-SXM5-141GB.
func H200() Spec {
	s := H100()
	s.Name = "H200-141G"
	s.HBMBandwidth = 4.8e12
	s.HBMCapacity = 141 << 30
	return s
}

// B200 returns the spec of an NVIDIA B200-SXM6-180GB. Blackwell is a
// dual-die package; the simulator models the package as one GPU at
// aggregate datasheet rates (2.25 PFLOP/s dense bf16, 7.7 TB/s HBM3e)
// with an effective SM count that keeps the 16-SM partition step of
// the Hopper green-context model. There is no fitted-plane profile for
// this part — it is reachable only through the roofline cost model.
func B200() Spec {
	return Spec{
		Name:                 "B200-180G",
		SMs:                  148,
		TensorFLOPS:          2.25e15,
		HBMBandwidth:         7.7e12,
		HBMCapacity:          180 << 30,
		NVLinkBandwidth:      1.8e12,
		PCIeBandwidth:        128e9,
		BWSaturationFrac:     0.45,
		MFUPrefill:           0.45,
		MFUDecode:            0.25,
		SatTokensPerSM:       1.10,
		GraphLaunch:          450 * sim.Microsecond,
		LayerLaunch:          120 * sim.Microsecond,
		ReconfigSync:         10 * sim.Microsecond,
		PartitionGranularity: 16,
		MinPartition:         16,
	}
}

// SpecByName looks up a built-in spec ("A100", "H100", "H200", "B200").
// It returns false for unknown names.
func SpecByName(name string) (Spec, bool) {
	switch name {
	case "A100", "A100-80G", "a100":
		return A100(), true
	case "H100", "H100-80G", "h100":
		return H100(), true
	case "H200", "H200-141G", "h200":
		return H200(), true
	case "B200", "B200-180G", "b200":
		return B200(), true
	}
	return Spec{}, false
}

// Catalog returns every built-in spec in generation order. docs/hardware.md
// is generated from this list; adding a spec here (plus a SpecByName case)
// is the whole recipe for new hardware under the roofline cost model.
func Catalog() []Spec {
	return []Spec{A100(), H100(), H200(), B200()}
}

// PartitionSizes returns the valid decode-partition SM counts for this
// spec, stepping by PartitionGranularity and starting at the remainder
// that keeps every configuration's complement a multiple of the step.
// For A100 (108 SMs, step 16) this is [12 28 44 60 76 92]; for H100/H200
// (132 SMs) it is [20 36 52 68 84 100 116], matching the paper's 6 and 7
// configurations.
func (s Spec) PartitionSizes() []int {
	step := s.PartitionGranularity
	if step <= 0 {
		step = 16
	}
	first := s.SMs % step
	if first == 0 {
		first = step
	}
	for first < s.MinPartition {
		first += step
	}
	var sizes []int
	for sm := first; sm < s.SMs; sm += step {
		sizes = append(sizes, sm)
	}
	return sizes
}
