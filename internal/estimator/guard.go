package estimator

import (
	"math"

	"muxwise/internal/gpu"
	"muxwise/internal/model"
	"muxwise/internal/sim"
)

// Guard is the contention guard: a 5-factor grid of maximum observed
// decode slowdowns under spatial multiplexing with a prefill batch. It is
// initialised by coarse offline co-run profiling (powers-of-4 token grid,
// 16-SM partition granularity — §3.3.2) and refined online with the max
// of observed slowdowns.
//
// The grid is a dense flat array indexed by the bucketed cell
// coordinates: Factor sits on every decode-estimate path, so lookups and
// the unprofiled-cell fallback (the per-config maximum, kept
// incrementally) must not scan or hash.
type Guard struct {
	// flat holds the cell maxima at
	// (((pNew*4+pReused)*9+dBS)*4+dCtx)*len(configs)+configIdx;
	// zero means unprofiled. Token dimensions are bucketed by log₄ from
	// 2K to 128K; batch size by log₂.
	flat []float64
	// cfgMax[ci] is the fallback for unprofiled cells of config ci:
	// the maximum stored factor for that config, floored at floor.
	cfgMax  []float64
	cells   int // nonzero entries in flat
	configs []int
	floor   float64 // minimum factor returned (sync/merge margin)
}

// Guard grid dimensions: 4 log₄ token buckets (2K..128K) for prefill-new,
// prefill-reused and decode-context, 9 log₂ batch-size buckets.
const (
	guardTokBuckets = 4
	guardBSBuckets  = 9
)

// idx flattens bucketed cell coordinates; ci is an index into g.configs.
func (g *Guard) idx(pNew, pReused, dBS, dCtx, ci int) int {
	return (((pNew*guardTokBuckets+pReused)*guardBSBuckets+dBS)*guardTokBuckets+dCtx)*len(g.configs) + ci
}

// store raises the cell's maximum (and its config's fallback).
func (g *Guard) store(i, ci int, factor float64) {
	if factor <= g.flat[i] {
		return
	}
	if g.flat[i] == 0 {
		g.cells++
	}
	g.flat[i] = factor
	if factor > g.cfgMax[ci] {
		g.cfgMax[ci] = factor
	}
}

// newGuard returns an empty grid over the given partition configs.
func newGuard(configs []int, floor float64) *Guard {
	n := guardTokBuckets * guardTokBuckets * guardBSBuckets * guardTokBuckets * len(configs)
	g := &Guard{flat: make([]float64, n), cfgMax: make([]float64, len(configs)), configs: configs, floor: floor}
	for i := range g.cfgMax {
		g.cfgMax[i] = floor
	}
	return g
}

// tokenBucket maps a token count to its powers-of-4 bucket index.
func tokenBucket(tok int) int {
	if tok <= 0 {
		return 0
	}
	b := int(math.Round(math.Log(float64(tok)/2048) / math.Log(4)))
	if b < 0 {
		b = 0
	}
	if b > 3 {
		b = 3
	}
	return b
}

// bsBucket maps a batch size to its log₂ bucket.
func bsBucket(bs int) int {
	if bs <= 1 {
		return 0
	}
	b := int(math.Round(math.Log2(float64(bs))))
	if b > 8 {
		b = 8
	}
	return b
}

// bucketTokens returns the representative token counts profiled offline.
var bucketTokens = []int{2048, 8192, 32768, 131072}

// bucketBS returns the representative batch sizes profiled offline.
var bucketBS = []int{1, 4, 16, 64, 192}

// profileGuard measures decode slowdown for every grid cell by co-running
// a decode iteration with a stream of prefill layers on the complementary
// partition of a fresh simulated device.
func profileGuard(spec gpu.Spec, tp int, arch model.Arch, est *Estimator) *Guard {
	g := newGuard(spec.PartitionSizes(), 1.0)
	for ci, decSM := range g.configs {
		preSM := spec.SMs - decSM
		for pi, pNew := range bucketTokens {
			for pj, pReused := range bucketTokens {
				if pi == 3 && pj == 3 {
					continue // paper excludes the 128K new + 128K reused cell
				}
				for _, bs := range bucketBS {
					for dj, dCtx := range bucketTokens {
						solo := measureDecode(spec, tp, arch, decSM, bs, dCtx)
						co := measureDecodeCoRun(spec, tp, arch, decSM, preSM, bs, dCtx, pNew, pReused)
						factor := co / solo
						if factor < 1 {
							factor = 1
						}
						g.store(g.idx(pi, pj, bsBucket(bs), dj, ci), ci, factor)
					}
				}
			}
		}
	}
	return g
}

// measureDecodeCoRun measures one decode iteration's latency while a
// prefill phase streams layers on the complementary partition.
func measureDecodeCoRun(spec gpu.Spec, tp int, arch model.Arch, decSM, preSM, bs, ctxPerReq, pNew, pReused int) float64 {
	s := sim.New()
	d := gpu.NewDevice(s, spec, tp, "co-profile")
	dec := d.Partition(decSM, "decode")
	pre := d.Partition(preSM, "prefill")

	// Decode launches first — MuxWise's launch-order policy (§3.2.2) —
	// then prefill layers stream on the complementary partition so the
	// decode kernel executes under steady-state contention.
	ctxs := make([]int, bs)
	for i := range ctxs {
		ctxs[i] = ctxPerReq
	}
	c := arch.DecodeIter(ctxs, tp)
	var done sim.Time
	dec.Launch(gpu.Kernel{
		Kind: gpu.Decode, FLOPs: c.FLOPs, Bytes: c.Bytes, CommBytes: c.CommBytes,
		Tokens: c.Tokens, Launch: spec.GraphLaunch,
	}, func() { done = s.Now() })

	layer := arch.PrefillLayer([]model.Seq{{New: pNew, Reused: pReused}}, tp, true)
	for i := 0; i < arch.Layers; i++ {
		pre.Launch(gpu.Kernel{
			Kind: gpu.Prefill, FLOPs: layer.FLOPs, Bytes: layer.Bytes,
			CommBytes: layer.CommBytes, Tokens: layer.Tokens, Launch: spec.LayerLaunch,
		}, nil)
	}
	s.Run()
	return done.Seconds()
}

// Factor returns the worst-case slowdown for the cell containing the
// given co-run shape, with a floor of 1.
func (g *Guard) Factor(prefillNew, prefillReused, bs, totalCtx, decSM int) float64 {
	perReq := totalCtx
	if bs > 0 {
		perReq = totalCtx / bs
	}
	ci := g.snapIdx(decSM)
	f := g.flat[g.idx(tokenBucket(prefillNew), tokenBucket(prefillReused), bsBucket(bs), tokenBucket(perReq), ci)]
	if f > g.floor {
		return f
	}
	// Unprofiled cell: be conservative with the maximum across the
	// config (still bounded, per the paper's ≤20–30% observation).
	return g.cfgMax[ci]
}

// Observe refines the guard with a runtime slowdown measurement
// (actual / predicted-solo), keeping the per-cell maximum.
func (g *Guard) Observe(prefillNew, prefillReused, bs, totalCtx, decSM int, slowdown float64) {
	if slowdown < 1 {
		return
	}
	perReq := totalCtx
	if bs > 0 {
		perReq = totalCtx / bs
	}
	ci := g.snapIdx(decSM)
	g.store(g.idx(tokenBucket(prefillNew), tokenBucket(prefillReused), bsBucket(bs), tokenBucket(perReq), ci), ci, slowdown)
}

// clone returns an independent copy of the guard for per-run online
// refinement.
func (g *Guard) clone() *Guard {
	c := &Guard{
		flat:    make([]float64, len(g.flat)),
		cfgMax:  make([]float64, len(g.cfgMax)),
		cells:   g.cells,
		configs: g.configs,
		floor:   g.floor,
	}
	copy(c.flat, g.flat)
	copy(c.cfgMax, g.cfgMax)
	return c
}

// snapIdx maps an SM count to the index of the nearest profiled
// configuration.
func (g *Guard) snapIdx(sms int) int {
	best, bestDiff := 0, math.MaxInt
	for i, c := range g.configs {
		d := c - sms
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

// MaxFactor returns the largest slowdown in the guard (the paper reports
// ≤1.2 on A100 and ≤1.3 on H100).
func (g *Guard) MaxFactor() float64 {
	max := 1.0
	for _, f := range g.cfgMax {
		if f > max {
			max = f
		}
	}
	return max
}

// Cells returns the number of profiled grid cells.
func (g *Guard) Cells() int { return g.cells }
