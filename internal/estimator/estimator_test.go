package estimator

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"muxwise/internal/gpu"
	"muxwise/internal/model"
)

func TestFitOLSExact(t *testing.T) {
	// y = 2a + 3b + 5.
	var x [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			x = append(x, []float64{a, b, 1})
			y = append(y, 2*a+3*b+5)
		}
	}
	th := FitOLS(x, y)
	want := []float64{2, 3, 5}
	for i := range want {
		if math.Abs(th[i]-want[i]) > 1e-6 {
			t.Fatalf("theta = %v, want %v", th, want)
		}
	}
}

func TestFitOLSDegenerate(t *testing.T) {
	if th := FitOLS(nil, nil); th != nil {
		t.Fatal("empty fit should return nil")
	}
	if th := FitOLS([][]float64{{1, 2}}, []float64{1, 2}); th != nil {
		t.Fatal("mismatched rows should return nil")
	}
}

// Property: OLS recovers random linear models from noiseless samples.
func TestPropertyOLSRecovers(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	f := func(c0, c1, c2 int8) bool {
		want := []float64{float64(c0), float64(c1), float64(c2)}
		var x [][]float64
		var y []float64
		for i := 0; i < 30; i++ {
			row := []float64{rng.Float64() * 100, rng.Float64() * 10, 1}
			x = append(x, row)
			y = append(y, dot(row, want))
		}
		th := FitOLS(x, y)
		if th == nil {
			return false
		}
		for i := range want {
			if math.Abs(th[i]-want[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolve3x3(t *testing.T) {
	a := [][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	b := []float64{5, 10, 7}
	x := solve(a, b)
	// Verify by substitution with fresh copies (solve mutates in place).
	a2 := [][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	b2 := []float64{5, 10, 7}
	for i := range a2 {
		var s float64
		for j := range x {
			s += a2[i][j] * x[j]
		}
		if math.Abs(s-b2[i]) > 1e-9 {
			t.Fatalf("solve residual at row %d: %v", i, s-b2[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if x := solve(a, []float64{1, 2}); x != nil {
		t.Fatal("singular system should return nil")
	}
}

func TestTokenBuckets(t *testing.T) {
	cases := []struct{ tok, want int }{
		{0, 0}, {1000, 0}, {2048, 0}, {8192, 1}, {32768, 2}, {131072, 3}, {1 << 22, 3},
	}
	for _, c := range cases {
		if got := tokenBucket(c.tok); got != c.want {
			t.Errorf("tokenBucket(%d) = %d, want %d", c.tok, got, c.want)
		}
	}
	if bsBucket(1) != 0 || bsBucket(64) != 6 || bsBucket(100000) != 8 {
		t.Error("bsBucket mapping wrong")
	}
}

// The headline accuracy claim: solo-run prediction within ~10% max
// deviation (paper: 8.16% prefill, 8.84% decode).
func TestSoloPredictorAccuracy(t *testing.T) {
	e := New(gpu.A100(), 8, model.Llama70B())
	pre, dec := e.MaxDeviation()
	t.Logf("max deviation: prefill %.2f%%, decode %.2f%%", pre*100, dec*100)
	if pre > 0.12 {
		t.Errorf("prefill max deviation %.1f%% exceeds 12%%", pre*100)
	}
	if dec > 0.12 {
		t.Errorf("decode max deviation %.1f%% exceeds 12%%", dec*100)
	}
}

func TestEstimatorCached(t *testing.T) {
	a := New(gpu.A100(), 8, model.Llama8B())
	b := New(gpu.A100(), 8, model.Llama8B())
	if a != b {
		t.Fatal("estimator not cached per (spec, tp, arch)")
	}
}

func TestDecodePredictionMonotone(t *testing.T) {
	e := New(gpu.A100(), 8, model.Llama8B())
	small := e.DecodeSolo(32*1024, 32, 92)
	big := e.DecodeSolo(32*65536, 32, 92)
	if big <= small {
		t.Fatalf("decode latency must grow with context: %v vs %v", small, big)
	}
	starved := e.DecodeSolo(32*1024, 32, 12)
	if starved <= small {
		t.Fatalf("decode on 12 SMs (%v) must be slower than on 92 (%v)", starved, small)
	}
}

func TestPrefillPredictionMonotone(t *testing.T) {
	e := New(gpu.A100(), 8, model.Llama8B())
	small := e.PrefillPhase([]model.Seq{{New: 1024}}, 92)
	big := e.PrefillPhase([]model.Seq{{New: 8192}}, 92)
	if big <= small {
		t.Fatalf("prefill latency must grow with input: %v vs %v", small, big)
	}
}

// Figure 11's premise: the guard's slowdown factors are bounded (~≤1.3)
// and nontrivial somewhere in the grid.
func TestGuardBounds(t *testing.T) {
	e := New(gpu.A100(), 8, model.Llama70B())
	g := e.Guard()
	if g.Cells() == 0 {
		t.Fatal("guard has no profiled cells")
	}
	max := g.MaxFactor()
	t.Logf("guard: %d cells, max factor %.3f", g.Cells(), max)
	if max < 1.005 {
		t.Errorf("max slowdown %.3f suspiciously small — contention not exercised", max)
	}
	if max > 1.6 {
		t.Errorf("max slowdown %.3f exceeds the bounded-contention premise", max)
	}
}

func TestGuardFactorQueries(t *testing.T) {
	e := New(gpu.A100(), 8, model.Llama70B())
	g := e.Guard()
	f := g.Factor(8192, 8192, 32, 32*2048, 44)
	if f < 1 {
		t.Fatalf("factor %v below 1", f)
	}
	// Snapping: unprofiled SM counts map to the nearest config.
	f2 := g.Factor(8192, 8192, 32, 32*2048, 45)
	if f2 != f {
		t.Fatalf("snapped factor %v != profiled %v", f2, f)
	}
}

func TestGuardObserve(t *testing.T) {
	e := New(gpu.A100(), 8, model.Llama70B())
	g := e.Guard()
	before := g.Factor(2048, 2048, 4, 4*2048, 44)
	g.Observe(2048, 2048, 4, 4*2048, 44, before+0.5)
	after := g.Factor(2048, 2048, 4, 4*2048, 44)
	if after < before+0.5-1e-9 {
		t.Fatalf("Observe did not raise the cell: %v → %v", before, after)
	}
	// Observations below 1 are ignored.
	g.Observe(2048, 2048, 4, 4*2048, 44, 0.5)
	if g.Factor(2048, 2048, 4, 4*2048, 44) < after {
		t.Fatal("sub-1 observation lowered the guard")
	}
}

func TestDecodeWorstAboveSolo(t *testing.T) {
	e := New(gpu.A100(), 8, model.Llama70B())
	solo := e.DecodeSolo(32*8192, 32, 44)
	worst := e.DecodeWorst(32*8192, 32, 44, 8192, 32768)
	if worst < solo {
		t.Fatalf("worst-case %v below solo %v", worst, solo)
	}
}

func BenchmarkEstimatorQueries(b *testing.B) {
	e := New(gpu.A100(), 8, model.Llama8B())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DecodeWorst(32*4096, 32, 44, 2048, 8192)
	}
}
