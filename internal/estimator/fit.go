// Package estimator implements MuxWise's contention-tolerant estimator
// (§3.3): a solo-run latency predictor fitted offline per partition
// configuration (Eq. 1 for prefill, Eq. 2 for decode) and a contention
// guard built from grid-sampled co-run profiling that supplies the
// worst-case slowdown factor used for SLO guarantees.
package estimator

import "math"

// FitRelative fits θ minimising the *relative* residual Σ((xᵢθ−yᵢ)/yᵢ)²,
// which keeps the maximum percentage deviation small across latency
// scales spanning three orders of magnitude — the property the paper's
// predictor accuracy claims (≤8–9% max deviation) depend on.
func FitRelative(x [][]float64, y []float64) []float64 {
	wx := make([][]float64, 0, len(x))
	wy := make([]float64, 0, len(y))
	for i := range x {
		if y[i] <= 0 {
			continue
		}
		row := make([]float64, len(x[i]))
		for j := range x[i] {
			row[j] = x[i][j] / y[i]
		}
		wx = append(wx, row)
		wy = append(wy, 1)
	}
	return FitOLS(wx, wy)
}

// FitOLS solves min‖Xθ − y‖² by normal equations with Gaussian
// elimination. It returns the coefficient vector, or nil when the system
// is singular (degenerate sample sets).
func FitOLS(x [][]float64, y []float64) []float64 {
	if len(x) == 0 || len(x[0]) == 0 || len(x) != len(y) {
		return nil
	}
	k := len(x[0])
	// Normal equations: (XᵀX)θ = Xᵀy.
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
	}
	for r := range x {
		for i := 0; i < k; i++ {
			b[i] += x[r][i] * y[r]
			for j := 0; j < k; j++ {
				a[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	// Tiny ridge term for numerical robustness on collinear grids.
	for i := 0; i < k; i++ {
		a[i][i] *= 1 + 1e-9
		a[i][i] += 1e-12
	}
	return solve(a, b)
}

// solve performs in-place Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) []float64 {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-30 {
			return nil
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	out := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * out[c]
		}
		out[r] = s / a[r][r]
	}
	return out
}

// dot multiplies a feature row by coefficients.
func dot(features, theta []float64) float64 {
	var s float64
	for i := range features {
		s += features[i] * theta[i]
	}
	return s
}
