package estimator

import (
	"fmt"
	"math"
	"sync"

	"muxwise/internal/gpu"
	"muxwise/internal/model"
	"muxwise/internal/sim"
)

// Estimator combines the solo-run predictor with the contention guard for
// one (LLM, machine) pair — the paper's one-time offline profiling
// artefact (§3.3.2).
type Estimator struct {
	Spec gpu.Spec
	TP   int
	Arch model.Arch

	// Per partition-size latency models. Keys are decode/prefill SMs per
	// GPU; the full-device size is always present. Each model is the max
	// of a memory-regime and a compute-regime plane over the Eq. 1/2
	// features, fitted on samples labelled by which roofline side bound
	// them during profiling (real systems label with perf counters, as
	// in GPUlet/HSM).
	decodeTheta  map[int]planes
	prefillTheta map[int]planes

	guard *Guard
}

// planes is a max-of-two-planes latency model. Either side may be nil
// when profiling saw only one regime for the configuration.
type planes struct {
	mem, comp []float64
}

// predict evaluates the model on a feature row.
func (p planes) predict(features []float64) float64 {
	var m, c float64
	if p.mem != nil {
		m = dot(features, p.mem)
	}
	if p.comp != nil {
		c = dot(features, p.comp)
	}
	return math.Max(m, c)
}

// profileCache memoises offline profiling per (spec, tp, arch): repeated
// engine construction in goodput sweeps must not re-pay it, matching the
// paper's "one-time effort per LLM–machine pair". Entries hold a
// sync.Once so concurrent first users (parallel sweep probes) profile
// exactly once instead of racing through the grid side by side.
var profileCache sync.Map // key string → *cacheEntry

type cacheEntry struct {
	once sync.Once
	est  *Estimator
}

// New returns the estimator for the given deployment, running the
// offline profiling on first use. The returned estimator is shared and
// must be treated as read-only; engines that refine the contention
// guard online must work on a Fork.
func New(spec gpu.Spec, tp int, arch model.Arch) *Estimator {
	key := fmt.Sprintf("%s/%d/%s", spec.Name, tp, arch.Name)
	v, _ := profileCache.LoadOrStore(key, &cacheEntry{})
	ce := v.(*cacheEntry)
	ce.once.Do(func() {
		e := &Estimator{
			Spec: spec, TP: tp, Arch: arch,
			decodeTheta:  map[int]planes{},
			prefillTheta: map[int]planes{},
		}
		e.profileSolo()
		e.guard = profileGuard(spec, tp, arch, e)
		ce.est = e
	})
	if ce.est == nil {
		// A prior profiling attempt panicked past a recover; fail here,
		// at the source, instead of handing out a nil estimator.
		panic("estimator: offline profiling previously failed for " + key)
	}
	return ce.est
}

// Fork returns a per-run view of the estimator: the fitted latency
// models are shared read-only, but the contention guard is cloned so
// one run's online refinement never leaks into another. Concurrent
// sweep probes would otherwise race on the shared guard map and make
// results depend on goroutine interleaving.
func (e *Estimator) Fork() *Estimator {
	cp := *e
	cp.guard = e.guard.clone()
	return &cp
}

// Configs returns the candidate decode partition sizes plus the full
// device.
func (e *Estimator) Configs() []int {
	return append(e.Spec.PartitionSizes(), e.Spec.SMs)
}

// MeasureDecodeSolo runs one decode iteration solo on a fresh simulated
// device and returns its latency in seconds (including graph launch) —
// the probe the offline profiling and the motivation experiments share.
func MeasureDecodeSolo(spec gpu.Spec, tp int, arch model.Arch, sms, bs, ctxPerReq int) float64 {
	return measureDecode(spec, tp, arch, sms, bs, ctxPerReq)
}

// MeasurePrefillSolo runs a full layer-wise prefill phase solo and
// returns its latency in seconds.
func MeasurePrefillSolo(spec gpu.Spec, tp int, arch model.Arch, sms int, seqs []model.Seq) float64 {
	return measurePrefill(spec, tp, arch, sms, seqs)
}

// CoRunSlowdown measures the decode slowdown factor (co-run latency over
// solo latency) for one multiplexing configuration — the Fig. 11 probe.
func CoRunSlowdown(spec gpu.Spec, tp int, arch model.Arch, decSM, bs, dCtx, pNew, pReused int) float64 {
	solo := measureDecode(spec, tp, arch, decSM, bs, dCtx)
	co := measureDecodeCoRun(spec, tp, arch, decSM, spec.SMs-decSM, bs, dCtx, pNew, pReused)
	if solo <= 0 {
		return 1
	}
	f := co / solo
	if f < 1 {
		f = 1
	}
	return f
}

// measureDecode runs one decode iteration solo on a fresh simulated
// device and returns its latency in seconds (including graph launch).
func measureDecode(spec gpu.Spec, tp int, arch model.Arch, sms, bs, ctxPerReq int) float64 {
	s := sim.New()
	d := gpu.NewDevice(s, spec, tp, "profile")
	p := d.Partition(sms, "decode")
	ctxs := make([]int, bs)
	for i := range ctxs {
		ctxs[i] = ctxPerReq
	}
	c := arch.DecodeIter(ctxs, tp)
	var done sim.Time
	p.Launch(gpu.Kernel{
		Kind: gpu.Decode, FLOPs: c.FLOPs, Bytes: c.Bytes, CommBytes: c.CommBytes,
		Tokens: c.Tokens, Launch: spec.GraphLaunch,
	}, func() { done = s.Now() })
	s.Run()
	return done.Seconds()
}

// measurePrefill runs a full layer-wise prefill phase solo and returns
// its latency in seconds.
func measurePrefill(spec gpu.Spec, tp int, arch model.Arch, sms int, seqs []model.Seq) float64 {
	s := sim.New()
	d := gpu.NewDevice(s, spec, tp, "profile")
	p := d.Partition(sms, "prefill")
	layer := arch.PrefillLayer(seqs, tp, true)
	var done sim.Time
	for i := 0; i < arch.Layers; i++ {
		last := i == arch.Layers-1
		p.Launch(gpu.Kernel{
			Kind: gpu.Prefill, FLOPs: layer.FLOPs, Bytes: layer.Bytes,
			CommBytes: layer.CommBytes, Tokens: layer.Tokens, Launch: spec.LayerLaunch,
		}, func() {
			if last {
				done = s.Now()
			}
		})
	}
	s.Run()
	return done.Seconds()
}

// decodeFeatures builds the Eq. 2 feature row [Σr, bs, 1].
func decodeFeatures(totalCtx, bs int) []float64 {
	return []float64{float64(totalCtx), float64(bs), 1}
}

// prefillFeatures builds the Eq. 1 feature row [Σn², Σnᵢrᵢ, Σn, Σr, 1].
// (The Σr term is the cross term the launch-efficiency curve introduces;
// it vanishes on hardware where efficiency is flat.)
func prefillFeatures(seqs []model.Seq) []float64 {
	var n2, nr, n, r float64
	for _, s := range seqs {
		sn := float64(s.New)
		n2 += sn * sn
		nr += sn * float64(s.Reused+s.Prior)
		n += sn
		r += float64(s.Reused + s.Prior)
	}
	return []float64{n2, nr, n, r, 1}
}

// memoryBound reports which roofline side binds a kernel of the given
// cost on sms SMs — the label a real profiler reads from perf counters.
func (e *Estimator) memoryBound(c model.Cost, kind gpu.Kind, sms int) bool {
	frac := float64(sms) / float64(e.Spec.SMs)
	mfu := e.Spec.MFUDecode
	if kind == gpu.Prefill {
		smsTotal := frac * float64(e.Spec.SMs) * float64(e.TP)
		tok := math.Max(1, float64(c.Tokens))
		mfu = e.Spec.MFUPrefill * tok / (tok + e.Spec.SatTokensPerSM*smsTotal)
	}
	computeT := c.FLOPs / (frac * e.Spec.TensorFLOPS * float64(e.TP) * mfu)
	bw := e.Spec.HBMBandwidth * float64(e.TP)
	bwCap := math.Min(bw, frac/e.Spec.BWSaturationFrac*bw)
	memT := c.Bytes / bwCap
	return memT >= computeT
}

// fitRegimes fits the memory/compute planes from labelled samples. A
// regime seen fewer than 6 times borrows the pooled fit.
func fitRegimes(x [][]float64, y []float64, isMem []bool) planes {
	var mx, cx [][]float64
	var my, cy []float64
	for i := range x {
		if isMem[i] {
			mx = append(mx, x[i])
			my = append(my, y[i])
		} else {
			cx = append(cx, x[i])
			cy = append(cy, y[i])
		}
	}
	pooled := FitRelative(x, y)
	p := planes{mem: pooled, comp: pooled}
	if len(mx) >= 6 {
		if th := FitRelative(mx, my); th != nil {
			p.mem = th
		}
	}
	if len(cx) >= 6 {
		if th := FitRelative(cx, cy); th != nil {
			p.comp = th
		}
	}
	return p
}

// profileSolo fits the Eq. 1/2 models per partition configuration.
func (e *Estimator) profileSolo() {
	bss := []int{1, 2, 4, 8, 16, 32, 64, 128, 192, 256}
	ctxs := []int{512, 2048, 8192, 32768, 131072}
	news := []int{256, 512, 2048, 8192, 32768}
	reuses := []int{0, 2048, 8192, 32768, 131072}

	for _, sms := range e.Configs() {
		var dx [][]float64
		var dy []float64
		var dm []bool
		for _, bs := range bss {
			for _, ctx := range ctxs {
				lat := measureDecode(e.Spec, e.TP, e.Arch, sms, bs, ctx)
				dx = append(dx, decodeFeatures(bs*ctx, bs))
				dy = append(dy, lat)
				dctxs := make([]int, bs)
				for i := range dctxs {
					dctxs[i] = ctx
				}
				dm = append(dm, e.memoryBound(e.Arch.DecodeIter(dctxs, e.TP), gpu.Decode, sms))
			}
		}
		e.decodeTheta[sms] = fitRegimes(dx, dy, dm)

		var px [][]float64
		var py []float64
		var pm []bool
		for _, n := range news {
			for _, r := range reuses {
				if n+r > 160000 {
					continue
				}
				seqs := []model.Seq{{New: n, Reused: r}}
				lat := measurePrefill(e.Spec, e.TP, e.Arch, sms, seqs)
				px = append(px, prefillFeatures(seqs))
				py = append(py, lat)
				pm = append(pm, e.memoryBound(e.Arch.PrefillLayer(seqs, e.TP, true), gpu.Prefill, sms))
			}
		}
		e.prefillTheta[sms] = fitRegimes(px, py, pm)
	}
}

// nearestConfig snaps an SM count to a profiled configuration.
func (e *Estimator) nearestConfig(m map[int]planes, sms int) planes {
	if th, ok := m[sms]; ok {
		return th
	}
	best, bestDiff := 0, math.MaxInt
	//muxvet:ordered equal distances tie-break to the smaller SM count, so the scan is order-independent
	for k := range m {
		d := k - sms
		if d < 0 {
			d = -d
		}
		if d < bestDiff || (d == bestDiff && k < best) {
			best, bestDiff = k, d
		}
	}
	return m[best]
}

// DecodeSolo predicts the solo-run latency of a decode iteration with the
// given total context, batch size and decode partition size.
func (e *Estimator) DecodeSolo(totalCtx, bs, sms int) sim.Time {
	lat := e.nearestConfig(e.decodeTheta, sms).predict(decodeFeatures(totalCtx, bs))
	if lat < 0 {
		lat = 0
	}
	return sim.FromSeconds(lat)
}

// PrefillPhase predicts the solo-run latency of a full layer-wise prefill
// phase for the batch on the given prefill partition size.
func (e *Estimator) PrefillPhase(seqs []model.Seq, sms int) sim.Time {
	lat := e.nearestConfig(e.prefillTheta, sms).predict(prefillFeatures(seqs))
	if lat < 0 {
		lat = 0
	}
	return sim.FromSeconds(lat)
}

// DecodeWorst returns the worst-case decode latency under contention with
// a prefill batch of the given shape: solo prediction times the guard's
// maximum slowdown factor for the grid cell (§3.3.2).
func (e *Estimator) DecodeWorst(totalCtx, bs, sms, prefillNew, prefillReused int) sim.Time {
	solo := e.DecodeSolo(totalCtx, bs, sms)
	f := e.guard.Factor(prefillNew, prefillReused, bs, totalCtx, sms)
	return sim.Time(float64(solo) * f)
}

// Guard exposes the contention guard (for runtime refinement).
func (e *Estimator) Guard() *Guard { return e.guard }

// ObserveSlowdown refines the contention guard with a runtime slowdown
// measurement (actual / predicted-solo) — the cost-model seam's
// online-refinement hook.
func (e *Estimator) ObserveSlowdown(prefillNew, prefillReused, bs, totalCtx, sms int, slowdown float64) {
	e.guard.Observe(prefillNew, prefillReused, bs, totalCtx, sms, slowdown)
}

// MaxDeviation evaluates predictor accuracy across a validation grid,
// returning the maximum relative deviation for prefill and decode — the
// quantities the paper reports as 8.16% and 8.84%.
func (e *Estimator) MaxDeviation() (prefill, decode float64) {
	for _, sms := range []int{e.Configs()[0], e.Spec.SMs} {
		for _, bs := range []int{3, 12, 48, 160} {
			for _, ctx := range []int{1024, 12288, 65536} {
				actual := measureDecode(e.Spec, e.TP, e.Arch, sms, bs, ctx)
				pred := e.DecodeSolo(bs*ctx, bs, sms).Seconds()
				if dev := math.Abs(pred-actual) / actual; dev > decode {
					decode = dev
				}
			}
		}
		for _, n := range []int{384, 3000, 12000} {
			for _, r := range []int{0, 5000, 60000} {
				seqs := []model.Seq{{New: n, Reused: r}}
				actual := measurePrefill(e.Spec, e.TP, e.Arch, sms, seqs)
				pred := e.PrefillPhase(seqs, sms).Seconds()
				if dev := math.Abs(pred-actual) / actual; dev > prefill {
					prefill = dev
				}
			}
		}
	}
	return prefill, decode
}
