// Package core implements MuxWise: intra-GPU prefill-decode multiplexing
// (§3). The engine couples three modules:
//
//   - the bubble-less multiplex engine (§3.2): prefill executes layer by
//     layer on its own SM partition while decode iterations run as CUDA
//     graphs on the complementary partition; query-based synchronization
//     merges finished prefills into the decode batch at iteration
//     boundaries without stalling either stream, and layer granularity
//     enables preemption of ultra-long prefills;
//   - the contention-tolerant estimator (§3.3), supplying worst-case
//     decode latencies (solo prediction × contention-guard factor);
//   - the SLO-aware dispatcher (§3.4): at every decode iteration boundary
//     and prefill batch completion it reserves the best-fit (smallest)
//     decode partition whose worst-case TBT meets the SLO and gives all
//     remaining SMs to prefill.
//
// Options toggle the bubble-less mechanisms for the Fig. 19/20 ablations.
package core

import (
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/obs"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Options select engine variants for ablation studies.
type Options struct {
	// LayerWise executes prefill as per-layer piecewise CUDA graphs
	// (§3.2.3). When false, prefill launches as one monolithic phase
	// whose host launch blocks other launches and which cannot be
	// preempted or reclaimed.
	LayerWise bool
	// QuerySync merges finished prefills at decode iteration boundaries
	// by polling CUDA events. When false, the next decode iteration
	// blocks until the in-flight prefill phase completes.
	QuerySync bool
	// Preemption lets a short prefill batch preempt an ultra-long one at
	// a layer boundary when queueing would violate its TTFT SLO (§3.4.2).
	Preemption bool
	// NoGuard disables the contention guard: the dispatcher sizes the
	// decode partition from solo-run predictions alone, risking SLO
	// violations from bandwidth contention (§3.3's motivation).
	NoGuard bool
}

// DefaultOptions enables every mechanism, the shipping configuration.
func DefaultOptions() Options {
	return Options{LayerWise: true, QuerySync: true, Preemption: true}
}

// maxPrefillBatchTokens caps the new tokens bundled into one prefill
// batch, mirroring SGLang's max prefill budget.
const maxPrefillBatchTokens = 16384

// prefillJob is one prefill batch progressing layer by layer. It carries
// its engine so per-layer completion callbacks can be scheduled through
// the closure-free gpu.LaunchFn with the job itself as the argument.
type prefillJob struct {
	eng  *Engine
	reqs []*serve.Running
	seqs []model.Seq

	layersDone  int
	layersInAir int
	isPreemptor bool
	arrival     sim.Time
}

// newTokens returns the batch's total new context tokens.
func (j *prefillJob) newTokens() int {
	t := 0
	for _, s := range j.seqs {
		t += s.New
	}
	return t
}

// reusedTokens returns the batch's total reused context tokens.
func (j *prefillJob) reusedTokens() int {
	t := 0
	for _, s := range j.seqs {
		t += s.Reused
	}
	return t
}

// Engine is the MuxWise serving engine for one tensor-parallel instance.
type Engine struct {
	env  *serve.Env
	opts Options

	dev      *gpu.Device
	decodeP  *gpu.Partition
	prefillP *gpu.Partition
	pool     *kvcache.Pool
	est      serve.CostModel

	decode          serve.Batch
	decodeRunning   bool
	decodeIterStart sim.Time
	decodeSolo      sim.Time

	active  *prefillJob   // job whose layers are executing
	queue   []*prefillJob // admitted jobs waiting for the prefill stream
	merging []*prefillJob // prefill-complete jobs awaiting a decode boundary
	pending []*workload.Request

	timeline    metrics.Timeline
	configs     []int
	curConfig   int
	preemptions int

	// Per-iteration scratch, reused so the decode hot loop does not
	// allocate.
	ctxScratch []int
	finScratch []*serve.Running

	// prefillSpan tracks whether a flight-recorder span is open for the
	// active prefill job (invariant while tracing: open ⇔ active != nil).
	prefillSpan bool
}

// track names the engine's flight-recorder track for one stream.
func (e *Engine) track(stream string) string { return e.env.Label + "/" + stream }

// Preemptions returns how many prefill batches preempted another.
func (e *Engine) Preemptions() int { return e.preemptions }

// New builds a MuxWise engine with default options.
func New(env *serve.Env) serve.Engine { return NewWithOptions(env, DefaultOptions()) }

// NewWithOptions builds a MuxWise engine with explicit ablation options.
func NewWithOptions(env *serve.Env, opts Options) *Engine {
	dev := gpu.NewDevice(env.Sim, env.Spec, env.GPUs, "muxwise")
	e := &Engine{
		env:  env,
		opts: opts,
		dev:  dev,
		pool: kvcache.New(env.PoolTokens(env.GPUs), kvcache.DefaultPageTokens),
		// The fitted default arrives forked: this engine refines the
		// contention guard online, and concurrent sweep probes must not
		// share mutable guard state.
		est: env.Cost(),
	}
	e.configs = env.Spec.PartitionSizes()
	e.curConfig = env.Spec.SMs
	e.decodeP = dev.Partition(env.Spec.SMs, "decode")
	e.prefillP = dev.Partition(0, "prefill")
	e.timeline.Record(0, env.Spec.SMs, 0)
	return e
}

// Name implements serve.Engine.
func (e *Engine) Name() string {
	switch {
	case !e.opts.LayerWise && !e.opts.QuerySync:
		return "MuxWise w/o B&Q"
	case !e.opts.LayerWise:
		return "MuxWise w/o B"
	case !e.opts.Preemption:
		return "MuxWise w/o P"
	default:
		return "MuxWise"
	}
}

// Timeline implements serve.Engine.
func (e *Engine) Timeline() *metrics.Timeline { return &e.timeline }

// Devices implements serve.Engine.
func (e *Engine) Devices() []*gpu.Device { return []*gpu.Device{e.dev} }

// Pool exposes the shared KV pool (tests, cache statistics).
func (e *Engine) Pool() *kvcache.Pool { return e.pool }

// CachePools implements serve.PoolReporter.
func (e *Engine) CachePools() []*kvcache.Pool { return []*kvcache.Pool{e.pool} }

// DecodePartition exposes the decode green context for bubble accounting.
func (e *Engine) DecodePartition() *gpu.Partition { return e.decodeP }

// PrefillPartition exposes the prefill green context.
func (e *Engine) PrefillPartition() *gpu.Partition { return e.prefillP }

// Submit implements serve.Engine.
func (e *Engine) Submit(r *workload.Request) {
	e.pending = append(e.pending, r)
	e.admitPending()
	e.schedule()
}

// hasPrefillWork reports whether any prefill batch needs compute.
func (e *Engine) hasPrefillWork() bool { return e.active != nil || len(e.queue) > 0 }

// admitPending admits as many queued arrivals as the KV pool allows,
// forming prefill jobs.
func (e *Engine) admitPending() {
	for len(e.pending) > 0 {
		if e.inflight() >= e.env.MaxBatch {
			return
		}
		r := e.pending[0]
		run := serve.Admit(e.pool, r)
		if run == nil {
			return // pool full; retry on completion
		}
		e.env.Admitted(r.ID)
		e.pending = e.pending[1:]
		e.enqueue(run)
	}
}

// inflight counts requests holding batch slots.
func (e *Engine) inflight() int {
	n := e.decode.Size()
	if e.active != nil {
		n += len(e.active.reqs)
	}
	for _, j := range e.queue {
		n += len(j.reqs)
	}
	for _, j := range e.merging {
		n += len(j.reqs)
	}
	return n
}

// enqueue wraps an admitted request into a prefill job, batching it with
// the most recent waiting job when the token budget allows, and applies
// the preemption policy.
func (e *Engine) enqueue(run *serve.Running) {
	newTok := run.R.InputTokens - run.CachedTokens
	if newTok < 1 {
		newTok = 1
	}
	seq := model.Seq{New: newTok, Reused: run.CachedTokens}
	if n := len(e.queue); n > 0 {
		last := e.queue[n-1]
		if !last.isPreemptor && last.newTokens()+seq.New <= maxPrefillBatchTokens {
			last.reqs = append(last.reqs, run)
			last.seqs = append(last.seqs, seq)
			return
		}
	}
	job := &prefillJob{
		eng:     e,
		reqs:    []*serve.Running{run},
		seqs:    []model.Seq{seq},
		arrival: e.env.Sim.Now(),
	}
	e.queue = append(e.queue, job)
	e.maybePreempt(job)
}

// deadline returns a prefill batch's TTFT deadline: the SLO target plus a
// slack proportional to the batch's own full-device service demand, so an
// 80K-token prefill is not judged by a chatbot deadline (the per-token
// TTFT view of §4.4.3).
func (e *Engine) deadline(j *prefillJob) sim.Time {
	own := e.est.PrefillPhase(j.seqs, e.env.Spec.SMs)
	return j.arrival + e.env.SLO.TTFT + sim.Time(1.2*float64(own))
}

// maybePreempt moves job to the head of the prefill stream if waiting
// would violate its TTFT deadline, the active job tolerates the pause,
// and no preemption is already in force (§3.4.2, non-recursive).
func (e *Engine) maybePreempt(job *prefillJob) {
	if !e.opts.Preemption || !e.opts.LayerWise {
		return
	}
	a := e.active
	if a == nil || a.isPreemptor || len(e.queue) == 0 || e.queue[len(e.queue)-1] != job {
		return
	}
	if e.env.SLO.TTFT <= 0 {
		return
	}
	now := e.env.Sim.Now()
	prefSMs := e.prefillSMs()
	if prefSMs <= 0 {
		prefSMs = e.env.Spec.SMs - e.configs[len(e.configs)/2]
	}
	// Wait if not preempting: remaining layers of the active job plus
	// everything queued ahead.
	rem := e.est.PrefillPhase(a.seqs, prefSMs)
	wait := sim.Time(float64(rem) * float64(e.env.Arch.Layers-a.layersDone) / float64(e.env.Arch.Layers))
	for _, q := range e.queue[:len(e.queue)-1] {
		wait += e.est.PrefillPhase(q.seqs, prefSMs)
	}
	own := e.est.PrefillPhase(job.seqs, prefSMs)
	if now+wait+own <= e.deadline(job) {
		return // queueing meets the deadline; no preemption needed
	}
	// The pause must be tolerable for the active job: either it still
	// meets its own deadline, or the preemptor is short relative to the
	// active job's remaining work (the "short preempts long" pattern of
	// §3.4.2 — a long job is barely delayed by a short one, while the
	// converse would wreck the short request's TTFT).
	aRem := sim.Time(float64(rem) * float64(e.env.Arch.Layers-a.layersDone) / float64(e.env.Arch.Layers))
	meetsOwn := now+own+aRem <= e.deadline(a)
	short := own*2 <= aRem
	if !meetsOwn && !short {
		return
	}
	e.preemptions++
	job.isPreemptor = true
	// Pause the active job: it re-enters the queue right behind the
	// preemptor and later resumes from layersDone.
	e.queue = e.queue[:len(e.queue)-1]
	e.queue = append([]*prefillJob{job, a}, e.queue...)
	e.active = nil // in-air layers drain, then the preemptor runs
	if e.prefillSpan {
		e.prefillSpan = false
		e.env.Trace.End(now, e.track("prefill"), "prefill", traceArg("outcome", "preempted"))
	}
}

// traceArg builds one flight-recorder annotation; a tiny alias so emit
// sites stay on one line.
func traceArg(k string, v any) obs.Arg { return obs.Arg{Key: k, Val: v} }

// prefillSMs returns the SMs the prefill partition would own under the
// current split.
func (e *Engine) prefillSMs() int {
	if e.decode.Size() == 0 && !e.decodeRunning {
		return e.env.Spec.SMs
	}
	return e.env.Spec.SMs - e.curConfig
}

// schedule is the dispatcher entry point, invoked at arrivals, decode
// iteration boundaries, and prefill completions.
func (e *Engine) schedule() {
	e.startDecode()
	e.pumpPrefill()
}

// chooseConfig picks the smallest decode partition whose worst-case TBT
// meets the SLO given the co-running prefill shape.
func (e *Engine) chooseConfig() int {
	if !e.hasPrefillWork() {
		return e.env.Spec.SMs // no prefill: decode owns the device
	}
	bs := e.decode.Size()
	totalCtx := e.decode.TotalCtx()
	pNew, pReused := 0, 0
	if e.active != nil {
		pNew, pReused = e.active.newTokens(), e.active.reusedTokens()
	} else if len(e.queue) > 0 {
		pNew, pReused = e.queue[0].newTokens(), e.queue[0].reusedTokens()
	}
	margin := e.env.Spec.GraphLaunch + sim.Millisecond
	for _, cfg := range e.configs {
		worst := e.est.DecodeWorst(totalCtx, bs, cfg, pNew, pReused)
		if e.opts.NoGuard {
			worst = e.est.DecodeSolo(totalCtx, bs, cfg)
		}
		if worst+margin <= e.env.SLO.TBT {
			return cfg
		}
	}
	return e.configs[len(e.configs)-1]
}

// reconfigure applies a partition split, recording the timeline. Sizes
// take effect for kernels that begin executing afterwards.
func (e *Engine) reconfigure(decodeSMs int) {
	prefillSMs := e.env.Spec.SMs - decodeSMs
	if e.env.Trace != nil && decodeSMs != e.curConfig {
		e.env.Trace.Counter(e.env.Sim.Now(), e.track("decode"), "sm-partition",
			traceArg("decode", decodeSMs), traceArg("prefill", prefillSMs))
	}
	e.curConfig = decodeSMs
	e.decodeP.SetSMs(decodeSMs)
	e.prefillP.SetSMs(prefillSMs)
	e.timeline.Record(e.env.Sim.Now(), decodeSMs, prefillSMs)
}

// startDecode launches the next decode iteration if one is due.
func (e *Engine) startDecode() {
	if e.decodeRunning || e.decode.Size() == 0 {
		return
	}
	// Without query-based synchronization the next iteration blocks
	// until the in-flight prefill phase completes (§3.2.3): the merge
	// requires a synchronous join with the prefill stream.
	if !e.opts.QuerySync && e.active != nil {
		return // resumed by prefill completion
	}
	e.reconfigure(e.chooseConfig())

	e.ctxScratch = e.decode.CtxsInto(e.ctxScratch)
	cost := e.env.Arch.DecodeIter(e.ctxScratch, e.env.GPUs)
	e.decodeRunning = true
	e.decodeIterStart = e.env.Sim.Now()
	if e.env.Trace != nil {
		e.env.Trace.Begin(e.decodeIterStart, e.track("decode"), "decode-iter",
			traceArg("bs", e.decode.Size()), traceArg("ctx", e.decode.TotalCtx()),
			traceArg("sms", e.curConfig))
	}
	e.decodeSolo = e.est.DecodeSolo(e.decode.TotalCtx(), e.decode.Size(), e.curConfig)
	e.decodeP.LaunchFn(gpu.Kernel{
		Label: "decode", Kind: gpu.Decode,
		FLOPs: cost.FLOPs, Bytes: cost.Bytes, CommBytes: cost.CommBytes,
		Tokens: cost.Tokens, Launch: e.env.Spec.GraphLaunch,
	}, decodeDone, e)
}

// decodeDone is the bound completion callback for decode iterations.
func decodeDone(arg any) { arg.(*Engine).onDecodeDone() }

// onDecodeDone ends one decode iteration: emit tokens, refine the guard,
// merge finished prefills (query sync), and continue.
func (e *Engine) onDecodeDone() {
	now := e.env.Sim.Now()
	e.decodeRunning = false
	if e.env.Trace != nil {
		e.env.Trace.End(now, e.track("decode"), "decode-iter")
	}

	// Runtime refinement of the contention guard (§3.3.2): observed
	// iteration latency over predicted solo.
	if e.active != nil && e.decodeSolo > 0 {
		actual := now - e.decodeIterStart - e.env.Spec.GraphLaunch
		slow := float64(actual) / float64(e.decodeSolo)
		e.est.ObserveSlowdown(e.active.newTokens(), e.active.reusedTokens(),
			e.decode.Size(), e.decode.TotalCtx(), e.curConfig, slow)
	}

	e.finScratch = e.decode.StepInto(now, e.env.Rec, e.finScratch)
	finished := e.finScratch
	for _, r := range finished {
		r.Complete(e.pool)
	}
	// Query-based synchronization: fold in prefills that completed while
	// the iteration ran.
	for _, j := range e.merging {
		e.mergeJob(j)
	}
	e.merging = e.merging[:0]
	if len(finished) > 0 {
		e.admitPending()
	}
	e.schedule()
}

// mergeJob emits first tokens for the job's requests and moves the
// still-generating ones into the decode batch.
func (e *Engine) mergeJob(j *prefillJob) {
	now := e.env.Sim.Now()
	for i, r := range j.reqs {
		e.env.Rec.PrefillDone(j.seqs[i].New)
		e.env.Rec.Token(r.R.ID, now) // prefill produces the first token
		r.Generated = 1
		if r.DecodeDone() {
			e.env.Rec.Finish(r.R.ID, now)
			r.Complete(e.pool)
			continue
		}
		e.decode.Add(r)
	}
	e.admitPending()
}

// pumpPrefill keeps the prefill stream fed with layer launches.
func (e *Engine) pumpPrefill() {
	for e.active == nil && len(e.queue) > 0 {
		j := e.queue[0]
		e.queue = e.queue[1:]
		if j.layersDone >= e.env.Arch.Layers {
			continue // completed while preempted; finishPrefill owns it
		}
		e.active = j
	}
	j := e.active
	if j == nil {
		return
	}
	if e.env.Trace != nil && !e.prefillSpan {
		e.prefillSpan = true
		e.env.Trace.Begin(e.env.Sim.Now(), e.track("prefill"), "prefill",
			traceArg("reqs", len(j.reqs)), traceArg("new_tokens", j.newTokens()),
			traceArg("reused_tokens", j.reusedTokens()), traceArg("preemptor", j.isPreemptor))
	}
	// The prefill partition only has SMs after a reconfiguration. It
	// takes the whole device when decode is idle — or when decode is
	// deliberately blocked on the prefill phase (the w/o query-sync
	// ablation serializes the phases, so prefill must not starve).
	if !e.decodeRunning && (e.decode.Size() == 0 || !e.opts.QuerySync) {
		e.reconfigure(0)
	}
	if e.prefillP.SMs() <= 0 {
		return // wait for the next decode boundary to obtain a share
	}
	if !e.opts.LayerWise {
		e.launchWholePhase(j)
		return
	}
	// Target in-flight layers: enough to cover one decode iteration
	// (N_PL = ceil(T_d·N_T / T_P), §3.4.2), at least 2 for pipelining.
	nTarget := 2
	if e.decode.Size() > 0 {
		td := e.est.DecodeSolo(e.decode.TotalCtx(), e.decode.Size(), e.curConfig)
		tp := e.est.PrefillPhase(j.seqs, e.prefillP.SMs())
		if tp > 0 {
			n := int(float64(td)*float64(e.env.Arch.Layers)/float64(tp)) + 1
			if n > nTarget {
				nTarget = n
			}
		}
	}
	for j.layersInAir < nTarget && j.layersDone+j.layersInAir < e.env.Arch.Layers {
		e.launchLayer(j)
	}
}

// launchLayer issues one prefill layer kernel.
func (e *Engine) launchLayer(j *prefillJob) {
	cost := e.env.Arch.PrefillLayer(j.seqs, e.env.GPUs, true)
	j.layersInAir++
	e.prefillP.LaunchFn(gpu.Kernel{
		Label: "prefill-layer", Kind: gpu.Prefill,
		FLOPs: cost.FLOPs, Bytes: cost.Bytes, CommBytes: cost.CommBytes,
		Tokens: cost.Tokens, Launch: e.env.Spec.LayerLaunch,
	}, layerDone, j)
}

// layerDone is the bound completion callback for prefill layer kernels.
func layerDone(arg any) {
	j := arg.(*prefillJob)
	j.eng.onLayerDone(j)
}

// launchWholePhase issues a single monolithic prefill kernel (the
// non-layer-wise ablation). Its host launch costs Layers·LayerLaunch and
// blocks every later launch behind it.
func (e *Engine) launchWholePhase(j *prefillJob) {
	if j.layersInAir > 0 {
		return
	}
	phase := e.env.Arch.PrefillPhase(j.seqs, e.env.GPUs)
	j.layersInAir = e.env.Arch.Layers
	e.prefillP.LaunchFn(gpu.Kernel{
		Label: "prefill-phase", Kind: gpu.Prefill,
		FLOPs: phase.FLOPs, Bytes: phase.Bytes, CommBytes: phase.CommBytes,
		Tokens: phase.Tokens,
		Launch: sim.Time(e.env.Arch.Layers) * e.env.Spec.LayerLaunch,
	}, wholePhaseDone, j)
}

// wholePhaseDone is the bound completion callback for monolithic prefill
// phases (the non-layer-wise ablation).
func wholePhaseDone(arg any) {
	j := arg.(*prefillJob)
	j.layersInAir = 0
	j.layersDone = j.eng.env.Arch.Layers
	j.eng.finishPrefill(j)
}

// onLayerDone advances a job by one layer.
func (e *Engine) onLayerDone(j *prefillJob) {
	j.layersInAir--
	j.layersDone++
	if j.layersDone >= e.env.Arch.Layers {
		e.finishPrefill(j)
		return
	}
	e.pumpPrefill()
}

// finishPrefill completes a prefill batch: merge immediately when the
// decode stream is idle, otherwise wait for the iteration boundary. The
// job may still sit in the queue when it completes while preempted (its
// in-flight layers drained after it was paused) — it must leave the
// queue too, or a finished zombie would later occupy the active slot.
func (e *Engine) finishPrefill(j *prefillJob) {
	if e.active == j {
		e.active = nil
		if e.prefillSpan {
			e.prefillSpan = false
			e.env.Trace.End(e.env.Sim.Now(), e.track("prefill"), "prefill",
				traceArg("outcome", "done"))
		}
	}
	for i, q := range e.queue {
		if q == j {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	if e.decodeRunning {
		e.merging = append(e.merging, j)
		e.pumpPrefill() // next job can use the prefill partition meanwhile
		return
	}
	e.mergeJob(j)
	e.schedule()
}
