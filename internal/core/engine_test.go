package core

import (
	"testing"

	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

func cfg8B() serve.Config {
	return serve.Config{
		Spec: gpu.A100(), GPUs: 8, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: 500 * sim.Millisecond, TBT: 50 * sim.Millisecond},
	}
}

func cfg70B() serve.Config {
	return serve.Config{
		Spec: gpu.A100(), GPUs: 8, Arch: model.Llama70B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 100 * sim.Millisecond},
	}
}

func pages(stream uint64, n int) []kvcache.PageID {
	out := make([]kvcache.PageID, n)
	for i := range out {
		out[i] = kvcache.PageID(stream<<32 | uint64(i))
	}
	return out
}

func TestSingleRequestLifecycle(t *testing.T) {
	tr := &workload.Trace{Name: "one"}
	tr.Requests = append(tr.Requests, &workload.Request{
		ID: 0, Session: 0, Arrival: 0,
		InputTokens: 1000, OutputTokens: 20,
		Pages:    pages(1, 63),
		AllPages: pages(1, 64),
	})
	res := serve.Run(New, cfg8B(), tr)
	s := res.Summary
	if s.Finished != 1 {
		t.Fatalf("finished = %d, want 1", s.Finished)
	}
	if s.TTFT.Avg <= 0 || s.TTFT.Avg > 1 {
		t.Fatalf("TTFT = %.3fs implausible", s.TTFT.Avg)
	}
	if s.TBT.N != 19 {
		t.Fatalf("TBT samples = %d, want 19 (20 tokens)", s.TBT.N)
	}
	if s.Unstable {
		t.Fatal("single request run unstable")
	}
}

func TestShareGPTLoadMeetsSLOs(t *testing.T) {
	tr := workload.ShareGPT(1, 300).WithPoissonArrivals(1, 8)
	res := serve.Run(New, cfg8B(), tr)
	s := res.Summary
	if s.Unstable {
		t.Fatalf("unstable at moderate load: finished %d/%d", s.Finished, s.Requests)
	}
	if att := res.Rec.TBTAttainment(50 * sim.Millisecond); att < 0.99 {
		t.Fatalf("TBT attainment %.3f below 99%% (p99 TBT %.1fms)", att, s.TBT.P99*1e3)
	}
	if s.TTFT.P99 > 5 {
		t.Fatalf("p99 TTFT %.2fs implausible at moderate load", s.TTFT.P99)
	}
}

func TestDecodeSLOUnderLongPrefills(t *testing.T) {
	// LooGLE: ultra-long inputs. Decode TBT must hold while 30K-token
	// prefills multiplex — the paradigm's core claim.
	tr := workload.LooGLE(2, 40).WithPoissonArrivals(2, 0.4)
	res := serve.Run(New, cfg70B(), tr)
	if att := res.Rec.TBTAttainment(100 * sim.Millisecond); att < 0.98 {
		t.Fatalf("TBT attainment %.3f under long prefills (p99 %.1fms)",
			att, res.Summary.TBT.P99*1e3)
	}
}

func TestMultiTurnCacheReuse(t *testing.T) {
	tr := workload.Conversation(3, 60).WithPoissonArrivals(3, 2)
	s := sim.New()
	rec := metrics.NewRecorder()
	env := &serve.Env{
		Sim: s, Spec: gpu.A100(), GPUs: 8, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: 500 * sim.Millisecond, TBT: 50 * sim.Millisecond},
		Rec: rec, ReserveFrac: 0.1, MaxBatch: 256,
	}
	eng := NewWithOptions(env, DefaultOptions())
	for _, r := range tr.Requests {
		r := r
		rec.Arrive(r.ID, r.Arrival, r.InputTokens)
		s.At(r.Arrival, func() { eng.Submit(r) })
	}
	s.Run()
	hr := eng.Pool().Stats().HitRate()
	if hr < 0.25 {
		t.Fatalf("multi-turn cache hit rate %.3f, want ≥0.25", hr)
	}
	sum := rec.Summarize("muxwise", s.Now())
	if sum.Finished != sum.Requests {
		t.Fatalf("finished %d/%d", sum.Finished, sum.Requests)
	}
}

func TestPartitionTimelineRecorded(t *testing.T) {
	tr := workload.ToolAgent(4, 40).WithPoissonArrivals(4, 2)
	res := serve.Run(New, cfg8B(), tr)
	if res.Timeline.Changes() < 3 {
		t.Fatalf("timeline changes = %d, want dynamic repartitioning", res.Timeline.Changes())
	}
	if res.Timeline.DistinctConfigs() < 2 {
		t.Fatalf("distinct configs = %d, want ≥2", res.Timeline.DistinctConfigs())
	}
}

func TestAblationOrdering(t *testing.T) {
	// Fig. 19 mechanism check: disabling query-based synchronization
	// serializes decode behind whole prefill phases, so the worst TBT
	// stall grows to roughly a prefill-phase length, and every variant
	// must still finish its work.
	run := func(o Options) metrics.Summary {
		f := func(env *serve.Env) serve.Engine { return NewWithOptions(env, o) }
		tr := workload.ToolAgent(5, 60).WithPoissonArrivals(5, 2.5)
		res := serve.Run(f, cfg8B(), tr)
		if res.Summary.Unstable {
			t.Fatalf("%s unstable", res.Summary.Name)
		}
		return res.Summary
	}
	full := run(DefaultOptions())
	noB := run(Options{LayerWise: false, QuerySync: true, Preemption: false})
	noBQ := run(Options{LayerWise: false, QuerySync: false, Preemption: false})
	t.Logf("max TBT: full=%.1fms w/oB=%.1fms w/oB&Q=%.1fms",
		full.TBT.Max*1e3, noB.TBT.Max*1e3, noBQ.TBT.Max*1e3)
	if !(noBQ.TBT.Max > noB.TBT.Max*2) {
		t.Errorf("w/o B&Q max stall %.1fms should dwarf w/o B %.1fms",
			noBQ.TBT.Max*1e3, noB.TBT.Max*1e3)
	}
	if full.TBT.Max > noBQ.TBT.Max {
		t.Errorf("full MuxWise max TBT %.1fms worse than w/o B&Q %.1fms",
			full.TBT.Max*1e3, noBQ.TBT.Max*1e3)
	}
}

func TestPreemptionHelpsShortRequests(t *testing.T) {
	// Fig. 20 mechanism: short ShareGPT requests behind LooGLE monsters.
	mix := workload.Mix("mix",
		workload.ShareGPT(6, 60).WithPoissonArrivals(6, 0.25),
		workload.LooGLE(7, 60).WithPoissonArrivals(7, 0.25))
	run := func(o Options) float64 {
		f := func(env *serve.Env) serve.Engine { return NewWithOptions(env, o) }
		res := serve.Run(f, cfg70B(), mix)
		return res.Summary.TTFTPerToken.P99
	}
	with := run(DefaultOptions())
	without := run(Options{LayerWise: true, QuerySync: true, Preemption: false})
	t.Logf("p99 TTFT/token: with=%.3gms without=%.3gms", with*1e3, without*1e3)
	if with*1.5 > without {
		t.Errorf("preemption should improve p99 TTFT/token ≥1.5×: %.3g vs %.3g", with, without)
	}
}

func TestDeterminism(t *testing.T) {
	tr1 := workload.ShareGPT(8, 100).WithPoissonArrivals(8, 5)
	tr2 := workload.ShareGPT(8, 100).WithPoissonArrivals(8, 5)
	a := serve.Run(New, cfg8B(), tr1).Summary
	b := serve.Run(New, cfg8B(), tr2).Summary
	if a.TTFT.P99 != b.TTFT.P99 || a.TBT.P99 != b.TBT.P99 || a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a.TTFT, b.TTFT)
	}
}

func TestPoolBackpressure(t *testing.T) {
	// A pool-sized flood must queue, not crash, and still finish.
	tr := workload.LooGLE(9, 30).WithPoissonArrivals(9, 3)
	res := serve.Run(New, cfg70B(), tr)
	if res.Summary.Finished != res.Summary.Requests {
		t.Fatalf("finished %d/%d under backpressure", res.Summary.Finished, res.Summary.Requests)
	}
}
