package core

import (
	"testing"

	"muxwise/internal/estimator"
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// MuxWise must generalise to newer GPUs and the MoE model (§4.2.4).
func TestQwenOnH200(t *testing.T) {
	cfg := serve.Config{
		Spec: gpu.H200(), GPUs: 8, Arch: model.Qwen235B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 100 * sim.Millisecond},
	}
	tr := workload.Conversation(31, 60).WithPoissonArrivals(31, 0.5)
	res := serve.Run(New, cfg, tr)
	if res.Summary.Unstable {
		t.Fatalf("unstable: finished %d/%d", res.Summary.Finished, res.Summary.Requests)
	}
	if att := res.Rec.TBTAttainment(cfg.SLO.TBT); att < 0.99 {
		t.Fatalf("Qwen-235B TBT attainment %.3f", att)
	}
}

func TestLlama70BOnH100(t *testing.T) {
	cfg := serve.Config{
		Spec: gpu.H100(), GPUs: 8, Arch: model.Llama70B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 100 * sim.Millisecond},
	}
	tr := workload.ToolAgent(32, 60).WithPoissonArrivals(32, 0.6)
	res := serve.Run(New, cfg, tr)
	if res.Summary.Unstable {
		t.Fatalf("unstable on H100")
	}
	// H100's 7 partition configurations must be addressable.
	if got := len(cfg.Spec.PartitionSizes()); got != 7 {
		t.Fatalf("H100 configs = %d, want 7", got)
	}
}

// The decode batch must never exceed MaxBatch even under floods.
func TestMaxBatchHonored(t *testing.T) {
	cfg := serve.Config{
		Spec: gpu.A100(), GPUs: 8, Arch: model.Llama8B(),
		SLO:      metrics.SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond},
		MaxBatch: 16,
	}
	s := sim.New()
	rec := metrics.NewRecorder()
	env := &serve.Env{
		Sim: s, Spec: cfg.Spec, GPUs: cfg.GPUs, Arch: cfg.Arch,
		SLO: cfg.SLO, Rec: rec, ReserveFrac: 0.1, MaxBatch: cfg.MaxBatch,
	}
	e := NewWithOptions(env, DefaultOptions())
	tr := workload.ShareGPT(33, 100).WithPoissonArrivals(33, 100) // flood
	for _, r := range tr.Requests {
		r := r
		rec.Arrive(r.ID, r.Arrival, r.InputTokens)
		s.At(r.Arrival, func() {
			e.Submit(r)
			if got := e.inflight(); got > cfg.MaxBatch {
				t.Fatalf("inflight %d exceeds MaxBatch %d", got, cfg.MaxBatch)
			}
		})
	}
	s.Run()
	sum := rec.Summarize("mux", s.Now())
	if sum.Finished != sum.Requests {
		t.Fatalf("finished %d/%d", sum.Finished, sum.Requests)
	}
}

// Full-cache-hit follow-up turns still prefill at least one token and
// must complete without corrupting pool accounting.
func TestFullCacheHitTurn(t *testing.T) {
	cfg := cfg8B()
	s := sim.New()
	rec := metrics.NewRecorder()
	env := &serve.Env{
		Sim: s, Spec: cfg.Spec, GPUs: cfg.GPUs, Arch: cfg.Arch,
		SLO: cfg.SLO, Rec: rec, ReserveFrac: 0.1, MaxBatch: 256,
	}
	e := NewWithOptions(env, DefaultOptions())
	first := &workload.Request{
		ID: 0, Session: 1, Turn: 0, InputTokens: 512, OutputTokens: 4,
		Pages: pages(9, 32), AllPages: pages(9, 32),
	}
	// Second turn covers exactly the same pages (output folded in).
	second := &workload.Request{
		ID: 1, Session: 1, Turn: 1, Arrival: 10 * sim.Second,
		InputTokens: 512, ReusedTokens: 512, OutputTokens: 4,
		Pages: pages(9, 32), AllPages: pages(9, 32),
	}
	for _, r := range []*workload.Request{first, second} {
		r := r
		rec.Arrive(r.ID, r.Arrival, r.InputTokens)
		s.At(r.Arrival, func() { e.Submit(r) })
	}
	s.Run()
	sum := rec.Summarize("mux", s.Now())
	if sum.Finished != 2 {
		t.Fatalf("finished %d/2", sum.Finished)
	}
	if free := e.Pool().Free(); free < 0 {
		t.Fatalf("pool accounting corrupted: free = %d", free)
	}
	if e.Pool().Reserved() != 0 {
		t.Fatalf("leaked reservations: %d", e.Pool().Reserved())
	}
}

// Requests with a single output token finish at prefill completion.
func TestSingleTokenOutput(t *testing.T) {
	tr := &workload.Trace{Name: "one-token"}
	tr.Requests = append(tr.Requests, &workload.Request{
		ID: 0, InputTokens: 256, OutputTokens: 1,
		Pages: pages(5, 16), AllPages: pages(5, 17),
	})
	res := serve.Run(New, cfg8B(), tr)
	if res.Summary.Finished != 1 {
		t.Fatalf("finished %d/1", res.Summary.Finished)
	}
	if res.Summary.TBT.N != 0 {
		t.Fatalf("TBT samples = %d for a 1-token request, want 0", res.Summary.TBT.N)
	}
}

// Zero-arrival burst: all requests at t=0 must still drain.
func TestSimultaneousBurst(t *testing.T) {
	tr := &workload.Trace{Name: "burst"}
	for i := 0; i < 40; i++ {
		tr.Requests = append(tr.Requests, &workload.Request{
			ID: i, Session: i, InputTokens: 800, OutputTokens: 30,
			Pages:    pages(uint64(100+i), 50),
			AllPages: pages(uint64(100+i), 52),
		})
	}
	res := serve.Run(New, cfg8B(), tr)
	if res.Summary.Finished != 40 {
		t.Fatalf("finished %d/40", res.Summary.Finished)
	}
}

// Regression: a prefill batch that completes its in-flight layers while
// preempted must leave the queue — a finished zombie re-entering the
// active slot wedged the prefill stream permanently under high-rate
// multi-turn load (seed 8201 at 8 req/s reproduced it).
func TestPreemptedJobCompletionNoWedge(t *testing.T) {
	tr := workload.ToolAgent(201, 700).WithPoissonArrivals(8201, 8)
	res := serve.Run(New, cfg8B(), tr)
	if res.Summary.Finished != res.Summary.Requests {
		t.Fatalf("finished %d/%d — prefill stream wedged",
			res.Summary.Finished, res.Summary.Requests)
	}
}

// The contention guard must receive runtime observations during serving.
func TestGuardRuntimeRefinement(t *testing.T) {
	cfg := cfg8B()
	s := sim.New()
	rec := metrics.NewRecorder()
	env := &serve.Env{
		Sim: s, Spec: cfg.Spec, GPUs: cfg.GPUs, Arch: cfg.Arch,
		SLO: cfg.SLO, Rec: rec, ReserveFrac: 0.1, MaxBatch: 256,
	}
	e := NewWithOptions(env, DefaultOptions())
	fitted := e.est.(*estimator.Estimator)
	before := fitted.Guard().Cells()
	tr := workload.ToolAgent(34, 30).WithPoissonArrivals(34, 3)
	for _, r := range tr.Requests {
		r := r
		rec.Arrive(r.ID, r.Arrival, r.InputTokens)
		s.At(r.Arrival, func() { e.Submit(r) })
	}
	s.Run()
	// Cells can only grow (Observe adds unseen cells).
	if fitted.Guard().Cells() < before {
		t.Fatal("guard lost cells during serving")
	}
}
