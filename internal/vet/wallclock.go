package vet

import (
	"go/ast"
	"go/types"
)

// forbiddenTimeFuncs reach the wall clock (or the runtime timer heap,
// which is driven by it). Using time.Duration constants and arithmetic
// is fine — only reading or waiting on real time is not.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// allowedRandFuncs construct explicitly seeded sources; everything
// else at package level draws from the process-global generator.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// Wallclock forbids wall-clock time and process-global randomness in
// simulation-critical packages.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since and unseeded math/rand in simulation-critical packages\n\n" +
		"Byte-identical replay is the contract behind the frontier goldens and\n" +
		"TestTraceDeterminism. Virtual time must come from the event loop\n" +
		"(sim.Sim.Now); randomness must come from an explicitly seeded\n" +
		"*rand.Rand. Methods on a seeded *rand.Rand and the rand.New* source\n" +
		"constructors are allowed; package-level rand functions and every\n" +
		"wall-clock read are not.",
	Run: runWallclock,
}

func runWallclock(p *Pass) error {
	if !IsSimCritical(p.Path) {
		return nil
	}
	for _, f := range p.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch p.importedPkg(sel.X) {
			case "time":
				if forbiddenTimeFuncs[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "time.%s reads the wall clock in simulation-critical package %q; virtual time must come from the event loop (sim.Sim.Now)",
						sel.Sel.Name, p.Path)
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := p.objectOf(sel.Sel).(*types.Func); isFunc && !allowedRandFuncs[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "package-level rand.%s draws from the process-global generator in simulation-critical package %q; use a *rand.Rand with an explicit seed (rand.New)",
						sel.Sel.Name, p.Path)
				}
			}
			return true
		})
	}
	return nil
}
