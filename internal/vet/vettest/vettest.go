// Package vettest is a minimal analysistest-style harness for muxvet's
// hand-rolled analyzers.
//
// A test tree lives under testdata/<suite>/src/<import/path>/*.go,
// mirroring the golang.org/x/tools/go/analysis/analysistest layout.
// Expectations are written as comments on the offending line:
//
//	t := time.Now() // want `time\.Now`
//
// Each backquoted or double-quoted token after "want" is a regular
// expression that must match one diagnostic message reported on that
// line. Lines without a want comment must be diagnostic-free. When the
// offending line cannot carry another comment (it already ends in a
// //muxvet: directive, and a line comment cannot follow another), the
// expectation goes on the next line as "// want-prev".
//
// Stub packages inside the tree are resolved by import path within the
// same tree; standard-library imports are typechecked from GOROOT
// source. Stubs reuse the real module's import paths (for example
// muxwise/internal/sim) so the package classifier is exercised
// verbatim.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"muxwise/internal/vet"
)

// The fset, the GOROOT source importer, and loaded stubs are shared
// process-wide: typechecking fmt/time from source is the slow part and
// every suite reuses it.
var (
	mu     sync.Mutex
	fset   = token.NewFileSet()
	srcImp types.Importer
	loads  = map[string]*loaded{}
)

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

type stubImporter struct {
	root string // testdata/<suite> directory containing src/
}

func (si stubImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(si.root, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		l := loadLocked(si.root, path)
		return l.pkg, l.err
	}
	if srcImp == nil {
		srcImp = importer.ForCompiler(fset, "source", nil)
	}
	return srcImp.Import(path)
}

// loadLocked parses and typechecks the package at import path under
// root/src. mu must be held.
func loadLocked(root, path string) *loaded {
	key := root + "\x00" + path
	if l, ok := loads[key]; ok {
		return l
	}
	l := &loaded{}
	loads[key] = l
	dir := filepath.Join(root, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.err = err
		return l
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			l.err = err
			return l
		}
		l.files = append(l.files, f)
	}
	if len(l.files) == 0 {
		l.err = fmt.Errorf("no Go files in %s", dir)
		return l
	}
	l.info = vet.NewInfo()
	conf := types.Config{Importer: stubImporter{root: root}}
	l.pkg, l.err = conf.Check(path, fset, l.files, l.info)
	return l
}

// Run loads each package under root (an analysistest-style testdata
// directory) and checks the analyzers' diagnostics against the // want
// expectations in its sources.
func Run(t *testing.T, root string, analyzers []*vet.Analyzer, paths ...string) {
	t.Helper()
	abs, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, path := range paths {
		l := loadLocked(abs, path)
		if l.err != nil {
			t.Fatalf("loading %s: %v", path, l.err)
		}
		diags, err := vet.Analyze(&vet.Package{
			Path:  path,
			Fset:  fset,
			Files: l.files,
			Types: l.pkg,
			Info:  l.info,
		}, analyzers)
		if err != nil {
			t.Fatalf("analyzing %s: %v", path, err)
		}
		checkExpectations(t, path, l.files, diags)
	}
}

type want struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	hit  bool
}

// wantRE matches each quoted expectation after "want": backquoted or
// double-quoted.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts // want and // want-prev expectations.
func parseWants(t *testing.T, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				var body string
				lineDelta := 0
				switch {
				case strings.HasPrefix(text, "// want-prev "):
					body = text[len("// want-prev "):]
					lineDelta = -1
				case strings.HasPrefix(text, "// want "):
					body = text[len("// want "):]
				default:
					continue
				}
				posn := fset.Position(c.Pos())
				matches := wantRE.FindAllString(body, -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment %q", posn, text)
				}
				for _, m := range matches {
					pat := m[1 : len(m)-1]
					if m[0] == '"' {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pat, err)
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line + lineDelta, rx: rx, raw: pat})
				}
			}
		}
	}
	return wants
}

func checkExpectations(t *testing.T, path string, files []*ast.File, diags []vet.Diagnostic) {
	t.Helper()
	wants := parseWants(t, files)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				matched[i] = true
				w.hit = true
				break
			}
		}
	}
	var problems []string
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw))
		}
	}
	for i, d := range diags {
		if !matched[i] {
			problems = append(problems, fmt.Sprintf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		t.Errorf("package %s:\n  %s", path, strings.Join(problems, "\n  "))
	}
}
