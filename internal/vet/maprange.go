package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
)

// MapRange flags map iteration whose order can leak into observable
// output in simulation-critical packages.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flag map iteration whose order can leak into output, schedules, or reductions\n\n" +
		"Go randomizes map iteration order per run. In simulation-critical\n" +
		"packages a map range is flagged when its body appends to a slice,\n" +
		"writes output, schedules events, sends on a channel, or accumulates\n" +
		"floating-point (non-associative rounding) — unless the collected\n" +
		"slice is sorted before use later in the same function, or the loop\n" +
		"carries a //muxvet:ordered <reason> directive. Also flagged:\n" +
		"extremum selection with a map-order-dependent tie-break (best = k\n" +
		"under a strict comparison) and calls through function values, whose\n" +
		"effects the analyzer cannot see. Writes keyed by the range key\n" +
		"itself (m[k] = v) are order-independent and not flagged. Set\n" +
		"MUXVET_DEBUG_ALLMAPS=1 to inventory every map range in scope.",
	Run: runMapRange,
}

// output-ish method names: anything that externalizes bytes in
// iteration order.
var outputMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Encode":      true,
}

// scheduling seams: pushing events in map order permutes the event
// loop's (time, seq) tie-break and changes the whole replay.
var scheduleMethods = map[string]bool{
	"At":        true,
	"AtFunc":    true,
	"After":     true,
	"AfterFunc": true,
	"Launch":    true,
	"LaunchFn":  true,
	"Schedule":  true,
}

var fmtOutputFuncs = map[string]bool{
	"Print":    true,
	"Printf":   true,
	"Println":  true,
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
}

// a trigger is one order-sensitive effect found in a map-range body.
type trigger struct {
	pos  token.Pos
	what string
	// appendTarget is set for append triggers when the destination is
	// a plain variable or field; such triggers are forgiven when the
	// target is sorted later in the same function.
	appendTarget ast.Expr
}

func runMapRange(p *Pass) error {
	if !IsSimCritical(p.Path) {
		return nil
	}
	for _, f := range p.SourceFiles() {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			trig := p.classifyMapRangeBody(rs)
			if trig == nil {
				if os.Getenv("MUXVET_DEBUG_ALLMAPS") != "" {
					p.Reportf(rs.For, "DEBUG map range over %s (no trigger)", types.ExprString(rs.X))
				}
				return true
			}
			if trig.appendTarget != nil && p.sortedAfter(file, rs, trig.appendTarget) {
				return true
			}
			p.Reportf(rs.For, "iteration over map %s %s in simulation-critical package %q; map order is nondeterministic — iterate a sorted key slice or annotate //muxvet:ordered <reason>",
				types.ExprString(rs.X), trig.what, p.Path)
			return true
		})
	}
	return nil
}

// classifyMapRangeBody returns the first order-sensitive effect in the
// loop body, or nil when every effect is order-independent.
func (p *Pass) classifyMapRangeBody(rs *ast.RangeStmt) *trigger {
	loopVars := rangeVarObjs(p, rs)
	var found *trigger
	note := func(t *trigger) {
		if found == nil || t.pos < found.pos {
			found = t
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if found != nil && found.appendTarget == nil {
			return false // already have an unforgivable trigger
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			if hasStrictCompare(n.Cond) {
				if pos, name, ok := p.extremumAssign(n, rs, loopVars); ok {
					note(&trigger{pos: pos, what: "selects an extremum into " + name + " whose tie-break depends on map order"})
				}
			}
		case *ast.CallExpr:
			if p.isBuiltinAppend(n) {
				note(&trigger{pos: n.Pos(), what: appendWhat(n), appendTarget: appendTargetExpr(n)})
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if v, isVar := p.objectOf(id).(*types.Var); isVar {
					if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
						note(&trigger{pos: n.Pos(), what: "calls through function value " + id.Name + ", whose effects the analyzer cannot prove order-independent"})
						return true
					}
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if p.importedPkg(sel.X) == "fmt" && fmtOutputFuncs[sel.Sel.Name] {
					note(&trigger{pos: n.Pos(), what: "writes output (fmt." + sel.Sel.Name + ")"})
					return true
				}
				if p.isMethodCall(sel) {
					switch {
					case scheduleMethods[sel.Sel.Name]:
						note(&trigger{pos: n.Pos(), what: "schedules events (" + sel.Sel.Name + ")"})
					case outputMethods[sel.Sel.Name]:
						note(&trigger{pos: n.Pos(), what: "writes output (" + sel.Sel.Name + ")"})
					}
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if t := p.Info.TypeOf(lhs); t != nil && isFloaty(t) {
						note(&trigger{pos: n.Pos(), what: "accumulates floating-point " + types.ExprString(lhs) + " (rounding is order-sensitive)"})
					}
				}
			}
		case *ast.SendStmt:
			note(&trigger{pos: n.Pos(), what: "sends on a channel"})
		}
		return true
	})
	return found
}

// rangeVarObjs returns the objects bound to the range's key and value
// variables.
func rangeVarObjs(p *Pass, rs *ast.RangeStmt) []types.Object {
	var objs []types.Object
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.objectOf(id); obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// hasStrictCompare reports whether expr contains a < or > comparison —
// the shape of an extremum scan, where equal keys tie-break on
// whichever the map visits first.
func hasStrictCompare(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

// extremumAssign looks inside a comparison-guarded if for a plain
// assignment that stores the range key or value (or something built
// from them) into a variable declared outside the loop: the classic
// "best = k" scan whose winner depends on iteration order when the
// comparison ties.
func (p *Pass) extremumAssign(ifs *ast.IfStmt, rs *ast.RangeStmt, loopVars []types.Object) (token.Pos, string, bool) {
	var pos token.Pos
	var name string
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		// RHS must carry the loop key/value; assignments of constants
		// (found = true) are idempotent and order-independent.
		refsLoopVar := false
		for _, rhs := range as.Rhs {
			ast.Inspect(rhs, func(rn ast.Node) bool {
				if id, ok := rn.(*ast.Ident); ok {
					obj := p.objectOf(id)
					for _, lv := range loopVars {
						if obj == lv {
							refsLoopVar = true
						}
					}
				}
				return !refsLoopVar
			})
		}
		if !refsLoopVar {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := p.objectOf(id)
			if obj == nil {
				continue
			}
			if obj.Pos() < rs.Pos() || obj.Pos() > rs.End() {
				pos, name = as.Pos(), id.Name
				return false
			}
		}
		return true
	})
	return pos, name, name != ""
}

func isFloaty(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isBuiltinAppend reports whether call invokes the append builtin.
func (p *Pass) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.objectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// isMethodCall reports whether sel is a method selection (as opposed
// to a package-qualified function).
func (p *Pass) isMethodCall(sel *ast.SelectorExpr) bool {
	return p.Info.Selections[sel] != nil
}

// appendTargetExpr extracts the destination of an append call when it
// is a plain variable or field reference; index expressions keyed by
// the loop variable (m2[k] = append(m2[k], v)) are per-key and
// order-independent, so they return nil target and the caller treats
// the trigger as forgiven only via sortedAfter (which needs an Expr)
// or a directive.
func appendTargetExpr(call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	switch call.Args[0].(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return call.Args[0]
	}
	return nil
}

func appendWhat(call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		return "appends to " + types.ExprString(call.Args[0])
	}
	return "appends to a slice"
}

// sortOrderingFuncs are package-level sort entry points; finding one
// applied to the append target after the loop forgives the append.
var sortOrderingFuncs = map[string]bool{
	// package sort
	"Strings": true, "Ints": true, "Float64s": true,
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	// package slices
	"SortFunc": true, "SortStableFunc": true,
}

// sortedAfter reports whether target is passed to a sort call after
// the range statement, inside the same function.
func (p *Pass) sortedAfter(file *ast.File, rs *ast.RangeStmt, target ast.Expr) bool {
	fd := enclosingFunc(file, rs.Pos())
	if fd == nil {
		return false
	}
	key := exprKey(target)
	obj := targetObj(p, target)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := p.importedPkg(sel.X)
		isSortPkg := pkg == "sort" || pkg == "slices"
		isSortMethod := p.isMethodCall(sel) && (sel.Sel.Name == "Sort" || sel.Sel.Name == "Stable")
		if !(isSortPkg && (sortOrderingFuncs[sel.Sel.Name] || sel.Sel.Name == "Sort")) && !isSortMethod {
			return true
		}
		// Does any argument (possibly wrapped, e.g. sort.Sort(byID(x))
		// or sort.Slice(x, less)) reference the append target?
		for _, arg := range call.Args {
			refs := false
			ast.Inspect(arg, func(an ast.Node) bool {
				switch an := an.(type) {
				case *ast.Ident:
					if obj != nil && p.objectOf(an) == obj {
						refs = true
					}
				case *ast.SelectorExpr:
					if exprKey(an) == key {
						refs = true
					}
				}
				return !refs
			})
			if refs {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// targetObj resolves a plain-identifier target to its object for
// precise matching; selector targets fall back to textual keys.
func targetObj(p *Pass, target ast.Expr) types.Object {
	if id, ok := target.(*ast.Ident); ok {
		return p.objectOf(id)
	}
	return nil
}
