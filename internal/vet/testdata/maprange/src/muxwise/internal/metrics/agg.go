// Positive and negative cases for the maprange analyzer in a
// simulation-critical package.
package metrics

import (
	"fmt"
	"sort"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `iteration over map m appends to keys`
		keys = append(keys, k)
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // forgiven: keys is sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `accumulates floating-point total`
		total += v
	}
	return total
}

func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m { // integer addition is associative: order-independent
		total += v
	}
	return total
}

func printAll(m map[string]int) {
	for k, v := range m { // want `writes output \(fmt\.Println\)`
		fmt.Println(k, v)
	}
}

func pickBest(m map[string]float64) string {
	best, bestScore := "", -1.0
	for k, v := range m { // want `selects an extremum into best`
		if v > bestScore {
			best, bestScore = k, v
		}
	}
	return best
}

func anyNegative(m map[string]float64) bool {
	found := false
	for _, v := range m { // idempotent flag set: order-independent, not flagged
		if v < 0 {
			found = true
		}
	}
	return found
}

func viaClosure(m map[string]int, emit func(string)) {
	for k := range m { // want `calls through function value emit`
		emit(k)
	}
}

func sendAll(m map[string]int, ch chan<- int) {
	for _, v := range m { // want `sends on a channel`
		ch <- v
	}
}

func perKeyWrite(dst, src map[string]int) {
	for k, v := range src { // keyed by the range key itself: order-independent
		dst[k] = v
	}
}
