// Minimal scheduling stub so the maprange suite can exercise the
// schedule-method trigger through a real method call.
package sim

type Time int64

type Sim struct{ now Time }

func (s *Sim) At(t Time, fn func()) {}
