// Scheduling events in map order permutes the event loop's
// (time, seq) tie-break — the highest-stakes maprange trigger.
package cluster

import "muxwise/internal/sim"

type waiter struct{ when sim.Time }

func tick() {}

func scheduleAll(s *sim.Sim, pending map[int]waiter) {
	for _, w := range pending { // want `schedules events \(At\)`
		s.At(w.when, tick)
	}
}
