// Directive semantics: a well-formed exemption suppresses exactly one
// line for exactly one analyzer; malformed directives suppress nothing
// and are themselves diagnostics.
package core

import "time"

//muxvet:frobnicate because reasons
// want-prev `unknown directive //muxvet:frobnicate`

//muxvet:allow nosuchanalyzer some reason
// want-prev `//muxvet:allow needs a known analyzer name`

func suppressExactlyOne() (int64, int64) {
	a := time.Now().UnixNano() //muxvet:allow wallclock replay anchors to a wall-clock base
	b := time.Now().UnixNano() // want `time\.Now reads the wall clock`
	return a, b
}

func orderedSuppressesNextLine(m map[string]int) []string {
	var a, b []string
	//muxvet:ordered downstream consumer reconciles collection order
	for k := range m {
		a = append(a, k)
	}
	for k := range m { // want `appends to b`
		b = append(b, k)
	}
	return append(a, b...)
}

func orderedDoesNotCoverOtherAnalyzers() int64 {
	//muxvet:ordered a maprange exemption must not silence wallclock
	t := time.Now().UnixNano() // want `time\.Now reads the wall clock`
	return t
}

func missingOrderedReason(m map[string]int) []string {
	var out []string
	for k := range m { //muxvet:ordered
		// want-prev `//muxvet:ordered requires a reason` `appends to out`
		out = append(out, k)
	}
	return out
}

func missingAllowReason() int64 {
	t := time.Now().UnixNano() //muxvet:allow wallclock
	// want-prev `//muxvet:allow wallclock requires a reason` `time\.Now reads the wall clock`
	return t
}
