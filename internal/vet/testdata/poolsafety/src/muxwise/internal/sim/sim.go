// Minimal mirror of the pooled event loop, exercising poolsafety's
// home-package rules: use-after-release and unguarded slot access.
package sim

type Time int64

type Event struct {
	at  Time
	gen uint32
}

type Handle struct {
	ev  *Event
	gen uint32
}

func (h Handle) Pending() bool { return h.ev != nil && h.ev.gen == h.gen }

func (h Handle) At() Time {
	if !h.Pending() {
		return 0
	}
	return h.ev.at // guarded by Pending on the same receiver
}

func (h Handle) BadAt() Time {
	return h.ev.at // want `h\.ev accessed without a generation check`
}

type Sim struct {
	free []*Event
}

func (s *Sim) alloc(t Time) *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free = s.free[:n-1]
		return e
	}
	return &Event{at: t}
}

func (s *Sim) release(e *Event) {
	e.gen++
	s.free = append(s.free, e)
}

func (s *Sim) Cancel(h Handle) {
	if !h.Pending() {
		return
	}
	h.ev.gen++ // guarded by Pending above
}

func (s *Sim) useAfterRelease(e *Event) {
	s.release(e)
	e.at = 0 // want `e is used after being released`
}

func (s *Sim) releaseLast(e *Event) {
	e.at = 0
	s.release(e) // release is the last use: fine
}

func (s *Sim) reuseAfterRealloc(e *Event, t Time) Time {
	s.release(e)
	e = s.alloc(t)
	return e.at // e was re-bound to a fresh slot: fine
}

func (s *Sim) freeListDirect(e *Event) {
	s.free = append(s.free, e)
	_ = e.at // want `e is used after being released`
}
