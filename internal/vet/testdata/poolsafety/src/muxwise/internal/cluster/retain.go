// Pooled records must not escape their home package: the pool recycles
// the slot under any foreign holder. Handles are the sanctioned form.
package cluster

import "muxwise/internal/sim"

type badTracker struct {
	ev *sim.Event // want `pooled record sim\.Event must not be retained outside`
}

type goodTracker struct {
	h sim.Handle // generation-checked handle: fine
}

func pending(g goodTracker) bool { return g.h.Pending() }
