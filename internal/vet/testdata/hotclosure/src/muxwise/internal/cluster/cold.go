// cluster is simulation-critical but not a pooled hot-path package:
// closures at scheduling seams are a non-issue here.
package cluster

import "muxwise/internal/sim"

func scheduleSetup(s *sim.Sim, t sim.Time, n *int) {
	s.At(t, func() { *n++ })
}
