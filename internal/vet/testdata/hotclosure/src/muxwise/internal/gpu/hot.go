// Positive and negative cases for the hotclosure analyzer in a pooled
// hot-path package.
package gpu

import (
	"fmt"

	"muxwise/internal/sim"
)

type payload struct{ a, b int64 }

type Device struct {
	sim  *sim.Sim
	name string
}

func tickFn(arg any) {}

func (d *Device) step() {}

func (d *Device) scheduleClosure(t sim.Time) {
	d.sim.At(t, func() { d.step() }) // want `closure literal passed to \(\*muxwise/internal/sim\.Sim\)\.At`
}

func (d *Device) scheduleAfterClosure(t sim.Time) {
	d.sim.After(t, func() { d.step() }) // want `closure literal passed to \(\*muxwise/internal/sim\.Sim\)\.After`
}

func (d *Device) scheduleBound(t sim.Time) {
	d.sim.AtFunc(t, tickFn, d) // closure-free seam with a pointer arg: no allocation
}

func (d *Device) scheduleBoxed(t sim.Time, p payload) {
	d.sim.AtFunc(t, tickFn, p) // want `struct value p boxed into interface parameter`
}

type Kernel struct{ flops float64 }

type Partition struct{}

func (p *Partition) Launch(k Kernel, done func())               {}
func (p *Partition) LaunchFn(k Kernel, done func(any), arg any) {}

func (d *Device) launchClosure(p *Partition, k Kernel) {
	p.Launch(k, func() { d.step() }) // want `closure literal passed to \(\*muxwise/internal/gpu\.Partition\)\.Launch`
}

func (d *Device) launchBound(p *Partition, k Kernel) {
	p.LaunchFn(k, tickFn, d)
}

func (d *Device) describe() string {
	return fmt.Sprintf("device %s", d.name) // want `fmt\.Sprintf allocates on a pooled hot path`
}

func (d *Device) String() string {
	return fmt.Sprintf("device %s", d.name) // cold formatting method: allowed
}

func (d *Device) mustStep(n int) {
	if n < 0 {
		panic(fmt.Sprintf("gpu: bad step %d", n)) // terminal panic: allowed
	}
}
