// Stub of the event loop's scheduling seams: At/After take closures,
// AtFunc/AfterFunc take a pre-bound func and arg.
package sim

type Time int64

type Handle struct{}

type Sim struct{}

func (s *Sim) At(t Time, fn func()) Handle                    { return Handle{} }
func (s *Sim) AtFunc(t Time, fn func(any), arg any) Handle    { return Handle{} }
func (s *Sim) After(d Time, fn func()) Handle                 { return Handle{} }
func (s *Sim) AfterFunc(d Time, fn func(any), arg any) Handle { return Handle{} }
