// cmd packages are not simulation-critical: wall-clock reads are fine
// here (progress logging, timeouts for the operator).
package main

import "time"

func wallElapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func main() { _ = wallElapsed() }
