// Positive and negative cases for the wallclock analyzer in a
// simulation-critical package.
package core

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func badNow() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func badSleep(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep reads the wall clock`
}

func badTicker(d time.Duration) *time.Ticker {
	return time.NewTicker(d) // want `time\.NewTicker reads the wall clock`
}

func badGlobalRand() int {
	return rand.Intn(10) // want `package-level rand\.Intn draws from the process-global generator`
}

func badGlobalRandV2() uint64 {
	return randv2.Uint64() // want `package-level rand\.Uint64 draws from the process-global generator`
}

func goodSeeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64() // methods on a seeded *rand.Rand are fine
}

func goodSeededV2(s1, s2 uint64) float64 {
	r := randv2.New(randv2.NewPCG(s1, s2))
	return r.Float64()
}

func goodDurationMath(n int) time.Duration {
	return time.Duration(n) * time.Millisecond // constants and arithmetic, no clock read
}
