// Package vet implements muxvet, this repository's static-analysis
// suite. Every headline number in the repo — frontier goldens, the
// Fig. 13 comparator, TestTraceDeterminism — assumes byte-identical
// replay, and the hot-path work in PR 7 assumes the event loop stays
// closure- and allocation-free. Those invariants used to live only in
// reviewers' heads; the analyzers here machine-check them:
//
//   - wallclock:  no wall-clock time or process-global randomness in
//     simulation-critical packages — virtual time comes from the event
//     loop, randomness from an explicitly seeded source.
//   - maprange:   no map-iteration order leaking into output, event
//     schedules, or order-sensitive reductions.
//   - hotclosure: no per-event closures or fmt formatting on pooled
//     hot paths where the closure-free AtFunc/AfterFunc/LaunchFn
//     seams exist.
//   - poolsafety: no retaining pooled records past their release
//     point, and no touching a Handle's slot without the generation
//     check.
//   - directive:  the exemption directives themselves are well-formed
//     (a reason is mandatory).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is hand-rolled on the standard
// library so the repo stays dependency-free; cmd/muxvet adapts it to
// the `go vet -vettool` protocol.
//
// Exemptions are explicit and reasoned:
//
//	x := time.Now() //muxvet:allow wallclock replay anchors to a wall-clock base
//	//muxvet:ordered keys are unique request IDs, reduction is commutative
//	for id := range seen { ... }
//
// A trailing directive exempts its own line; a directive on a line of
// its own exempts the next line. The reason is mandatory — a
// directive without one is itself a diagnostic.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Name is the identifier used by
// //muxvet:allow directives and the -list roster; the first line of
// Doc is the one-line summary shown there.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// oneLine returns the first line of the analyzer's doc.
func (a *Analyzer) oneLine() string {
	if i := strings.IndexByte(a.Doc, '\n'); i >= 0 {
		return a.Doc[:i]
	}
	return a.Doc
}

// A Pass hands one typechecked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the canonical import path used for package
	// classification (Pkg.Path may be shadowed in tests).
	Path string

	report func(token.Pos, string)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// SourceFiles returns the pass's non-test files. The analyzers guard
// production code paths; tests are free to read wall clocks and build
// throwaway closures (determinism of results is pinned end-to-end by
// the golden suites).
func (p *Pass) SourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// A Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [muxvet:%s]", d.Pos, d.Message, d.Analyzer)
}

// allAnalyzers is populated in init to break the initialization cycle
// between the Directive analyzer (which validates directives against
// the roster) and the roster itself.
var allAnalyzers []*Analyzer

func init() {
	allAnalyzers = []*Analyzer{Wallclock, MapRange, HotClosure, PoolSafety, Directive}
}

// Analyzers returns the full roster in stable order.
func Analyzers() []*Analyzer { return allAnalyzers }

// byName maps analyzer names for directive validation.
func byName() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// A Package is one loaded, typechecked unit ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyze runs the analyzers over pkg, applies //muxvet: exemption
// directives, and returns the surviving diagnostics in (file, line,
// column, analyzer) order.
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	var all []Diagnostic
	for _, a := range analyzers {
		name := a.Name
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			report: func(pos token.Pos, msg string) {
				all = append(all, Diagnostic{Analyzer: name, Pos: pkg.Fset.Position(pos), Message: msg})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("muxvet %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	kept := all[:0]
	for _, d := range all {
		if !dirs.suppresses(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept, nil
}

// Package classification ---------------------------------------------------

// modulePath anchors classification; testdata stubs reuse the same
// import paths so the classifier is exercised verbatim in tests.
const modulePath = "muxwise"

// simCriticalPkgs are the packages whose behaviour feeds goldens,
// traces, and reports: everything inside the deterministic event loop.
// Wall-clock reads, unseeded randomness, and order-leaking map ranges
// are forbidden here.
var simCriticalPkgs = map[string]bool{
	modulePath:                           true,
	modulePath + "/internal/sim":         true,
	modulePath + "/internal/gpu":         true,
	modulePath + "/internal/kvcache":     true,
	modulePath + "/internal/metrics":     true,
	modulePath + "/internal/model":       true,
	modulePath + "/internal/estimator":   true,
	modulePath + "/internal/roofline":    true,
	modulePath + "/internal/serve":       true,
	modulePath + "/internal/cluster":     true,
	modulePath + "/internal/cluster/epp": true,
	modulePath + "/internal/frontier":    true,
	modulePath + "/internal/obs":         true,
	modulePath + "/internal/par":         true,
	modulePath + "/internal/workload":    true,
	modulePath + "/internal/core":        true,
	modulePath + "/internal/loong":       true,
	modulePath + "/internal/pdsep":       true,
	modulePath + "/internal/chunked":     true,
	modulePath + "/internal/temporal":    true,
	modulePath + "/internal/windserve":   true,
	modulePath + "/internal/nanoflow":    true,
	modulePath + "/internal/experiments": true,
}

// hotPathPkgs are the pooled hot-path packages from PR 7, plus the
// per-request routing pipeline: per-event closures, fmt formatting,
// and interface boxing regress the alloc gate here, so muxvet flags
// them before the benchmark does.
var hotPathPkgs = map[string]bool{
	modulePath + "/internal/sim":         true,
	modulePath + "/internal/gpu":         true,
	modulePath + "/internal/metrics":     true,
	modulePath + "/internal/kvcache":     true,
	modulePath + "/internal/par":         true,
	modulePath + "/internal/cluster/epp": true,
	// roofline predictions run on every engine step (the cost-model
	// seam), so the analytical model is held to the same no-alloc bar.
	modulePath + "/internal/roofline": true,
}

// IsSimCritical reports whether the package at path must stay
// deterministic (wallclock and maprange apply).
func IsSimCritical(path string) bool { return simCriticalPkgs[path] }

// IsHotPath reports whether the package at path is a pooled hot-path
// package (hotclosure applies; poolsafety's in-package rules apply).
func IsHotPath(path string) bool { return hotPathPkgs[path] }

// Shared AST helpers --------------------------------------------------------

// importedPkg returns the import path of the package that x (a
// selector base) names, or "" when x is not a package reference.
func (p *Pass) importedPkg(x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// funcDecls visits every function declaration with a body in f.
func funcDecls(f *ast.File, visit func(*ast.FuncDecl)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd)
		}
	}
}

// enclosingFunc returns the function declaration containing pos.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// objectOf resolves an identifier to its object (use or def).
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// exprKey returns a stable textual key for an expression, used to
// match repeated references to the same receiver (h.Pending() guarding
// h.ev) even when the base is itself a selector.
func exprKey(e ast.Expr) string {
	return types.ExprString(e)
}
