package vet

import (
	"go/ast"
	"go/types"
)

// HotClosure flags per-call allocation patterns on pooled hot paths.
var HotClosure = &Analyzer{
	Name: "hotclosure",
	Doc: "flag closures, fmt formatting, and interface boxing on pooled hot paths\n\n" +
		"In the pooled hot-path packages (sim, gpu, metrics, kvcache, par) a\n" +
		"closure literal passed to a scheduling seam that also offers a\n" +
		"closure-free form (At→AtFunc, After→AfterFunc, Launch→LaunchFn)\n" +
		"allocates per event — exactly the regressions the BENCH_simcore\n" +
		"alloc gate catches after the fact. Also flagged: fmt.Sprintf-family\n" +
		"calls outside String/Error/Format methods and panic messages, and\n" +
		"struct values boxed into interface parameters. Every function in a\n" +
		"hot package is presumed reachable from the EngineStep/FleetTick\n" +
		"benchmark roots unless it is pure formatting or a terminal panic.",
	Run: runHotClosure,
}

// fmtAllocFuncs allocate their result on every call.
var fmtAllocFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
	"Appendf":  true,
}

// formattingMethods are cold, human-facing formatting entry points.
var formattingMethods = map[string]bool{
	"String":   true,
	"Error":    true,
	"Format":   true,
	"GoString": true,
}

func runHotClosure(p *Pass) error {
	if !IsHotPath(p.Path) {
		return nil
	}
	for _, f := range p.SourceFiles() {
		funcDecls(f, func(fd *ast.FuncDecl) {
			isFormatting := formattingMethods[fd.Name.Name]
			var stack []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return false
				}
				stack = append(stack, n)
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				p.checkClosureSeam(call)
				if !isFormatting {
					p.checkFmtAlloc(call, stack)
				}
				p.checkBoxing(call)
				return true
			})
		})
	}
	return nil
}

// checkClosureSeam flags a func literal passed to a method when the
// receiver also offers the closure-free M+"Func" or M+"Fn" form.
func (p *Pass) checkClosureSeam(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := p.Info.Selections[sel]
	if s == nil {
		return
	}
	alt := closureFreeAlt(s.Recv(), sel.Sel.Name)
	if alt == "" {
		return
	}
	for _, arg := range call.Args {
		if _, isLit := arg.(*ast.FuncLit); isLit {
			p.Reportf(arg.Pos(), "closure literal passed to (%s).%s allocates per call on a pooled hot path; use the closure-free %s with a pre-bound func and arg",
				s.Recv().String(), sel.Sel.Name, alt)
		}
	}
}

// closureFreeAlt returns the name of a closure-free sibling of method
// name in recv's method set (name+"Func" or name+"Fn"), if any.
func closureFreeAlt(recv types.Type, name string) string {
	for _, suffix := range []string{"Func", "Fn"} {
		altName := name + suffix
		if hasMethod(recv, altName) {
			return altName
		}
	}
	return ""
}

func hasMethod(t types.Type, name string) bool {
	if types.NewMethodSet(t).Lookup(nil, name) != nil {
		return true
	}
	// Methods with pointer receivers when t is a value type.
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if types.NewMethodSet(types.NewPointer(t)).Lookup(nil, name) != nil {
			return true
		}
	}
	return false
}

// checkFmtAlloc flags fmt allocation calls unless the result feeds a
// terminal panic.
func (p *Pass) checkFmtAlloc(call *ast.CallExpr, stack []ast.Node) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || p.importedPkg(sel.X) != "fmt" || !fmtAllocFuncs[sel.Sel.Name] {
		return
	}
	if feedsPanic(stack) {
		return
	}
	p.Reportf(call.Pos(), "fmt.%s allocates on a pooled hot path (package %q); format lazily off the hot path or precompute",
		sel.Sel.Name, p.Path)
}

// feedsPanic reports whether the innermost enclosing call in stack is
// the panic builtin (panic(fmt.Sprintf(...)) is a terminal cold path).
func feedsPanic(stack []ast.Node) bool {
	// stack[len(stack)-1] is the fmt call itself.
	for i := len(stack) - 2; i >= 0; i-- {
		if outer, ok := stack[i].(*ast.CallExpr); ok {
			if id, isIdent := outer.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				return true
			}
			return false
		}
	}
	return false
}

// checkBoxing flags struct and array values passed into interface
// parameters: each such call boxes the value onto the heap. fmt calls
// are already flagged wholesale; pointers, basics, and values that are
// already interfaces are fine.
func (p *Pass) checkBoxing(call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && p.importedPkg(sel.X) == "fmt" {
		return
	}
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Struct, *types.Array:
			p.Reportf(arg.Pos(), "%s value %s boxed into interface parameter allocates per call on a pooled hot path; pass a pointer or a pre-boxed value",
				kindWord(at), types.ExprString(arg))
		}
	}
}

func kindWord(t types.Type) string {
	if _, ok := t.Underlying().(*types.Array); ok {
		return "array"
	}
	return "struct"
}

// paramType returns the type of argument i, accounting for variadics.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := params.At(n - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < n {
		return params.At(i).Type()
	}
	return nil
}
