package vet_test

import (
	"strings"
	"testing"

	"muxwise/internal/vet"
	"muxwise/internal/vet/vettest"
)

func TestWallclock(t *testing.T) {
	vettest.Run(t, "testdata/wallclock", []*vet.Analyzer{vet.Wallclock},
		"muxwise/internal/core",
		"muxwise/cmd/muxtool",
	)
}

func TestMapRange(t *testing.T) {
	vettest.Run(t, "testdata/maprange", []*vet.Analyzer{vet.MapRange},
		"muxwise/internal/metrics",
		"muxwise/internal/cluster",
	)
}

func TestHotClosure(t *testing.T) {
	vettest.Run(t, "testdata/hotclosure", []*vet.Analyzer{vet.HotClosure},
		"muxwise/internal/gpu",
		"muxwise/internal/cluster",
	)
}

func TestPoolSafety(t *testing.T) {
	vettest.Run(t, "testdata/poolsafety", []*vet.Analyzer{vet.PoolSafety},
		"muxwise/internal/sim",
		"muxwise/internal/cluster",
	)
}

// TestDirectives proves the exemption semantics end to end: a
// well-formed directive suppresses exactly one diagnostic on exactly
// one line for exactly one analyzer, and a directive missing its
// reason suppresses nothing and is itself an error.
func TestDirectives(t *testing.T) {
	vettest.Run(t, "testdata/directive",
		[]*vet.Analyzer{vet.Wallclock, vet.MapRange, vet.Directive},
		"muxwise/internal/core",
	)
}

func TestRoster(t *testing.T) {
	want := []string{"wallclock", "maprange", "hotclosure", "poolsafety", "directive"}
	got := vet.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
		if line, _, _ := strings.Cut(a.Doc, "\n"); strings.TrimSpace(line) == "" {
			t.Errorf("analyzer %q has an empty one-line doc", a.Name)
		}
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		path          string
		critical, hot bool
	}{
		{"muxwise", true, false},
		{"muxwise/internal/sim", true, true},
		{"muxwise/internal/gpu", true, true},
		{"muxwise/internal/metrics", true, true},
		{"muxwise/internal/kvcache", true, true},
		{"muxwise/internal/par", true, true},
		{"muxwise/internal/frontier", true, false},
		{"muxwise/internal/roofline", true, true},
		{"muxwise/internal/cluster", true, false},
		{"muxwise/internal/cluster/epp", true, true},
		{"muxwise/cmd/muxtool", false, false},
		{"muxwise/internal/vet", false, false},
		{"fmt", false, false},
	}
	for _, c := range cases {
		if got := vet.IsSimCritical(c.path); got != c.critical {
			t.Errorf("IsSimCritical(%q) = %v, want %v", c.path, got, c.critical)
		}
		if got := vet.IsHotPath(c.path); got != c.hot {
			t.Errorf("IsHotPath(%q) = %v, want %v", c.path, got, c.hot)
		}
	}
}
