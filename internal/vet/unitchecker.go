package vet

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// UnitConfig mirrors the JSON that cmd/go writes to each package's
// vet.cfg when driving a -vettool (see cmd/go/internal/work.vetConfig).
// The stock vet tool consumes this through x/tools' unitchecker; this
// repo has no external dependencies, so muxvet speaks the protocol
// directly with a stdlib importer over the export data cmd/go already
// built.
type UnitConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string

	SucceedOnTypecheckFailure bool
}

// RunUnit executes analyzers over the single package described by the
// vet.cfg at cfgPath and returns the process exit code: 0 clean, 1
// diagnostics found, 2 internal error. Diagnostics go to stderr in the
// usual file:line:col form; when GITHUB_ACTIONS is set they are also
// emitted as workflow error annotations on stdout.
func RunUnit(cfgPath string, analyzers []*Analyzer) int {
	cfg, err := readUnitConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "muxvet: %v\n", err)
		return 2
	}
	// muxvet's analyzers export no facts, but cmd/go caches the vetx
	// output file, so always leave an (empty) one behind.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "muxvet: writing vetx output: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "muxvet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		Error:     func(error) {}, // keep going; the final error decides
	}
	info := NewInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "muxvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, err := Analyze(&Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "muxvet: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	annotate := os.Getenv("GITHUB_ACTIONS") == "true"
	workspace := os.Getenv("GITHUB_WORKSPACE")
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
		if annotate {
			file := d.Pos.Filename
			if workspace != "" {
				if rel, err := filepath.Rel(workspace, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			fmt.Fprintf(os.Stdout, "::error file=%s,line=%d,col=%d::muxvet %s: %s\n",
				file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	return 1
}

// NewInfo returns a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

func readUnitConfig(path string) (*UnitConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}
