package vet

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolSafety guards the pooled-record lifecycle introduced in PR 7:
// fired/cancelled events, retired GPU runs, and evicted radix nodes go
// back on free lists and are recycled, so holding one past its release
// point corrupts an unrelated later schedule.
var PoolSafety = &Analyzer{
	Name: "poolsafety",
	Doc: "flag pooled records retained past release and Handle slot access without a generation check\n\n" +
		"Three rules: (1) a pooled record type (sim.Event, gpu.run,\n" +
		"kvcache.node) must not be named outside its home package — callers\n" +
		"hold generation-checked Handles; (2) after a release call (release,\n" +
		"releaseRun, or a free-list append) the released variable must not\n" +
		"be read again in the same block; (3) inside the home package, a\n" +
		"Handle's slot field must only be dereferenced under a Pending()\n" +
		"generation check, so Cancel on a recycled slot stays a no-op.",
	Run: runPoolSafety,
}

// pooledTypes are the recycled record types and their home packages.
type pooledType struct {
	pkg  string
	name string
}

var pooledRecordTypes = []pooledType{
	{modulePath + "/internal/sim", "Event"},
	{modulePath + "/internal/gpu", "run"},
	{modulePath + "/internal/kvcache", "node"},
}

// handleSpec describes a generation-checked handle: accessing slotField
// outside guardMethod requires a prior guardMethod() call on the same
// receiver within the function.
type handleSpec struct {
	pkg         string
	name        string
	slotField   string
	guardMethod string
}

var handleSpecs = []handleSpec{
	{modulePath + "/internal/sim", "Handle", "ev", "Pending"},
}

func runPoolSafety(p *Pass) error {
	for _, f := range p.SourceFiles() {
		p.checkForeignRetention(f)
		p.checkUseAfterRelease(f)
		p.checkUnguardedSlotAccess(f)
	}
	return nil
}

// isPooledTypeName reports whether obj names a pooled record type.
func isPooledTypeName(obj types.Object) (pooledType, bool) {
	tn, ok := obj.(*types.TypeName)
	if !ok || tn.Pkg() == nil {
		return pooledType{}, false
	}
	for _, pt := range pooledRecordTypes {
		if tn.Name() == pt.name && tn.Pkg().Path() == pt.pkg {
			return pt, true
		}
	}
	return pooledType{}, false
}

// isPooledValue reports whether t is (a pointer to) a pooled record.
func isPooledValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	_, ok = isPooledTypeName(named.Obj())
	return ok
}

// Rule 1: a pooled record type named outside its home package is a
// retention hazard — the pool will recycle the slot under the holder.
func (p *Pass) checkForeignRetention(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		pt, ok := isPooledTypeName(obj)
		if !ok || pt.pkg == p.Path {
			return true
		}
		p.Reportf(id.Pos(), "pooled record %s.%s must not be retained outside %s; its slot is recycled after release — hold a generation-checked Handle instead",
			pathBase(pt.pkg), pt.name, pt.pkg)
		return true
	})
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Rule 2: after a release, the variable is dead. A release is a call
// to a function whose name starts with "release" taking the value, or
// a free-list append (x.free = append(x.free, v)).
func (p *Pass) checkUseAfterRelease(f *ast.File) {
	funcDecls(f, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				released := p.releasedIn(stmt)
				if released == nil {
					continue
				}
				p.flagLaterUse(block.List[i+1:], released)
			}
			return true
		})
	})
}

// releasedIn returns the object of a pooled variable released by stmt,
// or nil.
func (p *Pass) releasedIn(stmt ast.Stmt) types.Object {
	var released types.Object
	ast.Inspect(stmt, func(n ast.Node) bool {
		if released != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		isRelease := strings.HasPrefix(name, "release") || strings.HasPrefix(name, "Release")
		isFreeAppend := false
		if !isRelease && p.isBuiltinAppend(call) && len(call.Args) >= 2 {
			if dst, ok := call.Args[0].(*ast.SelectorExpr); ok && dst.Sel.Name == "free" {
				isFreeAppend = true
			}
		}
		if !isRelease && !isFreeAppend {
			return true
		}
		args := call.Args
		if isFreeAppend {
			args = call.Args[1:]
		}
		for _, arg := range args {
			id, ok := arg.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := p.objectOf(id); obj != nil && isPooledValue(obj.Type()) {
				released = obj
				return false
			}
		}
		return true
	})
	return released
}

// flagLaterUse reports the first read of obj in stmts; a plain
// reassignment of obj re-binds it and ends tracking.
func (p *Pass) flagLaterUse(stmts []ast.Stmt, obj types.Object) {
	for _, stmt := range stmts {
		if rebindsObj(p, stmt, obj) {
			return
		}
		var usePos ast.Node
		ast.Inspect(stmt, func(n ast.Node) bool {
			if usePos != nil {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && p.objectOf(id) == obj {
				usePos = id
				return false
			}
			return true
		})
		if usePos != nil {
			p.Reportf(usePos.Pos(), "%s is used after being released to the pool; the slot may already be recycled for an unrelated schedule",
				obj.Name())
			return
		}
	}
}

// rebindsObj reports whether stmt assigns a fresh value to obj (alone
// on the LHS), which legitimizes further use.
func rebindsObj(p *Pass, stmt ast.Stmt, obj types.Object) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && p.objectOf(id) == obj {
			// Make sure the RHS doesn't itself read the dead value.
			reads := false
			for _, rhs := range as.Rhs {
				ast.Inspect(rhs, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && p.objectOf(id) == obj {
						reads = true
					}
					return !reads
				})
			}
			return !reads
		}
	}
	return false
}

// Rule 3: inside the handle's home package, slot access needs the
// generation check.
func (p *Pass) checkUnguardedSlotAccess(f *ast.File) {
	var spec *handleSpec
	for i := range handleSpecs {
		if handleSpecs[i].pkg == p.Path {
			spec = &handleSpecs[i]
			break
		}
	}
	if spec == nil {
		return
	}
	funcDecls(f, func(fd *ast.FuncDecl) {
		if fd.Name.Name == spec.guardMethod {
			return // the guard itself implements the generation check
		}
		// Receivers (by textual key) that have a guard call somewhere
		// in this function.
		guarded := make(map[string]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == spec.guardMethod {
				guarded[exprKey(sel.X)] = true
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != spec.slotField {
				return true
			}
			base := p.Info.TypeOf(sel.X)
			if base == nil || !isHandleType(base, spec) {
				return true
			}
			if guarded[exprKey(sel.X)] {
				return true
			}
			p.Reportf(sel.Pos(), "%s.%s accessed without a generation check; guard with %s.%s() so a recycled slot cannot be touched",
				exprKey(sel.X), spec.slotField, exprKey(sel.X), spec.guardMethod)
			return true
		})
	})
}

func isHandleType(t types.Type, spec *handleSpec) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == spec.name && obj.Pkg() != nil && obj.Pkg().Path() == spec.pkg
}
