package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one parsed //muxvet: comment.
//
//	//muxvet:allow <analyzer> <reason...>   exempt one analyzer
//	//muxvet:ordered <reason...>            exempt maprange specifically
//
// A trailing directive (sharing its line with code) covers exactly its
// own line; a directive on a line of its own covers exactly the next
// line. The reason is mandatory: a directive without one suppresses
// nothing and is itself reported by the directive analyzer.
type directive struct {
	pos      token.Pos
	posn     token.Position
	verb     string
	analyzer string // allow only
	reason   string
	errMsg   string // non-empty when malformed; malformed directives never suppress
	ownLine  bool   // comment is alone on its line (covers the next line)
}

// coveredLine returns the line this directive exempts.
func (d *directive) coveredLine() int {
	if d.ownLine {
		return d.posn.Line + 1
	}
	return d.posn.Line
}

type directiveSet struct {
	all []*directive
	// byFileLine indexes well-formed directives by covered (file, line).
	byFileLine map[string]map[int][]*directive
}

const directivePrefix = "//muxvet:"

// parseDirectives scans every comment in files for //muxvet:
// directives. Files must have been parsed with parser.ParseComments.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byFileLine: make(map[string]map[int][]*directive)}
	for _, f := range files {
		codeLines := codeLineSet(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := parseDirective(c.Text[len(directivePrefix):])
				d.pos = c.Pos()
				d.posn = fset.Position(c.Pos())
				d.ownLine = !codeLines[d.posn.Line]
				ds.all = append(ds.all, d)
				if d.errMsg == "" {
					file := d.posn.Filename
					if ds.byFileLine[file] == nil {
						ds.byFileLine[file] = make(map[int][]*directive)
					}
					line := d.coveredLine()
					ds.byFileLine[file][line] = append(ds.byFileLine[file][line], d)
				}
			}
		}
	}
	return ds
}

// parseDirective parses the text after "//muxvet:".
func parseDirective(rest string) *directive {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return &directive{errMsg: "empty //muxvet: directive (expected //muxvet:allow <analyzer> <reason> or //muxvet:ordered <reason>)"}
	}
	d := &directive{verb: fields[0]}
	switch d.verb {
	case "allow":
		if len(fields) < 2 || !byName()[fields[1]] {
			d.errMsg = fmt.Sprintf("//muxvet:allow needs a known analyzer name (one of %s)", strings.Join(analyzerNames(), ", "))
			return d
		}
		d.analyzer = fields[1]
		if len(fields) < 3 {
			d.errMsg = fmt.Sprintf("//muxvet:allow %s requires a reason", d.analyzer)
			return d
		}
		d.reason = strings.Join(fields[2:], " ")
	case "ordered":
		if len(fields) < 2 {
			d.errMsg = "//muxvet:ordered requires a reason"
			return d
		}
		d.reason = strings.Join(fields[1:], " ")
	default:
		d.errMsg = fmt.Sprintf("unknown directive //muxvet:%s (valid: allow, ordered)", d.verb)
	}
	return d
}

func analyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// suppresses reports whether a well-formed directive covers d.
func (ds *directiveSet) suppresses(d Diagnostic) bool {
	for _, dir := range ds.byFileLine[d.Pos.Filename][d.Pos.Line] {
		switch dir.verb {
		case "allow":
			if dir.analyzer == d.Analyzer {
				return true
			}
		case "ordered":
			if d.Analyzer == MapRange.Name {
				return true
			}
		}
	}
	return false
}

// codeLineSet returns the set of lines in f that carry non-comment
// tokens, so a trailing directive can be told apart from one on a line
// of its own.
func codeLineSet(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// Directive validates the //muxvet: exemption comments themselves.
var Directive = &Analyzer{
	Name: "directive",
	Doc: "validate //muxvet:allow and //muxvet:ordered exemption directives (reason mandatory)\n\n" +
		"Every exemption must name a known analyzer (for allow) and carry a\n" +
		"non-empty reason. A malformed directive suppresses nothing and is\n" +
		"reported here, so a bare //muxvet:allow can never silently disable\n" +
		"a check.",
	Run: func(p *Pass) error {
		ds := parseDirectives(p.Fset, p.Files)
		for _, d := range ds.all {
			if d.errMsg != "" {
				p.Reportf(d.pos, "%s", d.errMsg)
			}
		}
		return nil
	},
}
