// Package perf holds the repo's committed hot-path benchmarks: the core
// engine event loop, the lifecycle-managed cluster fleet, and the router
// Pick path. The bodies live here (not in _test files) so cmd/muxbench
// can run them through testing.Benchmark and commit the results as
// BENCH_simcore.json — the per-commit events/sec and allocs/request
// trend CI gates on.
//
// Every benchmark replays a fixed seeded workload, so the work per
// iteration is deterministic: op-to-op variance is the machine, not the
// simulation. Each body reports
//
//	req/op      requests replayed per iteration
//	events/op   simulator events fired per iteration
//	events/s    simulator events dispatched per wall-clock second
//	ns/req      wall-clock nanoseconds per simulated request
//
// alongside the standard ns/op and allocs/op, so allocs/request — the
// machine-independent number the CI gate compares — is AllocsPerOp
// divided by req/op.
package perf

import (
	"testing"

	"muxwise"
	"muxwise/internal/cluster"
	"muxwise/internal/sim"
)

// deployment is the fixed hardware/model point every benchmark runs on:
// one A100 serving Llama-8B, the repo's smallest self-contained config.
func deployment() muxwise.Option {
	return muxwise.WithDeployment(muxwise.Deployment{
		Hardware: "A100", GPUs: 1, Model: "Llama-8B",
	})
}

// report derives the throughput metrics from the iteration totals.
func report(b *testing.B, events, reqs int64) {
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(float64(reqs)/float64(b.N), "req/op")
	if ns := b.Elapsed().Nanoseconds(); ns > 0 && reqs > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(float64(ns)/float64(reqs), "ns/req")
	}
}

// EngineStep replays a ShareGPT trace through a single MuxWise engine —
// the core prefill/decode event loop with no fleet machinery around it.
func EngineStep(b *testing.B) {
	trace := muxwise.ShareGPT(1, 200).WithPoissonArrivals(1, 8)
	var events, reqs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := muxwise.NewExperiment(deployment(), muxwise.WithEngine("MuxWise")).Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Engine.Loop.Fired
		reqs += int64(rep.Summary.Requests)
	}
	b.StopTimer()
	report(b, events, reqs)
}

// FleetTick replays the Fig. 13 bursty mix through a lifecycle-managed
// fleet with the backlog autoscaler — router picks, fleet-controller
// cadence ticks, spawns and retires all on the clock.
func FleetTick(b *testing.B) {
	trace := muxwise.MixedBursty(1, 40, 0.3)
	var events, reqs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := muxwise.NewExperiment(
			deployment(),
			muxwise.WithFleet(muxwise.ReplicaSpec{Engine: "MuxWise", Count: 2}),
			muxwise.WithRouter("least-tokens"),
			muxwise.WithAutoscaler("backlog"),
			muxwise.WithScaleBounds(1, 4),
		).Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Fleet.Loop.Fired
		reqs += int64(rep.Summary.Requests)
	}
	b.StopTimer()
	report(b, events, reqs)
}

// RouterPick drives the prefix-affinity policy — the default and most
// stateful router — over a multi-turn trace against a static candidate
// set, isolating the per-arrival Pick cost from the simulation.
func RouterPick(b *testing.B) {
	trace := muxwise.Conversation(1, 100)
	cands := make([]*cluster.Replica, 4)
	for i := range cands {
		cands[i] = &cluster.Replica{ID: i, Name: "bench"}
	}
	policy := cluster.Policies()[cluster.PrefixAffinityPolicy]
	var reqs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh router per iteration: Pick mutates policy state
		// (session stickiness, prefix indexes), and every iteration must
		// replay identical work.
		r := policy()
		for j, req := range trace.Requests {
			view := cluster.FleetView{Now: sim.Time(j), Candidates: cands}
			if rep := r.Pick(req, view); rep == nil {
				b.Fatal("router picked no replica")
			}
		}
		reqs += int64(trace.Len())
	}
	b.StopTimer()
	report(b, reqs, reqs)
}
