package perf

import "testing"

// The committed hot-path benchmarks, runnable the standard way:
//
//	go test ./internal/perf -bench . -benchmem
//
// cmd/muxbench runs the same bodies through testing.Benchmark to emit
// and gate BENCH_simcore.json.
func BenchmarkEngineStep(b *testing.B) { EngineStep(b) }
func BenchmarkFleetTick(b *testing.B)  { FleetTick(b) }
func BenchmarkRouterPick(b *testing.B) { RouterPick(b) }
