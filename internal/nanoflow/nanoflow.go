// Package nanoflow implements the NanoFlow baseline (§4.1): chunked
// prefill enhanced with operator-level intra-GPU multiplexing. Each fused
// iteration splits into two nano-batches so compute-bound kernels overlap
// memory- and communication-bound ones. The overlap buys efficiency when
// the iteration is compute-bound (large token budgets), but every decode
// iteration reloads model weights once per nano-batch — the degradation
// the paper observes under SLO-constrained small budgets, amplified on
// Llama-70B where the reload is 2× of a 140 GB stream (§4.2.1).
package nanoflow

import (
	"muxwise/internal/chunked"
	"muxwise/internal/model"
	"muxwise/internal/serve"
)

// overlapBonus is the MFU improvement nano-batch overlapping yields when
// the iteration is compute-bound.
const overlapBonus = 1.15

// nanoBatches is NanoFlow's fixed split factor (§4.2.1: "split each chunk
// into 2 nano batches, thus duplicating loading for each decode
// iteration").
const nanoBatches = 2

// New builds a NanoFlow engine. It uses the same SLO-tuned token budget
// as chunked-prefill (the paper's 1024+ preference cannot meet ≤100 ms
// TBT SLOs, §4.1).
func New(env *serve.Env) serve.Engine {
	e := chunked.NewWithBudget(env, chunked.BudgetFor(env))
	e.EngineName = "NanoFlow"
	weights := env.Arch.LayerWeightBytes() * float64(env.Arch.Layers)
	if env.Arch.MoE() {
		weights = env.Arch.ActiveLayerWeightBytes() * float64(env.Arch.Layers)
	}
	e.Transform = func(cost model.Cost, chunkTokens int) (model.Cost, float64) {
		// Each extra nano-batch re-streams the weights.
		cost.Bytes += float64(nanoBatches-1) * weights
		// Overlap raises effective MFU for the compute stream.
		mfu := env.Spec.MFUPrefill * overlapBonus
		if chunkTokens == 0 {
			mfu = env.Spec.MFUDecode * overlapBonus
		}
		return cost, mfu
	}
	return e
}
