package nanoflow

import (
	"testing"

	"muxwise/internal/chunked"
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

func cfg(arch model.Arch, tbt sim.Time) serve.Config {
	return serve.Config{
		Spec: gpu.A100(), GPUs: 8, Arch: arch,
		SLO: metrics.SLO{TTFT: sim.Second, TBT: tbt},
	}
}

func TestServesTrace(t *testing.T) {
	tr := workload.ShareGPT(1, 100).WithPoissonArrivals(1, 1)
	res := serve.Run(New, cfg(model.Llama8B(), 50*sim.Millisecond), tr)
	if res.Summary.Finished != 100 {
		t.Fatalf("finished %d/100", res.Summary.Finished)
	}
	if res.Summary.Name != "NanoFlow" {
		t.Fatalf("name = %q", res.Summary.Name)
	}
}

// §4.2.1: on Llama-70B the nano-batch weight reload doubles a ~140 GB
// stream per decode iteration, so NanoFlow's TBT is strictly worse than
// plain chunked-prefill under the same SLO-tuned budget.
func TestWeightReloadHurts70B(t *testing.T) {
	tr := func(seed uint64) *workload.Trace {
		return workload.ToolAgent(seed, 80).WithPoissonArrivals(seed, 0.3)
	}
	c := serve.Run(chunked.New, cfg(model.Llama70B(), 100*sim.Millisecond), tr(2)).Summary
	n := serve.Run(New, cfg(model.Llama70B(), 100*sim.Millisecond), tr(2)).Summary
	if n.TBT.P50 <= c.TBT.P50 {
		t.Fatalf("NanoFlow p50 TBT %.1fms should exceed chunked %.1fms on 70B",
			n.TBT.P50*1e3, c.TBT.P50*1e3)
	}
}
