package experiments

import (
	"muxwise/internal/cluster"
	"muxwise/internal/core"
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Routers compares every fleet router policy's goodput on the Fig. 13
// bursty Conversation profile over a heterogeneous A100+H100 MuxWise
// fleet — the instance-assignment layer's analogue of the Fig. 15
// goodput comparison. The searched axis is the burst scale the fleet
// sustains under the §4 criterion; session-affine and learned policies
// beat load-only scoring because multi-turn KV stays where it was
// cached and cold traffic drifts toward the faster replica.
func Routers(o Opts) []Table {
	// Even the quick scale keeps enough sessions to load the two-replica
	// fleet past its SLO wall inside the searched range — lighter traces
	// saturate at hi and the policies become indistinguishable.
	sessions := o.Size(120, 80)
	lo, hi := 2.0, 16.0
	mk := func(scale float64) *workload.Trace {
		return workload.Conversation(17, sessions).
			WithProfileArrivals(17, workload.ConversationProfile(scale))
	}
	base := serve.Config{
		Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond},
	}
	t := Table{
		ID:    "routers",
		Title: "router-policy goodput, bursty Conversation (burst scale sustained)",
		Columns: []string{
			"router", "goodput-scale", "vs-least-tokens",
		},
		Notes: []string{
			"fleet: 1×MuxWise/A100 + 1×MuxWise/H100; n/a = floor scale misses the SLO",
		},
	}
	goodputs := map[string]float64{}
	// The trailing entry is not a registered policy but an inline EPP
	// composition spec — config-only construction competing in the same
	// sweep as the built-ins, resolved through the same seam the CLI and
	// WithRouter use.
	names := append(cluster.PolicyNames(), "epp:scorers=prefix:2,least-tokens:1")
	for _, name := range names {
		policy, err := cluster.ResolvePolicy(name)
		if err != nil {
			goodputs[name] = 0
			continue
		}
		cfg := cluster.Config{
			Base: base,
			Replicas: []cluster.ReplicaSpec{
				{Engine: "MuxWise", Factory: core.New, Count: 1, Hardware: gpu.A100()},
				{Engine: "MuxWise", Factory: core.New, Count: 1, Hardware: gpu.H100()},
			},
			Policy: policy,
		}
		g, feasible, err := cluster.Goodput(cfg, mk, lo, hi)
		if err != nil || !feasible {
			goodputs[name] = 0
			continue
		}
		goodputs[name] = g
	}
	ref := goodputs[cluster.LeastTokensPolicy]
	for _, name := range names {
		g := goodputs[name]
		switch {
		case g == 0:
			t.Add(name, "n/a", "-")
		case ref > 0:
			t.Addf("", name, g, goodputs[name]/ref)
		default:
			t.Addf("", name, g, "-")
		}
	}
	return []Table{t}
}
