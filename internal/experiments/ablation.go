package experiments

import (
	"fmt"

	"muxwise/internal/chunked"
	"muxwise/internal/core"
	"muxwise/internal/estimator"
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/par"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/temporal"
	"muxwise/internal/windserve"
	"muxwise/internal/workload"
)

// Fig19 reproduces Figure 19: P99 TBT of MuxWise against its ablated
// variants (w/o layer-wise bubble-less scheduling; further w/o
// query-based synchronization) on Tool&Agent.
func Fig19(o Opts) []Table {
	var out []Table
	cases := []struct {
		cfg  serve.Config
		rate float64
		seed uint64
	}{
		{config8B(), 4.0, 501},
		{config70B(), 0.5, 502},
	}
	if o.Quick {
		cases = cases[1:]
	}
	sessions := o.Size(500, 60)
	variants := []struct {
		name string
		opts core.Options
	}{
		{"MuxWise", core.DefaultOptions()},
		{"MuxWise w/o B", core.Options{LayerWise: false, QuerySync: true}},
		{"MuxWise w/o B&Q", core.Options{LayerWise: false, QuerySync: false}},
	}
	for _, c := range cases {
		t := Table{
			ID:      "fig19",
			Title:   fmt.Sprintf("bubble-less engine ablation, %s on Tool&Agent @%.2g req/s", c.cfg.Arch.Name, c.rate),
			Columns: []string{"variant", "p99 TBT(ms)", "attain%"},
		}
		for _, v := range variants {
			v := v
			f := func(env *serve.Env) serve.Engine { return core.NewWithOptions(env, v.opts) }
			tr := workload.ToolAgent(c.seed, sessions).WithPoissonArrivals(c.seed, c.rate)
			res := serve.Run(f, c.cfg, tr)
			t.Add(v.name, ms(res.Summary.TBT.P99),
				fmt.Sprintf("%.1f", res.Rec.TBTAttainment(c.cfg.SLO.TBT)*100))
		}
		t.Notes = append(t.Notes,
			"paper: w/o layer-wise adds ~10ms (prefill launch time); w/o query-sync degrades by 314ms (8B) / 672ms (70B)")
		out = append(out, t)
	}

	// Extension ablation (motivated by §3.3): sizing the decode
	// partition from solo predictions alone, without the contention
	// guard's worst-case factor.
	g := Table{
		ID:      "fig19-guard",
		Title:   "contention-guard ablation (worst-case vs solo-only estimation)",
		Columns: []string{"variant", "TBT slack headroom", "attain%"},
	}
	for _, v := range []struct {
		name string
		opts core.Options
	}{
		{"with guard", core.DefaultOptions()},
		{"w/o guard", core.Options{LayerWise: true, QuerySync: true, Preemption: true, NoGuard: true}},
	} {
		v := v
		f := func(env *serve.Env) serve.Engine { return core.NewWithOptions(env, v.opts) }
		tr := workload.ToolAgent(503, sessions).WithPoissonArrivals(503, 0.5)
		cfg := config70B()
		// A tight SLO exposes the unguarded variant: contention inflates
		// iterations past a target the solo model judged safe.
		cfg.SLO.TBT = 45 * sim.Millisecond
		res := serve.Run(f, cfg, tr)
		head := (cfg.SLO.TBT.Seconds() - res.Summary.TBT.P99) * 1e3
		g.Add(v.name, fmt.Sprintf("%.1fms", head),
			fmt.Sprintf("%.2f", res.Rec.TBTAttainment(cfg.SLO.TBT)*100))
	}
	g.Notes = append(g.Notes, "guarded sizing keeps worst-case iterations inside the target; solo-only sizing leaves violations to contention")
	out = append(out, g)
	return out
}

// Sec431 reproduces §4.3.1: Llama-8B on a single A100 serving ShareGPT —
// MuxWise improves goodput ~1.2× over chunked-prefill even without
// chunking pressure, because a strict TBT SLO forces a small budget.
func Sec431(o Opts) []Table {
	cfg := serve.Config{
		Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: 500 * sim.Millisecond, TBT: 50 * sim.Millisecond},
	}
	mk := func(rate float64) *workload.Trace {
		// Fixed-duration probes: the trace must outlast the stability
		// grace at every rate, or overload never accumulates.
		n := o.Size(max(600, int(rate*120)), 150)
		return workload.ShareGPT(431, n).WithPoissonArrivals(431+uint64(rate*100), rate)
	}
	lo, hi := 0.5, 60.0
	if o.Quick {
		hi = 2.0
	}
	t := Table{
		ID:      "sec431",
		Title:   "single A100, Llama-8B, ShareGPT goodput",
		Columns: []string{"system", "goodput(req/s)"},
	}
	factories := []serve.Factory{core.New, chunked.New}
	gs := par.RunIndexed(len(factories), func(i int) float64 {
		return serve.Goodput(factories[i], cfg, mk, lo, hi)
	})
	gm, gc := gs[0], gs[1]
	t.Add("MuxWise", fmt.Sprintf("%.2f", gm))
	t.Add("Chunked", fmt.Sprintf("%.2f", gc))
	if gc > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("ratio %.2f× (paper: 1.2×)", gm/gc))
	}
	return []Table{t}
}

// Sec45 reproduces §4.5: the memory and runtime overheads of realizing
// PD-multiplexing.
func Sec45(o Opts) []Table {
	mem := Table{
		ID:      "sec45-memory",
		Title:   "memory overhead of green contexts + per-config CUDA graphs",
		Columns: []string{"item", "bytes", "% of 8×A100 HBM"},
	}
	total := float64(8) * float64(80<<30)
	greenCtx := 4.0 * float64(1<<20) // 4 MB per green-context group
	// The serving system records decode graphs for ~20 batch sizes; each
	// decode-phase compute partition (6 configs on A100) re-records them.
	configs := float64(len(gpu.A100().PartitionSizes()))
	batchSizes := 20.0
	perGraph := 330.0 * float64(1<<20) // graph memory per recorded batch size
	graphs := configs * batchSizes * perGraph
	mem.Add("green contexts", fmt.Sprintf("%.0f", greenCtx), fmt.Sprintf("%.4f", greenCtx/total*100))
	mem.Add("CUDA graphs (6 cfg × 20 bs)", fmt.Sprintf("%.3g", graphs), fmt.Sprintf("%.1f", graphs/total*100))
	mem.Notes = append(mem.Notes, "paper: green contexts ~4MB (negligible); graph integration costs 6.2%")

	run := Table{
		ID:      "sec45-runtime",
		Title:   "layer-wise launch overhead vs whole-phase prefill",
		Columns: []string{"model", "batch", "whole(ms)", "layer-wise(ms)", "overhead%"},
	}
	archs := []model.Arch{model.Llama8B(), model.Llama70B()}
	if o.Quick {
		archs = archs[1:]
	}
	for _, a := range archs {
		for _, seq := range []model.Seq{{New: 2048}, {New: 8192, Reused: 8192}} {
			layered := estimator.MeasurePrefillSolo(gpu.A100(), 8, a, 108, []model.Seq{seq})
			ideal := measurePhaseNoLaunch(gpu.A100(), 8, a, []model.Seq{seq})
			over := (layered - ideal) / ideal * 100
			run.Add(a.Name, fmt.Sprintf("n=%d r=%d", seq.New, seq.Reused),
				ms(ideal), ms(layered), fmt.Sprintf("%.2f", over))
		}
	}
	run.Notes = append(run.Notes, "paper: total layer-wise launch overhead within 1.5%")
	return []Table{mem, run}
}

// measurePhaseNoLaunch measures a whole prefill phase as one kernel with
// zero launch cost — the launch-overhead-free reference the layer-wise
// overhead is judged against.
func measurePhaseNoLaunch(spec gpu.Spec, tp int, arch model.Arch, seqs []model.Seq) float64 {
	s := newSim()
	d := gpu.NewDevice(s, spec, tp, "ref")
	p := d.Partition(spec.SMs, "phase")
	phase := arch.PrefillPhase(seqs, tp)
	var done float64
	p.Launch(gpu.Kernel{
		Kind: gpu.Prefill, FLOPs: phase.FLOPs, Bytes: phase.Bytes,
		CommBytes: phase.CommBytes, Tokens: phase.Tokens,
	}, func() { done = s.Now().Seconds() })
	s.Run()
	return done
}

// Sec6 reproduces the §6 related-work comparisons: MuxWise vs the
// WindServe-style stream multiplexer (paper: 1.61× goodput on ShareGPT,
// A100, Llama-8B, 50 ms TBT) and vs the temporal-only layer-sliced
// variant (paper: at least 20% worse than MuxWise).
func Sec6(o Opts) []Table {
	cfg := serve.Config{
		Spec: gpu.A100(), GPUs: 1, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: 500 * sim.Millisecond, TBT: 50 * sim.Millisecond},
	}
	mk := func(rate float64) *workload.Trace {
		n := o.Size(max(600, int(rate*120)), 150)
		return workload.ShareGPT(61, n).WithPoissonArrivals(61+uint64(rate*100), rate)
	}
	lo, hi := 0.5, 60.0
	if o.Quick {
		hi = 2.0
	}
	t := Table{
		ID:      "sec6",
		Title:   "related multiplexers, ShareGPT goodput (A100×1, Llama-8B)",
		Columns: []string{"system", "goodput(req/s)", "MuxWise ratio"},
	}
	factories := []serve.Factory{core.New, windserve.New, temporal.New}
	gs := par.RunIndexed(len(factories), func(i int) float64 {
		return serve.Goodput(factories[i], cfg, mk, lo, hi)
	})
	gm, gw, gt := gs[0], gs[1], gs[2]
	add := func(name string, g float64) {
		ratio := "n/a"
		if g > 0 {
			ratio = fmt.Sprintf("%.2f×", gm/g)
		}
		t.Add(name, fmt.Sprintf("%.2f", g), ratio)
	}
	add("MuxWise", gm)
	add("WindServe", gw)
	add("Temporal", gt)
	t.Notes = append(t.Notes, "paper: 1.61× over WindServe; temporal-only ≥20% worse")
	_ = metrics.SLO{}
	return []Table{t}
}
