package experiments

import (
	"fmt"

	"muxwise/internal/workload"
)

// Table1 regenerates Table 1: min/mean/max statistics of the five
// evaluated workloads from the trace generators.
func Table1(o Opts) []Table {
	t := Table{
		ID:      "tab1",
		Title:   "workload statistics (min/mean/max)",
		Columns: []string{"workload", "input", "output", "reused"},
	}
	n := o.Size(8000, 500)
	traces := []*workload.Trace{
		workload.ShareGPT(1, n),
		workload.LooGLE(1, n/4),
		workload.OpenThoughts(1, n/2),
		workload.Conversation(1, n/2),
		workload.ToolAgent(1, n/2),
	}
	for _, tr := range traces {
		s := tr.Stats()
		t.Add(tr.Name,
			fmt.Sprintf("%d/%d/%d", s.InMin, s.InMean, s.InMax),
			fmt.Sprintf("%d/%d/%d", s.OutMin, s.OutMean, s.OutMax),
			fmt.Sprintf("%d/%d/%d", s.ReuseMin, s.ReuseMean, s.ReuseMax))
	}
	t.Notes = append(t.Notes,
		"paper: ShareGPT 4/226/1024 & 4/195/1838; LooGLE 3380/30k/81k & 2/15/326;",
		"OpenThoughts 311/709/4633 & 684/8374/32k reuse 243; Conversation 891/7538/123k & 1/342/2000 reuse 0/4496/120k;",
		"Tool&Agent 891/8596/123k & 1/182/2000 reuse 0/4905/120k")
	return []Table{t}
}

// Fig13 regenerates Figure 13: per-minute request rates of the scaled
// real-world traces.
func Fig13(o Opts) []Table {
	t := Table{
		ID:      "fig13",
		Title:   "scaled real-world trace request rates (req/min)",
		Columns: []string{"minute", "Conv-8B", "Tool-8B", "Conv-70B", "Tool-70B"},
	}
	profiles := []workload.RateProfile{
		workload.ConversationProfile(scale8B),
		workload.ToolAgentProfile(scale8B),
		workload.ConversationProfile(scale70B),
		workload.ToolAgentProfile(scale70B),
	}
	series := make([][]float64, len(profiles))
	for i, p := range profiles {
		series[i] = p.RatePerMinute()
	}
	for m := range series[0] {
		row := []string{fmt.Sprintf("%d", m)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.0f", s[m]))
		}
		t.Add(row...)
	}
	// Burstiness check: max/min ratio within the trace.
	for i, p := range profiles {
		lo, hi := series[i][0], series[i][0]
		for _, v := range series[i] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: peak/base %.1f× (paper: spikes up to 13× within 1 min)", p.Name, hi/lo))
	}
	return []Table{t}
}

// Trace scale factors: Llama-8B serves the traces at a higher request
// rate than Llama-70B, as in Fig. 13's per-model scaling.
const (
	scale8B  = 3.0
	scale70B = 0.3
)
