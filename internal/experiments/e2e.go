package experiments

import (
	"fmt"

	"muxwise/internal/par"
	"muxwise/internal/serve"
	"muxwise/internal/workload"
)

// realTrace builds the scaled real-world trace for a (model, workload)
// cell of Fig. 14.
func realTrace(name string, scale float64, sessions int, seed uint64) *workload.Trace {
	var tr *workload.Trace
	var p workload.RateProfile
	switch name {
	case "Conversation":
		tr = workload.Conversation(seed, sessions)
		p = workload.ConversationProfile(scale)
	default:
		tr = workload.ToolAgent(seed, sessions)
		p = workload.ToolAgentProfile(scale)
	}
	return tr.WithProfileArrivals(seed, p)
}

// fig14Cell runs the five systems on one (model, workload) combination.
func fig14Cell(o Opts, cfg serve.Config, wl string, scale float64, seed uint64) Table {
	t := Table{
		ID:      "fig14",
		Title:   fmt.Sprintf("P99 TTFT/TBT, %s on %s", cfg.Arch.Name, wl),
		Columns: []string{"system", "p99 TTFT(s)", "p99 TBT(ms)", "TBT attain%", "state"},
	}
	sessions := o.Size(1200, 120)
	factories := Baselines()
	rows := par.RunIndexed(len(fig14Systems), func(i int) []string {
		name := fig14Systems[i]
		tr := realTrace(wl, scale, sessions, seed)
		res := serve.Run(factories[name], cfg, tr)
		state := "stable"
		if res.Summary.Unstable {
			state = "UNSTABLE"
		}
		return []string{name,
			sec(res.Summary.TTFT.P99),
			ms(res.Summary.TBT.P99),
			fmt.Sprintf("%.1f", res.Rec.TBTAttainment(cfg.SLO.TBT)*100),
			state}
	})
	for _, row := range rows {
		t.Add(row...)
	}
	return t
}

// Fig14 reproduces Figure 14: P99 TTFT and TBT for Llama-8B and
// Llama-70B on the Conversation and Tool&Agent real-world traces across
// the five systems.
func Fig14(o Opts) []Table {
	cells := []struct {
		cfg   serve.Config
		wl    string
		scale float64
		seed  uint64
	}{
		{config8B(), "Conversation", scale8B, 101},
		{config8B(), "Tool&Agent", scale8B, 102},
		{config70B(), "Conversation", scale70B, 103},
		{config70B(), "Tool&Agent", scale70B, 104},
	}
	if o.Quick {
		cells = cells[2:3]
	}
	var out []Table
	for _, c := range cells {
		tbl := fig14Cell(o, c.cfg, c.wl, c.scale, c.seed)
		tbl.Notes = append(tbl.Notes,
			"paper: MuxWise avg p99-TTFT speedups 3.57×/5.98×/4.65×/1.66× vs Chunked/NanoFlow/LoongServe/SGLang-PD;",
			"MuxWise and disaggregated systems meet TBT SLO, chunked-prefill and NanoFlow mostly fail")
		out = append(out, tbl)
	}
	return out
}

// Tables34 reproduces Tables 3-4: average and P50 of TTFT, TBT, E2E and
// TPOT for Llama-70B on both real-world workloads.
func Tables34(o Opts) []Table {
	var out []Table
	cells := []struct {
		wl   string
		id   string
		seed uint64
	}{
		{"Conversation", "tab3", 103},
		{"Tool&Agent", "tab4", 104},
	}
	if o.Quick {
		cells = cells[:1]
	}
	sessions := o.Size(1200, 120)
	factories := Baselines()
	for _, c := range cells {
		t := Table{
			ID:      c.id,
			Title:   fmt.Sprintf("other metrics, Llama-70B on %s", c.wl),
			Columns: []string{"system", "TTFT avg/p50 (s)", "TBT avg/p50 (ms)", "E2E avg/p50 (s)", "TPOT avg/p50 (ms)"},
		}
		rows := par.RunIndexed(len(fig14Systems), func(i int) []string {
			name := fig14Systems[i]
			tr := realTrace(c.wl, scale70B, sessions, c.seed)
			res := serve.Run(factories[name], config70B(), tr)
			s := res.Summary
			return []string{name,
				fmt.Sprintf("%.1f/%.1f", s.TTFT.Avg, s.TTFT.P50),
				fmt.Sprintf("%.1f/%.1f", s.TBT.Avg*1e3, s.TBT.P50*1e3),
				fmt.Sprintf("%.1f/%.1f", s.E2E.Avg, s.E2E.P50),
				fmt.Sprintf("%.1f/%.1f", s.TPOT.Avg*1e3, s.TPOT.P50*1e3)}
		})
		for _, row := range rows {
			t.Add(row...)
		}
		t.Notes = append(t.Notes, "paper Table 3/4: MuxWise leads every metric (one near-tie on P50 TBT in Table 4)")
		out = append(out, t)
	}
	return out
}

// poissonToolAgent builds the §4.2.3 workload: Tool&Agent requests with
// Poisson arrival timestamps at a given rate.
func poissonToolAgent(seed uint64, sessions int) func(rate float64) *workload.Trace {
	return func(rate float64) *workload.Trace {
		return workload.ToolAgent(seed, sessions).WithPoissonArrivals(seed+uint64(rate*1e3), rate)
	}
}

// Fig15 reproduces Figure 15: TBT SLO attainment under increasing
// Poisson rates, and the goodput ratios the abstract headlines.
func Fig15(o Opts) []Table {
	var out []Table
	cases := []struct {
		cfg   serve.Config
		rates []float64
		seed  uint64
	}{
		{config8B(), []float64{2, 4, 6, 8, 10, 12, 16, 20}, 201},
		{config70B(), []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.1}, 202},
	}
	if o.Quick {
		cases = cases[1:]
		cases[0].rates = []float64{0.1, 0.3}
	}
	sessions := o.Size(700, 80)
	factories := Baselines()
	for _, c := range cases {
		t := Table{
			ID:      "fig15",
			Title:   fmt.Sprintf("SLO attainment vs rate, %s on Tool&Agent (TBT %v)", c.cfg.Arch.Name, c.cfg.SLO.TBT),
			Columns: append([]string{"system"}, rateCols(c.rates)...),
		}
		good := Table{
			ID:      "fig15-goodput",
			Title:   fmt.Sprintf("goodput (max rate with 99%%-ile SLO), %s", c.cfg.Arch.Name),
			Columns: []string{"system", "goodput(req/s)", "vs MuxWise"},
		}
		goodputs := map[string]float64{}
		type sweepRow struct {
			row  []string
			best float64
		}
		results := par.RunIndexed(len(fig14Systems), func(idx int) sweepRow {
			name := fig14Systems[idx]
			mk := poissonToolAgent(c.seed, sessions)
			pts := serve.Sweep(factories[name], c.cfg, mk, c.rates)
			row := []string{name}
			best := 0.0
			for i := range c.rates {
				if i < len(pts) {
					p := pts[i]
					cell := fmt.Sprintf("%.1f", p.Attainment*100)
					if p.Unstable {
						cell += "*"
					}
					row = append(row, cell)
					if !p.Unstable && p.Attainment >= 0.99 {
						best = p.Rate
					}
				} else {
					row = append(row, "-")
				}
			}
			return sweepRow{row, best}
		})
		for i, r := range results {
			t.Add(r.row...)
			goodputs[fig14Systems[i]] = r.best
		}
		for _, name := range fig14Systems {
			ratio := "n/a"
			if goodputs[name] > 0 {
				ratio = fmt.Sprintf("%.2f×", goodputs["MuxWise"]/goodputs[name])
			}
			good.Add(name, fmt.Sprintf("%.2f", goodputs[name]), ratio)
		}
		t.Notes = append(t.Notes, "* marks unstable runs (paper stops testing there)")
		good.Notes = append(good.Notes,
			"paper: 8B goodput gains 2.6×/5.2×/2.0×/1.3×; 70B 3.06×/-/2.62×/1.62× (NanoFlow never meets 70B SLO)")
		out = append(out, t, good)
	}
	return out
}

func rateCols(rates []float64) []string {
	out := make([]string, len(rates))
	for i, r := range rates {
		out[i] = fmt.Sprintf("@%.2g", r)
	}
	return out
}

// Table5 reproduces Table 5: token throughput and GPU utilization at each
// system's goodput operating point on Tool&Agent.
func Table5(o Opts) []Table {
	var out []Table
	cases := []struct {
		cfg  serve.Config
		rate map[string]float64 // operating rate per system (its goodput)
		seed uint64
	}{
		{config8B(), nil, 201},
		{config70B(), nil, 202},
	}
	if o.Quick {
		cases = cases[1:]
	}
	sessions := o.Size(700, 80)
	factories := Baselines()
	for _, c := range cases {
		t := Table{
			ID:      "tab5",
			Title:   fmt.Sprintf("token throughput and GPU utilization at goodput, %s", c.cfg.Arch.Name),
			Columns: []string{"system", "rate(req/s)", "token/s", "GPU util%"},
		}
		lo, hi := 0.1, 22.0
		if c.cfg.Arch.Params() > 30e9 {
			lo, hi = 0.05, 1.4
		}
		if o.Quick {
			hi = lo * 4
		}
		rows := par.RunIndexed(len(fig14Systems), func(i int) []string {
			name := fig14Systems[i]
			mk := poissonToolAgent(c.seed, sessions)
			g := serve.Goodput(factories[name], c.cfg, mk, lo, hi)
			if g == 0 {
				return []string{name, "0", "-", "-"}
			}
			res := serve.Run(factories[name], c.cfg, mk(g))
			util := res.MeanUtil() * 100
			utilCell := fmt.Sprintf("%.1f", util)
			if name == "SGLang-PD" && len(res.Devices) == 2 {
				utilCell = fmt.Sprintf("P(%.1f)/D(%.1f)", res.Devices[0].Util*100, res.Devices[1].Util*100)
			}
			return []string{name, fmt.Sprintf("%.2f", g),
				fmt.Sprintf("%.0f", res.Summary.TokensPerSecond), utilCell}
		})
		for _, row := range rows {
			t.Add(row...)
		}
		t.Notes = append(t.Notes,
			"paper (70B): MuxWise 7430 tok/s @84.0%; Chunked 2269 @66.1; LoongServe 2936 @70.1; SGLang-PD 4538 @P67.1/D81.9")
		out = append(out, t)
	}
	return out
}
