package experiments

import (
	"fmt"

	"muxwise/internal/chunked"
	"muxwise/internal/core"
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Sec442 reproduces the §4.4.2 bubble-ratio measurement: the fraction of
// the compute stream's active window not occupied by any kernel, averaged
// over MuxWise's two concurrent streams, against chunked-prefill's single
// stream, at goodput-level load on Tool&Agent (Llama-8B).
func Sec442(o Opts) []Table {
	t := Table{
		ID:      "sec442",
		Title:   "compute-stream bubble ratio at goodput load (Llama-8B, Tool&Agent)",
		Columns: []string{"system", "bubble ratio%", "streams"},
	}
	sessions := o.Size(400, 60)
	rate := 10.0
	if o.Quick {
		rate = 2.0
	}
	tr := func(seed uint64) *workload.Trace {
		return workload.ToolAgent(seed, sessions).WithPoissonArrivals(seed, rate)
	}

	// MuxWise: average the decode and prefill green contexts.
	{
		cfg := config8B()
		s := sim.New()
		rec := metrics.NewRecorder()
		env := &serve.Env{
			Sim: s, Spec: cfg.Spec, GPUs: cfg.GPUs, Arch: cfg.Arch,
			SLO: cfg.SLO, Rec: rec, ReserveFrac: 0.1, MaxBatch: 256,
		}
		e := core.NewWithOptions(env, core.DefaultOptions())
		driveTrace(env, e.Submit, tr(442))
		win := e.Devices()[0].Stats().ActiveSeconds
		ratio := (bubbleRatio(e.DecodePartition(), win) + bubbleRatio(e.PrefillPartition(), win)) / 2
		t.Add("MuxWise", fmt.Sprintf("%.1f", ratio*100), "2 (decode+prefill)")
	}

	// Chunked: one fused stream.
	{
		cfg := config8B()
		s := sim.New()
		rec := metrics.NewRecorder()
		env := &serve.Env{
			Sim: s, Spec: cfg.Spec, GPUs: cfg.GPUs, Arch: cfg.Arch,
			SLO: cfg.SLO, Rec: rec, ReserveFrac: 0.1, MaxBatch: 256,
		}
		e := chunked.NewWithBudget(env, chunked.BudgetFor(env))
		driveTrace(env, e.Submit, tr(442))
		win := e.Devices()[0].Stats().ActiveSeconds
		t.Add("Chunked", fmt.Sprintf("%.1f", bubbleRatio(e.Partition(), win)*100), "1 (fused)")
	}
	t.Notes = append(t.Notes,
		"paper: MuxWise 7.7% vs chunked 4.5%; the extra bubbles appear when all prefill layers",
		"complete during pure-decode stretches and do not hurt goodput (§4.4.2)")
	return []Table{t}
}

// bubbleRatio is 1 − busy/window for one stream over the device's active
// window, clamped to [0, 1].
func bubbleRatio(p *gpu.Partition, window float64) float64 {
	if window <= 0 {
		return 0
	}
	r := 1 - p.Busy()/window
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// driveTrace replays a trace directly against an engine's Submit.
func driveTrace(env *serve.Env, submit func(*workload.Request), tr *workload.Trace) {
	for _, r := range tr.Requests {
		r := r
		env.Rec.Arrive(r.ID, r.Arrival, r.InputTokens)
		env.Sim.At(r.Arrival, func() { submit(r) })
	}
	env.Sim.Run()
}
