package experiments

import (
	"fmt"

	"muxwise/internal/estimator"
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/model"
	"muxwise/internal/workload"
)

// Fig3 reproduces Figure 3: compute (GPU-equivalents) and KV cache
// demanded by each phase under SLO constraints as reused context grows.
func Fig3(o Opts) []Table {
	spec := gpu.A100()
	arch := model.Llama70B()
	kvGB := func(tokens int) float64 { return float64(tokens) * arch.KVBytesPerToken() / 1e9 }

	// gpuEquiv finds the compute demand in GPU-equivalents: the smallest
	// per-GPU SM allocation meeting the latency target (4-SM scan, as in
	// the paper's best-fit partition-ratio search), extrapolating past
	// the 8-GPU server when even the full device misses the target (the
	// paper's Fig. 3 y-axis runs to 10 GPUs).
	gpuEquiv := func(latency func(sms int) float64, target float64) float64 {
		for sms := 4; sms <= spec.SMs; sms += 4 {
			if latency(sms) <= target {
				return float64(sms) / float64(spec.SMs) * 8
			}
		}
		return latency(spec.SMs) / target * 8
	}

	pre := Table{
		ID:      "fig3a",
		Title:   "prefill demand vs reused length (bs=1, new=2K, TTFT 400ms)",
		Columns: []string{"reused(K)", "GPU-equiv", "KV(GB)"},
	}
	reuses := []int{0, 12500, 25000, 50000, 75000, 100000}
	if o.Quick {
		reuses = []int{0, 50000, 100000}
	}
	for _, r := range reuses {
		seqs := []model.Seq{{New: 2048, Reused: r}}
		gpus := gpuEquiv(func(sms int) float64 {
			return estimator.MeasurePrefillSolo(spec, 8, arch, sms, seqs)
		}, 0.4)
		pre.Addf("", fmt.Sprintf("%d", r/1000), gpus, kvGB(r+2048))
	}

	dec := Table{
		ID:      "fig3b",
		Title:   "decode demand vs total reused length (bs=32, TBT 100ms)",
		Columns: []string{"reused(K)", "GPU-equiv", "KV(GB)"},
	}
	totals := []int{50000, 100000, 150000, 200000, 250000}
	if o.Quick {
		totals = []int{50000, 250000}
	}
	for _, total := range totals {
		per := total / 32
		gpus := gpuEquiv(func(sms int) float64 {
			return estimator.MeasureDecodeSolo(spec, 8, arch, sms, 32, per)
		}, 0.1)
		dec.Addf("", fmt.Sprintf("%d", total/1000), gpus, kvGB(total))
	}
	pre.Notes = append(pre.Notes, "paper: prefill demand grows with reuse; decode demand is less sensitive")
	return []Table{pre, dec}
}

// Fig5 reproduces Figure 5: LRU cache hit rate against KV pool capacity
// for the two multi-turn traces.
func Fig5(o Opts) []Table {
	t := Table{
		ID:      "fig5",
		Title:   "cache hit rate vs KV pool capacity (tokens), LRU",
		Columns: []string{"capacity", "Conversation", "Tool&Agent"},
	}
	sessions := o.Size(4000, 400)
	traces := []*workload.Trace{
		workload.Conversation(50, sessions).WithPoissonArrivals(50, 1),
		workload.ToolAgent(51, sessions).WithPoissonArrivals(51, 1),
	}
	capacities := []int64{1e5, 1e6, 1e7, 1e8, 1e9}
	if o.Quick {
		capacities = []int64{1e5, 1e7, 1e9}
	}
	for _, capTok := range capacities {
		row := []string{fmt.Sprintf("%.0e", float64(capTok))}
		for _, tr := range traces {
			pool := kvcache.New(capTok, kvcache.DefaultPageTokens)
			for _, r := range tr.Requests {
				pool.MatchTokens(r.Pages, r.InputTokens)
				pool.Insert(r.AllPages)
			}
			row = append(row, fmt.Sprintf("%.3f", pool.Stats().HitRate()))
		}
		t.Add(row...)
	}
	t.Notes = append(t.Notes,
		"paper: hit rate climbs from ~0 to ~0.55-0.6; halving the pool costs hit rate (36.6% -> 4.2% cited for disaggregation)")
	return []Table{t}
}

// fusedIterLatency measures one chunked-prefill fused iteration on the
// simulated device (full 8×A100, Llama-70B).
func fusedIterLatency(arch model.Arch, spec gpu.Spec, budget, bs, decCtx, chunkPrior, chunkReused int) float64 {
	s := newSim()
	d := gpu.NewDevice(s, spec, 8, "fig6")
	p := d.Partition(spec.SMs, "fused")
	ctxs := make([]int, bs)
	for i := range ctxs {
		ctxs[i] = decCtx
	}
	chunk := model.Seq{New: budget - bs, Prior: chunkPrior, Reused: chunkReused}
	if chunk.New < 0 {
		chunk.New = 0
	}
	cost := arch.FusedChunkIter(chunk, ctxs, 8)
	var done float64
	p.Launch(gpu.Kernel{
		Kind: gpu.Prefill, FLOPs: cost.FLOPs, Bytes: cost.Bytes,
		CommBytes: cost.CommBytes, Tokens: cost.Tokens, Launch: spec.GraphLaunch,
	}, func() { done = s.Now().Seconds() })
	s.Run()
	return done
}

// Fig6 reproduces Figure 6: the chunked-prefill dilemma. (a) latency vs
// token budget with the saturation knee near 4K/505 ms; (b) latency vs
// the chunk's reused context at a fixed 512 budget.
func Fig6(o Opts) []Table {
	arch := model.Llama70B()
	spec := gpu.A100()

	a := Table{
		ID:      "fig6a",
		Title:   "fused-iteration latency vs token budget (decode bs=32, reused 1K)",
		Columns: []string{"budget", "latency(ms)"},
	}
	budgets := []int{128, 256, 512, 1024, 2048, 4096}
	if o.Quick {
		budgets = []int{256, 4096}
	}
	for _, b := range budgets {
		lat := fusedIterLatency(arch, spec, b, 32, 1024, 0, 1024)
		a.Addf("", b, lat*1e3)
	}
	a.Notes = append(a.Notes, "paper: saturation at (4K, 505ms); SLO-compliant budget ~256 for 100ms TBT")

	b := Table{
		ID:      "fig6b",
		Title:   "fused-iteration latency vs chunk reused context (budget 512)",
		Columns: []string{"reused(K)", "bs=8", "bs=64"},
	}
	reuses := []int{1024, 4096, 16384, 65536}
	if o.Quick {
		reuses = []int{1024, 65536}
	}
	for _, r := range reuses {
		l8 := fusedIterLatency(arch, spec, 512, 8, 1024, 0, r)
		l64 := fusedIterLatency(arch, spec, 512, 64, 1024, 0, r)
		b.Add(fmt.Sprintf("%d", r/1024), ms(l8), ms(l64))
	}
	b.Notes = append(b.Notes, "paper: TBT rises noticeably once reused context exceeds 4K")
	return []Table{a, b}
}
