package experiments

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// randomTrace builds a randomized workload mixing all generators.
func randomTrace(rng *rand.Rand, seed uint64) *workload.Trace {
	var parts []*workload.Trace
	kinds := rng.IntN(3) + 1
	for i := 0; i < kinds; i++ {
		n := rng.IntN(40) + 10
		rate := 0.2 + rng.Float64()*2
		s := seed + uint64(i)*97
		var tr *workload.Trace
		switch rng.IntN(5) {
		case 0:
			tr = workload.ShareGPT(s, n)
		case 1:
			tr = workload.LooGLE(s, max(n/4, 3))
		case 2:
			tr = workload.OpenThoughts(s, max(n/4, 3))
		case 3:
			tr = workload.Conversation(s, n/2+1)
		default:
			tr = workload.ToolAgent(s, n/2+1)
		}
		parts = append(parts, tr.WithPoissonArrivals(s, rate))
	}
	return workload.Mix("stress", parts...)
}

// Every engine must survive randomized mixed workloads on randomized
// deployments without wedging, leaking pool reservations, or violating
// token conservation — the failure-injection net that caught the
// preempted-zombie deadlock.
func TestStressAllEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("stress matrix skipped in -short mode")
	}
	specs := []gpu.Spec{gpu.A100(), gpu.H100()}
	archs := []model.Arch{model.Llama8B(), model.Llama70B()}
	factories := Baselines()
	for _, name := range sortedNames(factories) {
		name := name
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(0xBEEF, 0xCAFE))
			for trial := 0; trial < 4; trial++ {
				spec := specs[rng.IntN(len(specs))]
				arch := archs[rng.IntN(len(archs))]
				gpus := []int{1, 2, 4, 8}[rng.IntN(4)]
				if name == "SGLang-PD" && gpus < 2 {
					gpus = 2
				}
				tbt := sim.Time(rng.IntN(120)+40) * sim.Millisecond
				cfg := serve.Config{
					Spec: spec, GPUs: gpus, Arch: arch,
					SLO: metrics.SLO{TTFT: 2 * sim.Second, TBT: tbt},
				}
				if arch.KVPoolTokens(int64(gpus)*spec.HBMCapacity, 0.1) < 200000 {
					continue // model does not fit this deployment
				}
				tr := randomTrace(rng, uint64(trial)*1009+7)
				res := serve.Run(factories[name], cfg, tr)
				label := fmt.Sprintf("trial %d (%s %dx%s tbt=%v)", trial, arch.Name, gpus, spec.Name, tbt)

				if res.Summary.Finished != res.Summary.Requests {
					t.Fatalf("%s: finished %d/%d — engine wedged",
						label, res.Summary.Finished, res.Summary.Requests)
				}
				// Token conservation: every output token was emitted.
				var wantTokens int64
				for _, r := range tr.Requests {
					wantTokens += int64(r.OutputTokens)
				}
				if res.Summary.DecodeTokens+int64(res.Summary.Requests) < wantTokens {
					t.Fatalf("%s: decode tokens %d + first tokens < %d outputs",
						label, res.Summary.DecodeTokens, wantTokens)
				}
				if res.Summary.TTFT.N != res.Summary.Requests {
					t.Fatalf("%s: %d TTFT samples for %d requests",
						label, res.Summary.TTFT.N, res.Summary.Requests)
				}
			}
		})
	}
}

// Degenerate workloads must not break any engine.
func TestDegenerateWorkloads(t *testing.T) {
	cfg := serve.Config{
		Spec: gpu.A100(), GPUs: 8, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 50 * sim.Millisecond},
	}
	mk := func(input, output, n int) *workload.Trace {
		tr := &workload.Trace{Name: "degenerate"}
		for i := 0; i < n; i++ {
			tr.Requests = append(tr.Requests, &workload.Request{
				ID: i, Session: i, Arrival: sim.Time(i) * 10 * sim.Millisecond,
				InputTokens: input, OutputTokens: output,
				Pages:    pageSeq(uint64(i), input),
				AllPages: pageSeq(uint64(i), input+output),
			})
		}
		return tr
	}
	cases := []struct {
		name  string
		trace *workload.Trace
	}{
		{"one-token-everything", mk(1, 1, 20)},
		{"single-output", mk(512, 1, 20)},
		{"giant-context", mk(120000, 3, 3)},
		{"many-tiny", mk(4, 4, 200)},
	}
	factories := Baselines()
	for _, name := range sortedNames(factories) {
		for _, c := range cases {
			res := serve.Run(factories[name], cfg, c.trace)
			if res.Summary.Finished != res.Summary.Requests {
				t.Errorf("%s/%s: finished %d/%d", name, c.name,
					res.Summary.Finished, res.Summary.Requests)
			}
		}
	}
}

func pageSeq(stream uint64, tokens int) []kvcache.PageID {
	n := (tokens + 15) / 16
	out := make([]kvcache.PageID, n)
	for i := range out {
		out[i] = kvcache.PageID(stream<<32 | uint64(i))
	}
	return out
}
