package experiments

import (
	"fmt"

	"muxwise/internal/chunked"
	"muxwise/internal/core"
	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
)

// Fig16 reproduces Figure 16: MuxWise vs chunked-prefill on H100 servers
// (Llama-8B/70B) and an H200 server (Qwen3-235B-A22B), on both
// real-world workloads. Disaggregation baselines are infeasible for the
// MoE model, as in the paper.
func Fig16(o Opts) []Table {
	cases := []struct {
		spec  gpu.Spec
		arch  model.Arch
		slo   metrics.SLO
		scale float64
		seed  uint64
	}{
		{gpu.H100(), model.Llama8B(), metrics.SLO{TTFT: 500 * sim.Millisecond, TBT: 50 * sim.Millisecond}, 6.0, 301},
		{gpu.H100(), model.Llama70B(), metrics.SLO{TTFT: sim.Second, TBT: 100 * sim.Millisecond}, 0.8, 302},
		{gpu.H200(), model.Qwen235B(), metrics.SLO{TTFT: sim.Second, TBT: 100 * sim.Millisecond}, 4.0, 303},
	}
	if o.Quick {
		cases = cases[2:]
	}
	sessions := o.Size(1000, 100)
	var out []Table
	for _, c := range cases {
		for _, wl := range []string{"Conversation", "Tool&Agent"} {
			t := Table{
				ID:      "fig16",
				Title:   fmt.Sprintf("%s, %s on %s", c.spec.Name, c.arch.Name, wl),
				Columns: []string{"system", "p99 TTFT(s)", "p99 TBT(ms)"},
			}
			cfg := serve.Config{Spec: c.spec, GPUs: 8, Arch: c.arch, SLO: c.slo}
			for _, f := range []serve.Factory{core.New, chunked.New} {
				tr := realTrace(wl, c.scale, sessions, c.seed)
				res := serve.Run(f, cfg, tr)
				t.Add(res.Summary.Name, sec(res.Summary.TTFT.P99), ms(res.Summary.TBT.P99))
			}
			t.Notes = append(t.Notes, "paper: avg 2.28× p99-TTFT and 1.81× p99-TBT speedups across these cells")
			out = append(out, t)
		}
	}
	return out
}
