package experiments

import (
	"fmt"
	"math"

	"muxwise/internal/estimator"
	"muxwise/internal/gpu"
	"muxwise/internal/model"
)

// Fig11 reproduces Figure 11: decode slowdown under contention across
// multiplexing configurations, models and GPUs.
func Fig11(o Opts) []Table {
	var out []Table
	cases := []struct {
		spec gpu.Spec
		arch model.Arch
	}{
		{gpu.A100(), model.Llama8B()},
		{gpu.A100(), model.Llama70B()},
		{gpu.H100(), model.Llama8B()},
		{gpu.H100(), model.Llama70B()},
	}
	if o.Quick {
		cases = cases[:2]
	}
	prefCtx := [][2]int{{1024, 0}, {8192, 8192}, {32768, 32768}, {2048, 126976}}
	decCtx := []int{1024, 8192, 65536, 131072}
	bss := []int{8, 64}
	if o.Quick {
		prefCtx = prefCtx[:2]
		decCtx = decCtx[:2]
		bss = bss[:1]
	}
	for _, c := range cases {
		t := Table{
			ID:      "fig11",
			Title:   fmt.Sprintf("decode slowdown, %s %s", c.spec.Name, c.arch.Name),
			Columns: []string{"decodeSMs", "min%", "mean%", "max%"},
		}
		for _, sms := range c.spec.PartitionSizes() {
			minS, maxS, sum, n := math.Inf(1), 0.0, 0.0, 0
			for _, pc := range prefCtx {
				for _, dc := range decCtx {
					for _, bs := range bss {
						f := estimator.CoRunSlowdown(c.spec, 8, c.arch, sms, bs, dc, pc[0], pc[1])
						s := (f - 1) * 100
						minS = math.Min(minS, s)
						maxS = math.Max(maxS, s)
						sum += s
						n++
					}
				}
			}
			t.Addf("", sms, minS, sum/float64(n), maxS)
		}
		t.Notes = append(t.Notes, "paper: slowdown ranges ~0-30% and varies with the partition split")
		out = append(out, t)
	}
	return out
}

// Table2 validates the Eq. 1/2 predictors (the paper reports 8.16% and
// 8.84% maximum deviation; the analytic simulator admits an exact fit).
func Table2(o Opts) []Table {
	t := Table{
		ID:      "tab2",
		Title:   "solo-run predictor maximum deviation (Eq. 1/2 features)",
		Columns: []string{"model", "prefill max dev %", "decode max dev %", "guard max factor", "guard cells"},
	}
	archs := []model.Arch{model.Llama8B(), model.Llama70B()}
	if o.Quick {
		archs = archs[:1]
	}
	for _, a := range archs {
		e := estimator.New(gpu.A100(), 8, a)
		pre, dec := e.MaxDeviation()
		t.Add(a.Name,
			fmt.Sprintf("%.2f", pre*100),
			fmt.Sprintf("%.2f", dec*100),
			fmt.Sprintf("%.3f", e.Guard().MaxFactor()),
			fmt.Sprintf("%d", e.Guard().Cells()))
	}
	t.Notes = append(t.Notes,
		"paper: 8.16% prefill / 8.84% decode on real hardware; the analytic substrate fits exactly",
		"paper: contention guard max slowdown ≤1.2 (A100) / ≤1.3 (H100)")
	return []Table{t}
}
