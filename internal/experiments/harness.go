// Package experiments reproduces every table and figure of the paper's
// evaluation (§2 motivation and §4). Each experiment returns Tables whose
// rows mirror the series the paper plots, so the output can be compared
// against the publication shape for shape (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"muxwise/internal/chunked"
	"muxwise/internal/core"
	"muxwise/internal/gpu"
	"muxwise/internal/loong"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/nanoflow"
	"muxwise/internal/pdsep"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/temporal"
	"muxwise/internal/windserve"
)

// Opts controls experiment scale.
type Opts struct {
	// Quick shrinks traces and sweeps for benchmark/CI runs; full runs
	// reproduce the paper-scale series.
	Quick bool
}

// Size picks between full and quick scale — experiments (and external
// harnesses like internal/frontier) size traces and sweeps through it so
// -quick shrinks every axis consistently.
func (o Opts) Size(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Table is one reproduced artifact (a figure series or table).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a formatted row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends a row of formatted values.
func (t *Table) Addf(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			parts[i] = v
		case float64:
			parts[i] = fmt.Sprintf("%.3g", v)
		case int:
			parts[i] = fmt.Sprintf("%d", v)
		default:
			parts[i] = fmt.Sprint(v)
		}
	}
	_ = format
	t.Rows = append(t.Rows, parts)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	head := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		head[i] = pad(c, widths[i])
	}
	fmt.Fprintln(w, strings.Join(head, "  "))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			wd := 0
			if i < len(widths) {
				wd = widths[i]
			}
			cells[i] = pad(c, wd)
		}
		fmt.Fprintln(w, strings.Join(cells, "  "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID    string
	Paper string // which table/figure it regenerates
	Run   func(Opts) []Table
}

// Registry returns all experiments keyed by ID.
func Registry() []Experiment {
	return []Experiment{
		{"tab1", "Table 1 (workload statistics)", Table1},
		{"tab2", "Table 2 / Eq. 1-2 (predictor accuracy)", Table2},
		{"fig3", "Figure 3 (phase demands vs reused length)", Fig3},
		{"fig5", "Figure 5 (cache hit rate vs pool capacity)", Fig5},
		{"fig6", "Figure 6 (chunked-prefill dilemma)", Fig6},
		{"fig11", "Figure 11 (contention slowdown)", Fig11},
		{"fig13", "Figure 13 (bursty trace shapes)", Fig13},
		{"fig14", "Figure 14 (P99 TTFT/TBT, real-world traces)", Fig14},
		{"tab34", "Tables 3-4 (other latency metrics)", Tables34},
		{"fig15", "Figure 15 (SLO attainment vs rate, goodput)", Fig15},
		{"tab5", "Table 5 (throughput and GPU utilization)", Table5},
		{"fig16", "Figure 16 (H100/H200, Qwen-235B)", Fig16},
		{"fig17", "Figure 17 (synthetic workload sweeps)", Fig17},
		{"fig18", "Figure 18 (compute partition timeline)", Fig18},
		{"fig19", "Figure 19 (bubble-less engine ablation)", Fig19},
		{"sec442", "§4.4.2 (compute-stream bubble ratio)", Sec442},
		{"fig20", "Figure 20 (preemptive scheduling CDF)", Fig20},
		{"sec431", "§4.3.1 (single GPU, short requests)", Sec431},
		{"sec45", "§4.5 (PD-multiplexing overheads)", Sec45},
		{"sec6", "§6 (WindServe / temporal-only comparisons)", Sec6},
		{"routers", "router-policy goodput on bursty Conversation (beyond the paper)", Routers},
	}
}

// Find looks an experiment up by ID in the given list — callers that
// extend the registry (muxbench appends the frontier sweep) share the
// one lookup path.
func Find(list []Experiment, id string) (Experiment, bool) {
	for _, e := range list {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ByID finds an experiment in the built-in registry.
func ByID(id string) (Experiment, bool) { return Find(Registry(), id) }

// Baselines returns the engine factories compared in §4.2.
func Baselines() map[string]serve.Factory {
	return map[string]serve.Factory{
		"MuxWise":    core.New,
		"Chunked":    chunked.New,
		"NanoFlow":   nanoflow.New,
		"LoongServe": loong.New,
		"SGLang-PD":  pdsep.New,
		"WindServe":  windserve.New,
		"Temporal":   temporal.New,
	}
}

// fig14Systems is the five-system comparison order used in §4.2.
var fig14Systems = []string{"MuxWise", "Chunked", "NanoFlow", "LoongServe", "SGLang-PD"}

// sortedNames returns map keys in deterministic order.
func sortedNames(m map[string]serve.Factory) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// deployment bundles the standard test configurations.
func config8B() serve.Config {
	return serve.Config{
		Spec: gpu.A100(), GPUs: 8, Arch: model.Llama8B(),
		SLO: metrics.SLO{TTFT: 500 * sim.Millisecond, TBT: 50 * sim.Millisecond},
	}
}

func config70B() serve.Config {
	return serve.Config{
		Spec: gpu.A100(), GPUs: 8, Arch: model.Llama70B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 100 * sim.Millisecond},
	}
}

func ms(v float64) string  { return fmt.Sprintf("%.1f", v*1e3) }
func sec(v float64) string { return fmt.Sprintf("%.2f", v) }

func newSim() *sim.Sim { return sim.New() }
