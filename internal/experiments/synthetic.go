package experiments

import (
	"fmt"

	"muxwise/internal/core"
	"muxwise/internal/metrics"
	"muxwise/internal/par"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// syntheticTrace builds one of the §4.3 workloads with Poisson arrivals.
func syntheticTrace(kind string, seed uint64, n int) func(rate float64) *workload.Trace {
	return func(rate float64) *workload.Trace {
		var tr *workload.Trace
		switch kind {
		case "ShareGPT":
			tr = workload.ShareGPT(seed, n)
		case "LooGLE":
			tr = workload.LooGLE(seed, n/4)
		default:
			tr = workload.OpenThoughts(seed, n/4)
		}
		return tr.WithPoissonArrivals(seed+uint64(rate*1e3), rate)
	}
}

// Fig17 reproduces Figure 17: P99 TTFT and TBT on the three synthetic
// workloads (Llama-70B) under gradually increasing Poisson rates.
func Fig17(o Opts) []Table {
	var out []Table
	cases := []struct {
		kind  string
		rates []float64
		seed  uint64
	}{
		{"ShareGPT", []float64{1, 2, 3, 4, 6, 8}, 401},
		{"LooGLE", []float64{0.05, 0.1, 0.15, 0.2, 0.3}, 402},
		{"OpenThoughts", []float64{0.1, 0.2, 0.3, 0.5, 0.7}, 403},
	}
	if o.Quick {
		cases = cases[:1]
		cases[0].rates = []float64{1, 3}
	}
	n := o.Size(1600, 160)
	factories := Baselines()
	for _, c := range cases {
		t := Table{
			ID:      "fig17",
			Title:   fmt.Sprintf("Llama-70B on synthetic %s", c.kind),
			Columns: []string{"system", "rate", "p99 TTFT(s)", "p99 TBT(ms)", "attain%"},
		}
		sweeps := par.RunIndexed(len(fig14Systems), func(i int) []serve.RatePoint {
			mk := syntheticTrace(c.kind, c.seed, n)
			return serve.Sweep(factories[fig14Systems[i]], config70B(), mk, c.rates)
		})
		for i, pts := range sweeps {
			for _, p := range pts {
				state := ""
				if p.Unstable {
					state = "*"
				}
				t.Add(fig14Systems[i], fmt.Sprintf("%.2g%s", p.Rate, state),
					sec(p.P99TTFT), ms(p.P99TBT),
					fmt.Sprintf("%.1f", p.Attainment*100))
			}
		}
		t.Notes = append(t.Notes,
			"paper goodput gains — ShareGPT: 1.9×/1.73×/9.5×/1.46×; LooGLE: 1.71×/2×/1.33×/2×; OpenThoughts: 2× (LoongServe never meets SLO)")
		out = append(out, t)
	}
	return out
}

// Fig18 reproduces Figure 18: the compute partition split MuxWise
// chooses for each workload, plus the §4.4.1 burst observation.
func Fig18(o Opts) []Table {
	t := Table{
		ID:      "fig18",
		Title:   "mean SM share chosen by the dispatcher (Llama-70B)",
		Columns: []string{"workload", "prefill share%", "decode share%", "distinct configs"},
	}
	n := o.Size(800, 100)
	cases := []struct {
		kind string
		rate float64
		seed uint64
	}{
		{"LooGLE", 0.15, 411},
		{"ShareGPT", 4.0, 412},
		{"OpenThoughts", 0.6, 413},
	}
	if o.Quick {
		cases = cases[1:2]
	}
	type share struct {
		name    string
		prefill float64
	}
	var shares []share
	for _, c := range cases {
		tr := syntheticTrace(c.kind, c.seed, n)(c.rate)
		res := serve.Run(core.New, config70B(), tr)
		dec, pre := res.Timeline.MeanSharesActive(res.Summary.Makespan, config70B().Spec.SMs)
		t.Add(c.kind,
			fmt.Sprintf("%.1f", pre*100),
			fmt.Sprintf("%.1f", dec*100),
			fmt.Sprintf("%d", res.Timeline.DistinctConfigs()))
		shares = append(shares, share{c.kind, pre})
	}
	t.Notes = append(t.Notes, "paper: prefill share LooGLE > ShareGPT > OpenThoughts (measured over multiplexed intervals)")

	// §4.4.1: bursty traces activate many configurations within 30 s.
	burst := Table{
		ID:      "fig18-burst",
		Title:   "partition reconfigurations under the bursty Tool&Agent trace",
		Columns: []string{"window", "configs active"},
	}
	if !o.Quick {
		tr := realTrace("Tool&Agent", scale70B*1.5, o.Size(900, 100), 414)
		res := serve.Run(core.New, config70B(), tr)
		maxIn30 := 0
		for at := sim.Time(0); at < res.Summary.Makespan; at += 15 * sim.Second {
			if c := res.Timeline.ConfigsWithin(at, at+30*sim.Second); c > maxIn30 {
				maxIn30 = c
			}
		}
		burst.Add("max configs in any 30s window", fmt.Sprintf("%d", maxIn30))
		burst.Notes = append(burst.Notes, "paper: all six configurations activated within 30s during a burst")
	}
	return []Table{t, burst}
}

// mixTrace builds the Fig. 20 workload: 50% ShareGPT + 50% LooGLE at a
// given total Poisson rate.
func mixTrace(seed uint64, n int, rate float64) *workload.Trace {
	return workload.Mix("ShareGPT+LooGLE",
		workload.ShareGPT(seed, n/2).WithPoissonArrivals(seed, rate/2),
		workload.LooGLE(seed+1, n/2).WithPoissonArrivals(seed+1, rate/2))
}

// Fig20 reproduces Figure 20: the CDF of TTFT per token with and without
// preemptive scheduling on the ShareGPT+LooGLE mix at 0.5 req/s.
func Fig20(o Opts) []Table {
	t := Table{
		ID:      "fig20",
		Title:   "TTFT per token with/without preemption (ShareGPT+LooGLE 50/50, 0.5 req/s, Llama-70B)",
		Columns: []string{"variant", "p50(ms/tok)", "p90(ms/tok)", "p99(ms/tok)"},
	}
	n := o.Size(600, 80)
	variants := []struct {
		name string
		opts core.Options
	}{
		{"with preemption", core.DefaultOptions()},
		{"w/o preemption", core.Options{LayerWise: true, QuerySync: true, Preemption: false}},
	}
	p99 := map[string]float64{}
	for _, v := range variants {
		v := v
		f := func(env *serve.Env) serve.Engine { return core.NewWithOptions(env, v.opts) }
		res := serve.Run(f, config70B(), mixTrace(420, n, 0.5))
		q := res.Summary.TTFTPerToken
		t.Add(v.name, ms(q.P50), ms(q.P90), ms(q.P99))
		p99[v.name] = q.P99
	}
	if base := p99["w/o preemption"]; base > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("p99 speedup %.2f× (paper: 1.96×)", base/p99["with preemption"]))
	}
	return []Table{t}
}

var _ = metrics.SLO{} // keep the import set stable across edits
