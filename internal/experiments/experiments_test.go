package experiments

import (
	"strconv"
	"strings"
	"testing"

	"muxwise/internal/serve"
)

// Every registered experiment must run at quick scale and produce rows.
func TestRegistryRunsQuick(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(Opts{Quick: true})
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if tbl.ID == "" || tbl.Title == "" || len(tbl.Columns) == 0 {
					t.Errorf("%s: incomplete table metadata %+v", e.ID, tbl)
				}
				if tbl.ID != "fig18-burst" && len(tbl.Rows) == 0 {
					t.Errorf("%s table %s has no rows", e.ID, tbl.ID)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Errorf("%s table %s: row width %d != %d columns", e.ID, tbl.ID, len(row), len(tbl.Columns))
					}
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig14"); !ok {
		t.Fatal("fig14 missing from registry")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("fig99 unexpectedly found")
	}
}

func TestBaselinesComplete(t *testing.T) {
	b := Baselines()
	for _, name := range append([]string{"WindServe", "Temporal"}, fig14Systems...) {
		if _, ok := b[name]; !ok {
			t.Errorf("baseline %q missing", name)
		}
	}
}

func TestTableFprint(t *testing.T) {
	tbl := Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}, Notes: []string{"n"}}
	tbl.Add("1", "2")
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fprint output missing %q:\n%s", want, out)
		}
	}
}

// parse extracts a float from a table cell, tolerating suffixes.
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimRight(cell, "×*% ")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", cell, err)
	}
	return v
}

// The headline ordering of Fig. 14 (70B, Conversation): MuxWise has the
// best P99 TTFT of the five systems, and the chunking-based systems
// violate the TBT SLO while MuxWise and the disaggregated systems hold it.
func TestFig14Ordering(t *testing.T) {
	tbl := fig14Cell(Opts{Quick: true}, config70B(), "Conversation", scale70B, 103)
	vals := map[string][]string{}
	for _, row := range tbl.Rows {
		vals[row[0]] = row
	}
	mux := parse(t, vals["MuxWise"][1])
	for _, sys := range []string{"Chunked", "NanoFlow", "LoongServe", "SGLang-PD"} {
		if v := parse(t, vals[sys][1]); v <= mux {
			t.Errorf("p99 TTFT: %s %.2fs not worse than MuxWise %.2fs", sys, v, mux)
		}
	}
	if att := parse(t, vals["MuxWise"][3]); att < 99 {
		t.Errorf("MuxWise TBT attainment %.1f%% below target", att)
	}
	if att := parse(t, vals["Chunked"][3]); att >= 99 {
		t.Errorf("Chunked attainment %.1f%% — expected SLO failure on long-reuse trace", att)
	}
	if att := parse(t, vals["SGLang-PD"][3]); att < 99 {
		t.Errorf("SGLang-PD attainment %.1f%% — static decode reservation should hold TBT", att)
	}
}

// MuxWise's goodput must strictly beat chunked-prefill on the Tool&Agent
// sweep (the abstract's 2.20× average claim, in miniature).
func TestGoodputBeatsChunked(t *testing.T) {
	mk := poissonToolAgent(202, 80)
	rates := []float64{0.1, 0.2, 0.3, 0.4}
	best := func(f serve.Factory) float64 {
		b := 0.0
		for _, p := range serve.Sweep(f, config70B(), mk, rates) {
			if !p.Unstable && p.Attainment >= 0.99 {
				b = p.Rate
			}
		}
		return b
	}
	factories := Baselines()
	gm := best(factories["MuxWise"])
	gc := best(factories["Chunked"])
	if gm <= gc {
		t.Fatalf("MuxWise goodput %.2f not above chunked %.2f", gm, gc)
	}
}

// The cache-pool experiment must show the monotone capacity → hit-rate
// relationship that motivates aggregated serving.
func TestFig5Monotone(t *testing.T) {
	tables := Fig5(Opts{Quick: true})
	prev := -1.0
	for _, row := range tables[0].Rows {
		v := parse(t, row[1])
		if v < prev-0.02 {
			t.Fatalf("hit rate not monotone in capacity: %v", tables[0].Rows)
		}
		prev = v
	}
}

// Fig. 6a's dilemma in numbers: the saturating budget (4K) must cost
// several times the TBT SLO, while 256 stays within it.
func TestFig6Dilemma(t *testing.T) {
	arch, spec := config70B().Arch, config70B().Spec
	lat256 := fusedIterLatency(arch, spec, 256, 32, 1024, 0, 1024)
	lat4k := fusedIterLatency(arch, spec, 4096, 32, 1024, 0, 1024)
	if lat256 > 0.1 {
		t.Errorf("budget 256 latency %.3fs exceeds the 100ms SLO", lat256)
	}
	if lat4k < 0.4 || lat4k > 0.7 {
		t.Errorf("budget 4K latency %.3fs, want ≈0.5s (paper: 505ms)", lat4k)
	}
}
