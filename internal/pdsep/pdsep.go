// Package pdsep implements the SGLang-PD baseline (§4.1): static
// disaggregation with a prefill instance and a decode instance at a 1:1
// GPU ratio (tensor parallelism halved per instance). Unlike DistServe,
// KV caches are shared across phases and requests: the prefill instance
// keeps a radix cache, and finished prefills migrate their KV to the
// decode instance over NVLink. The structural weaknesses the paper
// exploits are faithfully present: each instance owns only half the KV
// pool (lower hit rate, Fig. 5), the split is static (decode idles while
// prefill queues under bursts, and vice versa), and every prefill pays a
// KV migration.
package pdsep

import (
	"muxwise/internal/gpu"
	"muxwise/internal/kvcache"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

// Engine is the static-disaggregation baseline.
type Engine struct {
	env *serve.Env

	pDev, dDev   *gpu.Device
	pPart, dPart *gpu.Partition
	pPool, dPool *kvcache.Pool

	decode        serve.Batch
	decodeRunning bool
	prefillBusy   bool

	queue     []*serve.Running // waiting for the prefill instance
	handoff   []*handoffReq    // prefill done, waiting for decode pool space
	merging   []*serve.Running // migrated, waiting for a decode boundary
	pending   []*workload.Request
	dReserved map[*serve.Running]int64 // decode-pool reservations

	// inFlight is the prefill batch currently on the device (one at a
	// time, guarded by prefillBusy); the remaining slices are reused
	// per-iteration scratch.
	inFlight   []*serve.Running
	seqScratch []model.Seq
	ctxScratch []int
	finScratch []*serve.Running
}

type handoffReq struct {
	eng *Engine
	run *serve.Running
}

// New builds an SGLang-PD engine with P:D = 1:1.
func New(env *serve.Env) serve.Engine {
	half := env.GPUs / 2
	if half < 1 {
		half = 1
	}
	pDev := gpu.NewDevice(env.Sim, env.Spec, half, "prefill-instance")
	dDev := gpu.NewDevice(env.Sim, env.Spec, half, "decode-instance")
	return &Engine{
		env:       env,
		pDev:      pDev,
		dDev:      dDev,
		pPart:     pDev.Partition(env.Spec.SMs, "prefill"),
		dPart:     dDev.Partition(env.Spec.SMs, "decode"),
		pPool:     kvcache.New(env.PoolTokens(half), kvcache.DefaultPageTokens),
		dPool:     kvcache.New(env.PoolTokens(half), kvcache.DefaultPageTokens),
		dReserved: map[*serve.Running]int64{},
	}
}

// Name implements serve.Engine.
func (e *Engine) Name() string { return "SGLang-PD" }

// Timeline implements serve.Engine (the split is static).
func (e *Engine) Timeline() *metrics.Timeline { return &metrics.Timeline{} }

// Devices implements serve.Engine.
func (e *Engine) Devices() []*gpu.Device { return []*gpu.Device{e.pDev, e.dDev} }

// PrefillPool exposes the prefill instance's radix cache.
func (e *Engine) PrefillPool() *kvcache.Pool { return e.pPool }

// CachePools implements serve.PoolReporter. Prefix lookups happen on the
// prefill side only; the decode pool holds per-request KV, so reporting
// it would not add hit/miss samples.
func (e *Engine) CachePools() []*kvcache.Pool { return []*kvcache.Pool{e.pPool, e.dPool} }

// Submit implements serve.Engine.
func (e *Engine) Submit(r *workload.Request) {
	e.pending = append(e.pending, r)
	e.admit()
	e.schedule()
}

func (e *Engine) admit() {
	for len(e.pending) > 0 {
		if e.decode.Size()+len(e.queue)+len(e.handoff)+len(e.merging) >= e.env.MaxBatch {
			return
		}
		// Admission reserves prefill-side KV for the input only; output
		// KV lives on the decode instance.
		r := e.pending[0]
		hit := e.pPool.MatchTokens(r.Pages, r.InputTokens)
		hitPages := hit / e.pPool.PageTokens()
		need := int64(r.InputTokens - hit)
		if !e.pPool.Reserve(need) {
			return
		}
		e.pPool.Pin(r.Pages, hitPages)
		e.env.Admitted(r.ID)
		e.pending = e.pending[1:]
		e.queue = append(e.queue, &serve.Running{
			R: r, CachedTokens: hit, PinnedPages: hitPages, ReservedTokens: need,
		})
	}
}

func (e *Engine) schedule() {
	e.startPrefill()
	e.tryHandoff()
	e.startDecode()
}

// maxPrefillBatchTokens caps a prefill batch, matching SGLang's budget.
const maxPrefillBatchTokens = 16384

// startPrefill runs the next batch of queued requests on the prefill
// instance (SGLang batches prefills up to its token budget).
func (e *Engine) startPrefill() {
	if e.prefillBusy || len(e.queue) == 0 {
		return
	}
	batch := e.inFlight[:0]
	seqs := e.seqScratch[:0]
	tokens := 0
	for len(e.queue) > 0 {
		run := e.queue[0]
		newTok := run.R.InputTokens - run.CachedTokens
		if newTok < 1 {
			newTok = 1
		}
		if len(batch) > 0 && tokens+newTok > maxPrefillBatchTokens {
			break
		}
		e.queue = e.queue[1:]
		batch = append(batch, run)
		seqs = append(seqs, model.Seq{New: newTok, Reused: run.CachedTokens})
		tokens += newTok
	}
	e.inFlight, e.seqScratch = batch, seqs
	phase := e.env.Arch.PrefillPhase(seqs, e.pDev.TP)
	e.prefillBusy = true
	e.pPart.LaunchFn(gpu.Kernel{
		Label: "prefill-phase", Kind: gpu.Prefill,
		FLOPs: phase.FLOPs, Bytes: phase.Bytes, CommBytes: phase.CommBytes,
		Tokens: phase.Tokens,
		Launch: sim.Time(e.env.Arch.Layers) * e.env.Spec.LayerLaunch,
	}, prefillBatchDone, e)
}

// prefillBatchDone / migrated / decodeDone are the engine's bound
// callbacks: the engine or handoff record rides as the event argument,
// so steady-state scheduling allocates no closures.
func prefillBatchDone(arg any) {
	e := arg.(*Engine)
	e.prefillBusy = false
	for i, run := range e.inFlight {
		e.onPrefillDone(run)
		e.inFlight[i] = nil
	}
	e.inFlight = e.inFlight[:0]
	e.schedule()
}

func migrated(arg any) { h := arg.(*handoffReq); h.eng.onMigrated(h.run) }

func decodeDone(arg any) { arg.(*Engine).onDecodeDone() }

// onPrefillDone publishes the input KV into the prefill radix cache and
// queues the request for migration to the decode instance.
func (e *Engine) onPrefillDone(run *serve.Running) {
	e.env.Rec.PrefillDone(run.R.InputTokens - run.CachedTokens)
	// The input KV is now cached on the prefill side for future turns.
	e.pPool.Unpin(run.R.Pages, run.PinnedPages)
	e.pPool.Release(run.ReservedTokens)
	e.pPool.Insert(run.R.Pages)
	e.handoff = append(e.handoff, &handoffReq{eng: e, run: run})
}

// tryHandoff migrates completed prefills into the decode instance when
// its pool has room: KV crosses NVLink, then the request joins the batch
// at the next decode boundary.
func (e *Engine) tryHandoff() {
	for len(e.handoff) > 0 {
		h := e.handoff[0]
		need := int64(h.run.R.InputTokens + h.run.R.OutputTokens)
		if !e.dPool.Reserve(need) {
			return // decode pool full: prefill stalls (§4.3 OpenThoughts)
		}
		e.handoff = e.handoff[1:]
		e.dReserved[h.run] = need
		kvBytes := float64(h.run.R.InputTokens) * e.env.Arch.KVBytesPerToken()
		delay := sim.FromSeconds(kvBytes / (e.env.Spec.NVLinkBandwidth * float64(e.pDev.TP)))
		e.env.Sim.AfterFunc(delay, migrated, h)
	}
}

// onMigrated lands a request on the decode instance once its KV has
// crossed NVLink. First token is delivered after migration.
func (e *Engine) onMigrated(run *serve.Running) {
	e.env.Rec.Token(run.R.ID, e.env.Sim.Now())
	run.Generated = 1
	if run.DecodeDone() {
		e.finishDecode(run)
	} else if e.decodeRunning {
		e.merging = append(e.merging, run)
	} else {
		e.decode.Add(run)
	}
	e.schedule()
}

func (e *Engine) finishDecode(run *serve.Running) {
	e.env.Rec.Finish(run.R.ID, e.env.Sim.Now())
	e.dPool.Release(e.dReserved[run])
	delete(e.dReserved, run)
	e.admit()
}

// startDecode runs decode iterations on the decode instance.
func (e *Engine) startDecode() {
	if e.decodeRunning || e.decode.Size() == 0 {
		return
	}
	e.ctxScratch = e.decode.CtxsInto(e.ctxScratch)
	cost := e.env.Arch.DecodeIter(e.ctxScratch, e.dDev.TP)
	e.decodeRunning = true
	e.dPart.LaunchFn(gpu.Kernel{
		Label: "decode", Kind: gpu.Decode,
		FLOPs: cost.FLOPs, Bytes: cost.Bytes, CommBytes: cost.CommBytes,
		Tokens: cost.Tokens, Launch: e.env.Spec.GraphLaunch,
	}, decodeDone, e)
}

func (e *Engine) onDecodeDone() {
	now := e.env.Sim.Now()
	e.decodeRunning = false
	e.finScratch = e.decode.StepInto(now, e.env.Rec, e.finScratch)
	for _, r := range e.finScratch {
		e.dPool.Release(e.dReserved[r])
		delete(e.dReserved, r)
	}
	for _, r := range e.merging {
		e.decode.Add(r)
	}
	e.merging = e.merging[:0]
	if len(e.finScratch) > 0 {
		e.admit()
	}
	e.schedule()
}
