package pdsep

import (
	"testing"

	"muxwise/internal/gpu"
	"muxwise/internal/metrics"
	"muxwise/internal/model"
	"muxwise/internal/serve"
	"muxwise/internal/sim"
	"muxwise/internal/workload"
)

func cfg70B() serve.Config {
	return serve.Config{
		Spec: gpu.A100(), GPUs: 8, Arch: model.Llama70B(),
		SLO: metrics.SLO{TTFT: sim.Second, TBT: 100 * sim.Millisecond},
	}
}

func TestServesTrace(t *testing.T) {
	tr := workload.ShareGPT(1, 120).WithPoissonArrivals(1, 1)
	res := serve.Run(New, cfg70B(), tr)
	if res.Summary.Finished != 120 {
		t.Fatalf("finished %d/120", res.Summary.Finished)
	}
	if len(res.Devices) != 2 {
		t.Fatalf("devices = %d, want prefill + decode instances", len(res.Devices))
	}
}

// The decode instance statically owns half the GPUs at full SMs, so TBT
// is excellent — the paper notes SGLang-PD beats MuxWise on TBT.
func TestDecodeTBTExcellent(t *testing.T) {
	tr := workload.ToolAgent(2, 100).WithPoissonArrivals(2, 0.3)
	res := serve.Run(New, cfg70B(), tr)
	if att := res.Rec.TBTAttainment(100 * sim.Millisecond); att < 0.99 {
		t.Fatalf("TBT attainment %.3f, want ≥0.99 (static decode reservation)", att)
	}
}

// Multi-turn prefixes hit the prefill instance's radix cache across
// turns — the "KV-cache sharing across requests" the paper credits
// SGLang-PD with (unlike DistServe).
func TestPrefillRadixReuse(t *testing.T) {
	cfg := cfg70B()
	s := sim.New()
	rec := metrics.NewRecorder()
	env := &serve.Env{
		Sim: s, Spec: cfg.Spec, GPUs: cfg.GPUs, Arch: cfg.Arch,
		SLO: cfg.SLO, Rec: rec, ReserveFrac: 0.1, MaxBatch: 256,
	}
	e := New(env).(*Engine)
	tr := workload.Conversation(3, 40).WithPoissonArrivals(3, 0.4)
	for _, r := range tr.Requests {
		r := r
		rec.Arrive(r.ID, r.Arrival, r.InputTokens)
		s.At(r.Arrival, func() { e.Submit(r) })
	}
	s.Run()
	if hr := e.PrefillPool().Stats().HitRate(); hr < 0.2 {
		t.Fatalf("prefill radix hit rate %.3f, want ≥0.2", hr)
	}
	sum := rec.Summarize("pd", s.Now())
	if sum.Finished != sum.Requests {
		t.Fatalf("finished %d/%d", sum.Finished, sum.Requests)
	}
}

// Static disaggregation leaves the decode instance idle while prefill
// queues: under a prefill-heavy burst, the prefill device works while
// the decode device underutilizes.
func TestStaticSplitIdlesDecode(t *testing.T) {
	tr := workload.LooGLE(4, 40).WithPoissonArrivals(4, 0.5)
	res := serve.Run(New, cfg70B(), tr)
	p, d := res.Devices[0], res.Devices[1]
	if p.ActiveSeconds == 0 {
		t.Fatal("prefill instance never worked")
	}
	// LooGLE outputs ~15 tokens: decode busy time must be a small
	// fraction of prefill busy time.
	if d.ActiveSeconds > p.ActiveSeconds {
		t.Fatalf("decode active %.1fs vs prefill %.1fs — expected idle decode on LooGLE",
			d.ActiveSeconds, p.ActiveSeconds)
	}
}

func TestMigrationDelaysFirstToken(t *testing.T) {
	// A single long request's TTFT must include the NVLink migration of
	// its KV (input 30K tokens × 320KB ≈ 9.6GB / (600GB/s × 4) ≈ 4ms).
	tr := &workload.Trace{Name: "one"}
	r := &workload.Request{
		ID: 0, InputTokens: 30000, OutputTokens: 5,
		Pages:    nil,
		AllPages: nil,
	}
	tr.Requests = append(tr.Requests, r)
	res := serve.Run(New, cfg70B(), tr)
	if res.Summary.Finished != 1 {
		t.Fatalf("finished %d/1", res.Summary.Finished)
	}
	prefillOnly := 30000.0 / 3000 // loose lower bound: ≥1s of prefill
	if res.Summary.TTFT.Avg < prefillOnly*0.2 {
		t.Fatalf("TTFT %.3fs implausibly small for 30K prefill + migration", res.Summary.TTFT.Avg)
	}
}
