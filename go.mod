module muxwise

go 1.24
