// Command tracegen emits a generated workload trace as JSON lines, one
// request per line, for inspection or external replay. The "mixed"
// workload is the bursty Fig. 13 Conversation + Tool&Agent interleaving
// the cluster tooling replays.
//
//	tracegen -workload conversation -n 100 -rate 1 > trace.jsonl
//	tracegen -workload mixed -n 60 -scale 0.25 > mixed.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"muxwise"
)

// record is the serialized view of one request.
type record struct {
	ID      int     `json:"id"`
	Session int     `json:"session"`
	Turn    int     `json:"turn"`
	Arrival float64 `json:"arrival_s"`
	Input   int     `json:"input_tokens"`
	Reused  int     `json:"reused_tokens"`
	Output  int     `json:"output_tokens"`
	Dataset string  `json:"dataset"`
}

func main() {
	wl := flag.String("workload", "sharegpt", "sharegpt, loogle, openthoughts, conversation, toolagent, mixed")
	n := flag.Int("n", 100, "requests (single-turn) or sessions (multi-turn)")
	rate := flag.Float64("rate", 1, "Poisson arrival rate, req/s (0 = bursty Fig.13 profile)")
	scale := flag.Float64("scale", 1, "profile scale when -rate 0")
	seed := flag.Uint64("seed", 1, "random seed")
	stats := flag.Bool("stats", false, "print Table 1 statistics instead of requests")
	flag.Parse()

	if strings.ToLower(*wl) == "mixed" {
		// The bursty Conversation + Tool&Agent mix the cluster tooling
		// replays: always profile-paced, -rate is ignored.
		emit(muxwise.MixedBursty(*seed, *n, *scale), *stats)
		return
	}

	var trace *muxwise.Trace
	switch strings.ToLower(*wl) {
	case "sharegpt":
		trace = muxwise.ShareGPT(*seed, *n)
	case "loogle":
		trace = muxwise.LooGLE(*seed, *n)
	case "openthoughts":
		trace = muxwise.OpenThoughts(*seed, *n)
	case "conversation":
		trace = muxwise.Conversation(*seed, *n)
	case "toolagent":
		trace = muxwise.ToolAgent(*seed, *n)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(1)
	}
	if *rate > 0 {
		trace = trace.WithPoissonArrivals(*seed, *rate)
	} else {
		profile := muxwise.ConversationProfile(*scale)
		if strings.ToLower(*wl) == "toolagent" {
			profile = muxwise.ToolAgentProfile(*scale)
		}
		trace = trace.WithProfileArrivals(*seed, profile)
	}
	emit(trace, *stats)
}

// emit writes the trace as JSON lines (or its Table 1 statistics).
func emit(trace *muxwise.Trace, stats bool) {
	if stats {
		fmt.Println(trace.Name, trace.Stats())
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for _, r := range trace.Requests {
		rec := record{
			ID: r.ID, Session: r.Session, Turn: r.Turn,
			Arrival: r.Arrival.Seconds(),
			Input:   r.InputTokens, Reused: r.ReusedTokens, Output: r.OutputTokens,
			Dataset: r.Dataset,
		}
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
