package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"muxwise/internal/vet"
)

func TestListRoster(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-list"}, &buf); code != 0 {
		t.Fatalf("muxvet -list exited %d", code)
	}
	out := buf.String()
	for _, a := range vet.Analyzers() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out)
		}
	}
	for _, needle := range []string{"//muxvet:allow", "//muxvet:ordered", "go vet -vettool="} {
		if !strings.Contains(out, needle) {
			t.Errorf("-list output missing %q:\n%s", needle, out)
		}
	}
}

// TestVersionHandshake checks the -V=full reply parses the way
// cmd/go's vet driver expects: "name version ... buildID=<hex>".
func TestVersionHandshake(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-V=full"}, &buf); code != 0 {
		t.Fatalf("muxvet -V=full exited %d", code)
	}
	re := regexp.MustCompile(`^muxvet version devel buildID=[0-9a-f]{64}\n$`)
	if !re.MatchString(buf.String()) {
		t.Errorf("-V=full output %q does not match %s", buf.String(), re)
	}
}

func TestFlagsQuery(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-flags"}, &buf); code != 0 {
		t.Fatalf("muxvet -flags exited %d", code)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("-flags output = %q, want %q", got, "[]\n")
	}
}

// TestGoVetSeededViolation is the end-to-end proof behind the CI lint
// gate: build muxvet, point `go vet -vettool` at a module (named
// muxwise, so the classifier engages) seeded with a wallclock
// violation, and demand failure; then demand that a reasoned
// //muxvet:allow exemption turns the same tree green.
func TestGoVetSeededViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs go vet")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go not on PATH")
	}

	tmp := t.TempDir()
	tool := filepath.Join(tmp, "muxvet")
	build := exec.Command(goBin, "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building muxvet: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "mod")
	if err := os.MkdirAll(filepath.Join(mod, "internal", "core"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module muxwise\n\ngo 1.24\n")

	bad := `package core

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`
	writeFile(t, filepath.Join(mod, "internal", "core", "core.go"), bad)
	out, err := runGoVet(t, goBin, tool, mod)
	if err == nil {
		t.Fatalf("go vet passed on a seeded wallclock violation; output:\n%s", out)
	}
	if !strings.Contains(out, "time.Now reads the wall clock") || !strings.Contains(out, "muxvet:wallclock") {
		t.Fatalf("go vet failed but without the expected wallclock diagnostic:\n%s", out)
	}

	exempt := `package core

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //muxvet:allow wallclock test fixture anchors to a wall-clock base
}
`
	writeFile(t, filepath.Join(mod, "internal", "core", "core.go"), exempt)
	out, err = runGoVet(t, goBin, tool, mod)
	if err != nil {
		t.Fatalf("go vet failed on an exempted tree: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runGoVet(t *testing.T, goBin, tool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command(goBin, "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=", "GOWORK=off", "GITHUB_ACTIONS=")
	out, err := cmd.CombinedOutput()
	return string(out), err
}
