// Command muxvet is this repository's determinism/pooling checker: a
// multichecker over the hand-rolled analyzers in internal/vet, usable
// both as a `go vet -vettool` backend and directly.
//
// Usage:
//
//	muxvet -list                 print the analyzer roster
//	muxvet [packages]            shorthand for go vet -vettool=muxvet [packages]
//	go vet -vettool=$(which muxvet) ./...
//
// As a vettool, cmd/go drives muxvet once per package with a vet.cfg
// describing sources and export data; muxvet also answers the -V=full
// build-ID handshake and the -flags query that protocol requires.
// Diagnostics print as file:line:col with a [muxvet:analyzer] tag;
// under GitHub Actions they are additionally emitted as ::error
// workflow annotations.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"muxwise/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	if len(args) > 0 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			return printVersion(out)
		case args[0] == "-flags":
			// The go vet driver asks for our flag schema; muxvet's
			// behaviour is all in the analyzers, so there are none.
			fmt.Fprintln(out, "[]")
			return 0
		case args[0] == "-list" || args[0] == "list":
			printRoster(out)
			return 0
		}
		if strings.HasSuffix(args[len(args)-1], ".cfg") {
			// Invoked by cmd/go as a vettool on one package unit.
			return vet.RunUnit(args[len(args)-1], vet.Analyzers())
		}
	}
	// Convenience mode: muxvet [packages] re-execs the go vet driver
	// pointed back at this binary, which handles package loading,
	// build caching, and export data.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "muxvet: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "muxvet: %v\n", err)
		return 2
	}
	return 0
}

// printRoster writes the analyzer list with one-line docs, so CI logs
// and contributors can see what is enforced without reading source.
func printRoster(out io.Writer) {
	fmt.Fprintln(out, "muxvet enforces this repository's determinism, pooling, and hot-path invariants:")
	fmt.Fprintln(out)
	for _, a := range vet.Analyzers() {
		fmt.Fprintf(out, "  %-12s %s\n", a.Name, firstLine(a.Doc))
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "exemptions: //muxvet:allow <analyzer> <reason>   //muxvet:ordered <reason>")
	fmt.Fprintln(out, "run:        go vet -vettool=$(which muxvet) ./...")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion answers the -V=full handshake cmd/go uses to derive a
// stable build ID for vet result caching: the content hash of this
// binary, in the "devel ... buildID=" form cmd/go parses.
func printVersion(out io.Writer) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "muxvet: %v\n", err)
		return 2
	}
	f, err := os.Open(self)
	if err != nil {
		fmt.Fprintf(os.Stderr, "muxvet: %v\n", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "muxvet: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "muxvet version devel buildID=%x\n", h.Sum(nil))
	return 0
}
