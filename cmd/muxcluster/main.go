// Command muxcluster simulates a replica fleet behind a request router
// and prints fleet-wide plus per-replica metrics.
//
//	muxcluster -replicas 4xMuxWise -router prefix-affinity -workload mixed -scale 0.2
//	muxcluster -replicas 6xMuxWise,2xSGLang-PD:prefill@2 -router all -json
//
// The -replicas grammar is COUNTxENGINE[:ROLE][@GPUS], comma-separated:
// "2xSGLang-PD:prefill@2" runs two SGLang-PD replicas tagged as
// prefill-heavy with 2 GPUs each. -router all compares every policy on
// the same trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"muxwise"
)

func parseReplicas(spec string) ([]muxwise.ReplicaSpec, error) {
	var out []muxwise.ReplicaSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rs := muxwise.ReplicaSpec{Count: 1}
		if at := strings.SplitN(part, "@", 2); len(at) == 2 {
			g, err := strconv.Atoi(at[1])
			if err != nil {
				return nil, fmt.Errorf("bad gpu count in %q", part)
			}
			rs.GPUs = g
			part = at[0]
		}
		if colon := strings.SplitN(part, ":", 2); len(colon) == 2 {
			rs.Role = colon[1]
			part = colon[0]
		}
		if x := strings.SplitN(part, "x", 2); len(x) == 2 {
			if n, err := strconv.Atoi(x[0]); err == nil {
				if n < 1 {
					return nil, fmt.Errorf("replica count must be ≥ 1 in %q", part)
				}
				rs.Count = n
				part = x[1]
			}
		}
		rs.Engine = part
		out = append(out, rs)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no replicas in %q", spec)
	}
	return out, nil
}

func buildTrace(wl string, seed uint64, n int, scale, rate float64) (*muxwise.Trace, error) {
	switch strings.ToLower(wl) {
	case "mixed":
		conv := muxwise.Conversation(seed, n).
			WithProfileArrivals(seed, muxwise.ConversationProfile(scale))
		tool := muxwise.ToolAgent(seed+1, n).
			WithProfileArrivals(seed+1, muxwise.ToolAgentProfile(scale))
		return muxwise.MixTraces("Conversation+Tool&Agent", conv, tool), nil
	case "conversation":
		return muxwise.Conversation(seed, n).
			WithProfileArrivals(seed, muxwise.ConversationProfile(scale)), nil
	case "toolagent":
		return muxwise.ToolAgent(seed, n).
			WithProfileArrivals(seed, muxwise.ToolAgentProfile(scale)), nil
	case "sharegpt":
		return muxwise.ShareGPT(seed, n).WithPoissonArrivals(seed, rate), nil
	case "loogle":
		return muxwise.LooGLE(seed, n).WithPoissonArrivals(seed, rate), nil
	case "openthoughts":
		return muxwise.OpenThoughts(seed, n).WithPoissonArrivals(seed, rate), nil
	}
	return nil, fmt.Errorf("unknown workload %q", wl)
}

// routerRow is the JSON record for one router's fleet run.
type routerRow struct {
	Router     string
	Requests   int
	Finished   int
	P99TTFT    float64 // seconds
	P99TBT     float64 // seconds
	Attainment float64
	CacheHit   float64
	MeanUtil   float64
	Unstable   bool
	Replicas   []replicaRow
}

type replicaRow struct {
	Name     string
	Role     string
	Requests int
	CacheHit float64
}

func main() {
	replicas := flag.String("replicas", "4xMuxWise", "fleet spec: COUNTxENGINE[:ROLE][@GPUS],...")
	router := flag.String("router", "prefix-affinity",
		"router policy ("+strings.Join(muxwise.RouterPolicies(), ", ")+") or 'all'")
	mdl := flag.String("model", "Llama-8B", "model name")
	hw := flag.String("hw", "A100", "hardware: A100, H100, H200")
	gpus := flag.Int("gpus", 1, "GPUs per replica (overridable per shape with @N)")
	wl := flag.String("workload", "mixed", "workload: mixed, conversation, toolagent, sharegpt, loogle, openthoughts")
	n := flag.Int("n", 120, "sessions (multi-turn) or requests (single-turn) per trace")
	scale := flag.Float64("scale", 0.2, "Fig. 13 profile scale (profile workloads)")
	rate := flag.Float64("rate", 2, "Poisson rate, req/s (single-turn workloads)")
	seed := flag.Uint64("seed", 1, "random seed")
	ttft := flag.Duration("ttft", time.Second, "TTFT SLO")
	tbt := flag.Duration("tbt", 50*time.Millisecond, "TBT SLO")
	asJSON := flag.Bool("json", false, "emit results as JSON")
	flag.Parse()

	specs, err := parseReplicas(*replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	trace, err := buildTrace(*wl, *seed, *n, *scale, *rate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	routers := []string{*router}
	if *router == "all" {
		routers = muxwise.RouterPolicies()
	}

	slo := muxwise.SLO{TTFT: muxwise.FromDuration(*ttft), TBT: muxwise.FromDuration(*tbt)}
	var rows []routerRow
	for _, name := range routers {
		dep := muxwise.ClusterDeployment{
			Deployment: muxwise.Deployment{Hardware: *hw, GPUs: *gpus, Model: *mdl, SLO: slo},
			Replicas:   specs,
			Router:     name,
		}
		res, err := muxwise.ServeCluster(dep, trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		row := routerRow{
			Router:     name,
			Requests:   res.Summary.Requests,
			Finished:   res.Summary.Finished,
			P99TTFT:    res.Summary.TTFT.P99,
			P99TBT:     res.Summary.TBT.P99,
			Attainment: res.Rec.TBTAttainment(slo.TBT),
			CacheHit:   res.CacheHit,
			MeanUtil:   res.MeanUtil(),
			Unstable:   res.Summary.Unstable,
		}
		for _, rep := range res.Replicas {
			row.Replicas = append(row.Replicas, replicaRow{
				Name: rep.Name, Role: rep.Role.String(),
				Requests: rep.Requests, CacheHit: rep.CacheHit,
			})
		}
		rows = append(rows, row)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("fleet %s on %s (%s, %d reqs)\n\n", *replicas, *wl, *mdl, trace.Len())
	fmt.Printf("%-16s %9s %9s %8s %8s %7s %6s\n",
		"router", "p99TTFT", "p99TBT", "attain%", "cache%", "util%", "state")
	for _, r := range rows {
		state := "stable"
		if r.Unstable {
			state = "UNSTABLE"
		}
		fmt.Printf("%-16s %8.2fs %7.1fms %8.1f %8.1f %7.1f %6s\n",
			r.Router, r.P99TTFT, r.P99TBT*1e3,
			r.Attainment*100, r.CacheHit*100, r.MeanUtil*100, state)
	}
	if len(rows) == 1 {
		fmt.Printf("\nper-replica (router %s):\n", rows[0].Router)
		for _, rep := range rows[0].Replicas {
			fmt.Printf("  %-16s %-8s %5d reqs  cache %5.1f%%\n",
				rep.Name, rep.Role, rep.Requests, rep.CacheHit*100)
		}
	}
}
