// Command muxcluster simulates a replica fleet behind a request router
// and prints fleet-wide plus per-replica metrics.
//
//	muxcluster -replicas 4xMuxWise -router prefix-affinity -workload mixed -scale 0.2
//	muxcluster -replicas 6xMuxWise,2xSGLang-PD:prefill@2 -router all -json
//	muxcluster -scenario failure -fail-at 1m
//	muxcluster -scenario autoscale -min-replicas 1 -max-replicas 6
//	muxcluster -scenario hetero
//	muxcluster -replicas 1xMuxWise/A100,1xMuxWise/H100 -router all \
//	           -workload conversation -goodput 2:16
//
// The -replicas grammar is COUNTxENGINE[:ROLE][@GPUS][/HW],
// comma-separated: "2xSGLang-PD:prefill@2/H100" runs two SGLang-PD
// replicas tagged prefill-heavy with 2 H100s each. -router all compares
// every policy on the same trace. -router also accepts an inline
// "epp:" composition spec assembling a filter → scorer → picker
// pipeline from config:
//
//	muxcluster -router "epp:scorers=prefix:2,least-tokens:1"
//
// Scenarios exercise the lifecycle-managed fleet: "failure" crashes
// replica 0 mid-run (in-flight and sticky-session requests re-route and
// pay a KV re-prefill on their new replicas), "drain" rolls replica 0
// out gracefully behind a pre-spawned replacement, "autoscale" grows
// the fleet from -min-replicas on backlog pressure, and "hetero" runs a
// mixed A100+H100 fleet so each shape is costed by its own hardware
// model. Fleet runs print a lifecycle log and a per-epoch rollup table.
//
// -migration streams session KV off gracefully leaving replicas (drain,
// autoscale scale-in, retire) to the replica their traffic re-routes
// to, at the modeled NVLink/PCIe cost, instead of charging a full KV
// re-prefill — compare:
//
//	muxcluster -scenario drain -drain-at 1m
//	muxcluster -scenario drain -drain-at 1m -migration
//
// -cost-model roofline swaps the offline-profiled fitted estimator for
// the analytical roofline model (docs/roofline.md), which prices any
// model on any GPU spec — including shapes no profile exists for:
//
//	muxcluster -replicas 2xMuxWise/B200 -model Llama-70B -cost-model roofline
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"muxwise"
	"muxwise/internal/gpu"
)

// replicasGrammar documents the accepted -replicas syntax; it is printed
// whenever the spec fails to parse.
const replicasGrammar = `accepted -replicas grammar (comma-separated shapes):
  COUNTxENGINE[:ROLE][@GPUS][/HW]
    COUNT   replicas of this shape (positive integer; "x" separator)
    ENGINE  one of the engine names below
    ROLE    general (default), prefill, or decode
    GPUS    devices per replica (positive integer)
    HW      A100 (default), H100, H200, or B200
  examples:
    4xMuxWise
    6xMuxWise,2xSGLang-PD:prefill@2
    2xMuxWise/A100,2xMuxWise/H100`

// parseReplicas validates the full spec eagerly — engine names, roles,
// hardware and counts — so a typo fails before any simulation runs.
func parseReplicas(spec string) ([]muxwise.ReplicaSpec, error) {
	known := muxwise.Engines()
	var out []muxwise.ReplicaSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rs := muxwise.ReplicaSpec{Count: 1}
		if slash := strings.SplitN(part, "/", 2); len(slash) == 2 {
			rs.Hardware = slash[1]
			part = slash[0]
		}
		if at := strings.SplitN(part, "@", 2); len(at) == 2 {
			g, err := strconv.Atoi(at[1])
			if err != nil || g < 1 {
				return nil, fmt.Errorf("bad gpu count %q in %q", at[1], part)
			}
			rs.GPUs = g
			part = at[0]
		}
		if colon := strings.SplitN(part, ":", 2); len(colon) == 2 {
			rs.Role = colon[1]
			part = colon[0]
		}
		if x := strings.SplitN(part, "x", 2); len(x) == 2 {
			if n, err := strconv.Atoi(x[0]); err == nil {
				if n < 1 {
					return nil, fmt.Errorf("replica count must be ≥ 1 in %q", part)
				}
				rs.Count = n
				part = x[1]
			}
		}
		rs.Engine = part
		if !slices.Contains(known, rs.Engine) {
			return nil, fmt.Errorf("unknown engine %q (have %s)", rs.Engine, strings.Join(known, ", "))
		}
		switch rs.Role {
		case "", "general", "prefill", "decode":
		default:
			return nil, fmt.Errorf("unknown role %q in %q (want general, prefill, or decode)", rs.Role, spec)
		}
		if rs.Hardware != "" {
			if _, ok := gpu.SpecByName(rs.Hardware); !ok {
				return nil, fmt.Errorf("unknown hardware %q in %q (want A100, H100, H200, or B200)", rs.Hardware, spec)
			}
		}
		out = append(out, rs)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no replicas in %q", spec)
	}
	return out, nil
}

func buildTrace(wl string, seed uint64, n int, scale, rate float64) (*muxwise.Trace, error) {
	switch strings.ToLower(wl) {
	case "mixed":
		return muxwise.MixedBursty(seed, n, scale), nil
	case "conversation":
		return muxwise.Conversation(seed, n).
			WithProfileArrivals(seed, muxwise.ConversationProfile(scale)), nil
	case "toolagent":
		return muxwise.ToolAgent(seed, n).
			WithProfileArrivals(seed, muxwise.ToolAgentProfile(scale)), nil
	case "sharegpt":
		return muxwise.ShareGPT(seed, n).WithPoissonArrivals(seed, rate), nil
	case "loogle":
		return muxwise.LooGLE(seed, n).WithPoissonArrivals(seed, rate), nil
	case "openthoughts":
		return muxwise.OpenThoughts(seed, n).WithPoissonArrivals(seed, rate), nil
	}
	return nil, fmt.Errorf("unknown workload %q", wl)
}

// scenarioOpts carries the scenario flags.
type scenarioOpts struct {
	name       string
	failAt     time.Duration
	drainAt    time.Duration
	minReps    int
	maxReps    int
	coldStart  time.Duration
	autoscaler string
	migration  bool
}

// applyScenario rewrites the deployment for the requested scenario.
func applyScenario(dep *muxwise.ClusterDeployment, specFlagSet bool, o scenarioOpts) error {
	switch o.name {
	case "":
	case "failure":
		dep.Fleet = &muxwise.FleetOptions{
			Events: []muxwise.FleetEvent{
				{At: muxwise.FromDuration(o.failAt), Kind: "fail", Replica: 0},
			},
		}
	case "drain":
		// A rolling drain: a replacement of the first shape spawns so it
		// is ready ahead of the drain, then replica 0 leaves gracefully.
		// With -migration its session KV streams to the re-routed
		// replicas; without, their next turns repay a full re-prefill.
		spawnAt := o.drainAt - o.coldStart - 2*time.Second
		if spawnAt < 0 {
			spawnAt = 0
		}
		dep.Fleet = &muxwise.FleetOptions{
			ColdStart: muxwise.FromDuration(o.coldStart),
			Events: []muxwise.FleetEvent{
				{At: muxwise.FromDuration(spawnAt), Kind: "spawn"},
				{At: muxwise.FromDuration(o.drainAt), Kind: "drain", Replica: 0},
			},
		}
	case "autoscale":
		if len(dep.Replicas) > 1 {
			return fmt.Errorf("scenario autoscale wants a single replica shape, got %d", len(dep.Replicas))
		}
		dep.Replicas[0].Count = o.minReps
		dep.Fleet = &muxwise.FleetOptions{
			Autoscaler:  o.autoscaler,
			MinReplicas: o.minReps,
			MaxReplicas: o.maxReps,
			ColdStart:   muxwise.FromDuration(o.coldStart),
		}
	case "hetero":
		if !specFlagSet {
			dep.Replicas = []muxwise.ReplicaSpec{
				{Engine: "MuxWise", Count: 2, Hardware: "A100"},
				{Engine: "MuxWise", Count: 2, Hardware: "H100"},
			}
		}
		shapes := map[string]bool{}
		for _, rs := range dep.Replicas {
			hw := rs.Hardware
			if hw == "" {
				hw = dep.Hardware
			}
			shapes[strings.ToUpper(hw)] = true
		}
		if len(shapes) < 2 {
			return fmt.Errorf("scenario hetero wants mixed hardware; tag shapes with /A100, /H100 or /H200")
		}
	default:
		return fmt.Errorf("unknown scenario %q (want autoscale, drain, failure, or hetero)", o.name)
	}
	if o.migration {
		if dep.Fleet == nil {
			dep.Fleet = &muxwise.FleetOptions{}
		}
		dep.Fleet.Migration = true
	}
	return nil
}

// routerRow is the JSON record for one router's fleet run.
type routerRow struct {
	Router     string
	Requests   int
	Finished   int
	P99TTFT    float64 // seconds
	P99TBT     float64 // seconds
	Attainment float64
	CacheHit   float64
	MeanUtil   float64
	Unstable   bool
	Failures   int `json:",omitempty"`
	Unrouted   int `json:",omitempty"`
	// MissCauses attributes every SLO miss of the run to a cause.
	MissCauses muxwise.MissBreakdown
	// Migration accounting (KV streamed on graceful takedowns).
	MigratedKVTokens   int64   `json:",omitempty"`
	MigrationStreams   int     `json:",omitempty"`
	MigrationStallSecs float64 `json:",omitempty"`
	RePrefillKVTokens  int64   `json:",omitempty"`
	Replicas           []replicaRow
	Epochs             []epochRow `json:",omitempty"`
	Events             []string   `json:",omitempty"`
}

type replicaRow struct {
	Name     string
	Role     string
	Hardware string
	State    string
	Requests int
	CacheHit float64
}

type epochRow struct {
	From, To   float64 // seconds
	Label      string
	Ready      int
	Arrivals   int
	P99TTFT    float64 // seconds
	P99TBT     float64 // seconds
	Attainment float64
	CacheHit   float64
}

func rowOf(name string, res muxwise.ClusterResult, tbtSLO muxwise.Time) routerRow {
	row := routerRow{
		Router:     name,
		Requests:   res.Summary.Requests,
		Finished:   res.Summary.Finished,
		P99TTFT:    res.Summary.TTFT.P99,
		P99TBT:     res.Summary.TBT.P99,
		Attainment: res.Rec.TBTAttainment(tbtSLO),
		CacheHit:   res.CacheHit,
		MeanUtil:   res.MeanUtil(),
		Unstable:   res.Summary.Unstable,
		Failures:   res.Failures,
		Unrouted:   res.Unrouted,
		MissCauses: res.Diagnostics,

		MigratedKVTokens:   res.Migration.MigratedTokens,
		MigrationStreams:   res.Migration.Streams,
		MigrationStallSecs: res.Migration.Stall.Seconds(),
		RePrefillKVTokens:  res.Migration.RePrefillTokens + res.Migration.CanceledTokens,
	}
	for _, rep := range res.Replicas {
		row.Replicas = append(row.Replicas, replicaRow{
			Name: rep.Name, Role: rep.Role.String(), Hardware: rep.Hardware,
			State: rep.State.String(), Requests: rep.Requests, CacheHit: rep.CacheHit,
		})
	}
	for _, ep := range res.Epochs {
		row.Epochs = append(row.Epochs, epochRow{
			From: ep.From.Seconds(), To: ep.To.Seconds(),
			Label: ep.Label, Ready: ep.Ready, Arrivals: ep.Window.Arrivals,
			P99TTFT: ep.Window.TTFT.P99, P99TBT: ep.Window.TBT.P99,
			Attainment: ep.Attainment, CacheHit: ep.CacheHit,
		})
	}
	for _, ev := range res.Events {
		row.Events = append(row.Events, fmt.Sprintf("%v %s", ev.At, ev.Msg))
	}
	return row
}

// writeTrace exports the flight recorder to the requested files.
func writeTrace(fr *muxwise.FlightRecorder, chromePath, jsonlPath string) error {
	write := func(path string, fn func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "muxcluster: wrote %d trace events to %s\n", fr.Len(), path)
		return nil
	}
	if chromePath != "" {
		if err := write(chromePath, func(f *os.File) error {
			return muxwise.WriteChromeTrace(f, fr)
		}); err != nil {
			return err
		}
	}
	if jsonlPath != "" {
		if err := write(jsonlPath, func(f *os.File) error {
			return muxwise.WriteTraceJSONL(f, fr)
		}); err != nil {
			return err
		}
	}
	return nil
}

// goodputRow is the JSON record for one router's goodput search.
type goodputRow struct {
	Router   string
	Goodput  float64
	Feasible bool
}

// runGoodput searches the highest sustainable load per router — rate
// for Poisson workloads, Fig. 13 burst scale for profile workloads —
// and prints one row per policy (JSON with -json).
func runGoodput(rng string, routers []string, specs []muxwise.ReplicaSpec, sc scenarioOpts,
	hw string, gpus int, mdl string, costModel string, slo muxwise.SLO, specFlagSet bool,
	wl string, seed uint64, n int, asJSON bool) error {
	loS, hiS, ok := strings.Cut(rng, ":")
	if !ok {
		return fmt.Errorf("bad -goodput range %q (want LO:HI)", rng)
	}
	lo, err1 := strconv.ParseFloat(loS, 64)
	hi, err2 := strconv.ParseFloat(hiS, 64)
	if err1 != nil || err2 != nil {
		return fmt.Errorf("bad -goodput range %q (want LO:HI)", rng)
	}
	var rows []goodputRow
	if !asJSON {
		fmt.Printf("searching goodput in [%g, %g] on %s…\n", lo, hi, wl)
		fmt.Printf("%-16s %10s\n", "router", "goodput")
	}
	for _, name := range routers {
		dep := muxwise.ClusterDeployment{
			Deployment: muxwise.Deployment{Hardware: hw, GPUs: gpus, Model: mdl, SLO: slo},
			Replicas:   append([]muxwise.ReplicaSpec(nil), specs...),
			Router:     name,
		}
		if err := applyScenario(&dep, specFlagSet, sc); err != nil {
			return err
		}
		opts := []muxwise.Option{
			muxwise.WithDeployment(dep.Deployment),
			muxwise.WithFleet(dep.Replicas...),
			muxwise.WithRouter(dep.Router),
			// The parameter doubles as Poisson rate and profile scale:
			// buildTrace reads whichever slot the workload uses.
			muxwise.WithWorkload(func(x float64) *muxwise.Trace {
				t, err := buildTrace(wl, seed, n, x, x)
				if err != nil {
					panic(err)
				}
				return t
			}),
		}
		if costModel != "" {
			opts = append(opts, muxwise.WithCostModel(costModel))
		}
		if dep.Fleet != nil {
			opts = append(opts, muxwise.WithFleetOptions(*dep.Fleet))
		}
		g, err := muxwise.NewExperiment(opts...).Goodput(lo, hi)
		switch {
		case errors.Is(err, muxwise.ErrNoFeasibleRate):
			rows = append(rows, goodputRow{Router: name})
			if !asJSON {
				fmt.Printf("%-16s %10s\n", name, "n/a (floor rate misses the SLO)")
			}
		case err != nil:
			return err
		default:
			rows = append(rows, goodputRow{Router: name, Goodput: g, Feasible: true})
			if !asJSON {
				fmt.Printf("%-16s %10.3f\n", name, g)
			}
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	return nil
}

func main() {
	replicas := flag.String("replicas", "4xMuxWise", "fleet spec: COUNTxENGINE[:ROLE][@GPUS][/HW],...")
	router := flag.String("router", "prefix-affinity",
		"router policy ("+strings.Join(muxwise.RouterPolicies(), ", ")+"), 'all', or an inline 'epp:' composition spec")
	scenario := flag.String("scenario", "", "fleet scenario: autoscale, drain, failure, or hetero")
	failAt := flag.Duration("fail-at", time.Minute, "failure scenario: when replica 0 crashes")
	drainAt := flag.Duration("drain-at", time.Minute, "drain scenario: when replica 0 drains (its replacement spawns ahead)")
	migration := flag.Bool("migration", false,
		"stream session KV off gracefully leaving replicas at the modeled NVLink/PCIe cost instead of re-prefilling")
	minReps := flag.Int("min-replicas", 1, "autoscale scenario: starting and minimum fleet size")
	maxReps := flag.Int("max-replicas", 8, "autoscale scenario: maximum fleet size")
	coldStart := flag.Duration("cold-start", 15*time.Second,
		"autoscale/drain scenarios: spawn-to-ready delay (drain places the replacement spawn this far ahead)")
	autoscaler := flag.String("autoscaler", "backlog",
		"autoscale scenario policy ("+strings.Join(muxwise.AutoscalerPolicies(), ", ")+")")
	mdl := flag.String("model", "Llama-8B", "model name")
	hw := flag.String("hw", "A100", "hardware: A100, H100, H200, B200")
	costModel := flag.String("cost-model", "",
		"step-time estimator: "+strings.Join(muxwise.CostModels(), " or ")+
			" (default fitted; roofline covers any model on any GPU, e.g. -hw B200)")
	gpus := flag.Int("gpus", 1, "GPUs per replica (overridable per shape with @N)")
	wl := flag.String("workload", "mixed", "workload: mixed, conversation, toolagent, sharegpt, loogle, openthoughts")
	n := flag.Int("n", 120, "sessions (multi-turn) or requests (single-turn) per trace")
	scale := flag.Float64("scale", 0.2, "Fig. 13 profile scale (profile workloads)")
	rate := flag.Float64("rate", 2, "Poisson rate, req/s (single-turn workloads)")
	seed := flag.Uint64("seed", 1, "random seed")
	ttft := flag.Duration("ttft", time.Second, "TTFT SLO")
	tbt := flag.Duration("tbt", 50*time.Millisecond, "TBT SLO")
	goodput := flag.String("goodput", "",
		"search fleet goodput over LO:HI instead of one run (req/s for Poisson workloads, burst scale for profile workloads)")
	asJSON := flag.Bool("json", false, "emit results as JSON")
	traceOut := flag.String("trace", "",
		"write a flight-recorder trace of the run as Chrome trace-event JSON (open in Perfetto or chrome://tracing)")
	traceJSONL := flag.String("trace-jsonl", "", "also write the flight-recorder trace as JSONL")
	flag.Parse()

	specs, err := parseReplicas(*replicas)
	if err != nil {
		fmt.Fprintf(os.Stderr, "muxcluster: %v\n\n%s\n", err, replicasGrammar)
		os.Exit(2)
	}

	routers := []string{*router}
	if *router == "all" {
		routers = muxwise.RouterPolicies()
	}

	slo := muxwise.SLO{TTFT: muxwise.FromDuration(*ttft), TBT: muxwise.FromDuration(*tbt)}
	specFlagSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "replicas" {
			specFlagSet = true
		}
	})

	// The flight recorder records exactly one replayed run, so tracing is
	// incompatible with goodput search (many probe runs) and with
	// -router all (one run per policy).
	var fr *muxwise.FlightRecorder
	if *traceOut != "" || *traceJSONL != "" {
		switch {
		case *goodput != "":
			fmt.Fprintln(os.Stderr, "muxcluster: -trace records a single run; drop -goodput")
			os.Exit(2)
		case len(routers) != 1:
			fmt.Fprintln(os.Stderr, "muxcluster: -trace records a single run; pick one router, not 'all'")
			os.Exit(2)
		}
		fr = muxwise.NewFlightRecorder()
	}

	if *goodput != "" {
		// Goodput mode builds its own traces per probe; the single
		// default trace below is never used.
		if err := runGoodput(*goodput, routers, specs, scenarioOpts{
			name: *scenario, failAt: *failAt, drainAt: *drainAt, minReps: *minReps, maxReps: *maxReps,
			coldStart: *coldStart, autoscaler: *autoscaler, migration: *migration,
		}, *hw, *gpus, *mdl, *costModel, slo, specFlagSet, *wl, *seed, *n, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "muxcluster:", err)
			os.Exit(1)
		}
		return
	}

	trace, err := buildTrace(*wl, *seed, *n, *scale, *rate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var rows []routerRow
	for _, name := range routers {
		dep := muxwise.ClusterDeployment{
			Deployment: muxwise.Deployment{Hardware: *hw, GPUs: *gpus, Model: *mdl, SLO: slo},
			Replicas:   append([]muxwise.ReplicaSpec(nil), specs...),
			Router:     name,
		}
		if err := applyScenario(&dep, specFlagSet, scenarioOpts{
			name: *scenario, failAt: *failAt, drainAt: *drainAt, minReps: *minReps, maxReps: *maxReps,
			coldStart: *coldStart, autoscaler: *autoscaler, migration: *migration,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "muxcluster:", err)
			os.Exit(2)
		}
		opts := []muxwise.Option{
			muxwise.WithDeployment(dep.Deployment),
			muxwise.WithFleet(dep.Replicas...),
			muxwise.WithRouter(dep.Router),
		}
		if *costModel != "" {
			opts = append(opts, muxwise.WithCostModel(*costModel))
		}
		if dep.Fleet != nil {
			opts = append(opts, muxwise.WithFleetOptions(*dep.Fleet))
		}
		if fr != nil {
			opts = append(opts, muxwise.WithTrace(fr))
		}
		report, err := muxwise.NewExperiment(opts...).Run(trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rows = append(rows, rowOf(name, *report.Fleet, slo.TBT))
	}

	if fr != nil {
		if err := writeTrace(fr, *traceOut, *traceJSONL); err != nil {
			fmt.Fprintln(os.Stderr, "muxcluster:", err)
			os.Exit(1)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	what := *replicas
	if *scenario != "" {
		what += " scenario=" + *scenario
	}
	fmt.Printf("fleet %s on %s (%s, %d reqs)\n\n", what, *wl, *mdl, trace.Len())
	fmt.Printf("%-16s %9s %9s %8s %8s %7s %6s\n",
		"router", "p99TTFT", "p99TBT", "attain%", "cache%", "util%", "state")
	for _, r := range rows {
		state := "stable"
		if r.Unstable {
			state = "UNSTABLE"
		}
		fmt.Printf("%-16s %8.2fs %7.1fms %8.1f %8.1f %7.1f %6s\n",
			r.Router, r.P99TTFT, r.P99TBT*1e3,
			r.Attainment*100, r.CacheHit*100, r.MeanUtil*100, state)
	}
	if len(rows) != 1 {
		return
	}
	row := rows[0]
	fmt.Printf("\nper-replica (router %s):\n", row.Router)
	for _, rep := range row.Replicas {
		fmt.Printf("  %-16s %-8s %-9s %-8s %5d reqs  cache %5.1f%%\n",
			rep.Name, rep.Role, rep.Hardware, rep.State, rep.Requests, rep.CacheHit*100)
	}
	if row.MigrationStreams > 0 || row.RePrefillKVTokens > 0 {
		fmt.Printf("\nkv migration: %d streams, %d tokens delivered, %.1f ms stall, %d tokens re-prefilled\n",
			row.MigrationStreams, row.MigratedKVTokens, row.MigrationStallSecs*1e3, row.RePrefillKVTokens)
	}
	if row.MissCauses.Misses > 0 {
		fmt.Printf("\nslo misses: %s\n", row.MissCauses.String())
	}
	if len(row.Events) > 0 {
		fmt.Println("\nfleet events:")
		for _, ev := range row.Events {
			fmt.Printf("  %s\n", ev)
		}
	}
	if len(row.Epochs) > 0 {
		fmt.Println("\nepochs:")
		fmt.Printf("  %-22s %10s %6s %6s %9s %9s %8s %7s\n",
			"epoch", "span", "ready", "arriv", "p99TTFT", "p99TBT", "attain%", "cache%")
		for _, ep := range row.Epochs {
			fmt.Printf("  %-22s %4.0fs-%4.0fs %6d %6d %8.2fs %7.1fms %8.1f %7.1f\n",
				ep.Label, ep.From, ep.To, ep.Ready, ep.Arrivals,
				ep.P99TTFT, ep.P99TBT*1e3, ep.Attainment*100, ep.CacheHit*100)
		}
	}
}
