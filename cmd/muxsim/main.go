// Command muxsim runs one serving simulation and prints its metrics as
// JSON.
//
//	muxsim -engine MuxWise -model Llama-70B -hw A100 -gpus 8 \
//	       -workload toolagent -n 300 -rate 0.4 -tbt 100ms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"muxwise"
)

func main() {
	engine := flag.String("engine", "MuxWise", "engine: "+strings.Join(muxwise.Engines(), ", "))
	mdl := flag.String("model", "Llama-8B", "model name")
	hw := flag.String("hw", "A100", "hardware: A100, H100, H200")
	gpus := flag.Int("gpus", 8, "number of GPUs")
	wl := flag.String("workload", "sharegpt", "workload: sharegpt, loogle, openthoughts, conversation, toolagent")
	traceFile := flag.String("trace", "", "replay a JSONL trace file instead of generating a workload")
	n := flag.Int("n", 500, "requests (single-turn) or sessions (multi-turn)")
	rate := flag.Float64("rate", 2, "Poisson arrival rate, req/s")
	seed := flag.Uint64("seed", 1, "random seed")
	ttft := flag.Duration("ttft", time.Second, "TTFT SLO")
	tbt := flag.Duration("tbt", 100*time.Millisecond, "TBT SLO")
	flag.Parse()

	var trace *muxwise.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trace, err = muxwise.ReadTraceJSONL(f, *traceFile)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		*wl = *traceFile
	} else {
		switch strings.ToLower(*wl) {
		case "sharegpt":
			trace = muxwise.ShareGPT(*seed, *n)
		case "loogle":
			trace = muxwise.LooGLE(*seed, *n)
		case "openthoughts":
			trace = muxwise.OpenThoughts(*seed, *n)
		case "conversation":
			trace = muxwise.Conversation(*seed, *n)
		case "toolagent":
			trace = muxwise.ToolAgent(*seed, *n)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
			os.Exit(1)
		}
		trace = trace.WithPoissonArrivals(*seed, *rate)
	}

	dep := muxwise.Deployment{
		Hardware: *hw, GPUs: *gpus, Model: *mdl,
		SLO: muxwise.SLO{
			TTFT: muxwise.FromDuration(*ttft),
			TBT:  muxwise.FromDuration(*tbt),
		},
	}

	exp := muxwise.NewExperiment(
		muxwise.WithDeployment(dep),
		muxwise.WithEngine(*engine),
	)
	report, err := exp.Run(trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	out := struct {
		Engine     string
		Workload   string
		Rate       float64
		Summary    muxwise.Summary
		Attainment float64
		MeanUtil   float64
	}{
		Engine:     *engine,
		Workload:   *wl,
		Rate:       *rate,
		Summary:    report.Summary,
		Attainment: report.Attainment,
		MeanUtil:   report.Engine.MeanUtil(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
