package main

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"muxwise"
	"muxwise/internal/frontier"
)

// synthetic builds a two-condition report with the drain pair present.
func synthetic() *frontier.Report {
	mkCell := func(cond, router, comp string, scale, perGPU float64, within int) frontier.Cell {
		// Every cell offers 100 requests; the shortfall is attributed to
		// TBT violations so the digest's miss-cause column is non-trivial.
		return frontier.Cell{Condition: cond, Router: router, Composition: comp,
			Scale: scale, GoodputPerGPU: perGPU, Offered: 100, WithinSLO: within,
			MissCauses: muxwise.MissBreakdown{Misses: 100 - within, TBTViolation: 100 - within}}
	}
	return &frontier.Report{
		Schema: frontier.Schema,
		Name:   "synthetic",
		Grid: frontier.Grid{
			Compositions: []string{"aggregated", "mixed"},
			Baseline:     "aggregated",
			Conditions:   []string{frontier.Drain, frontier.DrainMigrate},
			Routers:      []string{"least-tokens"},
			Scales:       []float64{1, 2},
			Sessions:     10,
			Seed:         1,
		},
		Cells: []frontier.Cell{
			mkCell(frontier.Drain, "least-tokens", "aggregated", 1, 0.4, 40),
			mkCell(frontier.Drain, "least-tokens", "mixed", 1, 0.3, 30),
			mkCell(frontier.Drain, "least-tokens", "aggregated", 2, 0.2, 20),
			mkCell(frontier.Drain, "least-tokens", "mixed", 2, 0.5, 50),
			mkCell(frontier.DrainMigrate, "least-tokens", "aggregated", 1, 0.45, 45),
			mkCell(frontier.DrainMigrate, "least-tokens", "mixed", 1, 0.35, 35),
			mkCell(frontier.DrainMigrate, "least-tokens", "aggregated", 2, 0.25, 25),
			mkCell(frontier.DrainMigrate, "least-tokens", "mixed", 2, 0.55, 55),
		},
		Frontiers: []frontier.Frontier{
			{Condition: frontier.Drain, Router: "least-tokens",
				Leaders: []frontier.Leader{
					{Scale: 1, Composition: "aggregated", GoodputPerGPU: 0.4},
					{Scale: 2, Composition: "mixed", GoodputPerGPU: 0.5},
				}, Crossover: 2},
			{Condition: frontier.DrainMigrate, Router: "least-tokens",
				Leaders: []frontier.Leader{
					{Scale: 1, Composition: "aggregated", GoodputPerGPU: 0.45},
					{Scale: 2, Composition: "mixed", GoodputPerGPU: 0.55},
				}, Crossover: 2},
		},
	}
}

func TestASCIIPanels(t *testing.T) {
	var buf bytes.Buffer
	writeASCII(&buf, synthetic())
	out := buf.String()
	for _, want := range []string{
		"condition=drain router=least-tokens",
		"condition=drain-migrate router=least-tokens",
		"a=aggregated", "m=mixed",
		"crossover at burst scale 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownSummary(t *testing.T) {
	var buf bytes.Buffer
	writeMarkdown(&buf, synthetic())
	out := buf.String()
	for _, want := range []string{
		"#### drain",
		"#### drain-migrate",
		"| least-tokens |",
		"| miss causes |",
		// Drain misses 60+70+80+50 = 260, all attributed to TBT.
		"tbt:260",
		// 45+35+25+55 = 160 migrated vs 40+30+20+50 = 140 drained.
		"**KV migration on drains:** 160 within-SLO requests vs 140 under re-prefill (+20 across the grid).",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown summary missing %q:\n%s", want, out)
		}
	}
}

// TestSVGWellFormed: the chart must parse as XML (CI publishes it as an
// artifact; a malformed file would render blank without failing a job).
func TestSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	writeSVG(&buf, synthetic())
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "<polyline") || !strings.Contains(out, "burst scale") {
		t.Error("SVG lacks series polylines or axis labels")
	}
}
