// Command frontierplot renders the canonical FrontierReport JSON (the
// artifact the frontier-golden CI job emits per commit) into charts a
// human can read without downloading anything: ASCII frontier panels on
// stdout, an optional SVG for the artifact bundle, and a -summary mode
// that prints a GitHub-flavored markdown digest of the goodput leaders
// and crossover scales — piped into $GITHUB_STEP_SUMMARY so the goodput
// trend is visible on every commit.
//
//	frontierplot -in frontier-report.json
//	frontierplot -in frontier-report.json -svg frontier.svg
//	frontierplot -in frontier-report.json -summary >> "$GITHUB_STEP_SUMMARY"
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"muxwise"
	"muxwise/internal/frontier"
)

func main() {
	in := flag.String("in", "frontier-report.json", "canonical FrontierReport JSON to render")
	svg := flag.String("svg", "", "also write an SVG frontier chart here")
	summary := flag.Bool("summary", false, "print a markdown goodput-leaders digest instead of ASCII panels")
	flag.Parse()

	rep, err := frontier.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frontierplot:", err)
		os.Exit(1)
	}
	if *summary {
		writeMarkdown(os.Stdout, rep)
	} else {
		writeASCII(os.Stdout, rep)
	}
	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frontierplot:", err)
			os.Exit(1)
		}
		writeSVG(f, rep)
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "frontierplot:", err)
			os.Exit(1)
		}
	}
}

// markers assigns each composition a stable single-rune plot marker
// (first distinct letter, falling back to digits).
func markers(comps []string) map[string]rune {
	out := map[string]rune{}
	used := map[rune]bool{}
	for i, c := range comps {
		m := rune('0' + i%10)
		for _, r := range c {
			if !used[r] {
				m = r
				break
			}
		}
		used[m] = true
		out[c] = m
	}
	return out
}

// cellValue looks up one cell's goodput-per-GPU.
func cellValue(rep *frontier.Report, cond, router, comp string, scale float64) (float64, bool) {
	for _, c := range rep.Cells {
		if c.Condition == cond && c.Router == router && c.Composition == comp && c.Scale == scale {
			return c.GoodputPerGPU, true
		}
	}
	return 0, false
}

// maxValue returns the highest goodput-per-GPU in one panel.
func maxValue(rep *frontier.Report, cond, router string) float64 {
	m := 0.0
	for _, c := range rep.Cells {
		if c.Condition == cond && c.Router == router && c.GoodputPerGPU > m {
			m = c.GoodputPerGPU
		}
	}
	return m
}

const (
	asciiRows = 12
	colWidth  = 9
)

// writeASCII renders one goodput-per-GPU panel per (condition, router).
func writeASCII(w io.Writer, rep *frontier.Report) {
	marks := markers(rep.Grid.Compositions)
	fmt.Fprintf(w, "%s — goodput per GPU (req/s/GPU) across Fig. 13 burst scales\n", rep.Name)
	fmt.Fprint(w, "legend:")
	for _, comp := range rep.Grid.Compositions {
		fmt.Fprintf(w, " %c=%s", marks[comp], comp)
	}
	fmt.Fprintln(w, "  (*=overlap)")
	for _, cond := range rep.Grid.Conditions {
		for _, router := range rep.Grid.Routers {
			top := maxValue(rep, cond, router)
			if top <= 0 {
				top = 1
			}
			fmt.Fprintf(w, "\ncondition=%s router=%s\n", cond, router)
			grid := make([][]rune, asciiRows)
			for i := range grid {
				grid[i] = []rune(strings.Repeat(" ", len(rep.Grid.Scales)*colWidth))
			}
			for si, scale := range rep.Grid.Scales {
				for _, comp := range rep.Grid.Compositions {
					v, ok := cellValue(rep, cond, router, comp, scale)
					if !ok {
						continue
					}
					row := asciiRows - 1 - int(math.Round(v/top*float64(asciiRows-1)))
					col := si*colWidth + colWidth/2
					if grid[row][col] != ' ' {
						grid[row][col] = '*'
					} else {
						grid[row][col] = marks[comp]
					}
				}
			}
			for i, line := range grid {
				label := "      "
				switch i {
				case 0:
					label = fmt.Sprintf("%6.3f", top)
				case asciiRows - 1:
					label = fmt.Sprintf("%6.3f", 0.0)
				}
				fmt.Fprintf(w, "%s |%s\n", label, string(line))
			}
			fmt.Fprintf(w, "       +%s\n        ", strings.Repeat("-", len(rep.Grid.Scales)*colWidth))
			for _, scale := range rep.Grid.Scales {
				fmt.Fprintf(w, "%-*g", colWidth, scale)
			}
			fmt.Fprintln(w)
			if f, ok := findFrontier(rep, cond, router); ok && f.Crossover > 0 {
				fmt.Fprintf(w, "        crossover at burst scale %g\n", f.Crossover)
			}
		}
	}
}

// findFrontier looks up the per-(condition, router) reduction.
func findFrontier(rep *frontier.Report, cond, router string) (frontier.Frontier, bool) {
	for _, f := range rep.Frontiers {
		if f.Condition == cond && f.Router == router {
			return f, true
		}
	}
	return frontier.Frontier{}, false
}

// writeMarkdown prints the $GITHUB_STEP_SUMMARY digest: per condition, a
// leaders table over (router × scale), crossovers, and — when both drain
// conditions are present — the migration-vs-re-prefill goodput delta.
func writeMarkdown(w io.Writer, rep *frontier.Report) {
	fmt.Fprintf(w, "### %s — goodput-per-GPU frontier\n\n", rep.Name)
	fmt.Fprintf(w, "Grid: %d compositions × %d conditions × %d routers × %d burst scales (%d sessions/workload, seed %d).\n\n",
		len(rep.Grid.Compositions), len(rep.Grid.Conditions), len(rep.Grid.Routers),
		len(rep.Grid.Scales), rep.Grid.Sessions, rep.Grid.Seed)
	for _, cond := range rep.Grid.Conditions {
		fmt.Fprintf(w, "#### %s\n\n", cond)
		fmt.Fprint(w, "| router |")
		for _, scale := range rep.Grid.Scales {
			fmt.Fprintf(w, " leader @%g |", scale)
		}
		fmt.Fprintln(w, " crossover | miss causes |")
		fmt.Fprint(w, "|---|")
		for range rep.Grid.Scales {
			fmt.Fprint(w, "---|")
		}
		fmt.Fprintln(w, "---|---|")
		for _, router := range rep.Grid.Routers {
			f, ok := findFrontier(rep, cond, router)
			if !ok {
				continue
			}
			fmt.Fprintf(w, "| %s |", router)
			for _, scale := range rep.Grid.Scales {
				cell := "—"
				for _, l := range f.Leaders {
					if l.Scale == scale {
						cell = fmt.Sprintf("%s (%.3f)", l.Composition, l.GoodputPerGPU)
					}
				}
				fmt.Fprintf(w, " %s |", cell)
			}
			if f.Crossover > 0 {
				fmt.Fprintf(w, " %g |", f.Crossover)
			} else {
				fmt.Fprint(w, " none |")
			}
			fmt.Fprintf(w, " %s |\n", missCauses(rep, cond, router).String())
		}
		fmt.Fprintln(w)
	}
	writeMigrationDelta(w, rep)
}

// missCauses aggregates the SLO-miss diagnostics of every cell of one
// (condition, router) panel — the digest's per-row attribution readout.
func missCauses(rep *frontier.Report, cond, router string) muxwise.MissBreakdown {
	var b muxwise.MissBreakdown
	for _, c := range rep.Cells {
		if c.Condition == cond && c.Router == router {
			b = b.Add(c.MissCauses)
		}
	}
	return b
}

// writeMigrationDelta summarises drain vs drain-migrate when the report
// carries both — the per-commit readout of the KV-migration win.
func writeMigrationDelta(w io.Writer, rep *frontier.Report) {
	var drain, migrate int
	var have int
	for _, c := range rep.Cells {
		switch c.Condition {
		case frontier.Drain:
			drain += c.WithinSLO
			have |= 1
		case frontier.DrainMigrate:
			migrate += c.WithinSLO
			have |= 2
		}
	}
	if have != 3 {
		return
	}
	fmt.Fprintf(w, "**KV migration on drains:** %d within-SLO requests vs %d under re-prefill (%+d across the grid).\n\n",
		migrate, drain, migrate-drain)
}

// SVG layout constants.
const (
	panelW   = 300
	panelH   = 220
	padLeft  = 52
	padRight = 16
	padTop   = 34
	padBot   = 40
	legendH  = 28
)

// palette holds color-blind-safe series colors (Okabe–Ito).
var palette = []string{"#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00"}

// writeSVG renders the report as a grid of SVG panels: conditions down,
// routers across, one polyline per composition.
func writeSVG(w io.Writer, rep *frontier.Report) {
	cols := len(rep.Grid.Routers)
	rows := len(rep.Grid.Conditions)
	width := cols * panelW
	height := rows*panelH + legendH
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif" font-size="11">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)

	// Legend.
	x := 8
	for i, comp := range rep.Grid.Compositions {
		color := palette[i%len(palette)]
		fmt.Fprintf(w, `<rect x="%d" y="9" width="14" height="3" fill="%s"/>`+"\n", x, color)
		fmt.Fprintf(w, `<text x="%d" y="15" fill="#333">%s</text>`+"\n", x+18, comp)
		x += 18 + 7*len(comp) + 16
	}

	for ci, cond := range rep.Grid.Conditions {
		for ri, router := range rep.Grid.Routers {
			ox := ri * panelW
			oy := legendH + ci*panelH
			top := maxValue(rep, cond, router)
			if top <= 0 {
				top = 1
			}
			plotW := panelW - padLeft - padRight
			plotH := panelH - padTop - padBot
			px := func(si int) float64 {
				if len(rep.Grid.Scales) == 1 {
					return float64(ox + padLeft + plotW/2)
				}
				return float64(ox+padLeft) + float64(si)/float64(len(rep.Grid.Scales)-1)*float64(plotW)
			}
			py := func(v float64) float64 {
				return float64(oy+padTop) + (1-v/top)*float64(plotH)
			}
			fmt.Fprintf(w, `<text x="%d" y="%d" fill="#111" font-weight="600">%s · %s</text>`+"\n",
				ox+padLeft, oy+20, cond, router)
			// Axes.
			fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`+"\n",
				ox+padLeft, oy+padTop, ox+padLeft, oy+panelH-padBot)
			fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`+"\n",
				ox+padLeft, oy+panelH-padBot, ox+panelW-padRight, oy+panelH-padBot)
			fmt.Fprintf(w, `<text x="%d" y="%d" fill="#666" text-anchor="end">%.3f</text>`+"\n",
				ox+padLeft-4, oy+padTop+4, top)
			fmt.Fprintf(w, `<text x="%d" y="%d" fill="#666" text-anchor="end">0</text>`+"\n",
				ox+padLeft-4, oy+panelH-padBot+4)
			for si, scale := range rep.Grid.Scales {
				fmt.Fprintf(w, `<text x="%.1f" y="%d" fill="#666" text-anchor="middle">%g</text>`+"\n",
					px(si), oy+panelH-padBot+16, scale)
			}
			fmt.Fprintf(w, `<text x="%d" y="%d" fill="#666" text-anchor="middle">burst scale</text>`+"\n",
				ox+padLeft+plotW/2, oy+panelH-8)
			// Series.
			for compIdx, comp := range rep.Grid.Compositions {
				color := palette[compIdx%len(palette)]
				type point struct{ x, y float64 }
				var pts []point
				for si, scale := range rep.Grid.Scales {
					v, ok := cellValue(rep, cond, router, comp, scale)
					if !ok {
						continue
					}
					pts = append(pts, point{px(si), py(v)})
				}
				if len(pts) > 1 {
					coords := make([]string, len(pts))
					for i, p := range pts {
						coords[i] = fmt.Sprintf("%.1f,%.1f", p.x, p.y)
					}
					fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
						strings.Join(coords, " "), color)
				}
				for _, p := range pts {
					fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", p.x, p.y, color)
				}
			}
		}
	}
	fmt.Fprintln(w, `</svg>`)
}
