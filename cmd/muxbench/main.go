// Command muxbench regenerates the paper's tables and figures from the
// simulator and prints paper-comparable rows.
//
// Usage:
//
//	muxbench -list
//	muxbench -run fig14            # one experiment
//	muxbench -run all              # everything (minutes)
//	muxbench -run fig15 -quick     # reduced scale
//	muxbench -run fig15 -json      # machine-readable tables
//	muxbench -run routers          # fleet router goodput (beyond the paper)
//	muxbench -run frontier         # goodput-per-GPU frontier (Fig. 13 scales)
//	muxbench -run frontier -frontier-report out.json
//	                               # ...also write the canonical FrontierReport
//	muxbench -simcore              # hot-path benchmarks, markdown digest
//	muxbench -simcore -simcore-write BENCH_simcore.json
//	                               # ...regenerate the committed baseline
//	muxbench -simcore -simcore-check BENCH_simcore.json
//	                               # ...fail on regression against the baseline
//	muxbench -replay               # 100-replica / 1M-request stress replay
//	muxbench -replay -replay-replicas 10 -replay-requests 100000
//	                               # ...reduced scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"muxwise/internal/experiments"
	"muxwise/internal/frontier"
)

// jsonResult is one experiment's machine-readable output: the reproduced
// tables (rate points, summaries) plus timing, for the
// benchmark-trajectory tooling.
type jsonResult struct {
	ID      string
	Paper   string
	Seconds float64
	Tables  []experiments.Table
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	quick := flag.Bool("quick", false, "reduced scale (CI-sized traces and sweeps)")
	asJSON := flag.Bool("json", false, "write results as JSON instead of tables")
	frontierReport := flag.String("frontier-report", "",
		"when the frontier experiment runs, also write its canonical FrontierReport JSON here")
	simcore := flag.Bool("simcore", false,
		"run the committed hot-path benchmarks (core engine, fleet tick, router pick) and print a markdown digest")
	simcoreWrite := flag.String("simcore-write", "", "with -simcore: (re)write the BENCH_simcore.json baseline here")
	simcoreCheck := flag.String("simcore-check", "",
		"with -simcore: fail if allocs/request or ns/request regressed against this baseline")
	replay := flag.Bool("replay", false,
		"run the stress replay: many independent replicas shard-parallel over reused per-worker arenas")
	replayReplicas := flag.Int("replay-replicas", 100, "with -replay: replica count")
	replayRequests := flag.Int("replay-requests", 1_000_000, "with -replay: total requests across all replicas")
	replayRate := flag.Float64("replay-rate", 8, "with -replay: per-replica arrival rate (req/s)")
	flag.Parse()

	if *replay {
		if err := runReplay(os.Stdout, *replayReplicas, *replayRequests, *replayRate); err != nil {
			fmt.Fprintln(os.Stderr, "muxbench:", err)
			os.Exit(1)
		}
		return
	}

	if *simcore || *simcoreWrite != "" || *simcoreCheck != "" {
		if err := runSimcore(*simcoreWrite, *simcoreCheck); err != nil {
			fmt.Fprintln(os.Stderr, "muxbench:", err)
			os.Exit(1)
		}
		return
	}

	// The frontier sweep lives outside internal/experiments (it drives
	// the public muxwise.Experiment API, which that package underpins),
	// so it joins the registry here.
	registry := append(experiments.Registry(),
		frontier.BenchExperiment(*frontierReport),
		frontier.RooflineBenchExperiment())

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range registry {
			fmt.Printf("  %-8s %s\n", e.ID, e.Paper)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	opts := experiments.Opts{Quick: *quick}
	var todo []experiments.Experiment
	if *run == "all" {
		todo = registry
	} else {
		e, ok := experiments.Find(registry, *run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}

	var results []jsonResult
	for _, e := range todo {
		start := time.Now()
		if !*asJSON {
			fmt.Printf("### %s — %s\n\n", e.ID, e.Paper)
		}
		tables := e.Run(opts)
		elapsed := time.Since(start).Seconds()
		if *asJSON {
			results = append(results, jsonResult{ID: e.ID, Paper: e.Paper, Seconds: elapsed, Tables: tables})
			continue
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, elapsed)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
