// Command muxbench regenerates the paper's tables and figures from the
// simulator and prints paper-comparable rows.
//
// Usage:
//
//	muxbench -list
//	muxbench -run fig14            # one experiment
//	muxbench -run all              # everything (minutes)
//	muxbench -run fig15 -quick     # reduced scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"muxwise/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	quick := flag.Bool("quick", false, "reduced scale (CI-sized traces and sweeps)")
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Paper)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	opts := experiments.Opts{Quick: *quick}
	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.Registry()
	} else {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.ID, e.Paper)
		for _, t := range e.Run(opts) {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
