package main

import (
	"fmt"
	"io"
	"time"

	"muxwise"
	"muxwise/internal/par"
	"muxwise/internal/sim"
)

// replayDeployment is the fixed per-replica shape of the stress replay:
// one A100 serving Llama-8B, the same point the committed simcore
// benchmarks run on, so replay events/sec is directly comparable to the
// BENCH_simcore.json trend.
func replayDeployment() muxwise.Option {
	return muxwise.WithDeployment(muxwise.Deployment{
		Hardware: "A100", GPUs: 1, Model: "Llama-8B",
	})
}

// replayArena is one worker's reusable state for the replay wave. Trace
// generation — token sampling and page-identity hashing for every
// request — is the expensive, arrival-independent part, so each worker
// does it once; each replica then restores the canonical request order
// and re-stamps arrivals with its own seed. Replica i's run therefore
// depends only on (generation seed, arrival seed i+1), never on which
// worker executed it, keeping the replay deterministic under any
// worker count.
type replayArena struct {
	trace *muxwise.Trace
	base  []*muxwise.Request
}

func newReplayArena(perReplica int) *replayArena {
	tr := muxwise.ShareGPT(1, perReplica)
	return &replayArena{
		trace: tr,
		base:  append([]*muxwise.Request(nil), tr.Requests...),
	}
}

// replicaResult is the per-replica slice of the aggregate report.
type replicaResult struct {
	loop     sim.LoopStats
	requests int
	unstable bool
	err      error
}

// runReplica replays one replica's load through a fresh engine over the
// worker's reused trace.
func (a *replayArena) runReplica(seed uint64, rate float64) replicaResult {
	// Arrival stamping sorts the request slice in place; restoring the
	// generated order first makes the stamp a pure function of the seed.
	copy(a.trace.Requests, a.base)
	a.trace.WithPoissonArrivals(seed, rate)
	rep, err := muxwise.NewExperiment(replayDeployment(), muxwise.WithEngine("MuxWise")).Run(a.trace)
	if err != nil {
		return replicaResult{err: err}
	}
	return replicaResult{
		loop:     rep.Engine.Loop,
		requests: rep.Summary.Requests,
		unstable: rep.Summary.Unstable,
	}
}

// runReplay drives the CI-feasible stress replay: `replicas` independent
// single-engine simulations of `requests/replicas` requests each,
// shard-parallel across worker waves with one reused arena per worker,
// reporting fleet-wide events/sec and the aggregated LoopStats.
func runReplay(w io.Writer, replicas, requests int, rate float64) error {
	if replicas < 1 || requests < replicas {
		return fmt.Errorf("replay needs replicas >= 1 and requests >= replicas (got %d, %d)", replicas, requests)
	}
	perReplica := requests / replicas

	start := time.Now()
	results := par.RunArena(replicas,
		func() *replayArena { return newReplayArena(perReplica) },
		func(i int, a *replayArena) replicaResult {
			return a.runReplica(uint64(i)+1, rate)
		})
	wall := time.Since(start)

	var agg sim.LoopStats
	var reqs, unstable int
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
		agg.Fired += r.loop.Fired
		agg.Scheduled += r.loop.Scheduled
		agg.Canceled += r.loop.Canceled
		if r.loop.MaxPending > agg.MaxPending {
			agg.MaxPending = r.loop.MaxPending
		}
		reqs += r.requests
		if r.unstable {
			unstable++
		}
	}

	fmt.Fprintf(w, "### replay: %d replicas x %d requests (%d total)\n\n", replicas, perReplica, reqs)
	fmt.Fprintf(w, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(w, "| workers | %d |\n", par.Workers(replicas))
	fmt.Fprintf(w, "| wall time | %.1fs |\n", wall.Seconds())
	fmt.Fprintf(w, "| requests/sec | %.0f |\n", float64(reqs)/wall.Seconds())
	fmt.Fprintf(w, "| events/sec | %.0f |\n", float64(agg.Fired)/wall.Seconds())
	fmt.Fprintf(w, "| events fired | %d |\n", agg.Fired)
	fmt.Fprintf(w, "| events scheduled | %d |\n", agg.Scheduled)
	fmt.Fprintf(w, "| events canceled | %d |\n", agg.Canceled)
	fmt.Fprintf(w, "| max pending (any replica) | %d |\n", agg.MaxPending)
	fmt.Fprintf(w, "| unstable replicas | %d |\n", unstable)
	fmt.Fprintln(w)
	return nil
}
